// GWDB: a water-well safety knowledge base in the style of the paper's
// Texas Ground Water Database evaluation (Section VI). Synthetic wells with
// spatially-autocorrelated safety are generated inline; the 11-rule program
// mixes EPA-style threshold priors with proximity rules. Both engines run
// and are scored against the planted ground truth — Sya's spatial factors
// interpolate the revealed labels and win.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	sya "repro"
)

const program = `
Well (id bigint, location point, arsenic double, depth double).
WellEvidence (id bigint, location point, safe bool).

@spatial(exp)
IsSafe? (id bigint, location point).

D1: IsSafe(W, L) = NULL :- Well(W, L, _, _).
D2: IsSafe(W, L) = S :- WellEvidence(W, L, S).

# Proximity rules (Fig. 7 style).
R1: @weight(0.7) IsSafe(W1, L1) => IsSafe(W2, L2) :-
    Well(W1, L1, A1, _), Well(W2, L2, A2, _)
    [distance(L1, L2) < 50, A1 < 0.2, A2 < 0.2].
R2: @weight(0.8) !IsSafe(W1, L1) => !IsSafe(W2, L2) :-
    Well(W1, L1, A1, _), Well(W2, L2, A2, _)
    [distance(L1, L2) < 15, A1 > 0.3, A2 > 0.3].

# Threshold priors.
R3: @weight(0.5) !IsSafe(W, L) :- Well(W, L, A, _) [A > 0.35].
R4: @weight(0.4) IsSafe(W, L) :- Well(W, L, A, _) [A < 0.12].
R5: @weight(0.3) IsSafe(W, L) :- Well(W, L, _, D) [D > 300].
R6: @weight(0.3) !IsSafe(W, L) :- Well(W, L, _, D) [D < 60].
`

type well struct {
	id      int64
	x, y    float64
	arsenic float64
	depth   float64
	truth   bool // planted safety
	shown   bool // label revealed as evidence
}

// generate plants a smooth safety field over a 400×400 area: safety is high
// near (100,100) and low near (300,300), with noisy weakly-informative
// attributes — the spatial structure of the labels carries the signal.
func generate(n int, seed int64) []well {
	rng := rand.New(rand.NewSource(seed))
	wells := make([]well, n)
	for i := range wells {
		x, y := rng.Float64()*400, rng.Float64()*400
		safeBump := math.Exp(-((x-100)*(x-100) + (y-100)*(y-100)) / (2 * 120 * 120))
		dangerBump := math.Exp(-((x-300)*(x-300) + (y-300)*(y-300)) / (2 * 120 * 120))
		p := 1 / (1 + math.Exp(-(2.5*safeBump - 2.5*dangerBump)))
		truth := rng.Float64() < p
		arsenic := 0.2 - 0.08*(p-0.5) + rng.NormFloat64()*0.1
		wells[i] = well{
			id: int64(i + 1), x: x, y: y,
			arsenic: math.Max(0, arsenic),
			depth:   math.Max(10, 150+120*p+rng.NormFloat64()*100),
			truth:   truth,
			shown:   rng.Float64() < 0.4,
		}
	}
	return wells
}

func run(engine sya.Engine, wells []well) (accuracy float64) {
	s := sya.New(sya.Config{
		Engine:        engine,
		Metric:        sya.MetricEuclidean,
		Bandwidth:     25,
		SpatialScale:  0.5,
		SupportRadius: 60,
		MaxNeighbors:  30,
		Epochs:        600,
		Seed:          11,
	})
	if err := s.LoadProgram(program); err != nil {
		log.Fatal(err)
	}
	var rows, evidence []sya.Row
	for _, w := range wells {
		rows = append(rows, sya.Row{sya.Int(w.id), sya.Point(w.x, w.y), sya.Float(w.arsenic), sya.Float(w.depth)})
		if w.shown {
			evidence = append(evidence, sya.Row{sya.Int(w.id), sya.Point(w.x, w.y), sya.Bool(w.truth)})
		}
	}
	if err := s.LoadRows("Well", rows); err != nil {
		log.Fatal(err)
	}
	if err := s.LoadRows("WellEvidence", evidence); err != nil {
		log.Fatal(err)
	}
	gres, err := s.Ground()
	if err != nil {
		log.Fatal(err)
	}
	scores, err := s.Infer()
	if err != nil {
		log.Fatal(err)
	}
	correct, total := 0, 0
	for _, w := range wells {
		if w.shown {
			continue
		}
		p, ok := scores.TrueProb("IsSafe", sya.Vals(sya.Int(w.id), sya.Point(w.x, w.y)))
		if !ok {
			continue
		}
		if (p >= 0.5) == w.truth {
			correct++
		}
		total++
	}
	fmt.Printf("%-9s: %d atoms, %d logical factors, %d spatial pairs, ground %v, infer %v\n",
		engine, gres.Stats.Vars, gres.Stats.LogicalFactors, gres.Stats.SpatialPairs,
		s.GroundingTime().Round(1e6), s.InferenceTime().Round(1e6))
	return float64(correct) / float64(total)
}

func main() {
	wells := generate(400, 3)
	accSya := run(sya.EngineSya, wells)
	accDD := run(sya.EngineDeepDive, wells)
	fmt.Printf("\nquery-well accuracy: Sya %.3f vs DeepDive %.3f\n", accSya, accDD)
	fmt.Println("shape to observe: Sya clearly above DeepDive — spatial factors interpolate the labelled wells")
}
