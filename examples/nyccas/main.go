// NYCCAS: an air-pollution knowledge base in the style of the paper's NYC
// Community Air Survey evaluation, demonstrating two Sya features beyond
// the basics: categorical-free raster inference over a grid, and
// *incremental inference* (paper Fig. 13a) — after new evidence arrives,
// only the affected concliques are resampled.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	sya "repro"
)

const program = `
Cell (id bigint, location point, no2 double).
CellEvidence (id bigint, location point, polluted bool).

@spatial(exp)
Polluted? (id bigint, location point).

D1: Polluted(C, L) = NULL :- Cell(C, L, _).
D2: Polluted(C, L) = P :- CellEvidence(C, L, P).

R1: @weight(0.7) Polluted(C, L) :- Cell(C, L, N) [N > 40].
R2: @weight(0.6) !Polluted(C, L) :- Cell(C, L, N) [N < 25].
R3: @weight(0.4) Polluted(C1, L1) => Polluted(C2, L2) :-
    Cell(C1, L1, _), Cell(C2, L2, _) [distance(L1, L2) < 3].
`

type cell struct {
	id    int64
	x, y  float64
	no2   float64
	truth bool
	shown bool
}

func generate(side int, seed int64) []cell {
	rng := rand.New(rand.NewSource(seed))
	var cells []cell
	id := int64(1)
	for gy := 0; gy < side; gy++ {
		for gx := 0; gx < side; gx++ {
			x, y := float64(gx)+0.5, float64(gy)+0.5
			hot := math.Exp(-((x-5)*(x-5)+(y-5)*(y-5))/18) +
				math.Exp(-((x-14)*(x-14)+(y-15)*(y-15))/10)
			p := 1 / (1 + math.Exp(-(3*hot - 1.2)))
			cells = append(cells, cell{
				id: id, x: x, y: y,
				no2:   25 + 18*p + rng.NormFloat64()*5,
				truth: rng.Float64() < p,
				shown: rng.Float64() < 0.35,
			})
			id++
		}
	}
	return cells
}

func main() {
	cells := generate(20, 5)
	s := sya.New(sya.Config{
		Engine:        sya.EngineSya,
		Metric:        sya.MetricEuclidean,
		Bandwidth:     2,
		SpatialScale:  0.5,
		SupportRadius: 4,
		MaxNeighbors:  12,
		Epochs:        800,
		PyramidLevels: 6,
		Seed:          2,
	})
	if err := s.LoadProgram(program); err != nil {
		log.Fatal(err)
	}
	var rows, evidence []sya.Row
	for _, c := range cells {
		rows = append(rows, sya.Row{sya.Int(c.id), sya.Point(c.x, c.y), sya.Float(c.no2)})
		if c.shown {
			evidence = append(evidence, sya.Row{sya.Int(c.id), sya.Point(c.x, c.y), sya.Bool(c.truth)})
		}
	}
	if err := s.LoadRows("Cell", rows); err != nil {
		log.Fatal(err)
	}
	if err := s.LoadRows("CellEvidence", evidence); err != nil {
		log.Fatal(err)
	}
	if _, err := s.Ground(); err != nil {
		log.Fatal(err)
	}
	scores, err := s.Infer()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full inference over %d cells: %v\n", len(cells), s.InferenceTime().Round(time.Millisecond))
	printAccuracy(cells, scores)

	// Incremental inference: a field team confirms pollution at a
	// borderline cell; only its concliques are resampled. Pick the first
	// unlabelled cell whose score sits near the decision boundary so its
	// neighbourhood visibly responds.
	best, bestDist := 0, 2.0
	for i, c := range cells {
		if c.shown || i+1 >= len(cells) {
			continue
		}
		p, _ := scores.TrueProb("Polluted", sya.Vals(sya.Int(c.id), sya.Point(c.x, c.y)))
		if d := math.Abs(p - 0.5); d < bestDist {
			best, bestDist = i, d
		}
	}
	target, neighbor := cells[best], cells[best+1]
	before, _ := scores.TrueProb("Polluted", sya.Vals(sya.Int(target.id), sya.Point(target.x, target.y)))
	nBefore, _ := scores.TrueProb("Polluted", sya.Vals(sya.Int(neighbor.id), sya.Point(neighbor.x, neighbor.y)))
	t0 := time.Now()
	if err := s.UpdateEvidence("Polluted", sya.Vals(sya.Int(target.id), sya.Point(target.x, target.y)), 1); err != nil {
		log.Fatal(err)
	}
	scores, err = s.InferIncremental(2000)
	if err != nil {
		log.Fatal(err)
	}
	incDur := time.Since(t0)
	nAfter, _ := scores.TrueProb("Polluted", sya.Vals(sya.Int(neighbor.id), sya.Point(neighbor.x, neighbor.y)))
	fmt.Printf("\nincremental update: cell %d pinned polluted (was %.3f) in %v\n",
		target.id, before, incDur.Round(time.Millisecond))
	fmt.Printf("neighbour cell %d: %.3f -> %.3f (pulled up by the new evidence)\n",
		neighbor.id, nBefore, nAfter)
}

func printAccuracy(cells []cell, scores *sya.Scores) {
	correct, total := 0, 0
	for _, c := range cells {
		if c.shown {
			continue
		}
		p, ok := scores.TrueProb("Polluted", sya.Vals(sya.Int(c.id), sya.Point(c.x, c.y)))
		if !ok {
			continue
		}
		if (p >= 0.5) == c.truth {
			correct++
		}
		total++
	}
	fmt.Printf("query-cell accuracy: %.3f (%d/%d)\n", float64(correct)/float64(total), correct, total)
}
