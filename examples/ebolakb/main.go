// EbolaKB: the paper's Fig. 1 worked example. Four Liberian counties, one
// declared highly infected; the program of Fig. 3 is run under both
// engines. DeepDive treats the 150-mile predicate as boolean — Margibi and
// Bong get nearly identical scores and Gbarpolu collapses — while Sya's
// spatial factors grade the scores by distance.
package main

import (
	"fmt"
	"log"

	sya "repro"
)

// The Fig. 3 program: schema declarations, the NULL derivation, the
// evidence derivation, a class prior, and the distance-bounded inference
// rule. Under EngineSya the @spatial(exp) annotation also generates
// distance-weighted spatial factors among HasEbola atoms ("the closer
// County Y to X, the higher its Ebola infection rate").
const program = `
const liberia_geom = 'POLYGON((-12 4, -7 4, -7 9, -12 9))'.

S1: County (id bigint, location point, hasLowSanitation bool).
E1: CountyEvidence (id bigint, location point, hasEbola bool).

@spatial(exp)
S2: HasEbola? (id bigint, location point).

D1: HasEbola(C, L) = NULL :- County(C, L, _).
D2: HasEbola(C, L) = E :- CountyEvidence(C, L, E).

R0: @weight(1.0) !HasEbola(C, L) :- County(C, L, _).

R1: @weight(0.5)
HasEbola(C1, L1) => HasEbola(C2, L2) :-
    County(C1, L1, _), County(C2, L2, S2)
    [distance(L1, L2) < 150, within(liberia_geom, L1), S2 = true].
`

type county struct {
	id   int64
	name string
	x, y float64
	san  bool
}

// Synthetic coordinates faithful to the paper's distances: Montserrado to
// Margibi ≈ 29 mi, to Bong ≈ 106 mi, to Gbarpolu ≈ 158 mi ("only 10 miles
// more than the cut-off threshold").
var counties = []county{
	{1, "Montserrado", -10.80, 6.32, true},
	{2, "Margibi", -10.45, 6.55, true},
	{3, "Bong", -9.45, 7.05, true},
	{4, "Gbarpolu", -8.90, 7.60, false},
}

func buildAndScore(engine sya.Engine) map[string]float64 {
	s := sya.New(sya.Config{
		Engine:    engine,
		Metric:    sya.MetricMiles,
		Bandwidth: 60, // exponential decay length in miles
		Epochs:    8000,
		Seed:      7,
	})
	if err := s.LoadProgram(program); err != nil {
		log.Fatal(err)
	}
	var rows []sya.Row
	for _, c := range counties {
		rows = append(rows, sya.Row{sya.Int(c.id), sya.Point(c.x, c.y), sya.Bool(c.san)})
	}
	if err := s.LoadRows("County", rows); err != nil {
		log.Fatal(err)
	}
	if err := s.LoadRows("CountyEvidence", []sya.Row{
		{sya.Int(1), sya.Point(counties[0].x, counties[0].y), sya.Bool(true)},
	}); err != nil {
		log.Fatal(err)
	}
	if _, err := s.Ground(); err != nil {
		log.Fatal(err)
	}
	scores, err := s.Infer()
	if err != nil {
		log.Fatal(err)
	}
	out := map[string]float64{}
	for _, c := range counties {
		p, ok := scores.TrueProb("HasEbola", sya.Vals(sya.Int(c.id), sya.Point(c.x, c.y)))
		if !ok {
			log.Fatalf("no score for %s", c.name)
		}
		out[c.name] = p
	}
	return out
}

func main() {
	dd := buildAndScore(sya.EngineDeepDive)
	sy := buildAndScore(sya.EngineSya)
	fmt.Println("County        DeepDive   Sya     (paper: DD 0.51/0.45/0.06, Sya 0.76/0.53/0.22)")
	for _, c := range counties {
		fmt.Printf("%-12s  %.3f      %.3f\n", c.name, dd[c.name], sy[c.name])
	}
	fmt.Println()
	fmt.Println("shape to observe:")
	fmt.Println(" - DeepDive: Margibi ≈ Bong (both merely satisfy the boolean 150-mile predicate)")
	fmt.Println(" - Sya: Margibi > Bong > Gbarpolu, graded by distance; Gbarpolu does not collapse")
}
