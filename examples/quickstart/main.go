// Quickstart: the smallest end-to-end Sya pipeline. Three sensors measure a
// spatially-smooth phenomenon; one is labelled; Sya infers factual scores
// for the rest, with spatial factors pulling nearby sensors toward the
// labelled one.
package main

import (
	"fmt"
	"log"

	sya "repro"
)

const program = `
# A typical input relation and its evidence.
Sensor (id bigint, location point, reading double).
SensorEvidence (id bigint, location point, hot bool).

# The variable relation: one ground atom per sensor, spatially correlated.
@spatial(exp)
IsHot? (id bigint, location point).

D1: IsHot(S, L) = NULL :- Sensor(S, L, _).
D2: IsHot(S, L) = H :- SensorEvidence(S, L, H).

# High readings suggest heat; the class prior keeps scores calibrated.
R1: @weight(0.8) IsHot(S, L) :- Sensor(S, L, R) [R > 0.6].
R2: @weight(0.5) !IsHot(S, L) :- Sensor(S, L, _).
`

func main() {
	s := sya.New(sya.Config{
		Engine:    sya.EngineSya,
		Metric:    sya.MetricEuclidean,
		Bandwidth: 10, // spatial decay length, in coordinate units
		Epochs:    4000,
		Seed:      1,
	})
	if err := s.LoadProgram(program); err != nil {
		log.Fatal(err)
	}
	// Three sensors on a line; only the first is labelled hot.
	sensors := []sya.Row{
		{sya.Int(1), sya.Point(0, 0), sya.Float(0.7)},
		{sya.Int(2), sya.Point(5, 0), sya.Float(0.5)},
		{sya.Int(3), sya.Point(30, 0), sya.Float(0.5)},
	}
	if err := s.LoadRows("Sensor", sensors); err != nil {
		log.Fatal(err)
	}
	if err := s.LoadRows("SensorEvidence", []sya.Row{
		{sya.Int(1), sya.Point(0, 0), sya.Bool(true)},
	}); err != nil {
		log.Fatal(err)
	}
	res, err := s.Ground()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ground: %d atoms, %d logical factors, %d spatial pairs\n",
		res.Stats.Vars, res.Stats.LogicalFactors, res.Stats.SpatialPairs)
	scores, err := s.Infer()
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range sensors {
		p, ok := scores.TrueProb("IsHot", sya.Vals(row[0], row[1]))
		if !ok {
			log.Fatalf("no score for sensor %v", row[0])
		}
		fmt.Printf("IsHot(sensor %v) = %.3f\n", row[0].I, p)
	}
	fmt.Println("expected shape: sensor 2 (5 units away) scores well above sensor 3 (30 units away)")
}
