// Learnweights: instead of hand-picking @weight values, fit the inference
// rules' weights to the evidence. A disease-spread chain is simulated from
// known dynamics; the program declares its rules with deliberately wrong
// weights (zero); LearnWeights recovers useful weights from the labelled
// atoms, and MAP inference then reads out the single most probable world.
package main

import (
	"fmt"
	"log"
	"math/rand"

	sya "repro"
)

const program = `
Site (id bigint, location point, risky bool).
SiteEvidence (id bigint, location point, infected bool).

@spatial(exp)
Infected? (id bigint, location point).

D1: Infected(S, L) = NULL :- Site(S, L, _).
D2: Infected(S, L) = I :- SiteEvidence(S, L, I).

# Both rules start at weight 0 — learning has to discover that infection
# clusters (R1) and that risky sites are more often infected (R2).
R1: @weight(0) Infected(S1, L1) => Infected(S2, L2) :-
    Site(S1, L1, _), Site(S2, L2, _) [distance(L1, L2) < 12].
R2: @weight(0) Infected(S, L) :- Site(S, L, R) [R = true].
`

type site struct {
	id       int64
	x, y     float64
	risky    bool
	infected bool
	shown    bool
}

// simulate draws sites on a line with contagious clusters seeded at risky
// sites: the planted dynamics the learner must discover.
func simulate(n int, seed int64) []site {
	rng := rand.New(rand.NewSource(seed))
	sites := make([]site, n)
	infected := false
	for i := range sites {
		risky := rng.Float64() < 0.2
		// Infection starts at risky sites and persists along the chain.
		switch {
		case risky && rng.Float64() < 0.7:
			infected = true
		case rng.Float64() < 0.25:
			infected = false
		}
		sites[i] = site{
			id: int64(i + 1), x: float64(i) * 8, y: 0,
			risky: risky, infected: infected,
			shown: rng.Float64() < 0.7,
		}
	}
	return sites
}

func main() {
	sites := simulate(150, 4)
	s := sya.New(sya.Config{
		Engine:    sya.EngineSya,
		Metric:    sya.MetricEuclidean,
		Bandwidth: 10,
		Epochs:    2000,
		Seed:      1,
	})
	if err := s.LoadProgram(program); err != nil {
		log.Fatal(err)
	}
	var rows, evidence []sya.Row
	for _, st := range sites {
		rows = append(rows, sya.Row{sya.Int(st.id), sya.Point(st.x, st.y), sya.Bool(st.risky)})
		if st.shown {
			evidence = append(evidence, sya.Row{sya.Int(st.id), sya.Point(st.x, st.y), sya.Bool(st.infected)})
		}
	}
	if err := s.LoadRows("Site", rows); err != nil {
		log.Fatal(err)
	}
	if err := s.LoadRows("SiteEvidence", evidence); err != nil {
		log.Fatal(err)
	}
	if _, err := s.Ground(); err != nil {
		log.Fatal(err)
	}
	weights, err := s.LearnWeights(sya.LearnOptions{Iterations: 250, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("learned rule weights (started at 0):")
	for _, rule := range []string{"R1", "R2"} {
		fmt.Printf("  %s = %+.3f\n", rule, weights[rule])
	}
	// Score held-out sites with the learned model.
	scores, err := s.Infer()
	if err != nil {
		log.Fatal(err)
	}
	correct, total := 0, 0
	for _, st := range sites {
		if st.shown {
			continue
		}
		p, ok := scores.TrueProb("Infected", sya.Vals(sya.Int(st.id), sya.Point(st.x, st.y)))
		if !ok {
			continue
		}
		if (p >= 0.5) == st.infected {
			correct++
		}
		total++
	}
	fmt.Printf("held-out accuracy with learned weights: %.3f (%d/%d)\n",
		float64(correct)/float64(total), correct, total)
	// The most probable world, via MAP inference.
	world, err := s.MAP(sya.MAPOptions{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	mapInfected := 0
	for _, st := range sites {
		if v, ok := world.Value("Infected", sya.Vals(sya.Int(st.id), sya.Point(st.x, st.y))); ok && v == 1 {
			mapInfected++
		}
	}
	fmt.Printf("MAP world: %d/%d sites infected (energy %.1f)\n", mapInfected, len(sites), world.Energy)
	fmt.Println("shape to observe: R2 (risky sites) learns a positive weight and held-out accuracy lands")
	fmt.Println("well above 0.5. R1 may learn a small or negative weight: the @spatial factors already")
	fmt.Println("capture the clustering, and tied MLN weights rebalance against them (non-identifiability).")
}
