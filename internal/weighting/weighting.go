// Package weighting implements the spatial weighing functions selectable via
// the @spatial(w) annotation in Sya's DDlog extension (paper Section III).
// A weighing function maps the distance between two spatial ground atoms to
// the weight w_d(vj,vk) of their spatial factor (Eq. 2 / Eq. 4): large for
// nearby atoms, decaying toward zero with distance, so that the factor
// e^{±w} favours agreement of close atoms and becomes neutral far away.
//
// The paper's default is the exponential distance weighing of GeoDa
// (Anselin et al. [2]); gaussian, inverse-distance and step variants are
// also provided, and users may register their own (the "user-defined in the
// DDlog program" option).
package weighting

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Func maps a distance (≥ 0) to a spatial weight (≥ 0).
type Func interface {
	// Name is the identifier used inside @spatial(name).
	Name() string
	// Weight returns the spatial weight for a distance.
	Weight(dist float64) float64
	// Support returns the effective neighbourhood radius: beyond it the
	// weight is negligible (< SupportEpsilon of the zero-distance weight)
	// and the grounding module may skip generating the spatial factor.
	Support() float64
}

// SupportEpsilon is the relative weight below which a spatial factor is
// considered negligible when computing Support radii.
const SupportEpsilon = 1e-3

// Exponential is the GeoDa-style exponential distance weighing
// w(d) = scale · exp(−d/bandwidth) — the paper's default (@spatial(exp)).
type Exponential struct {
	// Bandwidth is the decay length; weights fall to 1/e at this distance.
	Bandwidth float64
	// Scale is the zero-distance weight.
	Scale float64
}

// Name implements Func.
func (Exponential) Name() string { return "exp" }

// Weight implements Func.
func (e Exponential) Weight(d float64) float64 {
	if d < 0 {
		d = 0
	}
	return e.Scale * math.Exp(-d/e.Bandwidth)
}

// Support implements Func.
func (e Exponential) Support() float64 {
	return -e.Bandwidth * math.Log(SupportEpsilon)
}

// Gaussian is w(d) = scale · exp(−(d/bandwidth)²/2).
type Gaussian struct {
	Bandwidth float64
	Scale     float64
}

// Name implements Func.
func (Gaussian) Name() string { return "gauss" }

// Weight implements Func.
func (g Gaussian) Weight(d float64) float64 {
	if d < 0 {
		d = 0
	}
	z := d / g.Bandwidth
	return g.Scale * math.Exp(-z*z/2)
}

// Support implements Func.
func (g Gaussian) Support() float64 {
	return g.Bandwidth * math.Sqrt(-2*math.Log(SupportEpsilon))
}

// InverseDistance is w(d) = scale / (1 + d/bandwidth).
type InverseDistance struct {
	Bandwidth float64
	Scale     float64
}

// Name implements Func.
func (InverseDistance) Name() string { return "idw" }

// Weight implements Func.
func (w InverseDistance) Weight(d float64) float64 {
	if d < 0 {
		d = 0
	}
	return w.Scale / (1 + d/w.Bandwidth)
}

// Support implements Func.
func (w InverseDistance) Support() float64 {
	return w.Bandwidth * (1/SupportEpsilon - 1)
}

// Step is a piecewise-constant weighing: Weights[i] applies to distances in
// [Breaks[i-1], Breaks[i]) with Breaks[-1] = 0; distances ≥ the last break
// get weight 0. It models the paper's Fig. 10 step-function baseline, where
// DeepDive approximates distance decay with one rule per band.
type Step struct {
	Breaks  []float64 // ascending band upper bounds
	Weights []float64 // len(Weights) == len(Breaks)
}

// NewStep builds a Step from bands; it validates monotone breaks.
func NewStep(breaks, weights []float64) (Step, error) {
	if len(breaks) == 0 || len(breaks) != len(weights) {
		return Step{}, fmt.Errorf("weighting: step needs equal, non-zero breaks and weights (got %d, %d)",
			len(breaks), len(weights))
	}
	if !sort.Float64sAreSorted(breaks) {
		return Step{}, fmt.Errorf("weighting: step breaks must be ascending")
	}
	return Step{Breaks: breaks, Weights: weights}, nil
}

// Name implements Func.
func (Step) Name() string { return "step" }

// Weight implements Func.
func (s Step) Weight(d float64) float64 {
	if d < 0 {
		d = 0
	}
	i := sort.SearchFloat64s(s.Breaks, d)
	if i < len(s.Breaks) && s.Breaks[i] == d {
		i++ // bands are [lo, hi): a distance equal to a break falls in the next band
	}
	if i >= len(s.Weights) {
		return 0
	}
	return s.Weights[i]
}

// Support implements Func.
func (s Step) Support() float64 { return s.Breaks[len(s.Breaks)-1] }

// UniformSteps builds an n-band step function over [0, maxDist) whose
// weights decay linearly from maxWeight to maxWeight/n — the construction
// used by the Fig. 10 experiment (large weights for small distances).
func UniformSteps(n int, maxDist, maxWeight float64) (Step, error) {
	if n <= 0 {
		return Step{}, fmt.Errorf("weighting: need at least one step band, got %d", n)
	}
	breaks := make([]float64, n)
	weights := make([]float64, n)
	for i := 0; i < n; i++ {
		breaks[i] = maxDist * float64(i+1) / float64(n)
		weights[i] = maxWeight * float64(n-i) / float64(n)
	}
	return Step{Breaks: breaks, Weights: weights}, nil
}

// Registry resolves @spatial(name) identifiers to weighing functions. The
// built-ins of the paper are pre-registered with unit scale and a default
// bandwidth; programs that need different parameters register their own.
type Registry struct {
	mu    sync.RWMutex
	funcs map[string]Func
}

// NewRegistry returns a registry with the built-in functions registered at
// the given bandwidth and scale.
func NewRegistry(bandwidth, scale float64) *Registry {
	r := &Registry{funcs: map[string]Func{}}
	r.MustRegister(Exponential{Bandwidth: bandwidth, Scale: scale})
	r.MustRegister(Gaussian{Bandwidth: bandwidth, Scale: scale})
	r.MustRegister(InverseDistance{Bandwidth: bandwidth, Scale: scale})
	return r
}

// Register adds a function under its Name; duplicate names error.
func (r *Registry) Register(f Func) error {
	key := strings.ToLower(f.Name())
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.funcs[key]; dup {
		return fmt.Errorf("weighting: function %q already registered", f.Name())
	}
	r.funcs[key] = f
	return nil
}

// MustRegister panics on duplicate registration; for built-ins.
func (r *Registry) MustRegister(f Func) {
	if err := r.Register(f); err != nil {
		panic(err)
	}
}

// Replace adds or overwrites a function.
func (r *Registry) Replace(f Func) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[strings.ToLower(f.Name())] = f
}

// Lookup resolves a name.
func (r *Registry) Lookup(name string) (Func, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.funcs[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("weighting: unknown @spatial function %q", name)
	}
	return f, nil
}

// Names returns the sorted registered names.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.funcs))
	for n := range r.funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
