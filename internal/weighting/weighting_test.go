package weighting

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExponential(t *testing.T) {
	e := Exponential{Bandwidth: 10, Scale: 2}
	if w := e.Weight(0); w != 2 {
		t.Errorf("w(0) = %v", w)
	}
	if w := e.Weight(10); math.Abs(w-2/math.E) > 1e-12 {
		t.Errorf("w(bandwidth) = %v", w)
	}
	if w := e.Weight(-5); w != 2 {
		t.Errorf("negative distance should clamp: %v", w)
	}
	// Support: weight at support radius ≈ epsilon * scale.
	if w := e.Weight(e.Support()); math.Abs(w-2*SupportEpsilon) > 1e-9 {
		t.Errorf("w(support) = %v, want %v", w, 2*SupportEpsilon)
	}
}

func TestGaussian(t *testing.T) {
	g := Gaussian{Bandwidth: 5, Scale: 1}
	if w := g.Weight(0); w != 1 {
		t.Errorf("w(0) = %v", w)
	}
	if w := g.Weight(5); math.Abs(w-math.Exp(-0.5)) > 1e-12 {
		t.Errorf("w(bw) = %v", w)
	}
	if w := g.Weight(g.Support()); math.Abs(w-SupportEpsilon) > 1e-9 {
		t.Errorf("w(support) = %v", w)
	}
}

func TestInverseDistance(t *testing.T) {
	w := InverseDistance{Bandwidth: 10, Scale: 3}
	if got := w.Weight(0); got != 3 {
		t.Errorf("w(0) = %v", got)
	}
	if got := w.Weight(10); got != 1.5 {
		t.Errorf("w(bw) = %v", got)
	}
	if got := w.Weight(w.Support()); math.Abs(got-3*SupportEpsilon) > 1e-6 {
		t.Errorf("w(support) = %v", got)
	}
}

func TestStep(t *testing.T) {
	s, err := NewStep([]float64{10, 20, 30}, []float64{0.9, 0.5, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		d, want float64
	}{
		{0, 0.9}, {9.99, 0.9}, {10, 0.5}, {15, 0.5}, {20, 0.2}, {29.9, 0.2}, {30, 0}, {100, 0},
	}
	for _, c := range cases {
		if got := s.Weight(c.d); got != c.want {
			t.Errorf("w(%v) = %v, want %v", c.d, got, c.want)
		}
	}
	if s.Support() != 30 {
		t.Errorf("support = %v", s.Support())
	}
}

func TestNewStepValidation(t *testing.T) {
	if _, err := NewStep(nil, nil); err == nil {
		t.Error("empty step should fail")
	}
	if _, err := NewStep([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := NewStep([]float64{2, 1}, []float64{1, 1}); err == nil {
		t.Error("non-ascending breaks should fail")
	}
}

func TestUniformSteps(t *testing.T) {
	s, err := UniformSteps(4, 100, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Breaks) != 4 || s.Breaks[3] != 100 {
		t.Errorf("breaks = %v", s.Breaks)
	}
	if s.Weights[0] != 0.8 || s.Weights[3] != 0.2 {
		t.Errorf("weights = %v", s.Weights)
	}
	// Monotone decay.
	for i := 1; i < len(s.Weights); i++ {
		if s.Weights[i] >= s.Weights[i-1] {
			t.Errorf("weights not decreasing: %v", s.Weights)
		}
	}
	if _, err := UniformSteps(0, 10, 1); err == nil {
		t.Error("zero bands should fail")
	}
}

// Property: all smooth weighing functions are non-negative and
// non-increasing in distance.
func TestMonotoneDecayProperty(t *testing.T) {
	funcs := []Func{
		Exponential{Bandwidth: 7, Scale: 1.5},
		Gaussian{Bandwidth: 7, Scale: 1.5},
		InverseDistance{Bandwidth: 7, Scale: 1.5},
	}
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		for _, fn := range funcs {
			wl, wh := fn.Weight(lo), fn.Weight(hi)
			if wl < 0 || wh < 0 || wh > wl {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry(50, 1)
	for _, name := range []string{"exp", "gauss", "idw", "EXP"} {
		if _, err := r.Lookup(name); err != nil {
			t.Errorf("Lookup(%q): %v", name, err)
		}
	}
	if _, err := r.Lookup("nope"); err == nil {
		t.Error("unknown lookup should fail")
	}
	s, _ := NewStep([]float64{10}, []float64{1})
	if err := r.Register(s); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(s); err == nil {
		t.Error("duplicate register should fail")
	}
	r.Replace(Exponential{Bandwidth: 99, Scale: 1}) // overwrite allowed
	f, _ := r.Lookup("exp")
	if f.(Exponential).Bandwidth != 99 {
		t.Error("Replace did not overwrite")
	}
	names := r.Names()
	if len(names) != 4 {
		t.Errorf("names = %v", names)
	}
}
