package datagen

import (
	"math/rand"

	"repro/internal/geom"
	"repro/internal/storage"
)

// RasterCell is one synthetic NYCCAS raster cell: annual predicted NO2 and
// PM2.5 concentrations at a grid location, mirroring the DOHMH air
// pollution rasters the paper's NYCCAS system ingests.
type RasterCell struct {
	ID   int64
	Loc  geom.Point
	NO2  float64
	PM25 float64
	// TruthProb is the latent P(polluted).
	TruthProb  float64
	Polluted   bool
	IsEvidence bool
	// RandomLabel marks evidence whose label was randomized — the paper
	// notes NYCCAS has "a significant amount of its evidence data entries
	// that follow random assignments", which caps Sya's recall gain there
	// (Fig. 8(b)).
	RandomLabel bool
}

// RasterConfig parameterizes the NYCCAS generator.
type RasterConfig struct {
	// Side is the raster side length in cells (Side² cells; the paper's
	// NYCCAS factor graph has 34K variables ≈ 184²).
	Side int
	// Seed drives all randomness.
	Seed int64
	// Extent is the square side in km-like units (default 30, city-like).
	Extent float64
	// Bumps in the pollution field (default 10).
	Bumps int
	// EvidenceFrac is the fraction of cells with revealed labels
	// (default 0.4).
	EvidenceFrac float64
	// RandomEvidenceFrac randomizes this fraction of revealed labels
	// (default 0.35, planting the paper's NYCCAS recall property).
	RandomEvidenceFrac float64
}

func (c RasterConfig) withDefaults() RasterConfig {
	if c.Side == 0 {
		c.Side = 30
	}
	if c.Extent == 0 {
		c.Extent = 30
	}
	if c.Bumps == 0 {
		c.Bumps = 10
	}
	if c.EvidenceFrac == 0 {
		c.EvidenceFrac = 0.4
	}
	if c.RandomEvidenceFrac == 0 {
		c.RandomEvidenceFrac = 0.35
	}
	return c
}

// RasterData is the generated NYCCAS dataset.
type RasterData struct {
	Config RasterConfig
	Cells  []RasterCell
	Field  *Field
}

// Raster generates the dataset on a Side×Side grid.
func Raster(cfg RasterConfig) *RasterData {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	field := NewField(rng, cfg.Bumps, cfg.Extent, cfg.Extent/5, 2.0)
	no2Field := NewField(rng, cfg.Bumps/2+1, cfg.Extent, cfg.Extent/6, 1.2)
	data := &RasterData{Config: cfg, Field: field}
	step := cfg.Extent / float64(cfg.Side)
	id := int64(1)
	for y := 0; y < cfg.Side; y++ {
		for x := 0; x < cfg.Side; x++ {
			p := geom.Pt((float64(x)+0.5)*step, (float64(y)+0.5)*step)
			truth := field.Prob(p)
			c := RasterCell{
				ID:        id,
				Loc:       p,
				TruthProb: truth,
				// Concentrations in index-like units: high where polluted,
				// but noisy enough that guideline thresholds alone are weak
				// predictors (as with the paper's real raster attributes).
				NO2:      clamp(27+7*truth+8*no2Field.Prob(p)+rng.NormFloat64()*6, 0, 80),
				PM25:     clamp(8+3.5*truth+rng.NormFloat64()*3, 0, 40),
				Polluted: rng.Float64() < truth,
			}
			if rng.Float64() < cfg.EvidenceFrac {
				c.IsEvidence = true
				if rng.Float64() < cfg.RandomEvidenceFrac {
					c.RandomLabel = true
					c.Polluted = rng.Intn(2) == 1
				}
			}
			data.Cells = append(data.Cells, c)
			id++
		}
	}
	return data
}

// RasterSchema returns the schema of the Cell input relation.
func RasterSchema() storage.Schema {
	return storage.Schema{
		Name: "Cell",
		Cols: []storage.Column{
			{Name: "id", Kind: storage.KindInt},
			{Name: "location", Kind: storage.KindGeom, GeomType: geom.TypePoint},
			{Name: "no2", Kind: storage.KindFloat},
			{Name: "pm25", Kind: storage.KindFloat},
		},
	}
}

// RasterEvidenceSchema returns the schema of the evidence relation.
func RasterEvidenceSchema() storage.Schema {
	return storage.Schema{
		Name: "CellEvidence",
		Cols: []storage.Column{
			{Name: "id", Kind: storage.KindInt},
			{Name: "location", Kind: storage.KindGeom, GeomType: geom.TypePoint},
			{Name: "polluted", Kind: storage.KindBool},
		},
	}
}

// Rows renders the raster as (Cell, CellEvidence) table rows.
func (d *RasterData) Rows() (cells, evidence []storage.Row) {
	for _, c := range d.Cells {
		cells = append(cells, storage.Row{
			storage.Int(c.ID), storage.Geom(c.Loc), storage.Float(c.NO2), storage.Float(c.PM25),
		})
		if c.IsEvidence {
			evidence = append(evidence, storage.Row{
				storage.Int(c.ID), storage.Geom(c.Loc), storage.Bool(c.Polluted),
			})
		}
	}
	return cells, evidence
}

// NYCCASProgram is the 4-inference-rule DDlog program that builds the
// NYCCAS knowledge base (Table I: 4 rules, 1 input relation): EPA-style
// concentration guidelines plus spatial propagation between raster cells.
const NYCCASProgram = `
# NYCCAS: air-pollution knowledge base (paper Section VI-A).
Cell (id bigint, location point, no2 double, pm25 double).
CellEvidence (id bigint, location point, polluted bool).

@spatial(exp)
Polluted? (id bigint, location point).

D1: Polluted(C, L) = NULL :- Cell(C, L, _, _).
D2: Polluted(C, L) = P :- CellEvidence(C, L, P).

# R1: NO2 above the guideline is polluted (prior).
R1: @weight(0.8)
Polluted(C, L) :- Cell(C, L, N, _) [N > 40].

# R2: PM2.5 above the guideline is polluted (prior).
R2: @weight(0.7)
Polluted(C, L) :- Cell(C, L, _, P) [P > 12].

# R3: pollution propagates to nearby cells.
R3: @weight(0.5)
Polluted(C1, L1) => Polluted(C2, L2) :-
    Cell(C1, L1, _, _), Cell(C2, L2, _, _) [distance(L1, L2) < 3].

# R4: clean on both measurements means not polluted (prior).
R4: @weight(0.6)
!Polluted(C, L) :- Cell(C, L, N, P) [N < 25, P < 7].
`
