package datagen

import (
	"math/rand"

	"repro/internal/geom"
	"repro/internal/storage"
)

// Well is one synthetic GWDB water well. Attribute semantics follow the
// paper's description of the Texas Ground Water Database: location, depth,
// and element concentrations (arsenic, fluoride, nitrate); the latent
// safety probability is the ground truth the experiments score against.
type Well struct {
	ID       int64
	Loc      geom.Point
	Arsenic  float64
	Fluoride float64
	Nitrate  float64
	Depth    float64
	Aquifer  int64
	// TruthProb is the latent P(safe) at the well's location.
	TruthProb float64
	// Safe is the Bernoulli(TruthProb) draw used as the evidence label.
	Safe bool
	// IsEvidence marks wells whose label is revealed to the system.
	IsEvidence bool
}

// WellsConfig parameterizes the GWDB generator.
type WellsConfig struct {
	// N is the number of wells (the paper's GWDB has 9,831).
	N int
	// Seed drives all randomness.
	Seed int64
	// Extent is the square side in miles-like units (Texas-like default
	// 600 when 0).
	Extent float64
	// Clusters of well locations (default 12).
	Clusters int
	// Bumps in the latent safety field (default 15).
	Bumps int
	// CorrelationLength is the bump width (default Extent/6).
	CorrelationLength float64
	// EvidenceFrac is the fraction of wells with revealed labels
	// (default 0.4).
	EvidenceFrac float64
	// RandomEvidenceFrac randomizes this fraction of the revealed labels
	// (0 for GWDB; the NYCCAS generator uses its analogue).
	RandomEvidenceFrac float64
	// Aquifers is the number of aquifer groups (default 8).
	Aquifers int
}

func (c WellsConfig) withDefaults() WellsConfig {
	if c.N == 0 {
		c.N = 1000
	}
	if c.Extent == 0 {
		c.Extent = 600
	}
	if c.Clusters == 0 {
		c.Clusters = 12
	}
	if c.Bumps == 0 {
		c.Bumps = 15
	}
	if c.CorrelationLength == 0 {
		c.CorrelationLength = c.Extent / 6
	}
	if c.EvidenceFrac == 0 {
		c.EvidenceFrac = 0.4
	}
	if c.Aquifers == 0 {
		c.Aquifers = 8
	}
	return c
}

// WellsData is the generated GWDB dataset.
type WellsData struct {
	Config WellsConfig
	Wells  []Well
	// SafetyField is the latent field (for diagnostics and truth lookup at
	// arbitrary points).
	SafetyField *Field
}

// Wells generates the dataset.
func Wells(cfg WellsConfig) *WellsData {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	field := NewField(rng, cfg.Bumps, cfg.Extent, cfg.CorrelationLength, 2.2)
	pts := clusteredPoints(rng, cfg.N, cfg.Clusters, cfg.Extent)
	// Secondary fields for fluoride/nitrate: correlated with safety but
	// with their own structure.
	fluorideField := NewField(rng, cfg.Bumps/2+1, cfg.Extent, cfg.CorrelationLength*0.8, 1.5)
	nitrateField := NewField(rng, cfg.Bumps/2+1, cfg.Extent, cfg.CorrelationLength*1.2, 1.5)
	data := &WellsData{Config: cfg, SafetyField: field}
	for i, p := range pts {
		truth := field.Prob(p)
		unsafe := 1 - truth
		w := Well{
			ID:        int64(i + 1),
			Loc:       p,
			TruthProb: truth,
			// Concentrations rise where safety falls, but only weakly: like
			// the paper's real attributes, thresholds alone are poor
			// predictors — the spatial correlation of the labels carries
			// most of the signal.
			Arsenic:  clamp(0.13+0.1*unsafe+0.08*(1-fluorideField.Prob(p))+rng.NormFloat64()*0.11, 0, 1),
			Fluoride: clamp(0.18+0.08*unsafe+0.15*(1-fluorideField.Prob(p))+rng.NormFloat64()*0.13, 0, 1),
			Nitrate:  clamp(0.18+0.07*unsafe+0.15*(1-nitrateField.Prob(p))+rng.NormFloat64()*0.13, 0, 1),
			Depth:    clamp(200+90*truth+rng.NormFloat64()*140, 5, 1500),
			Aquifer:  int64(rng.Intn(cfg.Aquifers) + 1),
			Safe:     rng.Float64() < truth,
		}
		if rng.Float64() < cfg.EvidenceFrac {
			w.IsEvidence = true
			if cfg.RandomEvidenceFrac > 0 && rng.Float64() < cfg.RandomEvidenceFrac {
				w.Safe = rng.Intn(2) == 1
			}
		}
		data.Wells = append(data.Wells, w)
	}
	return data
}

// WellSchema returns the storage schema of the Well input relation used by
// GWDBProgram.
func WellSchema() storage.Schema {
	return storage.Schema{
		Name: "Well",
		Cols: []storage.Column{
			{Name: "id", Kind: storage.KindInt},
			{Name: "location", Kind: storage.KindGeom, GeomType: geom.TypePoint},
			{Name: "arsenic", Kind: storage.KindFloat},
			{Name: "fluoride", Kind: storage.KindFloat},
			{Name: "nitrate", Kind: storage.KindFloat},
			{Name: "depth", Kind: storage.KindFloat},
			{Name: "aquifer", Kind: storage.KindInt},
		},
	}
}

// WellEvidenceSchema returns the schema of the evidence relation.
func WellEvidenceSchema() storage.Schema {
	return storage.Schema{
		Name: "WellEvidence",
		Cols: []storage.Column{
			{Name: "id", Kind: storage.KindInt},
			{Name: "location", Kind: storage.KindGeom, GeomType: geom.TypePoint},
			{Name: "safe", Kind: storage.KindBool},
		},
	}
}

// Rows renders the wells as (Well, WellEvidence) table rows.
func (d *WellsData) Rows() (wells, evidence []storage.Row) {
	for _, w := range d.Wells {
		wells = append(wells, storage.Row{
			storage.Int(w.ID), storage.Geom(w.Loc),
			storage.Float(w.Arsenic), storage.Float(w.Fluoride), storage.Float(w.Nitrate),
			storage.Float(w.Depth), storage.Int(w.Aquifer),
		})
		if w.IsEvidence {
			evidence = append(evidence, storage.Row{
				storage.Int(w.ID), storage.Geom(w.Loc), storage.Bool(w.Safe),
			})
		}
	}
	return wells, evidence
}

// GWDBProgram is the 11-inference-rule DDlog program that builds the GWDB
// knowledge base (the paper's Table I lists 11 rules over 1 input
// relation). R1 is exactly the Fig. 7 rule; the others encode further EPA
// threshold and proximity heuristics over the same attributes.
const GWDBProgram = `
# GWDB: water-well safety knowledge base (paper Section VI-A).
Well (id bigint, location point, arsenic double, fluoride double, nitrate double, depth double, aquifer bigint).
WellEvidence (id bigint, location point, safe bool).

@spatial(exp)
IsSafe? (id bigint, location point).

D1: IsSafe(W, L) = NULL :- Well(W, L, _, _, _, _, _).
D2: IsSafe(W, L) = S :- WellEvidence(W, L, S).

# R1 (Fig. 7): nearby low-arsenic wells support each other's safety.
R1: @weight(0.7)
IsSafe(W1, L1) => IsSafe(W2, L2) :-
    Well(W1, L1, A1, _, _, _, _), Well(W2, L2, A2, _, _, _, _)
    [distance(L1, L2) < 50, A1 < 0.2, A2 < 0.2].

# R2: nearby low-fluoride wells support each other.
R2: @weight(0.5)
IsSafe(W1, L1) => IsSafe(W2, L2) :-
    Well(W1, L1, _, F1, _, _, _), Well(W2, L2, _, F2, _, _, _)
    [distance(L1, L2) < 40, F1 < 0.3, F2 < 0.3].

# R3: nearby low-nitrate wells support each other.
R3: @weight(0.45)
IsSafe(W1, L1) => IsSafe(W2, L2) :-
    Well(W1, L1, _, _, N1, _, _), Well(W2, L2, _, _, N2, _, _)
    [distance(L1, L2) < 40, N1 < 0.3, N2 < 0.3].

# R4: a dangerous well makes very close wells dangerous too.
R4: @weight(0.8)
!IsSafe(W1, L1) => !IsSafe(W2, L2) :-
    Well(W1, L1, A1, _, _, _, _), Well(W2, L2, A2, _, _, _, _)
    [distance(L1, L2) < 15, A1 > 0.3, A2 > 0.3].

# R5: deep wells tend to be safe (prior).
R5: @weight(0.4)
IsSafe(W, L) :- Well(W, L, _, _, _, D, _) [D > 300].

# R6: very shallow wells tend to be unsafe (prior).
R6: @weight(0.5)
!IsSafe(W, L) :- Well(W, L, _, _, _, D, _) [D < 60].

# R7: arsenic above the EPA-style threshold is dangerous (prior).
R7: @weight(0.9)
!IsSafe(W, L) :- Well(W, L, A, _, _, _, _) [A > 0.35].

# R8: everything low is safe (prior).
R8: @weight(0.6)
IsSafe(W, L) :- Well(W, L, A, F, N, _, _) [A < 0.15, F < 0.25, N < 0.25].

# R9: combined fluoride+nitrate contamination is dangerous (prior).
R9: @weight(0.55)
!IsSafe(W, L) :- Well(W, L, _, F, N, _, _) [F > 0.45, N > 0.45].

# R10: same-aquifer wells within range share safety.
R10: @weight(0.35)
IsSafe(W1, L1) => IsSafe(W2, L2) :-
    Well(W1, L1, _, _, _, _, Q), Well(W2, L2, _, _, _, _, Q)
    [distance(L1, L2) < 80].

# R11: immediate neighbours strongly agree.
R11: @weight(0.9)
IsSafe(W1, L1) => IsSafe(W2, L2) :-
    Well(W1, L1, _, _, _, _, _), Well(W2, L2, _, _, _, _, _)
    [distance(L1, L2) < 8].
`

// GWDBCategoricalProgram is the variant used by the pruning-threshold
// experiment (Fig. 11): the safety variable becomes a categorical risk
// level with h domain values derived from binned truth probabilities.
const GWDBCategoricalProgram = `
Well (id bigint, location point, arsenic double, fluoride double, nitrate double, depth double, aquifer bigint).
LevelEvidence (id bigint, location point, level bigint).

@spatial(exp)
RiskLevel? (id bigint, location point) categorical(10).

D1: RiskLevel(W, L) = NULL :- Well(W, L, _, _, _, _, _).
D2: RiskLevel(W, L) = V :- LevelEvidence(W, L, V).

R1: @weight(0.6)
RiskLevel(W1, L1) => RiskLevel(W2, L2) :-
    Well(W1, L1, _, _, _, _, _), Well(W2, L2, _, _, _, _, _)
    [distance(L1, L2) < 40].
`

// LevelEvidenceSchema is the evidence relation of GWDBCategoricalProgram.
func LevelEvidenceSchema() storage.Schema {
	return storage.Schema{
		Name: "LevelEvidence",
		Cols: []storage.Column{
			{Name: "id", Kind: storage.KindInt},
			{Name: "location", Kind: storage.KindGeom, GeomType: geom.TypePoint},
			{Name: "level", Kind: storage.KindInt},
		},
	}
}

// Level quantizes a truth probability into h levels (0..h-1).
func Level(truth float64, h int) int64 {
	lvl := int64(truth * float64(h))
	if lvl >= int64(h) {
		lvl = int64(h) - 1
	}
	return lvl
}

// LevelRows renders categorical evidence rows for the wells.
func (d *WellsData) LevelRows(h int) []storage.Row {
	var out []storage.Row
	for _, w := range d.Wells {
		if !w.IsEvidence {
			continue
		}
		out = append(out, storage.Row{
			storage.Int(w.ID), storage.Geom(w.Loc), storage.Int(Level(w.TruthProb, h)),
		})
	}
	return out
}
