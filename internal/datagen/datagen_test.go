package datagen

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ddlog"
	"repro/internal/geom"
)

func TestFieldSmoothness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := NewField(rng, 10, 100, 20, 2)
	// Nearby points have close values; far points often differ.
	var nearDiff, farDiff float64
	n := 200
	for i := 0; i < n; i++ {
		p := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		q := geom.Pt(clamp(p.X+1, 0, 100), clamp(p.Y+1, 0, 100))
		r := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		nearDiff += math.Abs(f.Prob(p) - f.Prob(q))
		farDiff += math.Abs(f.Prob(p) - f.Prob(r))
	}
	if nearDiff >= farDiff {
		t.Errorf("field not spatially smooth: near %v >= far %v", nearDiff, farDiff)
	}
	// Probabilities in (0, 1).
	for i := 0; i < 100; i++ {
		p := f.Prob(geom.Pt(rng.Float64()*100, rng.Float64()*100))
		if p <= 0 || p >= 1 {
			t.Fatalf("Prob out of range: %v", p)
		}
	}
}

func TestWellsDeterministic(t *testing.T) {
	a := Wells(WellsConfig{N: 100, Seed: 42})
	b := Wells(WellsConfig{N: 100, Seed: 42})
	if len(a.Wells) != 100 || len(b.Wells) != 100 {
		t.Fatalf("lens = %d %d", len(a.Wells), len(b.Wells))
	}
	for i := range a.Wells {
		if a.Wells[i] != b.Wells[i] {
			t.Fatalf("well %d differs", i)
		}
	}
	c := Wells(WellsConfig{N: 100, Seed: 43})
	same := 0
	for i := range a.Wells {
		if a.Wells[i].Loc == c.Wells[i].Loc {
			same++
		}
	}
	if same == 100 {
		t.Error("different seeds produced identical data")
	}
}

func TestWellsSpatialAutocorrelation(t *testing.T) {
	d := Wells(WellsConfig{N: 500, Seed: 7})
	// Truth probabilities of nearby wells agree more than random pairs.
	var nearDiff, randDiff float64
	nearN, randN := 0, 0
	for i := 0; i < len(d.Wells); i++ {
		for j := i + 1; j < len(d.Wells) && j < i+20; j++ {
			dd := geom.Distance(d.Wells[i].Loc, d.Wells[j].Loc)
			diff := math.Abs(d.Wells[i].TruthProb - d.Wells[j].TruthProb)
			if dd < 30 {
				nearDiff += diff
				nearN++
			} else if dd > 200 {
				randDiff += diff
				randN++
			}
		}
	}
	if nearN == 0 || randN == 0 {
		t.Skip("not enough pairs")
	}
	if nearDiff/float64(nearN) >= randDiff/float64(randN) {
		t.Errorf("no autocorrelation: near %v vs far %v", nearDiff/float64(nearN), randDiff/float64(randN))
	}
}

func TestWellsEvidenceFraction(t *testing.T) {
	d := Wells(WellsConfig{N: 2000, Seed: 3, EvidenceFrac: 0.4})
	ev := 0
	for _, w := range d.Wells {
		if w.IsEvidence {
			ev++
		}
	}
	frac := float64(ev) / 2000
	if frac < 0.33 || frac > 0.47 {
		t.Errorf("evidence fraction = %v", frac)
	}
}

func TestWellsArsenicTracksDanger(t *testing.T) {
	d := Wells(WellsConfig{N: 1000, Seed: 5})
	var safeArsenic, unsafeArsenic float64
	var sn, un int
	for _, w := range d.Wells {
		if w.TruthProb > 0.7 {
			safeArsenic += w.Arsenic
			sn++
		} else if w.TruthProb < 0.3 {
			unsafeArsenic += w.Arsenic
			un++
		}
	}
	if sn == 0 || un == 0 {
		t.Skip("degenerate field")
	}
	if safeArsenic/float64(sn) >= unsafeArsenic/float64(un) {
		t.Error("arsenic does not track danger")
	}
}

func TestWellRowsShape(t *testing.T) {
	d := Wells(WellsConfig{N: 50, Seed: 1})
	wells, ev := d.Rows()
	if len(wells) != 50 {
		t.Fatalf("well rows = %d", len(wells))
	}
	if len(ev) == 0 || len(ev) >= 50 {
		t.Fatalf("evidence rows = %d", len(ev))
	}
	if len(wells[0]) != len(WellSchema().Cols) {
		t.Errorf("row width = %d", len(wells[0]))
	}
	if len(ev[0]) != len(WellEvidenceSchema().Cols) {
		t.Errorf("evidence width = %d", len(ev[0]))
	}
}

func TestLevelQuantization(t *testing.T) {
	if Level(0, 10) != 0 || Level(0.999, 10) != 9 || Level(1, 10) != 9 {
		t.Error("level bounds wrong")
	}
	if Level(0.55, 10) != 5 {
		t.Errorf("Level(0.55) = %d", Level(0.55, 10))
	}
	d := Wells(WellsConfig{N: 100, Seed: 2})
	rows := d.LevelRows(10)
	for _, r := range rows {
		lvl, _ := r[2].AsInt()
		if lvl < 0 || lvl > 9 {
			t.Fatalf("level %d out of range", lvl)
		}
	}
}

func TestRasterShapeAndRandomEvidence(t *testing.T) {
	d := Raster(RasterConfig{Side: 20, Seed: 11})
	if len(d.Cells) != 400 {
		t.Fatalf("cells = %d", len(d.Cells))
	}
	var evidence, random int
	for _, c := range d.Cells {
		if c.IsEvidence {
			evidence++
			if c.RandomLabel {
				random++
			}
		}
	}
	if evidence == 0 {
		t.Fatal("no evidence cells")
	}
	frac := float64(random) / float64(evidence)
	if frac < 0.2 || frac > 0.5 {
		t.Errorf("random evidence fraction = %v, want ≈ 0.35", frac)
	}
	cells, ev := d.Rows()
	if len(cells) != 400 || len(ev) != evidence {
		t.Errorf("rows = %d, %d", len(cells), len(ev))
	}
}

func TestRasterPollutionTracksTruth(t *testing.T) {
	d := Raster(RasterConfig{Side: 25, Seed: 13})
	var hi, lo float64
	var hn, ln int
	for _, c := range d.Cells {
		if c.TruthProb > 0.7 {
			hi += c.NO2
			hn++
		} else if c.TruthProb < 0.3 {
			lo += c.NO2
			ln++
		}
	}
	if hn == 0 || ln == 0 {
		t.Skip("degenerate field")
	}
	if hi/float64(hn) <= lo/float64(ln) {
		t.Error("NO2 does not track pollution truth")
	}
}

func TestProgramsCompile(t *testing.T) {
	for name, src := range map[string]string{
		"gwdb":     GWDBProgram,
		"gwdb-cat": GWDBCategoricalProgram,
		"nyccas":   NYCCASProgram,
		"ebola":    EbolaProgram,
	} {
		p, err := ddlog.ParseAndValidate(src)
		if err != nil {
			t.Errorf("%s does not compile: %v", name, err)
			continue
		}
		switch name {
		case "gwdb":
			if len(p.Rules) != 11 {
				t.Errorf("gwdb rules = %d, want 11 (Table I)", len(p.Rules))
			}
		case "nyccas":
			if len(p.Rules) != 4 {
				t.Errorf("nyccas rules = %d, want 4 (Table I)", len(p.Rules))
			}
		}
	}
}

func TestEbolaCountiesDistances(t *testing.T) {
	cs := EbolaCounties()
	if len(cs) != 4 {
		t.Fatalf("counties = %d", len(cs))
	}
	d := func(i, j int) float64 { return geom.HaversineMiles.Dist(cs[i].Loc, cs[j].Loc) }
	// Paper narrative: Margibi much closer than Bong; Gbarpolu just over
	// the 150-mile threshold ("only 10 miles more").
	if !(d(0, 1) < 50) {
		t.Errorf("Montserrado-Margibi = %.0f mi", d(0, 1))
	}
	if !(d(0, 2) > 80 && d(0, 2) < 150) {
		t.Errorf("Montserrado-Bong = %.0f mi", d(0, 2))
	}
	if !(d(0, 3) > 150 && d(0, 3) < 170) {
		t.Errorf("Montserrado-Gbarpolu = %.0f mi", d(0, 3))
	}
	// Only Montserrado is evidence.
	ev := 0
	for _, c := range cs {
		if c.IsEvidence {
			ev++
		}
	}
	if ev != 1 || !cs[0].IsEvidence {
		t.Error("evidence flags wrong")
	}
	// Paper scores land inside the truth ranges.
	sya := []float64{0.76, 0.53, 0.22}
	for i, s := range sya {
		if !cs[i+1].Truth.Contains(s, 0) {
			t.Errorf("%s: Sya score %v outside truth %v", cs[i+1].Name, s, cs[i+1].Truth)
		}
	}
}
