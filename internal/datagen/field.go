// Package datagen generates the synthetic datasets of this reproduction
// (see DESIGN.md, "Substitutions"): GWDB-like water wells over a Texas-like
// extent, a NYCCAS-like pollution raster over a city-like grid, and the
// EbolaKB counties of the paper's Fig. 1. All generators are seeded and
// deterministic.
//
// The property every experiment depends on is spatial autocorrelation:
// nearby ground truths agree. Generators plant it with smooth random
// fields — sums of random Gaussian bumps squashed through a sigmoid — from
// which both the observable attributes (arsenic concentration, NO2, ...)
// and the latent ground-truth factual scores are derived.
package datagen

import (
	"math"
	"math/rand"

	"repro/internal/geom"
)

// Field is a smooth scalar field over the plane: a sum of Gaussian bumps.
type Field struct {
	centers []geom.Point
	scales  []float64 // bump amplitude (signed)
	widths  []float64 // bump standard deviation
	bias    float64
}

// NewField builds a random field with the given number of bumps over the
// extent square [0, extent]². Width is the bump standard deviation; wider
// bumps mean longer correlation lengths.
func NewField(rng *rand.Rand, bumps int, extent, width, amplitude float64) *Field {
	f := &Field{}
	for i := 0; i < bumps; i++ {
		f.centers = append(f.centers, geom.Pt(rng.Float64()*extent, rng.Float64()*extent))
		sign := 1.0
		if rng.Intn(2) == 0 {
			sign = -1
		}
		f.scales = append(f.scales, sign*amplitude*(0.5+rng.Float64()))
		f.widths = append(f.widths, width*(0.5+rng.Float64()))
	}
	return f
}

// At evaluates the raw field.
func (f *Field) At(p geom.Point) float64 {
	v := f.bias
	for i, c := range f.centers {
		d2 := geom.DistanceSq(p, c)
		w := f.widths[i]
		v += f.scales[i] * math.Exp(-d2/(2*w*w))
	}
	return v
}

// Prob evaluates the field squashed to (0, 1) via the logistic function:
// the latent ground-truth probability at p.
func (f *Field) Prob(p geom.Point) float64 {
	return 1 / (1 + math.Exp(-f.At(p)))
}

// clusteredPoints draws n points: a fraction uniform over the extent, the
// rest around cluster centres — mimicking how wells and monitors
// concentrate around settlements.
func clusteredPoints(rng *rand.Rand, n, clusters int, extent float64) []geom.Point {
	centers := make([]geom.Point, clusters)
	for i := range centers {
		centers[i] = geom.Pt(rng.Float64()*extent, rng.Float64()*extent)
	}
	spread := extent / (2 * math.Sqrt(float64(clusters)+1))
	pts := make([]geom.Point, n)
	for i := range pts {
		if clusters == 0 || rng.Float64() < 0.3 {
			pts[i] = geom.Pt(rng.Float64()*extent, rng.Float64()*extent)
			continue
		}
		c := centers[rng.Intn(clusters)]
		x := clamp(c.X+rng.NormFloat64()*spread, 0, extent)
		y := clamp(c.Y+rng.NormFloat64()*spread, 0, extent)
		pts[i] = geom.Pt(x, y)
	}
	return pts
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
