package datagen

import (
	"repro/internal/geom"
	"repro/internal/stats"
	"repro/internal/storage"
)

// County is one EbolaKB county (the paper's Fig. 1 worked example).
type County struct {
	ID   int64
	Name string
	Loc  geom.Point
	// LowSanitation is the shared sanitation-level flag of Fig. 1(a)
	// (all four counties are on the same level in the paper's table).
	LowSanitation bool
	// HasEbola marks the declared evidence (Montserrado only).
	HasEbola   bool
	IsEvidence bool
	// Truth is the WHO-style ground-truth infection-rate range of
	// Fig. 1(b); factual scores are judged correct inside it.
	Truth stats.TruthRange
}

// EbolaCounties returns the Fig. 1 scenario. Coordinates are synthetic but
// distance-faithful to the paper's narrative: Montserrado–Margibi ≈ 29 mi,
// –Bong ≈ 106 mi, –Gbarpolu ≈ 158 mi ("only 10 miles more than the cut-off
// threshold"). Truth ranges are chosen so the paper's reported scores are
// judged as in Fig. 1(b): Sya's (0.76, 0.53, 0.22) land inside, DeepDive's
// boolean-predicate scores (0.51, 0.45, 0.06) mostly do not.
func EbolaCounties() []County {
	return []County{
		{
			ID: 1, Name: "Montserrado", Loc: geom.Pt(-10.80, 6.32),
			LowSanitation: true, HasEbola: true, IsEvidence: true,
			Truth: stats.TruthRange{Lo: 0.80, Hi: 1.00},
		},
		{
			ID: 2, Name: "Margibi", Loc: geom.Pt(-10.45, 6.55),
			LowSanitation: true,
			Truth:         stats.TruthRange{Lo: 0.65, Hi: 0.90},
		},
		{
			ID: 3, Name: "Bong", Loc: geom.Pt(-9.45, 7.05),
			LowSanitation: true,
			Truth:         stats.TruthRange{Lo: 0.45, Hi: 0.70},
		},
		{
			ID: 4, Name: "Gbarpolu", Loc: geom.Pt(-8.90, 7.60),
			LowSanitation: false,
			Truth:         stats.TruthRange{Lo: 0.15, Hi: 0.40},
		},
	}
}

// LiberiaRegion is the bounding polygon used by the within predicate of the
// Fig. 3 rule.
const LiberiaRegion = "POLYGON((-12 4, -7 4, -7 9, -12 9))"

// CountySchema returns the County input relation schema (Fig. 3, S1 —
// hasLowSanitation flag included).
func CountySchema() storage.Schema {
	return storage.Schema{
		Name: "County",
		Cols: []storage.Column{
			{Name: "id", Kind: storage.KindInt},
			{Name: "location", Kind: storage.KindGeom, GeomType: geom.TypePoint},
			{Name: "hasLowSanitation", Kind: storage.KindBool},
		},
	}
}

// CountyEvidenceSchema returns the EbolaKB evidence relation schema.
func CountyEvidenceSchema() storage.Schema {
	return storage.Schema{
		Name: "CountyEvidence",
		Cols: []storage.Column{
			{Name: "id", Kind: storage.KindInt},
			{Name: "location", Kind: storage.KindGeom, GeomType: geom.TypePoint},
			{Name: "hasEbola", Kind: storage.KindBool},
		},
	}
}

// EbolaRows renders the counties as (County, CountyEvidence) rows.
func EbolaRows(counties []County) (county, evidence []storage.Row) {
	for _, c := range counties {
		county = append(county, storage.Row{
			storage.Int(c.ID), storage.Geom(c.Loc), storage.Bool(c.LowSanitation),
		})
		if c.IsEvidence {
			evidence = append(evidence, storage.Row{
				storage.Int(c.ID), storage.Geom(c.Loc), storage.Bool(c.HasEbola),
			})
		}
	}
	return county, evidence
}

// EbolaProgram is the paper's Fig. 3 program (plus the evidence derivation
// and the standard negative class prior every MLN KB program carries —
// without it no score can fall below 0.5, while both systems in Fig. 1(b)
// report scores well below it): the Sya formulation where P3 becomes "the
// closer County Y to X, the higher its Ebola infection rate" via the
// @spatial(exp) annotation.
const EbolaProgram = `
const liberia_geom = '` + LiberiaRegion + `'.

S1: County (id bigint, location point, hasLowSanitation bool).
E1: CountyEvidence (id bigint, location point, hasEbola bool).

@spatial(exp)
S2: HasEbola? (id bigint, location point).

D1: HasEbola(C, L) = NULL :- County(C, L, _).
D2: HasEbola(C, L) = E :- CountyEvidence(C, L, E).

# Class prior: infection is rare absent supporting signals.
R0: @weight(1.0)
!HasEbola(C, L) :- County(C, L, _).

R1: @weight(0.5)
HasEbola(C1, L1) => HasEbola(C2, L2) :-
    County(C1, L1, _), County(C2, L2, S2)
    [distance(L1, L2) < 150, within(liberia_geom, L1), S2 = true].
`
