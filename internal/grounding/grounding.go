// Package grounding implements Sya's grounding module (paper Section IV):
// it evaluates a validated DDlog program against the storage database and
// constructs the spatial factor graph.
//
// The phases mirror the paper's pipeline:
//
//  1. UDF applications run first (feature extraction, e.g. spatial NER);
//  2. derivation rules materialize the variable relations — one ground atom
//     per distinct head-key tuple, with evidence from the label term;
//  3. inference rules are translated to SQL (internal/translate), executed
//     by the sqlx engine (which re-orders range predicates before spatial
//     joins, Fig. 5), and every result row becomes one weighted logical
//     factor (Eq. 1);
//  4. for every @spatial variable relation, spatial factors (Eq. 2/Eq. 4)
//     are generated between atom pairs within the weighing function's
//     support radius, using an R-tree to avoid the all-pairs scan;
//  5. for categorical spatial relations, the co-occurrence pruning of
//     Section IV-C computes P(i|j) and P(j|i) over neighbouring evidence
//     atoms and keeps only domain-value pairs exceeding the threshold T.
package grounding

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/ddlog"
	"repro/internal/factorgraph"
	"repro/internal/geom"
	"repro/internal/index/rtree"
	"repro/internal/obs"
	"repro/internal/sqlx"
	"repro/internal/storage"
	"repro/internal/translate"
	"repro/internal/weighting"
)

// UDF is a user-defined function implementation: one input tuple in, zero
// or more output rows out (paper Section III, "Spatial UDFs").
type UDF func(args []storage.Value) ([]storage.Row, error)

// Options configures grounding.
type Options struct {
	// Metric is the distance metric for rule distance predicates and
	// spatial-factor weights.
	Metric geom.Metric
	// Weighting resolves @spatial(w) names; nil uses a default registry
	// with bandwidth 50 and unit scale.
	Weighting *weighting.Registry
	// PruneThreshold is T of Section IV-C; used only for categorical
	// spatial relations. Default 0.5.
	PruneThreshold float64
	// SupportRadius overrides the weighing function's support radius for
	// spatial-factor generation (0 keeps the function's own).
	SupportRadius float64
	// MaxNeighbors caps spatial factors per atom to its k nearest
	// neighbours (0 = unlimited). A scalability valve for dense data.
	MaxNeighbors int
	// UDFs resolves function implementation keys.
	UDFs map[string]UDF
	// SkipFactorTables disables materializing per-rule factor relations
	// (sya_factors_<label>) in the database. The paper stores the ground
	// factor graph in the RDBMS; keeping the tables is faithful but costs
	// memory on large runs.
	SkipFactorTables bool
	// Trace, when non-nil, receives structured phase events: one per UDF
	// application, derivation and inference rule (row and factor counts with
	// wall time), one per @spatial relation, and a closing summary.
	Trace *obs.Trace
}

func (o Options) withDefaults() Options {
	if o.Weighting == nil {
		o.Weighting = weighting.NewRegistry(50, 1)
	}
	if o.PruneThreshold == 0 {
		o.PruneThreshold = 0.5
	}
	return o
}

// Stats reports what grounding produced and how long the phases took
// (Table I and the grounding-time series of Figs. 9–11 come from here).
type Stats struct {
	Vars                 int
	EvidenceVars         int
	QueryVars            int
	LogicalFactors       int
	SpatialPairs         int
	GroundSpatialFactors int64
	SkippedHeadLookups   int
	DuplicateDerivations int
	PrunedValuePairs     int
	AllowedValuePairs    int
	RuleFactors          map[string]int
	DerivationRows       map[string]int
	RuleSQL              map[string]string

	RulesTime   time.Duration
	SpatialTime time.Duration
	TotalTime   time.Duration
}

// Result is the grounding output.
type Result struct {
	Graph *factorgraph.Graph
	Stats Stats
	// VarID resolves "Relation|k1|k2|..." ground-atom keys.
	VarID map[string]factorgraph.VarID
	// RelationIndex maps variable relation names (lower-cased) to the
	// Relation field used in factorgraph variables.
	RelationIndex map[string]int32
	// RuleNames lists the inference rules in grounding order; FactorRule
	// maps every logical factor to its rule index — the tying structure
	// weight learning (internal/learn) needs.
	RuleNames  []string
	FactorRule []int32
}

// Grounder drives grounding of one program over one database.
type Grounder struct {
	prog *ddlog.Program
	db   *storage.DB
	eng  *sqlx.Engine
	opts Options
	// ctx is the active grounding context, polled between phases and
	// periodically inside the row/atom loops (set by GroundContext).
	ctx context.Context
	// spatial collects the located ground atoms of each @spatial relation
	// (keyed by lower-cased relation name) during derivation, for the
	// spatial-factor phase.
	spatial map[string][]spatialAtom
}

// checkCtx polls the grounding context on every 256th iteration, so hot
// loops pay one atomic load amortized rather than a ctx.Err call per row.
func (gr *Grounder) checkCtx(i int) error {
	if i&255 == 0 {
		if err := gr.ctx.Err(); err != nil {
			return fmt.Errorf("grounding: interrupted: %w", err)
		}
	}
	return nil
}

// New creates a grounder.
func New(prog *ddlog.Program, db *storage.DB, opts Options) *Grounder {
	return &Grounder{
		prog:    prog,
		db:      db,
		eng:     sqlx.NewEngine(db),
		opts:    opts.withDefaults(),
		spatial: map[string][]spatialAtom{},
	}
}

// EnsureSchemas creates any program relations missing from the database
// (callers typically pre-create and load the typical relations; variable
// relations are materialized here).
func (gr *Grounder) EnsureSchemas() error {
	for _, rel := range gr.prog.Relations {
		if _, err := gr.db.Table(rel.Name); err == nil {
			continue
		}
		if _, err := gr.db.Create(translate.SchemaFor(rel)); err != nil {
			return err
		}
	}
	return nil
}

// AtomKey builds the ground-atom identity used by Result.VarID from a
// relation name and the atom's term values: "relname|v1|v2|..." with the
// relation lower-cased and values rendered by storage.Value.String.
func AtomKey(rel string, vals []storage.Value) string {
	parts := make([]string, 0, len(vals)+1)
	parts = append(parts, strings.ToLower(rel))
	for _, v := range vals {
		parts = append(parts, v.String())
	}
	return strings.Join(parts, "|")
}

// atomKey is the internal alias.
func atomKey(rel string, vals []storage.Value) string { return AtomKey(rel, vals) }

// Ground runs all phases and returns the spatial factor graph.
func (gr *Grounder) Ground() (*Result, error) {
	return gr.GroundContext(context.Background())
}

// GroundContext is Ground under a context: cancellation is honoured between
// phases and periodically inside the per-row and per-atom loops, returning
// the context error. A cancelled grounding leaves no usable Result — unlike
// sampling there is no meaningful partial factor graph.
func (gr *Grounder) GroundContext(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	gr.ctx = ctx
	start := time.Now()
	if err := gr.EnsureSchemas(); err != nil {
		return nil, err
	}
	res := &Result{
		VarID:         map[string]factorgraph.VarID{},
		RelationIndex: map[string]int32{},
	}
	res.Stats.RuleFactors = map[string]int{}
	res.Stats.DerivationRows = map[string]int{}
	res.Stats.RuleSQL = map[string]string{}
	for i, rel := range gr.prog.VariableRelations() {
		res.RelationIndex[strings.ToLower(rel.Name)] = int32(i)
	}
	builder := factorgraph.NewBuilder()

	rulesStart := time.Now()
	if err := gr.runApps(); err != nil {
		return nil, err
	}
	if err := gr.checkCtx(0); err != nil {
		return nil, err
	}
	if err := gr.runDerivations(builder, res); err != nil {
		return nil, err
	}
	if err := gr.checkCtx(0); err != nil {
		return nil, err
	}
	if err := gr.runInferenceRules(builder, res); err != nil {
		return nil, err
	}
	res.Stats.RulesTime = time.Since(rulesStart)

	spatialStart := time.Now()
	if err := gr.groundSpatialFactors(builder, res); err != nil {
		return nil, err
	}
	res.Stats.SpatialTime = time.Since(spatialStart)

	g, err := builder.Finalize()
	if err != nil {
		return nil, err
	}
	res.Graph = g
	res.Stats.Vars = g.NumVars()
	res.Stats.LogicalFactors = g.NumFactors()
	res.Stats.SpatialPairs = g.NumSpatialFactors()
	res.Stats.GroundSpatialFactors = g.CountGroundSpatialFactors()
	g.Vars(func(_ factorgraph.VarID, v factorgraph.Variable) bool {
		if v.Evidence == factorgraph.NoEvidence {
			res.Stats.QueryVars++
		} else {
			res.Stats.EvidenceVars++
		}
		return true
	})
	res.Stats.TotalTime = time.Since(start)
	gr.opts.Trace.Emit("grounding", "done",
		"vars", res.Stats.Vars,
		"evidence_vars", res.Stats.EvidenceVars,
		"query_vars", res.Stats.QueryVars,
		"logical_factors", res.Stats.LogicalFactors,
		"spatial_pairs", res.Stats.SpatialPairs,
		"dur_ms", obs.Ms(res.Stats.TotalTime),
	)
	return res, nil
}

// runApps executes UDF applications.
func (gr *Grounder) runApps() error {
	for _, app := range gr.prog.Apps {
		appStart := time.Now()
		var impl UDF
		var implKey string
		for _, fn := range gr.prog.Functions {
			if strings.EqualFold(fn.Name, app.Fn) {
				implKey = fn.Implementation
				break
			}
		}
		impl = gr.opts.UDFs[implKey]
		if impl == nil {
			return fmt.Errorf("grounding: no implementation registered for UDF %q (key %q)", app.Fn, implKey)
		}
		q, err := translate.App(gr.prog, app, translate.Options{Metric: gr.opts.Metric})
		if err != nil {
			return err
		}
		rows, err := gr.eng.Exec(q.SQL, q.Params)
		if err != nil {
			return fmt.Errorf("grounding: UDF %s body: %w", app.Fn, err)
		}
		target, err := gr.db.Table(app.Target)
		if err != nil {
			return err
		}
		for _, in := range rows.Rows {
			outs, err := impl(in)
			if err != nil {
				return fmt.Errorf("grounding: UDF %s: %w", app.Fn, err)
			}
			for _, out := range outs {
				if err := target.Append(out); err != nil {
					return fmt.Errorf("grounding: UDF %s output: %w", app.Fn, err)
				}
			}
		}
		gr.opts.Trace.Emit("grounding", "udf",
			"fn", app.Fn, "rows", len(rows.Rows), "dur_ms", obs.Ms(time.Since(appStart)))
	}
	return nil
}

// derivedAtom accumulates one ground atom before variable creation.
type derivedAtom struct {
	rel      *ddlog.RelationDecl
	vals     []storage.Value
	evidence int32
	order    int
}

// runDerivations materializes variable relations and creates ground atoms.
func (gr *Grounder) runDerivations(b *factorgraph.Builder, res *Result) error {
	atoms := map[string]*derivedAtom{}
	order := 0
	for _, d := range gr.prog.Derivations {
		derStart := time.Now()
		q, err := translate.Derivation(gr.prog, d, translate.Options{Metric: gr.opts.Metric})
		if err != nil {
			return err
		}
		res.Stats.RuleSQL[ruleName("derivation", d.Label, len(res.Stats.RuleSQL))] = q.SQL
		rows, err := gr.eng.Exec(q.SQL, q.Params)
		if err != nil {
			return fmt.Errorf("grounding: derivation %s: %w", d.Label, err)
		}
		rel, _ := gr.prog.Relation(d.Head.Rel)
		width := len(d.Head.Terms)
		for ri, row := range rows.Rows {
			if err := gr.checkCtx(ri); err != nil {
				return err
			}
			key := atomKey(rel.Name, row[:width])
			ev, err := labelToEvidence(rel, row[width])
			if err != nil {
				return fmt.Errorf("grounding: derivation %s: %w", d.Label, err)
			}
			res.Stats.DerivationRows[derLabel(d)]++
			if existing, dup := atoms[key]; dup {
				res.Stats.DuplicateDerivations++
				// Evidence beats NULL; conflicting evidence keeps the first.
				if existing.evidence == factorgraph.NoEvidence && ev != factorgraph.NoEvidence {
					existing.evidence = ev
				}
				continue
			}
			atoms[key] = &derivedAtom{
				rel:      rel,
				vals:     append([]storage.Value(nil), row[:width]...),
				evidence: ev,
				order:    order,
			}
			order++
		}
		gr.opts.Trace.Emit("grounding", "derivation",
			"label", derLabel(d), "rows", len(rows.Rows), "dur_ms", obs.Ms(time.Since(derStart)))
	}
	// Deterministic creation order: derivation order.
	sorted := make([]*derivedAtom, 0, len(atoms))
	keys := make([]string, 0, len(atoms))
	for k := range atoms {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return atoms[keys[i]].order < atoms[keys[j]].order })
	for _, k := range keys {
		sorted = append(sorted, atoms[k])
	}
	for i, a := range sorted {
		domain := int32(2)
		if a.rel.Categorical > 0 {
			domain = int32(a.rel.Categorical)
		}
		v := factorgraph.Variable{
			Name:     a.rel.Name + "(" + keys[i] + ")",
			Domain:   domain,
			Evidence: a.evidence,
			Relation: res.RelationIndex[strings.ToLower(a.rel.Name)],
		}
		if sc := a.rel.SpatialCol(); sc >= 0 && !a.vals[sc].IsNull() {
			if g, err := a.vals[sc].AsGeom(); err == nil {
				v.Loc = g.Bounds().Center()
				v.HasLoc = true
			}
		}
		vid, err := b.AddVariable(v)
		if err != nil {
			return err
		}
		res.VarID[keys[i]] = vid
		if a.rel.Spatial != "" && v.HasLoc {
			relKey := strings.ToLower(a.rel.Name)
			gr.spatial[relKey] = append(gr.spatial[relKey], spatialAtom{
				vid: vid, loc: v.Loc, evidence: a.evidence,
			})
		}
		// Materialize the atom into the variable relation table.
		tbl, err := gr.db.Table(a.rel.Name)
		if err != nil {
			return err
		}
		row := make(storage.Row, len(a.vals)+1)
		copy(row, a.vals)
		row[len(a.vals)] = storage.Int(int64(vid))
		if err := tbl.Append(row); err != nil {
			return err
		}
	}
	return nil
}

func derLabel(d *ddlog.DerivationRule) string {
	if d.Label != "" {
		return d.Label
	}
	return "derivation@" + fmt.Sprint(d.Line)
}

func ruleName(kind, label string, n int) string {
	if label != "" {
		return label
	}
	return fmt.Sprintf("%s#%d", kind, n)
}

// labelToEvidence converts a derivation label value into an evidence value.
func labelToEvidence(rel *ddlog.RelationDecl, v storage.Value) (int32, error) {
	if v.IsNull() {
		return factorgraph.NoEvidence, nil
	}
	switch v.Kind {
	case storage.KindBool:
		if rel.Categorical > 0 {
			return 0, fmt.Errorf("boolean label for categorical relation %s", rel.Name)
		}
		if v.I != 0 {
			return 1, nil
		}
		return 0, nil
	case storage.KindInt, storage.KindFloat:
		iv, err := v.AsInt()
		if err != nil {
			return 0, err
		}
		domain := int64(2)
		if rel.Categorical > 0 {
			domain = int64(rel.Categorical)
		}
		if iv < 0 || iv >= domain {
			return 0, fmt.Errorf("label %d outside domain of %s", iv, rel.Name)
		}
		return int32(iv), nil
	default:
		return 0, fmt.Errorf("unsupported label kind %s for %s", v.Kind, rel.Name)
	}
}

// runInferenceRules grounds logical factors.
func (gr *Grounder) runInferenceRules(b *factorgraph.Builder, res *Result) error {
	for ri, rule := range gr.prog.Rules {
		ruleStart := time.Now()
		q, err := translate.Inference(gr.prog, rule, translate.Options{Metric: gr.opts.Metric})
		if err != nil {
			return err
		}
		name := ruleName("rule", rule.Label, ri)
		res.RuleNames = append(res.RuleNames, name)
		ruleIdx := int32(len(res.RuleNames) - 1)
		res.Stats.RuleSQL[name] = q.SQL
		rows, err := gr.eng.Exec(q.SQL, q.Params)
		if err != nil {
			return fmt.Errorf("grounding: rule %s: %w", name, err)
		}
		kind, err := factorKindFor(rule)
		if err != nil {
			return fmt.Errorf("grounding: rule %s: %w", name, err)
		}
		var factorTable *storage.Table
		if !gr.opts.SkipFactorTables {
			factorTable, err = gr.ensureFactorTable(name, len(rule.Head))
			if err != nil {
				return err
			}
		}
		for ri, row := range rows.Rows {
			if err := gr.checkCtx(ri); err != nil {
				return err
			}
			vars := make([]factorgraph.VarID, 0, len(rule.Head))
			neg := make([]bool, 0, len(rule.Head))
			off := 0
			ok := true
			for hi, h := range rule.Head {
				w := q.HeadWidths[hi]
				key := atomKey(h.Atom.Rel, row[off:off+w])
				off += w
				vid, found := res.VarID[key]
				if !found {
					res.Stats.SkippedHeadLookups++
					ok = false
					break
				}
				vars = append(vars, vid)
				neg = append(neg, h.Negated)
			}
			if !ok {
				continue
			}
			if err := b.AddFactor(kind, rule.Weight, vars, neg); err != nil {
				return fmt.Errorf("grounding: rule %s: %w", name, err)
			}
			res.FactorRule = append(res.FactorRule, ruleIdx)
			res.Stats.RuleFactors[name]++
			if factorTable != nil {
				frow := make(storage.Row, len(rule.Head)+2)
				for i, v := range vars {
					frow[i] = storage.Int(int64(v))
				}
				frow[len(rule.Head)] = storage.Str(kind.String())
				frow[len(rule.Head)+1] = storage.Float(rule.Weight)
				if err := factorTable.Append(frow); err != nil {
					return err
				}
			}
		}
		gr.opts.Trace.Emit("grounding", "rule",
			"rule", name, "rows", len(rows.Rows), "factors", res.Stats.RuleFactors[name],
			"dur_ms", obs.Ms(time.Since(ruleStart)))
	}
	return nil
}

// ensureFactorTable creates the per-rule factor relation the paper's Fig. 5
// inserts into (INSERT INTO R1_Factors ...).
func (gr *Grounder) ensureFactorTable(rule string, heads int) (*storage.Table, error) {
	name := "sya_factors_" + rule
	if t, err := gr.db.Table(name); err == nil {
		return t, nil
	}
	schema := storage.Schema{Name: name}
	for i := 0; i < heads; i++ {
		schema.Cols = append(schema.Cols, storage.Column{Name: fmt.Sprintf("v%d", i+1), Kind: storage.KindInt})
	}
	schema.Cols = append(schema.Cols,
		storage.Column{Name: "type", Kind: storage.KindString},
		storage.Column{Name: "weight", Kind: storage.KindFloat},
	)
	return gr.db.Create(schema)
}

// factorKindFor maps head connectives to factor kinds.
func factorKindFor(r *ddlog.InferenceRule) (factorgraph.FactorKind, error) {
	switch r.Connective {
	case ddlog.ConnImply:
		return factorgraph.FactorImply, nil
	case ddlog.ConnAnd:
		return factorgraph.FactorAnd, nil
	case ddlog.ConnOr:
		return factorgraph.FactorOr, nil
	case ddlog.ConnSingle:
		return factorgraph.FactorIsTrue, nil
	default:
		return 0, fmt.Errorf("unsupported head connective")
	}
}

// spatialAtom is one located ground atom of a spatial relation.
type spatialAtom struct {
	vid      factorgraph.VarID
	loc      geom.Point
	evidence int32
}

// groundSpatialFactors generates Eq. 2 / Eq. 4 factors for every @spatial
// relation, plus the Section IV-C pruning mask for categorical domains.
func (gr *Grounder) groundSpatialFactors(b *factorgraph.Builder, res *Result) error {
	for _, rel := range gr.prog.VariableRelations() {
		if rel.Spatial == "" {
			continue
		}
		relStart := time.Now()
		fn, err := gr.opts.Weighting.Lookup(rel.Spatial)
		if err != nil {
			return fmt.Errorf("grounding: relation %s: %w", rel.Name, err)
		}
		radius := gr.opts.SupportRadius
		if radius <= 0 {
			radius = fn.Support()
		}
		atoms := gr.spatial[strings.ToLower(rel.Name)]
		if len(atoms) == 0 {
			continue
		}
		// Categorical pruning mask (Section IV-C).
		if rel.Categorical > 0 {
			mask, pruned, allowed := gr.cooccurrenceMask(rel, atoms, radius)
			relIdx := res.RelationIndex[strings.ToLower(rel.Name)]
			if err := b.SetAllowedPairs(relIdx, int32(rel.Categorical), mask); err != nil {
				return err
			}
			res.Stats.PrunedValuePairs += pruned
			res.Stats.AllowedValuePairs += allowed
		}
		// R-tree over atoms for neighbour search.
		items := make([]rtree.Item, len(atoms))
		for i, a := range atoms {
			items[i] = rtree.Item{Rect: a.loc.Bounds(), Data: int64(i)}
		}
		tree := rtree.Bulk(items)
		seen := map[[2]factorgraph.VarID]bool{}
		for i, a := range atoms {
			if err := gr.checkCtx(i); err != nil {
				return err
			}
			window := geom.ExpandWindow(a.loc.Bounds(), radius, gr.opts.Metric)
			var cands []int
			tree.Search(window, func(it rtree.Item) bool {
				cands = append(cands, int(it.Data))
				return true
			})
			sort.Ints(cands)
			type scored struct {
				j int
				d float64
			}
			var within []scored
			for _, j := range cands {
				if j == i {
					continue
				}
				d := gr.opts.Metric.Dist(a.loc, atoms[j].loc)
				if d > radius {
					continue
				}
				within = append(within, scored{j: j, d: d})
			}
			if gr.opts.MaxNeighbors > 0 && len(within) > gr.opts.MaxNeighbors {
				sort.Slice(within, func(x, y int) bool { return within[x].d < within[y].d })
				within = within[:gr.opts.MaxNeighbors]
				sort.Slice(within, func(x, y int) bool { return within[x].j < within[y].j })
			}
			for _, sc := range within {
				other := atoms[sc.j]
				key := [2]factorgraph.VarID{a.vid, other.vid}
				if key[0] > key[1] {
					key[0], key[1] = key[1], key[0]
				}
				if seen[key] {
					continue
				}
				seen[key] = true
				if err := b.AddSpatialPair(a.vid, other.vid, fn.Weight(sc.d)); err != nil {
					return fmt.Errorf("grounding: relation %s: %w", rel.Name, err)
				}
			}
		}
		gr.opts.Trace.Emit("grounding", "spatial",
			"relation", rel.Name, "atoms", len(atoms), "pairs", len(seen),
			"dur_ms", obs.Ms(time.Since(relStart)))
	}
	return nil
}

// cooccurrenceMask computes the Section IV-C pruning mask: for each pair of
// domain values (i, j), P(i|j) and P(j|i) are estimated from pairs of
// neighbouring evidence atoms; the pair survives when either conditional
// probability reaches the threshold T.
func (gr *Grounder) cooccurrenceMask(rel *ddlog.RelationDecl, atoms []spatialAtom, radius float64) (mask []bool, pruned, allowed int) {
	h := rel.Categorical
	cooc := make([][]float64, h)
	for i := range cooc {
		cooc[i] = make([]float64, h)
	}
	occ := make([]float64, h)
	// Evidence atoms only.
	var ev []spatialAtom
	for _, a := range atoms {
		if a.evidence != factorgraph.NoEvidence {
			ev = append(ev, a)
		}
	}
	items := make([]rtree.Item, len(ev))
	for i, a := range ev {
		items[i] = rtree.Item{Rect: a.loc.Bounds(), Data: int64(i)}
	}
	tree := rtree.Bulk(items)
	for i, a := range ev {
		occ[a.evidence]++
		window := geom.ExpandWindow(a.loc.Bounds(), radius, gr.opts.Metric)
		tree.Search(window, func(it rtree.Item) bool {
			j := int(it.Data)
			if j <= i {
				return true
			}
			if gr.opts.Metric.Dist(a.loc, ev[j].loc) > radius {
				return true
			}
			vi, vj := a.evidence, ev[j].evidence
			cooc[vi][vj]++
			cooc[vj][vi]++
			return true
		})
	}
	mask = make([]bool, h*h)
	anyPairs := false
	for i := 0; i < h; i++ {
		for j := 0; j < h; j++ {
			if cooc[i][j] > 0 {
				anyPairs = true
			}
		}
	}
	if !anyPairs {
		// No evidence statistics: keep everything (no basis to prune).
		for i := range mask {
			mask[i] = true
		}
		return mask, 0, h * h
	}
	// A domain-value pair survives when its co-occurrence probabilities
	// exceed the threshold — both conditionals, per Section IV-C's "co-occur
	// with certain probabilities that exceed a pre-defined threshold T".
	// Requiring both makes T the recall/precision dial of Fig. 11: small T
	// admits wide value ranges (recall), large T keeps only the strongest
	// spatial correlations (precision, and far fewer factors).
	T := gr.opts.PruneThreshold
	for i := 0; i < h; i++ {
		for j := 0; j < h; j++ {
			var pij, pji float64
			if occ[j] > 0 {
				pij = cooc[i][j] / occ[j] // P(i|j)
			}
			if occ[i] > 0 {
				pji = cooc[i][j] / occ[i] // P(j|i)
			}
			if pij >= T && pji >= T {
				mask[i*h+j] = true
				allowed++
			} else {
				pruned++
			}
		}
	}
	return mask, pruned, allowed
}
