// Package grounding implements Sya's grounding module (paper Section IV):
// it evaluates a validated DDlog program against the storage database and
// constructs the spatial factor graph.
//
// The phases mirror the paper's pipeline:
//
//  1. UDF applications run first (feature extraction, e.g. spatial NER);
//  2. derivation rules materialize the variable relations — one ground atom
//     per distinct head-key tuple, with evidence from the label term;
//  3. inference rules are translated to SQL (internal/translate), executed
//     by the sqlx engine (which re-orders range predicates before spatial
//     joins, Fig. 5), and every result row becomes one weighted logical
//     factor (Eq. 1);
//  4. for every @spatial variable relation, spatial factors (Eq. 2/Eq. 4)
//     are generated between atom pairs within the weighing function's
//     support radius, using an R-tree to avoid the all-pairs scan;
//  5. for categorical spatial relations, the co-occurrence pruning of
//     Section IV-C computes P(i|j) and P(j|i) over neighbouring evidence
//     atoms and keeps only domain-value pairs exceeding the threshold T.
package grounding

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"sort"
	"strings"
	"time"

	"repro/internal/ddlog"
	"repro/internal/factorgraph"
	"repro/internal/geom"
	"repro/internal/index/rtree"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/sqlx"
	"repro/internal/storage"
	"repro/internal/translate"
	"repro/internal/weighting"
)

// UDF is a user-defined function implementation: one input tuple in, zero
// or more output rows out (paper Section III, "Spatial UDFs").
type UDF func(args []storage.Value) ([]storage.Row, error)

// Options configures grounding.
type Options struct {
	// Metric is the distance metric for rule distance predicates and
	// spatial-factor weights.
	Metric geom.Metric
	// Weighting resolves @spatial(w) names; nil uses a default registry
	// with bandwidth 50 and unit scale.
	Weighting *weighting.Registry
	// PruneThreshold is T of Section IV-C; used only for categorical
	// spatial relations. Default 0.5.
	PruneThreshold float64
	// SupportRadius overrides the weighing function's support radius for
	// spatial-factor generation (0 keeps the function's own).
	SupportRadius float64
	// MaxNeighbors caps spatial factors per atom to its k nearest
	// neighbours (0 = unlimited). A scalability valve for dense data.
	MaxNeighbors int
	// UDFs resolves function implementation keys.
	UDFs map[string]UDF
	// SkipFactorTables disables materializing per-rule factor relations
	// (sya_factors_<label>) in the database. The paper stores the ground
	// factor graph in the RDBMS; keeping the tables is faithful but costs
	// memory on large runs.
	SkipFactorTables bool
	// Workers is the grounding worker-pool width: concurrent rule/derivation
	// query evaluation, sharded spatial sweeps and co-occurrence counting
	// (0 → GOMAXPROCS, 1 → fully sequential). The grounded factor graph is
	// identical for any worker count (see DESIGN.md §9).
	Workers int
	// Trace, when non-nil, receives structured phase events: one per UDF
	// application, derivation and inference rule (row and factor counts with
	// wall time), one per @spatial relation, and a closing summary.
	Trace *obs.Trace
}

func (o Options) withDefaults() Options {
	if o.Weighting == nil {
		o.Weighting = weighting.NewRegistry(50, 1)
	}
	if o.PruneThreshold == 0 {
		o.PruneThreshold = 0.5
	}
	return o
}

// Stats reports what grounding produced and how long the phases took
// (Table I and the grounding-time series of Figs. 9–11 come from here).
type Stats struct {
	Vars                 int
	EvidenceVars         int
	QueryVars            int
	LogicalFactors       int
	SpatialPairs         int
	GroundSpatialFactors int64
	SkippedHeadLookups   int
	DuplicateDerivations int
	PrunedValuePairs     int
	AllowedValuePairs    int
	RuleFactors          map[string]int
	DerivationRows       map[string]int
	RuleSQL              map[string]string

	// Workers is the effective grounding worker-pool width (after the
	// 0 → GOMAXPROCS default resolves).
	Workers int

	RulesTime   time.Duration
	SpatialTime time.Duration
	TotalTime   time.Duration
}

// Result is the grounding output.
type Result struct {
	Graph *factorgraph.Graph
	Stats Stats
	// VarID resolves "Relation|k1|k2|..." ground-atom keys.
	VarID map[string]factorgraph.VarID
	// RelationIndex maps variable relation names (lower-cased) to the
	// Relation field used in factorgraph variables.
	RelationIndex map[string]int32
	// RuleNames lists the inference rules in grounding order; FactorRule
	// maps every logical factor to its rule index — the tying structure
	// weight learning (internal/learn) needs.
	RuleNames  []string
	FactorRule []int32
	// Deps is the program's rule→relation dependency index, used by
	// DeltaContext to bound what an evidence upsert invalidates.
	Deps *Deps
}

// Grounder drives grounding of one program over one database.
type Grounder struct {
	prog *ddlog.Program
	db   *storage.DB
	eng  *sqlx.Engine
	opts Options
	// ctx is the active grounding context, polled between phases and
	// periodically inside the row/atom loops (set by GroundContext).
	ctx context.Context
	// spatial collects the located ground atoms of each @spatial relation
	// (keyed by lower-cased relation name) during derivation, for the
	// spatial-factor phase.
	spatial map[string][]spatialAtom
}

// checkCtx polls the grounding context on every 256th iteration, so hot
// loops pay one atomic load amortized rather than a ctx.Err call per row.
func (gr *Grounder) checkCtx(i int) error {
	if i&255 == 0 {
		if err := gr.ctx.Err(); err != nil {
			return fmt.Errorf("grounding: interrupted: %w", err)
		}
	}
	return nil
}

// New creates a grounder.
func New(prog *ddlog.Program, db *storage.DB, opts Options) *Grounder {
	return &Grounder{
		prog:    prog,
		db:      db,
		eng:     sqlx.NewEngine(db),
		opts:    opts.withDefaults(),
		spatial: map[string][]spatialAtom{},
	}
}

// EnsureSchemas creates any program relations missing from the database
// (callers typically pre-create and load the typical relations; variable
// relations are materialized here).
func (gr *Grounder) EnsureSchemas() error {
	for _, rel := range gr.prog.Relations {
		if _, err := gr.db.Table(rel.Name); err == nil {
			continue
		}
		if _, err := gr.db.Create(translate.SchemaFor(rel)); err != nil {
			return err
		}
	}
	return nil
}

// AtomKey builds the ground-atom identity used by Result.VarID from a
// relation name and the atom's term values: "relname|v1|v2|..." with the
// relation lower-cased and values rendered by storage.Value.String.
func AtomKey(rel string, vals []storage.Value) string {
	parts := make([]string, 0, len(vals)+1)
	parts = append(parts, strings.ToLower(rel))
	for _, v := range vals {
		parts = append(parts, v.String())
	}
	return strings.Join(parts, "|")
}

// atomKey is the internal alias.
func atomKey(rel string, vals []storage.Value) string { return AtomKey(rel, vals) }

// Ground runs all phases and returns the spatial factor graph.
func (gr *Grounder) Ground() (*Result, error) {
	return gr.GroundContext(context.Background())
}

// GroundContext is Ground under a context: cancellation is honoured between
// phases and periodically inside the per-row and per-atom loops, returning
// the context error. A cancelled grounding leaves no usable Result — unlike
// sampling there is no meaningful partial factor graph.
func (gr *Grounder) GroundContext(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	gr.ctx = ctx
	workers := parallel.Resolve(gr.opts.Workers)
	// Batched probe evaluation inside the SQL engine's joins shares the
	// grounding worker budget and cancellation context.
	gr.eng.SetParallelism(workers, ctx)
	start := time.Now()
	if err := gr.EnsureSchemas(); err != nil {
		return nil, err
	}
	res := &Result{
		VarID:         map[string]factorgraph.VarID{},
		RelationIndex: map[string]int32{},
		Deps:          ComputeDeps(gr.prog),
	}
	res.Stats.RuleFactors = map[string]int{}
	res.Stats.DerivationRows = map[string]int{}
	res.Stats.RuleSQL = map[string]string{}
	for i, rel := range gr.prog.VariableRelations() {
		res.RelationIndex[strings.ToLower(rel.Name)] = int32(i)
	}
	builder := factorgraph.NewBuilder()

	rulesStart := time.Now()
	if err := gr.runApps(); err != nil {
		return nil, err
	}
	if err := gr.checkCtx(0); err != nil {
		return nil, err
	}
	if err := gr.runDerivations(builder, res); err != nil {
		return nil, err
	}
	if err := gr.checkCtx(0); err != nil {
		return nil, err
	}
	if err := gr.runInferenceRules(builder, res); err != nil {
		return nil, err
	}
	res.Stats.RulesTime = time.Since(rulesStart)

	spatialStart := time.Now()
	if err := gr.groundSpatialFactors(builder, res); err != nil {
		return nil, err
	}
	res.Stats.SpatialTime = time.Since(spatialStart)

	g, err := builder.Finalize()
	if err != nil {
		return nil, err
	}
	res.Graph = g
	res.Stats.Vars = g.NumVars()
	res.Stats.LogicalFactors = g.NumFactors()
	res.Stats.SpatialPairs = g.NumSpatialFactors()
	res.Stats.GroundSpatialFactors = g.CountGroundSpatialFactors()
	g.Vars(func(_ factorgraph.VarID, v factorgraph.Variable) bool {
		if v.Evidence == factorgraph.NoEvidence {
			res.Stats.QueryVars++
		} else {
			res.Stats.EvidenceVars++
		}
		return true
	})
	res.Stats.Workers = workers
	res.Stats.TotalTime = time.Since(start)
	gr.opts.Trace.Emit("grounding", "done",
		"vars", res.Stats.Vars,
		"evidence_vars", res.Stats.EvidenceVars,
		"query_vars", res.Stats.QueryVars,
		"logical_factors", res.Stats.LogicalFactors,
		"spatial_pairs", res.Stats.SpatialPairs,
		"workers", workers,
		"rules_ms", obs.Ms(res.Stats.RulesTime),
		"spatial_ms", obs.Ms(res.Stats.SpatialTime),
		"dur_ms", obs.Ms(res.Stats.TotalTime),
	)
	return res, nil
}

// runApps executes UDF applications.
func (gr *Grounder) runApps() error {
	for _, app := range gr.prog.Apps {
		appStart := time.Now()
		var impl UDF
		var implKey string
		for _, fn := range gr.prog.Functions {
			if strings.EqualFold(fn.Name, app.Fn) {
				implKey = fn.Implementation
				break
			}
		}
		impl = gr.opts.UDFs[implKey]
		if impl == nil {
			return fmt.Errorf("grounding: no implementation registered for UDF %q (key %q)", app.Fn, implKey)
		}
		q, err := translate.App(gr.prog, app, translate.Options{Metric: gr.opts.Metric})
		if err != nil {
			return err
		}
		rows, err := gr.eng.Exec(q.SQL, q.Params)
		if err != nil {
			return fmt.Errorf("grounding: UDF %s body: %w", app.Fn, err)
		}
		target, err := gr.db.Table(app.Target)
		if err != nil {
			return err
		}
		for _, in := range rows.Rows {
			outs, err := impl(in)
			if err != nil {
				return fmt.Errorf("grounding: UDF %s: %w", app.Fn, err)
			}
			for _, out := range outs {
				if err := target.Append(out); err != nil {
					return fmt.Errorf("grounding: UDF %s output: %w", app.Fn, err)
				}
			}
		}
		gr.opts.Trace.Emit("grounding", "udf",
			"fn", app.Fn, "rows", len(rows.Rows), "dur_ms", obs.Ms(time.Since(appStart)))
	}
	return nil
}

// derivedAtom accumulates one ground atom before variable creation.
type derivedAtom struct {
	rel      *ddlog.RelationDecl
	vals     []storage.Value
	evidence int32
	order    int
}

// queryJob is one dispatched SQL evaluation in execAhead's look-ahead
// window; done closes when res/err are final.
type queryJob struct {
	res  *sqlx.Result
	err  error
	done chan struct{}
}

// wait blocks until the job completes and returns its result.
func (j *queryJob) wait() (*sqlx.Result, error) {
	<-j.done
	return j.res, j.err
}

// drainJobs awaits every outstanding job — called on early error returns so
// no query goroutine outlives its grounding call.
func drainJobs(jobs []*queryJob) {
	for _, j := range jobs {
		<-j.done
	}
}

// execAhead evaluates the translated queries concurrently, at most
// Options.Workers in flight, and returns per-query jobs. The caller awaits
// job i before job i+1, so downstream emission (factor creation, atom
// accumulation, factor-table appends) runs in exactly the sequential order.
// Rule and derivation bodies only read relations that are fully
// materialized before this phase — never the factor tables the consumer
// appends to — so concurrent evaluation is safe (storage.Table guards its
// lazily built indexes internally).
func (gr *Grounder) execAhead(queries []translate.Query) []*queryJob {
	jobs := make([]*queryJob, len(queries))
	sem := make(chan struct{}, parallel.Resolve(gr.opts.Workers))
	for i := range queries {
		jobs[i] = &queryJob{done: make(chan struct{})}
		go func(i int) {
			defer close(jobs[i].done)
			sem <- struct{}{}
			defer func() { <-sem }()
			defer func() {
				if r := recover(); r != nil {
					buf := make([]byte, 64<<10)
					buf = buf[:runtime.Stack(buf, false)]
					jobs[i].err = fmt.Errorf("grounding: query panic: %v\n%s", r, buf)
				}
			}()
			jobs[i].res, jobs[i].err = gr.eng.Exec(queries[i].SQL, queries[i].Params)
		}(i)
	}
	return jobs
}

// runDerivations materializes variable relations and creates ground atoms.
// Derivation queries evaluate concurrently (execAhead); atom accumulation —
// where duplicate resolution is order-sensitive — consumes the results in
// derivation order.
func (gr *Grounder) runDerivations(b *factorgraph.Builder, res *Result) error {
	atoms := map[string]*derivedAtom{}
	order := 0
	queries := make([]translate.Query, len(gr.prog.Derivations))
	for i, d := range gr.prog.Derivations {
		q, err := translate.Derivation(gr.prog, d, translate.Options{Metric: gr.opts.Metric})
		if err != nil {
			return err
		}
		res.Stats.RuleSQL[ruleName("derivation", d.Label, len(res.Stats.RuleSQL))] = q.SQL
		queries[i] = q
	}
	jobs := gr.execAhead(queries)
	defer drainJobs(jobs)
	for di, d := range gr.prog.Derivations {
		derStart := time.Now()
		rows, err := jobs[di].wait()
		if err != nil {
			return fmt.Errorf("grounding: derivation %s: %w", d.Label, err)
		}
		rel, _ := gr.prog.Relation(d.Head.Rel)
		width := len(d.Head.Terms)
		for ri, row := range rows.Rows {
			if err := gr.checkCtx(ri); err != nil {
				return err
			}
			key := atomKey(rel.Name, row[:width])
			ev, err := labelToEvidence(rel, row[width])
			if err != nil {
				return fmt.Errorf("grounding: derivation %s: %w", d.Label, err)
			}
			res.Stats.DerivationRows[derLabel(d)]++
			if existing, dup := atoms[key]; dup {
				res.Stats.DuplicateDerivations++
				// Evidence beats NULL; conflicting evidence keeps the first.
				if existing.evidence == factorgraph.NoEvidence && ev != factorgraph.NoEvidence {
					existing.evidence = ev
				}
				continue
			}
			atoms[key] = &derivedAtom{
				rel:      rel,
				vals:     append([]storage.Value(nil), row[:width]...),
				evidence: ev,
				order:    order,
			}
			order++
		}
		gr.opts.Trace.Emit("grounding", "derivation",
			"label", derLabel(d), "rows", len(rows.Rows), "dur_ms", obs.Ms(time.Since(derStart)))
	}
	// Deterministic creation order: derivation order.
	sorted := make([]*derivedAtom, 0, len(atoms))
	keys := make([]string, 0, len(atoms))
	for k := range atoms {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return atoms[keys[i]].order < atoms[keys[j]].order })
	for _, k := range keys {
		sorted = append(sorted, atoms[k])
	}
	for i, a := range sorted {
		domain := int32(2)
		if a.rel.Categorical > 0 {
			domain = int32(a.rel.Categorical)
		}
		v := factorgraph.Variable{
			Name:     a.rel.Name + "(" + keys[i] + ")",
			Domain:   domain,
			Evidence: a.evidence,
			Relation: res.RelationIndex[strings.ToLower(a.rel.Name)],
		}
		if sc := a.rel.SpatialCol(); sc >= 0 && !a.vals[sc].IsNull() {
			if g, err := a.vals[sc].AsGeom(); err == nil {
				v.Loc = g.Bounds().Center()
				v.HasLoc = true
			}
		}
		vid, err := b.AddVariable(v)
		if err != nil {
			return err
		}
		res.VarID[keys[i]] = vid
		if a.rel.Spatial != "" && v.HasLoc {
			relKey := strings.ToLower(a.rel.Name)
			gr.spatial[relKey] = append(gr.spatial[relKey], spatialAtom{
				vid: vid, loc: v.Loc, evidence: a.evidence,
			})
		}
		// Materialize the atom into the variable relation table.
		tbl, err := gr.db.Table(a.rel.Name)
		if err != nil {
			return err
		}
		row := make(storage.Row, len(a.vals)+1)
		copy(row, a.vals)
		row[len(a.vals)] = storage.Int(int64(vid))
		if err := tbl.Append(row); err != nil {
			return err
		}
	}
	return nil
}

func derLabel(d *ddlog.DerivationRule) string {
	if d.Label != "" {
		return d.Label
	}
	return "derivation@" + fmt.Sprint(d.Line)
}

func ruleName(kind, label string, n int) string {
	if label != "" {
		return label
	}
	return fmt.Sprintf("%s#%d", kind, n)
}

// labelToEvidence converts a derivation label value into an evidence value.
func labelToEvidence(rel *ddlog.RelationDecl, v storage.Value) (int32, error) {
	if v.IsNull() {
		return factorgraph.NoEvidence, nil
	}
	switch v.Kind {
	case storage.KindBool:
		if rel.Categorical > 0 {
			return 0, fmt.Errorf("boolean label for categorical relation %s", rel.Name)
		}
		if v.I != 0 {
			return 1, nil
		}
		return 0, nil
	case storage.KindInt, storage.KindFloat:
		iv, err := v.AsInt()
		if err != nil {
			return 0, err
		}
		domain := int64(2)
		if rel.Categorical > 0 {
			domain = int64(rel.Categorical)
		}
		if iv < 0 || iv >= domain {
			return 0, fmt.Errorf("label %d outside domain of %s", iv, rel.Name)
		}
		return int32(iv), nil
	default:
		return 0, fmt.Errorf("unsupported label kind %s for %s", v.Kind, rel.Name)
	}
}

// runInferenceRules grounds logical factors. Rule queries evaluate
// concurrently (execAhead); factor emission and factor-table appends
// consume results in rule order, preserving FactorRule numbering and the
// sequential factor layout.
func (gr *Grounder) runInferenceRules(b *factorgraph.Builder, res *Result) error {
	queries := make([]translate.Query, len(gr.prog.Rules))
	for ri, rule := range gr.prog.Rules {
		q, err := translate.Inference(gr.prog, rule, translate.Options{Metric: gr.opts.Metric})
		if err != nil {
			return err
		}
		name := ruleName("rule", rule.Label, ri)
		res.RuleNames = append(res.RuleNames, name)
		res.Stats.RuleSQL[name] = q.SQL
		queries[ri] = q
	}
	jobs := gr.execAhead(queries)
	defer drainJobs(jobs)
	for ri, rule := range gr.prog.Rules {
		ruleStart := time.Now()
		q := queries[ri]
		name := res.RuleNames[ri]
		ruleIdx := int32(ri)
		rows, err := jobs[ri].wait()
		if err != nil {
			return fmt.Errorf("grounding: rule %s: %w", name, err)
		}
		kind, err := factorKindFor(rule)
		if err != nil {
			return fmt.Errorf("grounding: rule %s: %w", name, err)
		}
		var factorTable *storage.Table
		if !gr.opts.SkipFactorTables {
			factorTable, err = gr.ensureFactorTable(name, len(rule.Head))
			if err != nil {
				return err
			}
		}
		for ri, row := range rows.Rows {
			if err := gr.checkCtx(ri); err != nil {
				return err
			}
			vars := make([]factorgraph.VarID, 0, len(rule.Head))
			neg := make([]bool, 0, len(rule.Head))
			off := 0
			ok := true
			for hi, h := range rule.Head {
				w := q.HeadWidths[hi]
				key := atomKey(h.Atom.Rel, row[off:off+w])
				off += w
				vid, found := res.VarID[key]
				if !found {
					res.Stats.SkippedHeadLookups++
					ok = false
					break
				}
				vars = append(vars, vid)
				neg = append(neg, h.Negated)
			}
			if !ok {
				continue
			}
			if err := b.AddFactor(kind, rule.Weight, vars, neg); err != nil {
				return fmt.Errorf("grounding: rule %s: %w", name, err)
			}
			res.FactorRule = append(res.FactorRule, ruleIdx)
			res.Stats.RuleFactors[name]++
			if factorTable != nil {
				frow := make(storage.Row, len(rule.Head)+2)
				for i, v := range vars {
					frow[i] = storage.Int(int64(v))
				}
				frow[len(rule.Head)] = storage.Str(kind.String())
				frow[len(rule.Head)+1] = storage.Float(rule.Weight)
				if err := factorTable.Append(frow); err != nil {
					return err
				}
			}
		}
		gr.opts.Trace.Emit("grounding", "rule",
			"rule", name, "rows", len(rows.Rows), "factors", res.Stats.RuleFactors[name],
			"dur_ms", obs.Ms(time.Since(ruleStart)))
	}
	return nil
}

// ensureFactorTable creates the per-rule factor relation the paper's Fig. 5
// inserts into (INSERT INTO R1_Factors ...).
func (gr *Grounder) ensureFactorTable(rule string, heads int) (*storage.Table, error) {
	name := "sya_factors_" + rule
	if t, err := gr.db.Table(name); err == nil {
		return t, nil
	}
	schema := storage.Schema{Name: name}
	for i := 0; i < heads; i++ {
		schema.Cols = append(schema.Cols, storage.Column{Name: fmt.Sprintf("v%d", i+1), Kind: storage.KindInt})
	}
	schema.Cols = append(schema.Cols,
		storage.Column{Name: "type", Kind: storage.KindString},
		storage.Column{Name: "weight", Kind: storage.KindFloat},
	)
	return gr.db.Create(schema)
}

// factorKindFor maps head connectives to factor kinds.
func factorKindFor(r *ddlog.InferenceRule) (factorgraph.FactorKind, error) {
	switch r.Connective {
	case ddlog.ConnImply:
		return factorgraph.FactorImply, nil
	case ddlog.ConnAnd:
		return factorgraph.FactorAnd, nil
	case ddlog.ConnOr:
		return factorgraph.FactorOr, nil
	case ddlog.ConnSingle:
		return factorgraph.FactorIsTrue, nil
	default:
		return 0, fmt.Errorf("unsupported head connective")
	}
}

// spatialAtom is one located ground atom of a spatial relation.
type spatialAtom struct {
	vid      factorgraph.VarID
	loc      geom.Point
	evidence int32
}

// sweepGrain is the atom-chunk size for sharded spatial sweeps: large
// enough to amortize dispatch and per-chunk scratch, small enough to
// balance clustered data across workers. Chunk boundaries depend only on
// the atom count, never on the worker count — the determinism anchor.
const sweepGrain = 64

// coocGrain is the evidence-atom chunk size for sharded co-occurrence
// counting (the per-atom work is lighter than the sweep's, so chunks are
// bigger).
const coocGrain = 256

// groundSpatialFactors generates Eq. 2 / Eq. 4 factors for every @spatial
// relation, plus the Section IV-C pruning mask for categorical domains.
// The per-relation sweep is sharded across Options.Workers; dedup uses
// canonical-ordered emission (each unordered pair is emitted by exactly one
// atom's neighbourhood) instead of a seen-map, so chunk outputs concatenated
// in atom order yield a factor graph identical for any worker count
// (DESIGN.md §9).
func (gr *Grounder) groundSpatialFactors(b *factorgraph.Builder, res *Result) error {
	workers := parallel.Resolve(gr.opts.Workers)
	for _, rel := range gr.prog.VariableRelations() {
		if rel.Spatial == "" {
			continue
		}
		relStart := time.Now()
		fn, err := gr.opts.Weighting.Lookup(rel.Spatial)
		if err != nil {
			return fmt.Errorf("grounding: relation %s: %w", rel.Name, err)
		}
		radius := gr.opts.SupportRadius
		if radius <= 0 {
			radius = fn.Support()
		}
		atoms := gr.spatial[strings.ToLower(rel.Name)]
		if len(atoms) == 0 {
			continue
		}
		// Categorical pruning mask (Section IV-C).
		if rel.Categorical > 0 {
			mask, pruned, allowed, err := gr.cooccurrenceMask(rel, atoms, radius)
			if err != nil {
				return err
			}
			relIdx := res.RelationIndex[strings.ToLower(rel.Name)]
			if err := b.SetAllowedPairs(relIdx, int32(rel.Categorical), mask); err != nil {
				return err
			}
			res.Stats.PrunedValuePairs += pruned
			res.Stats.AllowedValuePairs += allowed
		}
		// R-tree over atoms for neighbour search. Bulk reorders items in
		// place but Data keeps the atom index; concurrent Search is safe
		// (read-only traversal).
		items := make([]rtree.Item, len(atoms))
		for i, a := range atoms {
			items[i] = rtree.Item{Rect: a.loc.Bounds(), Data: int64(i)}
		}
		tree := rtree.Bulk(items)
		var pairs []factorgraph.SpatialPair
		if gr.opts.MaxNeighbors > 0 {
			pairs, err = gr.sweepCapped(tree, atoms, radius, fn, workers)
		} else {
			pairs, err = gr.sweepUnlimited(tree, atoms, radius, fn, workers)
		}
		if err != nil {
			return fmt.Errorf("grounding: relation %s: %w", rel.Name, err)
		}
		if err := b.AddSpatialPairs(pairs); err != nil {
			return fmt.Errorf("grounding: relation %s: %w", rel.Name, err)
		}
		gr.opts.Trace.Emit("grounding", "spatial",
			"relation", rel.Name, "atoms", len(atoms), "pairs", len(pairs),
			"workers", workers, "dur_ms", obs.Ms(time.Since(relStart)))
	}
	return nil
}

// sweepUnlimited generates spatial factors with no per-atom neighbour cap.
// Within a relation the atom slice is in variable-creation (VarID) order,
// and the within-radius relation is symmetric, so emitting only neighbours
// j > i from atom i's window produces every unordered pair exactly once —
// no seen-map, no per-atom scratch, and half the distance evaluations of
// the old bidirectional sweep.
func (gr *Grounder) sweepUnlimited(tree *rtree.Tree, atoms []spatialAtom, radius float64, fn weighting.Func, workers int) ([]factorgraph.SpatialPair, error) {
	parts := make([][]factorgraph.SpatialPair, parallel.NumChunks(len(atoms), sweepGrain))
	err := parallel.For(gr.ctx, workers, len(atoms), sweepGrain, func(c, lo, hi int) error {
		var out []factorgraph.SpatialPair
		for i := lo; i < hi; i++ {
			a := atoms[i]
			window := geom.ExpandWindow(a.loc.Bounds(), radius, gr.opts.Metric)
			tree.Search(window, func(it rtree.Item) bool {
				j := int(it.Data)
				if j <= i {
					return true
				}
				d := gr.opts.Metric.Dist(a.loc, atoms[j].loc)
				if d > radius {
					return true
				}
				out = append(out, factorgraph.SpatialPair{A: a.vid, B: atoms[j].vid, W: fn.Weight(d)})
				return true
			})
		}
		parts[c] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return concatPairs(parts), nil
}

// nbr is one within-radius neighbour in the capped sweep's k-NN lists.
type nbr struct {
	j int32
	d float64
}

// nbrLess is the capped sweep's total neighbour order: distance, then atom
// index. The index tie-break keeps the k-nearest selection independent of
// R-tree traversal order (and hence of worker count).
func nbrLess(x, y nbr) bool {
	if x.d != y.d {
		return x.d < y.d
	}
	return x.j < y.j
}

// selectNearestK reduces within to its k smallest neighbours under nbrLess,
// in unspecified order. The selection is a classic bounded max-heap built
// in place over within[:k] — each remaining candidate either loses to the
// current worst survivor or replaces it — so it allocates nothing and does
// O(n log k) comparisons instead of sorting the whole list.
func selectNearestK(within []nbr, k int) []nbr {
	if len(within) <= k {
		return within
	}
	h := within[:k]
	for i := k/2 - 1; i >= 0; i-- {
		nbrSiftDown(h, i)
	}
	for _, cand := range within[k:] {
		if nbrLess(cand, h[0]) {
			h[0] = cand
			nbrSiftDown(h, 0)
		}
	}
	return h
}

// nbrSiftDown restores the max-heap property (worst neighbour at the root)
// below index i.
func nbrSiftDown(h []nbr, i int) {
	for {
		c := 2*i + 1
		if c >= len(h) {
			return
		}
		if r := c + 1; r < len(h) && nbrLess(h[c], h[r]) {
			c = r
		}
		if !nbrLess(h[i], h[c]) {
			return
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
}

// sweepCapped generates spatial factors under the MaxNeighbors cap. The
// pair set is the union over atoms of their k-nearest lists, so a pair may
// be known to only one endpoint; instead of a shared seen-map, a first pass
// computes every atom's capped neighbour list (index-sorted), and a second
// pass emits pair (m, j) from atom m when j > m, or when j < m and m is
// absent from j's list (binary-search membership — j already emitted the
// pair otherwise). Both passes shard over fixed atom chunks; per-atom
// results depend only on the atom, so output is worker-count invariant and
// matches the sequential seen-map sweep pair for pair.
func (gr *Grounder) sweepCapped(tree *rtree.Tree, atoms []spatialAtom, radius float64, fn weighting.Func, workers int) ([]factorgraph.SpatialPair, error) {
	k := gr.opts.MaxNeighbors
	n := len(atoms)
	nbrs := make([][]nbr, n)
	err := parallel.For(gr.ctx, workers, n, sweepGrain, func(c, lo, hi int) error {
		// Chunk-level scratch, reused across the chunk's atoms; the final
		// lists are carved out of one slab per chunk.
		var within []nbr
		var slab []nbr
		offs := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			a := atoms[i]
			within = within[:0]
			window := geom.ExpandWindow(a.loc.Bounds(), radius, gr.opts.Metric)
			tree.Search(window, func(it rtree.Item) bool {
				j := int(it.Data)
				if j == i {
					return true
				}
				d := gr.opts.Metric.Dist(a.loc, atoms[j].loc)
				if d > radius {
					return true
				}
				within = append(within, nbr{j: int32(j), d: d})
				return true
			})
			// Keep the k nearest (ties break on atom index so the selection
			// is independent of the R-tree traversal order), then restore
			// index order. Both run in the chunk's scratch: the selection is
			// an in-place fixed-size heap and the sort a generic slices sort,
			// so the per-atom cost is allocation-free — sort.Slice here
			// previously dominated the capped sweep's allocation profile.
			within = selectNearestK(within, k)
			slices.SortFunc(within, func(x, y nbr) int { return int(x.j) - int(y.j) })
			slab = append(slab, within...)
			offs = append(offs, len(slab))
		}
		prev := 0
		for i := lo; i < hi; i++ {
			end := offs[i-lo]
			nbrs[i] = slab[prev:end:end]
			prev = end
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	parts := make([][]factorgraph.SpatialPair, parallel.NumChunks(n, sweepGrain))
	err = parallel.For(gr.ctx, workers, n, sweepGrain, func(c, lo, hi int) error {
		var out []factorgraph.SpatialPair
		for m := lo; m < hi; m++ {
			a := atoms[m]
			for _, nb := range nbrs[m] {
				j := int(nb.j)
				if j < m && topkContains(nbrs[j], int32(m)) {
					continue // atom j already emitted this pair
				}
				out = append(out, factorgraph.SpatialPair{A: a.vid, B: atoms[j].vid, W: fn.Weight(nb.d)})
			}
		}
		parts[c] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return concatPairs(parts), nil
}

// topkContains reports whether the index-sorted neighbour list holds j.
func topkContains(list []nbr, j int32) bool {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if list[mid].j < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(list) && list[lo].j == j
}

// concatPairs merges chunk outputs in chunk (= atom) order.
func concatPairs(parts [][]factorgraph.SpatialPair) []factorgraph.SpatialPair {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]factorgraph.SpatialPair, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// cooccurrenceMask computes the Section IV-C pruning mask: for each pair of
// domain values (i, j), P(i|j) and P(j|i) are estimated from pairs of
// neighbouring evidence atoms; the pair survives when either conditional
// probability reaches the threshold T.
// The counting pass shards the evidence atoms over Options.Workers with
// per-chunk count matrices summed at the barrier; counts are integers (held
// in float64, all < 2^53), so the merged sums are exact and bit-identical
// for any worker count.
func (gr *Grounder) cooccurrenceMask(rel *ddlog.RelationDecl, atoms []spatialAtom, radius float64) (mask []bool, pruned, allowed int, err error) {
	h := rel.Categorical
	workers := parallel.Resolve(gr.opts.Workers)
	// Evidence atoms only.
	var ev []spatialAtom
	for _, a := range atoms {
		if a.evidence != factorgraph.NoEvidence {
			ev = append(ev, a)
		}
	}
	items := make([]rtree.Item, len(ev))
	for i, a := range ev {
		items[i] = rtree.Item{Rect: a.loc.Bounds(), Data: int64(i)}
	}
	tree := rtree.Bulk(items)
	chunks := parallel.NumChunks(len(ev), coocGrain)
	coocs := make([][]float64, chunks)
	occs := make([][]float64, chunks)
	err = parallel.For(gr.ctx, workers, len(ev), coocGrain, func(c, lo, hi int) error {
		cooc := make([]float64, h*h)
		occ := make([]float64, h)
		for i := lo; i < hi; i++ {
			a := ev[i]
			occ[a.evidence]++
			window := geom.ExpandWindow(a.loc.Bounds(), radius, gr.opts.Metric)
			tree.Search(window, func(it rtree.Item) bool {
				j := int(it.Data)
				if j <= i {
					return true // count each unordered pair once
				}
				if gr.opts.Metric.Dist(a.loc, ev[j].loc) > radius {
					return true
				}
				vi, vj := int(a.evidence), int(ev[j].evidence)
				cooc[vi*h+vj]++
				cooc[vj*h+vi]++
				return true
			})
		}
		coocs[c], occs[c] = cooc, occ
		return nil
	})
	if err != nil {
		return nil, 0, 0, err
	}
	cooc := make([]float64, h*h)
	occ := make([]float64, h)
	for c := range coocs {
		for x, v := range coocs[c] {
			cooc[x] += v
		}
		for x, v := range occs[c] {
			occ[x] += v
		}
	}
	mask = make([]bool, h*h)
	anyPairs := false
	for _, v := range cooc {
		if v > 0 {
			anyPairs = true
			break
		}
	}
	if !anyPairs {
		// No evidence statistics: keep everything (no basis to prune).
		for i := range mask {
			mask[i] = true
		}
		return mask, 0, h * h, nil
	}
	// A domain-value pair survives when its co-occurrence probabilities
	// exceed the threshold — both conditionals, per Section IV-C's "co-occur
	// with certain probabilities that exceed a pre-defined threshold T".
	// Requiring both makes T the recall/precision dial of Fig. 11: small T
	// admits wide value ranges (recall), large T keeps only the strongest
	// spatial correlations (precision, and far fewer factors).
	T := gr.opts.PruneThreshold
	for i := 0; i < h; i++ {
		for j := 0; j < h; j++ {
			var pij, pji float64
			if occ[j] > 0 {
				pij = cooc[i*h+j] / occ[j] // P(i|j)
			}
			if occ[i] > 0 {
				pji = cooc[i*h+j] / occ[i] // P(j|i)
			}
			if pij >= T && pji >= T {
				mask[i*h+j] = true
				allowed++
			} else {
				pruned++
			}
		}
	}
	return mask, pruned, allowed, nil
}
