package grounding

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/ddlog"
	"repro/internal/factorgraph"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/translate"
)

// Deps is the program's rule→relation dependency index: for each relation
// (lower-cased) it records which UDF applications, derivation rules and
// inference rules read it in their bodies, plus which relations are
// variable relations. The serving layer consults it to decide how much of
// the pipeline an evidence upsert invalidates.
type Deps struct {
	// AppsByRel maps a body relation to the indices of Program.Apps
	// reading it.
	AppsByRel map[string][]int
	// DerivationsByRel maps a body relation to the indices of
	// Program.Derivations reading it.
	DerivationsByRel map[string][]int
	// RulesByRel maps a body relation to the indices of Program.Rules
	// reading it.
	RulesByRel map[string][]int
	// Variable marks variable (inferred) relations.
	Variable map[string]bool
}

// ComputeDeps builds the dependency index for a validated program.
func ComputeDeps(prog *ddlog.Program) *Deps {
	d := &Deps{
		AppsByRel:        map[string][]int{},
		DerivationsByRel: map[string][]int{},
		RulesByRel:       map[string][]int{},
		Variable:         map[string]bool{},
	}
	for _, rel := range prog.VariableRelations() {
		d.Variable[strings.ToLower(rel.Name)] = true
	}
	add := func(m map[string][]int, atoms []ddlog.Atom, idx int) {
		seen := map[string]bool{}
		for _, a := range atoms {
			key := strings.ToLower(a.Rel)
			if !seen[key] {
				seen[key] = true
				m[key] = append(m[key], idx)
			}
		}
	}
	for i, app := range prog.Apps {
		add(d.AppsByRel, app.Body, i)
	}
	for i, der := range prog.Derivations {
		add(d.DerivationsByRel, der.Body, i)
	}
	for i, rule := range prog.Rules {
		add(d.RulesByRel, rule.Body, i)
	}
	return d
}

// EvidencePin is one sparse patch entry: a previously unlabeled ground
// atom whose re-derived label is now evidence.
type EvidencePin struct {
	Var   factorgraph.VarID
	Key   string // the Result.VarID atom key, for diagnostics and caching
	Value int32
}

// Patch is the outcome of delta grounding. Either Structural is set — the
// change cannot be expressed against the existing factor graph and the
// caller must fall back to a full re-ground — or Pins lists the evidence
// assignments to apply to the live sampler (possibly none).
type Patch struct {
	Pins []EvidencePin
	// Structural reports that the delta touched graph structure: a new
	// ground atom appeared, a variable relation changed, or the change
	// reaches an inference rule or UDF body (new factors possible).
	Structural bool
	// Reason explains a structural fallback for logs and metrics.
	Reason string

	// Derivations is how many derivation queries were re-evaluated.
	Derivations int
	// Rows is how many result rows the re-evaluated derivations produced.
	Rows int
	// Elapsed is the wall time of the delta evaluation.
	Elapsed time.Duration
}

// structuralPatch is a fallback Patch constructor.
func structuralPatch(reason string, start time.Time) *Patch {
	return &Patch{Structural: true, Reason: reason, Elapsed: time.Since(start)}
}

// DeltaContext re-grounds only the slice of the program affected by new
// rows in the changed relations, against the *live* database (whose tables
// and spatial indexes the upsert already extended in place), and returns a
// sparse patch relative to prev — the Result of the last full grounding.
//
// The non-structural fast path holds exactly when the changed relations
// feed derivation rule bodies only. Then the affected derivations are
// re-evaluated (concurrently, like the batch phase) and their output is
// reduced with the batch dedup semantics — first row per atom key wins,
// evidence beats NULL, conflicting evidence keeps the first — so a pin is
// emitted only for atoms that the last grounding left unlabeled
// (Evidence == NoEvidence in prev.Graph) and that now carry a label. The
// resulting assignment is identical to what a from-scratch re-ground would
// produce, because upserts are append-only: earlier rows keep winning the
// dedup, and atoms already labeled in prev keep their labels.
//
// Everything else is reported as Structural and left to the caller's full
// re-ground: changes to variable relations, changes reaching UDF or
// inference-rule bodies (either can create factors), and re-derived head
// atoms whose key is absent from prev.VarID (a new variable).
func (gr *Grounder) DeltaContext(ctx context.Context, prev *Result, changed []string) (*Patch, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if prev == nil || prev.Graph == nil {
		return nil, fmt.Errorf("grounding: delta requires a prior full grounding")
	}
	gr.ctx = ctx
	start := time.Now()
	// When the context carries a request span (serving upsert path), the
	// delta evaluation is recorded as a stage of that request's trace.
	span := obs.SpanFromContext(ctx).Child("delta_ground")
	defer span.End()
	deps := prev.Deps
	if deps == nil {
		deps = ComputeDeps(gr.prog)
	}

	seen := map[string]bool{}
	var affected []int
	for _, rel := range changed {
		key := strings.ToLower(rel)
		if seen[key] {
			continue
		}
		seen[key] = true
		if deps.Variable[key] {
			return structuralPatch("variable relation "+rel+" changed", start), nil
		}
		if len(deps.AppsByRel[key]) > 0 {
			return structuralPatch("relation "+rel+" feeds a UDF application", start), nil
		}
		if len(deps.RulesByRel[key]) > 0 {
			return structuralPatch("relation "+rel+" feeds an inference rule body", start), nil
		}
		affected = append(affected, deps.DerivationsByRel[key]...)
	}
	sort.Ints(affected)
	affected = dedupInts(affected)
	if len(affected) == 0 {
		return &Patch{Elapsed: time.Since(start)}, nil
	}

	workers := parallel.Resolve(gr.opts.Workers)
	gr.eng.SetParallelism(workers, ctx)
	queries := make([]translate.Query, len(affected))
	for qi, di := range affected {
		q, err := translate.Derivation(gr.prog, gr.prog.Derivations[di], translate.Options{Metric: gr.opts.Metric})
		if err != nil {
			return nil, err
		}
		queries[qi] = q
	}
	jobs := gr.execAhead(queries)
	defer drainJobs(jobs)

	p := &Patch{Derivations: len(affected)}
	resolved := map[factorgraph.VarID]bool{}
	for qi, di := range affected {
		d := gr.prog.Derivations[di]
		rows, err := jobs[qi].wait()
		if err != nil {
			return nil, fmt.Errorf("grounding: delta derivation %s: %w", derLabel(d), err)
		}
		rel, _ := gr.prog.Relation(d.Head.Rel)
		width := len(d.Head.Terms)
		for ri, row := range rows.Rows {
			if err := gr.checkCtx(ri); err != nil {
				return nil, err
			}
			p.Rows++
			key := atomKey(rel.Name, row[:width])
			vid, found := prev.VarID[key]
			if !found {
				gr.opts.Trace.Emit("grounding", "delta_structural",
					"derivation", derLabel(d), "atom", key)
				return structuralPatch(fmt.Sprintf("derivation %s produced new ground atom %s", derLabel(d), key), start), nil
			}
			ev, err := labelToEvidence(rel, row[width])
			if err != nil {
				return nil, fmt.Errorf("grounding: delta derivation %s: %w", derLabel(d), err)
			}
			if ev == factorgraph.NoEvidence || resolved[vid] {
				// NULL labels never override, and the first evidence row per
				// atom wins — the batch dedup order.
				continue
			}
			resolved[vid] = true
			if prev.Graph.Var(vid).Evidence != factorgraph.NoEvidence {
				// Already evidence in the grounded graph; batch semantics
				// keep the first label, so the patch leaves it alone.
				continue
			}
			p.Pins = append(p.Pins, EvidencePin{Var: vid, Key: key, Value: ev})
		}
	}
	p.Elapsed = time.Since(start)
	span.Notef("derivations=%d rows=%d pins=%d", p.Derivations, p.Rows, len(p.Pins))
	gr.opts.Trace.Emit("grounding", "delta",
		"derivations", p.Derivations, "rows", p.Rows, "pins", len(p.Pins),
		"dur_ms", obs.Ms(p.Elapsed))
	return p, nil
}

// dedupInts removes adjacent duplicates from a sorted slice.
func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}
