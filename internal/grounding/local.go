package grounding

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/factorgraph"
)

// This file implements query-driven lazy grounding (ROADMAP item 1, after
// ProPPR's locally groundable inference): instead of sampling the whole
// ground graph to answer one point query, a frontier expansion grows a
// bounded subgraph outward from the queried atom and inference runs on that
// slab alone.
//
// Influence semantics. Every edge (logical factor or spatial pair) carries
// strength tanh(|w|) ∈ [0, 1) — the saturating effect a weight-w factor can
// have on a neighbour's conditional. A variable's influence is the maximum
// product of edge strengths along any path from the query root (root = 1),
// so it decays with both graph distance and the spatial decay weights, which
// shrink with physical distance. The frontier expands in decreasing
// influence order and stops when the variable budget is exhausted or the
// next candidate falls below the influence threshold.
//
// Evidence d-separates. An observed variable blocks all paths through it in
// a Markov random field, so evidence atoms join the subgraph as frozen
// observations but are never expanded through — the frontier naturally
// follows only the uncertain tissue around the query.
//
// Boundary freezing. When expansion stops, every unexpanded neighbour of an
// interior variable enters the subgraph frozen at its evidence value (if
// observed) or at a caller-supplied prior state (if uncertain). Every factor
// touching an interior variable is therefore fully contained — there are no
// dangling endpoints — and the subgraph's conditionals at interior
// variables match the full graph's exactly, except where an uncertain
// boundary variable was frozen at a guess.
//
// Truncation-error bound. Only factors that cross from the interior to an
// uncertain frozen boundary variable can distort the root's marginal; the
// cut weight Σ|w| over those factors bounds the log-odds shift any
// boundary misassignment can induce, and ErrorBound = tanh(Σ|w| cut) maps
// it into a total-variation-style [0, 1) figure that is 0 when the frontier
// stopped only at evidence (exact inference) and grows toward 1 as heavier
// uncertain tissue is cut.

// LocalOptions bounds the frontier expansion of ExtractLocal.
type LocalOptions struct {
	// MaxVars caps the interior (sampled) variable count. Default 256.
	MaxVars int
	// MaxFactors caps the kept factor count (logical + spatial); expansion
	// stops before a variable whose factors would exceed it. 0 = unlimited.
	MaxFactors int
	// MinInfluence prunes frontier candidates whose root influence falls
	// below it. Default 1e-4.
	MinInfluence float64
	// Freeze resolves the frozen state of an uncertain boundary variable
	// (graph evidence always wins). ok=false marks the value a guess — the
	// variable still freezes at val, but factors cut at it count toward
	// ErrorBound. ok=true marks it evidence-grade (an upsert pin): it
	// blocks expansion and contributes no error. nil freezes guesses at 0.
	Freeze func(v factorgraph.VarID) (val int32, ok bool)
}

func (o LocalOptions) withDefaults() LocalOptions {
	if o.MaxVars <= 0 {
		o.MaxVars = 256
	}
	if o.MinInfluence <= 0 {
		o.MinInfluence = 1e-4
	}
	return o
}

// LocalGraph is one extracted query neighbourhood.
type LocalGraph struct {
	// Graph is the bounded subgraph: interior variables keep their
	// (non-)evidence state, boundary variables are frozen as evidence.
	Graph *factorgraph.Graph
	// Root is the queried variable's id inside Graph.
	Root factorgraph.VarID
	// Interior lists the sampled variables by full-graph id, in subgraph id
	// order (interior ids precede boundary ids in Graph).
	Interior []factorgraph.VarID
	// BoundaryVars counts the frozen variables appended after the interior.
	BoundaryVars int
	// ErrorBound is tanh of the cut weight over factors frozen at an
	// uncertain boundary variable: 0 means the local marginal is exact up
	// to sampling noise.
	ErrorBound float64
	// Truncated reports that the budget or influence threshold cut off
	// uncertain variables (false: the query's whole uncertain component
	// fit, and ErrorBound is 0).
	Truncated bool
}

// frontierItem is one candidate variable ordered by influence (ties break
// on VarID so the expansion is deterministic).
type frontierItem struct {
	v   factorgraph.VarID
	inf float64
}

type frontierHeap []frontierItem

func (h frontierHeap) Len() int { return len(h) }
func (h frontierHeap) Less(i, j int) bool {
	if h[i].inf != h[j].inf {
		return h[i].inf > h[j].inf
	}
	return h[i].v < h[j].v
}
func (h frontierHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *frontierHeap) Push(x any)        { *h = append(*h, x.(frontierItem)) }
func (h *frontierHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// edgeStrength maps a factor weight to its influence attenuation.
func edgeStrength(w float64) float64 { return math.Tanh(math.Abs(w)) }

// ExtractLocal grows a bounded subgraph outward from root over the last
// full grounding's factor graph and returns it with the query's truncation
// metadata. res is read-only; concurrent extractions over one Result are
// safe.
func ExtractLocal(res *Result, root factorgraph.VarID, opts LocalOptions) (*LocalGraph, error) {
	if res == nil || res.Graph == nil {
		return nil, fmt.Errorf("grounding: local extraction requires a full grounding")
	}
	opts = opts.withDefaults()
	g := res.Graph
	if int(root) < 0 || int(root) >= g.NumVars() {
		return nil, fmt.Errorf("grounding: local root %d out of range", root)
	}
	frozenAt := func(v factorgraph.VarID) (int32, bool) {
		if ev := g.Var(v).Evidence; ev != factorgraph.NoEvidence {
			return ev, true
		}
		if opts.Freeze != nil {
			return opts.Freeze(v)
		}
		return 0, false
	}
	if val, ok := frozenAt(root); ok {
		// The query atom is itself observed: a one-variable "subgraph" with
		// a point-mass marginal and no error.
		return extractEvidenceRoot(g, root, val)
	}

	// Frontier expansion: best-first by influence over the full graph's CSR
	// adjacency. Evidence-grade variables are recorded for the boundary but
	// never expanded (d-separation).
	const (
		stateUnseen = 0
		stateOpen   = 1
		stateIn     = 2 // interior
	)
	state := map[factorgraph.VarID]int8{}
	best := map[factorgraph.VarID]float64{}
	var interior []factorgraph.VarID
	kept := 0 // factors guaranteed kept so far (all factors of interior vars)

	fh := frontierHeap{{v: root, inf: 1}}
	state[root], best[root] = stateOpen, 1
	for len(fh) > 0 {
		it := heap.Pop(&fh).(frontierItem)
		if state[it.v] == stateIn || it.inf < best[it.v] {
			continue // stale heap entry
		}
		if len(interior) >= opts.MaxVars {
			break
		}
		degree := len(g.VarLogicalFactors(it.v)) + len(g.VarSpatialPairs(it.v))
		if opts.MaxFactors > 0 && kept+degree > opts.MaxFactors && len(interior) > 0 {
			break
		}
		state[it.v] = stateIn
		interior = append(interior, it.v)
		kept += degree
		expand := func(u factorgraph.VarID, w float64) {
			if u == it.v || state[u] == stateIn {
				return
			}
			inf := it.inf * edgeStrength(w)
			if _, evGrade := frozenAt(u); evGrade {
				return // joins as frozen boundary if a kept factor reaches it
			}
			if inf < opts.MinInfluence {
				return // below threshold: left frozen at the boundary
			}
			if inf > best[u] || state[u] == stateUnseen {
				state[u] = stateOpen
				best[u] = inf
				heap.Push(&fh, frontierItem{v: u, inf: inf})
			}
		}
		for _, f := range g.VarLogicalFactors(it.v) {
			w := g.FactorWeightOf(f)
			vars, _ := g.FactorVars(f)
			for _, u := range vars {
				expand(u, w)
			}
		}
		for _, sp := range g.VarSpatialPairs(it.v) {
			a, b, w := g.SpatialPair(sp)
			other := a
			if a == it.v {
				other = b
			}
			expand(other, w)
		}
	}
	return buildLocalGraph(res, root, interior, frozenAt)
}

// extractEvidenceRoot handles a query whose atom is already observed (graph
// evidence or an evidence-grade upsert pin): a one-variable subgraph frozen
// at the observed value.
func extractEvidenceRoot(g *factorgraph.Graph, root factorgraph.VarID, val int32) (*LocalGraph, error) {
	v := g.Var(root)
	v.Evidence = val
	b := factorgraph.NewBuilder()
	lid, err := b.AddVariable(v)
	if err != nil {
		return nil, err
	}
	sub, err := b.Finalize()
	if err != nil {
		return nil, err
	}
	return &LocalGraph{Graph: sub, Root: lid, Interior: nil, BoundaryVars: 1}, nil
}

// buildLocalGraph materializes the subgraph: interior variables first (in
// expansion order), then every non-interior neighbour frozen as evidence,
// then all factors and spatial pairs touching an interior variable. The cut
// weight accumulates over factors with an uncertain frozen endpoint; any
// positive cut weight means the expansion truncated uncertain tissue (an
// uncertain boundary variable is always adjacent to the interior through
// the edge that discovered it).
func buildLocalGraph(res *Result, root factorgraph.VarID, interior []factorgraph.VarID,
	frozenAt func(factorgraph.VarID) (int32, bool)) (*LocalGraph, error) {
	g := res.Graph
	in := make(map[factorgraph.VarID]bool, len(interior))
	for _, v := range interior {
		in[v] = true
	}

	// Collect the factor and spatial-pair sets (deduped, ascending) and the
	// boundary variable set.
	factorSet := map[int32]bool{}
	spatialSet := map[int32]bool{}
	boundarySet := map[factorgraph.VarID]bool{}
	for _, v := range interior {
		for _, f := range g.VarLogicalFactors(v) {
			factorSet[f] = true
		}
		for _, sp := range g.VarSpatialPairs(v) {
			spatialSet[sp] = true
		}
	}
	factors := sortedInt32(factorSet)
	spatials := sortedInt32(spatialSet)
	for _, f := range factors {
		vars, _ := g.FactorVars(f)
		for _, u := range vars {
			if !in[u] {
				boundarySet[u] = true
			}
		}
	}
	for _, sp := range spatials {
		a, bv, _ := g.SpatialPair(sp)
		if !in[a] {
			boundarySet[a] = true
		}
		if !in[bv] {
			boundarySet[bv] = true
		}
	}
	boundary := make([]factorgraph.VarID, 0, len(boundarySet))
	for v := range boundarySet {
		boundary = append(boundary, v)
	}
	sort.Slice(boundary, func(i, j int) bool { return boundary[i] < boundary[j] })

	b := factorgraph.NewBuilder()
	// Per-relation allowed-pair masks carry over for every relation present.
	seenRel := map[int32]bool{}
	addMask := func(v factorgraph.VarID) error {
		rel := g.Var(v).Relation
		if seenRel[rel] {
			return nil
		}
		seenRel[rel] = true
		if mask, h := g.AllowedPairMask(rel); mask != nil {
			return b.SetAllowedPairs(rel, h, mask)
		}
		return nil
	}
	localID := make(map[factorgraph.VarID]factorgraph.VarID, len(interior)+len(boundary))
	var cutWeight float64
	uncertain := map[factorgraph.VarID]bool{}
	for _, v := range interior {
		if err := addMask(v); err != nil {
			return nil, err
		}
		lid, err := b.AddVariable(g.Var(v))
		if err != nil {
			return nil, err
		}
		localID[v] = lid
	}
	for _, v := range boundary {
		if err := addMask(v); err != nil {
			return nil, err
		}
		meta := g.Var(v)
		val, evGrade := frozenAt(v)
		meta.Evidence = val
		if !evGrade {
			uncertain[v] = true
		}
		lid, err := b.AddVariable(meta)
		if err != nil {
			return nil, err
		}
		localID[v] = lid
	}
	for _, f := range factors {
		vars, neg := g.FactorVars(f)
		lvars := make([]factorgraph.VarID, len(vars))
		cut := false
		for i, u := range vars {
			lvars[i] = localID[u]
			if uncertain[u] {
				cut = true
			}
		}
		if cut {
			cutWeight += math.Abs(g.FactorWeightOf(f))
		}
		lneg := append([]bool(nil), neg...)
		if err := b.AddFactor(g.FactorKindOf(f), g.FactorWeightOf(f), lvars, lneg); err != nil {
			return nil, err
		}
	}
	pairs := make([]factorgraph.SpatialPair, 0, len(spatials))
	for _, sp := range spatials {
		a, bv, w := g.SpatialPair(sp)
		if uncertain[a] || uncertain[bv] {
			cutWeight += math.Abs(w)
		}
		pairs = append(pairs, factorgraph.SpatialPair{A: localID[a], B: localID[bv], W: w})
	}
	if err := b.AddSpatialPairs(pairs); err != nil {
		return nil, err
	}
	sub, err := b.Finalize()
	if err != nil {
		return nil, err
	}
	lg := &LocalGraph{
		Graph:        sub,
		Root:         localID[root],
		Interior:     interior,
		BoundaryVars: len(boundary),
		Truncated:    cutWeight > 0,
	}
	if cutWeight > 0 {
		lg.ErrorBound = math.Tanh(cutWeight)
	}
	return lg, nil
}

// sortedInt32 flattens a set into an ascending slice.
func sortedInt32(set map[int32]bool) []int32 {
	out := make([]int32, 0, len(set))
	for x := range set {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
