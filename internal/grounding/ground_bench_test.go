package grounding

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ddlog"
	"repro/internal/factorgraph"
	"repro/internal/geom"
	"repro/internal/storage"
	"repro/internal/weighting"
)

// benchSpatialSrc declares one @spatial relation; the benchmarks bypass the
// SQL phases and drive groundSpatialFactors / cooccurrenceMask directly so
// the numbers isolate the spatial sweep (the Fig. 9/10 grounding hot path).
const benchSpatialSrc = `
Obs (id bigint, location point).
@spatial(exp)
V? (id bigint, location point).
D: V(I, L) = NULL :- Obs(I, L).
`

const benchCategoricalSrc = `
Obs (id bigint, location point, lvl bigint).
@spatial(exp)
V? (id bigint, location point) categorical(4).
D: V(I, L) = V2 :- Obs(I, L, V2).
`

// benchLocs generates a clustered point set: atoms fall in sqrt(n) clusters
// so R-tree windows return O(cluster) candidates, like real spatial data.
func benchLocs(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	locs := make([]geom.Point, n)
	for i := range locs {
		cx := float64(rng.Intn(32)) * 40
		cy := float64(rng.Intn(32)) * 40
		locs[i] = geom.Pt(cx+rng.Float64()*10, cy+rng.Float64()*10)
	}
	return locs
}

// benchGrounder builds a Grounder whose spatial phase is ready to run:
// the per-relation atom lists are pre-populated, so each call to
// groundSpatialFactors against a fresh Builder measures only the sweep.
func benchGrounder(tb testing.TB, src string, locs []geom.Point, categorical bool, opts Options) *Grounder {
	tb.Helper()
	prog, err := ddlog.ParseAndValidate(src)
	if err != nil {
		tb.Fatal(err)
	}
	if opts.Weighting == nil {
		opts.Weighting = weighting.NewRegistry(10, 1)
	}
	gr := New(prog, storage.NewDB(), opts)
	gr.ctx = context.Background()
	rng := rand.New(rand.NewSource(99))
	atoms := make([]spatialAtom, len(locs))
	for i, loc := range locs {
		ev := factorgraph.NoEvidence
		if categorical && rng.Intn(2) == 0 {
			ev = int32(rng.Intn(4))
		}
		atoms[i] = spatialAtom{vid: factorgraph.VarID(i), loc: loc, evidence: ev}
	}
	gr.spatial["v"] = atoms
	return gr
}

// benchBuilder populates a fresh Builder with the variables the grounder's
// spatial atoms reference (normally done by runDerivations).
func benchBuilder(tb testing.TB, gr *Grounder, categorical bool) (*factorgraph.Builder, *Result) {
	tb.Helper()
	b := factorgraph.NewBuilder()
	domain := int32(2)
	if categorical {
		domain = 4
	}
	for _, a := range gr.spatial["v"] {
		if _, err := b.AddVariable(factorgraph.Variable{
			Name: "v", Domain: domain, Evidence: a.evidence,
			Loc: a.loc, HasLoc: true,
		}); err != nil {
			tb.Fatal(err)
		}
	}
	res := &Result{RelationIndex: map[string]int32{"v": 0}}
	return b, res
}

// BenchmarkGroundSpatialSweep measures the unlimited-neighbours spatial
// sweep (Eq. 2 factor generation): R-tree window search, distance filter,
// pair emission. Builder setup is excluded via timer stops.
func BenchmarkGroundSpatialSweep(b *testing.B) {
	for _, n := range []int{2000} {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("atoms=%d/workers=%d", n, workers), func(b *testing.B) {
				locs := benchLocs(n, 42)
				gr := benchGrounder(b, benchSpatialSrc, locs, false, Options{Workers: workers})
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					builder, res := benchBuilder(b, gr, false)
					b.StartTimer()
					if err := gr.groundSpatialFactors(builder, res); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkGroundSpatialCapped measures the MaxNeighbors=8 capped sweep
// (the scalability valve used for dense rasters).
func BenchmarkGroundSpatialCapped(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			locs := benchLocs(2000, 42)
			gr := benchGrounder(b, benchSpatialSrc, locs, false, Options{MaxNeighbors: 8, Workers: workers})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				builder, res := benchBuilder(b, gr, false)
				b.StartTimer()
				if err := gr.groundSpatialFactors(builder, res); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGroundCooccurrence measures the Section IV-C co-occurrence
// statistics pass over evidence atoms (categorical pruning mask).
func BenchmarkGroundCooccurrence(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			locs := benchLocs(4000, 7)
			gr := benchGrounder(b, benchCategoricalSrc, locs, true, Options{Workers: workers})
			rel, _ := gr.prog.Relation("V")
			atoms := gr.spatial["v"]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mask, _, _, err := gr.cooccurrenceMask(rel, atoms, 15)
				if err != nil {
					b.Fatal(err)
				}
				if len(mask) != 16 {
					b.Fatal("bad mask")
				}
			}
		})
	}
}
