package grounding

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/factorgraph"
	"repro/internal/gibbs/testutil"
)

// chainResult builds a 5-variable Imply chain v0→v1→v2→v3→v4 (weight w, all
// binary) with optional evidence, wrapped as a grounding Result.
func chainResult(t *testing.T, w float64, evidence map[int]int32) *Result {
	t.Helper()
	b := factorgraph.NewBuilder()
	ids := make([]factorgraph.VarID, 5)
	res := &Result{VarID: map[string]factorgraph.VarID{}}
	for i := 0; i < 5; i++ {
		ev := factorgraph.NoEvidence
		if v, ok := evidence[i]; ok {
			ev = v
		}
		id, err := b.AddVariable(factorgraph.Variable{Name: fmt.Sprintf("v%d", i), Domain: 2, Evidence: ev})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		res.VarID[fmt.Sprintf("v%d", i)] = id
	}
	for i := 0; i < 4; i++ {
		if err := b.AddFactor(factorgraph.FactorImply, w, []factorgraph.VarID{ids[i], ids[i+1]}, nil); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	res.Graph = g
	return res
}

// TestExtractLocalEvidenceBlocks checks evidence d-separation: expansion
// from v0 stops at observed v2, which joins as a frozen boundary atom with
// zero truncation error.
func TestExtractLocalEvidenceBlocks(t *testing.T) {
	res := chainResult(t, 0.7, map[int]int32{2: 1})
	lg, err := ExtractLocal(res, 0, LocalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(lg.Interior); got != 2 {
		t.Fatalf("interior = %d vars, want 2 (v0, v1)", got)
	}
	if lg.BoundaryVars != 1 {
		t.Fatalf("boundary = %d vars, want 1 (v2)", lg.BoundaryVars)
	}
	if lg.ErrorBound != 0 || lg.Truncated {
		t.Fatalf("evidence boundary must be exact: bound %.4f truncated %v", lg.ErrorBound, lg.Truncated)
	}
	if lg.Graph.NumFactors() != 2 {
		t.Fatalf("subgraph factors = %d, want 2 (v0→v1, v1→v2)", lg.Graph.NumFactors())
	}
	if ev := lg.Graph.Var(factorgraph.VarID(lg.Graph.NumVars() - 1)).Evidence; ev != 1 {
		t.Fatalf("boundary atom frozen at %d, want evidence value 1", ev)
	}
}

// TestExtractLocalBudgetTruncation checks the variable budget: a MaxVars=2
// expansion over an unobserved chain cuts at v2 and reports the cut factor's
// weight in the error bound.
func TestExtractLocalBudgetTruncation(t *testing.T) {
	const w = 0.7
	res := chainResult(t, w, nil)
	lg, err := ExtractLocal(res, 0, LocalOptions{MaxVars: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(lg.Interior); got != 2 {
		t.Fatalf("interior = %d vars, want 2", got)
	}
	if lg.BoundaryVars != 1 {
		t.Fatalf("boundary = %d vars, want 1 (uncertain v2)", lg.BoundaryVars)
	}
	if !lg.Truncated {
		t.Fatal("cutting an uncertain variable must report Truncated")
	}
	want := math.Tanh(w) // one cut factor (v1→v2) with |w| = 0.7
	if math.Abs(lg.ErrorBound-want) > 1e-12 {
		t.Fatalf("error bound %.6f, want tanh(%.1f) = %.6f", lg.ErrorBound, w, want)
	}
}

// TestExtractLocalEvidenceRoot checks a query on an observed atom: a
// single-variable point-mass subgraph.
func TestExtractLocalEvidenceRoot(t *testing.T) {
	res := chainResult(t, 0.7, map[int]int32{0: 1})
	lg, err := ExtractLocal(res, 0, LocalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if lg.Graph.NumVars() != 1 || lg.Graph.Var(0).Evidence != 1 {
		t.Fatalf("evidence root must yield a 1-var frozen subgraph, got %d vars", lg.Graph.NumVars())
	}
	if lg.ErrorBound != 0 || lg.Truncated {
		t.Fatal("evidence root is exact")
	}
}

// TestExtractLocalExactOnEvidenceBoundary is the construction's semantic
// anchor: when the frontier stops only at evidence (whole uncertain
// component inside the budget), exact marginals on the subgraph equal exact
// marginals on the full graph for every interior variable.
func TestExtractLocalExactOnEvidenceBoundary(t *testing.T) {
	for _, shape := range testutil.Shapes(77) {
		t.Run(shape.Name, func(t *testing.T) {
			g, err := testutil.RandomGraph(shape.Spec)
			if err != nil {
				t.Fatal(err)
			}
			res := &Result{Graph: g, VarID: map[string]factorgraph.VarID{}}
			for i := 0; i < g.NumVars(); i++ {
				res.VarID[fmt.Sprintf("v%d", i)] = factorgraph.VarID(i)
			}
			full, err := testutil.Exact(g)
			if err != nil {
				t.Fatal(err)
			}
			var root factorgraph.VarID = -1
			for i := 0; i < g.NumVars(); i++ {
				if g.Var(factorgraph.VarID(i)).Evidence == factorgraph.NoEvidence {
					root = factorgraph.VarID(i)
					break
				}
			}
			if root < 0 {
				t.Skip("no query variable")
			}
			lg, err := ExtractLocal(res, root, LocalOptions{MaxVars: g.NumVars()})
			if err != nil {
				t.Fatal(err)
			}
			if lg.Truncated || lg.ErrorBound != 0 {
				t.Fatalf("budget covers the graph, yet truncated=%v bound=%.4f", lg.Truncated, lg.ErrorBound)
			}
			local, err := testutil.Exact(lg.Graph)
			if err != nil {
				t.Fatal(err)
			}
			for li, fullID := range lg.Interior {
				if d := testutil.TV(local[li], full[fullID]); d > 1e-9 {
					t.Fatalf("interior var %d: local exact marginal off by TV %.2e", fullID, d)
				}
			}
		})
	}
}
