package grounding

import (
	"context"
	"testing"

	"repro/internal/ddlog"
	"repro/internal/factorgraph"
	"repro/internal/geom"
	"repro/internal/storage"
	"repro/internal/weighting"
)

func TestComputeDeps(t *testing.T) {
	prog, err := ddlog.ParseAndValidate(ebolaSrc)
	if err != nil {
		t.Fatal(err)
	}
	deps := ComputeDeps(prog)
	if !deps.Variable["hasebola"] {
		t.Error("HasEbola must be marked variable")
	}
	if got := deps.DerivationsByRel["countyevidence"]; len(got) != 1 || got[0] != 1 {
		t.Errorf("CountyEvidence derivations = %v, want [1] (D2)", got)
	}
	if got := deps.DerivationsByRel["county"]; len(got) != 1 || got[0] != 0 {
		t.Errorf("County derivations = %v, want [0] (D1)", got)
	}
	if got := deps.RulesByRel["county"]; len(got) != 1 {
		t.Errorf("County rules = %v, want one (R1)", got)
	}
	if len(deps.RulesByRel["countyevidence"]) != 0 {
		t.Error("CountyEvidence must not feed rule bodies")
	}
}

// deltaFixture grounds the Ebola KB and keeps the grounder + db alive so a
// test can upsert and delta-ground against the same world.
func deltaFixture(t *testing.T) (*Grounder, *storage.DB, *Result) {
	t.Helper()
	prog, err := ddlog.ParseAndValidate(ebolaSrc)
	if err != nil {
		t.Fatal(err)
	}
	db := ebolaDB(t, prog)
	gr := New(prog, db, Options{Metric: geom.HaversineMiles, Weighting: weighting.NewRegistry(60, 1)})
	res, err := gr.Ground()
	if err != nil {
		t.Fatal(err)
	}
	return gr, db, res
}

func TestDeltaEvidenceUpsertProducesPins(t *testing.T) {
	gr, db, res := deltaFixture(t)
	// Upsert: Bong (id 3) now has observed ebola.
	ev, err := db.Table("CountyEvidence")
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Append(storage.Row{storage.Int(3), storage.Geom(geom.Pt(-9.45, 7.05)), storage.Bool(true)}); err != nil {
		t.Fatal(err)
	}
	patch, err := gr.DeltaContext(context.Background(), res, []string{"CountyEvidence"})
	if err != nil {
		t.Fatal(err)
	}
	if patch.Structural {
		t.Fatalf("unexpected structural fallback: %s", patch.Reason)
	}
	if patch.Derivations != 1 {
		t.Errorf("re-evaluated %d derivations, want 1 (D2 only)", patch.Derivations)
	}
	// Exactly one pin: Bong flips to evidence 1. Montserrado's pre-existing
	// evidence row re-derives but its atom already holds evidence in the
	// graph, so no pin is emitted for it.
	if len(patch.Pins) != 1 {
		t.Fatalf("pins = %+v, want exactly one", patch.Pins)
	}
	pin := patch.Pins[0]
	wantKey := "hasebola|3|POINT (-9.45 7.05)"
	if pin.Key != wantKey || pin.Value != 1 {
		t.Errorf("pin = %+v, want key %s value 1", pin, wantKey)
	}
	if res.Graph.Var(pin.Var).Evidence != factorgraph.NoEvidence {
		t.Error("pinned atom must have been unlabeled in the batch graph")
	}
}

func TestDeltaConflictingEvidenceKeepsFirst(t *testing.T) {
	gr, db, res := deltaFixture(t)
	ev, err := db.Table("CountyEvidence")
	if err != nil {
		t.Fatal(err)
	}
	// Montserrado already has evidence=true from the seed row; a
	// conflicting upsert must not produce a pin (batch dedup keeps the
	// first label).
	if err := ev.Append(storage.Row{storage.Int(1), storage.Geom(geom.Pt(-10.80, 6.32)), storage.Bool(false)}); err != nil {
		t.Fatal(err)
	}
	patch, err := gr.DeltaContext(context.Background(), res, []string{"CountyEvidence"})
	if err != nil {
		t.Fatal(err)
	}
	if patch.Structural || len(patch.Pins) != 0 {
		t.Fatalf("patch = %+v, want empty non-structural", patch)
	}
}

func TestDeltaStructuralFallbacks(t *testing.T) {
	gr, db, res := deltaFixture(t)
	// A change to County reaches both D1 and R1's body: structural.
	patch, err := gr.DeltaContext(context.Background(), res, []string{"County"})
	if err != nil {
		t.Fatal(err)
	}
	if !patch.Structural {
		t.Fatal("County change must be structural (feeds R1's body)")
	}
	// A change to the variable relation itself: structural.
	patch, err = gr.DeltaContext(context.Background(), res, []string{"HasEbola"})
	if err != nil {
		t.Fatal(err)
	}
	if !patch.Structural {
		t.Fatal("variable relation change must be structural")
	}
	// Evidence for a county that was never derived (id 9): new ground atom.
	ev, err := db.Table("CountyEvidence")
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Append(storage.Row{storage.Int(9), storage.Geom(geom.Pt(-8, 5)), storage.Bool(true)}); err != nil {
		t.Fatal(err)
	}
	patch, err = gr.DeltaContext(context.Background(), res, []string{"CountyEvidence"})
	if err != nil {
		t.Fatal(err)
	}
	if !patch.Structural {
		t.Fatal("new ground atom must force a structural fallback")
	}
}

func TestDeltaNoChangesIsEmpty(t *testing.T) {
	gr, _, res := deltaFixture(t)
	patch, err := gr.DeltaContext(context.Background(), res, nil)
	if err != nil {
		t.Fatal(err)
	}
	if patch.Structural || len(patch.Pins) != 0 {
		t.Fatalf("patch = %+v, want empty", patch)
	}
	// Re-running with the same data changes nothing either.
	patch, err = gr.DeltaContext(context.Background(), res, []string{"CountyEvidence"})
	if err != nil {
		t.Fatal(err)
	}
	if patch.Structural || len(patch.Pins) != 0 {
		t.Fatalf("idempotent delta = %+v, want empty", patch)
	}
}
