package grounding

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ddlog"
	"repro/internal/factorgraph"
	"repro/internal/geom"
	"repro/internal/gibbs"
	"repro/internal/storage"
	"repro/internal/translate"
	"repro/internal/weighting"
)

// ebolaSrc is the paper's Fig. 3 program plus an evidence derivation.
const ebolaSrc = `
const liberia_geom = 'POLYGON((-12 4, -7 4, -7 9, -12 9))'.
S1: County (id bigint, location point, hasLowSanitation bool).
E1: CountyEvidence (id bigint, location point, hasEbola bool).
@spatial(exp)
S2: HasEbola? (id bigint, location point).
D1: HasEbola(C, L) = NULL :- County(C, L, _).
D2: HasEbola(C, L) = E :- CountyEvidence(C, L, E).
R1: @weight(0.35)
HasEbola(C1, L1) => HasEbola(C2, L2) :-
    County(C1, L1, _), County(C2, L2, S2)
    [distance(L1, L2) < 150, within(liberia_geom, L1), S2 = true].
`

// county coordinates chosen so that distances match the paper's narrative:
// Montserrado–Margibi ≈ 29 mi, –Bong ≈ 106 mi, –Gbarpolu ≈ 158 mi.
var counties = []struct {
	id   int64
	name string
	loc  geom.Point
	san  bool
}{
	{1, "Montserrado", geom.Pt(-10.80, 6.32), true},
	{2, "Margibi", geom.Pt(-10.45, 6.55), true},
	{3, "Bong", geom.Pt(-9.45, 7.05), true},
	{4, "Gbarpolu", geom.Pt(-8.90, 7.60), false},
}

func ebolaDB(t *testing.T, prog *ddlog.Program) *storage.DB {
	t.Helper()
	db := storage.NewDB()
	rel, _ := prog.Relation("County")
	county, err := db.Create(translate.SchemaFor(rel))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range counties {
		if err := county.Append(storage.Row{storage.Int(c.id), storage.Geom(c.loc), storage.Bool(c.san)}); err != nil {
			t.Fatal(err)
		}
	}
	erel, _ := prog.Relation("CountyEvidence")
	ev, err := db.Create(translate.SchemaFor(erel))
	if err != nil {
		t.Fatal(err)
	}
	// Montserrado declared highly infected (the paper's evidence row).
	if err := ev.Append(storage.Row{storage.Int(1), storage.Geom(counties[0].loc), storage.Bool(true)}); err != nil {
		t.Fatal(err)
	}
	return db
}

func groundEbola(t *testing.T, opts Options) (*Result, *ddlog.Program) {
	t.Helper()
	prog, err := ddlog.ParseAndValidate(ebolaSrc)
	if err != nil {
		t.Fatal(err)
	}
	db := ebolaDB(t, prog)
	if opts.Metric == geom.Euclidean {
		opts.Metric = geom.HaversineMiles
	}
	res, err := New(prog, db, opts).Ground()
	if err != nil {
		t.Fatal(err)
	}
	return res, prog
}

func TestGroundEbolaKB(t *testing.T) {
	reg := weighting.NewRegistry(60, 1) // 60-mile bandwidth
	res, _ := groundEbola(t, Options{Weighting: reg})
	st := res.Stats
	if st.Vars != 4 {
		t.Fatalf("vars = %d, want 4", st.Vars)
	}
	if st.EvidenceVars != 1 || st.QueryVars != 3 {
		t.Errorf("evidence/query = %d/%d", st.EvidenceVars, st.QueryVars)
	}
	// Pairs satisfying R1's body (including C1 = C2 at distance 0):
	// C1 ∈ all 4 (all within Liberia), C2 ∈ sanitation-true {1,2,3} with
	// distance < 150: C1=1→{1,2,3}, C1=2→{1,2,3}, C1=3→{1,2,3},
	// C1=4→{2,3} (d(4,1) ≈ 158 > 150). Total 11.
	if st.LogicalFactors != 11 {
		t.Errorf("logical factors = %d, want 11", st.LogicalFactors)
	}
	// Spatial factors: all 6 unordered pairs are within the exp support
	// radius (60·ln(1000) ≈ 414 mi).
	if st.SpatialPairs != 6 {
		t.Errorf("spatial pairs = %d, want 6", st.SpatialPairs)
	}
	// The duplicate derivation of Montserrado (D1 then D2) upgrades its
	// evidence rather than duplicating the atom.
	if st.DuplicateDerivations != 1 {
		t.Errorf("duplicate derivations = %d, want 1", st.DuplicateDerivations)
	}
	if res.Graph == nil || res.Graph.NumVars() != 4 {
		t.Fatal("graph missing")
	}
	// Montserrado is evidence=1.
	vid := res.VarID["hasebola|1|POINT (-10.8 6.32)"]
	if got := res.Graph.Var(vid).Evidence; got != 1 {
		t.Errorf("Montserrado evidence = %d", got)
	}
}

func TestEbolaFactualScoresOrdering(t *testing.T) {
	// The paper's Fig. 1: Sya reports Margibi > Bong > Gbarpolu
	// (0.76, 0.53, 0.22 in the paper). With our synthetic weights the
	// absolute values differ but the ordering must reproduce.
	reg := weighting.NewRegistry(60, 1)
	res, _ := groundEbola(t, Options{Weighting: reg})
	s, err := gibbs.NewSpatial(res.Graph, gibbs.SpatialOptions{Levels: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	s.RunTotalEpochs(8000)
	m := s.Marginals()
	score := func(id int) float64 {
		for key, vid := range res.VarID {
			if strings.HasPrefix(key, "hasebola|"+string(rune('0'+id))+"|") {
				return m[vid][1]
			}
		}
		t.Fatalf("no atom for county %d", id)
		return 0
	}
	margibi, bong, gbarpolu := score(2), score(3), score(4)
	if !(margibi > bong && bong > gbarpolu) {
		t.Errorf("ordering violated: Margibi=%.3f Bong=%.3f Gbarpolu=%.3f", margibi, bong, gbarpolu)
	}
	// All should be pulled above 0.5-neutral for near counties; Gbarpolu
	// must remain clearly lower but not collapse to ~0 (the paper's point
	// about DeepDive's boolean cut-off).
	if gbarpolu < 0.05 {
		t.Errorf("Gbarpolu score %.3f collapsed like a boolean predicate would", gbarpolu)
	}
}

func TestFactorTablesMaterialized(t *testing.T) {
	res, _ := groundEbola(t, Options{})
	_ = res
	// Reground with direct access to the DB to inspect tables.
	prog, _ := ddlog.ParseAndValidate(ebolaSrc)
	db := ebolaDB(t, prog)
	gr := New(prog, db, Options{Metric: geom.HaversineMiles})
	if _, err := gr.Ground(); err != nil {
		t.Fatal(err)
	}
	ft, err := db.Table("sya_factors_R1")
	if err != nil {
		t.Fatalf("factor table missing: %v", err)
	}
	if ft.Len() != 11 {
		t.Errorf("factor table rows = %d, want 11", ft.Len())
	}
	// Variable relation materialized with __vid.
	he, err := db.Table("HasEbola")
	if err != nil {
		t.Fatal(err)
	}
	if he.Len() != 4 || he.Schema().ColIndex("__vid") < 0 {
		t.Errorf("HasEbola rows = %d", he.Len())
	}
}

func TestSkipFactorTables(t *testing.T) {
	prog, _ := ddlog.ParseAndValidate(ebolaSrc)
	db := ebolaDB(t, prog)
	gr := New(prog, db, Options{Metric: geom.HaversineMiles, SkipFactorTables: true})
	if _, err := gr.Ground(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Table("sya_factors_R1"); err == nil {
		t.Error("factor table should not exist")
	}
}

func TestUDFApplication(t *testing.T) {
	src := `
Docs (id bigint, body text).
Mention (doc bigint, place text, location point).
M? (doc bigint, place text, location point).
function extract over (id bigint, body text) returns rows like Mention implementation "fake_ner".
Mention += extract(I, B) :- Docs(I, B).
D: M(D, P, L) = NULL :- Mention(D, P, L).
`
	prog, err := ddlog.ParseAndValidate(src)
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDB()
	rel, _ := prog.Relation("Docs")
	docs, _ := db.Create(translate.SchemaFor(rel))
	_ = docs.Append(storage.Row{storage.Int(1), storage.Str("visited Monrovia and Kakata")})
	_ = docs.Append(storage.Row{storage.Int(2), storage.Str("nothing here")})
	fake := func(args []storage.Value) ([]storage.Row, error) {
		id := args[0]
		var out []storage.Row
		if strings.Contains(args[1].S, "Monrovia") {
			out = append(out, storage.Row{id, storage.Str("Monrovia"), storage.Geom(geom.Pt(-10.8, 6.3))})
		}
		if strings.Contains(args[1].S, "Kakata") {
			out = append(out, storage.Row{id, storage.Str("Kakata"), storage.Geom(geom.Pt(-10.35, 6.53))})
		}
		return out, nil
	}
	gr := New(prog, db, Options{UDFs: map[string]UDF{"fake_ner": fake}})
	res, err := gr.Ground()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Vars != 2 {
		t.Errorf("vars = %d, want 2 mentions", res.Stats.Vars)
	}
	if _, err := db.Table("Mention"); err != nil {
		t.Error("Mention table missing")
	}
}

func TestMissingUDFImplementation(t *testing.T) {
	src := `
Docs (id bigint).
Out (id bigint).
function f over (id bigint) returns (id bigint) implementation "nope".
Out += f(I) :- Docs(I).
`
	prog, err := ddlog.ParseAndValidate(src)
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDB()
	if _, err := New(prog, db, Options{}).Ground(); err == nil {
		t.Error("missing UDF should fail")
	}
}

func TestSkippedHeadLookups(t *testing.T) {
	// The rule's head references atoms only derived for a subset of rows.
	src := `
A (id bigint, grp bigint).
V? (id bigint).
D: V(I) = NULL :- A(I, 1).
R: @weight(1) V(I1) => V(I2) :- A(I1, _), A(I2, _).
`
	prog, err := ddlog.ParseAndValidate(src)
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDB()
	rel, _ := prog.Relation("A")
	a, _ := db.Create(translate.SchemaFor(rel))
	_ = a.Append(storage.Row{storage.Int(1), storage.Int(1)})
	_ = a.Append(storage.Row{storage.Int(2), storage.Int(2)}) // not derived
	res, err := New(prog, db, Options{}).Ground()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Vars != 1 {
		t.Fatalf("vars = %d", res.Stats.Vars)
	}
	// Groundings: (1,1) ok; (1,2), (2,1), (2,2) each hit a missing atom.
	if res.Stats.SkippedHeadLookups != 3 {
		t.Errorf("skipped = %d, want 3", res.Stats.SkippedHeadLookups)
	}
	if res.Stats.LogicalFactors != 1 {
		t.Errorf("factors = %d, want 1", res.Stats.LogicalFactors)
	}
}

func TestCategoricalPruningMaskEffect(t *testing.T) {
	// Clustered categorical evidence: values 0 and 1 co-occur spatially;
	// value 2 appears isolated far away. With T high, (0,2)/(1,2) pairs
	// must be pruned while (0,0), (0,1), (1,1) survive.
	src := `
Obs (id bigint, location point, lvl bigint).
@spatial(exp)
Level? (id bigint, location point) categorical(3).
D1: Level(I, L) = V :- Obs(I, L, V).
`
	prog, err := ddlog.ParseAndValidate(src)
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDB()
	rel, _ := prog.Relation("Obs")
	obs, _ := db.Create(translate.SchemaFor(rel))
	rng := rand.New(rand.NewSource(3))
	id := int64(0)
	// Cluster A: values 0/1 interleaved around (0, 0).
	for i := 0; i < 30; i++ {
		loc := geom.Pt(rng.Float64()*5, rng.Float64()*5)
		_ = obs.Append(storage.Row{storage.Int(id), storage.Geom(loc), storage.Int(int64(i % 2))})
		id++
	}
	// Cluster B: value 2 far away at (1000, 1000).
	for i := 0; i < 10; i++ {
		loc := geom.Pt(1000+rng.Float64()*5, 1000+rng.Float64()*5)
		_ = obs.Append(storage.Row{storage.Int(id), storage.Geom(loc), storage.Int(2)})
		id++
	}
	reg := weighting.NewRegistry(5, 1)
	res, err := New(prog, db, Options{Weighting: reg, PruneThreshold: 0.5, SupportRadius: 10}).Ground()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PrunedValuePairs == 0 {
		t.Error("expected some pruned value pairs")
	}
	if res.Stats.AllowedValuePairs == 0 {
		t.Error("expected some allowed value pairs")
	}
	// Cross-cluster pairs (0,2)/(2,0)/(1,2)/(2,1) never co-occur → pruned;
	// that is 4 of 9 pairs at least.
	if res.Stats.PrunedValuePairs < 4 {
		t.Errorf("pruned = %d, want >= 4", res.Stats.PrunedValuePairs)
	}
}

func TestPruningThresholdMonotone(t *testing.T) {
	// Higher T must never allow more pairs (the Fig. 11 trade-off).
	build := func(T float64) int {
		src := `
Obs (id bigint, location point, lvl bigint).
@spatial(exp)
Level? (id bigint, location point) categorical(4).
D1: Level(I, L) = V :- Obs(I, L, V).
`
		prog, err := ddlog.ParseAndValidate(src)
		if err != nil {
			t.Fatal(err)
		}
		db := storage.NewDB()
		rel, _ := prog.Relation("Obs")
		obs, _ := db.Create(translate.SchemaFor(rel))
		rng := rand.New(rand.NewSource(9))
		for i := int64(0); i < 80; i++ {
			loc := geom.Pt(rng.Float64()*20, rng.Float64()*20)
			_ = obs.Append(storage.Row{storage.Int(i), storage.Geom(loc), storage.Int(int64(rng.Intn(4)))})
		}
		res, err := New(prog, db, Options{
			Weighting: weighting.NewRegistry(4, 1), PruneThreshold: T, SupportRadius: 6,
		}).Ground()
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.AllowedValuePairs
	}
	prev := build(0.1)
	for _, T := range []float64{0.3, 0.5, 0.7, 0.9} {
		cur := build(T)
		if cur > prev {
			t.Errorf("T=%v allowed %d > previous %d", T, cur, prev)
		}
		prev = cur
	}
}

func TestMaxNeighborsCap(t *testing.T) {
	src := `
Obs (id bigint, location point).
@spatial(exp)
V? (id bigint, location point).
D: V(I, L) = NULL :- Obs(I, L).
`
	prog, err := ddlog.ParseAndValidate(src)
	if err != nil {
		t.Fatal(err)
	}
	build := func(cap int) int {
		db := storage.NewDB()
		rel, _ := prog.Relation("Obs")
		obs, _ := db.Create(translate.SchemaFor(rel))
		rng := rand.New(rand.NewSource(4))
		for i := int64(0); i < 60; i++ {
			_ = obs.Append(storage.Row{storage.Int(i), storage.Geom(geom.Pt(rng.Float64(), rng.Float64()))})
		}
		res, err := New(prog, db, Options{
			Weighting: weighting.NewRegistry(10, 1), MaxNeighbors: cap,
		}).Ground()
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.SpatialPairs
	}
	unlimited := build(0)
	capped := build(3)
	if unlimited != 60*59/2 {
		t.Errorf("unlimited pairs = %d, want %d (dense cluster)", unlimited, 60*59/2)
	}
	if capped >= unlimited || capped == 0 {
		t.Errorf("capped pairs = %d vs unlimited %d", capped, unlimited)
	}
}

func TestEvidenceBeatsNullOnDuplicates(t *testing.T) {
	res, _ := groundEbola(t, Options{})
	g := res.Graph
	evCount := 0
	g.Vars(func(_ factorgraph.VarID, v factorgraph.Variable) bool {
		if v.Evidence != factorgraph.NoEvidence {
			evCount++
		}
		return true
	})
	if evCount != 1 {
		t.Errorf("evidence vars = %d, want 1", evCount)
	}
}

func TestStatsRuleBookkeeping(t *testing.T) {
	res, _ := groundEbola(t, Options{})
	if res.Stats.RuleFactors["R1"] != 11 {
		t.Errorf("R1 factors = %d", res.Stats.RuleFactors["R1"])
	}
	if res.Stats.DerivationRows["D1"] != 4 || res.Stats.DerivationRows["D2"] != 1 {
		t.Errorf("derivation rows = %v", res.Stats.DerivationRows)
	}
	if !strings.Contains(res.Stats.RuleSQL["R1"], "ST_DISTANCE") {
		t.Errorf("rule SQL missing: %v", res.Stats.RuleSQL["R1"])
	}
	if res.Stats.TotalTime <= 0 {
		t.Error("total time not measured")
	}
}
