package grounding_test

// The grounding determinism harness: the worker-sharded spatial sweeps,
// co-occurrence counting and batched rule evaluation must produce a factor
// graph identical — variable for variable, factor for factor, pair for pair,
// in order — for every worker-pool width. The sweep's canonical-ordered pair
// emission and parallel.For's fixed chunking are what make this hold; this
// test is the executable statement of that contract, run over the same
// datagen workloads the experiment harness uses.

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/factorgraph"
	"repro/internal/geom"
	"repro/internal/gibbs/testutil"
)

// groundWorkload builds, loads and grounds one datagen workload at the given
// grounding worker count.
type groundWorkload struct {
	name  string
	build func(t *testing.T, groundWorkers int) *core.System
}

func determinismWorkloads() []groundWorkload {
	wellsSystem := func(t *testing.T, workers, maxNeighbors int) *core.System {
		t.Helper()
		data := datagen.Wells(datagen.WellsConfig{N: 300, Seed: 11, Extent: 420})
		s := core.NewSystem(core.Config{
			Engine:           core.EngineSya,
			Metric:           geom.Euclidean,
			Bandwidth:        30,
			SpatialScale:     0.5,
			SupportRadius:    75,
			MaxNeighbors:     maxNeighbors,
			PyramidLevels:    6,
			GroundWorkers:    workers,
			Seed:             1,
			SkipFactorTables: true,
		})
		if err := s.LoadProgram(datagen.GWDBProgram); err != nil {
			t.Fatal(err)
		}
		wells, evidence := data.Rows()
		if err := s.LoadRows("Well", wells); err != nil {
			t.Fatal(err)
		}
		if err := s.LoadRows("WellEvidence", evidence); err != nil {
			t.Fatal(err)
		}
		return s
	}
	return []groundWorkload{
		{"gwdb-unlimited", func(t *testing.T, w int) *core.System {
			return wellsSystem(t, w, 0)
		}},
		{"gwdb-capped", func(t *testing.T, w int) *core.System {
			return wellsSystem(t, w, 12)
		}},
		{"nyccas-raster", func(t *testing.T, w int) *core.System {
			t.Helper()
			data := datagen.Raster(datagen.RasterConfig{Side: 14, Seed: 3, Extent: 14 * 30.0 / 22.0})
			cell := data.Config.Extent / float64(data.Config.Side)
			s := core.NewSystem(core.Config{
				Engine:           core.EngineSya,
				Metric:           geom.Euclidean,
				Bandwidth:        2 * cell,
				SpatialScale:     0.5,
				SupportRadius:    4 * cell,
				MaxNeighbors:     8,
				PyramidLevels:    6,
				GroundWorkers:    w,
				Seed:             1,
				SkipFactorTables: true,
			})
			if err := s.LoadProgram(datagen.NYCCASProgram); err != nil {
				t.Fatal(err)
			}
			cells, evidence := data.Rows()
			if err := s.LoadRows("Cell", cells); err != nil {
				t.Fatal(err)
			}
			if err := s.LoadRows("CellEvidence", evidence); err != nil {
				t.Fatal(err)
			}
			return s
		}},
		{"gwdb-categorical-pruned", func(t *testing.T, w int) *core.System {
			// Exercises the parallel co-occurrence counting and the pruning
			// mask (Section IV-C) on an h=10 categorical domain.
			t.Helper()
			data := datagen.Wells(datagen.WellsConfig{N: 300, Seed: 17, Extent: 420})
			s := core.NewSystem(core.Config{
				Engine:           core.EngineSya,
				Metric:           geom.Euclidean,
				Bandwidth:        30,
				SupportRadius:    75,
				MaxNeighbors:     20,
				PyramidLevels:    6,
				GroundWorkers:    w,
				Seed:             1,
				PruneThreshold:   0.5,
				SkipFactorTables: true,
			})
			if err := s.LoadProgram(datagen.GWDBCategoricalProgram); err != nil {
				t.Fatal(err)
			}
			wells, _ := data.Rows()
			if err := s.LoadRows("Well", wells); err != nil {
				t.Fatal(err)
			}
			if err := s.LoadRows("LevelEvidence", data.LevelRows(10)); err != nil {
				t.Fatal(err)
			}
			return s
		}},
	}
}

// diffGraphs asserts two grounded graphs are structurally identical, element
// for element and in the same order. (Comparison goes through the accessors
// rather than the gob encoding: gob serializes the relation-mask maps in
// nondeterministic key order, which would make byte-level comparison flaky
// for reasons unrelated to grounding.)
func diffGraphs(t *testing.T, workers int, ref, got *factorgraph.Graph) {
	t.Helper()
	if got.NumVars() != ref.NumVars() {
		t.Fatalf("workers=%d: %d vars, want %d", workers, got.NumVars(), ref.NumVars())
	}
	relSeen := map[int32]bool{}
	for i := 0; i < ref.NumVars(); i++ {
		rv, gv := ref.Var(factorgraph.VarID(i)), got.Var(factorgraph.VarID(i))
		if rv != gv {
			t.Fatalf("workers=%d: var %d = %+v, want %+v", workers, i, gv, rv)
		}
		relSeen[rv.Relation] = true
	}
	if got.NumFactors() != ref.NumFactors() {
		t.Fatalf("workers=%d: %d factors, want %d", workers, got.NumFactors(), ref.NumFactors())
	}
	for f := int32(0); f < int32(ref.NumFactors()); f++ {
		if got.FactorKindOf(f) != ref.FactorKindOf(f) || got.FactorWeightOf(f) != ref.FactorWeightOf(f) {
			t.Fatalf("workers=%d: factor %d kind/weight mismatch", workers, f)
		}
		rvars, rneg := ref.FactorVars(f)
		gvars, gneg := got.FactorVars(f)
		if len(rvars) != len(gvars) {
			t.Fatalf("workers=%d: factor %d arity %d, want %d", workers, f, len(gvars), len(rvars))
		}
		for k := range rvars {
			if rvars[k] != gvars[k] || rneg[k] != gneg[k] {
				t.Fatalf("workers=%d: factor %d edge %d mismatch", workers, f, k)
			}
		}
	}
	if got.NumSpatialFactors() != ref.NumSpatialFactors() {
		t.Fatalf("workers=%d: %d spatial pairs, want %d", workers, got.NumSpatialFactors(), ref.NumSpatialFactors())
	}
	for sIdx := int32(0); sIdx < int32(ref.NumSpatialFactors()); sIdx++ {
		ra, rb, rw := ref.SpatialPair(sIdx)
		ga, gb, gw := got.SpatialPair(sIdx)
		if ra != ga || rb != gb || rw != gw {
			t.Fatalf("workers=%d: spatial pair %d = (%d, %d, %v), want (%d, %d, %v)",
				workers, sIdx, ga, gb, gw, ra, rb, rw)
		}
	}
	for rel := range relSeen {
		rmask, rh := ref.AllowedPairMask(rel)
		gmask, gh := got.AllowedPairMask(rel)
		if rh != gh || len(rmask) != len(gmask) {
			t.Fatalf("workers=%d: relation %d mask shape mismatch", workers, rel)
		}
		for k := range rmask {
			if rmask[k] != gmask[k] {
				t.Fatalf("workers=%d: relation %d mask[%d] = %v, want %v", workers, rel, k, gmask[k], rmask[k])
			}
		}
	}
}

// TestGroundingWorkerInvariance grounds each workload at worker counts 1, 2
// and 8 and requires the resulting factor graphs (and the headline stats) to
// be identical to the sequential reference.
func TestGroundingWorkerInvariance(t *testing.T) {
	for _, wl := range determinismWorkloads() {
		t.Run(wl.name, func(t *testing.T) {
			ref, err := wl.build(t, 1).Ground()
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 8} {
				res, err := wl.build(t, workers).Ground()
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				diffGraphs(t, workers, ref.Graph, res.Graph)
				rs, gs := ref.Stats, res.Stats
				if gs.Vars != rs.Vars || gs.LogicalFactors != rs.LogicalFactors ||
					gs.SpatialPairs != rs.SpatialPairs ||
					gs.GroundSpatialFactors != rs.GroundSpatialFactors ||
					gs.AllowedValuePairs != rs.AllowedValuePairs {
					t.Fatalf("workers=%d: stats %+v, want %+v", workers, gs, rs)
				}
				if gs.Workers != workers {
					t.Errorf("Stats.Workers = %d, want %d", gs.Workers, workers)
				}
				// Rule bookkeeping is emission-side and must not vary either.
				for rule, n := range rs.RuleFactors {
					if gs.RuleFactors[rule] != n {
						t.Errorf("workers=%d: rule %s produced %d factors, want %d",
							workers, rule, gs.RuleFactors[rule], n)
					}
				}
			}
		})
	}
}

// TestGroundContextCancellation checks that cancellation surfaces from the
// sharded grounding pipeline promptly and leaves no worker goroutines
// behind — both when the context is dead on arrival and when it dies while
// shards are in flight.
func TestGroundContextCancellation(t *testing.T) {
	wl := determinismWorkloads()[0]
	t.Run("pre-canceled", func(t *testing.T) {
		defer testutil.GoroutineLeakCheck(t)()
		s := wl.build(t, 4)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := s.GroundContext(ctx); err == nil {
			t.Fatal("grounding succeeded under a canceled context")
		}
	})
	t.Run("mid-flight", func(t *testing.T) {
		defer testutil.GoroutineLeakCheck(t)()
		s := wl.build(t, 8)
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(500 * time.Microsecond)
			cancel()
		}()
		// The race is real: grounding may finish before the cancel lands.
		// Either outcome is fine — the assertion is that no goroutine
		// outlives the call and an error, when reported, is the context's.
		if _, err := s.GroundContext(ctx); err != nil && ctx.Err() == nil {
			t.Fatalf("unexpected non-cancellation error: %v", err)
		}
	})
}
