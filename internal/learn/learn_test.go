package learn

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/factorgraph"
	"repro/internal/geom"
	"repro/internal/gibbs"
)

// plantedGraph builds a chain of binary variables whose labels were drawn
// from a known MLN: a strong "agree with the left neighbour" rule and a
// weak prior rule. Two thirds of the variables carry their sampled label
// as evidence (so some factors connect two observed atoms — without any
// such factor the likelihood gradient at w = 0 vanishes and learning
// cannot bootstrap); learning should recover a clearly positive agreement
// weight and a near-zero prior weight.
func plantedGraph(t *testing.T, n int, agreeW, priorW float64, seed int64) (*factorgraph.Graph, []int32, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	// Draw labels by sequential simulation of the chain model.
	labels := make([]int32, n)
	labels[0] = int32(rng.Intn(2))
	for i := 1; i < n; i++ {
		// P(x_i = x_{i-1}) from the agreement factor (equal-kind factor).
		pAgree := math.Exp(agreeW) / (math.Exp(agreeW) + 1)
		if rng.Float64() < pAgree {
			labels[i] = labels[i-1]
		} else {
			labels[i] = 1 - labels[i-1]
		}
	}
	b := factorgraph.NewBuilder()
	for i := 0; i < n; i++ {
		ev := factorgraph.NoEvidence
		if i%3 != 0 {
			ev = labels[i]
		}
		if _, err := b.AddVariable(factorgraph.Variable{
			Domain: 2, Evidence: ev, Loc: geom.Pt(float64(i), 0), HasLoc: true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	var factorRule []int32
	for i := 0; i+1 < n; i++ {
		// Rule 0: agreement between neighbours (initial weight 0).
		if err := b.AddFactor(factorgraph.FactorEqual, 0,
			[]factorgraph.VarID{int32(i), int32(i + 1)}, nil); err != nil {
			t.Fatal(err)
		}
		factorRule = append(factorRule, 0)
	}
	for i := 0; i < n; i++ {
		// Rule 1: "is true" prior (initial weight 0; planted weight priorW).
		if err := b.AddFactor(factorgraph.FactorIsTrue, 0,
			[]factorgraph.VarID{int32(i)}, nil); err != nil {
			t.Fatal(err)
		}
		factorRule = append(factorRule, 1)
	}
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return g, factorRule, 2
}

func TestWeightsRecoverAgreement(t *testing.T) {
	g, factorRule, nRules := plantedGraph(t, 120, 1.5, 0, 3)
	res, err := Weights(context.Background(), g, factorRule, nRules, Options{
		Iterations: 300, SweepsPerIteration: 2, LearningRate: 0.4, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Weights[0] < 0.4 {
		t.Errorf("agreement weight = %v, want clearly positive", res.Weights[0])
	}
	if math.Abs(res.Weights[1]) > 0.5 {
		t.Errorf("prior weight = %v, want near zero", res.Weights[1])
	}
	// The learned weights are live in the graph.
	if g.FactorWeightOf(0) != res.Weights[0] {
		t.Error("graph weights not updated")
	}
	if len(res.GradNorms) != 300 {
		t.Errorf("grad norms = %d", len(res.GradNorms))
	}
}

func TestWeightsImproveInference(t *testing.T) {
	// Inference with learned weights must predict held-out labels better
	// than the zero-weight model (which is uniform).
	g, factorRule, nRules := plantedGraph(t, 120, 1.5, 0, 5)
	if _, err := Weights(context.Background(), g, factorRule, nRules, Options{
		Iterations: 300, LearningRate: 0.4, Seed: 11,
	}); err != nil {
		t.Fatal(err)
	}
	s := gibbs.NewSequential(g, 13)
	s.RunEpochs(3000)
	m := s.Marginals()
	// Query vars should be pulled toward their evidence neighbours:
	// decisiveness well above uniform on average.
	var dec float64
	count := 0
	g.Vars(func(id factorgraph.VarID, v factorgraph.Variable) bool {
		if v.Evidence == factorgraph.NoEvidence {
			dec += math.Abs(m[id][1] - 0.5)
			count++
		}
		return true
	})
	if avg := dec / float64(count); avg < 0.1 {
		t.Errorf("average decisiveness %v: learned weights not informative", avg)
	}
}

func TestWeightsSpatialScale(t *testing.T) {
	// Graph whose only structure is spatial pairs between same-label
	// evidence atoms: the learned scale should grow above its 0.1 start.
	b := factorgraph.NewBuilder()
	n := 60
	rng := rand.New(rand.NewSource(7))
	label := int32(0)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.1 {
			label = 1 - label
		}
		ev := factorgraph.NoEvidence
		if i%2 == 0 {
			ev = label
		}
		if _, err := b.AddVariable(factorgraph.Variable{
			Domain: 2, Evidence: ev, Loc: geom.Pt(float64(i), 0), HasLoc: true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i+1 < n; i++ {
		if err := b.AddSpatialPair(int32(i), int32(i+1), 0.1); err != nil {
			t.Fatal(err)
		}
	}
	// One dummy logical rule so numRules > 0.
	if err := b.AddFactor(factorgraph.FactorIsTrue, 0, []factorgraph.VarID{0}, nil); err != nil {
		t.Fatal(err)
	}
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Weights(context.Background(), g, []int32{0}, 1, Options{
		Iterations: 200, LearningRate: 0.3, Seed: 21, LearnSpatialScale: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SpatialScale <= 1 {
		t.Errorf("spatial scale = %v, want > 1 (labels are strongly autocorrelated)", res.SpatialScale)
	}
	// Graph spatial weights rescaled in place.
	_, _, w := g.SpatialPair(0)
	if math.Abs(w-0.1*res.SpatialScale) > 1e-9 {
		t.Errorf("spatial weight = %v, want %v", w, 0.1*res.SpatialScale)
	}
}

func TestWeightsValidation(t *testing.T) {
	g, factorRule, nRules := plantedGraph(t, 10, 1, 0, 1)
	if _, err := Weights(context.Background(), g, factorRule[:2], nRules, Options{}); err == nil {
		t.Error("short factorRule should fail")
	}
	bad := append([]int32(nil), factorRule...)
	bad[0] = 99
	if _, err := Weights(context.Background(), g, bad, nRules, Options{}); err == nil {
		t.Error("out-of-range rule index should fail")
	}
	// Graph without evidence cannot be trained on.
	b := factorgraph.NewBuilder()
	_, _ = b.AddVariable(factorgraph.Variable{Domain: 2, Evidence: factorgraph.NoEvidence})
	_ = b.AddFactor(factorgraph.FactorIsTrue, 1, []factorgraph.VarID{0}, nil)
	g2, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Weights(context.Background(), g2, []int32{0}, 1, Options{}); err == nil {
		t.Error("no-evidence graph should fail")
	}
}
