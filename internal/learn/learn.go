// Package learn implements MLN weight learning over a ground (spatial)
// factor graph. The paper notes that inference-rule weights can either be
// fixed by the program author or "learned ... based on training data"
// (Section IV-A); DeepDive learns them by stochastic gradient ascent on the
// sampled likelihood. This package provides that capability for both
// engines: rule weights are tied across a rule's ground factors, and
// optionally a global spatial-scale multiplier is learned for the spatial
// factors.
//
// The gradient of the log-likelihood for a tied weight w_r is
//
//	∂L/∂w_r = E_data[n_r] − E_model[n_r]
//
// where n_r is the number of satisfied ground factors of rule r. Both
// expectations are estimated with persistent Gibbs chains (contrastive
// divergence): the data chain keeps the training labels (the graph's
// evidence) clamped, the model chain samples every variable freely.
package learn

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/factorgraph"
	"repro/internal/obs"
)

// Options configures learning.
type Options struct {
	// Iterations of stochastic gradient ascent. Default 100.
	Iterations int
	// SweepsPerIteration advances each persistent chain this many Gibbs
	// sweeps before the gradient estimate. Default 2.
	SweepsPerIteration int
	// LearningRate scales gradient steps; it is normalized internally by
	// the per-rule factor counts so rules with many groundings do not
	// dominate. Default 0.5.
	LearningRate float64
	// L2 is the weight-decay regularizer. Default 0.01.
	L2 float64
	// LearnSpatialScale also learns one multiplier applied to every
	// spatial factor weight (preserving the distance-decay shape).
	LearnSpatialScale bool
	// MaxWeight clamps learned weights into [-MaxWeight, MaxWeight].
	// Default 5.
	MaxWeight float64
	// Seed drives the chains.
	Seed int64
	// NoKernels scores the chains with the interpreted factor-walk instead
	// of the graph's compiled sampling kernels. The two paths are
	// bit-identical; this is the learning-side face of the samplers'
	// `-no-kernels` escape hatch.
	NoKernels bool
	// Trace, when non-nil, receives one "learning" phase event per gradient
	// iteration (gradient norm and wall time) plus a closing summary.
	Trace *obs.Trace
}

func (o Options) withDefaults() Options {
	if o.Iterations <= 0 {
		o.Iterations = 100
	}
	if o.SweepsPerIteration <= 0 {
		o.SweepsPerIteration = 2
	}
	if o.LearningRate == 0 {
		o.LearningRate = 0.5
	}
	if o.L2 == 0 {
		o.L2 = 0.01
	}
	if o.MaxWeight == 0 {
		o.MaxWeight = 5
	}
	return o
}

// Result reports the learned parameters.
type Result struct {
	// Weights holds the learned tied weight per rule.
	Weights []float64
	// SpatialScale is the learned multiplier (1 when not learned).
	SpatialScale float64
	// GradNorms records the per-iteration gradient norm (diagnostics).
	GradNorms []float64
}

// chain is one persistent Gibbs chain used for expectation estimates.
type chain struct {
	assign factorgraph.Assignment
	vars   []factorgraph.VarID // variables this chain resamples
	rng    *prng
	buf    []float64
	// score is the conditional-score backend: the graph's compiled kernels
	// by default, or the interpreted factor-walk under Options.NoKernels.
	// Learned weights flow through either one because both read the live
	// weight tables (kernels store indices, not copies).
	score func(factorgraph.VarID, factorgraph.Assignment, []float64) []float64
}

func (c *chain) sweep(n int) {
	for i := 0; i < n; i++ {
		for _, v := range c.vars {
			scores := c.score(v, c.assign, c.buf)
			maxS := scores[0]
			for _, s := range scores[1:] {
				if s > maxS {
					maxS = s
				}
			}
			var z float64
			for j, s := range scores {
				scores[j] = math.Exp(s - maxS)
				z += scores[j]
			}
			u := c.rng.Float64() * z
			var x int32
			for j, p := range scores {
				u -= p
				if u <= 0 {
					x = int32(j)
					break
				}
				if j == len(scores)-1 {
					x = int32(j)
				}
			}
			c.assign.Set(v, x)
		}
	}
}

// Weights learns tied rule weights on a ground graph. factorRule maps every
// logical factor to its rule index (as produced by grounding.Result); the
// graph's factor weights are updated in place and the learned values
// returned. The graph's evidence is the training signal: variables with
// evidence are clamped in the data chain and free in the model chain.
//
// ctx is checked between gradient iterations: on cancellation the weights
// learned so far (already pushed into the graph) are returned together with
// the context error, so callers can distinguish a converged result from a
// truncated one.
func Weights(ctx context.Context, g *factorgraph.Graph, factorRule []int32, numRules int, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.withDefaults()
	if len(factorRule) != g.NumFactors() {
		return nil, fmt.Errorf("learn: factorRule has %d entries for %d factors", len(factorRule), g.NumFactors())
	}
	for f, r := range factorRule {
		if r < 0 || int(r) >= numRules {
			return nil, fmt.Errorf("learn: factor %d maps to rule %d outside [0,%d)", f, r, numRules)
		}
	}
	// Per-rule grounding counts, for gradient normalization.
	ruleCount := make([]float64, numRules)
	for _, r := range factorRule {
		ruleCount[r]++
	}
	var evidenceVars int
	g.Vars(func(_ factorgraph.VarID, v factorgraph.Variable) bool {
		if v.Evidence != factorgraph.NoEvidence {
			evidenceVars++
		}
		return true
	})
	if evidenceVars == 0 {
		return nil, fmt.Errorf("learn: the graph has no evidence to train on")
	}

	// Data chain: evidence clamped (sample query vars only).
	// Model chain: everything free.
	var queryVars, allVars []factorgraph.VarID
	g.Vars(func(id factorgraph.VarID, v factorgraph.Variable) bool {
		allVars = append(allVars, id)
		if v.Evidence == factorgraph.NoEvidence {
			queryVars = append(queryVars, id)
		}
		return true
	})
	maxDom := 2
	g.Vars(func(_ factorgraph.VarID, v factorgraph.Variable) bool {
		if int(v.Domain) > maxDom {
			maxDom = int(v.Domain)
		}
		return true
	})
	score := g.ConditionalScores
	if !opts.NoKernels {
		score = g.Kernels().ConditionalScores
	}
	data := &chain{assign: g.InitialAssignment(), vars: queryVars,
		rng: newPrng(opts.Seed, 1), buf: make([]float64, maxDom), score: score}
	model := &chain{assign: g.InitialAssignment(), vars: allVars,
		rng: newPrng(opts.Seed, 2), buf: make([]float64, maxDom), score: score}

	res := &Result{Weights: make([]float64, numRules), SpatialScale: 1}
	for r := int32(0); int(r) < numRules; r++ {
		// Start from the program's weights (first factor of each rule).
		for f, fr := range factorRule {
			if fr == r {
				res.Weights[r] = g.FactorWeightOf(int32(f))
				break
			}
		}
	}
	// Base spatial weights, so the scale multiplier preserves decay shape.
	baseSpatial := make([]float64, g.NumSpatialFactors())
	var totalSpatialBase float64
	for s := int32(0); int(s) < g.NumSpatialFactors(); s++ {
		_, _, w := g.SpatialPair(s)
		baseSpatial[s] = w
		totalSpatialBase += w
	}

	nData := make([]float64, numRules)
	nModel := make([]float64, numRules)
	learnStart := time.Now()
	for iter := 0; iter < opts.Iterations; iter++ {
		if err := ctx.Err(); err != nil {
			return res, fmt.Errorf("learn: interrupted after %d/%d iterations: %w", iter, opts.Iterations, err)
		}
		iterStart := time.Now()
		data.sweep(opts.SweepsPerIteration)
		model.sweep(opts.SweepsPerIteration)
		for r := range nData {
			nData[r], nModel[r] = 0, 0
		}
		for f := int32(0); int(f) < g.NumFactors(); f++ {
			r := factorRule[f]
			if g.FactorSatisfied(f, data.assign) {
				nData[r]++
			}
			if g.FactorSatisfied(f, model.assign) {
				nModel[r]++
			}
		}
		var norm float64
		for r := 0; r < numRules; r++ {
			grad := (nData[r] - nModel[r]) / math.Max(1, ruleCount[r])
			res.Weights[r] += opts.LearningRate*grad - opts.L2*res.Weights[r]
			res.Weights[r] = clampWeight(res.Weights[r], opts.MaxWeight)
			norm += grad * grad
		}
		if opts.LearnSpatialScale && totalSpatialBase > 0 {
			var agreeData, agreeModel float64
			for s := int32(0); int(s) < g.NumSpatialFactors(); s++ {
				agreeData += baseSpatial[s] * g.SpatialAgreement(s, data.assign)
				agreeModel += baseSpatial[s] * g.SpatialAgreement(s, model.assign)
			}
			grad := (agreeData - agreeModel) / totalSpatialBase
			res.SpatialScale += opts.LearningRate * grad
			if res.SpatialScale < 0 {
				res.SpatialScale = 0
			}
			if res.SpatialScale > opts.MaxWeight {
				res.SpatialScale = opts.MaxWeight
			}
			norm += grad * grad
		}
		res.GradNorms = append(res.GradNorms, math.Sqrt(norm))
		opts.Trace.Emit("learning", "iteration",
			"iter", iter, "grad_norm", math.Sqrt(norm), "dur_ms", obs.Ms(time.Since(iterStart)))
		// Push the updated tied weights into the graph so the next sweeps
		// sample under them.
		for f := int32(0); int(f) < g.NumFactors(); f++ {
			g.SetFactorWeight(f, res.Weights[factorRule[f]])
		}
		if opts.LearnSpatialScale {
			for s := int32(0); int(s) < g.NumSpatialFactors(); s++ {
				g.SetSpatialWeight(s, baseSpatial[s]*res.SpatialScale)
			}
		}
	}
	finalNorm := 0.0
	if len(res.GradNorms) > 0 {
		finalNorm = res.GradNorms[len(res.GradNorms)-1]
	}
	opts.Trace.Emit("learning", "done",
		"iterations", opts.Iterations, "final_grad_norm", finalNorm,
		"spatial_scale", res.SpatialScale, "dur_ms", obs.Ms(time.Since(learnStart)))
	return res, nil
}

func clampWeight(w, maxW float64) float64 {
	if w > maxW {
		return maxW
	}
	if w < -maxW {
		return -maxW
	}
	return w
}

// prng is a splitmix64 generator (a local copy of the one in
// internal/gibbs; both packages need cheap per-chain streams).
type prng struct{ state uint64 }

func newPrng(seed int64, stream uint64) *prng {
	x := uint64(seed) ^ (stream * 0x9e3779b97f4a7c15)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return &prng{state: x ^ (x >> 31)}
}

func (p *prng) next() uint64 {
	p.state += 0x9e3779b97f4a7c15
	z := p.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (p *prng) Float64() float64 { return float64(p.next()>>11) / (1 << 53) }
