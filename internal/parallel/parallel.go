// Package parallel provides a small deterministic fork-join helper for the
// grounding pipeline's data-parallel loops (spatial sweeps, co-occurrence
// counting, hash-join probes). Unlike gibbs.Pool — persistent workers for a
// long-lived sampler — these loops run once per grounding, so goroutines are
// spawned per call and joined before return; the win is the shared chunking,
// cancellation and panic-isolation logic, not goroutine reuse.
//
// Determinism contract: For partitions [0, n) into fixed-size chunks whose
// boundaries depend only on n and grain — never on the worker count — so
// callers can write per-chunk results into chunk-indexed slots and merge
// them in chunk order, producing output identical for any worker count.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// WorkerPanicError wraps a panic recovered inside a parallel worker, with
// the stack captured at the panic site.
type WorkerPanicError struct {
	Value any
	Stack []byte
}

func (e *WorkerPanicError) Error() string {
	return fmt.Sprintf("parallel: worker panic: %v\n%s", e.Value, e.Stack)
}

// Resolve normalizes a worker-count knob: 0 (or negative) means GOMAXPROCS.
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// NumChunks reports how many chunks For splits n items into under grain.
func NumChunks(n, grain int) int {
	if grain < 1 {
		grain = 1
	}
	return (n + grain - 1) / grain
}

// For runs fn over [0, n) split into contiguous chunks of at most grain
// items. fn(chunk, lo, hi) processes items [lo, hi); chunk is the chunk
// index lo/grain, usable to address a per-chunk output slot. Chunk
// boundaries depend only on n and grain, so chunk-indexed outputs merged in
// chunk order are identical for any worker count.
//
// When workers <= 1 (after resolving 0 → GOMAXPROCS) or everything fits in
// one chunk, fn runs inline on the caller's goroutine — the sequential path
// pays no goroutine or channel overhead. Otherwise workers goroutines pull
// chunks from an atomic cursor. ctx is polled between chunks (pass
// context.Background() to disable); the first error — preferring the
// lowest-numbered chunk's, so error selection is deterministic too — cancels
// remaining chunks and is returned. A panic inside fn is recovered and
// returned as *WorkerPanicError rather than tearing down the process with
// sibling goroutines mid-flight.
func For(ctx context.Context, workers, n, grain int, fn func(chunk, lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	workers = Resolve(workers)
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 || chunks == 1 {
		for c := 0; c < chunks; c++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			lo := c * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			if err := fn(c, lo, hi); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		cursor  atomic.Int64
		stop    atomic.Bool
		mu      sync.Mutex
		errAt   = -1 // chunk index of the winning error
		firstEr error
		wg      sync.WaitGroup
	)
	record := func(chunk int, err error) {
		mu.Lock()
		if errAt < 0 || chunk < errAt {
			errAt, firstEr = chunk, err
		}
		mu.Unlock()
		stop.Store(true)
	}
	worker := func() {
		defer wg.Done()
		for {
			if stop.Load() {
				return
			}
			if err := ctx.Err(); err != nil {
				record(int(cursor.Load()), err)
				return
			}
			c := int(cursor.Add(1)) - 1
			if c >= chunks {
				return
			}
			lo := c * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			err := func() (err error) {
				defer func() {
					if r := recover(); r != nil {
						buf := make([]byte, 64<<10)
						buf = buf[:runtime.Stack(buf, false)]
						err = &WorkerPanicError{Value: r, Stack: buf}
					}
				}()
				return fn(c, lo, hi)
			}()
			if err != nil {
				record(c, err)
				return
			}
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()
	return firstEr
}
