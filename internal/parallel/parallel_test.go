package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestForCoversRange checks that every worker count visits each item exactly
// once and that chunk indexing matches lo/grain.
func TestForCoversRange(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 17} {
		for _, n := range []int{0, 1, 5, 64, 100, 1000} {
			const grain = 7
			visits := make([]int32, n)
			err := For(context.Background(), workers, n, grain, func(chunk, lo, hi int) error {
				if chunk != lo/grain {
					t.Errorf("workers=%d n=%d: chunk %d != lo/grain %d", workers, n, chunk, lo/grain)
				}
				if hi > n || lo >= hi {
					t.Errorf("workers=%d n=%d: bad range [%d, %d)", workers, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&visits[i], 1)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("workers=%d n=%d: %v", workers, n, err)
			}
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("workers=%d n=%d: item %d visited %d times", workers, n, i, v)
				}
			}
		}
	}
}

// TestForDeterministicMerge checks the determinism contract: chunk-indexed
// outputs merged in chunk order are identical for any worker count.
func TestForDeterministicMerge(t *testing.T) {
	const n, grain = 500, 13
	build := func(workers int) []int {
		parts := make([][]int, NumChunks(n, grain))
		err := For(context.Background(), workers, n, grain, func(chunk, lo, hi int) error {
			out := make([]int, 0, hi-lo)
			for i := lo; i < hi; i++ {
				out = append(out, i*i)
			}
			parts[chunk] = out
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		var merged []int
		for _, p := range parts {
			merged = append(merged, p...)
		}
		return merged
	}
	ref := build(1)
	if len(ref) != n {
		t.Fatalf("merged length %d != %d", len(ref), n)
	}
	for _, workers := range []int{2, 4, 8} {
		got := build(workers)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: merged[%d] = %d, want %d", workers, i, got[i], ref[i])
			}
		}
	}
}

// TestForError checks that fn errors abort the loop and the lowest-numbered
// chunk's error wins regardless of worker interleaving.
func TestForError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	for _, workers := range []int{1, 4} {
		err := For(context.Background(), workers, 1000, 10, func(chunk, lo, hi int) error {
			switch chunk {
			case 3:
				return errLow
			case 60:
				return errHigh
			}
			return nil
		})
		// With workers=1 chunk 3 errors before chunk 60 is reached; with
		// more workers both may fire, and chunk 3 must still win.
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: got %v, want %v", workers, err, errLow)
		}
	}
}

// TestForCancellation checks that a canceled context stops the loop between
// chunks and surfaces ctx.Err().
func TestForCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		ran := atomic.Int32{}
		err := For(ctx, workers, 1000, 10, func(chunk, lo, hi int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want context.Canceled", workers, err)
		}
		// Pre-canceled: the sequential path runs nothing; parallel workers
		// may each observe the cancellation before claiming a chunk.
		if workers == 1 && ran.Load() != 0 {
			t.Fatalf("sequential path ran %d chunks after cancellation", ran.Load())
		}
	}
}

// TestForPanicRecovery checks that a worker panic comes back as
// *WorkerPanicError instead of crashing the process.
func TestForPanicRecovery(t *testing.T) {
	for _, workers := range []int{2, 4} {
		err := For(context.Background(), workers, 100, 5, func(chunk, lo, hi int) error {
			if chunk == 7 {
				panic("boom")
			}
			return nil
		})
		var wp *WorkerPanicError
		if !errors.As(err, &wp) {
			t.Fatalf("workers=%d: got %T %v, want *WorkerPanicError", workers, err, err)
		}
		if wp.Value != "boom" || len(wp.Stack) == 0 {
			t.Fatalf("workers=%d: panic value %v, stack %d bytes", workers, wp.Value, len(wp.Stack))
		}
	}
}

// TestResolve checks the 0 → GOMAXPROCS normalization.
func TestResolve(t *testing.T) {
	if got := Resolve(0); got < 1 {
		t.Fatalf("Resolve(0) = %d", got)
	}
	if got := Resolve(-3); got < 1 {
		t.Fatalf("Resolve(-3) = %d", got)
	}
	if got := Resolve(5); got != 5 {
		t.Fatalf("Resolve(5) = %d", got)
	}
}

// TestNumChunks checks chunk counting, including the grain<1 clamp.
func TestNumChunks(t *testing.T) {
	cases := []struct{ n, grain, want int }{
		{0, 10, 0}, {1, 10, 1}, {10, 10, 1}, {11, 10, 2}, {100, 7, 15}, {5, 0, 5},
	}
	for _, c := range cases {
		if got := NumChunks(c.n, c.grain); got != c.want {
			t.Errorf("NumChunks(%d, %d) = %d, want %d", c.n, c.grain, got, c.want)
		}
	}
}
