package geoner

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/storage"
)

func TestGazetteerBasics(t *testing.T) {
	g := LiberiaCounties()
	if g.Len() != 4 {
		t.Fatalf("Len = %d", g.Len())
	}
	p, ok := g.Lookup("monrovia")
	if !ok || p.Name != "Montserrado" {
		t.Errorf("alias lookup = %+v %v", p, ok)
	}
	if _, ok := g.Lookup("Paris"); ok {
		t.Error("unknown place found")
	}
}

func TestNewGazetteerValidation(t *testing.T) {
	if _, err := NewGazetteer([]Place{{Name: ""}}); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := NewGazetteer([]Place{
		{Name: "A", Aliases: []string{"X"}},
		{Name: "B", Aliases: []string{"x"}},
	}); err == nil {
		t.Error("conflicting surface forms should fail")
	}
}

func TestExtract(t *testing.T) {
	g := LiberiaCounties()
	text := "The outbreak spread from Monrovia to Kakata, then toward Bong county."
	ms := g.Extract(text)
	if len(ms) != 3 {
		t.Fatalf("mentions = %d: %+v", len(ms), ms)
	}
	if ms[0].Name != "Montserrado" || ms[0].Text != "Monrovia" {
		t.Errorf("mention 0 = %+v", ms[0])
	}
	if ms[1].Name != "Margibi" || ms[2].Name != "Bong" {
		t.Errorf("mentions = %+v", ms)
	}
	if ms[0].Offset != 25 {
		t.Errorf("offset = %d", ms[0].Offset)
	}
}

func TestExtractWordBoundaries(t *testing.T) {
	g, err := NewGazetteer([]Place{{Name: "Bong", Loc: geom.Pt(1, 1)}})
	if err != nil {
		t.Fatal(err)
	}
	if ms := g.Extract("the bongos played"); len(ms) != 0 {
		t.Errorf("substring matched: %+v", ms)
	}
	if ms := g.Extract("in Bong."); len(ms) != 1 {
		t.Errorf("punctuation boundary failed: %+v", ms)
	}
	if ms := g.Extract("BONG"); len(ms) != 1 {
		t.Errorf("case-insensitive match failed: %+v", ms)
	}
}

func TestExtractLongestMatchWins(t *testing.T) {
	g, err := NewGazetteer([]Place{
		{Name: "York", Loc: geom.Pt(-1.08, 53.96)},
		{Name: "New York", Loc: geom.Pt(-74.0, 40.7)},
	})
	if err != nil {
		t.Fatal(err)
	}
	ms := g.Extract("flights to New York daily")
	if len(ms) != 1 || ms[0].Name != "New York" {
		t.Errorf("mentions = %+v", ms)
	}
}

func TestUDF(t *testing.T) {
	g := LiberiaCounties()
	rows, err := g.UDF([]storage.Value{storage.Int(7), storage.Str("Monrovia and Gbarnga")})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if id, _ := rows[0][0].AsInt(); id != 7 {
		t.Errorf("id = %v", rows[0][0])
	}
	if rows[0][1].S != "Montserrado" {
		t.Errorf("name = %v", rows[0][1])
	}
	if _, err := rows[0][2].AsGeom(); err != nil {
		t.Errorf("loc: %v", err)
	}
	if _, err := g.UDF([]storage.Value{storage.Int(1)}); err == nil {
		t.Error("arity error expected")
	}
	if _, err := g.UDF([]storage.Value{storage.Int(1), storage.Int(2)}); err == nil {
		t.Error("type error expected")
	}
}
