// Package geoner is a gazetteer-based spatial named-entity recognizer: the
// repository's stand-in for the GeoTxt library the paper wires into Sya's
// ready-to-use spatial UDFs (Section III). It scans text for known place
// names (longest match first, word-boundary aware, case-insensitive) and
// returns each mention with its gazetteer coordinate, exercising the same
// UDF code path in the grounding module that GeoTxt would.
package geoner

import (
	"fmt"
	"sort"
	"strings"
	"unicode"

	"repro/internal/geom"
	"repro/internal/storage"
)

// Place is one gazetteer entry.
type Place struct {
	Name string
	// Aliases are alternative surface forms that resolve to this place.
	Aliases []string
	Loc     geom.Point
}

// Mention is one recognized place occurrence in a text.
type Mention struct {
	Name   string // canonical gazetteer name
	Text   string // matched surface form
	Offset int    // byte offset in the input
	Loc    geom.Point
}

// Gazetteer resolves place names to coordinates.
type Gazetteer struct {
	places []Place
	// surface maps lower-cased surface forms to place indexes.
	surface map[string]int
	// forms, longest first, for greedy matching.
	forms []string
}

// NewGazetteer builds a gazetteer; duplicate surface forms are an error.
func NewGazetteer(places []Place) (*Gazetteer, error) {
	g := &Gazetteer{places: places, surface: map[string]int{}}
	for i, p := range places {
		if p.Name == "" {
			return nil, fmt.Errorf("geoner: place %d has no name", i)
		}
		for _, form := range append([]string{p.Name}, p.Aliases...) {
			key := strings.ToLower(form)
			if prev, dup := g.surface[key]; dup && prev != i {
				return nil, fmt.Errorf("geoner: surface form %q maps to both %s and %s",
					form, places[prev].Name, p.Name)
			}
			if _, dup := g.surface[key]; !dup {
				g.surface[key] = i
				g.forms = append(g.forms, key)
			}
		}
	}
	sort.Slice(g.forms, func(i, j int) bool {
		if len(g.forms[i]) != len(g.forms[j]) {
			return len(g.forms[i]) > len(g.forms[j])
		}
		return g.forms[i] < g.forms[j]
	})
	return g, nil
}

// Len returns the number of gazetteer places.
func (g *Gazetteer) Len() int { return len(g.places) }

// Lookup resolves a surface form.
func (g *Gazetteer) Lookup(name string) (Place, bool) {
	i, ok := g.surface[strings.ToLower(name)]
	if !ok {
		return Place{}, false
	}
	return g.places[i], true
}

func isWordChar(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r)
}

// Extract finds all non-overlapping place mentions in the text, greedily
// preferring longer forms.
func (g *Gazetteer) Extract(text string) []Mention {
	lower := strings.ToLower(text)
	var out []Mention
	pos := 0
	for pos < len(lower) {
		matched := false
		for _, form := range g.forms {
			if !strings.HasPrefix(lower[pos:], form) {
				continue
			}
			// Word boundaries on both sides.
			if pos > 0 {
				prev := rune(lower[pos-1])
				if isWordChar(prev) {
					continue
				}
			}
			end := pos + len(form)
			if end < len(lower) && isWordChar(rune(lower[end])) {
				continue
			}
			p := g.places[g.surface[form]]
			out = append(out, Mention{
				Name:   p.Name,
				Text:   text[pos:end],
				Offset: pos,
				Loc:    p.Loc,
			})
			pos = end
			matched = true
			break
		}
		if !matched {
			pos++
		}
	}
	return out
}

// UDF adapts the gazetteer to the grounding module's UDF signature: input
// (id, text), output rows (id, name, location) — suitable for a DDlog
// function declared as
//
//	function extract_places over (id bigint, body text)
//	    returns (doc bigint, place text, location point)
//	    implementation "geoner".
func (g *Gazetteer) UDF(args []storage.Value) ([]storage.Row, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("geoner: UDF wants (id, text), got %d args", len(args))
	}
	if args[1].Kind != storage.KindString {
		return nil, fmt.Errorf("geoner: UDF text argument is %s", args[1].Kind)
	}
	var out []storage.Row
	for _, m := range g.Extract(args[1].S) {
		out = append(out, storage.Row{args[0], storage.Str(m.Name), storage.Geom(m.Loc)})
	}
	return out, nil
}

// LiberiaCounties is a small built-in gazetteer for the paper's EbolaKB
// example: the four counties of Fig. 1 at the synthetic coordinates used
// throughout this repository (distances match the paper's narrative).
func LiberiaCounties() *Gazetteer {
	g, err := NewGazetteer([]Place{
		{Name: "Montserrado", Aliases: []string{"Monrovia"}, Loc: geom.Pt(-10.80, 6.32)},
		{Name: "Margibi", Aliases: []string{"Kakata"}, Loc: geom.Pt(-10.45, 6.55)},
		{Name: "Bong", Aliases: []string{"Gbarnga"}, Loc: geom.Pt(-9.45, 7.05)},
		{Name: "Gbarpolu", Aliases: []string{"Bopolu"}, Loc: geom.Pt(-8.90, 7.60)},
	})
	if err != nil {
		panic(err) // static data
	}
	return g
}
