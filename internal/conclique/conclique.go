// Package conclique implements concliques-based partitioning of pyramid
// grid cells (paper Section V, after Kaiser, Lahiri & Nordman [23]).
//
// A conclique is a set of locations no two of which are neighbours. For the
// 4^l grid of a pyramid level, colouring cell (x, y) by (x mod 2, y mod 2)
// yields four concliques: two cells with the same colour differ by at least
// two in x or in y, so they are never 8-neighbours. Cells inside one
// conclique can therefore be Gibbs-sampled in parallel while concliques are
// swept serially, which is the core of the paper's Spatial Gibbs Sampling
// (Algorithm 1) and is what gives the sampler its convergence guarantee
// under a bounded spatial-interaction radius [24].
package conclique

import (
	"sort"

	"repro/internal/index/pyramid"
)

// Count is the number of concliques per grid level under 2×2 colouring.
const Count = 4

// ID identifies a conclique within a level: 0..3.
type ID int

// Of returns the conclique of a grid cell.
func Of(key pyramid.CellKey) ID {
	return ID((key.X&1)<<1 | key.Y&1)
}

// Partition groups cells by conclique, preserving the deterministic cell
// order within each group. The result always has Count groups; groups with
// no cells are empty slices.
func Partition(cells []*pyramid.Cell) [Count][]*pyramid.Cell {
	var groups [Count][]*pyramid.Cell
	for _, c := range cells {
		q := Of(c.Key)
		groups[q] = append(groups[q], c)
	}
	return groups
}

// MinCover returns the minimal set of conclique IDs whose union covers all
// the given cells (paper Algorithm 1, GetMinConcliquesCover): exactly the
// concliques that own at least one non-empty cell, in ascending ID order.
func MinCover(cells []*pyramid.Cell) []ID {
	var present [Count]bool
	for _, c := range cells {
		present[Of(c.Key)] = true
	}
	var ids []ID
	for q := ID(0); q < Count; q++ {
		if present[q] {
			ids = append(ids, q)
		}
	}
	return ids
}

// Neighbors reports whether two cells at the same level are 8-neighbours
// (share an edge or a corner). Cells at different levels are never
// considered neighbours by this predicate.
func Neighbors(a, b pyramid.CellKey) bool {
	if a.Level != b.Level || a == b {
		return false
	}
	dx := a.X - b.X
	if dx < 0 {
		dx = -dx
	}
	dy := a.Y - b.Y
	if dy < 0 {
		dy = -dy
	}
	return dx <= 1 && dy <= 1
}

// Validate checks the conclique property over a set of cells: no two cells
// with the same conclique ID are 8-neighbours. It returns the offending
// pair, or ok=true.
func Validate(cells []*pyramid.Cell) (a, b pyramid.CellKey, ok bool) {
	byID := Partition(cells)
	for _, group := range byID {
		sorted := append([]*pyramid.Cell(nil), group...)
		sort.Slice(sorted, func(i, j int) bool {
			if sorted[i].Key.Y != sorted[j].Key.Y {
				return sorted[i].Key.Y < sorted[j].Key.Y
			}
			return sorted[i].Key.X < sorted[j].Key.X
		})
		for i := 0; i < len(sorted); i++ {
			for j := i + 1; j < len(sorted); j++ {
				if Neighbors(sorted[i].Key, sorted[j].Key) {
					return sorted[i].Key, sorted[j].Key, false
				}
			}
		}
	}
	return pyramid.CellKey{}, pyramid.CellKey{}, true
}
