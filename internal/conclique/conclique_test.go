package conclique

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/index/pyramid"
)

func cellAt(level, x, y int) *pyramid.Cell {
	return &pyramid.Cell{Key: pyramid.CellKey{Level: level, X: x, Y: y}, Entries: []int64{1}}
}

func TestOfColoring(t *testing.T) {
	// The four cells of any 2×2 block get four distinct concliques.
	seen := map[ID]bool{}
	for dx := 0; dx < 2; dx++ {
		for dy := 0; dy < 2; dy++ {
			seen[Of(pyramid.CellKey{Level: 3, X: 4 + dx, Y: 6 + dy})] = true
		}
	}
	if len(seen) != 4 {
		t.Errorf("2x2 block covers %d concliques, want 4", len(seen))
	}
}

func TestPaperFigure6Concliques(t *testing.T) {
	// The paper's Figure 6 example: level-2 cells C5..C17 laid out on a
	// 4×4 grid partition into four concliques of sizes {3, 3, 4, 3}
	// covering 13 non-empty cells. We verify the partition structure:
	// every group internally non-adjacent and groups cover all cells.
	var cells []*pyramid.Cell
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			if x == 3 && y == 3 {
				continue // leave one empty, mirroring partial pyramids
			}
			cells = append(cells, cellAt(2, x, y))
		}
	}
	groups := Partition(cells)
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	if total != len(cells) {
		t.Fatalf("partition covers %d cells, want %d", total, len(cells))
	}
	if _, _, ok := Validate(cells); !ok {
		t.Error("grid partition violates conclique property")
	}
}

func TestNeighbors(t *testing.T) {
	a := pyramid.CellKey{Level: 2, X: 1, Y: 1}
	cases := []struct {
		b    pyramid.CellKey
		want bool
	}{
		{pyramid.CellKey{Level: 2, X: 1, Y: 1}, false}, // self
		{pyramid.CellKey{Level: 2, X: 2, Y: 1}, true},  // edge
		{pyramid.CellKey{Level: 2, X: 2, Y: 2}, true},  // corner
		{pyramid.CellKey{Level: 2, X: 3, Y: 1}, false}, // two apart
		{pyramid.CellKey{Level: 3, X: 2, Y: 1}, false}, // different level
		{pyramid.CellKey{Level: 2, X: 0, Y: 0}, true},
	}
	for _, c := range cases {
		if got := Neighbors(a, c.b); got != c.want {
			t.Errorf("Neighbors(%v, %v) = %v, want %v", a, c.b, got, c.want)
		}
	}
}

func TestMinCover(t *testing.T) {
	// Only cells in concliques 0 and 3 present.
	cells := []*pyramid.Cell{cellAt(2, 0, 0), cellAt(2, 2, 0), cellAt(2, 1, 1)}
	ids := MinCover(cells)
	if len(ids) != 2 || ids[0] != Of(cells[0].Key) && ids[1] != Of(cells[0].Key) {
		t.Errorf("MinCover = %v", ids)
	}
	if got := MinCover(nil); len(got) != 0 {
		t.Errorf("MinCover(nil) = %v", got)
	}
	// Full grid needs all four.
	var all []*pyramid.Cell
	for x := 0; x < 2; x++ {
		for y := 0; y < 2; y++ {
			all = append(all, cellAt(1, x, y))
		}
	}
	if got := MinCover(all); len(got) != 4 {
		t.Errorf("full-grid MinCover = %v", got)
	}
}

// Property: for any pair of same-conclique cells, they are not neighbours.
func TestSameConcliqueNeverNeighborsProperty(t *testing.T) {
	f := func(x1, y1, x2, y2 uint8) bool {
		a := pyramid.CellKey{Level: 5, X: int(x1 % 32), Y: int(y1 % 32)}
		b := pyramid.CellKey{Level: 5, X: int(x2 % 32), Y: int(y2 % 32)}
		if Of(a) != Of(b) {
			return true
		}
		return !Neighbors(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Partition of random cell sets always validates and is a
// partition (covers all, no duplicates).
func TestPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(40)
		seen := map[pyramid.CellKey]bool{}
		var cells []*pyramid.Cell
		for len(cells) < n {
			k := pyramid.CellKey{Level: 4, X: rng.Intn(16), Y: rng.Intn(16)}
			if seen[k] {
				continue
			}
			seen[k] = true
			cells = append(cells, &pyramid.Cell{Key: k})
		}
		groups := Partition(cells)
		total := 0
		for q, g := range groups {
			total += len(g)
			for _, c := range g {
				if Of(c.Key) != ID(q) {
					t.Fatalf("cell %v in wrong group %d", c.Key, q)
				}
			}
		}
		if total != n {
			t.Fatalf("partition size %d, want %d", total, n)
		}
		if a, b, ok := Validate(cells); !ok {
			t.Fatalf("conclique violation between %v and %v", a, b)
		}
	}
}

func TestValidateDetectsViolation(t *testing.T) {
	// Hand-build an invalid grouping by lying about keys: two adjacent
	// cells forced into the same conclique id can only happen if Of is
	// broken, so instead validate that Validate flags genuinely adjacent
	// same-colour keys (impossible under Of — construct via Neighbors
	// directly).
	a := pyramid.CellKey{Level: 2, X: 0, Y: 0}
	b := pyramid.CellKey{Level: 2, X: 2, Y: 0}
	if Of(a) != Of(b) {
		t.Fatal("test setup: expected same conclique")
	}
	if Neighbors(a, b) {
		t.Error("cells two apart should not be neighbours")
	}
}
