// Package cliutil holds the plumbing shared by the sya and syad commands:
// the repeatable -load Relation=file.csv flag, CSV ingestion into relation
// tables, and the engine/metric flag-value parsers. Both binaries accept
// identical spellings for these flags so a batch invocation can be lifted
// into a resident server (and back) without editing its arguments.
package cliutil

import (
	"encoding/csv"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/storage"
)

// LoadFlag accumulates -load Relation=file.csv pairs.
type LoadFlag struct {
	Pairs [][2]string
}

func (l *LoadFlag) String() string { return fmt.Sprint(l.Pairs) }

// Set records one Relation=file.csv pair.
func (l *LoadFlag) Set(v string) error {
	parts := strings.SplitN(v, "=", 2)
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return fmt.Errorf("want Relation=file.csv, got %q", v)
	}
	l.Pairs = append(l.Pairs, [2]string{parts[0], parts[1]})
	return nil
}

// ParseEngine maps the -engine flag value onto a core engine.
func ParseEngine(name string) (core.Engine, error) {
	switch strings.ToLower(name) {
	case "", "sya":
		return core.EngineSya, nil
	case "deepdive":
		return core.EngineDeepDive, nil
	default:
		return 0, fmt.Errorf("unknown engine %q", name)
	}
}

// ParseMetric maps the -metric flag value onto a distance metric.
func ParseMetric(name string) (geom.Metric, error) {
	switch strings.ToLower(name) {
	case "", "euclidean":
		return geom.Euclidean, nil
	case "miles":
		return geom.HaversineMiles, nil
	case "km":
		return geom.HaversineKm, nil
	default:
		return 0, fmt.Errorf("unknown metric %q", name)
	}
}

// LoadCSV appends a CSV file's rows to a relation table, mapping columns by
// header name. Spatial columns parse WKT, booleans accept true/false/1/0,
// and empty cells load as NULL.
func LoadCSV(s *core.System, relation, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.TrimLeadingSpace = true
	records, err := r.ReadAll()
	if err != nil {
		return err
	}
	if len(records) < 1 {
		return fmt.Errorf("no header row")
	}
	tbl, err := s.DB().Table(relation)
	if err != nil {
		return err
	}
	schema := tbl.Schema()
	header := records[0]
	colIdx := make([]int, len(header))
	for i, h := range header {
		ci := schema.ColIndex(strings.TrimSpace(h))
		if ci < 0 {
			return fmt.Errorf("column %q not in relation %s", h, relation)
		}
		colIdx[i] = ci
	}
	var rows []storage.Row
	for line, rec := range records[1:] {
		row := make(storage.Row, len(schema.Cols))
		for i := range row {
			row[i] = storage.Null
		}
		for i, cell := range rec {
			if i >= len(colIdx) {
				return fmt.Errorf("row %d has %d cells, header has %d", line+2, len(rec), len(header))
			}
			v, err := storage.ParseCell(schema.Cols[colIdx[i]], cell)
			if err != nil {
				return fmt.Errorf("row %d column %q: %w", line+2, header[i], err)
			}
			row[colIdx[i]] = v
		}
		rows = append(rows, row)
	}
	return tbl.AppendAll(rows)
}
