package cliutil

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/geom"
)

func TestLoadFlag(t *testing.T) {
	var l LoadFlag
	if err := l.Set("A=file.csv"); err != nil {
		t.Fatal(err)
	}
	if err := l.Set("broken"); err == nil {
		t.Error("malformed pair should fail")
	}
	if err := l.Set("=x.csv"); err == nil {
		t.Error("empty relation should fail")
	}
	if err := l.Set("A="); err == nil {
		t.Error("empty file should fail")
	}
	if len(l.Pairs) != 1 || l.String() == "" {
		t.Errorf("pairs = %v", l.Pairs)
	}
}

func TestParseEngine(t *testing.T) {
	for name, want := range map[string]core.Engine{
		"": core.EngineSya, "sya": core.EngineSya, "SYA": core.EngineSya,
		"deepdive": core.EngineDeepDive,
	} {
		got, err := ParseEngine(name)
		if err != nil || got != want {
			t.Errorf("ParseEngine(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseEngine("bogus"); err == nil {
		t.Error("bad engine should fail")
	}
}

func TestParseMetric(t *testing.T) {
	for name, want := range map[string]geom.Metric{
		"":          geom.Euclidean,
		"euclidean": geom.Euclidean,
		"Miles":     geom.HaversineMiles,
		"km":        geom.HaversineKm,
	} {
		got, err := ParseMetric(name)
		if err != nil || got != want {
			t.Errorf("ParseMetric(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseMetric("bogus"); err == nil {
		t.Error("bad metric should fail")
	}
}

// newEbolaSystem builds an ungrounded system with the Ebola program loaded.
func newEbolaSystem(t *testing.T) *core.System {
	t.Helper()
	s := core.NewSystem(core.Config{Metric: geom.HaversineMiles, Bandwidth: 60})
	t.Cleanup(func() { s.Close() })
	if err := s.LoadProgram(datagen.EbolaProgram); err != nil {
		t.Fatal(err)
	}
	return s
}

func writeCSV(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadCSV(t *testing.T) {
	s := newEbolaSystem(t)
	// Columns in header order differing from the schema, with a NULL cell.
	path := writeCSV(t, "county.csv",
		"hasLowSanitation,id,location\n"+
			"true,1,POINT (-10.80 6.32)\n"+
			",2,POINT (-10.45 6.55)\n")
	if err := LoadCSV(s, "County", path); err != nil {
		t.Fatal(err)
	}
	tbl, err := s.DB().Table("County")
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.Len(); got != 2 {
		t.Errorf("loaded %d rows, want 2", got)
	}
}

func TestLoadCSVErrors(t *testing.T) {
	s := newEbolaSystem(t)
	cases := map[string]string{
		"unknown column": "id,nope\n1,2\n",
		"bad bool":       "id,location,hasLowSanitation\n1,POINT (0 0),maybe\n",
		"bad WKT":        "id,location,hasLowSanitation\n1,CIRCLE (0),true\n",
		"ragged row":     "id,location\n1,POINT (0 0),true,extra\n",
	}
	for name, body := range cases {
		path := writeCSV(t, "bad.csv", body)
		if err := LoadCSV(s, "County", path); err == nil {
			t.Errorf("%s should fail", name)
		}
	}
	if err := LoadCSV(s, "County", filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Error("missing file should fail")
	}
	if err := LoadCSV(s, "Nope", writeCSV(t, "c.csv", "id\n1\n")); err == nil {
		t.Error("unknown relation should fail")
	}
}
