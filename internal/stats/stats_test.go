package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTruthRangeContains(t *testing.T) {
	r := TruthRange{Lo: 0.6, Hi: 0.8}
	cases := []struct {
		score, tol float64
		want       bool
	}{
		{0.7, 0, true},
		{0.6, 0, true},
		{0.8, 0, true},
		{0.55, 0, false},
		{0.55, 0.1, true},
		{0.95, 0.1, false},
		{0.9, 0.1, true},
	}
	for _, c := range cases {
		if got := r.Contains(c.score, c.tol); got != c.want {
			t.Errorf("Contains(%v, %v) = %v, want %v", c.score, c.tol, got, c.want)
		}
	}
	p := Point(0.5)
	if !p.Contains(0.55, 0.1) || p.Contains(0.65, 0.1) {
		t.Error("point range mismatch")
	}
}

func TestEvaluateAllCorrect(t *testing.T) {
	exs := []Example{
		{Score: 0.9, Truth: Point(0.85), HasTruth: true},
		{Score: 0.1, Truth: Point(0.15), HasTruth: true},
	}
	r := Evaluate(exs, DefaultOptions())
	if r.Precision != 1 || r.Recall != 1 || r.F1 != 1 {
		t.Errorf("report = %+v", r)
	}
}

func TestEvaluateAbstentions(t *testing.T) {
	// A score near 0.5 abstains: it hurts recall (if wrong) but not
	// precision.
	exs := []Example{
		{Score: 0.9, Truth: Point(0.9), HasTruth: true},
		{Score: 0.51, Truth: Point(0.9), HasTruth: true}, // abstains, wrong
	}
	r := Evaluate(exs, Options{Tolerance: 0.1, DecisionMargin: 0.05})
	if r.Precision != 1 {
		t.Errorf("precision = %v", r.Precision)
	}
	if r.Recall != 0.5 {
		t.Errorf("recall = %v", r.Recall)
	}
	if math.Abs(r.F1-2.0/3.0) > 1e-12 {
		t.Errorf("f1 = %v", r.F1)
	}
}

func TestEvaluateNoTruth(t *testing.T) {
	exs := []Example{{Score: 0.9, HasTruth: false}}
	r := Evaluate(exs, DefaultOptions())
	if r.Precision != 0 || r.Recall != 0 || r.Expected != 0 {
		t.Errorf("report = %+v", r)
	}
}

func TestEvaluateZeroMarginEqualsPR(t *testing.T) {
	exs := []Example{
		{Score: 0.52, Truth: Point(0.9), HasTruth: true},
		{Score: 0.88, Truth: Point(0.9), HasTruth: true},
		{Score: 0.2, Truth: Point(0.25), HasTruth: true},
	}
	r := Evaluate(exs, Options{Tolerance: 0.1, DecisionMargin: 0})
	if r.Precision != r.Recall {
		t.Errorf("margin 0 should equate P and R: %+v", r)
	}
}

func TestF1(t *testing.T) {
	if F1(0, 0) != 0 {
		t.Error("F1(0,0) != 0")
	}
	if got := F1(0.5, 1); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("F1 = %v", got)
	}
}

func TestKL(t *testing.T) {
	p := []float64{0.5, 0.5}
	if d, err := KL(p, p); err != nil || d != 0 {
		t.Errorf("KL(p,p) = %v, %v", d, err)
	}
	q := []float64{0.9, 0.1}
	d, err := KL(p, q)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5*math.Log(0.5/0.9) + 0.5*math.Log(0.5/0.1)
	if math.Abs(d-want) > 1e-12 {
		t.Errorf("KL = %v, want %v", d, want)
	}
	if _, err := KL(p, []float64{1}); err == nil {
		t.Error("mismatched supports should fail")
	}
	// Zero in q is smoothed, not infinite.
	if d, err := KL([]float64{1, 0}, []float64{0, 1}); err != nil || math.IsInf(d, 0) {
		t.Errorf("smoothed KL = %v, %v", d, err)
	}
}

func TestKLNonNegativeProperty(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		norm := func(x, y float64) []float64 {
			x, y = math.Abs(x)+0.01, math.Abs(y)+0.01
			if math.IsInf(x, 0) || math.IsNaN(x) || math.IsInf(y, 0) || math.IsNaN(y) {
				return []float64{0.5, 0.5}
			}
			s := x + y
			return []float64{x / s, y / s}
		}
		p, q := norm(a, b), norm(c, d)
		kl, err := KL(p, q)
		return err == nil && kl >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestAvgKL(t *testing.T) {
	truth := [][]float64{{0.5, 0.5}, {0.9, 0.1}, {1, 0}}
	est := [][]float64{{0.5, 0.5}, {0.9, 0.1}, {1, 0}}
	d, err := AvgKL(truth, est, nil)
	if err != nil || d != 0 {
		t.Errorf("AvgKL = %v, %v", d, err)
	}
	// Only include variable 1.
	est[1] = []float64{0.5, 0.5}
	d2, err := AvgKL(truth, est, func(v int) bool { return v == 1 })
	if err != nil || d2 <= 0 {
		t.Errorf("selective AvgKL = %v, %v", d2, err)
	}
	if _, err := AvgKL(truth, est[:2], nil); err == nil {
		t.Error("length mismatch should fail")
	}
	if d, _ := AvgKL(truth, est, func(v int) bool { return false }); d != 0 {
		t.Errorf("empty selection AvgKL = %v", d)
	}
}

func TestMeanAbsError(t *testing.T) {
	exs := []Example{
		{Score: 0.6, Truth: Point(0.5), HasTruth: true},
		{Score: 0.2, Truth: TruthRange{Lo: 0.3, Hi: 0.5}, HasTruth: true},
		{Score: 0.99, HasTruth: false},
	}
	got := MeanAbsError(exs)
	want := (0.1 + 0.2) / 2
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("MAE = %v, want %v", got, want)
	}
	if MeanAbsError(nil) != 0 {
		t.Error("empty MAE != 0")
	}
}
