// Package stats implements the paper's evaluation metrics (Section VI-A):
//
//   - Precision: correctly inferred factual scores (within a 0.1 error of
//     the ground truth, or inside a ground-truth range as in Fig. 1) over
//     all scores the system commits to;
//   - Recall: correctly inferred scores over all scores that should be
//     predicted according to the evidence data;
//   - F1: their harmonic mean;
//   - average Kullback–Leibler divergence between estimated and true
//     marginal distributions (Fig. 14).
//
// The paper does not spell out when precision and recall denominators
// differ; this implementation makes the conventional choice explicit: a
// score is *committed* when it is at least DecisionMargin away from the
// indifferent 0.5 (margin 0 commits everything, making precision equal
// recall when every variable has ground truth), and the recall denominator
// is every variable carrying ground truth.
package stats

import (
	"fmt"
	"math"
)

// TruthRange is a ground-truth factual-score range; a point truth has
// Lo == Hi (the WHO infection-rate ranges of Fig. 1 motivate ranges).
type TruthRange struct {
	Lo, Hi float64
}

// Point returns a degenerate range.
func Point(v float64) TruthRange { return TruthRange{Lo: v, Hi: v} }

// Contains reports whether a score falls within the range widened by tol on
// both sides (the paper's "within 0.1 error" criterion).
func (r TruthRange) Contains(score, tol float64) bool {
	return score >= r.Lo-tol && score <= r.Hi+tol
}

// Options configures metric computation.
type Options struct {
	// Tolerance is the allowed score error. The paper uses 0.1.
	Tolerance float64
	// DecisionMargin: scores within this distance of 0.5 are treated as
	// abstentions and excluded from the precision denominator.
	DecisionMargin float64
}

// DefaultOptions matches the paper's setup (0.1 tolerance) with a small
// decision margin.
func DefaultOptions() Options {
	return Options{Tolerance: 0.1, DecisionMargin: 0.05}
}

// Example pairs one predicted factual score with its ground truth.
type Example struct {
	Score float64
	Truth TruthRange
	// HasTruth marks variables with usable ground truth (the recall
	// denominator).
	HasTruth bool
}

// Report holds the quality metrics of one run.
type Report struct {
	Precision float64
	Recall    float64
	F1        float64
	Committed int
	Expected  int
	Correct   int
}

// Evaluate computes precision, recall and F1 over the examples.
func Evaluate(examples []Example, opts Options) Report {
	var committed, expected, correctCommitted, correctExpected int
	for _, e := range examples {
		if !e.HasTruth {
			continue
		}
		expected++
		correct := e.Truth.Contains(e.Score, opts.Tolerance)
		if correct {
			correctExpected++
		}
		if math.Abs(e.Score-0.5) >= opts.DecisionMargin {
			committed++
			if correct {
				correctCommitted++
			}
		}
	}
	r := Report{Committed: committed, Expected: expected, Correct: correctExpected}
	if committed > 0 {
		r.Precision = float64(correctCommitted) / float64(committed)
	}
	if expected > 0 {
		r.Recall = float64(correctExpected) / float64(expected)
	}
	r.F1 = F1(r.Precision, r.Recall)
	return r
}

// F1 returns the harmonic mean of precision and recall.
func F1(p, r float64) float64 {
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// klEpsilon floors probabilities so KL stays finite when a sampler assigns
// zero mass to a value the truth supports.
const klEpsilon = 1e-9

// KL returns the Kullback–Leibler divergence KL(p ‖ q) in nats between two
// distributions over the same support.
func KL(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("stats: KL over mismatched supports %d and %d", len(p), len(q))
	}
	var d float64
	for i := range p {
		pi := math.Max(p[i], 0)
		if pi == 0 {
			continue
		}
		qi := math.Max(q[i], klEpsilon)
		d += pi * math.Log(pi/qi)
	}
	if d < 0 && d > -1e-12 {
		d = 0 // numerical noise
	}
	return d, nil
}

// AvgKL returns the mean KL(true ‖ estimated) over the selected variables —
// the Fig. 14 quality measure ("KL divergence between the estimated
// marginal probabilities ... and the true marginal probabilities").
func AvgKL(truth, estimated [][]float64, include func(v int) bool) (float64, error) {
	if len(truth) != len(estimated) {
		return 0, fmt.Errorf("stats: %d true vs %d estimated marginals", len(truth), len(estimated))
	}
	var sum float64
	n := 0
	for v := range truth {
		if include != nil && !include(v) {
			continue
		}
		d, err := KL(truth[v], estimated[v])
		if err != nil {
			return 0, fmt.Errorf("stats: variable %d: %w", v, err)
		}
		sum += d
		n++
	}
	if n == 0 {
		return 0, nil
	}
	return sum / float64(n), nil
}

// MeanAbsError returns the mean |score − truth-midpoint| over examples with
// truth, a convenient scalar for convergence plots.
func MeanAbsError(examples []Example) float64 {
	var sum float64
	n := 0
	for _, e := range examples {
		if !e.HasTruth {
			continue
		}
		mid := (e.Truth.Lo + e.Truth.Hi) / 2
		sum += math.Abs(e.Score - mid)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
