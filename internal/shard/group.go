package shard

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/factorgraph"
	"repro/internal/gibbs"
	"repro/internal/obs"
)

// Options configures a sharded inference group.
type Options struct {
	// Shards is N, the share-nothing partition count (≤ 1 → 1).
	Shards int
	// SubtreeLevel is the pyramid level whose cells define the dealt
	// subtrees (default 2, the minimum swept level — up to 16 subtrees).
	SubtreeLevel int
	// Levels, LocalityLevel, Capacity parameterize each shard's pyramid
	// exactly like gibbs.SpatialOptions (the global bounding space is
	// shared, so cell geometry agrees across shards).
	Levels, LocalityLevel, Capacity int
	// Instances is K, the chain count per shard. Instance k of every shard
	// exchanges with instance k of its neighbours, so the group runs K
	// coherent global chains. Default 2.
	Instances int
	// Workers is the sampler worker-pool width per shard (0 → GOMAXPROCS).
	Workers int
	// Seed drives all randomness. Shard 0 samples under Seed itself (a
	// one-shard group runs the identical program to a single spatial
	// sampler); other shards derive decorrelated seeds.
	Seed int64
	// BurnIn discards this many initial epochs per chain from the counters.
	BurnIn int
	// NoKernels scores with the interpreted walk (escape hatch).
	NoKernels bool
	// ChunkGrain caps cells per dispatched chunk inside each shard's
	// sampler (see gibbs.SpatialOptions.ChunkGrain).
	ChunkGrain int
	// ExchangeTimeout bounds the wait at one epoch barrier (and the final
	// counts gather). A shard that hears nothing from a neighbour for this
	// long fails the run with an error naming the silent shard — the torn-
	// connection story. Default 30s.
	ExchangeTimeout time.Duration
	// Transports connects the shards (len = Shards); nil builds in-process
	// channel transports. The group closes them on Close either way.
	Transports []Transport
	// Metrics, when non-nil, receives per-shard exchange series
	// (sya_shard_exchange_bytes, sya_shard_exchange_seconds,
	// sya_shard_boundary_vars) on {shard="i"}-labeled views.
	Metrics *obs.Registry
	// CheckpointPath enables per-shard checkpointing: shard i snapshots to
	// <path>.shard<i> every CheckpointEvery epochs through the standard
	// gibbs.Checkpointer, and a fresh group resumes from existing files.
	// All shards must resume to the same epoch (all files from one
	// generation) or New fails. Empty disables.
	CheckpointPath string
	// CheckpointEvery is the snapshot interval in epochs (0 → 100).
	CheckpointEvery int
}

func (o Options) withDefaults() Options {
	if o.Shards < 1 {
		o.Shards = 1
	}
	if o.SubtreeLevel <= 0 {
		o.SubtreeLevel = 2
	}
	if o.Instances <= 0 {
		o.Instances = 2
	}
	if o.ExchangeTimeout <= 0 {
		o.ExchangeTimeout = 30 * time.Second
	}
	return o
}

// shardSeed decorrelates shard i's PRNG lineage from the base seed
// (splitmix64 finalizer). Shard 0 keeps the base seed.
func shardSeed(seed int64, id int) int64 {
	if id == 0 {
		return seed
	}
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(id)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// exchangeBuckets bound one epoch barrier's wall time — in-process
// exchanges sit in the microseconds, localhost TCP in the tens of
// microseconds to milliseconds.
var exchangeBuckets = []float64{1e-6, 1e-5, 1e-4, 5e-4, 1e-3, 5e-3, .01, .05, .1, .5}

// node is one shard: its subgraph, sampler, transport endpoint and halo
// bookkeeping.
type node struct {
	id  int
	sub *subgraph
	smp *gibbs.Spatial
	tr  Transport

	peers     []int                     // sorted neighbour shard ids
	sendVars  map[int][]factorgraph.VarID // per peer: local ids of owned vars the peer holds as halo
	recvVars  map[int][]factorgraph.VarID // per peer: local ids of halo vars owned by the peer
	lastSent  map[int][]int32             // per peer: last values sent (var-major, K per var)
	sendBuf   map[int][]int32             // per peer: current-values scratch
	stash     []Message                   // early frames (epoch ahead of the barrier)
	haloVars  int                         // halo variables held (all peers)

	exBytes   *obs.Counter
	exSeconds *obs.Histogram

	exchangeDur   time.Duration
	exchangeBytes int64
}

// Group runs sharded inference over one ground graph: N share-nothing
// nodes in lockstep epochs with halo exchange at every barrier, and a
// coordinator (shard 0's side of the group) that merges the shards'
// marginal counts — drawn from the samplers' checkpoint snapshots — into
// the full graph's marginal view after each run.
type Group struct {
	g     *factorgraph.Graph
	opts  Options
	plan  *Plan
	nodes []*node

	counts [][]float64 // per full-graph var, merged at the last gather
	totals []float64
}

// New partitions the graph and builds the N nodes (subgraph, compiled
// kernels, sampler, transport wiring, checkpoint resume). The group owns
// the transports from here on: Close closes them.
func New(g *factorgraph.Graph, opts Options) (*Group, error) {
	opts = opts.withDefaults()
	if opts.Transports != nil && len(opts.Transports) != opts.Shards {
		return nil, fmt.Errorf("shard: %d transports for %d shards", len(opts.Transports), opts.Shards)
	}
	plan, err := Partition(g, opts)
	if err != nil {
		return nil, err
	}
	trs := opts.Transports
	if trs == nil {
		trs = NewLocalTransports(opts.Shards)
	}
	gr := &Group{g: g, opts: opts, plan: plan}
	init := g.InitialAssignment()

	subs := make([]*subgraph, opts.Shards)
	for i := 0; i < opts.Shards; i++ {
		if subs[i], err = buildSubgraph(g, plan, i, init); err != nil {
			return nil, fmt.Errorf("shard %d: building subgraph: %w", i, err)
		}
	}
	// Halo wiring: node j receives, from owner i, exactly the boundary
	// variables of j that plan assigns to i — and i sends the same list.
	// Both sides derive the lists from the shared plan, in ascending
	// global-id order, so sparse delta indices agree.
	recvGlobal := make([]map[int][]factorgraph.VarID, opts.Shards)
	for j, sub := range subs {
		recvGlobal[j] = map[int][]factorgraph.VarID{}
		for _, v := range sub.boundary {
			if owner := plan.Owner[v]; owner >= 0 {
				recvGlobal[j][owner] = append(recvGlobal[j][owner], v)
			}
		}
	}
	for i := 0; i < opts.Shards; i++ {
		n := &node{
			id:       i,
			sub:      subs[i],
			tr:       trs[i],
			sendVars: map[int][]factorgraph.VarID{},
			recvVars: map[int][]factorgraph.VarID{},
			lastSent: map[int][]int32{},
			sendBuf:  map[int][]int32{},
		}
		for p, vars := range recvGlobal[i] {
			locals := make([]factorgraph.VarID, len(vars))
			for k, v := range vars {
				locals[k] = subs[i].localID[v]
			}
			n.recvVars[p] = locals
			n.haloVars += len(vars)
		}
		for p := 0; p < opts.Shards; p++ {
			vars := recvGlobal[p][i] // owned by i, halo at p
			if len(vars) == 0 {
				continue
			}
			locals := make([]factorgraph.VarID, len(vars))
			for k, v := range vars {
				locals[k] = subs[i].localID[v]
			}
			n.sendVars[p] = locals
		}
		for p := range n.sendVars {
			n.peers = append(n.peers, p)
		}
		sort.Ints(n.peers)

		n.smp, err = gibbs.NewSpatial(subs[i].g, gibbs.SpatialOptions{
			Levels:        opts.Levels,
			LocalityLevel: opts.LocalityLevel,
			Capacity:      opts.Capacity,
			Instances:     opts.Instances,
			Workers:       opts.Workers,
			Seed:          shardSeed(opts.Seed, i),
			BurnIn:        opts.BurnIn,
			NoKernels:     opts.NoKernels,
			ChunkGrain:    opts.ChunkGrain,
			Space:         plan.Space,
		})
		if err != nil {
			gr.Close()
			return nil, fmt.Errorf("shard %d: building sampler: %w", i, err)
		}
		if opts.Metrics != nil {
			reg := opts.Metrics.With("shard", strconv.Itoa(i))
			n.exBytes = reg.Counter("sya_shard_exchange_bytes")
			n.exSeconds = reg.Histogram("sya_shard_exchange_seconds", exchangeBuckets)
			reg.Gauge("sya_shard_boundary_vars").Set(float64(n.haloVars))
		}
		if opts.CheckpointPath != "" {
			path := shardCheckpointPath(opts.CheckpointPath, i)
			if _, err := gibbs.ResumeFrom(n.smp, path); err != nil && !os.IsNotExist(err) {
				n.smp.Close()
				gr.Close()
				return nil, fmt.Errorf("shard %d: resuming from %s: %w", i, path, err)
			}
			n.smp.SetCheckpointer(&gibbs.Checkpointer{Path: path, Every: opts.CheckpointEvery})
		}
		gr.nodes = append(gr.nodes, n)
	}
	// Lockstep requires every shard at the same epoch: mixed-generation
	// checkpoints (one shard resumed, another fresh) would desynchronize
	// the barrier stamps and the chains.
	for _, n := range gr.nodes[1:] {
		if n.smp.TotalEpochs() != gr.nodes[0].smp.TotalEpochs() {
			e0, ei := gr.nodes[0].smp.TotalEpochs(), n.smp.TotalEpochs()
			gr.Close()
			return nil, fmt.Errorf("shard: inconsistent checkpoint generations: shard 0 at epoch %d, shard %d at epoch %d (delete the .shard* files to restart)", e0, n.id, ei)
		}
	}
	return gr, nil
}

// shardCheckpointPath names shard i's checkpoint file.
func shardCheckpointPath(base string, i int) string {
	return fmt.Sprintf("%s.shard%d", base, i)
}

// Plan exposes the shard assignment (tests and diagnostics).
func (gr *Group) Plan() *Plan { return gr.plan }

// Epochs reports the per-instance epochs completed (shard 0's sampler —
// all shards advance in lockstep).
func (gr *Group) Epochs() int { return gr.nodes[0].smp.TotalEpochs() }

// Run advances every shard by approximately `total` raw epochs split
// across the K instances (matching (*gibbs.Spatial).RunTotal), with a halo
// exchange at every epoch barrier, then gathers the shards' marginal
// counts to the coordinator. Cancellation stops the shards at their next
// chunk boundary and is not an error — partial marginals remain readable.
// A transport failure, barrier timeout or worker panic aborts the run with
// an error naming the failing shard.
func (gr *Group) Run(ctx context.Context, total int) (gibbs.RunStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	per := (total + gr.opts.Instances - 1) / gr.opts.Instances
	if per < 1 {
		per = 1
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	stats := make([]gibbs.RunStats, len(gr.nodes))
	errs := make([]error, len(gr.nodes))
	var wg sync.WaitGroup
	for i, n := range gr.nodes {
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			stats[i], errs[i] = n.run(runCtx, per, gr.opts.ExchangeTimeout)
			if errs[i] != nil {
				cancel() // unwind the peers waiting at the barrier
			}
		}(i, n)
	}
	wg.Wait()
	st := stats[0]
	for _, s := range stats[1:] {
		if s.Epochs < st.Epochs {
			st.Epochs = s.Epochs
		}
		if st.Reason == gibbs.ReasonDone && s.Reason != gibbs.ReasonDone {
			st.Reason = s.Reason
		}
	}
	for _, err := range errs {
		if err != nil {
			return st, err
		}
	}
	if err := gr.gather(); err != nil {
		return st, err
	}
	return st, nil
}

// run is one shard's share of a Run call: per epochs in lockstep with the
// epoch-barrier halo exchange.
func (n *node) run(ctx context.Context, per int, timeout time.Duration) (gibbs.RunStats, error) {
	st := gibbs.RunStats{Reason: gibbs.ReasonDone}
	for e := 0; e < per; e++ {
		rs, err := n.smp.Run(ctx, 1)
		st.Epochs += rs.Epochs
		st.Diag, st.DiagValid = rs.Diag, rs.DiagValid
		if err != nil {
			return st, fmt.Errorf("shard %d: %w", n.id, err)
		}
		if rs.Reason != gibbs.ReasonDone {
			st.Reason = rs.Reason
			return st, nil
		}
		if len(n.peers) == 0 {
			continue
		}
		if err := n.exchange(ctx, uint64(n.smp.TotalEpochs()), timeout); err != nil {
			if ctx.Err() != nil {
				st.Reason = reasonFromCtx(ctx)
				return st, nil
			}
			return st, fmt.Errorf("shard %d: halo exchange: %w", n.id, err)
		}
	}
	return st, nil
}

// reasonFromCtx maps a fired context to its stop reason.
func reasonFromCtx(ctx context.Context) gibbs.StopReason {
	if ctx.Err() == context.DeadlineExceeded {
		return gibbs.ReasonDeadline
	}
	return gibbs.ReasonCanceled
}

// exchange is one epoch barrier: send this epoch's boundary deltas to
// every neighbour, then block until every neighbour's frame for the same
// epoch arrived and is applied to the frozen halo copies. Frames from the
// next epoch (a neighbour already past its barrier) are stashed; anything
// else is a protocol error.
func (n *node) exchange(ctx context.Context, epoch uint64, timeout time.Duration) error {
	start := time.Now()
	defer func() {
		d := time.Since(start)
		n.exchangeDur += d
		if n.exSeconds != nil {
			n.exSeconds.Observe(d.Seconds())
		}
	}()
	k := n.smp.NumInstances()
	for _, p := range n.peers {
		vars := n.sendVars[p]
		cur := n.sendBuf[p]
		if cur == nil {
			cur = make([]int32, len(vars)*k)
			n.sendBuf[p] = cur
		}
		for i, lid := range vars {
			for j := 0; j < k; j++ {
				cur[i*k+j] = n.smp.ChainValue(j, lid)
			}
		}
		payload := encodeHalo(cur, n.lastSent[p], k)
		last := n.lastSent[p]
		if last == nil {
			last = make([]int32, len(cur))
			n.lastSent[p] = last
		}
		copy(last, cur)
		n.exchangeBytes += int64(len(payload))
		if n.exBytes != nil {
			n.exBytes.Add(uint64(len(payload)))
		}
		if err := n.tr.Send(ctx, p, Message{Kind: MsgHalo, From: n.id, Epoch: epoch, Payload: payload}); err != nil {
			return fmt.Errorf("epoch %d: %w", epoch, err)
		}
	}

	need := make(map[int]bool, len(n.peers))
	for _, p := range n.peers {
		need[p] = true
	}
	rest := n.stash[:0]
	for _, m := range n.stash {
		if m.Epoch == epoch && need[m.From] {
			if err := n.applyHalo(m, k); err != nil {
				return err
			}
			delete(need, m.From)
		} else {
			rest = append(rest, m)
		}
	}
	n.stash = rest

	wctx, cancelWait := context.WithTimeout(ctx, timeout)
	defer cancelWait()
	for len(need) > 0 {
		m, err := n.tr.Recv(wctx)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			missing := make([]int, 0, len(need))
			for p := range need {
				missing = append(missing, p)
			}
			sort.Ints(missing)
			return fmt.Errorf("epoch %d: waiting for shard(s) %v: %w", epoch, missing, err)
		}
		switch {
		case m.Kind != MsgHalo:
			// A stray counts frame from a previous run's gather; drop it.
		case m.Epoch == epoch && need[m.From]:
			if err := n.applyHalo(m, k); err != nil {
				return err
			}
			delete(need, m.From)
		case m.Epoch > epoch:
			n.stash = append(n.stash, m)
		default:
			return fmt.Errorf("epoch %d: unexpected halo frame from shard %d for epoch %d", epoch, m.From, m.Epoch)
		}
	}
	return nil
}

// applyHalo writes one neighbour's boundary delta into the frozen halo
// copies of every instance.
func (n *node) applyHalo(m Message, k int) error {
	vars, ok := n.recvVars[m.From]
	if !ok {
		return fmt.Errorf("epoch %d: halo frame from non-neighbour shard %d", m.Epoch, m.From)
	}
	return decodeHalo(m.Payload, k, len(vars), func(idx int, vals []int32) error {
		lid := vars[idx]
		dom := n.sub.g.Var(lid).Domain
		for j, x := range vals {
			if x < 0 || x >= dom {
				return fmt.Errorf("epoch %d: halo frame from shard %d: value %d outside domain %d", m.Epoch, m.From, x, dom)
			}
			n.smp.SetChainValue(j, lid, x)
		}
		return nil
	})
}

// encodeCountsFrame serializes this shard's interior marginal counts,
// summed across instances, from the sampler's checkpoint snapshot.
func (n *node) encodeCountsFrame() []byte {
	cp := n.smp.Snapshot()
	vids := make([]int64, len(n.sub.interior))
	rows := make([][]int64, len(n.sub.interior))
	for li, gv := range n.sub.interior {
		vids[li] = int64(gv)
		dom := int(n.sub.g.Var(factorgraph.VarID(li)).Domain)
		row := make([]int64, dom)
		for _, inst := range cp.Instances {
			for x, c := range inst.Counts[li] {
				row[x] += c
			}
		}
		rows[li] = row
	}
	return encodeCounts(vids, rows)
}

// gather merges every shard's marginal counts into the coordinator's
// full-graph view: shards 1..N-1 frame their counts over the transport to
// shard 0; shard 0's own counts take the same encode/decode path. Uses a
// fresh timeout context so a cancelled run can still read partial
// marginals.
func (gr *Group) gather() error {
	nv := gr.g.NumVars()
	counts := make([][]float64, nv)
	totals := make([]float64, nv)
	apply := func(vid int, row []int64) error {
		if vid < 0 || vid >= nv {
			return fmt.Errorf("counts row for unknown variable %d", vid)
		}
		m := make([]float64, len(row))
		var tot float64
		for i, c := range row {
			m[i] = float64(c)
			tot += float64(c)
		}
		counts[vid], totals[vid] = m, tot
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), gr.opts.ExchangeTimeout)
	defer cancel()
	epoch := uint64(gr.nodes[0].smp.TotalEpochs())
	for _, n := range gr.nodes {
		frame := n.encodeCountsFrame()
		if n.id == 0 {
			if err := decodeCounts(frame, apply); err != nil {
				return fmt.Errorf("shard 0 counts: %w", err)
			}
			continue
		}
		if err := n.tr.Send(ctx, 0, Message{Kind: MsgCounts, From: n.id, Epoch: epoch, Payload: frame}); err != nil {
			return fmt.Errorf("shard %d: sending counts: %w", n.id, err)
		}
	}
	got := map[int]bool{}
	for len(got) < len(gr.nodes)-1 {
		m, err := gr.nodes[0].tr.Recv(ctx)
		if err != nil {
			return fmt.Errorf("shard 0: gathering counts: %w", err)
		}
		if m.Kind != MsgCounts || got[m.From] {
			continue // stray halo frame from an unwound barrier
		}
		if err := decodeCounts(m.Payload, apply); err != nil {
			return fmt.Errorf("shard %d counts: %w", m.From, err)
		}
		got[m.From] = true
	}
	gr.counts, gr.totals = counts, totals
	return nil
}

// Marginals returns the full graph's marginal view from the last gather:
// evidence variables get a point mass, sampled variables their owning
// shard's normalized counts, unsampled variables a uniform — the same
// semantics as the single-process samplers.
func (gr *Group) Marginals() [][]float64 {
	nv := gr.g.NumVars()
	out := make([][]float64, nv)
	for i := 0; i < nv; i++ {
		meta := gr.g.Var(factorgraph.VarID(i))
		m := make([]float64, meta.Domain)
		switch {
		case meta.Evidence != factorgraph.NoEvidence:
			m[meta.Evidence] = 1
		case gr.counts != nil && gr.counts[i] != nil && gr.totals[i] > 0:
			for x, c := range gr.counts[i] {
				m[x] = c / gr.totals[i]
			}
		default:
			for x := range m {
				m[x] = 1 / float64(meta.Domain)
			}
		}
		out[i] = m
	}
	return out
}

// ExchangeStats aggregates the halo-exchange cost across shards.
type ExchangeStats struct {
	// BoundaryVars is the total halo variables held (each remote boundary
	// variable counted at every shard holding a copy).
	BoundaryVars int
	// Bytes is the cumulative halo payload bytes sent.
	Bytes int64
	// Seconds is the cumulative wall time spent inside epoch barriers,
	// summed over shards.
	Seconds float64
}

// ExchangeStats reports the cumulative exchange cost since New.
func (gr *Group) ExchangeStats() ExchangeStats {
	var st ExchangeStats
	for _, n := range gr.nodes {
		st.BoundaryVars += n.haloVars
		st.Bytes += n.exchangeBytes
		st.Seconds += n.exchangeDur.Seconds()
	}
	return st
}

// Close releases every shard's sampler pool and transport. Idempotent.
func (gr *Group) Close() {
	for _, n := range gr.nodes {
		n.smp.Close()
		n.tr.Close()
	}
	// Transports passed in via Options but never attached to a node (a
	// constructor failure path) are the caller's to close.
}
