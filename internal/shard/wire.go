package shard

import (
	"encoding/binary"
	"fmt"
)

// Halo payload: u32 entry count, then per changed boundary variable its
// index into the (statically known, both-sides identical) per-direction
// variable list followed by the K instances' values — the same sparse
// touched-list shape the pool's count-delta merge uses. A variable absent
// from the delta keeps its previous halo value on the receiver.

// encodeHalo diffs the current var-major values (K per variable) against
// last (nil on the first exchange: everything is sent) and returns the
// sparse delta payload.
func encodeHalo(cur, last []int32, k int) []byte {
	nvars := len(cur) / k
	changed := make([]int, 0, nvars)
	for i := 0; i < nvars; i++ {
		if last == nil {
			changed = append(changed, i)
			continue
		}
		for j := 0; j < k; j++ {
			if cur[i*k+j] != last[i*k+j] {
				changed = append(changed, i)
				break
			}
		}
	}
	out := make([]byte, 0, 4+len(changed)*(4+4*k))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(changed)))
	for _, i := range changed {
		out = binary.LittleEndian.AppendUint32(out, uint32(i))
		for j := 0; j < k; j++ {
			out = binary.LittleEndian.AppendUint32(out, uint32(cur[i*k+j]))
		}
	}
	return out
}

// decodeHalo parses a halo delta, calling apply for each entry with the
// K values scratch slice (reused across calls).
func decodeHalo(p []byte, k, nvars int, apply func(idx int, vals []int32) error) error {
	if len(p) < 4 {
		return fmt.Errorf("halo frame truncated (%d bytes)", len(p))
	}
	n := int(binary.LittleEndian.Uint32(p[0:4]))
	p = p[4:]
	if want := n * (4 + 4*k); len(p) != want {
		return fmt.Errorf("halo frame size %d does not match %d entries × %d chains", len(p)+4, n, k)
	}
	vals := make([]int32, k)
	for e := 0; e < n; e++ {
		idx := int(binary.LittleEndian.Uint32(p[0:4]))
		p = p[4:]
		if idx < 0 || idx >= nvars {
			return fmt.Errorf("halo frame entry %d: index %d outside boundary list (%d vars)", e, idx, nvars)
		}
		for j := 0; j < k; j++ {
			vals[j] = int32(binary.LittleEndian.Uint32(p[0:4]))
			p = p[4:]
		}
		if err := apply(idx, vals); err != nil {
			return err
		}
	}
	return nil
}

// Counts payload: u32 row count, then per sampled interior variable its
// full-graph id, domain size, and per-value counts — a sparse row set
// (unsampled variables are omitted) drawn from the sampler's checkpoint
// snapshot and merged by the coordinator into the global marginal view.

// encodeCounts serializes the non-zero rows. vids[i] is rows[i]'s
// full-graph variable id.
func encodeCounts(vids []int64, rows [][]int64) []byte {
	out := make([]byte, 0, 4)
	n := 0
	out = binary.LittleEndian.AppendUint32(out, 0) // patched below
	for i, row := range rows {
		var total int64
		for _, c := range row {
			total += c
		}
		if total == 0 {
			continue
		}
		n++
		out = binary.LittleEndian.AppendUint32(out, uint32(vids[i]))
		out = binary.LittleEndian.AppendUint16(out, uint16(len(row)))
		for _, c := range row {
			out = binary.LittleEndian.AppendUint64(out, uint64(c))
		}
	}
	binary.LittleEndian.PutUint32(out[0:4], uint32(n))
	return out
}

// decodeCounts parses a counts payload, calling apply per row.
func decodeCounts(p []byte, apply func(vid int, row []int64) error) error {
	if len(p) < 4 {
		return fmt.Errorf("counts frame truncated (%d bytes)", len(p))
	}
	n := int(binary.LittleEndian.Uint32(p[0:4]))
	p = p[4:]
	for e := 0; e < n; e++ {
		if len(p) < 6 {
			return fmt.Errorf("counts frame truncated at row %d", e)
		}
		vid := int(binary.LittleEndian.Uint32(p[0:4]))
		dom := int(binary.LittleEndian.Uint16(p[4:6]))
		p = p[6:]
		if len(p) < 8*dom {
			return fmt.Errorf("counts frame truncated at row %d values", e)
		}
		row := make([]int64, dom)
		for j := 0; j < dom; j++ {
			row[j] = int64(binary.LittleEndian.Uint64(p[0:8]))
			p = p[8:]
		}
		if err := apply(vid, row); err != nil {
			return err
		}
	}
	if len(p) != 0 {
		return fmt.Errorf("counts frame has %d trailing bytes", len(p))
	}
	return nil
}
