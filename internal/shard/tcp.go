package shard

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"time"
)

// TCP wire format, following the WAL/checkpoint idiom: a little-endian
// magic/version stream header once per connection, then length-prefixed
// frames with a CRC-32 (IEEE) over the payload. The payload is a
// self-contained message: kind (u8), from (u32), epoch (u64), body.
const (
	tcpMagic   = 0x53594148 // "SYAH"
	tcpVersion = 1
	// tcpMaxFrame bounds one frame (halo deltas and counts of bench-scale
	// graphs sit far below this); oversized lengths are treated as stream
	// corruption rather than allocation requests.
	tcpMaxFrame = 64 << 20
)

// Dial retry/backoff: a peer's listener may come up after ours (process
// start order is not coordinated), so connection attempts back off
// geometrically up to the budget before failing.
const (
	tcpDialBackoffMin = 10 * time.Millisecond
	tcpDialBackoffMax = 250 * time.Millisecond
	tcpDialBudget     = 5 * time.Second
)

// TCPTransport is the distributed Transport: shard id listens on
// addrs[id], accepts frames from any peer into one inbox, and dials peers
// lazily on first Send (with retry/backoff while the peer's listener comes
// up). One connection per direction; sends to one peer are serialized.
type TCPTransport struct {
	id    int
	addrs []string
	ln    net.Listener
	inbox chan Message

	mu    sync.Mutex // guards conns and accepted
	conns map[int]net.Conn
	acc   []net.Conn

	done    chan struct{}
	once    sync.Once
	readers sync.WaitGroup
}

// NewTCPTransport creates shard id's endpoint of an N-shard TCP group with
// listen addresses addrs (len(addrs) = N). The listener starts
// immediately; peer connections are dialed on first Send.
func NewTCPTransport(id int, addrs []string) (*TCPTransport, error) {
	if id < 0 || id >= len(addrs) {
		return nil, fmt.Errorf("shard: tcp transport id %d outside addrs (%d)", id, len(addrs))
	}
	ln, err := net.Listen("tcp", addrs[id])
	if err != nil {
		return nil, fmt.Errorf("shard %d: listen %s: %w", id, addrs[id], err)
	}
	t := &TCPTransport{
		id:    id,
		addrs: addrs,
		ln:    ln,
		inbox: make(chan Message, 4*len(addrs)),
		conns: map[int]net.Conn{},
		done:  make(chan struct{}),
	}
	go t.acceptLoop()
	return t, nil
}

// Addr reports the listener's bound address (useful with ":0" addresses).
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

func (t *TCPTransport) acceptLoop() {
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		select {
		case <-t.done:
			t.mu.Unlock()
			c.Close()
			return
		default:
		}
		t.acc = append(t.acc, c)
		t.mu.Unlock()
		t.readers.Add(1)
		go t.readLoop(c)
	}
}

// readLoop verifies the stream header then feeds frames into the inbox
// until the connection tears or the transport closes. Frame corruption
// (bad CRC, oversized length, undecodable payload) closes the connection:
// the peer's next exchange will fail loudly rather than sample against a
// silently dropped halo.
func (t *TCPTransport) readLoop(c net.Conn) {
	defer t.readers.Done()
	defer c.Close()
	var hdr [8]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		return
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != tcpMagic ||
		binary.LittleEndian.Uint32(hdr[4:8]) != tcpVersion {
		return
	}
	for {
		var fh [8]byte
		if _, err := io.ReadFull(c, fh[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(fh[0:4])
		sum := binary.LittleEndian.Uint32(fh[4:8])
		if n > tcpMaxFrame {
			return
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(c, payload); err != nil {
			return
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return
		}
		m, ok := decodeMessage(payload)
		if !ok {
			return
		}
		select {
		case t.inbox <- m:
		case <-t.done:
			return
		}
	}
}

// conn returns (dialing if needed) the send connection to peer `to`.
func (t *TCPTransport) conn(ctx context.Context, to int) (net.Conn, error) {
	t.mu.Lock()
	if c, ok := t.conns[to]; ok {
		t.mu.Unlock()
		return c, nil
	}
	t.mu.Unlock()

	var (
		c       net.Conn
		err     error
		backoff = tcpDialBackoffMin
	)
	deadline := time.Now().Add(tcpDialBudget)
	for {
		d := net.Dialer{}
		c, err = d.DialContext(ctx, "tcp", t.addrs[to])
		if err == nil {
			break
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("dial shard %d at %s: %w", to, t.addrs[to], err)
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.done:
			return nil, errTransportClosed{t.id}
		}
		if backoff *= 2; backoff > tcpDialBackoffMax {
			backoff = tcpDialBackoffMax
		}
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], tcpMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], tcpVersion)
	if _, err := c.Write(hdr[:]); err != nil {
		c.Close()
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	select {
	case <-t.done:
		c.Close()
		return nil, errTransportClosed{t.id}
	default:
	}
	if prior, ok := t.conns[to]; ok { // lost a dial race; keep the first
		c.Close()
		return prior, nil
	}
	t.conns[to] = c
	return c, nil
}

func (t *TCPTransport) Send(ctx context.Context, to int, m Message) error {
	if to < 0 || to >= len(t.addrs) {
		return fmt.Errorf("no shard %d", to)
	}
	select {
	case <-t.done:
		return errTransportClosed{t.id}
	default:
	}
	c, err := t.conn(ctx, to)
	if err != nil {
		return fmt.Errorf("shard %d unreachable: %w", to, err)
	}
	payload := encodeMessage(m)
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	t.mu.Lock()
	_, err = c.Write(frame)
	if err != nil {
		// A torn connection is not retried: drop it so a later Send redials,
		// and surface the failure to the exchange.
		c.Close()
		if t.conns[to] == c {
			delete(t.conns, to)
		}
	}
	t.mu.Unlock()
	if err != nil {
		return fmt.Errorf("send to shard %d: %w", to, err)
	}
	return nil
}

func (t *TCPTransport) Recv(ctx context.Context) (Message, error) {
	select {
	case m := <-t.inbox:
		return m, nil
	default:
	}
	select {
	case m := <-t.inbox:
		return m, nil
	case <-t.done:
		return Message{}, errTransportClosed{t.id}
	case <-ctx.Done():
		return Message{}, ctx.Err()
	}
}

// Close shuts the listener and every connection down and unblocks pending
// Recv calls. Idempotent.
func (t *TCPTransport) Close() error {
	t.once.Do(func() {
		close(t.done)
		t.ln.Close()
		t.mu.Lock()
		for _, c := range t.conns {
			c.Close()
		}
		t.conns = map[int]net.Conn{}
		for _, c := range t.acc {
			c.Close()
		}
		t.acc = nil
		t.mu.Unlock()
	})
	t.readers.Wait()
	return nil
}

// encodeMessage flattens a Message into a self-contained frame payload.
func encodeMessage(m Message) []byte {
	out := make([]byte, 0, 13+len(m.Payload))
	out = append(out, byte(m.Kind))
	out = binary.LittleEndian.AppendUint32(out, uint32(m.From))
	out = binary.LittleEndian.AppendUint64(out, m.Epoch)
	return append(out, m.Payload...)
}

// decodeMessage parses a frame payload; ok=false on truncation.
func decodeMessage(p []byte) (Message, bool) {
	if len(p) < 13 {
		return Message{}, false
	}
	return Message{
		Kind:    MsgKind(p[0]),
		From:    int(binary.LittleEndian.Uint32(p[1:5])),
		Epoch:   binary.LittleEndian.Uint64(p[5:13]),
		Payload: p[13:],
	}, true
}
