package shard

import (
	"reflect"
	"testing"
)

func TestHaloDeltaRoundtrip(t *testing.T) {
	const k = 2
	last := []int32{0, 1, 2, 0, 1, 1} // 3 vars × 2 chains
	cur := []int32{0, 1, 2, 1, 1, 1}  // var 1 changed in chain 1 only
	p := encodeHalo(cur, last, k)
	got := map[int][]int32{}
	if err := decodeHalo(p, k, 3, func(idx int, vals []int32) error {
		got[idx] = append([]int32(nil), vals...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := map[int][]int32{1: {2, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("delta decoded to %v, want %v", got, want)
	}
}

func TestHaloNilLastSendsEverything(t *testing.T) {
	const k = 3
	cur := []int32{5, 6, 7, 8, 9, 10}
	p := encodeHalo(cur, nil, k)
	var n int
	if err := decodeHalo(p, k, 2, func(idx int, vals []int32) error {
		n++
		for j := 0; j < k; j++ {
			if vals[j] != cur[idx*k+j] {
				t.Errorf("var %d chain %d = %d, want %d", idx, j, vals[j], cur[idx*k+j])
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("decoded %d entries, want 2", n)
	}
}

func TestHaloNoChangeIsEmptyDelta(t *testing.T) {
	cur := []int32{1, 2, 3, 4}
	p := encodeHalo(cur, cur, 2)
	if len(p) != 4 {
		t.Fatalf("no-change delta is %d bytes, want 4 (count only)", len(p))
	}
	if err := decodeHalo(p, 2, 2, func(int, []int32) error {
		t.Fatal("apply called on empty delta")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestHaloDecodeRejectsCorruption(t *testing.T) {
	nop := func(int, []int32) error { return nil }
	if err := decodeHalo([]byte{1, 2}, 2, 4, nop); err == nil {
		t.Error("truncated frame accepted")
	}
	// Valid shape, index outside the boundary list.
	p := encodeHalo([]int32{7, 7}, nil, 2)
	if err := decodeHalo(p, 2, 0, nop); err == nil {
		t.Error("out-of-range index accepted")
	}
	// Size not matching the declared entry count.
	if err := decodeHalo(p[:len(p)-1], 2, 1, nop); err == nil {
		t.Error("short frame accepted")
	}
}

func TestCountsRoundtripSkipsZeroRows(t *testing.T) {
	vids := []int64{4, 9, 11}
	rows := [][]int64{{3, 5}, {0, 0}, {1, 0, 7}}
	p := encodeCounts(vids, rows)
	got := map[int][]int64{}
	if err := decodeCounts(p, func(vid int, row []int64) error {
		got[vid] = row
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := map[int][]int64{4: {3, 5}, 11: {1, 0, 7}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("counts decoded to %v, want %v", got, want)
	}
}

func TestCountsDecodeRejectsCorruption(t *testing.T) {
	nop := func(int, []int64) error { return nil }
	if err := decodeCounts([]byte{9}, nop); err == nil {
		t.Error("truncated header accepted")
	}
	p := encodeCounts([]int64{1}, [][]int64{{2, 3}})
	if err := decodeCounts(p[:len(p)-3], nop); err == nil {
		t.Error("truncated row accepted")
	}
	if err := decodeCounts(append(p, 0xff), nop); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestMessageRoundtrip(t *testing.T) {
	m := Message{Kind: MsgCounts, From: 3, Epoch: 1 << 40, Payload: []byte{1, 2, 3}}
	got, ok := decodeMessage(encodeMessage(m))
	if !ok || !reflect.DeepEqual(got, m) {
		t.Fatalf("decoded %+v (ok=%v), want %+v", got, ok, m)
	}
	if _, ok := decodeMessage([]byte{1, 2, 3}); ok {
		t.Error("truncated message accepted")
	}
}
