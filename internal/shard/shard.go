// Package shard implements sharded share-nothing inference (ROADMAP item
// 3): the ground factor graph is partitioned by pyramid subtree into N
// shards, each owning its variables, its own subgraph with a private
// compiled-kernel slab, and its own spatial sampler. Factors crossing a
// shard boundary are kept on both sides; the remote endpoints join each
// shard's subgraph as evidence-frozen *halo* variables whose assignment
// values are refreshed at every epoch barrier by a halo exchange of sparse
// deltas over a Transport — an in-process channel transport for N "nodes"
// in one binary, or a length-prefixed CRC-framed TCP transport.
//
// Partition rule. Each located query atom already has a home pyramid cell
// (gibbs.Spatial.HomeCell); its *subtree* is the home cell's ancestor at
// level SubtreeLevel (default 2, the minimum swept level, giving up to 16
// subtrees). Subtrees are ordered by (conclique, Y, X) — the conclique
// ordering spreads same-colour subtrees across shards — and dealt
// round-robin to the N shards; atoms without a home cell (no location, or
// a home above the swept range) are dealt round-robin by variable order.
// Evidence variables belong to no shard: they are static and replicate
// into every subgraph that needs them.
//
// Barrier protocol. All shards run the same epoch count in lockstep: after
// each epoch, every shard sends one halo frame per neighbouring shard
// (the changed boundary-variable values of all K instances, as a sparse
// index/value delta — the same touched-list idea the pool's count-delta
// merge uses) and blocks until it has received the same epoch's frame from
// every neighbour, then resumes sampling against the frozen halo copies.
// Because a shard cannot start epoch e+1 before finishing the epoch-e
// barrier, at most two epochs' frames are ever in flight; early frames are
// stashed and replayed.
//
// Failure semantics. A transport error, a halo frame that fails CRC or
// domain validation, an epoch-stamp mismatch (e.g. shards resumed from
// inconsistent checkpoints), or a barrier timeout (ExchangeTimeout) aborts
// the run with an error naming the shard; the coordinator then cancels the
// remaining shards and returns the first error. Cancellation of the run
// context is not an error: each shard stops at its next chunk boundary and
// partial marginals remain readable, like the single-process samplers.
package shard

import (
	"fmt"
	"sort"

	"repro/internal/conclique"
	"repro/internal/factorgraph"
	"repro/internal/geom"
	"repro/internal/gibbs"
	"repro/internal/index/pyramid"
)

// Plan is the deterministic shard assignment of one ground graph: a pure
// function of (graph, options), so every process of a distributed group
// computes the same plan independently.
type Plan struct {
	// Owner maps each full-graph variable to its owning shard, or -1 for
	// evidence variables (static, owned by nobody).
	Owner []int
	// Space is the global pyramid bounding space every shard's sampler
	// shares, so cell geometry — and with it the conclique schedule — is
	// consistent across shards.
	Space geom.Rect
	// Subtrees counts the distinct pyramid subtrees the partition dealt.
	Subtrees int
	// Shards is N.
	Shards int
}

// Partition computes the pyramid-subtree shard assignment. A probe spatial
// sampler supplies each atom's home cell (the same schedule the per-shard
// samplers will build); the probe is discarded before sampling starts.
func Partition(g *factorgraph.Graph, opts Options) (*Plan, error) {
	opts = opts.withDefaults()
	plan := &Plan{Owner: make([]int, g.NumVars()), Shards: opts.Shards}

	var query []factorgraph.VarID
	first := true
	for i := 0; i < g.NumVars(); i++ {
		v := factorgraph.VarID(i)
		meta := g.Var(v)
		if meta.Evidence != factorgraph.NoEvidence {
			plan.Owner[v] = -1
			continue
		}
		query = append(query, v)
		if meta.HasLoc {
			b := meta.Loc.Bounds()
			if first {
				plan.Space, first = b, false
			} else {
				plan.Space = plan.Space.Union(b)
			}
		}
	}
	if !first {
		// The same padding NewSpatial applies, so probe and shard pyramids
		// address cells identically.
		pad := 1e-9 + 0.001*(plan.Space.Width()+plan.Space.Height())
		plan.Space = plan.Space.Expand(pad)
	}

	probe, err := gibbs.NewSpatial(g, gibbs.SpatialOptions{
		Levels:        opts.Levels,
		LocalityLevel: opts.LocalityLevel,
		Capacity:      opts.Capacity,
		Instances:     1,
		Workers:       1,
		Space:         plan.Space,
		NoKernels:     true, // schedule only; never samples
	})
	if err != nil {
		return nil, fmt.Errorf("shard: partition probe: %w", err)
	}
	defer probe.Close()

	// Group scheduled atoms by subtree; unplaced atoms go to the tail.
	bySubtree := map[pyramid.CellKey][]factorgraph.VarID{}
	var tail []factorgraph.VarID
	for _, v := range query {
		home, ok := probe.HomeCell(v)
		if !ok {
			tail = append(tail, v)
			continue
		}
		sub := home
		if home.Level > opts.SubtreeLevel {
			shift := home.Level - opts.SubtreeLevel
			sub = pyramid.CellKey{Level: opts.SubtreeLevel, X: home.X >> shift, Y: home.Y >> shift}
		}
		bySubtree[sub] = append(bySubtree[sub], v)
	}

	// Deal subtrees round-robin in (conclique, Y, X) order: consecutive
	// subtrees land on different shards, and same-conclique subtrees spread
	// evenly so every shard's serial conclique groups stay loaded.
	subtrees := make([]pyramid.CellKey, 0, len(bySubtree))
	for k := range bySubtree {
		subtrees = append(subtrees, k)
	}
	sort.Slice(subtrees, func(i, j int) bool {
		qi, qj := conclique.Of(subtrees[i]), conclique.Of(subtrees[j])
		if qi != qj {
			return qi < qj
		}
		if subtrees[i].Y != subtrees[j].Y {
			return subtrees[i].Y < subtrees[j].Y
		}
		if subtrees[i].X != subtrees[j].X {
			return subtrees[i].X < subtrees[j].X
		}
		return subtrees[i].Level < subtrees[j].Level
	})
	plan.Subtrees = len(subtrees)
	for i, k := range subtrees {
		shard := i % opts.Shards
		for _, v := range bySubtree[k] {
			plan.Owner[v] = shard
		}
	}
	for i, v := range tail {
		plan.Owner[v] = i % opts.Shards
	}
	return plan, nil
}

// subgraph is one shard's materialized share: its interior variables (in
// ascending full-graph order, occupying local ids 0..len-1), every factor
// touching them, and the frozen boundary shell — evidence variables plus
// halo variables owned by other shards.
type subgraph struct {
	g        *factorgraph.Graph
	interior []factorgraph.VarID                     // global ids, local id = index
	boundary []factorgraph.VarID                     // global ids, after interior
	localID  map[factorgraph.VarID]factorgraph.VarID // global → local
}

// buildSubgraph materializes shard `id`'s subgraph. Boundary variables
// freeze as evidence at init (the full graph's initial assignment), so a
// fresh group starts from exactly the global initial chain state; the halo
// exchange overwrites the halo copies' assignment values from epoch 1 on.
func buildSubgraph(g *factorgraph.Graph, plan *Plan, id int, init factorgraph.Assignment) (*subgraph, error) {
	var interior []factorgraph.VarID
	for v, owner := range plan.Owner {
		if owner == id {
			interior = append(interior, factorgraph.VarID(v))
		}
	}
	in := make(map[factorgraph.VarID]bool, len(interior))
	for _, v := range interior {
		in[v] = true
	}

	factorSet := map[int32]bool{}
	spatialSet := map[int32]bool{}
	boundarySet := map[factorgraph.VarID]bool{}
	for _, v := range interior {
		for _, f := range g.VarLogicalFactors(v) {
			factorSet[f] = true
		}
		for _, sp := range g.VarSpatialPairs(v) {
			spatialSet[sp] = true
		}
	}
	factors := sortedInt32(factorSet)
	spatials := sortedInt32(spatialSet)
	for _, f := range factors {
		vars, _ := g.FactorVars(f)
		for _, u := range vars {
			if !in[u] {
				boundarySet[u] = true
			}
		}
	}
	for _, sp := range spatials {
		a, b, _ := g.SpatialPair(sp)
		if !in[a] {
			boundarySet[a] = true
		}
		if !in[b] {
			boundarySet[b] = true
		}
	}
	boundary := make([]factorgraph.VarID, 0, len(boundarySet))
	for v := range boundarySet {
		boundary = append(boundary, v)
	}
	sort.Slice(boundary, func(i, j int) bool { return boundary[i] < boundary[j] })

	b := factorgraph.NewBuilder()
	seenRel := map[int32]bool{}
	addMask := func(v factorgraph.VarID) error {
		rel := g.Var(v).Relation
		if seenRel[rel] {
			return nil
		}
		seenRel[rel] = true
		if mask, h := g.AllowedPairMask(rel); mask != nil {
			return b.SetAllowedPairs(rel, h, mask)
		}
		return nil
	}
	localID := make(map[factorgraph.VarID]factorgraph.VarID, len(interior)+len(boundary))
	for _, v := range interior {
		if err := addMask(v); err != nil {
			return nil, err
		}
		lid, err := b.AddVariable(g.Var(v))
		if err != nil {
			return nil, err
		}
		localID[v] = lid
	}
	for _, v := range boundary {
		if err := addMask(v); err != nil {
			return nil, err
		}
		meta := g.Var(v)
		if meta.Evidence == factorgraph.NoEvidence {
			meta.Evidence = init[v] // halo variable: frozen at the global initial state
		}
		lid, err := b.AddVariable(meta)
		if err != nil {
			return nil, err
		}
		localID[v] = lid
	}
	for _, f := range factors {
		vars, neg := g.FactorVars(f)
		lvars := make([]factorgraph.VarID, len(vars))
		for i, u := range vars {
			lvars[i] = localID[u]
		}
		lneg := append([]bool(nil), neg...)
		if err := b.AddFactor(g.FactorKindOf(f), g.FactorWeightOf(f), lvars, lneg); err != nil {
			return nil, err
		}
	}
	pairs := make([]factorgraph.SpatialPair, 0, len(spatials))
	for _, sp := range spatials {
		a, bv, w := g.SpatialPair(sp)
		pairs = append(pairs, factorgraph.SpatialPair{A: localID[a], B: localID[bv], W: w})
	}
	if err := b.AddSpatialPairs(pairs); err != nil {
		return nil, err
	}
	sub, err := b.Finalize()
	if err != nil {
		return nil, err
	}
	return &subgraph{g: sub, interior: interior, boundary: boundary, localID: localID}, nil
}

// sortedInt32 flattens a set into an ascending slice.
func sortedInt32(set map[int32]bool) []int32 {
	out := make([]int32, 0, len(set))
	for x := range set {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
