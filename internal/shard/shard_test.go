package shard

import (
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/factorgraph"
	"repro/internal/gibbs"
	"repro/internal/gibbs/testutil"
	"repro/internal/obs"
)

// tvTol mirrors the gibbs harness tolerance: with the epoch budgets below,
// sampling noise keeps the worst per-variable TV distance well under it.
const tvTol = 0.04

func mustGraph(t testing.TB, spec testutil.Spec) *factorgraph.Graph {
	t.Helper()
	g, err := testutil.RandomGraph(spec)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testOptions(shards int) Options {
	return Options{
		Shards:    shards,
		Levels:    4,
		Instances: 2,
		Workers:   1,
		Seed:      17,
	}
}

// TestShardedMatchesExactOnShapes is the tentpole's statistical harness:
// sharded inference with halo exchange against exact marginals on the four
// canonical graph shapes, for 1, 2 and 4 shards. Passing for every shard
// count is simultaneously the shard-count invariance check — all counts
// land within tolerance of the same exact distribution.
func TestShardedMatchesExactOnShapes(t *testing.T) {
	for _, shape := range testutil.Shapes(910) {
		shape := shape
		t.Run(shape.Name, func(t *testing.T) {
			g := mustGraph(t, shape.Spec)
			exact, err := testutil.Exact(g)
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{1, 2, 4} {
				gr, err := New(g, testOptions(shards))
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				if _, err := gr.Run(context.Background(), 25000); err != nil {
					gr.Close()
					t.Fatalf("shards=%d: %v", shards, err)
				}
				m := gr.Marginals()
				gr.Close()
				if d := testutil.MaxTV(m, exact); d > tvTol {
					t.Errorf("shards=%d: max TV distance %.4f > %.2f", shards, d, tvTol)
				}
			}
		})
	}
}

// TestPartitionDeterministicAndComplete pins the plan contract: a pure
// function of (graph, options) assigning every query variable to exactly
// one shard and every evidence variable to none.
func TestPartitionDeterministicAndComplete(t *testing.T) {
	g := mustGraph(t, testutil.Spec{Vars: 40, Domain: 2, Spatial: true, Seed: 31})
	opts := testOptions(3)
	a, err := Partition(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two partitions of the same graph differ")
	}
	seen := make([]int, opts.Shards)
	for i := 0; i < g.NumVars(); i++ {
		meta := g.Var(factorgraph.VarID(i))
		owner := a.Owner[i]
		if meta.Evidence != factorgraph.NoEvidence {
			if owner != -1 {
				t.Errorf("evidence var %d owned by shard %d", i, owner)
			}
			continue
		}
		if owner < 0 || owner >= opts.Shards {
			t.Errorf("query var %d owned by %d, want 0..%d", i, owner, opts.Shards-1)
			continue
		}
		seen[owner]++
	}
	if a.Subtrees < 2 {
		t.Fatalf("test premise broken: %d subtrees", a.Subtrees)
	}
}

// TestShardedExchangeMetrics checks the per-shard observability series and
// the aggregate ExchangeStats: a 2-shard run over a connected spatial graph
// must move halo bytes and hold boundary variables on both sides.
func TestShardedExchangeMetrics(t *testing.T) {
	g := mustGraph(t, testutil.Spec{Vars: 30, Domain: 2, Spatial: true, SpatialPairs: 60, Seed: 57})
	opts := testOptions(2)
	opts.Metrics = obs.NewRegistry()
	gr, err := New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer gr.Close()
	if _, err := gr.Run(context.Background(), 200); err != nil {
		t.Fatal(err)
	}
	st := gr.ExchangeStats()
	if st.BoundaryVars == 0 {
		t.Fatal("test premise broken: no boundary variables — partition did not cut the graph")
	}
	if st.Bytes == 0 {
		t.Error("no halo bytes exchanged")
	}
	if st.Seconds <= 0 {
		t.Error("no exchange time recorded")
	}
	snap := opts.Metrics.Snapshot()
	var bytesTotal float64
	var boundary float64
	for key, v := range snap {
		if strings.HasPrefix(key, "sya_shard_exchange_bytes") {
			bytesTotal += v
		}
		if strings.HasPrefix(key, "sya_shard_boundary_vars") {
			boundary += v
		}
	}
	if int64(bytesTotal) != st.Bytes {
		t.Errorf("metric bytes %v != ExchangeStats.Bytes %d", bytesTotal, st.Bytes)
	}
	if int(boundary) != st.BoundaryVars {
		t.Errorf("metric boundary vars %v != ExchangeStats.BoundaryVars %d", boundary, st.BoundaryVars)
	}
}

// TestShardedCheckpointResume: a sharded run checkpoints per shard and a
// fresh group resumes every shard to the same epoch; a missing shard file
// (inconsistent generation) fails construction with a diagnostic.
func TestShardedCheckpointResume(t *testing.T) {
	g := mustGraph(t, testutil.Spec{Vars: 20, Domain: 2, Spatial: true, Seed: 71})
	dir := t.TempDir()
	opts := testOptions(2)
	opts.CheckpointPath = filepath.Join(dir, "ckpt")
	opts.CheckpointEvery = 10

	gr, err := New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gr.Run(context.Background(), 200); err != nil {
		gr.Close()
		t.Fatal(err)
	}
	want := gr.Epochs()
	wantM := gr.Marginals()
	gr.Close()
	if want == 0 {
		t.Fatal("no epochs ran")
	}

	// Resume: both shards come back at the checkpointed epoch and the
	// restored counters reproduce the marginals.
	gr2, err := New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	got := gr2.Epochs()
	if got == 0 || got > want {
		t.Errorf("resumed at epoch %d, want in (0, %d]", got, want)
	}
	if _, err := gr2.Run(context.Background(), 2); err != nil {
		gr2.Close()
		t.Fatal(err)
	}
	m2 := gr2.Marginals()
	gr2.Close()
	if d := testutil.MaxTV(m2, wantM); d > tvTol {
		t.Errorf("resumed marginals diverged by %.4f", d)
	}

	// Torn generation: shard 1's file gone, shard 0 resumed → epochs differ.
	if err := testutil.TearFile(shardCheckpointPath(opts.CheckpointPath, 1)); err != nil {
		t.Fatal(err)
	}
	// A torn file fails shard 1's resume outright; that is also an
	// acceptable (and named) failure. Remove it for the generation check.
	if _, err := New(g, opts); err == nil {
		t.Error("New succeeded with a torn shard checkpoint")
	}
}

// TestShardedRunCancel: cancelling the run context stops every shard
// without an error, and partial marginals stay readable.
func TestShardedRunCancel(t *testing.T) {
	defer testutil.GoroutineLeakCheck(t)()
	g := mustGraph(t, testutil.Spec{Vars: 24, Domain: 2, Spatial: true, Seed: 83})
	gr, err := New(g, testOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	defer gr.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := gr.Run(ctx, 10000)
	if err != nil {
		t.Fatalf("cancelled run errored: %v", err)
	}
	if st.Reason != gibbs.ReasonCanceled {
		t.Errorf("Reason = %v, want ReasonCanceled", st.Reason)
	}
	m := gr.Marginals()
	if len(m) != g.NumVars() {
		t.Fatalf("marginals over %d vars, want %d", len(m), g.NumVars())
	}
}

// TestShardedGroupNoGoroutineLeak: construct, run, close — the pools and
// transports all unwind.
func TestShardedGroupNoGoroutineLeak(t *testing.T) {
	defer testutil.GoroutineLeakCheck(t)()
	g := mustGraph(t, testutil.Spec{Vars: 16, Domain: 2, Spatial: true, Seed: 97})
	gr, err := New(g, testOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gr.Run(context.Background(), 100); err != nil {
		t.Error(err)
	}
	gr.Close()
	gr.Close() // idempotent
}
