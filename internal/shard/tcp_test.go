package shard

import (
	"context"
	"encoding/binary"
	"hash/crc32"
	"net"
	"regexp"
	"testing"
	"time"

	"repro/internal/gibbs/testutil"
)

// newTCPGroup binds n TCP transports on loopback ephemeral ports. The addrs
// slice is shared and filled in as listeners bind (dialing is lazy, on
// first Send, by which time every address is final).
func newTCPGroup(t testing.TB, n int) []Transport {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	out := make([]Transport, n)
	for i := 0; i < n; i++ {
		tr, err := NewTCPTransport(i, addrs)
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = tr.Addr()
		out[i] = tr
	}
	return out
}

func TestTCPTransportRoundtrip(t *testing.T) {
	trs := newTCPGroup(t, 2)
	defer trs[0].Close()
	defer trs[1].Close()
	ctx := context.Background()
	want := Message{Kind: MsgHalo, From: 0, Epoch: 7, Payload: []byte{1, 2, 3, 4}}
	if err := trs[0].Send(ctx, 1, want); err != nil {
		t.Fatal(err)
	}
	rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	got, err := trs[1].Recv(rctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != want.Kind || got.From != want.From || got.Epoch != want.Epoch ||
		string(got.Payload) != string(want.Payload) {
		t.Fatalf("received %+v, want %+v", got, want)
	}
}

// TestTCPDialRetryBackoff: the peer's listener comes up after the first
// Send attempt; the dialer retries with backoff until it appears.
func TestTCPDialRetryBackoff(t *testing.T) {
	// Reserve a port for the late peer, then free it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lateAddr := ln.Addr().String()
	ln.Close()

	addrs := []string{"127.0.0.1:0", lateAddr}
	t0, err := NewTCPTransport(0, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()
	addrs[0] = t0.Addr()

	late := make(chan *TCPTransport, 1)
	go func() {
		time.Sleep(150 * time.Millisecond)
		t1, err := NewTCPTransport(1, addrs)
		if err != nil {
			t.Error(err)
			late <- nil
			return
		}
		late <- t1
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := t0.Send(ctx, 1, Message{Kind: MsgHalo, From: 0, Epoch: 1}); err != nil {
		t.Fatalf("send never reached the late listener: %v", err)
	}
	t1 := <-late
	if t1 == nil {
		return
	}
	defer t1.Close()
	if m, err := t1.Recv(ctx); err != nil || m.Epoch != 1 {
		t.Fatalf("Recv = %+v, %v", m, err)
	}
}

// TestTCPCorruptFrameClosesConnection: a frame failing CRC never reaches
// the inbox, and the reader drops the connection so the corruption is not
// silently skipped.
func TestTCPCorruptFrameClosesConnection(t *testing.T) {
	trs := newTCPGroup(t, 2)
	defer trs[0].Close()
	defer trs[1].Close()
	tr := trs[1].(*TCPTransport)

	c, err := net.Dial("tcp", tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], tcpMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], tcpVersion)
	if _, err := c.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	payload := encodeMessage(Message{Kind: MsgHalo, From: 0, Epoch: 9})
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload)^0xdeadbeef)
	copy(frame[8:], payload)
	if _, err := c.Write(frame); err != nil {
		t.Fatal(err)
	}
	// The reader must close the connection on the CRC failure...
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Error("connection still open after corrupt frame")
	}
	// ...and nothing reaches the inbox.
	rctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if m, err := trs[1].Recv(rctx); err == nil {
		t.Errorf("corrupt frame delivered: %+v", m)
	}
}

// TestTCPGroupMatchesLocalBitIdentical: the transport carries state, it
// does not touch the chains — a 2-shard group over TCP produces exactly
// the marginals of the same group over in-process channels.
func TestTCPGroupMatchesLocalBitIdentical(t *testing.T) {
	g := mustGraph(t, testutil.Spec{Vars: 24, Domain: 2, Spatial: true, Seed: 45})
	run := func(trs []Transport) [][]float64 {
		opts := testOptions(2)
		opts.Transports = trs
		gr, err := New(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer gr.Close()
		if _, err := gr.Run(context.Background(), 400); err != nil {
			t.Fatal(err)
		}
		return gr.Marginals()
	}
	local := run(NewLocalTransports(2))
	tcp := run(newTCPGroup(t, 2))
	for v := range local {
		for x := range local[v] {
			if local[v][x] != tcp[v][x] {
				t.Fatalf("marginal[%d][%d]: local %v, tcp %v — transports are not chain-transparent",
					v, x, local[v][x], tcp[v][x])
			}
		}
	}
}

// TestTCPTornConnectionMidEpoch is the failure-semantics test: one TCP
// shard dies mid-run, the surviving coordinator returns an error naming
// the dead shard, and nothing leaks.
func TestTCPTornConnectionMidEpoch(t *testing.T) {
	defer testutil.GoroutineLeakCheck(t)()
	g := mustGraph(t, testutil.Spec{Vars: 24, Domain: 2, Spatial: true, SpatialPairs: 48, Seed: 59})
	trs := newTCPGroup(t, 2)
	opts := testOptions(2)
	opts.Transports = trs
	opts.ExchangeTimeout = 2 * time.Second
	gr, err := New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer gr.Close()
	if gr.ExchangeStats().BoundaryVars == 0 {
		t.Fatal("test premise broken: shards are not neighbours")
	}

	errc := make(chan error, 1)
	go func() {
		_, err := gr.Run(context.Background(), 1<<20)
		errc <- err
	}()
	time.Sleep(100 * time.Millisecond)
	trs[1].Close() // shard 1's process "dies" mid-epoch

	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("run survived a torn shard connection")
		}
		if !regexp.MustCompile(`shard(\(s\))? \[?1\]?`).MatchString(err.Error()) {
			t.Errorf("error does not name the dead shard: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not fail after tearing shard 1's transport")
	}
}
