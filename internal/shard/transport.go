package shard

import (
	"context"
	"fmt"
	"sync"
)

// MsgKind discriminates shard-protocol messages.
type MsgKind uint8

// Message kinds.
const (
	// MsgHalo carries one epoch's boundary-variable delta between two
	// neighbouring shards.
	MsgHalo MsgKind = 1
	// MsgCounts carries a shard's interior marginal counts to the
	// coordinator (shard 0) after a run.
	MsgCounts MsgKind = 2
)

// Message is one framed shard-protocol message.
type Message struct {
	Kind    MsgKind
	From    int
	Epoch   uint64
	Payload []byte
}

// Transport moves messages between the shards of one group. Each shard
// holds one Transport; Send addresses peers by shard id and Recv returns
// messages addressed to this shard, in arrival order. A group uses one
// sending goroutine per shard, so implementations need not optimize for
// concurrent Send — but must tolerate it. Close is idempotent and unblocks
// pending Recv calls with an error.
type Transport interface {
	Send(ctx context.Context, to int, m Message) error
	Recv(ctx context.Context) (Message, error)
	Close() error
}

// errTransportClosed reports an operation on (or to) a closed transport.
type errTransportClosed struct{ shard int }

func (e errTransportClosed) Error() string {
	return fmt.Sprintf("transport of shard %d closed", e.shard)
}

// localHub is the shared state of an in-process transport group: one
// buffered inbox per shard. Capacity 4N covers the at-most-two-epochs of
// halo frames in flight plus the final counts frames without ever blocking
// a sender.
type localHub struct {
	inbox []chan Message
	done  []chan struct{}
	once  []sync.Once
}

// localTransport is one shard's endpoint of a localHub.
type localTransport struct {
	hub *localHub
	id  int
}

// NewLocalTransports returns n connected in-process transports — N "nodes"
// in one binary, exchanging halos over buffered channels. Transport i
// belongs to shard i.
func NewLocalTransports(n int) []Transport {
	hub := &localHub{
		inbox: make([]chan Message, n),
		done:  make([]chan struct{}, n),
		once:  make([]sync.Once, n),
	}
	for i := range hub.inbox {
		hub.inbox[i] = make(chan Message, 4*n)
		hub.done[i] = make(chan struct{})
	}
	out := make([]Transport, n)
	for i := range out {
		out[i] = &localTransport{hub: hub, id: i}
	}
	return out
}

func (t *localTransport) Send(ctx context.Context, to int, m Message) error {
	if to < 0 || to >= len(t.hub.inbox) {
		return fmt.Errorf("no shard %d", to)
	}
	select {
	case <-t.hub.done[t.id]:
		return errTransportClosed{t.id}
	case <-t.hub.done[to]:
		return errTransportClosed{to}
	default:
	}
	select {
	case t.hub.inbox[to] <- m:
		return nil
	case <-t.hub.done[t.id]:
		return errTransportClosed{t.id}
	case <-t.hub.done[to]:
		return errTransportClosed{to}
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (t *localTransport) Recv(ctx context.Context) (Message, error) {
	// Drain buffered messages before honouring close/cancel, so frames
	// delivered just before a shutdown are not lost.
	select {
	case m := <-t.hub.inbox[t.id]:
		return m, nil
	default:
	}
	select {
	case m := <-t.hub.inbox[t.id]:
		return m, nil
	case <-t.hub.done[t.id]:
		return Message{}, errTransportClosed{t.id}
	case <-ctx.Done():
		return Message{}, ctx.Err()
	}
}

func (t *localTransport) Close() error {
	t.hub.once[t.id].Do(func() { close(t.hub.done[t.id]) })
	return nil
}
