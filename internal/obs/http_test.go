package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServeExposesMetricsExpvarAndPprof(t *testing.T) {
	r := NewRegistry()
	r.Counter("sya_epochs_total").Add(3)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "sya_epochs_total 3") {
		t.Errorf("/metrics = %d %q", code, body)
	}

	code, body = get(t, base+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars = %d", code)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	snap, ok := vars["sya_metrics"].(map[string]any)
	if !ok || snap["sya_epochs_total"] != float64(3) {
		t.Errorf("sya_metrics expvar = %v", vars["sya_metrics"])
	}

	code, body = get(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d", code)
	}
}

func TestServeSecondServerSwapsSnapshotRegistry(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("a").Inc()
	s1, err := Serve("127.0.0.1:0", r1)
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()

	r2 := NewRegistry()
	r2.Counter("b").Add(2)
	s2, err := Serve("127.0.0.1:0", r2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	_, body := get(t, "http://"+s2.Addr+"/debug/vars")
	if !strings.Contains(body, `"b"`) || strings.Contains(body, `"a"`) {
		t.Errorf("expvar snapshot did not swap to the latest registry: %s", body)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.0.0.1:bogus", NewRegistry()); err == nil {
		t.Error("expected listen error")
	}
}
