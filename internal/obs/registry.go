// Package obs is the pipeline's observability layer: a zero-dependency,
// stdlib-only metrics registry (counters, gauges, histograms), a structured
// JSONL phase trace, and an HTTP exposition endpoint (Prometheus text,
// expvar, pprof).
//
// The design optimizes for a disabled-by-default hot path: every metric
// handle is nil-safe — a nil *Registry hands out nil *Counter/*Gauge/
// *Histogram values whose methods are single-branch no-ops — so call sites
// can record unconditionally and the uninstrumented sampler epoch pays one
// predictable nil check per record, a few nanoseconds in total. Enabled
// counters are one padded atomic add; no locks, no allocation, no
// formatting until an exposition request renders the registry.
//
// Instrumented code never samples inside the inner Gibbs loop: chunk-level
// events ride the worker pool's existing hook seam and epoch-level events
// are recorded at barriers, so per-sample cost is untouched either way.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The value is padded out to
// a cache line so counters laid out contiguously (or next to other hot
// state) do not false-share under concurrent writers — the chunk counter is
// bumped by every pool worker.
//
// All methods are safe on a nil receiver (no-ops), which is the disabled
// fast path.
type Counter struct {
	v atomic.Uint64
	_ [56]byte // pad to 64 bytes against false sharing
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64 metric (last-write-wins). Nil-safe like
// Counter.
type Gauge struct {
	bits atomic.Uint64
	_    [56]byte
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value reads the gauge (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-boundary cumulative histogram in the Prometheus
// style: counts[i] tallies observations ≤ bounds[i], with one overflow
// bucket, plus a running sum and total count. Observation is lock-free
// (binary search over the boundaries + two atomic adds + a CAS loop for the
// float sum) and allocation-free. Nil-safe like Counter.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1, last = +Inf overflow
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// DurationBuckets are the default boundaries (seconds) for latency
// histograms: 1µs to 1min in decade steps with midpoints, covering both a
// ~µs chunk merge and a multi-second checkpoint fsync.
var DurationBuckets = []float64{
	1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3,
	1e-2, 5e-2, 0.1, 0.5, 1, 5, 10, 60,
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Lower-bound binary search: first boundary ≥ v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reads the total observation count (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reads the running observation sum (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Registry is a named-metric table. Registration (Counter/Gauge/Histogram)
// is idempotent — the same name returns the same handle — and guarded by a
// mutex; handles are resolved once at wiring time, never on the hot path.
// A nil *Registry is the disabled mode: it hands out nil handles.
//
// A Registry is a view over shared state: With(k, v, ...) derives a view
// whose metrics carry extra labels, so several live Systems can share one
// exposition endpoint with per-System series (e.g. sya_epochs_total vs
// sya_epochs_total{system="gwdb"}). All views registered through any
// derived Registry render through the root's WritePrometheus/Snapshot.
type Registry struct {
	st     *regState
	labels string // rendered label pairs `k="v",...`, "" for the root view
}

// regState is the label-shared metric table behind one or more Registry
// views. Series are keyed by family name plus rendered labels.
type regState struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
	meta   map[string]seriesMeta // series key -> family + labels

	// hookMu guards the scrape hooks separately from mu: hooks run before
	// an exposition takes mu (they typically Set gauges, which needs it).
	hookMu      sync.Mutex
	hooks       []func()
	runtimeDone bool
}

// seriesMeta splits a series key back into its family name and label pairs
// for format-correct exposition (TYPE lines are per family, histogram
// bucket labels merge with the view labels).
type seriesMeta struct {
	family string
	labels string
}

// NewRegistry creates an empty registry (the unlabeled root view).
func NewRegistry() *Registry {
	return &Registry{st: &regState{
		counts: map[string]*Counter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*Histogram{},
		meta:   map[string]seriesMeta{},
	}}
}

// With derives a labeled view sharing this registry's state: metrics
// registered through the view get the extra key/value label pairs appended
// to any labels the view already carries. kv must alternate key, value; a
// trailing odd key is ignored. Nil registry → nil view (still no-op).
func (r *Registry) With(kv ...string) *Registry {
	if r == nil {
		return nil
	}
	labels := r.labels
	for i := 0; i+1 < len(kv); i += 2 {
		pair := kv[i] + "=\"" + escapeLabelValue(kv[i+1]) + "\""
		if labels == "" {
			labels = pair
		} else {
			labels += "," + pair
		}
	}
	return &Registry{st: r.st, labels: labels}
}

// escapeLabelValue escapes a label value per the Prometheus text exposition
// format: backslash, double-quote and newline, nothing else (Go's %q would
// emit \x/\u escapes the format does not define).
func escapeLabelValue(v string) string {
	for i := 0; i < len(v); i++ {
		if c := v[i]; c == '\\' || c == '"' || c == '\n' {
			out := make([]byte, 0, len(v)+4)
			for j := 0; j < len(v); j++ {
				switch v[j] {
				case '\\':
					out = append(out, '\\', '\\')
				case '"':
					out = append(out, '\\', '"')
				case '\n':
					out = append(out, '\\', 'n')
				default:
					out = append(out, v[j])
				}
			}
			return string(out)
		}
	}
	return v
}

// formatValue renders a sample value per the exposition format: the
// shortest float representation, with the spec's spellings for the
// non-finite values ("+Inf", "-Inf", "NaN").
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// OnScrape registers fn to run at the start of every exposition
// (WritePrometheus and Snapshot) — the hook point for gauges that sample
// process state (runtime health) at scrape time rather than continuously.
func (r *Registry) OnScrape(fn func()) {
	if r == nil || fn == nil {
		return
	}
	r.st.hookMu.Lock()
	r.st.hooks = append(r.st.hooks, fn)
	r.st.hookMu.Unlock()
}

// runScrapeHooks invokes the registered scrape hooks. It must be called
// before taking st.mu: hooks Set gauges, which acquires it.
func (r *Registry) runScrapeHooks() {
	r.st.hookMu.Lock()
	hooks := r.st.hooks
	r.st.hookMu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

// seriesKey renders the storage key for a family under this view's labels.
func (r *Registry) seriesKey(name string) string {
	if r.labels == "" {
		return name
	}
	return name + "{" + r.labels + "}"
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	key := r.seriesKey(name)
	r.st.mu.Lock()
	defer r.st.mu.Unlock()
	c, ok := r.st.counts[key]
	if !ok {
		c = new(Counter)
		r.st.counts[key] = c
		r.st.meta[key] = seriesMeta{family: name, labels: r.labels}
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil registry →
// nil handle.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	key := r.seriesKey(name)
	r.st.mu.Lock()
	defer r.st.mu.Unlock()
	g, ok := r.st.gauges[key]
	if !ok {
		g = new(Gauge)
		r.st.gauges[key] = g
		r.st.meta[key] = seriesMeta{family: name, labels: r.labels}
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// boundaries on first use (later calls ignore bounds; nil bounds selects
// DurationBuckets). Nil registry → nil handle.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	key := r.seriesKey(name)
	r.st.mu.Lock()
	defer r.st.mu.Unlock()
	h, ok := r.st.hists[key]
	if !ok {
		if bounds == nil {
			bounds = DurationBuckets
		}
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Uint64, len(bounds)+1),
		}
		r.st.hists[key] = h
		r.st.meta[key] = seriesMeta{family: name, labels: r.labels}
	}
	return h
}

// familyOrder groups series keys by family for exposition: one TYPE line
// per family, label variants adjacent, everything in lexicographic order.
func (r *Registry) familyOrder(keys []string) [][]string {
	byFamily := map[string][]string{}
	for _, k := range keys {
		fam := r.st.meta[k].family
		byFamily[fam] = append(byFamily[fam], k)
	}
	fams := make([]string, 0, len(byFamily))
	for f := range byFamily {
		fams = append(fams, f)
	}
	sort.Strings(fams)
	out := make([][]string, 0, len(fams))
	for _, f := range fams {
		ks := byFamily[f]
		sort.Strings(ks)
		out = append(out, ks)
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one TYPE line per metric family, labeled series
// variants beneath it, cumulative histogram buckets with the canonical le
// labels, _sum and _count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.runScrapeHooks()
	st := r.st
	st.mu.Lock()
	defer st.mu.Unlock()
	keys := func(m map[string]*Counter) []string {
		out := make([]string, 0, len(m))
		for k := range m {
			out = append(out, k)
		}
		return out
	}
	for _, group := range r.familyOrder(keys(st.counts)) {
		fam := st.meta[group[0]].family
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", fam); err != nil {
			return err
		}
		for _, k := range group {
			if _, err := fmt.Fprintf(w, "%s %d\n", k, st.counts[k].Value()); err != nil {
				return err
			}
		}
	}
	gkeys := make([]string, 0, len(st.gauges))
	for k := range st.gauges {
		gkeys = append(gkeys, k)
	}
	for _, group := range r.familyOrder(gkeys) {
		fam := st.meta[group[0]].family
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", fam); err != nil {
			return err
		}
		for _, k := range group {
			if _, err := fmt.Fprintf(w, "%s %s\n", k, formatValue(st.gauges[k].Value())); err != nil {
				return err
			}
		}
	}
	hkeys := make([]string, 0, len(st.hists))
	for k := range st.hists {
		hkeys = append(hkeys, k)
	}
	for _, group := range r.familyOrder(hkeys) {
		fam := st.meta[group[0]].family
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", fam); err != nil {
			return err
		}
		for _, k := range group {
			h := st.hists[k]
			m := st.meta[k]
			// The le label merges with the view labels:
			// fam_bucket{system="x",le="0.1"}.
			series := func(suffix, extra string) string {
				labels := m.labels
				if extra != "" {
					if labels == "" {
						labels = extra
					} else {
						labels += "," + extra
					}
				}
				if labels == "" {
					return fam + suffix
				}
				return fam + suffix + "{" + labels + "}"
			}
			var cum uint64
			for i, b := range h.bounds {
				cum += h.counts[i].Load()
				if _, err := fmt.Fprintf(w, "%s %d\n", series("_bucket", `le="`+formatValue(b)+`"`), cum); err != nil {
					return err
				}
			}
			// _count is the +Inf cumulative count, by definition — rendering
			// h.Count() separately could disagree with the buckets within one
			// scrape (an Observe landing between the two reads).
			cum += h.counts[len(h.bounds)].Load()
			if _, err := fmt.Fprintf(w, "%s %d\n%s %s\n%s %d\n",
				series("_bucket", `le="+Inf"`), cum, series("_sum", ""), formatValue(h.Sum()), series("_count", ""), cum); err != nil {
				return err
			}
		}
	}
	return nil
}

// Snapshot returns a flat series→value view of the registry (histograms
// contribute _sum and _count entries; labeled series keep their rendered
// labels in the key); it backs the expvar exposition and test assertions.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	r.runScrapeHooks()
	st := r.st
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make(map[string]float64, len(st.counts)+len(st.gauges)+2*len(st.hists))
	for key, c := range st.counts {
		out[key] = float64(c.Value())
	}
	for key, g := range st.gauges {
		out[key] = g.Value()
	}
	for key, h := range st.hists {
		m := st.meta[key]
		suffixed := func(sfx string) string {
			if m.labels == "" {
				return m.family + sfx
			}
			return m.family + sfx + "{" + m.labels + "}"
		}
		out[suffixed("_sum")] = h.Sum()
		out[suffixed("_count")] = float64(h.Count())
	}
	return out
}

// Handler serves the registry as Prometheus text (the /metrics endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
