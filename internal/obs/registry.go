// Package obs is the pipeline's observability layer: a zero-dependency,
// stdlib-only metrics registry (counters, gauges, histograms), a structured
// JSONL phase trace, and an HTTP exposition endpoint (Prometheus text,
// expvar, pprof).
//
// The design optimizes for a disabled-by-default hot path: every metric
// handle is nil-safe — a nil *Registry hands out nil *Counter/*Gauge/
// *Histogram values whose methods are single-branch no-ops — so call sites
// can record unconditionally and the uninstrumented sampler epoch pays one
// predictable nil check per record, a few nanoseconds in total. Enabled
// counters are one padded atomic add; no locks, no allocation, no
// formatting until an exposition request renders the registry.
//
// Instrumented code never samples inside the inner Gibbs loop: chunk-level
// events ride the worker pool's existing hook seam and epoch-level events
// are recorded at barriers, so per-sample cost is untouched either way.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The value is padded out to
// a cache line so counters laid out contiguously (or next to other hot
// state) do not false-share under concurrent writers — the chunk counter is
// bumped by every pool worker.
//
// All methods are safe on a nil receiver (no-ops), which is the disabled
// fast path.
type Counter struct {
	v atomic.Uint64
	_ [56]byte // pad to 64 bytes against false sharing
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64 metric (last-write-wins). Nil-safe like
// Counter.
type Gauge struct {
	bits atomic.Uint64
	_    [56]byte
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value reads the gauge (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-boundary cumulative histogram in the Prometheus
// style: counts[i] tallies observations ≤ bounds[i], with one overflow
// bucket, plus a running sum and total count. Observation is lock-free
// (binary search over the boundaries + two atomic adds + a CAS loop for the
// float sum) and allocation-free. Nil-safe like Counter.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1, last = +Inf overflow
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// DurationBuckets are the default boundaries (seconds) for latency
// histograms: 1µs to 1min in decade steps with midpoints, covering both a
// ~µs chunk merge and a multi-second checkpoint fsync.
var DurationBuckets = []float64{
	1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3,
	1e-2, 5e-2, 0.1, 0.5, 1, 5, 10, 60,
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Lower-bound binary search: first boundary ≥ v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reads the total observation count (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reads the running observation sum (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Registry is a named-metric table. Registration (Counter/Gauge/Histogram)
// is idempotent — the same name returns the same handle — and guarded by a
// mutex; handles are resolved once at wiring time, never on the hot path.
// A nil *Registry is the disabled mode: it hands out nil handles.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: map[string]*Counter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = new(Counter)
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil registry →
// nil handle.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// boundaries on first use (later calls ignore bounds; nil bounds selects
// DurationBuckets). Nil registry → nil handle.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if bounds == nil {
			bounds = DurationBuckets
		}
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Uint64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// sortedKeys returns map keys in lexicographic order for stable exposition.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): TYPE lines, cumulative histogram buckets with the
// canonical le labels, _sum and _count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range sortedKeys(r.counts) {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, r.counts[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.gauges) {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %v\n", name, name, r.gauges[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		var cum uint64
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%v\"} %d\n", name, b, cum); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %v\n%s_count %d\n",
			name, cum, name, h.Sum(), name, h.Count()); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot returns a flat name→value view of the registry (histograms
// contribute _sum and _count entries); it backs the expvar exposition and
// test assertions.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.counts)+len(r.gauges)+2*len(r.hists))
	for name, c := range r.counts {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		out[name+"_sum"] = h.Sum()
		out[name+"_count"] = float64(h.Count())
	}
	return out
}

// Handler serves the registry as Prometheus text (the /metrics endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
