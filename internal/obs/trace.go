package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Trace is a structured JSONL event log covering the pipeline's phases:
// one JSON object per line with a milliseconds-since-start timestamp, a
// phase ("grounding", "learn", "inference", ...), an event name, and
// event-specific fields. Writes are buffered and mutex-serialized — spans
// are emitted at phase boundaries (per rule, per iteration, per epoch),
// never inside the inner sampling loop — and a nil *Trace is a no-op, so
// call sites emit unconditionally.
//
// The format is deliberately dumb: any JSONL consumer (jq, a spreadsheet
// import, a flame-chart script) can read it without a schema registry.
type Trace struct {
	mu    sync.Mutex
	w     *bufio.Writer
	c     io.Closer // non-nil when the trace owns the sink (OpenTrace)
	start time.Time
	err   error // first write error, latched

	// Size-based rotation (OpenTraceRotating): when the current file
	// exceeds limit bytes it is renamed to path+".1" (replacing any
	// previous generation) and a fresh file is started, so long runs hold
	// at most ~2×limit of trace on disk. Zero limit disables.
	path    string
	limit   int64
	written int64
}

// NewTrace wraps a writer. The caller keeps ownership of w; Close flushes
// but does not close it.
func NewTrace(w io.Writer) *Trace {
	return &Trace{w: bufio.NewWriter(w), start: time.Now()}
}

// OpenTrace creates (truncating) a trace file; Close flushes and closes it.
func OpenTrace(path string) (*Trace, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: opening trace: %w", err)
	}
	t := NewTrace(f)
	t.c = f
	return t, nil
}

// OpenTraceRotating is OpenTrace with size-based rotation: whenever the
// file grows past maxBytes, it rotates to path+".1" (one previous
// generation is kept) and a fresh file continues at path — so unbounded
// runs with per-epoch events can leave tracing on without unbounded disk
// growth. Every event is still written; rotation bounds retention, not
// emission, and the timestamp origin is preserved across rotations so
// t_ms stays comparable between generations. maxBytes <= 0 disables
// rotation (plain OpenTrace behaviour).
func OpenTraceRotating(path string, maxBytes int64) (*Trace, error) {
	t, err := OpenTrace(path)
	if err != nil {
		return nil, err
	}
	t.path = path
	t.limit = maxBytes
	return t, nil
}

// rotate swaps the current file to path+".1" and starts a fresh one.
// Caller holds t.mu.
func (t *Trace) rotate() {
	if err := t.w.Flush(); err != nil {
		if t.err == nil {
			t.err = err
		}
		return
	}
	if err := t.c.Close(); err != nil {
		if t.err == nil {
			t.err = err
		}
		return
	}
	t.c = nil
	if err := os.Rename(t.path, t.path+".1"); err != nil {
		if t.err == nil {
			t.err = err
		}
		return
	}
	f, err := os.Create(t.path)
	if err != nil {
		if t.err == nil {
			t.err = err
		}
		return
	}
	t.w = bufio.NewWriter(f)
	t.c = f
	t.written = 0
}

// Emit writes one event. kv lists alternating string keys and JSON-
// marshalable values; a trailing odd element or a non-string key is
// dropped rather than corrupting the line. Safe on nil.
func (t *Trace) Emit(phase, event string, kv ...any) {
	if t == nil {
		return
	}
	m := make(map[string]any, 3+len(kv)/2)
	m["t_ms"] = float64(time.Since(t.start).Microseconds()) / 1e3
	m["phase"] = phase
	m["event"] = event
	for i := 0; i+1 < len(kv); i += 2 {
		if k, ok := kv[i].(string); ok {
			m[k] = kv[i+1]
		}
	}
	b, err := json.Marshal(m)
	t.mu.Lock()
	defer t.mu.Unlock()
	if err != nil {
		if t.err == nil {
			t.err = err
		}
		return
	}
	if t.err != nil {
		return
	}
	if _, err := t.w.Write(b); err != nil {
		t.err = err
		return
	}
	if err := t.w.WriteByte('\n'); err != nil {
		t.err = err
		return
	}
	t.written += int64(len(b)) + 1
	if t.limit > 0 && t.written >= t.limit && t.c != nil {
		t.rotate()
	}
}

// Ms renders a duration as fractional milliseconds — the convention for
// trace duration fields.
func Ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }

// Err reports the first write/encode error (nil receiver → nil).
func (t *Trace) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close flushes buffered events (and closes the sink when the trace owns
// it). Safe on nil; returns the first error seen.
func (t *Trace) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	if t.c != nil {
		if err := t.c.Close(); err != nil && t.err == nil {
			t.err = err
		}
		t.c = nil
	}
	return t.err
}
