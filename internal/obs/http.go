package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Server is a live exposition endpoint: Prometheus-text /metrics for the
// registry, /debug/vars (expvar, including the registry snapshot under
// "sya_metrics"), and the full net/http/pprof suite under /debug/pprof/ —
// so a long sampling run can be profiled and watched without stopping it.
type Server struct {
	// Addr is the bound listen address (resolves ":0" requests).
	Addr string
	srv  *http.Server
	ln   net.Listener
}

// publishOnce guards the process-global expvar name (expvar.Publish panics
// on duplicates; tests open several servers).
var publishOnce sync.Once

// snapshotVar holds the registry the expvar "sya_metrics" Func reads; it is
// swapped when a new server starts so the latest registry wins.
var (
	snapshotMu  sync.Mutex
	snapshotReg *Registry
)

// Serve starts an HTTP exposition server on addr for the registry. addr may
// end in ":0" to pick a free port; the resolved address is in Server.Addr.
// The server runs until Close.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	snapshotMu.Lock()
	snapshotReg = r
	snapshotMu.Unlock()
	// Every exposition endpoint carries the process-health gauges.
	RegisterRuntimeMetrics(r)
	publishOnce.Do(func() {
		expvar.Publish("sya_metrics", expvar.Func(func() any {
			snapshotMu.Lock()
			defer snapshotMu.Unlock()
			return snapshotReg.Snapshot()
		}))
	})
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{
		Addr: ln.Addr().String(),
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		ln:   ln,
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Close stops the server and its listener.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
