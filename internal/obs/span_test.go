package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeNestingAndNotes(t *testing.T) {
	tr := NewTracer(TracerOptions{RingSize: 4})
	root := tr.StartRequest("evidence", "")
	if !root.Enabled() {
		t.Fatal("root span from a live tracer must be enabled")
	}
	a := root.Child("wal_append")
	a.Event("wal_fsync", 10*time.Microsecond)
	a.End()
	b := root.Child("resample")
	b.Notef("pins=%d", 3)
	b.End()
	root.Finish("ok")

	recs := tr.Recent(0)
	if len(recs) != 1 {
		t.Fatalf("Recent = %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Name != "evidence" || rec.Outcome != "ok" {
		t.Errorf("record = %s/%s, want evidence/ok", rec.Name, rec.Outcome)
	}
	names := make([]string, len(rec.Spans))
	for i, sp := range rec.Spans {
		names[i] = sp.Name
		if sp.DurUs < 0 {
			t.Errorf("span %s left open (dur %d)", sp.Name, sp.DurUs)
		}
	}
	want := []string{"evidence", "wal_append", "wal_fsync", "resample"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Errorf("span names = %v, want %v", names, want)
	}
	// Tree shape: root has Parent -1, wal_append and resample hang off the
	// root, the fsync event off wal_append.
	if rec.Spans[0].Parent != -1 || rec.Spans[1].Parent != 0 || rec.Spans[2].Parent != 1 || rec.Spans[3].Parent != 0 {
		t.Errorf("parents = %d %d %d %d, want -1 0 1 0",
			rec.Spans[0].Parent, rec.Spans[1].Parent, rec.Spans[2].Parent, rec.Spans[3].Parent)
	}
	if rec.Spans[3].Note != "pins=3" {
		t.Errorf("note = %q, want pins=3", rec.Spans[3].Note)
	}
}

func TestTraceparentAdoptionAndEcho(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	const in = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	s := tr.StartRequest("point", in)
	if got := s.TraceID(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace id = %q, want the incoming one", got)
	}
	out := s.Traceparent()
	if !strings.HasPrefix(out, "00-4bf92f3577b34da6a3ce929d0e0e4736-") || !strings.HasSuffix(out, "-01") {
		t.Errorf("traceparent = %q: must keep trace-id and flags", out)
	}
	if strings.Contains(out, "00f067aa0ba902b7") {
		t.Errorf("traceparent = %q: must carry a fresh span id, not the caller's", out)
	}
	s.Finish("ok")
	if rec := tr.Recent(1)[0]; rec.ParentSpanID != "00f067aa0ba902b7" {
		t.Errorf("parent span id = %q, want the caller's", rec.ParentSpanID)
	}

	// Malformed headers start a fresh trace instead of failing.
	for _, bad := range []string{
		"",
		"garbage",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero parent
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // forbidden version
		"00-4bf92f3577b34da6a3ce929d0e0e47XY-00f067aa0ba902b7-01", // non-hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",    // truncated
	} {
		s := tr.StartRequest("point", bad)
		if s.TraceID() == "" || len(s.TraceID()) != 32 {
			t.Errorf("header %q: fresh trace id missing", bad)
		}
		if bad != "" && s.TraceID() == "4bf92f3577b34da6a3ce929d0e0e4736" {
			t.Errorf("header %q: must not adopt a malformed trace id", bad)
		}
		s.Finish("ok")
	}
}

func TestRingEvictionOrder(t *testing.T) {
	tr := NewTracer(TracerOptions{RingSize: 4})
	for i := 0; i < 10; i++ {
		s := tr.StartRequest(fmt.Sprintf("req-%d", i), "")
		s.Finish("ok")
	}
	recs := tr.Recent(0)
	if len(recs) != 4 {
		t.Fatalf("ring retained %d, want 4", len(recs))
	}
	// Newest first: req-9 req-8 req-7 req-6.
	for i, rec := range recs {
		if want := fmt.Sprintf("req-%d", 9-i); rec.Name != want {
			t.Errorf("recent[%d] = %s, want %s", i, rec.Name, want)
		}
	}
	if got := tr.Recent(2); len(got) != 2 || got[0].Name != "req-9" {
		t.Errorf("Recent(2) = %d records starting %s", len(got), got[0].Name)
	}
}

// TestConcurrentRequestsNoLeakage drives overlapping requests from many
// goroutines (run under -race in CI) and verifies every finished record
// contains only its own spans — no cross-request leakage through the shared
// tracer.
func TestConcurrentRequestsNoLeakage(t *testing.T) {
	tr := NewTracer(TracerOptions{RingSize: 256})
	const goroutines, perG = 8, 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tag := fmt.Sprintf("g%d", g)
				s := tr.StartRequest(tag, "")
				for c := 0; c < 3; c++ {
					ch := s.Child(tag)
					ch.Notef("%s-%d", tag, c)
					ch.End()
				}
				s.Finish(tag)
			}
		}(g)
	}
	wg.Wait()
	recs := tr.Recent(0)
	if len(recs) != goroutines*perG {
		t.Fatalf("ring has %d records, want %d", len(recs), goroutines*perG)
	}
	for _, rec := range recs {
		if rec.Outcome != rec.Name {
			t.Fatalf("record %s finished with outcome %s", rec.Name, rec.Outcome)
		}
		if len(rec.Spans) != 4 {
			t.Fatalf("record %s has %d spans, want 4", rec.Name, len(rec.Spans))
		}
		for i, sp := range rec.Spans {
			if sp.Name != rec.Name {
				t.Fatalf("record %s contains foreign span %s", rec.Name, sp.Name)
			}
			if i > 0 && !strings.HasPrefix(sp.Note, rec.Name+"-") {
				t.Fatalf("record %s contains foreign note %s", rec.Name, sp.Note)
			}
		}
	}
}

// TestDisabledSpanPathAllocatesNothing pins the disabled-tracing contract:
// the full request-shaped span flow on a nil tracer is branch-only.
func TestDisabledSpanPathAllocatesNothing(t *testing.T) {
	var tr *Tracer
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		s := tr.StartRequest("point", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
		if s.Enabled() {
			t.Fatal("nil tracer must hand out disabled spans")
		}
		ctx2 := ContextWithSpan(ctx, s)
		ch := SpanFromContext(ctx2).Child("stage")
		ch.Note("x")
		ch.End()
		s.Event("ev", time.Microsecond)
		s.Finish("ok")
	})
	if allocs != 0 {
		t.Errorf("disabled span path allocates %v per request, want 0", allocs)
	}
}

func TestFinishClosesOpenSpansAndSlowLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	tr := NewTracer(TracerOptions{RingSize: 4, SlowThreshold: time.Nanosecond, Logger: logger})
	s := tr.StartRequest("evidence", "")
	s.Child("left_open") // handler early-returned without End
	time.Sleep(time.Millisecond)
	s.Finish("error")

	rec := tr.Recent(1)[0]
	if rec.Spans[1].DurUs < 0 {
		t.Errorf("open child not closed at Finish: dur %d", rec.Spans[1].DurUs)
	}
	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("slow log is not JSON: %v (%q)", err, buf.String())
	}
	if line["msg"] != "slow request" || line["endpoint"] != "evidence" || line["outcome"] != "error" {
		t.Errorf("slow log line = %v", line)
	}
	if _, ok := line["stages_ms"].(map[string]any); !ok {
		t.Errorf("slow log missing stages_ms group: %v", line)
	}
}

func TestTracesHandler(t *testing.T) {
	tr := NewTracer(TracerOptions{RingSize: 8})
	for i := 0; i < 3; i++ {
		s := tr.StartRequest("knn", "")
		s.Finish("ok")
	}
	rr := httptest.NewRecorder()
	tr.TracesHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces?n=2", nil))
	var resp struct {
		Traces []TraceRecord `json:"traces"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding /debug/traces: %v", err)
	}
	if len(resp.Traces) != 2 {
		t.Errorf("n=2 returned %d traces", len(resp.Traces))
	}

	// Nil tracer: the mounted route still answers with an empty list.
	var nilTr *Tracer
	rr = httptest.NewRecorder()
	nilTr.TracesHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces", nil))
	if body := strings.TrimSpace(rr.Body.String()); !strings.Contains(body, `"traces": []`) {
		t.Errorf("nil tracer body = %s", body)
	}
}

// BenchmarkSpanOverhead compares the disabled (nil tracer) request flow
// against the enabled one — the serving analog of the sampler's
// BenchmarkObsOverhead. The disabled path must report 0 allocs/op.
func BenchmarkSpanOverhead(b *testing.B) {
	run := func(b *testing.B, tr *Tracer) {
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := tr.StartRequest("point", "")
			ctx2 := ContextWithSpan(ctx, s)
			ch := SpanFromContext(ctx2).Child("rtree_probe")
			ch.End()
			ch = s.Child("score")
			ch.End()
			s.Finish("ok")
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, nil) })
	b.Run("enabled", func(b *testing.B) { run(b, NewTracer(TracerOptions{RingSize: 64})) })
}
