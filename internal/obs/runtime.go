package obs

import (
	"math"
	"runtime"
	"runtime/metrics"
)

// Runtime health gauges: goroutine count, live heap bytes, and cumulative
// GC pause time, sampled at scrape time through the registry's OnScrape
// hook — a /metrics pull always reflects the process at that instant, with
// zero cost between scrapes. The serve-smoke CI job asserts on
// sya_go_goroutines across a crash-restart to catch goroutine leaks.

// runtimeSamples are the runtime/metrics series the gauges read; the
// runtime guarantees all three exist (they are documented, stable names).
var runtimeSamples = []metrics.Sample{
	{Name: "/sched/goroutines:goroutines"},
	{Name: "/memory/classes/heap/objects:bytes"},
	{Name: "/gc/pauses:seconds"},
}

// RegisterRuntimeMetrics registers the sya_go_* health gauges on the
// registry and hooks their refresh into every exposition. Idempotent per
// underlying registry state (labeled views share it), nil-safe.
func RegisterRuntimeMetrics(r *Registry) {
	if r == nil {
		return
	}
	r.st.hookMu.Lock()
	done := r.st.runtimeDone
	r.st.runtimeDone = true
	r.st.hookMu.Unlock()
	if done {
		return
	}
	goroutines := r.Gauge("sya_go_goroutines")
	heap := r.Gauge("sya_go_heap_bytes")
	gcPause := r.Gauge("sya_go_gc_pause_seconds")
	samples := make([]metrics.Sample, len(runtimeSamples))
	copy(samples, runtimeSamples)
	r.OnScrape(func() {
		metrics.Read(samples)
		if samples[0].Value.Kind() == metrics.KindUint64 {
			goroutines.Set(float64(samples[0].Value.Uint64()))
		} else {
			// Fallback if the runtime ever changes the series kind.
			goroutines.Set(float64(runtime.NumGoroutine()))
		}
		if samples[1].Value.Kind() == metrics.KindUint64 {
			heap.Set(float64(samples[1].Value.Uint64()))
		}
		if samples[2].Value.Kind() == metrics.KindFloat64Histogram {
			gcPause.Set(histTotal(samples[2].Value.Float64Histogram()))
		}
	})
}

// histTotal sums a runtime Float64Histogram into a cumulative-seconds
// total: count-weighted midpoints of the finite buckets (the runtime's GC
// pause histogram has no exact sum, so this is the standard estimate).
func histTotal(h *metrics.Float64Histogram) float64 {
	if h == nil {
		return 0
	}
	var total float64
	for i, n := range h.Counts {
		if n == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		var mid float64
		switch {
		case math.IsInf(lo, -1):
			mid = hi
		case math.IsInf(hi, 1):
			mid = lo
		default:
			mid = (lo + hi) / 2
		}
		total += mid * float64(n)
	}
	return total
}
