package obs

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := r.Counter("c_total"); again != c {
		t.Error("re-registration must return the same handle")
	}

	g := r.Gauge("g")
	g.Set(2.5)
	g.Set(-1.25)
	if got := g.Value(); got != -1.25 {
		t.Errorf("gauge = %v, want -1.25", got)
	}

	h := r.Histogram("h_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 50} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Errorf("hist count = %d, want 5", got)
	}
	if got, want := h.Sum(), 0.005+0.05+0.05+0.5+50; got != want {
		t.Errorf("hist sum = %v, want %v", got, want)
	}
}

func TestNilRegistryAndHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	// None of these may panic, and reads stay zero.
	c.Inc()
	c.Add(10)
	g.Set(3)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil handles must read as zero")
	}
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot must be nil")
	}
	if err := r.WritePrometheus(nil); err != nil {
		t.Errorf("nil registry WritePrometheus: %v", err)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("sya_epochs_total").Add(7)
	r.Gauge("sya_queue_depth").Set(3)
	h := r.Histogram("sya_epoch_seconds", []float64{0.1, 1})
	h.Observe(0.05) // bucket le=0.1
	h.Observe(0.5)  // bucket le=1
	h.Observe(5)    // overflow

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE sya_epochs_total counter\nsya_epochs_total 7\n",
		"# TYPE sya_queue_depth gauge\nsya_queue_depth 3\n",
		"# TYPE sya_epoch_seconds histogram\n",
		`sya_epoch_seconds_bucket{le="0.1"} 1`,
		`sya_epoch_seconds_bucket{le="1"} 2`,
		`sya_epoch_seconds_bucket{le="+Inf"} 3`,
		"sya_epoch_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestLabeledViews(t *testing.T) {
	r := NewRegistry()
	r.Counter("sya_epochs_total").Add(1)
	a := r.With("system", "gwdb")
	b := r.With("system", "nyc")
	a.Counter("sya_epochs_total").Add(2)
	b.Counter("sya_epochs_total").Add(3)
	if got := a.Counter("sya_epochs_total").Value(); got != 2 {
		t.Errorf("labeled counter = %d, want 2", got)
	}
	if a.Counter("sya_epochs_total") == b.Counter("sya_epochs_total") {
		t.Error("distinct labels must give distinct handles")
	}
	a.Gauge("sya_vars").Set(10)
	a.Histogram("sya_lat_seconds", []float64{1}).Observe(0.5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if got := strings.Count(out, "# TYPE sya_epochs_total counter"); got != 1 {
		t.Errorf("want exactly one TYPE line for the family, got %d in:\n%s", got, out)
	}
	for _, want := range []string{
		"sya_epochs_total 1\n",
		"sya_epochs_total{system=\"gwdb\"} 2\n",
		"sya_epochs_total{system=\"nyc\"} 3\n",
		"sya_vars{system=\"gwdb\"} 10\n",
		"sya_lat_seconds_bucket{system=\"gwdb\",le=\"1\"} 1\n",
		"sya_lat_seconds_bucket{system=\"gwdb\",le=\"+Inf\"} 1\n",
		"sya_lat_seconds_count{system=\"gwdb\"} 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}

	snap := r.Snapshot()
	if snap[`sya_epochs_total{system="nyc"}`] != 3 {
		t.Errorf("snapshot missing labeled series: %v", snap)
	}
	if snap[`sya_lat_seconds_count{system="gwdb"}`] != 1 {
		t.Errorf("snapshot missing labeled histogram count: %v", snap)
	}

	// Nested With merges labels in order.
	n := a.With("phase", "serve")
	n.Counter("x_total").Inc()
	if r.Snapshot()[`x_total{system="gwdb",phase="serve"}`] != 1 {
		t.Errorf("nested labels: %v", r.Snapshot())
	}

	// Nil views stay no-ops.
	var nilReg *Registry
	if nilReg.With("a", "b") != nil {
		t.Error("nil.With must stay nil")
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(2)
	r.Gauge("g").Set(1.5)
	h := r.Histogram("h", []float64{1})
	h.Observe(0.5)
	snap := r.Snapshot()
	if snap["c"] != 2 || snap["g"] != 1.5 || snap["h_count"] != 1 || snap["h_sum"] != 0.5 {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestConcurrentObservation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", []float64{10})
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per || h.Sum() != workers*per {
		t.Errorf("hist count/sum = %d/%v, want %d", h.Count(), h.Sum(), workers*per)
	}
}

// TestWritePrometheusGolden pins the full exposition byte-for-byte: family
// grouping and ordering, cumulative buckets ending at +Inf, _sum/_count
// naming, label-value escaping, and the non-finite float spellings. Any
// format drift a Prometheus scraper would notice fails here first.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("sya_requests_total").Add(3)
	r.With("endpoint", "point", "outcome", "ok").Counter("sya_requests_total").Add(2)
	r.Gauge("sya_up").Set(1)
	r.With("path", `a\b"c`+"\n").Gauge("sya_up").Set(math.Inf(1))
	h := r.With("endpoint", "knn").Histogram("sya_lat_seconds", []float64{0.25, 0.5})
	h.Observe(0.1)
	h.Observe(0.3)
	h.Observe(9)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	golden := `# TYPE sya_requests_total counter
sya_requests_total 3
sya_requests_total{endpoint="point",outcome="ok"} 2
# TYPE sya_up gauge
sya_up 1
sya_up{path="a\\b\"c\n"} +Inf
# TYPE sya_lat_seconds histogram
sya_lat_seconds_bucket{endpoint="knn",le="0.25"} 1
sya_lat_seconds_bucket{endpoint="knn",le="0.5"} 2
sya_lat_seconds_bucket{endpoint="knn",le="+Inf"} 3
sya_lat_seconds_sum{endpoint="knn"} 9.4
sya_lat_seconds_count{endpoint="knn"} 3
`
	if got := sb.String(); got != golden {
		t.Errorf("exposition drifted from golden.\ngot:\n%s\nwant:\n%s", got, golden)
	}
}

// TestHistogramCountMatchesInfBucket pins the scrape-consistency rule: the
// _count sample must equal the +Inf cumulative bucket within one scrape,
// even with concurrent observers racing the render.
func TestHistogramCountMatchesInfBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sya_race_seconds", []float64{0.5})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				h.Observe(0.1)
				h.Observe(1)
			}
		}
	}()
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		var inf, count uint64
		for _, line := range strings.Split(sb.String(), "\n") {
			if strings.HasPrefix(line, `sya_race_seconds_bucket{le="+Inf"} `) {
				fmt.Sscanf(line, `sya_race_seconds_bucket{le="+Inf"} %d`, &inf)
			}
			if strings.HasPrefix(line, "sya_race_seconds_count ") {
				fmt.Sscanf(line, "sya_race_seconds_count %d", &count)
			}
		}
		if inf != count {
			t.Fatalf("scrape %d: +Inf bucket %d != _count %d", i, inf, count)
		}
	}
	close(stop)
	wg.Wait()
}

// TestRuntimeMetricsAppearOnScrape verifies the health gauges register once
// and sample live process state at exposition time.
func TestRuntimeMetricsAppearOnScrape(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	RegisterRuntimeMetrics(r) // idempotent
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, fam := range []string{"sya_go_goroutines", "sya_go_heap_bytes", "sya_go_gc_pause_seconds"} {
		if strings.Count(out, "# TYPE "+fam+" gauge") != 1 {
			t.Errorf("exposition must carry exactly one %s family:\n%s", fam, out)
		}
	}
	snap := r.Snapshot()
	if snap["sya_go_goroutines"] < 1 {
		t.Errorf("sya_go_goroutines = %v, want >= 1", snap["sya_go_goroutines"])
	}
	if snap["sya_go_heap_bytes"] <= 0 {
		t.Errorf("sya_go_heap_bytes = %v, want > 0", snap["sya_go_heap_bytes"])
	}
}
