package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTraceEmitsParseableJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	tr.Emit("grounding", "rule", "rule", "r1", "rows", 42, "dur_ms", 1.5)
	tr.Emit("inference", "epoch", "epoch", 7)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var events []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %q not JSON: %v", sc.Text(), err)
		}
		events = append(events, m)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	e := events[0]
	if e["phase"] != "grounding" || e["event"] != "rule" || e["rule"] != "r1" || e["rows"] != float64(42) {
		t.Errorf("event 0 = %v", e)
	}
	if _, ok := e["t_ms"].(float64); !ok {
		t.Errorf("t_ms missing or not a number: %v", e["t_ms"])
	}
	if events[1]["epoch"] != float64(7) {
		t.Errorf("event 1 = %v", events[1])
	}
}

func TestTraceMalformedKVPairsAreDropped(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	tr.Emit("p", "e", "good", 1, 99, "non-string-key", "dangling")
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &m); err != nil {
		t.Fatalf("not JSON: %v", err)
	}
	if m["good"] != float64(1) {
		t.Errorf("good pair lost: %v", m)
	}
	if len(m) != 4 { // t_ms, phase, event, good
		t.Errorf("unexpected fields: %v", m)
	}
}

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	tr.Emit("p", "e", "k", 1)
	if err := tr.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
	if err := tr.Err(); err != nil {
		t.Errorf("nil Err: %v", err)
	}
}

func TestOpenTraceWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	tr, err := OpenTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	tr.Emit("inference", "done", "epochs", 10)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"event":"done"`) {
		t.Errorf("trace file contents = %q", raw)
	}
}

func TestTraceUnmarshalableValueLatchesErr(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	tr.Emit("p", "e", "bad", func() {}) // funcs cannot marshal
	if tr.Err() == nil {
		t.Error("expected a latched encode error")
	}
}

// jsonlLines parses a file as JSONL, failing on any malformed line.
func jsonlLines(t *testing.T, path string) []map[string]any {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("%s: line %q not JSON: %v", path, sc.Text(), err)
		}
		out = append(out, m)
	}
	return out
}

func TestOpenTraceRotatingRotatesOnce(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	tr, err := OpenTraceRotating(path, 256) // tiny limit to force rotation
	if err != nil {
		t.Fatal(err)
	}
	const total = 64
	for i := 0; i < total; i++ {
		tr.Emit("inference", "epoch", "epoch", i)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	cur := jsonlLines(t, path)
	prev := jsonlLines(t, path+".1")
	if len(prev) == 0 {
		t.Fatal("no rotated generation at path.1")
	}
	// No event may be lost: the two generations together hold the tail of
	// the stream, and the current file continues exactly where the previous
	// generation stopped.
	if len(cur) == 0 {
		t.Fatal("current file empty after rotation")
	}
	lastPrev := int(prev[len(prev)-1]["epoch"].(float64))
	firstCur := int(cur[0]["epoch"].(float64))
	if firstCur != lastPrev+1 {
		t.Errorf("gap across rotation: prev ends at %d, cur starts at %d", lastPrev, firstCur)
	}
	if got := int(cur[len(cur)-1]["epoch"].(float64)); got != total-1 {
		t.Errorf("last event %d, want %d", got, total-1)
	}
	// Timestamps share one origin: the current generation's first event is
	// not reset to ~0 below the previous generation's last.
	if cur[0]["t_ms"].(float64) < prev[len(prev)-1]["t_ms"].(float64) {
		t.Errorf("t_ms went backwards across rotation")
	}
}

func TestOpenTraceRotatingKeepsOneGeneration(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	tr, err := OpenTraceRotating(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 512; i++ {
		tr.Emit("inference", "epoch", "epoch", i)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("want exactly {trace.jsonl, trace.jsonl.1}, got %v", names)
	}
	// Retention is bounded: each generation stays near the limit even after
	// many rotations (the limit is checked after the write, so one event of
	// overshoot is allowed).
	for _, e := range entries {
		fi, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() > 256 {
			t.Errorf("%s is %d bytes, far above the 128-byte limit", e.Name(), fi.Size())
		}
	}
}

func TestOpenTraceRotatingZeroLimitNeverRotates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	tr, err := OpenTraceRotating(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		tr.Emit("inference", "epoch", "epoch", i)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".1"); !os.IsNotExist(err) {
		t.Fatalf("unexpected rotated file (err=%v)", err)
	}
	if got := len(jsonlLines(t, path)); got != 256 {
		t.Fatalf("got %d events, want 256", got)
	}
}
