package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTraceEmitsParseableJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	tr.Emit("grounding", "rule", "rule", "r1", "rows", 42, "dur_ms", 1.5)
	tr.Emit("inference", "epoch", "epoch", 7)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var events []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %q not JSON: %v", sc.Text(), err)
		}
		events = append(events, m)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	e := events[0]
	if e["phase"] != "grounding" || e["event"] != "rule" || e["rule"] != "r1" || e["rows"] != float64(42) {
		t.Errorf("event 0 = %v", e)
	}
	if _, ok := e["t_ms"].(float64); !ok {
		t.Errorf("t_ms missing or not a number: %v", e["t_ms"])
	}
	if events[1]["epoch"] != float64(7) {
		t.Errorf("event 1 = %v", events[1])
	}
}

func TestTraceMalformedKVPairsAreDropped(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	tr.Emit("p", "e", "good", 1, 99, "non-string-key", "dangling")
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &m); err != nil {
		t.Fatalf("not JSON: %v", err)
	}
	if m["good"] != float64(1) {
		t.Errorf("good pair lost: %v", m)
	}
	if len(m) != 4 { // t_ms, phase, event, good
		t.Errorf("unexpected fields: %v", m)
	}
}

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	tr.Emit("p", "e", "k", 1)
	if err := tr.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
	if err := tr.Err(); err != nil {
		t.Errorf("nil Err: %v", err)
	}
}

func TestOpenTraceWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	tr, err := OpenTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	tr.Emit("inference", "done", "epochs", 10)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"event":"done"`) {
		t.Errorf("trace file contents = %q", raw)
	}
}

func TestTraceUnmarshalableValueLatchesErr(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	tr.Emit("p", "e", "bad", func() {}) // funcs cannot marshal
	if tr.Err() == nil {
		t.Error("expected a latched encode error")
	}
}
