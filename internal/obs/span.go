package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// This file implements request-scoped tracing for the serving path: a
// Tracer hands out one Span tree per request, stage timings nest under the
// root, and completed traces land in a lock-cheap ring buffer served at
// /debug/traces. Requests slower than a threshold are additionally written
// to a structured slog logger, so "why was that one query slow?" is
// answerable from the log alone.
//
// The design follows the registry's disabled-by-default discipline: a nil
// *Tracer hands out zero-value Spans whose methods are single-branch no-ops
// and allocate nothing, so the serving handlers record unconditionally and
// an untraced request pays a few predictable branches. Enabled tracing
// allocates one TraceRecord per request (plus its amortized span slice) and
// publishes it with one atomic store — no locks on the request path.
//
// Trace identity is W3C Trace Context compatible: an incoming `traceparent`
// header is parsed and its trace-id adopted (so syad joins a distributed
// trace as a child), and the Span renders an outgoing `traceparent` carrying
// the server's own root span-id for the response header.

// TracerOptions parameterizes a Tracer.
type TracerOptions struct {
	// RingSize bounds the completed-trace ring buffer (≤0 → 64).
	RingSize int
	// SlowThreshold is the structured slow-request log cutoff: requests
	// whose wall time reaches it are logged through Logger (0 disables).
	SlowThreshold time.Duration
	// Logger receives slow-request records (nil → slog.Default()).
	Logger *slog.Logger
}

// Tracer owns the completed-trace ring and the slow-request log. A nil
// *Tracer is the disabled mode: StartRequest returns a no-op Span.
type Tracer struct {
	slow   time.Duration
	logger *slog.Logger
	slots  []atomic.Pointer[TraceRecord]
	seq    atomic.Uint64 // completed traces; slot = (seq-1) % len(slots)
	ids    atomic.Uint64 // id-generation counter, mixed through splitmix64
	seed   uint64
}

// NewTracer builds a Tracer with the given ring size and slow threshold.
func NewTracer(opts TracerOptions) *Tracer {
	n := opts.RingSize
	if n <= 0 {
		n = 64
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	return &Tracer{
		slow:   opts.SlowThreshold,
		logger: logger,
		slots:  make([]atomic.Pointer[TraceRecord], n),
		seed:   uint64(time.Now().UnixNano()),
	}
}

// SpanRecord is one completed (or still-open) stage of a trace. Parent
// indexes the enclosing span within the same TraceRecord; the root is index
// 0 with Parent −1. Times are offsets from the trace start so a flame chart
// needs no clock reconstruction.
type SpanRecord struct {
	Name    string `json:"name"`
	Parent  int    `json:"parent"`
	StartUs int64  `json:"start_us"`
	DurUs   int64  `json:"dur_us"`
	Note    string `json:"note,omitempty"`
}

// TraceRecord is one request's completed trace: identity, outcome, wall
// time, and the per-stage span tree in start order.
type TraceRecord struct {
	TraceID string `json:"trace_id"`
	// SpanID is the server's root span id (the parent-id field of the
	// echoed traceparent).
	SpanID string `json:"span_id"`
	// ParentSpanID is the upstream caller's span id when the request
	// carried a valid traceparent.
	ParentSpanID string       `json:"parent_span_id,omitempty"`
	Name         string       `json:"name"`
	Outcome      string       `json:"outcome,omitempty"`
	Start        time.Time    `json:"start"`
	DurUs        int64        `json:"dur_us"`
	Spans        []SpanRecord `json:"spans"`

	flags string // traceparent trace-flags, echoed verbatim
	seq   uint64 // ring eviction order, assigned at Finish
	start time.Time
}

// Span is a handle into one trace's span tree. The zero value (and any Span
// from a nil Tracer) is a no-op whose methods allocate nothing — the
// disabled fast path. Spans of one request must be used from one goroutine
// at a time, matching an HTTP handler's sequential execution; distinct
// requests are fully isolated (each owns its TraceRecord).
type Span struct {
	t   *Tracer
	rec *TraceRecord
	idx int
}

// Enabled reports whether the span records anything. Callers use it to skip
// enabled-only work (context plumbing, response headers).
func (s Span) Enabled() bool { return s.rec != nil }

// newID returns n random-looking hex characters (n must be even, ≤16 bytes
// worth). IDs mix an atomic counter through splitmix64 — unique within the
// process and cheap, which is all trace ids need here.
func (t *Tracer) newID(hexLen int) string {
	x := t.seed + t.ids.Add(1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	const hexdig = "0123456789abcdef"
	buf := make([]byte, hexLen)
	for i := range buf {
		buf[i] = hexdig[x&0xf]
		x >>= 4
		if x == 0 {
			// Re-mix for ids longer than 16 hex digits.
			x = t.seed + t.ids.Add(1)*0x9e3779b97f4a7c15
			x ^= x >> 33
		}
	}
	// A traceparent id of all zeroes is invalid; the counter makes that
	// impossible in practice, but guard anyway.
	if allZero(buf) {
		buf[0] = '1'
	}
	return string(buf)
}

func allZero(b []byte) bool {
	for _, c := range b {
		if c != '0' {
			return false
		}
	}
	return true
}

// parseTraceparent validates a W3C traceparent header
// (version-traceid-parentid-flags, e.g.
// "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01") and returns
// its fields. ok=false on anything malformed — the caller then starts a
// fresh trace.
func parseTraceparent(h string) (traceID, parentID, flags string, ok bool) {
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", "", "", false
	}
	ver, tid, pid, fl := h[0:2], h[3:35], h[36:52], h[53:55]
	if !isHex(ver) || ver == "ff" || !isHex(tid) || !isHex(pid) || !isHex(fl) {
		return "", "", "", false
	}
	if allZero([]byte(tid)) || allZero([]byte(pid)) {
		return "", "", "", false
	}
	return tid, pid, fl, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// StartRequest opens a new trace for one request. traceparent is the raw
// incoming header ("" for none): when valid, its trace-id and flags are
// adopted and the caller's span id is recorded as the root's parent; when
// absent or malformed, a fresh trace-id is generated. Nil tracer → no-op
// Span.
func (t *Tracer) StartRequest(name, traceparent string) Span {
	if t == nil {
		return Span{}
	}
	rec := &TraceRecord{
		Name:  name,
		Start: time.Now(),
		flags: "01",
		Spans: make([]SpanRecord, 1, 8),
	}
	rec.start = rec.Start
	if tid, pid, fl, ok := parseTraceparent(traceparent); ok {
		rec.TraceID, rec.ParentSpanID, rec.flags = tid, pid, fl
	} else {
		rec.TraceID = t.newID(32)
	}
	rec.SpanID = t.newID(16)
	rec.Spans[0] = SpanRecord{Name: name, Parent: -1}
	return Span{t: t, rec: rec, idx: 0}
}

// Traceparent renders the outgoing header for this trace: the incoming
// trace-id (or the fresh one) with the server's root span id as parent-id.
func (s Span) Traceparent() string {
	if s.rec == nil {
		return ""
	}
	return "00-" + s.rec.TraceID + "-" + s.rec.SpanID + "-" + s.rec.flags
}

// TraceID returns the trace id ("" when disabled).
func (s Span) TraceID() string {
	if s.rec == nil {
		return ""
	}
	return s.rec.TraceID
}

// Child opens a nested stage span. End it to record its duration.
func (s Span) Child(name string) Span {
	if s.rec == nil {
		return Span{}
	}
	rec := s.rec
	rec.Spans = append(rec.Spans, SpanRecord{
		Name:    name,
		Parent:  s.idx,
		StartUs: time.Since(rec.start).Microseconds(),
		DurUs:   -1, // open; End overwrites
	})
	return Span{t: s.t, rec: rec, idx: len(rec.Spans) - 1}
}

// End closes the span, recording its duration.
func (s Span) End() {
	if s.rec == nil {
		return
	}
	sp := &s.rec.Spans[s.idx]
	sp.DurUs = time.Since(s.rec.start).Microseconds() - sp.StartUs
}

// Note attaches a short annotation to the span (last write wins).
func (s Span) Note(note string) {
	if s.rec == nil {
		return
	}
	s.rec.Spans[s.idx].Note = note
}

// Notef is Note with formatting; the formatting cost is paid only when the
// span is live.
func (s Span) Notef(format string, args ...any) {
	if s.rec == nil {
		return
	}
	s.rec.Spans[s.idx].Note = fmt.Sprintf(format, args...)
}

// Event records an already-measured stage as a completed child span —
// used when the duration was measured elsewhere (e.g. the WAL's fsync
// timer) and there is no open/close seam to wrap.
func (s Span) Event(name string, d time.Duration) {
	if s.rec == nil {
		return
	}
	rec := s.rec
	end := time.Since(rec.start).Microseconds()
	dur := d.Microseconds()
	start := end - dur
	if start < 0 {
		start = 0
	}
	rec.Spans = append(rec.Spans, SpanRecord{
		Name: name, Parent: s.idx, StartUs: start, DurUs: dur,
	})
}

// Finish completes the trace: closes the root span, stamps the outcome,
// publishes the record to the ring, and emits the slow-request log line
// when the wall time reaches the tracer's threshold. It returns the
// request's wall time (0 when disabled). Only the root span's Finish
// publishes; calling it on a child is a bug but harmlessly publishes early.
func (s Span) Finish(outcome string) time.Duration {
	if s.rec == nil {
		return 0
	}
	rec, t := s.rec, s.t
	d := time.Since(rec.start)
	rec.DurUs = d.Microseconds()
	rec.Spans[0].DurUs = rec.DurUs
	rec.Outcome = outcome
	// Close any span left open (handler early-returns) so consumers never
	// see a -1 duration.
	for i := 1; i < len(rec.Spans); i++ {
		if rec.Spans[i].DurUs < 0 {
			rec.Spans[i].DurUs = rec.DurUs - rec.Spans[i].StartUs
		}
	}
	rec.seq = t.seq.Add(1)
	t.slots[(rec.seq-1)%uint64(len(t.slots))].Store(rec)
	if t.slow > 0 && d >= t.slow {
		attrs := make([]slog.Attr, 0, 6+len(rec.Spans))
		attrs = append(attrs,
			slog.String("trace_id", rec.TraceID),
			slog.String("span_id", rec.SpanID),
			slog.String("endpoint", rec.Name),
			slog.String("outcome", outcome),
			slog.Duration("duration", d),
		)
		stageAttrs := make([]any, 0, len(rec.Spans)-1)
		for i := 1; i < len(rec.Spans); i++ {
			sp := rec.Spans[i]
			stageAttrs = append(stageAttrs,
				slog.Float64(sp.Name, float64(sp.DurUs)/1e3))
		}
		attrs = append(attrs, slog.Group("stages_ms", stageAttrs...))
		t.logger.LogAttrs(context.Background(), slog.LevelWarn, "slow request", attrs...)
	}
	return d
}

// Recent returns up to n completed traces, newest first (n ≤ 0 → all
// retained). Safe for concurrent use with active requests: records are
// immutable after Finish's atomic publish.
func (t *Tracer) Recent(n int) []*TraceRecord {
	if t == nil {
		return nil
	}
	out := make([]*TraceRecord, 0, len(t.slots))
	for i := range t.slots {
		if rec := t.slots[i].Load(); rec != nil {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq > out[j].seq })
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// tracesResponse is the /debug/traces body.
type tracesResponse struct {
	Traces []*TraceRecord `json:"traces"`
}

// TracesHandler serves the completed-trace ring as JSON, newest first.
// ?n=K limits the count. A nil Tracer serves an empty list, so the route
// can be mounted unconditionally.
func (t *Tracer) TracesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if raw := r.URL.Query().Get("n"); raw != "" {
			if v, err := strconv.Atoi(raw); err == nil {
				n = v
			}
		}
		recs := t.Recent(n)
		if recs == nil {
			recs = []*TraceRecord{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(tracesResponse{Traces: recs})
	})
}

// spanCtxKey keys the request span in a context.
type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying the span, so lower layers (core,
// grounding, gibbs, wal) can nest their own stage timings under the
// request. Callers should skip the call (and its context allocation) when
// the span is disabled.
func ContextWithSpan(ctx context.Context, s Span) context.Context {
	if !s.Enabled() {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext extracts the request span, or a disabled zero Span.
func SpanFromContext(ctx context.Context) Span {
	if ctx == nil {
		return Span{}
	}
	s, _ := ctx.Value(spanCtxKey{}).(Span)
	return s
}
