package bench

import (
	"bytes"
	"strings"
	"testing"
)

// tinyParams keeps every experiment in the sub-second-to-seconds range for
// the test suite.
func tinyParams() Params {
	p := DefaultParams()
	p.GWDBWells = 120
	p.NYCCASSide = 10
	p.Epochs = 60
	p.Runs = 1
	return p
}

func render(t *testing.T, tbl *Table) string {
	t.Helper()
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	return buf.String()
}

func TestTable1(t *testing.T) {
	tbl, err := Table1(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	out := render(t, tbl)
	if !strings.Contains(out, "GWDB") || !strings.Contains(out, "NYCCAS") {
		t.Errorf("missing KBs:\n%s", out)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Table I invariants: rules 11 and 4.
	if tbl.Rows[0][2] != "11" || tbl.Rows[1][2] != "4" {
		t.Errorf("rule counts wrong:\n%s", out)
	}
}

func TestFig1ShapeReproduces(t *testing.T) {
	tbl, err := Fig1(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	out := render(t, tbl)
	// Last row carries F1s: Sya ≥ DeepDive.
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[0] != "F1-score" {
		t.Fatalf("last row = %v", last)
	}
	var dd, sya float64
	if _, err := parseFloat(last[2], &dd); err != nil {
		t.Fatal(err)
	}
	if _, err := parseFloat(last[3], &sya); err != nil {
		t.Fatal(err)
	}
	if sya < dd {
		t.Errorf("Sya F1 %v < DeepDive %v:\n%s", sya, dd, out)
	}
}

func parseFloat(s string, out *float64) (int, error) {
	var v float64
	n, err := fmtSscan(s, &v)
	*out = v
	return n, err
}

func TestFig8And9(t *testing.T) {
	p := tinyParams()
	tbl8, err := Fig8(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl8.Rows) != 4 { // 2 KBs × 2 engines
		t.Fatalf("fig8 rows = %d", len(tbl8.Rows))
	}
	tbl9, err := Fig9(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl9.Rows) != 4 {
		t.Fatalf("fig9 rows = %d", len(tbl9.Rows))
	}
	// Sya F1 ≥ DeepDive F1 per KB (the headline claim) — check GWDB.
	var syaF1, ddF1 float64
	for _, r := range tbl9.Rows {
		if r[0] == "GWDB" && r[1] == "sya" {
			if _, err := parseFloat(r[2], &syaF1); err != nil {
				t.Fatal(err)
			}
		}
		if r[0] == "GWDB" && r[1] == "deepdive" {
			if _, err := parseFloat(r[2], &ddF1); err != nil {
				t.Fatal(err)
			}
		}
	}
	if syaF1+0.05 < ddF1 {
		t.Errorf("GWDB: Sya F1 %v well below DeepDive %v", syaF1, ddF1)
	}
}

func TestFig10(t *testing.T) {
	tbl, err := Fig10(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 { // Sya + 4 band counts
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if tbl.Rows[0][0] != "Sya" {
		t.Errorf("first row = %v", tbl.Rows[0])
	}
}

func TestFig11(t *testing.T) {
	tbl, err := Fig11(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Allowed pairs must not increase with T.
	var prev float64 = 1e18
	for _, r := range tbl.Rows {
		var allowed float64
		if _, err := parseFloat(r[5], &allowed); err != nil {
			t.Fatal(err)
		}
		if allowed > prev {
			t.Errorf("allowed pairs increased with T:\n%s", render(t, tbl))
		}
		prev = allowed
	}
}

func TestFig12(t *testing.T) {
	tbl, err := Fig12(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestFig13(t *testing.T) {
	tbl, err := Fig13(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestFig14(t *testing.T) {
	tbl, err := Fig14(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 { // 2 KBs × 3 checkpoints
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestAblation(t *testing.T) {
	tbl, err := Ablation(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestTablePrinting(t *testing.T) {
	tbl := &Table{Title: "x", Header: []string{"a", "bb"}, Notes: []string{"n"}}
	tbl.Add("1", "2")
	tbl.Add("333", "4")
	out := render(t, tbl)
	for _, want := range []string{"== x ==", "a", "bb", "333", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestParamsDefaults(t *testing.T) {
	d := DefaultParams()
	if d.GWDBWells == 0 || d.Epochs == 0 {
		t.Error("defaults empty")
	}
	ps := PaperScaleParams()
	if ps.GWDBWells != 9831 || ps.NYCCASSide != 184 || ps.Runs != 5 {
		t.Errorf("paper scale = %+v", ps)
	}
}
