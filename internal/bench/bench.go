// Package bench implements the experiment harness: one runner per table and
// figure of the paper's evaluation (Section VI), each regenerating the
// corresponding rows/series over the synthetic GWDB and NYCCAS datasets.
// Absolute numbers differ from the paper (different hardware, data and
// scale); the harness exists to reproduce the *shape* of every result —
// who wins, by roughly what factor, and where crossovers fall.
// EXPERIMENTS.md records paper-vs-measured for each experiment.
package bench

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/obs"
)

// Params holds the global scale knobs. Defaults keep the full suite in the
// minutes range; raise them toward the paper's scale (9,831 wells, 34K
// raster cells, 1000+ epochs, 5 runs) with the syabench flags.
type Params struct {
	// GWDBWells is the number of synthetic wells (paper: 9,831).
	GWDBWells int
	// NYCCASSide is the raster side length (cells = Side²; paper ≈ 184²).
	NYCCASSide int
	// Epochs is the total inference epoch budget E (paper default: 1000).
	Epochs int
	// Runs averages quality metrics over this many seeds (paper: 5).
	Runs int
	// Seed is the base RNG seed.
	Seed int64
	// Bandwidth of the exponential weighing function, in dataset
	// coordinate units.
	Bandwidth float64
	// SpatialScale is the zero-distance spatial factor weight.
	SpatialScale float64
	// SupportRadius caps spatial-factor generation distance.
	SupportRadius float64
	// MaxNeighbors caps spatial factors per atom.
	MaxNeighbors int
	// PyramidLevels is L.
	PyramidLevels int
	// Instances is the spatial sampler's K.
	Instances int
	// Workers is the sampler worker-pool width (0 → GOMAXPROCS): parallel
	// workers per instance for the spatial sampler, total workers for the
	// hogwild baseline.
	Workers int
	// GroundWorkers is the grounding worker-pool width (0 → GOMAXPROCS,
	// 1 → fully sequential). The grounded factor graph is identical for any
	// setting; only wall-clock time changes.
	GroundWorkers int
	// NoKernels scores inference with the interpreted factor walk instead
	// of compiled sampling kernels (bit-identical chains; used to measure
	// the kernel speedup itself).
	NoKernels bool
	// GroundOnly restricts experiments to the grounding phase: systems are
	// built and grounded but inference is skipped, so quality columns are
	// blank. Used by syabench -phase=grounding for grounding-only
	// comparisons (Fig. 9/10 style timing without the sampler cost).
	GroundOnly bool
	// Metrics, when non-nil, is threaded into every system the experiments
	// build — with syabench -metrics-addr the registry is also served live,
	// so a long `all` run can be watched from /metrics and profiled under
	// /debug/pprof.
	Metrics *obs.Registry
	// Trace, when non-nil, receives the phase events of every experiment
	// run (grounding rules, learning iterations, inference epochs).
	Trace *obs.Trace
	// ServingJSON, when non-empty, makes the serving experiment write its
	// machine-readable report (BENCH_serving.json shape) to this path.
	ServingJSON string

	// LocalJSON, when non-empty, makes the local experiment write its
	// machine-readable report (the BENCH_local.json shape) to this path.
	LocalJSON string

	// ShardJSON, when non-empty, makes the shard experiment write its
	// machine-readable report (the BENCH_shard.json shape) to this path.
	ShardJSON string
	// ChunkGrain caps the sampler work-chunk size (cells per spatial chunk,
	// variables per hogwild bucket); 0 keeps the engine defaults. The shard
	// experiment additionally sweeps this knob itself.
	ChunkGrain int
}

// DefaultParams returns laptop-scale defaults.
func DefaultParams() Params {
	return Params{
		GWDBWells:     600,
		NYCCASSide:    22,
		Epochs:        400,
		Runs:          3,
		Seed:          1,
		Bandwidth:     30,
		SpatialScale:  0.5,
		SupportRadius: 75,
		MaxNeighbors:  40,
		PyramidLevels: 6,
		Instances:     2,
	}
}

// PaperScaleParams approaches the paper's sizes. Expect long runtimes.
func PaperScaleParams() Params {
	p := DefaultParams()
	p.GWDBWells = 9831
	p.NYCCASSide = 184
	p.Epochs = 1000
	p.Runs = 5
	return p
}

// Table is a printable result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes are printed after the table (observed-shape commentary).
	Notes []string
}

// Add appends a row of stringified cells.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// f formats a float compactly.
func f3(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.3f", v)
}

// ms formats a duration in milliseconds.
func ms(d float64) string { return fmt.Sprintf("%.1fms", d) }

// fmtSscan wraps fmt.Sscan for test helpers.
func fmtSscan(s string, v *float64) (int, error) { return fmt.Sscan(s, v) }
