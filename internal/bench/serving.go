package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/storage"
)

// servingClientCounts are the load points of the serving benchmark.
var servingClientCounts = []int{1, 2, 4, 8}

// ServingPoint is one measured load point: N concurrent HTTP clients
// hammering the read API of a resident syad-style server.
type ServingPoint struct {
	Clients  int     `json:"clients"`
	Requests int     `json:"requests"`
	QPS      float64 `json:"qps"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

// ServingUpsert summarizes the write path: evidence upserts through the
// HTTP API, each folding in via delta grounding + incremental resampling.
type ServingUpsert struct {
	Count  int     `json:"count"`
	Epochs int     `json:"epochs_per_upsert"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

// ServingStaleness summarizes evidence-to-visible latency: for each
// timestamped upsert, a concurrent reader polls the query API until the
// serving generation moves past its pre-upsert value, so the sample is the
// real window during which readers could still observe the old world.
type ServingStaleness struct {
	Upserts int     `json:"upserts"`
	P50Ms   float64 `json:"p50_ms"`
	P99Ms   float64 `json:"p99_ms"`
}

// ServingMixed summarizes the degradation phase: readers racing a writer
// that holds the write lock, plus a contender whose upserts are shed by the
// admission cap. Stale reads are answered from the pre-upsert snapshot.
type ServingMixed struct {
	Upserts    int     `json:"upserts"`
	Reads      int     `json:"reads"`
	StaleReads int     `json:"stale_reads"`
	Shed429    int     `json:"shed_429"`
	ReadP50Ms  float64 `json:"read_p50_ms"`
	ReadP99Ms  float64 `json:"read_p99_ms"`
}

// ServingReport is the full serving-benchmark result, serialized to
// BENCH_serving.json by syabench -phase=serving.
type ServingReport struct {
	Description string           `json:"description"`
	Environment servingEnv       `json:"environment"`
	Workload    servingLoad      `json:"workload"`
	Points      []ServingPoint   `json:"points"`
	Upserts     ServingUpsert    `json:"upserts"`
	Staleness   ServingStaleness `json:"staleness"`
	Mixed       ServingMixed     `json:"mixed_read_during_upsert"`
	// Durability carries the sya_wal_* and sya_serve_* admission counters
	// accumulated over the whole run (the server runs with a WAL, fsync
	// per append, so upsert latencies above include durability).
	Durability map[string]float64 `json:"durability_metrics"`
}

type servingEnv struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPUs   int    `json:"cpus"`
	Go     string `json:"go"`
}

type servingLoad struct {
	Wells             int `json:"wells"`
	WarmupEpochs      int `json:"warmup_epochs"`
	RequestsPerClient int `json:"requests_per_client"`
}

// Serving benchmarks the resident-server read and write paths over a GWDB
// workload: for each client count, N concurrent HTTP clients issue mixed
// point/range/k-NN factual-score queries against an in-process server
// (real TCP loopback, stdlib client), then a sequential upsert phase
// measures the delta-ground + incremental-resample write latency.
func Serving(p Params) (*Table, error) {
	report, err := ServingLoad(p)
	if err != nil {
		return nil, err
	}
	tbl := &Table{
		Title:  "Serving: concurrent score queries against a resident KB (GWDB)",
		Header: []string{"clients", "requests", "qps", "p50", "p99"},
	}
	for _, pt := range report.Points {
		tbl.Add(
			fmt.Sprint(pt.Clients), fmt.Sprint(pt.Requests),
			fmt.Sprintf("%.0f", pt.QPS), ms(pt.P50Ms), ms(pt.P99Ms),
		)
	}
	tbl.Notes = append(tbl.Notes, fmt.Sprintf(
		"%d evidence upserts (delta ground + %d incremental epochs each, WAL fsync per append): p50 %s, p99 %s",
		report.Upserts.Count, report.Upserts.Epochs, ms(report.Upserts.P50Ms), ms(report.Upserts.P99Ms)))
	tbl.Notes = append(tbl.Notes, fmt.Sprintf(
		"staleness (%d timestamped upserts, accept to generation-visible): p50 %s, p99 %s",
		report.Staleness.Upserts, ms(report.Staleness.P50Ms), ms(report.Staleness.P99Ms)))
	tbl.Notes = append(tbl.Notes, fmt.Sprintf(
		"mixed phase (%d upserts vs %d reads): %d stale reads, %d shed with 429, read p50 %s p99 %s",
		report.Mixed.Upserts, report.Mixed.Reads, report.Mixed.StaleReads, report.Mixed.Shed429,
		ms(report.Mixed.ReadP50Ms), ms(report.Mixed.ReadP99Ms)))
	tbl.Notes = append(tbl.Notes, fmt.Sprintf(
		"wal: %.0f appends, %.0f fsyncs, %.0f bytes",
		report.Durability["sya_wal_appends_total"],
		report.Durability["sya_wal_fsyncs_total"],
		report.Durability["sya_wal_appended_bytes_total"]))
	if p.ServingJSON != "" {
		f, err := os.Create(p.ServingJSON)
		if err != nil {
			return nil, fmt.Errorf("bench: serving json: %w", err)
		}
		defer f.Close()
		if err := report.WriteJSON(f); err != nil {
			return nil, err
		}
		tbl.Notes = append(tbl.Notes, "report written to "+p.ServingJSON)
	}
	return tbl, nil
}

// ServingLoad runs the serving benchmark and returns the raw report.
func ServingLoad(p Params) (*ServingReport, error) {
	wells := p.GWDBWells
	if wells > 2000 {
		// The serving benchmark measures request latency, not grounding
		// scale; cap the resident KB so warmup stays in seconds.
		wells = 2000
	}
	data := datagen.Wells(datagen.WellsConfig{N: wells, Seed: p.Seed, Extent: gwdbExtent(wells)})
	sys := core.NewSystem(core.Config{
		Engine:           core.EngineSya,
		Metric:           geom.Euclidean,
		Bandwidth:        p.Bandwidth,
		SpatialScale:     p.SpatialScale,
		SupportRadius:    p.SupportRadius,
		MaxNeighbors:     p.MaxNeighbors,
		PyramidLevels:    p.PyramidLevels,
		LocalityLevel:    localityFor(gwdbExtent(wells), p.SupportRadius, p.PyramidLevels),
		Instances:        p.Instances,
		Workers:          p.Workers,
		GroundWorkers:    p.GroundWorkers,
		Epochs:           p.Epochs,
		Seed:             p.Seed,
		SkipFactorTables: true,
		Metrics:          p.Metrics,
		Trace:            p.Trace,
	})
	if err := sys.LoadProgram(datagen.GWDBProgram); err != nil {
		return nil, err
	}
	wellRows, evidence := data.Rows()
	if err := sys.LoadRows("Well", wellRows); err != nil {
		return nil, err
	}
	if err := sys.LoadRows("WellEvidence", evidence); err != nil {
		return nil, err
	}

	// The bench server runs durable (WAL, fsync per append) so the reported
	// upsert latency is the real acked-means-durable cost. A local registry
	// collects the wal/admission counters even when -metrics-addr is unset.
	reg := p.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	walDir, err := os.MkdirTemp("", "syabench-wal")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(walDir)
	srv, err := serve.New(sys, serve.Options{
		Epochs:  p.Epochs,
		Metrics: reg,
		WALPath: filepath.Join(walDir, "ev.wal"),
		// Cap 1 so the mixed phase's contender actually gets shed.
		MaxQueuedUpserts: 1,
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	if err := srv.Warmup(context.Background(), 0); err != nil {
		return nil, err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hsrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = hsrv.Serve(ln) }()
	defer hsrv.Close()
	base := "http://" + ln.Addr().String()

	const requestsPerClient = 400
	report := &ServingReport{
		Description: "Resident KB serving benchmark: concurrent HTTP clients issuing mixed point/range/k-NN factual-score queries against an in-process syad server over a GWDB workload, plus sequential evidence upserts exercising delta grounding and dirty-conclique incremental resampling. The server runs durable (evidence WAL, fsync per append) and with an admission cap of 1, so upsert latency includes durability and the mixed phase shows load-shedding (429) and degraded (stale-snapshot) reads. Regenerate with `syabench -phase=serving serving`.",
		Environment: servingEnv{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU(), Go: runtime.Version()},
		Workload:    servingLoad{Wells: wells, WarmupEpochs: p.Epochs, RequestsPerClient: requestsPerClient},
	}

	for _, clients := range servingClientCounts {
		pt, err := servingReadPhase(base, data, clients, requestsPerClient)
		if err != nil {
			return nil, err
		}
		report.Points = append(report.Points, pt)
	}

	up, err := servingUpsertPhase(base, data, p.Epochs)
	if err != nil {
		return nil, err
	}
	report.Upserts = up

	stale, err := servingStalenessPhase(base, data)
	if err != nil {
		return nil, err
	}
	report.Staleness = stale

	mixed, err := servingMixedPhase(base, data)
	if err != nil {
		return nil, err
	}
	report.Mixed = mixed

	report.Durability = map[string]float64{}
	for name, v := range reg.Snapshot() {
		if strings.HasPrefix(name, "sya_wal_") ||
			name == "sya_serve_shed_total" ||
			name == "sya_serve_inflight" ||
			name == "sya_serve_degraded_reads_total" ||
			name == "sya_serve_structural_regrounds_total" {
			report.Durability[name] = v
		}
	}
	return report, nil
}

// servingStalenessPhase measures evidence-to-visible latency (ROADMAP item
// 4a): for each fresh evidence upsert, a concurrent poller reads the query
// API until the serving generation moves past its pre-upsert value. The
// elapsed time from just before the POST to that first new-generation read
// is how long the evidence stayed invisible to readers — the client-side
// counterpart of the server's sya_serve_staleness_seconds histogram.
func servingStalenessPhase(base string, data *datagen.WellsData) (ServingStaleness, error) {
	writer := &http.Client{}
	defer writer.CloseIdleConnections()
	poller := &http.Client{}
	defer poller.CloseIdleConnections()

	readGen := func(w datagen.Well) (uint64, error) {
		url := fmt.Sprintf("%s/v1/score/point?relation=IsSafe&x=%g&y=%g", base, w.Loc.X, w.Loc.Y)
		resp, err := poller.Get(url)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			_, _ = io.Copy(io.Discard, resp.Body)
			return 0, fmt.Errorf("bench: staleness read status %d", resp.StatusCode)
		}
		var qr struct {
			Generation uint64 `json:"generation"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			return 0, err
		}
		return qr.Generation, nil
	}

	var lats []time.Duration
	skip := 32 // wells the upsert phase already labeled
	for _, w := range data.Wells {
		if w.IsEvidence {
			continue
		}
		if skip > 0 {
			skip--
			continue
		}
		if len(lats) == 16 {
			break
		}
		g0, err := readGen(w)
		if err != nil {
			return ServingStaleness{}, err
		}

		type visible struct {
			lat time.Duration
			err error
		}
		ch := make(chan visible, 1)
		t0 := time.Now()
		go func() {
			deadline := t0.Add(30 * time.Second)
			for {
				g, err := readGen(w)
				if err != nil {
					ch <- visible{err: err}
					return
				}
				if g > g0 {
					ch <- visible{lat: time.Since(t0)}
					return
				}
				if time.Now().After(deadline) {
					ch <- visible{err: fmt.Errorf("bench: generation never advanced past %d", g0)}
					return
				}
			}
		}()
		body := fmt.Sprintf(`{"relation":"WellEvidence","rows":[["%d","%s","%t"]]}`,
			w.ID, storage.Geom(w.Loc).String(), w.Safe)
		resp, err := writer.Post(base+"/v1/evidence", "application/json", strings.NewReader(body))
		if err != nil {
			return ServingStaleness{}, err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return ServingStaleness{}, fmt.Errorf("bench: staleness upsert status %d", resp.StatusCode)
		}
		v := <-ch
		if v.err != nil {
			return ServingStaleness{}, v.err
		}
		lats = append(lats, v.lat)
	}
	p50, p99 := percentiles(lats)
	return ServingStaleness{
		Upserts: len(lats),
		P50Ms:   float64(p50) / float64(time.Millisecond),
		P99Ms:   float64(p99) / float64(time.Millisecond),
	}, nil
}

// servingMixedPhase races readers against a writer streaming fresh evidence
// and a contender re-posting the same rows: the contender is either shed by
// the admission cap (429) or lands as a duplicate no-op; the readers count
// how many answers came from the degraded (stale) snapshot.
func servingMixedPhase(base string, data *datagen.WellsData) (ServingMixed, error) {
	// Fresh pins only: skip the 48 wells the upsert and staleness phases
	// already labeled so the writer really resamples (and holds the write
	// lock) per upsert.
	var fresh []datagen.Well
	skip := 48
	for _, w := range data.Wells {
		if w.IsEvidence {
			continue
		}
		if skip > 0 {
			skip--
			continue
		}
		fresh = append(fresh, w)
		if len(fresh) == 8 {
			break
		}
	}

	var (
		mixed    ServingMixed
		writerOK = make(chan struct{})
		mu       sync.Mutex
		lats     []time.Duration
		stale    int
		reads    int
		shed     int
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	post := func(client *http.Client, w datagen.Well) (int, error) {
		body := fmt.Sprintf(`{"relation":"WellEvidence","rows":[["%d","%s","%t"]]}`,
			w.ID, storage.Geom(w.Loc).String(), w.Safe)
		resp, err := client.Post(base+"/v1/evidence", "application/json", strings.NewReader(body))
		if err != nil {
			return 0, err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		defer close(writerOK)
		client := &http.Client{}
		defer client.CloseIdleConnections()
		for _, w := range fresh {
			for {
				code, err := post(client, w)
				if err != nil {
					fail(err)
					return
				}
				if code == http.StatusOK {
					break
				}
				if code != http.StatusTooManyRequests {
					fail(fmt.Errorf("bench: mixed-phase upsert status %d", code))
					return
				}
				// The contender beat us to the single admission slot;
				// back off and retry like a well-behaved client.
				time.Sleep(time.Millisecond)
			}
		}
	}()
	wg.Add(1)
	go func() { // contender: shed or duplicate, never an error
		defer wg.Done()
		client := &http.Client{}
		defer client.CloseIdleConnections()
		for {
			select {
			case <-writerOK:
				return
			default:
			}
			for _, w := range fresh {
				code, err := post(client, w)
				if err != nil {
					fail(err)
					return
				}
				if code == http.StatusTooManyRequests {
					mu.Lock()
					shed++
					mu.Unlock()
				} else if code != http.StatusOK {
					fail(fmt.Errorf("bench: contender upsert status %d", code))
					return
				}
			}
		}
	}()
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) { // readers
			defer wg.Done()
			client := &http.Client{}
			defer client.CloseIdleConnections()
			for i := 0; ; i++ {
				select {
				case <-writerOK:
					return
				default:
				}
				w := data.Wells[(r*131+i)%len(data.Wells)]
				url := fmt.Sprintf("%s/v1/score/point?relation=IsSafe&x=%g&y=%g", base, w.Loc.X, w.Loc.Y)
				t0 := time.Now()
				resp, err := client.Get(url)
				if err != nil {
					fail(err)
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					fail(fmt.Errorf("bench: mixed-phase read status %d", resp.StatusCode))
					return
				}
				mu.Lock()
				lats = append(lats, time.Since(t0))
				reads++
				if strings.Contains(string(raw), `"stale":true`) {
					stale++
				}
				mu.Unlock()
			}
		}(r)
	}
	wg.Wait()
	if firstErr != nil {
		return mixed, firstErr
	}
	p50, p99 := percentiles(lats)
	mixed = ServingMixed{
		Upserts:    len(fresh),
		Reads:      reads,
		StaleReads: stale,
		Shed429:    shed,
		ReadP50Ms:  float64(p50) / float64(time.Millisecond),
		ReadP99Ms:  float64(p99) / float64(time.Millisecond),
	}
	return mixed, nil
}

// servingReadPhase measures one client-count load point.
func servingReadPhase(base string, data *datagen.WellsData, clients, perClient int) (ServingPoint, error) {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		lats     []time.Duration
		firstErr error
	)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{}
			defer client.CloseIdleConnections()
			local := make([]time.Duration, 0, perClient)
			for i := 0; i < perClient; i++ {
				w := data.Wells[(c*perClient+i)%len(data.Wells)]
				var url string
				switch i % 3 {
				case 0:
					url = fmt.Sprintf("%s/v1/score/point?relation=IsSafe&x=%g&y=%g", base, w.Loc.X, w.Loc.Y)
				case 1:
					url = fmt.Sprintf("%s/v1/score/range?relation=IsSafe&minx=%g&miny=%g&maxx=%g&maxy=%g",
						base, w.Loc.X-20, w.Loc.Y-20, w.Loc.X+20, w.Loc.Y+20)
				default:
					url = fmt.Sprintf("%s/v1/score/knn?relation=IsSafe&x=%g&y=%g&k=8", base, w.Loc.X, w.Loc.Y)
				}
				t0 := time.Now()
				resp, err := client.Get(url)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("bench: serving read status %d", resp.StatusCode)
					}
					mu.Unlock()
					return
				}
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return ServingPoint{}, firstErr
	}
	p50, p99 := percentiles(lats)
	return ServingPoint{
		Clients:  clients,
		Requests: len(lats),
		QPS:      float64(len(lats)) / elapsed.Seconds(),
		P50Ms:    float64(p50) / float64(time.Millisecond),
		P99Ms:    float64(p99) / float64(time.Millisecond),
	}, nil
}

// servingUpsertPhase streams evidence for unlabeled wells and measures the
// end-to-end upsert latency (parse + delta ground + pin + resample).
func servingUpsertPhase(base string, data *datagen.WellsData, epochs int) (ServingUpsert, error) {
	client := &http.Client{}
	defer client.CloseIdleConnections()
	var lats []time.Duration
	for _, w := range data.Wells {
		if w.IsEvidence {
			continue
		}
		if len(lats) == 32 {
			break
		}
		body := fmt.Sprintf(`{"relation":"WellEvidence","rows":[["%d","%s","%t"]]}`,
			w.ID, storage.Geom(w.Loc).String(), w.Safe)
		t0 := time.Now()
		resp, err := client.Post(base+"/v1/evidence", "application/json", strings.NewReader(body))
		if err != nil {
			return ServingUpsert{}, err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return ServingUpsert{}, fmt.Errorf("bench: upsert status %d", resp.StatusCode)
		}
		lats = append(lats, time.Since(t0))
	}
	p50, p99 := percentiles(lats)
	return ServingUpsert{
		Count:  len(lats),
		Epochs: epochs,
		P50Ms:  float64(p50) / float64(time.Millisecond),
		P99Ms:  float64(p99) / float64(time.Millisecond),
	}, nil
}

// percentiles returns the p50 and p99 of a latency sample.
func percentiles(lats []time.Duration) (p50, p99 time.Duration) {
	if len(lats) == 0 {
		return 0, 0
	}
	sorted := make([]time.Duration, len(lats))
	copy(sorted, lats)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := func(q float64) time.Duration {
		i := int(q * float64(len(sorted)))
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	return idx(0.50), idx(0.99)
}

// WriteJSON renders the report as indented JSON.
func (r *ServingReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
