package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/serve"
	"repro/internal/storage"
)

// servingClientCounts are the load points of the serving benchmark.
var servingClientCounts = []int{1, 2, 4, 8}

// ServingPoint is one measured load point: N concurrent HTTP clients
// hammering the read API of a resident syad-style server.
type ServingPoint struct {
	Clients  int     `json:"clients"`
	Requests int     `json:"requests"`
	QPS      float64 `json:"qps"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

// ServingUpsert summarizes the write path: evidence upserts through the
// HTTP API, each folding in via delta grounding + incremental resampling.
type ServingUpsert struct {
	Count  int     `json:"count"`
	Epochs int     `json:"epochs_per_upsert"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

// ServingReport is the full serving-benchmark result, serialized to
// BENCH_serving.json by syabench -phase=serving.
type ServingReport struct {
	Description string         `json:"description"`
	Environment servingEnv     `json:"environment"`
	Workload    servingLoad    `json:"workload"`
	Points      []ServingPoint `json:"points"`
	Upserts     ServingUpsert  `json:"upserts"`
}

type servingEnv struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPUs   int    `json:"cpus"`
	Go     string `json:"go"`
}

type servingLoad struct {
	Wells             int `json:"wells"`
	WarmupEpochs      int `json:"warmup_epochs"`
	RequestsPerClient int `json:"requests_per_client"`
}

// Serving benchmarks the resident-server read and write paths over a GWDB
// workload: for each client count, N concurrent HTTP clients issue mixed
// point/range/k-NN factual-score queries against an in-process server
// (real TCP loopback, stdlib client), then a sequential upsert phase
// measures the delta-ground + incremental-resample write latency.
func Serving(p Params) (*Table, error) {
	report, err := ServingLoad(p)
	if err != nil {
		return nil, err
	}
	tbl := &Table{
		Title:  "Serving: concurrent score queries against a resident KB (GWDB)",
		Header: []string{"clients", "requests", "qps", "p50", "p99"},
	}
	for _, pt := range report.Points {
		tbl.Add(
			fmt.Sprint(pt.Clients), fmt.Sprint(pt.Requests),
			fmt.Sprintf("%.0f", pt.QPS), ms(pt.P50Ms), ms(pt.P99Ms),
		)
	}
	tbl.Notes = append(tbl.Notes, fmt.Sprintf(
		"%d evidence upserts (delta ground + %d incremental epochs each): p50 %s, p99 %s",
		report.Upserts.Count, report.Upserts.Epochs, ms(report.Upserts.P50Ms), ms(report.Upserts.P99Ms)))
	if p.ServingJSON != "" {
		f, err := os.Create(p.ServingJSON)
		if err != nil {
			return nil, fmt.Errorf("bench: serving json: %w", err)
		}
		defer f.Close()
		if err := report.WriteJSON(f); err != nil {
			return nil, err
		}
		tbl.Notes = append(tbl.Notes, "report written to "+p.ServingJSON)
	}
	return tbl, nil
}

// ServingLoad runs the serving benchmark and returns the raw report.
func ServingLoad(p Params) (*ServingReport, error) {
	wells := p.GWDBWells
	if wells > 2000 {
		// The serving benchmark measures request latency, not grounding
		// scale; cap the resident KB so warmup stays in seconds.
		wells = 2000
	}
	data := datagen.Wells(datagen.WellsConfig{N: wells, Seed: p.Seed, Extent: gwdbExtent(wells)})
	sys := core.NewSystem(core.Config{
		Engine:           core.EngineSya,
		Metric:           geom.Euclidean,
		Bandwidth:        p.Bandwidth,
		SpatialScale:     p.SpatialScale,
		SupportRadius:    p.SupportRadius,
		MaxNeighbors:     p.MaxNeighbors,
		PyramidLevels:    p.PyramidLevels,
		LocalityLevel:    localityFor(gwdbExtent(wells), p.SupportRadius, p.PyramidLevels),
		Instances:        p.Instances,
		Workers:          p.Workers,
		GroundWorkers:    p.GroundWorkers,
		Epochs:           p.Epochs,
		Seed:             p.Seed,
		SkipFactorTables: true,
		Metrics:          p.Metrics,
		Trace:            p.Trace,
	})
	if err := sys.LoadProgram(datagen.GWDBProgram); err != nil {
		return nil, err
	}
	wellRows, evidence := data.Rows()
	if err := sys.LoadRows("Well", wellRows); err != nil {
		return nil, err
	}
	if err := sys.LoadRows("WellEvidence", evidence); err != nil {
		return nil, err
	}

	srv, err := serve.New(sys, serve.Options{Epochs: p.Epochs, Metrics: p.Metrics})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	if err := srv.Warmup(context.Background(), 0); err != nil {
		return nil, err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hsrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = hsrv.Serve(ln) }()
	defer hsrv.Close()
	base := "http://" + ln.Addr().String()

	const requestsPerClient = 400
	report := &ServingReport{
		Description: "Resident KB serving benchmark: concurrent HTTP clients issuing mixed point/range/k-NN factual-score queries against an in-process syad server over a GWDB workload, plus sequential evidence upserts exercising delta grounding and dirty-conclique incremental resampling. Regenerate with `syabench -phase=serving serving`.",
		Environment: servingEnv{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU(), Go: runtime.Version()},
		Workload:    servingLoad{Wells: wells, WarmupEpochs: p.Epochs, RequestsPerClient: requestsPerClient},
	}

	for _, clients := range servingClientCounts {
		pt, err := servingReadPhase(base, data, clients, requestsPerClient)
		if err != nil {
			return nil, err
		}
		report.Points = append(report.Points, pt)
	}

	up, err := servingUpsertPhase(base, data, p.Epochs)
	if err != nil {
		return nil, err
	}
	report.Upserts = up
	return report, nil
}

// servingReadPhase measures one client-count load point.
func servingReadPhase(base string, data *datagen.WellsData, clients, perClient int) (ServingPoint, error) {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		lats     []time.Duration
		firstErr error
	)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{}
			defer client.CloseIdleConnections()
			local := make([]time.Duration, 0, perClient)
			for i := 0; i < perClient; i++ {
				w := data.Wells[(c*perClient+i)%len(data.Wells)]
				var url string
				switch i % 3 {
				case 0:
					url = fmt.Sprintf("%s/v1/score/point?relation=IsSafe&x=%g&y=%g", base, w.Loc.X, w.Loc.Y)
				case 1:
					url = fmt.Sprintf("%s/v1/score/range?relation=IsSafe&minx=%g&miny=%g&maxx=%g&maxy=%g",
						base, w.Loc.X-20, w.Loc.Y-20, w.Loc.X+20, w.Loc.Y+20)
				default:
					url = fmt.Sprintf("%s/v1/score/knn?relation=IsSafe&x=%g&y=%g&k=8", base, w.Loc.X, w.Loc.Y)
				}
				t0 := time.Now()
				resp, err := client.Get(url)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("bench: serving read status %d", resp.StatusCode)
					}
					mu.Unlock()
					return
				}
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return ServingPoint{}, firstErr
	}
	p50, p99 := percentiles(lats)
	return ServingPoint{
		Clients:  clients,
		Requests: len(lats),
		QPS:      float64(len(lats)) / elapsed.Seconds(),
		P50Ms:    float64(p50) / float64(time.Millisecond),
		P99Ms:    float64(p99) / float64(time.Millisecond),
	}, nil
}

// servingUpsertPhase streams evidence for unlabeled wells and measures the
// end-to-end upsert latency (parse + delta ground + pin + resample).
func servingUpsertPhase(base string, data *datagen.WellsData, epochs int) (ServingUpsert, error) {
	client := &http.Client{}
	defer client.CloseIdleConnections()
	var lats []time.Duration
	for _, w := range data.Wells {
		if w.IsEvidence {
			continue
		}
		if len(lats) == 32 {
			break
		}
		body := fmt.Sprintf(`{"relation":"WellEvidence","rows":[["%d","%s","%t"]]}`,
			w.ID, storage.Geom(w.Loc).String(), w.Safe)
		t0 := time.Now()
		resp, err := client.Post(base+"/v1/evidence", "application/json", strings.NewReader(body))
		if err != nil {
			return ServingUpsert{}, err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return ServingUpsert{}, fmt.Errorf("bench: upsert status %d", resp.StatusCode)
		}
		lats = append(lats, time.Since(t0))
	}
	p50, p99 := percentiles(lats)
	return ServingUpsert{
		Count:  len(lats),
		Epochs: epochs,
		P50Ms:  float64(p50) / float64(time.Millisecond),
		P99Ms:  float64(p99) / float64(time.Millisecond),
	}, nil
}

// percentiles returns the p50 and p99 of a latency sample.
func percentiles(lats []time.Duration) (p50, p99 time.Duration) {
	if len(lats) == 0 {
		return 0, 0
	}
	sorted := make([]time.Duration, len(lats))
	copy(sorted, lats)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := func(q float64) time.Duration {
		i := int(q * float64(len(sorted)))
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	return idx(0.50), idx(0.99)
}

// WriteJSON renders the report as indented JSON.
func (r *ServingReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
