package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/geom"
)

// shardCounts is the shard sweep: 1 is the single-process reference, the
// rest run the share-nothing partition with in-process transports.
var shardCounts = []int{1, 2, 4}

// grainSweep probes the chunk-grain knob on the single-process sampler
// (0 = engine default, historically the hard-coded 64).
var grainSweep = []int{0, 16, 64, 256}

// grainCaveat travels with the grain sweep wherever it is rendered.
const grainCaveat = "grain sweep ran on a shared host — chunk grain trades scheduling overhead " +
	"against load balance, so on a 1-CPU host (or a noisy CI runner) the spread mostly measures " +
	"per-chunk bookkeeping, not parallel speedup; rerun on dedicated multi-core hardware before tuning"

// ShardPoint is one shard count of the sweep: sampling throughput, the
// halo-exchange cost split out of it, and marginal agreement with the
// single-process reference.
type ShardPoint struct {
	Shards int `json:"shards"`
	// EpochsPerSec counts completed whole-graph epochs per wall second
	// (every shard advances together, so shard epochs are graph epochs).
	EpochsPerSec float64 `json:"epochs_per_sec"`
	InferMs      float64 `json:"infer_ms"`
	// BoundaryVars is the total halo size: variables whose state crosses a
	// shard boundary at each epoch barrier.
	BoundaryVars  int   `json:"boundary_vars"`
	ExchangeBytes int64 `json:"exchange_bytes"`
	// ExchangeSeconds sums the time every shard spent inside halo exchange
	// (encode + send + wait + apply) over the whole run.
	ExchangeSeconds float64 `json:"exchange_seconds_total"`
	// OverheadFraction is the mean fraction of one shard's wall time spent
	// in halo exchange: ExchangeSeconds / Shards / wall. The acceptance bar
	// for this harness is < 0.15.
	OverheadFraction float64 `json:"exchange_overhead_fraction"`
	// MaxTV is the worst total-variation distance of any query marginal
	// against the single-process run (distinct chains: Monte-Carlo noise,
	// not a bit-identity check).
	MaxTV float64 `json:"max_tv_vs_single_process"`
}

// GrainPoint is one chunk-grain level of the single-process sweep.
type GrainPoint struct {
	Grain        int     `json:"chunk_grain"`
	EpochsPerSec float64 `json:"epochs_per_sec"`
}

// ShardReport is the sharded-inference benchmark result, serialized to
// BENCH_shard.json by syabench -phase=shard.
type ShardReport struct {
	Description string       `json:"description"`
	Environment servingEnv   `json:"environment"`
	Workload    shardLoad    `json:"workload"`
	Points      []ShardPoint `json:"points"`
	GrainSweep  []GrainPoint `json:"grain_sweep"`
	GrainNote   string       `json:"grain_note"`
}

type shardLoad struct {
	Wells  int `json:"wells"`
	Vars   int `json:"graph_vars"`
	Epochs int `json:"epochs"`
}

// Shard benchmarks share-nothing sharded inference on the fig9-style GWDB
// workload: the same grounded graph partitioned into 1, 2 and 4 shards with
// in-process transports, reporting epochs/sec, halo-exchange overhead, and
// marginal agreement with the single-process run, plus the chunk-grain sweep.
func Shard(p Params) (*Table, error) {
	report, err := ShardLoad(p)
	if err != nil {
		return nil, err
	}
	tbl := &Table{
		Title:  fmt.Sprintf("Sharded inference: halo-exchange overhead vs shard count (GWDB, %d wells, %d vars)", report.Workload.Wells, report.Workload.Vars),
		Header: []string{"shards", "epochs/s", "infer", "halo vars", "exch bytes", "exch time", "overhead", "max TV"},
	}
	for _, pt := range report.Points {
		tbl.Add(
			fmt.Sprint(pt.Shards),
			fmt.Sprintf("%.1f", pt.EpochsPerSec),
			ms(pt.InferMs),
			fmt.Sprint(pt.BoundaryVars),
			fmt.Sprint(pt.ExchangeBytes),
			fmt.Sprintf("%.3fs", pt.ExchangeSeconds),
			fmt.Sprintf("%.1f%%", 100*pt.OverheadFraction),
			fmt.Sprintf("%.4f", pt.MaxTV),
		)
	}
	tbl.Notes = append(tbl.Notes,
		"overhead = mean fraction of one shard's wall time spent in halo exchange (encode+send+wait+apply); the acceptance bar is <15%")
	grains := &Table{
		Title:  "Chunk-grain sweep (single process)",
		Header: []string{"grain", "epochs/s"},
	}
	for _, g := range report.GrainSweep {
		label := fmt.Sprint(g.Grain)
		if g.Grain == 0 {
			label = "default"
		}
		grains.Add(label, fmt.Sprintf("%.1f", g.EpochsPerSec))
	}
	if p.ShardJSON != "" {
		f, err := os.Create(p.ShardJSON)
		if err != nil {
			return nil, fmt.Errorf("bench: shard json: %w", err)
		}
		defer f.Close()
		if err := report.WriteJSON(f); err != nil {
			return nil, err
		}
		tbl.Notes = append(tbl.Notes, "report written to "+p.ShardJSON)
	}
	// Render the grain sweep as an appendix of the main table.
	var buf strings.Builder
	grains.Fprint(&buf)
	tbl.Notes = append(tbl.Notes, "chunk-grain sweep:\n"+buf.String())
	tbl.Notes = append(tbl.Notes, grainCaveat)
	return tbl, nil
}

// ShardLoad runs the sharded-inference benchmark and returns the raw report.
func ShardLoad(p Params) (*ShardReport, error) {
	wells := p.GWDBWells
	data := datagen.Wells(datagen.WellsConfig{N: wells, Seed: p.Seed, Extent: gwdbExtent(wells)})
	ctx := context.Background()

	build := func(shards, grain int) (*core.System, error) {
		s := core.NewSystem(core.Config{
			Engine:           core.EngineSya,
			Metric:           geom.Euclidean,
			Bandwidth:        p.Bandwidth,
			SpatialScale:     p.SpatialScale,
			SupportRadius:    p.SupportRadius,
			MaxNeighbors:     p.MaxNeighbors,
			PyramidLevels:    p.PyramidLevels,
			LocalityLevel:    localityFor(gwdbExtent(wells), p.SupportRadius, p.PyramidLevels),
			Instances:        p.Instances,
			Workers:          p.Workers,
			GroundWorkers:    p.GroundWorkers,
			Epochs:           p.Epochs,
			Seed:             p.Seed,
			NoKernels:        p.NoKernels,
			ChunkGrain:       grain,
			Shards:           shards,
			SkipFactorTables: true,
			Metrics:          p.Metrics,
			Trace:            p.Trace,
		})
		if err := s.LoadProgram(datagen.GWDBProgram); err != nil {
			s.Close()
			return nil, err
		}
		wellRows, evidence := data.Rows()
		if err := s.LoadRows("Well", wellRows); err != nil {
			s.Close()
			return nil, err
		}
		if err := s.LoadRows("WellEvidence", evidence); err != nil {
			s.Close()
			return nil, err
		}
		return s, nil
	}

	report := &ShardReport{
		Description: "Sharded share-nothing inference benchmark: the fig9-style GWDB workload partitioned by pyramid subtree into N shards (in-process transports), each with its own sampler and compiled-kernel slab, exchanging boundary-variable states at every epoch barrier. epochs_per_sec counts whole-graph epochs; exchange_overhead_fraction is the mean share of one shard's wall time spent in halo exchange (the acceptance bar is <0.15); max_tv_vs_single_process compares query marginals against the 1-shard run (distinct chains, so Monte-Carlo noise). The grain sweep probes core.Config.ChunkGrain on the single-process sampler. Regenerate with `syabench -phase=shard -shard-json BENCH_shard.json shard`.",
		Environment: servingEnv{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU(), Go: runtime.Version()},
		Workload:    shardLoad{Wells: wells, Epochs: p.Epochs},
		GrainNote:   grainCaveat,
	}

	var baseline map[string][]float64
	for _, shards := range shardCounts {
		s, err := build(shards, p.ChunkGrain)
		if err != nil {
			return nil, err
		}
		gres, err := s.Ground()
		if err != nil {
			s.Close()
			return nil, err
		}
		report.Workload.Vars = gres.Stats.Vars
		t0 := time.Now()
		scores, _, err := s.InferContext(ctx, p.Epochs)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("bench: shards=%d: %w", shards, err)
		}
		wall := time.Since(t0)
		pt := ShardPoint{
			Shards:  shards,
			InferMs: float64(wall) / float64(time.Millisecond),
		}
		if sec := wall.Seconds(); sec > 0 {
			pt.EpochsPerSec = float64(p.Epochs) / sec
		}
		if g := s.ShardGroup(); g != nil {
			ex := g.ExchangeStats()
			pt.BoundaryVars = ex.BoundaryVars
			pt.ExchangeBytes = ex.Bytes
			pt.ExchangeSeconds = ex.Seconds
			if sec := wall.Seconds(); sec > 0 {
				pt.OverheadFraction = ex.Seconds / float64(shards) / sec
			}
		}
		marg := map[string][]float64{}
		scores.Each("IsSafe", func(key string, _ int32, marginal []float64) bool {
			marg[key] = marginal
			return true
		})
		if baseline == nil {
			baseline = marg
		} else {
			for key, m := range marg {
				if tv := tvDist(m, baseline[key]); tv > pt.MaxTV {
					pt.MaxTV = tv
				}
			}
		}
		s.Close()
		report.Points = append(report.Points, pt)
	}

	for _, grain := range grainSweep {
		s, err := build(1, grain)
		if err != nil {
			return nil, err
		}
		if _, err := s.Ground(); err != nil {
			s.Close()
			return nil, err
		}
		t0 := time.Now()
		if _, _, err := s.InferContext(ctx, p.Epochs); err != nil {
			s.Close()
			return nil, fmt.Errorf("bench: grain=%d: %w", grain, err)
		}
		wall := time.Since(t0)
		gp := GrainPoint{Grain: grain}
		if sec := wall.Seconds(); sec > 0 {
			gp.EpochsPerSec = float64(p.Epochs) / sec
		}
		s.Close()
		report.GrainSweep = append(report.GrainSweep, gp)
	}
	return report, nil
}

// WriteJSON renders the report as indented JSON.
func (r *ShardReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
