package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/stats"
	"repro/internal/storage"
)

// Table1 reproduces the paper's Table I: per knowledge base, the number of
// input relations, inference rules, factor-graph variables and factors
// (logical + ground spatial under the Sya engine).
func Table1(p Params) (*Table, error) {
	t := &Table{
		Title:  "Table I: statistics of KBs used in experiments",
		Header: []string{"System", "No. Rels", "No. Rules", "No. Vars", "No. Factors"},
	}
	type kbSpec struct {
		kb      KB
		rels    int // input (non-evidence) relations, as Table I counts them
		program string
	}
	specs := []kbSpec{
		{NewGWDB(p), 1, datagen.GWDBProgram},
		{NewNYCCAS(p), 1, datagen.NYCCASProgram},
	}
	for _, spec := range specs {
		s, err := spec.kb.Build(core.EngineSya, p.Seed)
		if err != nil {
			return nil, err
		}
		res, err := s.Ground()
		if err != nil {
			return nil, err
		}
		rules := len(s.Program().Rules)
		factors := int64(res.Stats.LogicalFactors) + res.Stats.GroundSpatialFactors
		t.Add(spec.kb.Name(),
			fmt.Sprint(spec.rels),
			fmt.Sprint(rules),
			fmt.Sprint(res.Stats.Vars),
			fmt.Sprint(factors))
	}
	t.Notes = append(t.Notes,
		"paper (full scale): GWDB 1/11/104K/39.5M, NYCCAS 1/4/34K/233K; sizes here follow the -wells/-side flags")
	return t, nil
}

// Fig1 reproduces the paper's Fig. 1(b): per-county factual scores of
// EbolaKB under DeepDive (boolean spatial predicate) and Sya (spatial
// factors), against the WHO-style ground-truth ranges, plus each system's
// F1-score.
func Fig1(p Params) (*Table, error) {
	t := &Table{
		Title:  "Fig 1: factual scores of EbolaKB (DeepDive vs Sya)",
		Header: []string{"County", "Truth range", "DeepDive", "Sya"},
	}
	counties := datagen.EbolaCounties()
	scoresFor := func(engine core.Engine) (map[int64]float64, error) {
		s := core.NewSystem(core.Config{
			Engine:        engine,
			Metric:        geom.HaversineMiles,
			Bandwidth:     60,
			PyramidLevels: 4,
			Epochs:        6000,
			Seed:          p.Seed,
			GroundWorkers: p.GroundWorkers,
			Metrics:       p.Metrics,
			Trace:         p.Trace,
		})
		if err := s.LoadProgram(datagen.EbolaProgram); err != nil {
			return nil, err
		}
		county, evidence := datagen.EbolaRows(counties)
		if err := s.LoadRows("County", county); err != nil {
			return nil, err
		}
		if err := s.LoadRows("CountyEvidence", evidence); err != nil {
			return nil, err
		}
		if _, err := s.Ground(); err != nil {
			return nil, err
		}
		scores, err := s.Infer()
		if err != nil {
			return nil, err
		}
		out := map[int64]float64{}
		for _, c := range counties {
			v, ok := scores.TrueProb("HasEbola", []storage.Value{storage.Int(c.ID), storage.Geom(c.Loc)})
			if !ok {
				return nil, fmt.Errorf("bench: no score for %s", c.Name)
			}
			out[c.ID] = v
		}
		return out, nil
	}
	dd, err := scoresFor(core.EngineDeepDive)
	if err != nil {
		return nil, err
	}
	sy, err := scoresFor(core.EngineSya)
	if err != nil {
		return nil, err
	}
	evalF1 := func(m map[int64]float64) float64 {
		var exs []stats.Example
		for _, c := range counties[1:] { // query counties only
			exs = append(exs, stats.Example{Score: m[c.ID], Truth: c.Truth, HasTruth: true})
		}
		return stats.Evaluate(exs, stats.DefaultOptions()).F1
	}
	for _, c := range counties {
		t.Add(c.Name,
			fmt.Sprintf("[%.2f, %.2f]", c.Truth.Lo, c.Truth.Hi),
			f3(dd[c.ID]),
			f3(sy[c.ID]))
	}
	t.Add("F1-score", "", f3(evalF1(dd)), f3(evalF1(sy)))
	t.Notes = append(t.Notes,
		"paper: DeepDive (0.51, 0.45, 0.06) F1 0.39; Sya (0.76, 0.53, 0.22) F1 0.85",
		"shape: DeepDive scores Margibi ≈ Bong (boolean predicate) and near-kills Gbarpolu; Sya grades by distance")
	return t, nil
}

// Fig8 reproduces Fig. 8: precision and recall of Sya vs DeepDive on both
// knowledge bases, averaged over Runs seeds.
func Fig8(p Params) (*Table, error) {
	results, err := compareKBs(p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Fig 8: precision and recall vs DeepDive",
		Header: []string{"KB", "Engine", "Precision", "Recall"},
	}
	for _, r := range results {
		t.Add(r.KB, r.Engine, f3(r.Precision), f3(r.Recall))
	}
	t.Notes = append(t.Notes,
		"paper shape: Sya precision > DeepDive by >53% relative on both KBs;",
		"recall gain large on GWDB (~60%) but small on NYCCAS (~9%, random evidence)")
	return t, nil
}

// Fig9 reproduces Fig. 9: F1-scores and grounding/inference times of Sya vs
// DeepDive on both knowledge bases.
func Fig9(p Params) (*Table, error) {
	results, err := compareKBs(p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Fig 9: F1-score and execution time vs DeepDive",
		Header: []string{"KB", "Engine", "F1", "Grounding", "Inference", "Vars", "Factors"},
	}
	for _, r := range results {
		t.Add(r.KB, r.Engine, f3(r.F1),
			ms(float64(r.GroundTime.Microseconds())/1000),
			ms(float64(r.InferTime.Microseconds())/1000),
			fmt.Sprint(r.Vars), fmt.Sprint(r.Factors))
	}
	t.Notes = append(t.Notes,
		"paper shape: Sya F1 +120% (GWDB) / +27% (NYCCAS); grounding ≤15% slower; inference ≥30% faster")
	return t, nil
}
