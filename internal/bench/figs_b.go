package bench

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/gibbs"
	"repro/internal/grounding"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/weighting"
)

// Fig10 reproduces Fig. 10: DeepDive with step-function rules approximating
// spatial decay. As the band count grows, F1 approaches (but does not
// reach) Sya while grounding time explodes — one SQL query per band rule.
func Fig10(p Params) (*Table, error) {
	t := &Table{
		Title:  "Fig 10: DeepDive step-function rules vs Sya (GWDB)",
		Header: []string{"System", "Rules", "F1", "Grounding"},
	}
	k := NewGWDB(p)
	// Sya reference. With p.GroundOnly (syabench -phase=grounding) inference
	// is skipped throughout and the F1 column renders as "-": the figure's
	// grounding-latency axis is then reproduced in isolation.
	infer := func(s *core.System) (float64, error) {
		if p.GroundOnly {
			return math.NaN(), nil
		}
		scores, err := s.Infer()
		if err != nil {
			return 0, err
		}
		return stats.Evaluate(k.Examples(scores), stats.DefaultOptions()).F1, nil
	}
	sya, err := k.Build(core.EngineSya, p.Seed)
	if err != nil {
		return nil, err
	}
	if _, err := sya.Ground(); err != nil {
		return nil, err
	}
	syaF1, err := infer(sya)
	if err != nil {
		return nil, err
	}
	t.Add("Sya", fmt.Sprint(len(sya.Program().Rules)), f3(syaF1),
		ms(float64(sya.GroundingTime().Microseconds())/1000))
	// DeepDive with increasing band counts (the paper sweeps 11 → 11k
	// rules). Bands replace the ungated proximity rule R11, stretched over
	// the full distance domain (the paper bands the whole range: "0 ≤ D <
	// 10", "10 ≤ D < 20", ...), with weights sampled from the same
	// exponential decay Sya uses. One band couples far pairs at mid-range
	// weight — a poor approximation; refinement approaches Sya's decay.
	// Total rules = 10 + bands, and every band is a separate spatial-join
	// grounding query, which is what makes the paper's 11k-rule grounding
	// take 12+ hours.
	decay := weighting.Exponential{Bandwidth: p.Bandwidth, Scale: p.SpatialScale}
	maxDist := 4 * p.SupportRadius
	for _, bands := range []int{1, 10, 50, 200} {
		s, err := k.Build(core.EngineDeepDive, p.Seed)
		if err != nil {
			return nil, err
		}
		if err := s.ExpandStepRulesWeighted("R11", bands, maxDist, decay); err != nil {
			return nil, err
		}
		if _, err := s.Ground(); err != nil {
			return nil, err
		}
		f1, err := infer(s)
		if err != nil {
			return nil, err
		}
		t.Add("DeepDive", fmt.Sprint(len(s.Program().Rules)), f3(f1),
			ms(float64(s.GroundingTime().Microseconds())/1000))
	}
	t.Notes = append(t.Notes,
		"paper shape: more bands → better F1 but grounding latency grows with rule count",
		"(the paper's 11k rules took >12h grounding for 20% less F1 than Sya)")
	return t, nil
}

// Fig11 reproduces Fig. 11: the pruning threshold T trade-off on the
// categorical GWDB variant (h = 10 domain values): higher T → higher
// precision, lower recall, and sharply lower grounding+inference time.
func Fig11(p Params) (*Table, error) {
	t := &Table{
		Title:  "Fig 11: effect of pruning threshold T (GWDB categorical, h=10)",
		Header: []string{"T", "Precision", "Recall", "Grounding", "Inference", "AllowedPairs"},
	}
	const h = 10
	data := datagen.Wells(datagen.WellsConfig{N: p.GWDBWells / 2, Seed: p.Seed, Extent: 600})
	for _, T := range []float64{0.3, 0.5, 0.7, 0.9} {
		s := core.NewSystem(core.Config{
			Engine:           core.EngineSya,
			Metric:           geom.Euclidean,
			Bandwidth:        p.Bandwidth,
			SupportRadius:    p.SupportRadius,
			MaxNeighbors:     p.MaxNeighbors,
			PyramidLevels:    p.PyramidLevels,
			Instances:        p.Instances,
			GroundWorkers:    p.GroundWorkers,
			Epochs:           p.Epochs,
			Seed:             p.Seed,
			PruneThreshold:   T,
			NoKernels:        p.NoKernels,
			SkipFactorTables: true,
			Metrics:          p.Metrics,
			Trace:            p.Trace,
		})
		if err := s.LoadProgram(datagen.GWDBCategoricalProgram); err != nil {
			return nil, err
		}
		wells, _ := data.Rows()
		if err := s.LoadRows("Well", wells); err != nil {
			return nil, err
		}
		if err := s.LoadRows("LevelEvidence", data.LevelRows(h)); err != nil {
			return nil, err
		}
		gres, err := s.Ground()
		if err != nil {
			return nil, err
		}
		scores, err := s.Infer()
		if err != nil {
			return nil, err
		}
		prec, rec := categoricalPR(data, scores, h)
		t.Add(fmt.Sprintf("%.1f", T), f3(prec), f3(rec),
			ms(float64(s.GroundingTime().Microseconds())/1000),
			ms(float64(s.InferenceTime().Microseconds())/1000),
			fmt.Sprint(gres.Stats.AllowedValuePairs))
	}
	t.Notes = append(t.Notes,
		"paper shape: raising T trades recall for precision and cuts total time (~96% from T=0.3 to 0.9)")
	return t, nil
}

// categoricalPR scores categorical predictions: the predicted level is the
// marginal argmax; a prediction is committed when its mass clearly exceeds
// uniform, and correct when within one level of the truth (the categorical
// analogue of the paper's 0.1 score tolerance at h = 10).
func categoricalPR(data *datagen.WellsData, scores *core.Scores, h int) (prec, rec float64) {
	var committed, correctCommitted, correctAll, all int
	for _, w := range data.Wells {
		if w.IsEvidence {
			continue
		}
		m, ok := scores.Marginal("RiskLevel", []storage.Value{storage.Int(w.ID), storage.Geom(w.Loc)})
		if !ok {
			continue
		}
		best, bestP := 0, 0.0
		for lvl, p := range m {
			if p > bestP {
				best, bestP = lvl, p
			}
		}
		truth := int(datagen.Level(w.TruthProb, h))
		correct := best >= truth-1 && best <= truth+1
		all++
		if correct {
			correctAll++
		}
		if bestP >= 1.5/float64(h) {
			committed++
			if correct {
				correctCommitted++
			}
		}
	}
	if committed > 0 {
		prec = float64(correctCommitted) / float64(committed)
	}
	if all > 0 {
		rec = float64(correctAll) / float64(all)
	}
	return prec, rec
}

// Fig12 reproduces Fig. 12: F1 and inference time as the epoch budget grows
// (the paper sweeps 100 → 100k and sees saturation near 1000; Sya stays
// above DeepDive at every budget).
func Fig12(p Params) (*Table, error) {
	t := &Table{
		Title:  "Fig 12: effect of inference epochs (GWDB)",
		Header: []string{"Epochs", "Sya F1", "Sya time", "DeepDive F1", "DeepDive time"},
	}
	k := NewGWDB(p)
	checkpoints := []int{p.Epochs / 4, p.Epochs, p.Epochs * 4, p.Epochs * 10}
	type track struct {
		sys  *core.System
		f1   []float64
		time []time.Duration
	}
	run := func(engine core.Engine) (*track, error) {
		s, err := k.Build(engine, p.Seed)
		if err != nil {
			return nil, err
		}
		if _, err := s.Ground(); err != nil {
			return nil, err
		}
		tr := &track{sys: s}
		prev := 0
		for _, cp := range checkpoints {
			scores, err := s.InferEpochs(cp - prev)
			if err != nil {
				return nil, err
			}
			prev = cp
			tr.f1 = append(tr.f1, stats.Evaluate(k.Examples(scores), stats.DefaultOptions()).F1)
			tr.time = append(tr.time, s.InferenceTime())
		}
		return tr, nil
	}
	sy, err := run(core.EngineSya)
	if err != nil {
		return nil, err
	}
	dd, err := run(core.EngineDeepDive)
	if err != nil {
		return nil, err
	}
	for i, cp := range checkpoints {
		t.Add(fmt.Sprint(cp), f3(sy.f1[i]),
			ms(float64(sy.time[i].Microseconds())/1000),
			f3(dd.f1[i]),
			ms(float64(dd.time[i].Microseconds())/1000))
	}
	t.Notes = append(t.Notes,
		"paper shape: both saturate around 1000 epochs; Sya above DeepDive throughout; Sya 20-31% faster")
	return t, nil
}

// Fig13 reproduces Fig. 13: (a) incremental inference latency as evidence
// updates arrive (Sya resamples only the affected concliques; the baseline
// re-infers everything), and (b) F1 versus the locality level.
func Fig13(p Params) (*Table, error) {
	t := &Table{
		Title:  "Fig 13a: incremental inference time vs changed nodes (GWDB)",
		Header: []string{"Changed nodes", "Sya incremental", "Sya full", "DeepDive full"},
	}
	// Incremental inference pays off when the dirty neighbourhood is small
	// relative to the graph, as at the paper's 104K-variable scale; keep
	// the spatial fan-out moderate here so the ratio is visible at bench
	// scale too.
	pInc := p
	pInc.MaxNeighbors = 10
	pInc.SupportRadius = 30
	k := NewGWDB(pInc)
	s, err := k.Build(core.EngineSya, p.Seed)
	if err != nil {
		return nil, err
	}
	if _, err := s.Ground(); err != nil {
		return nil, err
	}
	if _, err := s.Infer(); err != nil {
		return nil, err
	}
	syaFull, err := k.Build(core.EngineSya, p.Seed)
	if err != nil {
		return nil, err
	}
	if _, err := syaFull.Ground(); err != nil {
		return nil, err
	}
	if _, err := syaFull.Infer(); err != nil {
		return nil, err
	}
	dd, err := k.Build(core.EngineDeepDive, p.Seed)
	if err != nil {
		return nil, err
	}
	if _, err := dd.Ground(); err != nil {
		return nil, err
	}
	if _, err := dd.Infer(); err != nil {
		return nil, err
	}
	atoms := k.QueryAtoms()
	rng := rand.New(rand.NewSource(p.Seed + 99))
	incEpochs := p.Epochs / 2
	if incEpochs < 20 {
		incEpochs = 20
	}
	next := 0
	for _, n := range []int{1, 5, 10, 20} {
		// Pin n fresh atoms on the Sya system and time the incremental
		// resample of their concliques.
		for i := 0; i < n && next < len(atoms); i++ {
			qa := atoms[next]
			next++
			if err := s.UpdateEvidence(qa.Relation, qa.Vals, int32(rng.Intn(2))); err != nil {
				return nil, err
			}
		}
		t0 := time.Now()
		if _, err := s.InferIncremental(incEpochs); err != nil {
			return nil, err
		}
		incTime := time.Since(t0)
		// Baselines: full re-inference for the same epoch budget, on the
		// same engine and on DeepDive.
		t1 := time.Now()
		if _, err := syaFull.InferEpochs(incEpochs); err != nil {
			return nil, err
		}
		syaFullTime := time.Since(t1)
		t2 := time.Now()
		if _, err := dd.InferEpochs(incEpochs); err != nil {
			return nil, err
		}
		ddFullTime := time.Since(t2)
		t.Add(fmt.Sprint(n),
			ms(float64(incTime.Microseconds())/1000),
			ms(float64(syaFullTime.Microseconds())/1000),
			ms(float64(ddFullTime.Microseconds())/1000))
	}
	t.Notes = append(t.Notes,
		"paper shape: incremental (conclique-scoped) resampling takes well under the full re-inference time")

	// Fig. 13b: locality level sweep, on the full-connectivity KBs.
	t2 := &Table{
		Title:  "Fig 13b: F1 vs locality level",
		Header: []string{"Locality level", "GWDB F1", "NYCCAS F1"},
	}
	gk := NewGWDB(p)
	nk := NewNYCCAS(p)
	for l := 1; l <= p.PyramidLevels-1; l++ {
		row := []string{fmt.Sprint(l)}
		for _, kb := range []KB{gk, nk} {
			s, err := kb.Build(core.EngineSya, p.Seed)
			if err != nil {
				return nil, err
			}
			cfg := s.Config()
			cfg.LocalityLevel = l
			s2 := core.NewSystem(cfg)
			if err := rebuildInto(s2, kb); err != nil {
				return nil, err
			}
			if _, err := s2.Ground(); err != nil {
				return nil, err
			}
			scores, err := s2.Infer()
			if err != nil {
				return nil, err
			}
			row = append(row, f3(stats.Evaluate(kb.Examples(scores), stats.DefaultOptions()).F1))
		}
		t2.Add(row...)
	}
	t2.Notes = append(t2.Notes,
		"paper shape: deeper locality levels raise F1, with a stronger effect on GWDB than NYCCAS")
	t.Rows = append(t.Rows, []string{"", "", ""})
	mergeTables(t, t2)
	return t, nil
}

// rebuildInto loads a KB's program and data into a fresh system (Build
// always creates its own system, so locality-level overrides re-load).
func rebuildInto(s *core.System, kb KB) error {
	switch k := kb.(type) {
	case *gwdbKB:
		if err := s.LoadProgram(datagen.GWDBProgram); err != nil {
			return err
		}
		wells, evidence := k.data.Rows()
		if err := s.LoadRows("Well", wells); err != nil {
			return err
		}
		return s.LoadRows("WellEvidence", evidence)
	case *nyccasKB:
		if err := s.LoadProgram(datagen.NYCCASProgram); err != nil {
			return err
		}
		cells, evidence := k.data.Rows()
		if err := s.LoadRows("Cell", cells); err != nil {
			return err
		}
		return s.LoadRows("CellEvidence", evidence)
	default:
		return fmt.Errorf("bench: unknown KB type %T", kb)
	}
}

func mergeTables(dst, src *Table) {
	dst.Rows = append(dst.Rows, append([]string{}, src.Title))
	dst.Rows = append(dst.Rows, src.Header)
	dst.Rows = append(dst.Rows, src.Rows...)
	dst.Notes = append(dst.Notes, src.Notes...)
}

// Fig14 reproduces Fig. 14: average KL divergence between estimated and
// reference marginals as sampling time grows, for the spatial Gibbs sampler
// versus the standard (hogwild) Gibbs sampler of DeepDive, on the same
// spatial factor graph.
//
// The GWDB graph uses the strong-and-sparse coupling regime (unit spatial
// scale, tight support) where the comparison is meaningful: concurrent
// updates of strongly-coupled neighbours bias the standard parallel
// sampler, which is precisely the deficiency the conclique sweep removes
// (Section V). At the F1-tuned coupling of Figs. 8–9 the GWDB field is
// supercritical and single-chain KL measures mode-switching luck instead of
// convergence; EXPERIMENTS.md discusses this.
func Fig14(p Params) (*Table, error) {
	t := &Table{
		Title:  "Fig 14: KL divergence vs sampling time (spatial vs standard Gibbs)",
		Header: []string{"KB", "Epochs", "Spatial time", "Spatial KL", "Standard time", "Standard KL"},
	}
	pGW := p
	pGW.SpatialScale = 1.0
	pGW.Bandwidth = 18
	pGW.SupportRadius = 40
	pGW.MaxNeighbors = 24
	for _, kb := range []KB{NewGWDB(pGW), NewNYCCAS(p)} {
		s, err := kb.Build(core.EngineSya, p.Seed)
		if err != nil {
			return nil, err
		}
		gres, err := s.Ground()
		if err != nil {
			return nil, err
		}
		g := gres.Graph
		// Reference marginals: a long sequential chain on the same graph.
		ref := gibbs.NewSequential(g, p.Seed+5)
		ref.RunEpochs(p.Epochs * 8)
		truth := ref.Marginals()
		isQuery := queryMask(gres)

		burn := p.Epochs / 10
		spatial, err := gibbs.NewSpatial(g, gibbs.SpatialOptions{
			Levels: p.PyramidLevels, Instances: p.Instances, Seed: p.Seed + 6,
			LocalityLevel: s.Config().LocalityLevel,
			Workers:       p.Workers,
			BurnIn:        burn / p.Instances,
		})
		if err != nil {
			return nil, err
		}
		standard := gibbs.NewHogwild(g, p.Seed+6, p.Workers)
		standard.SetBurnIn(burn)
		checkpoints := []int{p.Epochs, p.Epochs * 2, p.Epochs * 4}
		var spTime, stTime time.Duration
		prev := 0
		for _, cp := range checkpoints {
			delta := cp - prev
			prev = cp
			t0 := time.Now()
			spatial.RunTotalEpochs(delta)
			spTime += time.Since(t0)
			t1 := time.Now()
			standard.RunEpochs(delta)
			stTime += time.Since(t1)
			spKL, err := stats.AvgKL(truth, spatial.Marginals(), isQuery)
			if err != nil {
				return nil, err
			}
			stKL, err := stats.AvgKL(truth, standard.Marginals(), isQuery)
			if err != nil {
				return nil, err
			}
			t.Add(kb.Name(), fmt.Sprint(cp),
				ms(float64(spTime.Microseconds())/1000), f3(spKL),
				ms(float64(stTime.Microseconds())/1000), f3(stKL))
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: spatial Gibbs at least 49% (GWDB) / 41% (NYCCAS) lower divergence at matched time")
	return t, nil
}

// queryMask returns an include-function selecting query variables.
func queryMask(gres *grounding.Result) func(v int) bool {
	return func(v int) bool {
		return gres.Graph.Var(int32(v)).Evidence == -1
	}
}

// Ablation goes beyond the paper's figures: it separates the contribution
// of the two Sya components by crossing {spatial factors on/off} with
// {spatial sampler vs hogwild} on GWDB.
func Ablation(p Params) (*Table, error) {
	t := &Table{
		Title:  "Ablation: spatial factors × sampler (GWDB)",
		Header: []string{"Spatial factors", "Sampler", "F1", "Inference"},
	}
	k := NewGWDB(p)
	for _, engine := range []core.Engine{core.EngineSya, core.EngineDeepDive} {
		s, err := k.Build(engine, p.Seed)
		if err != nil {
			return nil, err
		}
		gres, err := s.Ground()
		if err != nil {
			return nil, err
		}
		g := gres.Graph
		for _, samplerName := range []string{"spatial", "hogwild"} {
			var sampler gibbs.Sampler
			if samplerName == "spatial" {
				sp, err := gibbs.NewSpatial(g, gibbs.SpatialOptions{
					Levels: p.PyramidLevels, Instances: p.Instances, Seed: p.Seed + 3,
					LocalityLevel: s.Config().LocalityLevel,
					Workers:       p.Workers,
				})
				if err != nil {
					return nil, err
				}
				sampler = sp
			} else {
				sampler = gibbs.NewHogwild(g, p.Seed+3, p.Workers)
			}
			t0 := time.Now()
			if sp, ok := sampler.(*gibbs.Spatial); ok {
				sp.RunTotalEpochs(p.Epochs)
			} else {
				sampler.RunEpochs(p.Epochs)
			}
			dur := time.Since(t0)
			exs := examplesFromMarginals(k, gres, sampler.Marginals())
			f1 := stats.Evaluate(exs, stats.DefaultOptions()).F1
			factors := "on"
			if engine == core.EngineDeepDive {
				factors = "off"
			}
			t.Add(factors, samplerName, f3(f1), ms(float64(dur.Microseconds())/1000))
		}
	}
	t.Notes = append(t.Notes,
		"expected: spatial factors drive the quality gain; the sampler choice mainly moves latency/convergence")
	return t, nil
}

// examplesFromMarginals scores raw sampler marginals against a KB's truth.
func examplesFromMarginals(k KB, gres *grounding.Result, marg [][]float64) []stats.Example {
	var out []stats.Example
	for _, qa := range k.QueryAtoms() {
		vid, ok := gres.VarID[grounding.AtomKey(qa.Relation, qa.Vals)]
		if !ok {
			continue
		}
		m := marg[vid]
		if len(m) < 2 {
			continue
		}
		out = append(out, stats.Example{Score: m[1], Truth: qa.Truth, HasTruth: qa.Predictable})
	}
	return out
}
