package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/geom"
)

// localBudgets are the variable budgets the lazy-grounding sweep probes
// (capped to the graph size at runtime).
var localBudgets = []int{4, 16, 64, 256}

// LocalBudgetPoint is one budget level of the lazy-grounding benchmark:
// cold-query latency (frontier expansion + per-slab kernel compile + private
// sampling, no cache), subgraph sizes, the reported truncation bound, the
// observed max TV against the full-graph marginals, and the speedup over the
// full ground+compile+sample pipeline.
type LocalBudgetPoint struct {
	Budget     int     `json:"budget"`
	ColdP50Ms  float64 `json:"cold_p50_ms"`
	ColdP99Ms  float64 `json:"cold_p99_ms"`
	MeanVars   float64 `json:"mean_subgraph_vars"`
	MeanFacts  float64 `json:"mean_subgraph_factors"`
	MaxBound   float64 `json:"max_error_bound"`
	MaxTV      float64 `json:"max_tv_vs_full"`
	SpeedupP50 float64 `json:"speedup_vs_full_pipeline"`
}

// LocalReport is the full lazy-grounding benchmark result, serialized to
// BENCH_local.json by syabench -phase=local.
type LocalReport struct {
	Description  string             `json:"description"`
	Environment  servingEnv         `json:"environment"`
	Workload     localLoad          `json:"workload"`
	FullGroundMs float64            `json:"full_ground_ms"`
	FullInferMs  float64            `json:"full_infer_ms"`
	FullTotalMs  float64            `json:"full_pipeline_ms"`
	Points       []LocalBudgetPoint `json:"points"`
}

type localLoad struct {
	Wells      int `json:"wells"`
	Vars       int `json:"graph_vars"`
	Epochs     int `json:"epochs"`
	ProbeAtoms int `json:"probe_atoms"`
}

// Local benchmarks query-driven lazy grounding over the largest GWDB
// workload: the baseline is the full batch pipeline (ground + kernel compile
// + sample everything), the treatment is a cold QueryLocal per probe atom at
// each budget — bounded frontier expansion, kernels compiled for just that
// slab, a private sampler over it.
func Local(p Params) (*Table, error) {
	report, err := LocalLoad(p)
	if err != nil {
		return nil, err
	}
	tbl := &Table{
		Title:  fmt.Sprintf("Lazy local grounding: budgeted point queries vs the full pipeline (GWDB, %d wells)", report.Workload.Wells),
		Header: []string{"budget", "cold p50", "cold p99", "vars", "max TV", "bound", "speedup"},
	}
	for _, pt := range report.Points {
		tbl.Add(
			fmt.Sprint(pt.Budget), ms(pt.ColdP50Ms), ms(pt.ColdP99Ms),
			fmt.Sprintf("%.1f", pt.MeanVars),
			fmt.Sprintf("%.4f", pt.MaxTV), fmt.Sprintf("%.4f", pt.MaxBound),
			fmt.Sprintf("%.0fx", pt.SpeedupP50),
		)
	}
	tbl.Notes = append(tbl.Notes, fmt.Sprintf(
		"full pipeline (ground %s + compile/sample %s = %s, %d vars, %d epochs) is the per-query cost a batch run pays",
		ms(report.FullGroundMs), ms(report.FullInferMs), ms(report.FullTotalMs),
		report.Workload.Vars, report.Workload.Epochs))
	tbl.Notes = append(tbl.Notes, fmt.Sprintf(
		"cold = no subgraph cache: every query re-expands the frontier and recompiles its slab (%d probe atoms per budget)",
		report.Workload.ProbeAtoms))
	if p.LocalJSON != "" {
		f, err := os.Create(p.LocalJSON)
		if err != nil {
			return nil, fmt.Errorf("bench: local json: %w", err)
		}
		defer f.Close()
		if err := report.WriteJSON(f); err != nil {
			return nil, err
		}
		tbl.Notes = append(tbl.Notes, "report written to "+p.LocalJSON)
	}
	return tbl, nil
}

// LocalLoad runs the lazy-grounding benchmark and returns the raw report.
func LocalLoad(p Params) (*LocalReport, error) {
	wells := p.GWDBWells
	data := datagen.Wells(datagen.WellsConfig{N: wells, Seed: p.Seed, Extent: gwdbExtent(wells)})
	sys := core.NewSystem(core.Config{
		Engine:           core.EngineSya,
		Metric:           geom.Euclidean,
		Bandwidth:        p.Bandwidth,
		SpatialScale:     p.SpatialScale,
		SupportRadius:    p.SupportRadius,
		MaxNeighbors:     p.MaxNeighbors,
		PyramidLevels:    p.PyramidLevels,
		LocalityLevel:    localityFor(gwdbExtent(wells), p.SupportRadius, p.PyramidLevels),
		Instances:        p.Instances,
		Workers:          p.Workers,
		GroundWorkers:    p.GroundWorkers,
		Epochs:           p.Epochs,
		Seed:             p.Seed,
		NoKernels:        p.NoKernels,
		SkipFactorTables: true,
		Metrics:          p.Metrics,
		Trace:            p.Trace,
	})
	defer sys.Close()
	if err := sys.LoadProgram(datagen.GWDBProgram); err != nil {
		return nil, err
	}
	wellRows, evidence := data.Rows()
	if err := sys.LoadRows("Well", wellRows); err != nil {
		return nil, err
	}
	if err := sys.LoadRows("WellEvidence", evidence); err != nil {
		return nil, err
	}

	ctx := context.Background()

	// Baseline: the full batch pipeline — ground everything, compile kernels
	// for the whole graph, sample everything. This is what answering a single
	// point query costs without the lazy path.
	t0 := time.Now()
	gres, err := sys.Ground()
	if err != nil {
		return nil, err
	}
	groundMs := float64(time.Since(t0)) / float64(time.Millisecond)
	t1 := time.Now()
	scores, _, err := sys.InferContext(ctx, p.Epochs)
	if err != nil {
		return nil, err
	}
	inferMs := float64(time.Since(t1)) / float64(time.Millisecond)

	full := make(map[string][]float64)
	scores.Each("IsSafe", func(key string, _ int32, marginal []float64) bool {
		full[key] = marginal
		return true
	})
	// Probe genuinely uncertain atoms (evidence-determined point masses are
	// exact at any budget), padded with whatever is left.
	var uncertain, certain []string
	for k, m := range full {
		if len(m) == 2 && m[1] > 0.01 && m[1] < 0.99 {
			uncertain = append(uncertain, k)
		} else {
			certain = append(certain, k)
		}
	}
	sort.Strings(uncertain)
	sort.Strings(certain)
	atoms := append(uncertain, certain...)
	if len(atoms) > 8 {
		atoms = atoms[:8]
	}

	report := &LocalReport{
		Description:  "Query-driven lazy grounding benchmark: cold budgeted point queries (bounded frontier expansion from the queried atom, kernels compiled for just that slab, private sampler) against the full batch pipeline (ground + compile + sample the whole GWDB graph) at the same epoch budget. MaxTV compares the local root marginal with full inference; the bound column is the reported truncation error from the cut factors' decay weights. Regenerate with `syabench -phase=local local`.",
		Environment:  servingEnv{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU(), Go: runtime.Version()},
		Workload:     localLoad{Wells: wells, Vars: gres.Stats.Vars, Epochs: p.Epochs, ProbeAtoms: len(atoms)},
		FullGroundMs: groundMs,
		FullInferMs:  inferMs,
		FullTotalMs:  groundMs + inferMs,
	}

	for _, budget := range localBudgets {
		if budget > gres.Stats.Vars {
			break
		}
		var (
			lats            []time.Duration
			sumVars, sumFac float64
			maxTV, maxBound float64
		)
		for _, key := range atoms {
			t := time.Now()
			res, err := sys.QueryLocal(ctx, key, core.LocalBudget{MaxVars: budget})
			if err != nil {
				return nil, fmt.Errorf("bench: local query %s budget %d: %w", key, budget, err)
			}
			lats = append(lats, time.Since(t))
			sumVars += float64(res.Vars)
			sumFac += float64(res.Factors + res.SpatialPairs)
			if res.ErrorBound > maxBound {
				maxBound = res.ErrorBound
			}
			if tv := tvDist(res.Marginal, full[key]); tv > maxTV {
				maxTV = tv
			}
		}
		p50, p99 := percentiles(lats)
		p50Ms := float64(p50) / float64(time.Millisecond)
		pt := LocalBudgetPoint{
			Budget:    budget,
			ColdP50Ms: p50Ms,
			ColdP99Ms: float64(p99) / float64(time.Millisecond),
			MeanVars:  sumVars / float64(len(atoms)),
			MeanFacts: sumFac / float64(len(atoms)),
			MaxBound:  maxBound,
			MaxTV:     maxTV,
		}
		if p50Ms > 0 {
			pt.SpeedupP50 = report.FullTotalMs / p50Ms
		}
		report.Points = append(report.Points, pt)
	}
	return report, nil
}

// tvDist is the total-variation distance between two marginals.
func tvDist(a, b []float64) float64 {
	if len(a) != len(b) {
		return 1
	}
	d := 0.0
	for i := range a {
		if a[i] > b[i] {
			d += a[i] - b[i]
		} else {
			d += b[i] - a[i]
		}
	}
	return d / 2
}

// WriteJSON renders the report as indented JSON.
func (r *LocalReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
