package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestServingSmoke(t *testing.T) {
	p := tinyParams()
	tbl, err := Serving(p)
	if err != nil {
		t.Fatal(err)
	}
	out := render(t, tbl)
	if len(tbl.Rows) != len(servingClientCounts) {
		t.Fatalf("rows = %d, want one per client count:\n%s", len(tbl.Rows), out)
	}
	if !strings.Contains(out, "clients") || !strings.Contains(out, "p99") {
		t.Errorf("missing columns:\n%s", out)
	}
	if !strings.Contains(out, "evidence upserts") {
		t.Errorf("missing upsert note:\n%s", out)
	}
}

func TestServingReportJSON(t *testing.T) {
	p := tinyParams()
	report, err := ServingLoad(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Points) != len(servingClientCounts) {
		t.Fatalf("points = %d", len(report.Points))
	}
	for i, pt := range report.Points {
		if pt.Clients != servingClientCounts[i] {
			t.Errorf("point %d clients = %d, want %d", i, pt.Clients, servingClientCounts[i])
		}
		if pt.Requests == 0 || pt.QPS <= 0 || pt.P99Ms < pt.P50Ms {
			t.Errorf("point %d implausible: %+v", i, pt)
		}
	}
	if report.Upserts.Count == 0 || report.Upserts.P99Ms < report.Upserts.P50Ms {
		t.Errorf("upsert phase implausible: %+v", report.Upserts)
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back ServingReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Workload.Wells != report.Workload.Wells {
		t.Errorf("round-trip lost workload: %+v", back.Workload)
	}
}

func TestPercentiles(t *testing.T) {
	var lats []time.Duration
	for i := 100; i >= 1; i-- {
		lats = append(lats, time.Duration(i)*time.Millisecond)
	}
	p50, p99 := percentiles(lats)
	if p50 != 51*time.Millisecond {
		t.Errorf("p50 = %v", p50)
	}
	if p99 != 100*time.Millisecond {
		t.Errorf("p99 = %v", p99)
	}
	if a, b := percentiles(nil); a != 0 || b != 0 {
		t.Errorf("empty percentiles = %v, %v", a, b)
	}
}
