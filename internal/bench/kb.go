package bench

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/stats"
	"repro/internal/storage"
)

// KB abstracts one of the two evaluation knowledge bases (GWDB, NYCCAS):
// it can build a configured System for an engine and score its output
// against the generated ground truth.
type KB interface {
	Name() string
	// Build creates, loads, and returns a system for the engine with the
	// given sampling seed (data generation uses the params seed so all
	// engines see identical data).
	Build(engine core.Engine, seed int64) (*core.System, error)
	// Examples scores the system output against ground truth.
	Examples(scores *core.Scores) []stats.Example
	// QueryAtoms lists (relation, vals, truth) of scoreable atoms.
	QueryAtoms() []QueryAtom
}

// QueryAtom identifies one scoreable ground atom with its ground truth.
type QueryAtom struct {
	Relation string
	Vals     []storage.Value
	Truth    stats.TruthRange
	// Predictable is false for atoms whose evidence neighbourhood was
	// randomized (they count in recall denominators but can rarely be
	// inferred correctly).
	Predictable bool
}

// gwdbKB is the Texas water-well knowledge base.
type gwdbKB struct {
	p    Params
	data *datagen.WellsData
}

// gwdbExtent keeps well density constant as the workload scales (the real
// GWDB covers all of Texas; more wells do not mean denser wells).
func gwdbExtent(wells int) float64 {
	return 600 * math.Sqrt(float64(wells)/600)
}

// NewGWDB generates the dataset once and returns the KB.
func NewGWDB(p Params) KB {
	data := datagen.Wells(datagen.WellsConfig{
		N:      p.GWDBWells,
		Seed:   p.Seed,
		Extent: gwdbExtent(p.GWDBWells),
	})
	return &gwdbKB{p: p, data: data}
}

func (k *gwdbKB) Name() string { return "GWDB" }

func (k *gwdbKB) system(engine core.Engine, seed int64) *core.System {
	return core.NewSystem(core.Config{
		Engine:           engine,
		Metric:           geom.Euclidean,
		Bandwidth:        k.p.Bandwidth,
		SpatialScale:     k.p.SpatialScale,
		SupportRadius:    k.p.SupportRadius,
		MaxNeighbors:     k.p.MaxNeighbors,
		PyramidLevels:    k.p.PyramidLevels,
		LocalityLevel:    localityFor(k.data.Config.Extent, k.p.SupportRadius, k.p.PyramidLevels),
		Instances:        k.p.Instances,
		Workers:          k.p.Workers,
		GroundWorkers:    k.p.GroundWorkers,
		Epochs:           k.p.Epochs,
		Seed:             seed,
		NoKernels:        k.p.NoKernels,
		ChunkGrain:       k.p.ChunkGrain,
		SkipFactorTables: true,
		Metrics:          k.p.Metrics,
		Trace:            k.p.Trace,
	})
}

// localityFor picks the deepest pyramid level whose cell width still covers
// the spatial interaction radius, so cells of one conclique are genuinely
// independent (the conclique guarantee of Section V). Deeper levels
// parallelize more but let dependent atoms sample concurrently.
func localityFor(extent, radius float64, levels int) int {
	l := 2
	for l+1 <= levels-1 && extent/float64(int(1)<<(l+1)) >= radius {
		l++
	}
	return l
}

func (k *gwdbKB) Build(engine core.Engine, seed int64) (*core.System, error) {
	s := k.system(engine, seed)
	if err := s.LoadProgram(datagen.GWDBProgram); err != nil {
		return nil, err
	}
	wells, evidence := k.data.Rows()
	if err := s.LoadRows("Well", wells); err != nil {
		return nil, err
	}
	if err := s.LoadRows("WellEvidence", evidence); err != nil {
		return nil, err
	}
	return s, nil
}

func (k *gwdbKB) QueryAtoms() []QueryAtom {
	var out []QueryAtom
	for _, w := range k.data.Wells {
		if w.IsEvidence {
			continue
		}
		// Ground truth is the actual binary fact (the paper's GWDB has
		// "ground truth information available for all extracted relations"),
		// so a factual score is correct when it is decisively on the right
		// side — within the evaluation tolerance of 0 or 1.
		truth := 0.0
		if w.Safe {
			truth = 1.0
		}
		out = append(out, QueryAtom{
			Relation:    "IsSafe",
			Vals:        []storage.Value{storage.Int(w.ID), storage.Geom(w.Loc)},
			Truth:       stats.Point(truth),
			Predictable: true,
		})
	}
	return out
}

func (k *gwdbKB) Examples(scores *core.Scores) []stats.Example {
	return examplesOf(k, scores)
}

// nyccasKB is the NYC air-pollution knowledge base.
type nyccasKB struct {
	p    Params
	data *datagen.RasterData
}

// NewNYCCAS generates the raster once and returns the KB. The extent grows
// with the side length so the cell size (and thus the spatial neighbourhood
// structure) stays constant as the workload scales.
func NewNYCCAS(p Params) KB {
	data := datagen.Raster(datagen.RasterConfig{
		Side:   p.NYCCASSide,
		Seed:   p.Seed + 1,
		Extent: float64(p.NYCCASSide) * 30.0 / 22.0,
	})
	return &nyccasKB{p: p, data: data}
}

func (k *nyccasKB) Name() string { return "NYCCAS" }

func (k *nyccasKB) Build(engine core.Engine, seed int64) (*core.System, error) {
	// The raster is km-scale: scale the spatial bandwidth accordingly.
	cell := k.data.Config.Extent / float64(k.data.Config.Side)
	s := core.NewSystem(core.Config{
		Engine:           engine,
		Metric:           geom.Euclidean,
		Bandwidth:        2 * cell,
		SpatialScale:     k.p.SpatialScale,
		SupportRadius:    4 * cell,
		MaxNeighbors:     k.p.MaxNeighbors,
		PyramidLevels:    k.p.PyramidLevels,
		LocalityLevel:    localityFor(k.data.Config.Extent, 4*cell, k.p.PyramidLevels),
		Instances:        k.p.Instances,
		Workers:          k.p.Workers,
		GroundWorkers:    k.p.GroundWorkers,
		Epochs:           k.p.Epochs,
		Seed:             seed,
		NoKernels:        k.p.NoKernels,
		ChunkGrain:       k.p.ChunkGrain,
		SkipFactorTables: true,
		Metrics:          k.p.Metrics,
		Trace:            k.p.Trace,
	})
	if err := s.LoadProgram(datagen.NYCCASProgram); err != nil {
		return nil, err
	}
	cells, evidence := k.data.Rows()
	if err := s.LoadRows("Cell", cells); err != nil {
		return nil, err
	}
	if err := s.LoadRows("CellEvidence", evidence); err != nil {
		return nil, err
	}
	return s, nil
}

func (k *nyccasKB) QueryAtoms() []QueryAtom {
	var out []QueryAtom
	for _, c := range k.data.Cells {
		if c.IsEvidence {
			continue
		}
		truth := 0.0
		if c.Polluted {
			truth = 1.0
		}
		out = append(out, QueryAtom{
			Relation:    "Polluted",
			Vals:        []storage.Value{storage.Int(c.ID), storage.Geom(c.Loc)},
			Truth:       stats.Point(truth),
			Predictable: true,
		})
	}
	return out
}

func (k *nyccasKB) Examples(scores *core.Scores) []stats.Example {
	return examplesOf(k, scores)
}

func examplesOf(k KB, scores *core.Scores) []stats.Example {
	var out []stats.Example
	for _, qa := range k.QueryAtoms() {
		p, ok := scores.TrueProb(qa.Relation, qa.Vals)
		if !ok {
			continue
		}
		out = append(out, stats.Example{Score: p, Truth: qa.Truth, HasTruth: qa.Predictable})
	}
	return out
}

// RunResult aggregates one (KB, engine) evaluation averaged over runs.
type RunResult struct {
	KB, Engine string
	Precision  float64
	Recall     float64
	F1         float64
	GroundTime time.Duration
	InferTime  time.Duration
	Vars       int
	Factors    int64
}

// evaluateKB runs ground+infer for one engine over p.Runs seeds and
// averages the metrics; grounding runs once per seed (the data is fixed, so
// its time is averaged too). With p.GroundOnly, inference is skipped and the
// quality metrics come back NaN (rendered as "-").
func evaluateKB(k KB, engine core.Engine, p Params) (RunResult, error) {
	agg := RunResult{KB: k.Name(), Engine: engine.String()}
	for r := 0; r < p.Runs; r++ {
		s, err := k.Build(engine, p.Seed+int64(100*r+7))
		if err != nil {
			return agg, err
		}
		gres, err := s.Ground()
		if err != nil {
			return agg, err
		}
		if !p.GroundOnly {
			scores, err := s.Infer()
			if err != nil {
				return agg, err
			}
			rep := stats.Evaluate(k.Examples(scores), stats.DefaultOptions())
			agg.Precision += rep.Precision
			agg.Recall += rep.Recall
			agg.F1 += rep.F1
			agg.InferTime += s.InferenceTime()
		}
		agg.GroundTime += s.GroundingTime()
		agg.Vars = gres.Stats.Vars
		agg.Factors = int64(gres.Stats.LogicalFactors) + gres.Stats.GroundSpatialFactors
	}
	n := float64(p.Runs)
	agg.Precision /= n
	agg.Recall /= n
	agg.F1 /= n
	agg.GroundTime = time.Duration(float64(agg.GroundTime) / n)
	agg.InferTime = time.Duration(float64(agg.InferTime) / n)
	if p.GroundOnly {
		agg.Precision = math.NaN()
		agg.Recall = math.NaN()
		agg.F1 = math.NaN()
	}
	return agg, nil
}

// compareKBs evaluates both KBs under both engines (the Fig. 8 / Fig. 9
// workload).
func compareKBs(p Params) ([]RunResult, error) {
	kbs := []KB{NewGWDB(p), NewNYCCAS(p)}
	engines := []core.Engine{core.EngineSya, core.EngineDeepDive}
	var out []RunResult
	for _, k := range kbs {
		for _, e := range engines {
			res, err := evaluateKB(k, e, p)
			if err != nil {
				return nil, fmt.Errorf("bench: %s/%s: %w", k.Name(), e, err)
			}
			out = append(out, res)
		}
	}
	return out, nil
}
