package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/gibbs/testutil"
	"repro/internal/storage"
)

// newGWDBSystem builds a small water-well KB with unlabeled wells to upsert.
func newGWDBSystem(t *testing.T, epochs int) (*core.System, *datagen.WellsData) {
	t.Helper()
	data := datagen.Wells(datagen.WellsConfig{N: 40, Seed: 12, Extent: 160})
	s := core.NewSystem(core.Config{
		Engine:           core.EngineSya,
		Metric:           geom.Euclidean,
		Bandwidth:        50,
		SupportRadius:    60,
		MaxNeighbors:     8,
		PyramidLevels:    5,
		Epochs:           epochs,
		Seed:             3,
		SkipFactorTables: true,
	})
	if err := s.LoadProgram(datagen.GWDBProgram); err != nil {
		t.Fatal(err)
	}
	wells, evidence := data.Rows()
	if err := s.LoadRows("Well", wells); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadRows("WellEvidence", evidence); err != nil {
		t.Fatal(err)
	}
	return s, data
}

func unlabeledWells(data *datagen.WellsData, n int) []datagen.Well {
	var out []datagen.Well
	for _, w := range data.Wells {
		if !w.IsEvidence {
			out = append(out, w)
			if len(out) == n {
				break
			}
		}
	}
	return out
}

// TestConcurrentReadsAndUpserts drives N readers against a writer streaming
// evidence upserts; run under -race this is the server's data-race guard.
// The goroutine leak check covers the full lifecycle including shutdown.
func TestConcurrentReadsAndUpserts(t *testing.T) {
	check := testutil.GoroutineLeakCheck(t)
	sys, data := newGWDBSystem(t, 300)
	srv, err := New(sys, Options{Epochs: 200, CacheTTL: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Warmup(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	targets := unlabeledWells(data, 8)
	if len(targets) < 4 {
		t.Fatalf("only %d unlabeled wells", len(targets))
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)

	// Writer: sequential upserts, one unlabeled well at a time.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, w := range targets {
			up, code := postUpsertQuiet(ts.URL, "WellEvidence", [][]string{
				{fmt.Sprint(w.ID), storage.Geom(w.Loc).String(), fmt.Sprint(w.Safe)},
			})
			if code != http.StatusOK {
				errs <- fmt.Errorf("upsert status %d", code)
				return
			}
			if up.Structural {
				errs <- fmt.Errorf("upsert went structural: %+v", up)
				return
			}
		}
	}()

	// Readers: point, range, k-NN, and health, racing the writer.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			w := data.Wells[r%len(data.Wells)]
			urls := []string{
				fmt.Sprintf("%s/v1/score/point?relation=IsSafe&x=%g&y=%g", ts.URL, w.Loc.X, w.Loc.Y),
				fmt.Sprintf("%s/v1/score/range?relation=IsSafe&minx=0&miny=0&maxx=200&maxy=200", ts.URL),
				fmt.Sprintf("%s/v1/score/knn?relation=IsSafe&x=%g&y=%g&k=5", ts.URL, w.Loc.X, w.Loc.Y),
				ts.URL + "/healthz",
			}
			for i := 0; i < 40; i++ {
				resp, err := http.Get(urls[i%len(urls)])
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("reader %d: status %d on %s", r, resp.StatusCode, urls[i%len(urls)])
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Every upserted well now serves a point-mass score.
	for _, w := range targets {
		var resp queryResponse
		url := fmt.Sprintf("%s/v1/score/point?relation=IsSafe&x=%g&y=%g", ts.URL, w.Loc.X, w.Loc.Y)
		if code := getJSON(t, url, &resp); code != http.StatusOK || len(resp.Atoms) != 1 {
			t.Fatalf("point query after upserts: code %d, %+v", code, resp)
		}
		want := 0.0
		if w.Safe {
			want = 1.0
		}
		if resp.Atoms[0].Score != want {
			t.Errorf("well %d score = %f, want %g (pinned)", w.ID, resp.Atoms[0].Score, want)
		}
	}

	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	srv.Close()
	check()
}

func jsonMarshal(v any) (io.Reader, error) {
	b, err := json.Marshal(v)
	return bytes.NewReader(b), err
}

func jsonDecode(r io.Reader, v any) error { return json.NewDecoder(r).Decode(v) }

// postUpsertQuiet is postUpsert without the testing.T plumbing, usable from
// racing goroutines.
func postUpsertQuiet(base, relation string, rows [][]string) (evidenceResponse, int) {
	var out evidenceResponse
	body, err := jsonMarshal(evidenceRequest{Relation: relation, Rows: rows})
	if err != nil {
		return out, 0
	}
	resp, err := http.Post(base+"/v1/evidence", "application/json", body)
	if err != nil {
		return out, 0
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		_ = jsonDecode(resp.Body, &out)
	}
	return out, resp.StatusCode
}

// TestNoStaleScoreAfterUpsert is the cache-coherence guard: a score read
// before an upsert (and therefore cached) must not be served once the upsert
// resamples — the generation bump invalidates it.
func TestNoStaleScoreAfterUpsert(t *testing.T) {
	sys := newEbolaSystem(t, core.Config{Engine: core.EngineSya, Seed: 7, Epochs: 2000})
	srv, ts := startServer(t, sys, Options{CacheTTL: time.Hour})

	bong := datagen.EbolaCounties()[2]
	url := fmt.Sprintf("%s/v1/score/point?relation=HasEbola&x=%g&y=%g", ts.URL, bong.Loc.X, bong.Loc.Y)
	var before queryResponse
	if getJSON(t, url, &before) != http.StatusOK || len(before.Atoms) != 1 {
		t.Fatalf("pre-upsert query failed: %+v", before)
	}
	if before.Atoms[0].Score == 1 {
		t.Fatal("Bong already saturated; staleness would be unobservable")
	}
	// The hour-long TTL would happily keep serving the old score; only the
	// resample's generation bump may invalidate it.
	if _, code := postUpsert(t, ts.URL, "CountyEvidence", [][]string{
		{"3", storage.Geom(bong.Loc).String(), "true"},
	}); code != http.StatusOK {
		t.Fatalf("upsert status %d", code)
	}
	var after queryResponse
	if getJSON(t, url, &after) != http.StatusOK {
		t.Fatal("post-upsert query failed")
	}
	if after.Atoms[0].Score != 1 {
		t.Errorf("post-upsert score = %f, want exactly 1 — stale cache served", after.Atoms[0].Score)
	}
	if after.Generation != before.Generation+1 {
		t.Errorf("generation %d → %d, want +1", before.Generation, after.Generation)
	}
	_ = srv
}

// TestMidRequestCancellation cancels an upsert while its resample is
// running: the server must survive, keep serving, and leak no goroutines.
func TestMidRequestCancellation(t *testing.T) {
	check := testutil.GoroutineLeakCheck(t)
	sys, data := newGWDBSystem(t, 400)
	// A huge incremental budget so cancellation lands mid-inference.
	srv, err := New(sys, Options{Epochs: 50_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Warmup(context.Background(), 400); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	w := unlabeledWells(data, 1)[0]
	body, err := jsonMarshal(evidenceRequest{
		Relation: "WellEvidence",
		Rows:     [][]string{{fmt.Sprint(w.ID), storage.Geom(w.Loc).String(), "true"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/evidence", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if resp, err := http.DefaultClient.Do(req); err == nil {
		// The sampler treats cancellation as a partial run, not an error,
		// so a fast machine may still answer 200 before the deadline.
		resp.Body.Close()
	}

	// The server is still alive and consistent after the abandoned request.
	// The handler may still be draining the cancelled upsert (health honestly
	// reports degraded while it does), so poll until it retires.
	var health healthResponse
	deadline := time.Now().Add(10 * time.Second)
	for {
		if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK {
			t.Fatalf("health after cancellation: code %d, %+v", code, health)
		}
		if !health.Degraded || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if health.Status != "ok" {
		t.Fatalf("health after cancellation: %+v", health)
	}
	var resp queryResponse
	url := fmt.Sprintf("%s/v1/score/point?relation=IsSafe&x=%g&y=%g", ts.URL, w.Loc.X, w.Loc.Y)
	if code := getJSON(t, url, &resp); code != http.StatusOK || len(resp.Atoms) != 1 {
		t.Fatalf("query after cancellation: code %d, %+v", code, resp)
	}

	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	srv.Close()
	check()
}
