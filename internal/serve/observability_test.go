package serve

// Tests for the serving observability surface added with request tracing:
// /v1/explain score provenance, /debug/traces stage timings, the
// endpoint × outcome latency matrix, and the evidence staleness histogram.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/conclique"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/factorgraph"
	"repro/internal/gibbs"
	"repro/internal/obs"
	"repro/internal/storage"
)

// atomKeyAt resolves the serving key of the atom at a location.
func atomKeyAt(t *testing.T, base string, x, y float64) string {
	t.Helper()
	var pt queryResponse
	url := fmt.Sprintf("%s/v1/score/point?relation=HasEbola&x=%g&y=%g", base, x, y)
	if code := getJSON(t, url, &pt); code != http.StatusOK || len(pt.Atoms) != 1 {
		t.Fatalf("point query at (%g,%g): code %d, %d atoms", x, y, code, len(pt.Atoms))
	}
	return pt.Atoms[0].Key
}

func getExplain(t *testing.T, base, key string) (explainResponse, int) {
	t.Helper()
	var resp explainResponse
	code := getJSON(t, base+"/v1/explain?key="+url.QueryEscape(key), &resp)
	return resp, code
}

// TestExplainProvenance pins the /v1/explain contract and verifies the
// reported factor program against an independently grounded batch System's
// factor graph — the serving provenance must be the batch graph's truth.
func TestExplainProvenance(t *testing.T) {
	reg := obs.NewRegistry()
	sys := newEbolaSystem(t, core.Config{Engine: core.EngineSya, Seed: 7, Epochs: 800})
	_, ts := startServer(t, sys, Options{Metrics: reg})

	bong := datagen.EbolaCounties()[2]
	key := atomKeyAt(t, ts.URL, bong.Loc.X, bong.Loc.Y)

	// Error paths first.
	if _, code := getExplain(t, ts.URL, "hasebola|no|such"); code != http.StatusNotFound {
		t.Errorf("unknown atom: status %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/v1/explain", nil); code != http.StatusBadRequest {
		t.Errorf("missing key: status %d, want 400", code)
	}

	ex, code := getExplain(t, ts.URL, key)
	if code != http.StatusOK {
		t.Fatalf("explain status %d", code)
	}
	if ex.Key != key || ex.Relation != "hasebola" {
		t.Errorf("explain identity = %q/%q", ex.Key, ex.Relation)
	}
	if ex.Pinned || ex.Evidence != nil {
		t.Errorf("fresh Bong atom must be unlabeled: pinned=%v evidence=%v", ex.Pinned, ex.Evidence)
	}
	if len(ex.Marginal) != 2 || ex.Score != ex.Marginal[1] {
		t.Errorf("marginal/score = %v/%v", ex.Marginal, ex.Score)
	}
	// The 4 ebola counties sweep in the sampler's serial tail (no home cell
	// at a swept pyramid level), so explain omits the conclique here —
	// TestExplainConcliqueMembership covers the populated case on a denser
	// KB.
	if ex.Conclique != nil {
		t.Errorf("tail-swept atom must omit conclique, got %+v", ex.Conclique)
	}
	if len(ex.Factors) == 0 {
		t.Fatal("explain returned no factors")
	}

	// The score endpoints cache the marginal they serve; explain reports it.
	if !ex.Cached {
		t.Error("explain after a point query must see the cached score")
	}

	// Independent verification: ground the same scenario as a batch System
	// and decode the same atom's compiled program. Kind, weight, rule and
	// endpoint keys must all agree with what the server reported.
	batch := newEbolaSystem(t, core.Config{Engine: core.EngineSya, Seed: 7, Epochs: 800})
	defer batch.Close()
	if _, err := batch.Ground(); err != nil {
		t.Fatal(err)
	}
	ground := batch.Grounding()
	vid, ok := ground.VarID[key]
	if !ok {
		t.Fatalf("batch grounding lacks atom %q", key)
	}
	keys := make([]string, ground.Graph.NumVars())
	for k, v := range ground.VarID {
		keys[v] = k
	}
	want := explainFactors(ground, keys, vid)
	if len(want) != len(ex.Factors) {
		t.Fatalf("explain reports %d factors, batch graph has %d", len(ex.Factors), len(want))
	}
	for i, got := range ex.Factors {
		w := want[i]
		if got.Kind != w.Kind || got.Other != w.Other || got.Rule != w.Rule ||
			got.Spatial != w.Spatial || got.Masked != w.Masked {
			t.Errorf("factor %d = %+v, batch graph says %+v", i, got, w)
		}
		if diff := got.Weight - w.Weight; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("factor %d weight = %v, batch graph says %v", i, got.Weight, w.Weight)
		}
	}
	// The ebola program grounds a class prior (R0) and spatial-prior pairs
	// for every county: both must show up with their rule provenance.
	var sawPrior, sawSpatial bool
	for _, f := range ex.Factors {
		if f.Rule == "R0" {
			sawPrior = true
		}
		if f.Spatial {
			sawSpatial = true
			if f.Rule != "" {
				t.Errorf("spatial pair reported rule %q", f.Rule)
			}
		}
	}
	if !sawPrior || !sawSpatial {
		t.Errorf("factors missing provenance: prior=%v spatial=%v (%+v)", sawPrior, sawSpatial, ex.Factors)
	}

	// Pin Bong through the API: explain must flip to pinned without the
	// graph's grounded evidence changing (the pin lives in the sampler).
	up, code := postUpsert(t, ts.URL, "CountyEvidence", [][]string{
		{"3", storage.Geom(bong.Loc).String(), "true"},
	})
	if code != http.StatusOK || up.Pins != 1 {
		t.Fatalf("pin upsert = %+v (code %d)", up, code)
	}
	ex2, code := getExplain(t, ts.URL, key)
	if code != http.StatusOK {
		t.Fatalf("explain after pin: status %d", code)
	}
	if !ex2.Pinned || ex2.Evidence != nil {
		t.Errorf("after pin: pinned=%v evidence=%v, want pinned with no grounded evidence", ex2.Pinned, ex2.Evidence)
	}
	if ex2.Generation != up.Generation {
		t.Errorf("explain generation %d, upsert acked %d", ex2.Generation, up.Generation)
	}
	if ex2.Score < 0.9 {
		t.Errorf("pinned-true atom scores %v, want ≈1", ex2.Score)
	}
	// An atom whose label was grounded in (Montserrado, id 1) reports
	// evidence rather than a pin.
	mont := datagen.EbolaCounties()[0]
	ex3, _ := getExplain(t, ts.URL, atomKeyAt(t, ts.URL, mont.Loc.X, mont.Loc.Y))
	if ex3.Evidence == nil || *ex3.Evidence != 1 || ex3.Pinned {
		t.Errorf("grounded-evidence atom = evidence %v pinned %v", ex3.Evidence, ex3.Pinned)
	}
}

// TestExplainConcliqueMembership checks the conclique report on a KB dense
// enough for the spatial sampler to assign home cells: the served id and
// cell must equal the sampler's own HomeCell → conclique.Of mapping.
func TestExplainConcliqueMembership(t *testing.T) {
	sys, _ := newGWDBSystem(t, 200)
	srv, ts := startServer(t, sys, Options{})

	sp, ok := srv.System().Sampler().(*gibbs.Spatial)
	if !ok {
		t.Fatal("gwdb fixture must run the spatial sampler")
	}
	ground := srv.System().Grounding()
	checked := 0
	for key, vid := range ground.VarID {
		cell, hasHome := sp.HomeCell(vid)
		ex, code := getExplain(t, ts.URL, key)
		if code != http.StatusOK {
			t.Fatalf("explain %q: status %d", key, code)
		}
		if !hasHome {
			if ex.Conclique != nil {
				t.Errorf("%s: tail-swept atom reports conclique %+v", key, ex.Conclique)
			}
			continue
		}
		checked++
		if ex.Conclique == nil {
			t.Errorf("%s: home cell %v but no conclique in explain", key, cell)
			continue
		}
		wantID := int(conclique.Of(cell))
		if ex.Conclique.ID != wantID || ex.Conclique.Level != cell.Level ||
			ex.Conclique.X != cell.X || ex.Conclique.Y != cell.Y {
			t.Errorf("%s: conclique = %+v, sampler says id=%d cell=%v", key, ex.Conclique, wantID, cell)
		}
		if ex.Conclique.ID < 0 || ex.Conclique.ID > 3 {
			t.Errorf("%s: conclique id %d outside the 2x2 coloring", key, ex.Conclique.ID)
		}
	}
	if checked == 0 {
		t.Error("no atom had a home cell; fixture does not exercise conclique membership")
	}
}

// tracesBody fetches and decodes /debug/traces.
func tracesBody(t *testing.T, base string) []obs.TraceRecord {
	t.Helper()
	var resp struct {
		Traces []obs.TraceRecord `json:"traces"`
	}
	if code := getJSON(t, base+"/debug/traces", &resp); code != http.StatusOK {
		t.Fatalf("/debug/traces status %d", code)
	}
	return resp.Traces
}

// TestRequestTracing drives traced reads and a traced upsert and checks the
// recorded span trees: stage coverage, traceparent echo, and the wall-time
// accounting contract (direct child stages sum to within 10% of the
// request's recorded duration for an upsert).
func TestRequestTracing(t *testing.T) {
	tracer := obs.NewTracer(obs.TracerOptions{RingSize: 32})
	reg := obs.NewRegistry()
	sys := newEbolaSystem(t, core.Config{Engine: core.EngineSya, Seed: 7})
	_, ts := startServer(t, sys, Options{
		Metrics: reg,
		Tracer:  tracer,
		WALPath: filepath.Join(t.TempDir(), "trace.wal"),
	})

	// A read with an upstream traceparent: the trace id is adopted and
	// echoed with a server-generated span id.
	bong := datagen.EbolaCounties()[2]
	const parent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	req, _ := http.NewRequest("GET",
		fmt.Sprintf("%s/v1/score/point?relation=HasEbola&x=%g&y=%g", ts.URL, bong.Loc.X, bong.Loc.Y), nil)
	req.Header.Set("traceparent", parent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	echo := resp.Header.Get("traceparent")
	if !strings.HasPrefix(echo, "00-4bf92f3577b34da6a3ce929d0e0e4736-") || echo == parent {
		t.Errorf("traceparent echo = %q", echo)
	}

	up, code := postUpsert(t, ts.URL, "CountyEvidence", [][]string{
		{"3", storage.Geom(bong.Loc).String(), "true"},
	})
	if code != http.StatusOK || up.Pins != 1 {
		t.Fatalf("upsert = %+v (code %d)", up, code)
	}

	var read, upsert *obs.TraceRecord
	for _, rec := range tracesBody(t, ts.URL) {
		rec := rec
		switch rec.Name {
		case "point":
			if read == nil {
				read = &rec
			}
		case "evidence":
			upsert = &rec
		}
	}
	if read == nil || upsert == nil {
		t.Fatal("ring is missing the point or evidence trace")
	}
	if read.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" || read.ParentSpanID != "00f067aa0ba902b7" {
		t.Errorf("read trace identity = %s/%s", read.TraceID, read.ParentSpanID)
	}

	stageNames := func(rec *obs.TraceRecord) map[string]bool {
		m := map[string]bool{}
		for _, sp := range rec.Spans[1:] {
			m[sp.Name] = true
		}
		return m
	}
	for _, stage := range []string{"acquire_read", "rtree_probe", "score"} {
		if !stageNames(read)[stage] {
			t.Errorf("read trace missing stage %s: %+v", stage, read.Spans)
		}
	}
	upStages := stageNames(upsert)
	for _, stage := range []string{"decode", "queue_wait", "validate", "wal_append", "wal_fsync", "delta_ground", "pin_apply", "resample", "conclique_sweep"} {
		if !upStages[stage] {
			t.Errorf("upsert trace missing stage %s: %+v", stage, upsert.Spans)
		}
	}
	if upsert.Outcome != "ok" {
		t.Errorf("upsert outcome = %s", upsert.Outcome)
	}

	// Accounting: the direct child stages partition the handler's work, so
	// their durations must sum to within 10% of the recorded wall time
	// (nested stages — wal_fsync under wal_append, the conclique sweep
	// under resample — are excluded to avoid double counting).
	var sum int64
	for _, sp := range upsert.Spans[1:] {
		if sp.Parent == 0 {
			sum += sp.DurUs
		}
	}
	if wall := upsert.DurUs; sum < wall*9/10 || sum > wall*11/10 {
		t.Errorf("upsert stages sum to %dµs of %dµs wall (outside ±10%%): %+v", sum, wall, upsert.Spans)
	}
}

// TestServeMetricsSurface checks the new serving series: the
// endpoint × outcome latency matrix, the staleness and WAL fsync
// histograms, and the runtime health gauges.
func TestServeMetricsSurface(t *testing.T) {
	reg := obs.NewRegistry()
	sys := newEbolaSystem(t, core.Config{Engine: core.EngineSya, Seed: 7, Epochs: 800})
	srv, ts := startServer(t, sys, Options{
		Metrics:          reg,
		WALPath:          filepath.Join(t.TempDir(), "m.wal"),
		MaxQueuedUpserts: 1,
	})

	bong := datagen.EbolaCounties()[2]
	atomKeyAt(t, ts.URL, bong.Loc.X, bong.Loc.Y) // one ok point read
	getJSON(t, ts.URL+"/v1/score/point?relation=Nope&x=1&y=1", nil)
	before := time.Now()
	if _, code := postUpsert(t, ts.URL, "CountyEvidence", [][]string{
		{"3", storage.Geom(bong.Loc).String(), "true"},
	}); code != http.StatusOK {
		t.Fatalf("upsert status %d", code)
	}
	upsertWall := time.Since(before)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`sya_serve_request_seconds_bucket{endpoint="point",outcome="ok",le="+Inf"} 1`,
		`sya_serve_request_seconds_bucket{endpoint="point",outcome="error",le="+Inf"} 1`,
		`sya_serve_request_seconds_bucket{endpoint="evidence",outcome="ok",le="+Inf"} 1`,
		`sya_serve_staleness_seconds_count 1`,
		"sya_wal_fsync_seconds_count",
		"# TYPE sya_go_goroutines gauge",
		"# TYPE sya_go_heap_bytes gauge",
		"# TYPE sya_go_gc_pause_seconds gauge",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The staleness histogram measured the accept→publish window: its sum
	// must be positive and below the client-observed upsert wall time.
	snap := reg.Snapshot()
	if s := snap["sya_serve_staleness_seconds_sum"]; s <= 0 || s > upsertWall.Seconds() {
		t.Errorf("staleness sum = %v, want within (0, %v]", s, upsertWall.Seconds())
	}
	_ = srv
}

// TestExplainDegradedPath serves provenance from the stale snapshot while a
// writer holds the lock: factors and rules still come back (flagged stale),
// and live-sampler fields are absent.
func TestExplainDegradedPath(t *testing.T) {
	sys := newEbolaSystem(t, core.Config{Engine: core.EngineSya, Seed: 7, Epochs: 800})
	srv, ts := startServer(t, sys, Options{})
	bong := datagen.EbolaCounties()[2]
	key := atomKeyAt(t, ts.URL, bong.Loc.X, bong.Loc.Y)

	// Hold the write lock like an in-flight upsert does.
	srv.mu.Lock()
	srv.publishStale()
	ex, code := getExplain(t, ts.URL, key)
	srv.degraded.Store(nil)
	srv.mu.Unlock()
	if code != http.StatusOK {
		t.Fatalf("degraded explain status %d", code)
	}
	if !ex.Stale {
		t.Error("explain under a writer must be flagged stale")
	}
	if len(ex.Factors) == 0 || len(ex.Marginal) != 2 {
		t.Errorf("degraded explain dropped provenance: %+v", ex)
	}
	if ex.Conclique != nil || ex.Cached {
		t.Errorf("degraded explain must omit live-sampler fields: %+v", ex)
	}
}

// TestExplainJSONShape locks the response field names the docs advertise.
func TestExplainJSONShape(t *testing.T) {
	sys := newEbolaSystem(t, core.Config{Engine: core.EngineSya, Seed: 7, Epochs: 800})
	_, ts := startServer(t, sys, Options{})
	mont := datagen.EbolaCounties()[0]
	key := atomKeyAt(t, ts.URL, mont.Loc.X, mont.Loc.Y)
	resp, err := http.Get(ts.URL + "/v1/explain?key=" + url.QueryEscape(key))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"key", "relation", "var_id", "generation", "score", "marginal", "evidence", "pinned", "cached", "factors"} {
		if _, ok := raw[field]; !ok {
			t.Errorf("explain body missing %q: %v", field, raw)
		}
	}
	var _ = factorgraph.NoVar // keep the provenance types honest at compile time
}
