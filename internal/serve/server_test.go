package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/storage"
)

// newEbolaSystem loads the Fig. 1 scenario (4 counties, Montserrado labeled).
func newEbolaSystem(t *testing.T, cfg core.Config) *core.System {
	t.Helper()
	if cfg.Metric == geom.Euclidean {
		cfg.Metric = geom.HaversineMiles
	}
	if cfg.Bandwidth == 0 {
		cfg.Bandwidth = 60
	}
	if cfg.PyramidLevels == 0 {
		cfg.PyramidLevels = 4
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = 4000
	}
	s := core.NewSystem(cfg)
	if err := s.LoadProgram(datagen.EbolaProgram); err != nil {
		t.Fatal(err)
	}
	county, evidence := datagen.EbolaRows(datagen.EbolaCounties())
	if err := s.LoadRows("County", county); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadRows("CountyEvidence", evidence); err != nil {
		t.Fatal(err)
	}
	return s
}

// startServer wraps a system in a warmed-up Server plus an HTTP test server.
// Both are torn down with the test.
func startServer(t *testing.T, sys *core.System, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("closing server: %v", err)
		}
	})
	if err := srv.Warmup(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func postUpsert(t *testing.T, base, relation string, rows [][]string) (evidenceResponse, int) {
	t.Helper()
	body, err := json.Marshal(evidenceRequest{Relation: relation, Rows: rows})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/evidence", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out evidenceResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out, resp.StatusCode
}

func TestServeEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	sys := newEbolaSystem(t, core.Config{Engine: core.EngineSya, Seed: 7})
	srv, ts := startServer(t, sys, Options{Metrics: reg.With("system", "ebola")})

	var health healthResponse
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if health.Status != "ok" || health.Engine != "sya" || health.Vars != 4 {
		t.Errorf("health = %+v", health)
	}

	// Point query: Bong's exact location holds exactly one atom.
	bong := datagen.EbolaCounties()[2]
	var pt queryResponse
	url := fmt.Sprintf("%s/v1/score/point?relation=HasEbola&x=%g&y=%g", ts.URL, bong.Loc.X, bong.Loc.Y)
	if code := getJSON(t, url, &pt); code != http.StatusOK {
		t.Fatalf("point status %d", code)
	}
	if len(pt.Atoms) != 1 || !strings.HasPrefix(pt.Atoms[0].Key, "hasebola|3|") {
		t.Fatalf("point atoms = %+v", pt.Atoms)
	}
	if s := pt.Atoms[0].Score; s <= 0 || s >= 1 {
		t.Errorf("Bong score = %f, want interior probability", s)
	}

	// Range query over Liberia returns all four counties, sorted by key.
	var rng queryResponse
	url = ts.URL + "/v1/score/range?relation=HasEbola&minx=-12&miny=4&maxx=-7&maxy=9"
	if code := getJSON(t, url, &rng); code != http.StatusOK {
		t.Fatalf("range status %d", code)
	}
	if len(rng.Atoms) != 4 {
		t.Fatalf("range returned %d atoms, want 4", len(rng.Atoms))
	}
	for i := 1; i < len(rng.Atoms); i++ {
		if rng.Atoms[i-1].Key >= rng.Atoms[i].Key {
			t.Errorf("range atoms not sorted: %q before %q", rng.Atoms[i-1].Key, rng.Atoms[i].Key)
		}
	}

	// k-NN from Montserrado: itself first, then Margibi (29 mi < Bong 106 mi).
	mont := datagen.EbolaCounties()[0]
	var knn queryResponse
	url = fmt.Sprintf("%s/v1/score/knn?relation=HasEbola&x=%g&y=%g&k=2", ts.URL, mont.Loc.X, mont.Loc.Y)
	if code := getJSON(t, url, &knn); code != http.StatusOK {
		t.Fatalf("knn status %d", code)
	}
	if len(knn.Atoms) != 2 ||
		!strings.HasPrefix(knn.Atoms[0].Key, "hasebola|1|") ||
		!strings.HasPrefix(knn.Atoms[1].Key, "hasebola|2|") {
		t.Fatalf("knn atoms = %+v", knn.Atoms)
	}

	// Error paths.
	if code := getJSON(t, ts.URL+"/v1/score/point?relation=HasEbola&x=1", nil); code != http.StatusBadRequest {
		t.Errorf("missing y: status %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/v1/score/point?relation=Nope&x=1&y=1", nil); code != http.StatusNotFound {
		t.Errorf("unknown relation: status %d, want 404", code)
	}
	if _, code := postUpsert(t, ts.URL, "CountyEvidence", [][]string{{"only-two", "cells"}}); code != http.StatusBadRequest {
		t.Errorf("short row: status %d, want 400", code)
	}

	// Upsert through the API pins Bong and bumps the generation.
	gen := srv.Generation()
	up, code := postUpsert(t, ts.URL, "CountyEvidence", [][]string{
		{"3", storage.Geom(bong.Loc).String(), "true"},
	})
	if code != http.StatusOK {
		t.Fatalf("upsert status %d", code)
	}
	if up.Structural || up.Pins != 1 || up.Generation != gen+1 {
		t.Errorf("upsert = %+v, want 1 pin at generation %d", up, gen+1)
	}
	if code := getJSON(t, url, &knn); code != http.StatusOK {
		t.Fatalf("post-upsert knn status %d", code)
	}

	// The exposition endpoint carries the serve series.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`sya_serve_requests_total{system="ebola"}`,
		`sya_serve_upserts_total{system="ebola"} 1`,
		`sya_serve_generation{system="ebola"} 2`,
		`sya_serve_atoms{system="ebola"} 4`,
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestServeStructuralUpsertRebuildsIndex(t *testing.T) {
	sys := newEbolaSystem(t, core.Config{Engine: core.EngineSya, Seed: 7, Epochs: 800})
	srv, ts := startServer(t, sys, Options{})
	// A new county is a structural change: the delta grounder bails, the
	// server re-grounds, re-infers, and rebuilds its R-trees.
	loc := geom.Pt(-9.2, 6.1)
	up, code := postUpsert(t, ts.URL, "County", [][]string{
		{"9", storage.Geom(loc).String(), "true"},
	})
	if code != http.StatusOK {
		t.Fatalf("structural upsert status %d", code)
	}
	if !up.Structural {
		t.Fatalf("upsert = %+v, want structural", up)
	}
	var pt queryResponse
	url := fmt.Sprintf("%s/v1/score/point?relation=HasEbola&x=%g&y=%g", ts.URL, loc.X, loc.Y)
	if getJSON(t, url, &pt) != http.StatusOK || len(pt.Atoms) != 1 {
		t.Fatalf("new atom not served: %+v", pt)
	}
	if !strings.HasPrefix(pt.Atoms[0].Key, "hasebola|9|") {
		t.Errorf("atom key = %q", pt.Atoms[0].Key)
	}
	var health healthResponse
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Vars != 5 {
		t.Errorf("vars after structural upsert = %d, want 5", health.Vars)
	}
	_ = srv
}
