package serve

import (
	"testing"
	"time"
)

func TestScoreCacheGenerationAndTTL(t *testing.T) {
	c := newScoreCache(time.Second, nil)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }

	if _, ok := c.get(1, 0); ok {
		t.Fatal("empty cache hit")
	}
	c.put(1, 0, []float64{0.3, 0.7})
	if m, ok := c.get(1, 0); !ok || m[1] != 0.7 {
		t.Fatalf("get = %v, %v", m, ok)
	}
	// A generation bump invalidates regardless of TTL.
	if _, ok := c.get(1, 1); ok {
		t.Error("stale generation served")
	}
	// TTL expiry invalidates within the same generation.
	now = now.Add(2 * time.Second)
	if _, ok := c.get(1, 0); ok {
		t.Error("expired entry served")
	}
	// Re-put refreshes the deadline.
	c.put(1, 0, []float64{0.2, 0.8})
	if _, ok := c.get(1, 0); !ok {
		t.Error("refreshed entry missed")
	}
	c.reset()
	if c.len() != 0 {
		t.Errorf("reset left %d entries", c.len())
	}
}

func TestScoreCacheZeroTTLNeverExpires(t *testing.T) {
	c := newScoreCache(0, nil)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }
	c.put(4, 2, []float64{1, 0})
	now = now.Add(1000 * time.Hour)
	if _, ok := c.get(4, 2); !ok {
		t.Error("zero-TTL entry expired; generation is the only invalidator")
	}
}
