package serve

import (
	"sync"
	"time"

	"repro/internal/factorgraph"
	"repro/internal/obs"
)

// scoreCache memoizes per-variable marginals under a read-through policy.
// Entries are valid for one resample generation (the server bumps the
// generation — and resets the cache — after every upsert that changes the
// posterior) and, when a TTL is configured, for at most that long. The
// cache has its own lock so score reads contend on it, not on the server's
// system-wide RWMutex.
type scoreCache struct {
	mu  sync.RWMutex
	ttl time.Duration
	// now is stubbed by tests to drive TTL expiry deterministically.
	now     func() time.Time
	entries map[factorgraph.VarID]cacheEntry

	hits   *obs.Counter
	misses *obs.Counter
}

type cacheEntry struct {
	marginal []float64
	gen      uint64
	expires  time.Time
}

func newScoreCache(ttl time.Duration, m *obs.Registry) *scoreCache {
	return &scoreCache{
		ttl:     ttl,
		now:     time.Now,
		entries: make(map[factorgraph.VarID]cacheEntry),
		hits:    m.Counter("sya_serve_cache_hits_total"),
		misses:  m.Counter("sya_serve_cache_misses_total"),
	}
}

// get returns the cached marginal if it matches the current generation and
// has not outlived its TTL.
func (c *scoreCache) get(vid factorgraph.VarID, gen uint64) ([]float64, bool) {
	c.mu.RLock()
	e, ok := c.entries[vid]
	c.mu.RUnlock()
	if !ok || e.gen != gen {
		c.misses.Inc()
		return nil, false
	}
	if c.ttl > 0 && c.now().After(e.expires) {
		c.misses.Inc()
		return nil, false
	}
	c.hits.Inc()
	return e.marginal, true
}

func (c *scoreCache) put(vid factorgraph.VarID, gen uint64, marginal []float64) {
	e := cacheEntry{marginal: marginal, gen: gen}
	if c.ttl > 0 {
		e.expires = c.now().Add(c.ttl)
	}
	c.mu.Lock()
	c.entries[vid] = e
	c.mu.Unlock()
}

// peek reports whether a live cached marginal exists for (vid, gen) without
// counting a hit or miss — the explain endpoint's read-only probe.
func (c *scoreCache) peek(vid factorgraph.VarID, gen uint64) bool {
	c.mu.RLock()
	e, ok := c.entries[vid]
	c.mu.RUnlock()
	if !ok || e.gen != gen {
		return false
	}
	return c.ttl <= 0 || !c.now().After(e.expires)
}

// reset drops every entry; called when a resample invalidates all scores.
func (c *scoreCache) reset() {
	c.mu.Lock()
	c.entries = make(map[factorgraph.VarID]cacheEntry)
	c.mu.Unlock()
}

// len reports the live entry count (tests).
func (c *scoreCache) len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}
