package serve

import (
	"net/http"
	"strings"

	"repro/internal/conclique"
	"repro/internal/factorgraph"
	"repro/internal/gibbs"
	"repro/internal/grounding"
)

// This file implements GET /v1/explain — score provenance for one grounded
// atom. Where the score endpoints answer "what is P(true)?", explain answers
// "why": which factors (and at what live weights) touch the atom in the
// compiled sampling kernel, which inference rule each came from, which
// conclique the atom sweeps in, and whether its current value is grounded
// evidence, a live evidence pin from an upsert, or a sampled marginal.

// explainFactor is one entry of an atom's compiled score program.
type explainFactor struct {
	// Kind is the kernel opcode family: istrue, imply, and, or, equal,
	// generic for logical factors; spatial, spatial_masked, spatial_generic
	// for spatial-prior pairs.
	Kind   string  `json:"kind"`
	Weight float64 `json:"weight"`
	// Other is the atom key of the factor's other endpoint ("" when the
	// factor is unary or touches several other variables).
	Other string `json:"other,omitempty"`
	// Rule names the inference rule the factor was grounded from (logical
	// factors only; spatial pairs come from the spatial prior, not a rule).
	Rule    string `json:"rule,omitempty"`
	Spatial bool   `json:"spatial,omitempty"`
	// Masked marks spatial ops evaluated under the co-occurrence mask.
	Masked bool `json:"masked,omitempty"`
}

// explainConclique reports the atom's sweep assignment: the pyramid home
// cell and the 2×2-coloring conclique it belongs to.
type explainConclique struct {
	ID    int `json:"id"`
	Level int `json:"level"`
	X     int `json:"x"`
	Y     int `json:"y"`
}

// explainResponse is the /v1/explain body.
type explainResponse struct {
	Key        string `json:"key"`
	Relation   string `json:"relation"`
	VarID      int32  `json:"var_id"`
	Generation uint64 `json:"generation"`
	// Stale marks provenance served from the degraded-read snapshot while
	// an upsert holds the write lock; live-sampler fields (pinned, cached,
	// conclique) are unavailable there.
	Stale    bool      `json:"stale,omitempty"`
	Score    float64   `json:"score"`
	Marginal []float64 `json:"marginal"`
	// Evidence is the label baked in at grounding time, if any.
	Evidence *int32 `json:"evidence,omitempty"`
	// Pinned reports a live evidence pin applied by an upsert since the
	// last full ground (the graph still shows no evidence for the atom).
	Pinned bool `json:"pinned"`
	// Cached reports whether the score cache currently holds this atom's
	// marginal for the serving generation.
	Cached    bool              `json:"cached"`
	Conclique *explainConclique `json:"conclique,omitempty"`
	// Factors is the atom's compiled score program, in kernel evaluation
	// order.
	Factors []explainFactor `json:"factors"`
}

// explainFactors decodes one variable's compiled kernel program against a
// grounding Result, resolving endpoints to atom keys and factor ids to rule
// names.
func explainFactors(ground *grounding.Result, keys []string, vid factorgraph.VarID) []explainFactor {
	prog := ground.Graph.Kernels().VarProgram(vid)
	out := make([]explainFactor, len(prog))
	for i, op := range prog {
		f := explainFactor{
			Kind:    op.Kind,
			Weight:  op.Weight,
			Spatial: op.Spatial,
			Masked:  op.Masked,
		}
		if op.Other != factorgraph.NoVar && int(op.Other) < len(keys) {
			f.Other = keys[op.Other]
		}
		if !op.Spatial && int(op.ID) < len(ground.FactorRule) {
			if ri := ground.FactorRule[op.ID]; ri >= 0 && int(ri) < len(ground.RuleNames) {
				f.Rule = ground.RuleNames[ri]
			}
		}
		out[i] = f
	}
	return out
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request, rq *reqScope) {
	key := r.URL.Query().Get("key")
	if key == "" {
		s.fail(w, rq, http.StatusBadRequest, "explain needs key=relation|term,... (a grounded atom key)")
		return
	}

	sp := rq.span.Child("acquire_read")
	sv := s.acquireRead()
	sp.End()
	if sv != nil {
		rq.stale = true
		s.explainStale(w, rq, sv, key)
		return
	}
	defer s.mu.RUnlock()

	ground := s.sys.Grounding()
	vid, ok := ground.VarID[key]
	if !ok {
		s.fail(w, rq, http.StatusNotFound, "unknown atom %q", key)
		return
	}

	sp = rq.span.Child("provenance")
	resp := explainResponse{
		Key:        key,
		Relation:   relationOf(key),
		VarID:      int32(vid),
		Generation: s.gen,
		Pinned:     s.sys.Pinned(vid),
		Cached:     s.cache.peek(vid, s.gen),
		Factors:    explainFactors(ground, s.keys, vid),
	}
	if v := ground.Graph.Var(vid); v.Evidence != factorgraph.NoEvidence {
		ev := v.Evidence
		resp.Evidence = &ev
	}
	if spl, ok := s.sys.Sampler().(*gibbs.Spatial); ok {
		if cell, ok := spl.HomeCell(vid); ok {
			resp.Conclique = &explainConclique{
				ID:    int(conclique.Of(cell)),
				Level: cell.Level,
				X:     cell.X,
				Y:     cell.Y,
			}
		}
	}
	m := s.marginalFor(vid)
	resp.Marginal = m
	if len(m) > 1 {
		resp.Score = m[1]
	}
	sp.Notef("factors=%d", len(resp.Factors))
	sp.End()
	writeJSON(w, resp)
}

// explainStale serves provenance from the degraded snapshot: factors, rule
// names and the snapshot marginal are all derivable from the immutable
// grounding Result, but the live-sampler fields (pin state, cache state,
// conclique membership) are not readable while the writer mutates them.
func (s *Server) explainStale(w http.ResponseWriter, rq *reqScope, sv *staleView, key string) {
	vid, ok := sv.ground.VarID[key]
	if !ok {
		s.fail(w, rq, http.StatusNotFound, "unknown atom %q", key)
		return
	}
	atom := sv.atom(vid)
	resp := explainResponse{
		Key:        key,
		Relation:   relationOf(key),
		VarID:      int32(vid),
		Generation: sv.gen,
		Stale:      true,
		Score:      atom.Score,
		Marginal:   atom.Marginal,
		Factors:    explainFactors(sv.ground, sv.keys, vid),
	}
	if v := sv.graph.Var(vid); v.Evidence != factorgraph.NoEvidence {
		ev := v.Evidence
		resp.Evidence = &ev
	}
	writeJSON(w, resp)
}

// relationOf extracts the relation name from a "relation|term,..." atom key.
func relationOf(key string) string {
	if i := strings.IndexByte(key, '|'); i >= 0 {
		return key[:i]
	}
	return key
}
