// Package serve turns a grounded core.System into a resident knowledge-base
// server: factual-score point/range/k-NN queries answered from an R-tree
// over the grounded atoms, and evidence upserts folded in live through delta
// grounding plus dirty-conclique incremental resampling.
//
// Concurrency model: one RWMutex guards the system. Queries hold the read
// lock (the sampler is quiescent between upserts, so reading marginals is
// safe); upserts hold the write lock across append → delta-ground → resample
// → cache flush, so readers never observe a half-applied update. Scores are
// memoized in a TTL'd read-through cache keyed by (variable, generation);
// every resample bumps the generation, invalidating the whole cache at once.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/factorgraph"
	"repro/internal/geom"
	"repro/internal/gibbs"
	"repro/internal/index/rtree"
	"repro/internal/obs"
	"repro/internal/storage"
)

// Options parameterizes a Server.
type Options struct {
	// Epochs is the inference budget per upsert: incremental epochs on the
	// delta path, full epochs after a structural re-ground (0 → the
	// system's configured epoch budget).
	Epochs int
	// CacheTTL bounds how long a cached score may serve reads without being
	// recomputed from the sampler's counters (0 → cache entries live until
	// the next resample invalidates them).
	CacheTTL time.Duration
	// Metrics receives the sya_serve_* series (nil disables).
	Metrics *obs.Registry
}

// Server is a resident KB: a grounded system plus its serving indexes.
type Server struct {
	opts Options

	// mu serializes upserts (write) against score reads (read). The
	// sampler only sweeps while the write lock is held, which is what
	// makes lock-free marginal reads under RLock sound.
	mu  sync.RWMutex
	sys *core.System
	// trees indexes each variable relation's grounded atoms by location;
	// Item.Data is the factor-graph VarID.
	trees map[string]*rtree.Tree
	// keys resolves a VarID back to its "relation|terms..." atom key.
	keys []string
	gen  uint64

	cache *scoreCache

	mRequests   *obs.Counter
	mErrors     *obs.Counter
	mUpserts    *obs.Counter
	mGen        *obs.Gauge
	mAtoms      *obs.Gauge
	mLatency    *obs.Histogram
	mStructural *obs.Counter
}

// New wraps an already-constructed system. The system is grounded if it has
// not been yet; inference is left to Warmup so callers control the initial
// sampling budget. The server takes ownership: Close releases the system.
func New(sys *core.System, opts Options) (*Server, error) {
	if opts.Epochs == 0 {
		opts.Epochs = sys.Config().Epochs
	}
	if sys.Grounding() == nil {
		if _, err := sys.Ground(); err != nil {
			return nil, fmt.Errorf("serve: grounding: %w", err)
		}
	}
	m := opts.Metrics
	s := &Server{
		opts:        opts,
		sys:         sys,
		cache:       newScoreCache(opts.CacheTTL, m),
		mRequests:   m.Counter("sya_serve_requests_total"),
		mErrors:     m.Counter("sya_serve_errors_total"),
		mUpserts:    m.Counter("sya_serve_upserts_total"),
		mGen:        m.Gauge("sya_serve_generation"),
		mAtoms:      m.Gauge("sya_serve_atoms"),
		mLatency:    m.Histogram("sya_serve_request_seconds", latencyBuckets),
		mStructural: m.Counter("sya_serve_structural_regrounds_total"),
	}
	s.rebuildIndex()
	return s, nil
}

var latencyBuckets = []float64{.0001, .0005, .001, .005, .01, .05, .1, .5, 1, 5}

// Warmup runs the initial inference pass so queries have converged scores.
func (s *Server) Warmup(ctx context.Context, epochs int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epochs == 0 {
		epochs = s.opts.Epochs
	}
	_, _, err := s.sys.InferContext(ctx, epochs)
	if err == nil {
		s.bumpGeneration()
	}
	return err
}

// Close releases the system's sampler pool.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sys.Close()
}

// System exposes the underlying system for in-process callers (tests and
// the bench harness); its use must follow the server's locking discipline.
func (s *Server) System() *core.System { return s.sys }

// Generation reports the current resample generation.
func (s *Server) Generation() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gen
}

// rebuildIndex rebuilds the per-relation R-trees and the key table from the
// current grounding. Caller holds the write lock (or is in New).
func (s *Server) rebuildIndex() {
	ground := s.sys.Grounding()
	relNames := make(map[int32]string, len(ground.RelationIndex))
	for name, idx := range ground.RelationIndex {
		relNames[idx] = name
	}
	items := make(map[string][]rtree.Item)
	g := ground.Graph
	s.keys = make([]string, g.NumVars())
	for key, vid := range ground.VarID {
		s.keys[vid] = key
	}
	atoms := 0
	g.Vars(func(id factorgraph.VarID, v factorgraph.Variable) bool {
		if !v.HasLoc {
			return true
		}
		rel := relNames[v.Relation]
		items[rel] = append(items[rel], rtree.Item{Rect: v.Loc.Bounds(), Data: int64(id)})
		atoms++
		return true
	})
	s.trees = make(map[string]*rtree.Tree, len(items))
	for rel, its := range items {
		s.trees[rel] = rtree.Bulk(its)
	}
	s.mAtoms.Set(float64(atoms))
}

// bumpGeneration invalidates every cached score. Caller holds the write lock.
func (s *Server) bumpGeneration() {
	s.gen++
	s.cache.reset()
	s.mGen.Set(float64(s.gen))
}

// marginalFor reads the current marginal of one variable. Caller holds at
// least the read lock; the sampler is quiescent (sweeps run only under the
// write lock), so per-variable counter reads are stable.
func (s *Server) marginalFor(vid factorgraph.VarID) []float64 {
	if m, ok := s.cache.get(vid, s.gen); ok {
		return m
	}
	var m []float64
	if sp, ok := s.sys.Sampler().(*gibbs.Spatial); ok {
		m = sp.MarginalVar(vid)
	} else if smp := s.sys.Sampler(); smp != nil {
		m = smp.Marginals()[vid]
	} else {
		// No sampler yet (Warmup not run): evidence is known, queries are
		// uniform.
		g := s.sys.Grounding().Graph
		v := g.Var(vid)
		m = make([]float64, v.Domain)
		if v.Evidence != factorgraph.NoEvidence {
			m[v.Evidence] = 1
		} else {
			for i := range m {
				m[i] = 1 / float64(len(m))
			}
		}
	}
	s.cache.put(vid, s.gen, m)
	return m
}

// ScoredAtom is one query result: a grounded atom with its factual score.
type ScoredAtom struct {
	Key      string     `json:"key"`
	Location [2]float64 `json:"location"`
	// Score is P(true) for binary atoms (marginal[1]).
	Score    float64   `json:"score"`
	Marginal []float64 `json:"marginal"`
}

func (s *Server) scoredAtom(vid factorgraph.VarID) ScoredAtom {
	v := s.sys.Grounding().Graph.Var(vid)
	m := s.marginalFor(vid)
	score := 0.0
	if len(m) > 1 {
		score = m[1]
	}
	return ScoredAtom{
		Key:      s.keys[vid],
		Location: [2]float64{v.Loc.X, v.Loc.Y},
		Score:    score,
		Marginal: m,
	}
}

// Handler returns the server's HTTP API:
//
//	GET  /v1/score/point?relation=R&x=&y=        atoms exactly at (x,y)
//	GET  /v1/score/range?relation=R&minx=&miny=&maxx=&maxy=
//	GET  /v1/score/knn?relation=R&x=&y=&k=
//	POST /v1/evidence  {"relation": "...", "rows": [["cell", ...], ...]}
//	GET  /healthz
//	GET  /metrics, /debug/pprof/*
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/score/point", s.instrument(s.handlePoint))
	mux.HandleFunc("/v1/score/range", s.instrument(s.handleRange))
	mux.HandleFunc("/v1/score/knn", s.instrument(s.handleKNN))
	mux.HandleFunc("/v1/evidence", s.instrument(s.handleEvidence))
	mux.HandleFunc("/healthz", s.handleHealth)
	if s.opts.Metrics != nil {
		mux.Handle("/metrics", s.opts.Metrics.Handler())
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) instrument(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.mRequests.Inc()
		h(w, r)
		s.mLatency.Observe(time.Since(start).Seconds())
	}
}

func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	s.mErrors.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// tree resolves a relation's spatial index. Caller holds the read lock.
func (s *Server) tree(relation string) (*rtree.Tree, bool) {
	t, ok := s.trees[strings.ToLower(relation)]
	return t, ok
}

func queryFloat(r *http.Request, name string) (float64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	return strconv.ParseFloat(raw, 64)
}

// queryResponse is the envelope of every score query.
type queryResponse struct {
	Relation   string       `json:"relation"`
	Generation uint64       `json:"generation"`
	Atoms      []ScoredAtom `json:"atoms"`
}

func (s *Server) handlePoint(w http.ResponseWriter, r *http.Request) {
	rel := r.URL.Query().Get("relation")
	x, errX := queryFloat(r, "x")
	y, errY := queryFloat(r, "y")
	if rel == "" || errX != nil || errY != nil {
		s.fail(w, http.StatusBadRequest, "point query needs relation, x, y")
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	tree, ok := s.tree(rel)
	if !ok {
		s.fail(w, http.StatusNotFound, "unknown variable relation %q", rel)
		return
	}
	resp := queryResponse{Relation: rel, Generation: s.gen, Atoms: []ScoredAtom{}}
	for _, it := range tree.SearchAll(geom.Pt(x, y).Bounds()) {
		resp.Atoms = append(resp.Atoms, s.scoredAtom(factorgraph.VarID(it.Data)))
	}
	writeJSON(w, resp)
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	rel := r.URL.Query().Get("relation")
	minx, e1 := queryFloat(r, "minx")
	miny, e2 := queryFloat(r, "miny")
	maxx, e3 := queryFloat(r, "maxx")
	maxy, e4 := queryFloat(r, "maxy")
	if rel == "" || e1 != nil || e2 != nil || e3 != nil || e4 != nil {
		s.fail(w, http.StatusBadRequest, "range query needs relation, minx, miny, maxx, maxy")
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	tree, ok := s.tree(rel)
	if !ok {
		s.fail(w, http.StatusNotFound, "unknown variable relation %q", rel)
		return
	}
	window := geom.NewRect(geom.Pt(minx, miny), geom.Pt(maxx, maxy))
	resp := queryResponse{Relation: rel, Generation: s.gen, Atoms: []ScoredAtom{}}
	for _, it := range tree.SearchAll(window) {
		resp.Atoms = append(resp.Atoms, s.scoredAtom(factorgraph.VarID(it.Data)))
	}
	// Window search order is tree order; sort for a stable API.
	sort.Slice(resp.Atoms, func(i, j int) bool { return resp.Atoms[i].Key < resp.Atoms[j].Key })
	writeJSON(w, resp)
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	rel := r.URL.Query().Get("relation")
	x, e1 := queryFloat(r, "x")
	y, e2 := queryFloat(r, "y")
	k, e3 := strconv.Atoi(r.URL.Query().Get("k"))
	if rel == "" || e1 != nil || e2 != nil || e3 != nil || k <= 0 {
		s.fail(w, http.StatusBadRequest, "knn query needs relation, x, y, k>0")
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	tree, ok := s.tree(rel)
	if !ok {
		s.fail(w, http.StatusNotFound, "unknown variable relation %q", rel)
		return
	}
	resp := queryResponse{Relation: rel, Generation: s.gen, Atoms: []ScoredAtom{}}
	for _, it := range tree.NearestK(geom.Pt(x, y), k) {
		resp.Atoms = append(resp.Atoms, s.scoredAtom(factorgraph.VarID(it.Data)))
	}
	writeJSON(w, resp)
}

// evidenceRequest is the upsert payload: rows as text cells, parsed against
// the relation's schema with the same rules as the CSV loader.
type evidenceRequest struct {
	Relation string     `json:"relation"`
	Rows     [][]string `json:"rows"`
}

// evidenceResponse reports what the upsert did.
type evidenceResponse struct {
	Generation  uint64 `json:"generation"`
	Rows        int    `json:"rows"`
	Pins        int    `json:"pins"`
	SkippedPins int    `json:"skipped_pins"`
	Structural  bool   `json:"structural"`
	Reason      string `json:"reason,omitempty"`
	Epochs      int    `json:"epochs"`
}

func (s *Server) handleEvidence(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "evidence upserts are POST")
		return
	}
	var req evidenceRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	if req.Relation == "" || len(req.Rows) == 0 {
		s.fail(w, http.StatusBadRequest, "upsert needs relation and rows")
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	tbl, err := s.sys.DB().Table(req.Relation)
	if err != nil {
		s.fail(w, http.StatusNotFound, "%v", err)
		return
	}
	schema := tbl.Schema()
	rows := make([]storage.Row, 0, len(req.Rows))
	for i, cells := range req.Rows {
		if len(cells) != len(schema.Cols) {
			s.fail(w, http.StatusBadRequest, "row %d has %d cells, schema %s has %d columns",
				i, len(cells), schema.Name, len(schema.Cols))
			return
		}
		row := make(storage.Row, len(cells))
		for c, cell := range cells {
			v, err := storage.ParseCell(schema.Cols[c], cell)
			if err != nil {
				s.fail(w, http.StatusBadRequest, "row %d column %s: %v", i, schema.Cols[c].Name, err)
				return
			}
			row[c] = v
		}
		rows = append(rows, row)
	}

	ctx := r.Context()
	stats, err := s.sys.UpsertEvidence(ctx, req.Relation, rows)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "upsert: %v", err)
		return
	}
	s.mUpserts.Inc()
	epochs := 0
	if stats.Structural {
		// The grounding (and its VarIDs) changed wholesale: rebuild the
		// serving indexes and re-infer from scratch.
		s.mStructural.Inc()
		s.rebuildIndex()
		epochs = s.opts.Epochs
		if _, _, err := s.sys.InferContext(ctx, epochs); err != nil {
			s.fail(w, http.StatusInternalServerError, "re-inference: %v", err)
			return
		}
	} else if stats.Pins > 0 {
		epochs = s.opts.Epochs
		if _, _, err := s.sys.InferIncrementalContext(ctx, epochs); err != nil {
			s.fail(w, http.StatusInternalServerError, "incremental inference: %v", err)
			return
		}
	}
	if stats.Structural || stats.Pins > 0 {
		s.bumpGeneration()
	}
	writeJSON(w, evidenceResponse{
		Generation:  s.gen,
		Rows:        stats.Rows,
		Pins:        stats.Pins,
		SkippedPins: stats.SkippedPins,
		Structural:  stats.Structural,
		Reason:      stats.Reason,
		Epochs:      epochs,
	})
}

// healthResponse is the /healthz body.
type healthResponse struct {
	Status     string `json:"status"`
	Engine     string `json:"engine"`
	Vars       int    `json:"vars"`
	Generation uint64 `json:"generation"`
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	writeJSON(w, healthResponse{
		Status:     "ok",
		Engine:     s.sys.Config().Engine.String(),
		Vars:       s.sys.Grounding().Stats.Vars,
		Generation: s.gen,
	})
}
