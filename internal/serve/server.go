// Package serve turns a grounded core.System into a resident knowledge-base
// server: factual-score point/range/k-NN queries answered from an R-tree
// over the grounded atoms, and evidence upserts folded in live through delta
// grounding plus dirty-conclique incremental resampling.
//
// Concurrency model: one RWMutex guards the system. Queries hold the read
// lock (the sampler is quiescent between upserts, so reading marginals is
// safe); upserts hold the write lock across append → delta-ground → resample
// → cache flush, so readers never observe a half-applied update. Scores are
// memoized in a TTL'd read-through cache keyed by (variable, generation);
// every resample bumps the generation, invalidating the whole cache at once.
//
// Durability: with Options.WALPath set, every accepted evidence batch is
// appended to a CRC-framed write-ahead log *before* it is applied, so an
// acked upsert survives a crash; New replays the log into the storage tables
// before grounding, making restart = load + replay + one ground rather than
// re-derive-from-scratch. Replay is at-least-once — safe because evidence
// pins are first-pin-wins, so re-applying a batch is idempotent.
//
// Degradation: upserts publish a generation-stamped immutable snapshot of
// the serving state (keys, R-trees, graph, marginals) before they start
// mutating; readers that would block on the write lock serve from that
// snapshot with stale: true instead. A bounded in-flight upsert queue sheds
// excess writers with 429 rather than letting them pile up on the lock.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/factorgraph"
	"repro/internal/geom"
	"repro/internal/gibbs"
	"repro/internal/grounding"
	"repro/internal/index/rtree"
	"repro/internal/obs"
	"repro/internal/wal"
)

// Options parameterizes a Server.
type Options struct {
	// Epochs is the inference budget per upsert: incremental epochs on the
	// delta path, full epochs after a structural re-ground (0 → the
	// system's configured epoch budget).
	Epochs int
	// CacheTTL bounds how long a cached score may serve reads without being
	// recomputed from the sampler's counters (0 → cache entries live until
	// the next resample invalidates them).
	CacheTTL time.Duration
	// Metrics receives the sya_serve_* series (nil disables).
	Metrics *obs.Registry

	// WALPath names the evidence write-ahead log ("" → durability off).
	// New replays any existing log before grounding.
	WALPath string
	// WALSyncEvery batches fsyncs: sync after every n-th append (0 or 1 →
	// every append, the safest setting).
	WALSyncEvery int
	// WALSnapshotEvery compacts the log into a rotating snapshot pair after
	// this many log records (0 → never compact automatically).
	WALSnapshotEvery int
	// MaxQueuedUpserts bounds in-flight evidence requests; excess upserts
	// are shed with 429 instead of queueing on the write lock (0 → 32).
	MaxQueuedUpserts int
	// UpsertTimeout bounds the inference phase of one upsert. 0 leaves
	// inference bounded only by the client's own context.
	UpsertTimeout time.Duration

	// Tracer records request-scoped span trees for /debug/traces and the
	// slow-request log (nil disables tracing; handlers then pay only a
	// branch per would-be span).
	Tracer *obs.Tracer

	// LocalBudget enables the lazy local-grounding path for point queries:
	// with a positive value, a point query is answered from a bounded
	// subgraph of at most this many sampled variables around the matched
	// atom instead of the full-graph marginal. A ?budget= query parameter
	// overrides it per request (?budget=0 forces the full path). 0
	// disables the lazy path by default.
	LocalBudget int
	// LocalEpochs is the sampling budget per lazy query (0 → the system's
	// configured epoch budget).
	LocalEpochs int
	// LocalCacheSize bounds the LRU of lazy answers keyed by
	// (atom, generation, budget) (0 → 128).
	LocalCacheSize int
}

// Server is a resident KB: a grounded system plus its serving indexes.
type Server struct {
	opts Options

	// mu serializes upserts (write) against score reads (read). The
	// sampler only sweeps while the write lock is held, which is what
	// makes lock-free marginal reads under RLock sound.
	mu  sync.RWMutex
	sys *core.System
	// trees indexes each variable relation's grounded atoms by location;
	// Item.Data is the factor-graph VarID.
	trees map[string]*rtree.Tree
	// keys resolves a VarID back to its "relation|terms..." atom key.
	keys []string
	gen  uint64

	cache *scoreCache
	// locals caches lazy point-query answers; generation-stamped keys make
	// upsert invalidation implicit.
	locals *localCache

	// wal is the evidence write-ahead log (nil when durability is off).
	// Appends happen under the write lock; Close syncs and closes it.
	wal    *wal.Log
	replay wal.ReplayStats

	// degraded holds the immutable read snapshot published by an in-flight
	// upsert; nil when no writer is active. Readers that cannot take the
	// read lock serve from it instead of blocking.
	degraded atomic.Pointer[staleView]

	// upsertSlots is the bounded admission queue for evidence requests; a
	// full channel sheds the upsert with 429.
	upsertSlots chan struct{}
	inflight    atomic.Int64

	tracer *obs.Tracer

	mRequests   *obs.Counter
	mErrors     *obs.Counter
	mUpserts    *obs.Counter
	mGen        *obs.Gauge
	mAtoms      *obs.Gauge
	mStructural *obs.Counter
	mShed       *obs.Counter
	mInflight   *obs.Gauge
	mStaleReads *obs.Counter
	mStaleness  *obs.Histogram

	// latency holds one sya_serve_request_seconds series per
	// endpoint × outcome, prebuilt so the request path does a map read
	// instead of a labeled-registry lookup.
	latency map[latencyKey]*obs.Histogram
}

// latencyKey indexes the prebuilt request-latency series.
type latencyKey struct{ endpoint, outcome string }

// Request outcomes, the `outcome` label of sya_serve_request_seconds:
// outcomeOK for a fresh answer, outcomeStale for a degraded read served from
// the pre-upsert snapshot, outcomeShed for a 429'd upsert, outcomeError for
// everything else that failed.
const (
	outcomeOK    = "ok"
	outcomeStale = "stale"
	outcomeShed  = "shed"
	outcomeError = "error"
)

var endpoints = []string{"point", "range", "knn", "evidence", "explain"}
var outcomes = []string{outcomeOK, outcomeStale, outcomeShed, outcomeError}

// New wraps an already-constructed system. With a WALPath the evidence log
// is replayed into the storage tables first, so grounding (run here if the
// caller has not) derives a KB that already contains every acked upsert.
// Inference is left to Warmup so callers control the initial sampling
// budget. The server takes ownership: Close releases the system and the WAL.
func New(sys *core.System, opts Options) (*Server, error) {
	if opts.Epochs == 0 {
		opts.Epochs = sys.Config().Epochs
	}
	if opts.MaxQueuedUpserts <= 0 {
		opts.MaxQueuedUpserts = 32
	}
	var wlog *wal.Log
	var replay wal.ReplayStats
	if opts.WALPath != "" {
		var err error
		wlog, replay, err = wal.Open(opts.WALPath, wal.Options{
			SyncEvery:     opts.WALSyncEvery,
			SnapshotEvery: opts.WALSnapshotEvery,
			Metrics:       opts.Metrics,
		})
		if err != nil {
			return nil, fmt.Errorf("serve: opening wal: %w", err)
		}
		replayed := wlog.Records()
		for _, rec := range replayed {
			rows, err := sys.ParseRows(rec.Relation, rec.Rows)
			if err == nil {
				err = sys.LoadRows(rec.Relation, rows)
			}
			if err != nil {
				wlog.Close()
				return nil, fmt.Errorf("serve: replaying wal record for %s: %w", rec.Relation, err)
			}
		}
		if len(replayed) > 0 && sys.Grounding() != nil {
			// The caller grounded before the replayed evidence landed in the
			// tables; re-derive so the grounding sees it.
			if _, err := sys.Ground(); err != nil {
				wlog.Close()
				return nil, fmt.Errorf("serve: re-grounding after wal replay: %w", err)
			}
		}
	}
	if sys.Grounding() == nil {
		if _, err := sys.Ground(); err != nil {
			if wlog != nil {
				wlog.Close()
			}
			return nil, fmt.Errorf("serve: grounding: %w", err)
		}
	}
	m := opts.Metrics
	obs.RegisterRuntimeMetrics(m)
	s := &Server{
		opts:        opts,
		sys:         sys,
		cache:       newScoreCache(opts.CacheTTL, m),
		locals:      newLocalCache(opts.LocalCacheSize, m),
		wal:         wlog,
		replay:      replay,
		upsertSlots: make(chan struct{}, opts.MaxQueuedUpserts),
		tracer:      opts.Tracer,
		mRequests:   m.Counter("sya_serve_requests_total"),
		mErrors:     m.Counter("sya_serve_errors_total"),
		mUpserts:    m.Counter("sya_serve_upserts_total"),
		mGen:        m.Gauge("sya_serve_generation"),
		mAtoms:      m.Gauge("sya_serve_atoms"),
		mStructural: m.Counter("sya_serve_structural_regrounds_total"),
		mShed:       m.Counter("sya_serve_shed_total"),
		mInflight:   m.Gauge("sya_serve_inflight"),
		mStaleReads: m.Counter("sya_serve_degraded_reads_total"),
		mStaleness:  m.Histogram("sya_serve_staleness_seconds", stalenessBuckets),
		latency:     make(map[latencyKey]*obs.Histogram, len(endpoints)*len(outcomes)),
	}
	for _, ep := range endpoints {
		for _, oc := range outcomes {
			s.latency[latencyKey{ep, oc}] =
				m.With("endpoint", ep, "outcome", oc).Histogram("sya_serve_request_seconds", latencyBuckets)
		}
	}
	s.rebuildIndex()
	return s, nil
}

// ReplayStats reports what the boot-time WAL replay recovered (zero value
// when the server runs without a WAL).
func (s *Server) ReplayStats() wal.ReplayStats { return s.replay }

var latencyBuckets = []float64{.0001, .0005, .001, .005, .01, .05, .1, .5, 1, 5}

// stalenessBuckets cover the evidence-to-visible window: accept timestamp to
// generation publish, dominated by delta grounding plus the resample.
var stalenessBuckets = []float64{.001, .005, .01, .05, .1, .5, 1, 5, 10, 30}

// Warmup runs the initial inference pass so queries have converged scores.
// Reads arriving while it runs are served degraded rather than blocked.
func (s *Server) Warmup(ctx context.Context, epochs int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.publishStale()
	defer s.degraded.Store(nil)
	if epochs == 0 {
		epochs = s.opts.Epochs
	}
	_, _, err := s.sys.InferContext(ctx, epochs)
	if err == nil {
		s.bumpGeneration()
	}
	return err
}

// Close releases the system's sampler pool and syncs + closes the WAL, so a
// clean shutdown never loses an acked upsert.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sys.Close()
	if s.wal != nil {
		w := s.wal
		s.wal = nil
		return w.Close()
	}
	return nil
}

// System exposes the underlying system for in-process callers (tests and
// the bench harness); its use must follow the server's locking discipline.
func (s *Server) System() *core.System { return s.sys }

// Generation reports the current resample generation.
func (s *Server) Generation() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gen
}

// rebuildIndex rebuilds the per-relation R-trees and the key table from the
// current grounding. Caller holds the write lock (or is in New).
func (s *Server) rebuildIndex() {
	ground := s.sys.Grounding()
	relNames := make(map[int32]string, len(ground.RelationIndex))
	for name, idx := range ground.RelationIndex {
		relNames[idx] = name
	}
	items := make(map[string][]rtree.Item)
	g := ground.Graph
	s.keys = make([]string, g.NumVars())
	for key, vid := range ground.VarID {
		s.keys[vid] = key
	}
	atoms := 0
	g.Vars(func(id factorgraph.VarID, v factorgraph.Variable) bool {
		if !v.HasLoc {
			return true
		}
		rel := relNames[v.Relation]
		items[rel] = append(items[rel], rtree.Item{Rect: v.Loc.Bounds(), Data: int64(id)})
		atoms++
		return true
	})
	s.trees = make(map[string]*rtree.Tree, len(items))
	for rel, its := range items {
		s.trees[rel] = rtree.Bulk(its)
	}
	s.mAtoms.Set(float64(atoms))
}

// bumpGeneration invalidates every cached score. Caller holds the write lock.
func (s *Server) bumpGeneration() {
	s.gen++
	s.cache.reset()
	s.mGen.Set(float64(s.gen))
}

// marginalFor reads the current marginal of one variable. Caller holds at
// least the read lock; the sampler is quiescent (sweeps run only under the
// write lock), so per-variable counter reads are stable.
func (s *Server) marginalFor(vid factorgraph.VarID) []float64 {
	if m, ok := s.cache.get(vid, s.gen); ok {
		return m
	}
	var m []float64
	if sp, ok := s.sys.Sampler().(*gibbs.Spatial); ok {
		m = sp.MarginalVar(vid)
	} else if smp := s.sys.Sampler(); smp != nil {
		m = smp.Marginals()[vid]
	} else {
		// No sampler yet (Warmup not run): evidence is known, queries are
		// uniform.
		g := s.sys.Grounding().Graph
		v := g.Var(vid)
		m = make([]float64, v.Domain)
		if v.Evidence != factorgraph.NoEvidence {
			m[v.Evidence] = 1
		} else {
			for i := range m {
				m[i] = 1 / float64(len(m))
			}
		}
	}
	s.cache.put(vid, s.gen, m)
	return m
}

// ScoredAtom is one query result: a grounded atom with its factual score.
type ScoredAtom struct {
	Key      string     `json:"key"`
	Location [2]float64 `json:"location"`
	// Score is P(true) for binary atoms (marginal[1]).
	Score    float64   `json:"score"`
	Marginal []float64 `json:"marginal"`

	// Lazy-path extras (point queries with an effective budget): the
	// sampled subgraph size, the truncation-error bound from the cut
	// factors' decay weights, and whether any uncertain tissue was cut.
	LocalVars  int     `json:"local_vars,omitempty"`
	ErrorBound float64 `json:"error_bound,omitempty"`
	Truncated  bool    `json:"truncated,omitempty"`
}

func (s *Server) scoredAtom(vid factorgraph.VarID) ScoredAtom {
	v := s.sys.Grounding().Graph.Var(vid)
	m := s.marginalFor(vid)
	score := 0.0
	if len(m) > 1 {
		score = m[1]
	}
	return ScoredAtom{
		Key:      s.keys[vid],
		Location: [2]float64{v.Loc.X, v.Loc.Y},
		Score:    score,
		Marginal: m,
	}
}

// staleView is the immutable snapshot an upsert publishes before mutating
// the system: the previous generation's keys, R-trees, ground graph and
// marginals. Everything in it stays valid while the writer works — the
// trees are immutable after Bulk, a structural re-ground *replaces* the
// graph rather than mutating it, and the marginals are copied out of the
// sampler's counters before any resample starts.
type staleView struct {
	gen       uint64
	keys      []string
	trees     map[string]*rtree.Tree
	graph     *factorgraph.Graph
	marginals [][]float64
	vars      int
	// ground is the grounding Result the snapshot was taken from. A
	// structural re-ground replaces the Result wholesale (its VarID map,
	// rule tables and graph are never mutated in place), so the degraded
	// explain path can keep resolving atoms against it.
	ground *grounding.Result
}

func (v *staleView) atom(vid factorgraph.VarID) ScoredAtom {
	gv := v.graph.Var(vid)
	var m []float64
	if int(vid) < len(v.marginals) {
		m = v.marginals[vid]
	}
	if m == nil {
		m = make([]float64, gv.Domain)
		if gv.Evidence != factorgraph.NoEvidence {
			m[gv.Evidence] = 1
		} else {
			for i := range m {
				m[i] = 1 / float64(len(m))
			}
		}
	}
	score := 0.0
	if len(m) > 1 {
		score = m[1]
	}
	return ScoredAtom{
		Key:      v.keys[vid],
		Location: [2]float64{gv.Loc.X, gv.Loc.Y},
		Score:    score,
		Marginal: m,
	}
}

// publishStale snapshots the current serving state into s.degraded so reads
// arriving during the upsert can be answered without the lock. Caller holds
// the write lock and must Store(nil) before releasing it.
func (s *Server) publishStale() {
	ground := s.sys.Grounding()
	sv := &staleView{
		gen:    s.gen,
		keys:   s.keys,
		trees:  s.trees,
		graph:  ground.Graph,
		vars:   ground.Stats.Vars,
		ground: ground,
	}
	if smp := s.sys.Sampler(); smp != nil {
		// Marginals() allocates fresh slices, so the snapshot is decoupled
		// from the counters the resample is about to advance.
		sv.marginals = smp.Marginals()
	}
	s.degraded.Store(sv)
}

// acquireRead is the read-side admission point. It returns nil after taking
// the read lock (caller must RUnlock — the live path), or a stale snapshot
// when an upsert holds the write lock (caller must not touch s.sys).
func (s *Server) acquireRead() *staleView {
	for {
		v := s.degraded.Load()
		if v == nil {
			s.mu.RLock()
			return nil
		}
		if !s.mu.TryRLock() {
			s.mStaleReads.Inc()
			return v
		}
		// The writer retired between the load and the try. If no new writer
		// published in the meantime we hold a clean read lock; otherwise
		// release and re-decide.
		if s.degraded.Load() == nil {
			return nil
		}
		s.mu.RUnlock()
	}
}

// readState is what a score handler needs from either path: the live state
// under RLock, or a stale snapshot.
type readState struct {
	gen     uint64
	stale   bool
	trees   map[string]*rtree.Tree
	atom    func(vid factorgraph.VarID) ScoredAtom
	release func()
}

func (s *Server) beginRead() readState {
	if sv := s.acquireRead(); sv != nil {
		return readState{gen: sv.gen, stale: true, trees: sv.trees, atom: sv.atom, release: func() {}}
	}
	return readState{gen: s.gen, trees: s.trees, atom: s.scoredAtom, release: s.mu.RUnlock}
}

// Handler returns the server's HTTP API:
//
//	GET  /v1/score/point?relation=R&x=&y=        atoms exactly at (x,y)
//	GET  /v1/score/range?relation=R&minx=&miny=&maxx=&maxy=
//	GET  /v1/score/knn?relation=R&x=&y=&k=
//	GET  /v1/explain?key=relation|term,...       score provenance for one atom
//	POST /v1/evidence  {"relation": "...", "rows": [["cell", ...], ...]}
//	GET  /healthz
//	GET  /metrics, /debug/traces, /debug/pprof/*
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/score/point", s.instrument("point", s.handlePoint))
	mux.HandleFunc("/v1/score/range", s.instrument("range", s.handleRange))
	mux.HandleFunc("/v1/score/knn", s.instrument("knn", s.handleKNN))
	mux.HandleFunc("/v1/explain", s.instrument("explain", s.handleExplain))
	mux.HandleFunc("/v1/evidence", s.instrument("evidence", s.handleEvidence))
	mux.HandleFunc("/healthz", s.handleHealth)
	if s.opts.Metrics != nil {
		mux.Handle("/metrics", s.opts.Metrics.Handler())
	}
	mux.Handle("/debug/traces", s.tracer.TracesHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// reqScope carries one request's observability state through its handler:
// the trace span, the latency-label outcome, and the accept timestamp the
// staleness histogram measures from.
type reqScope struct {
	span    obs.Span
	start   time.Time
	outcome string
	stale   bool
}

// instrument wraps a handler with the per-request observability seam: a
// request counter, a trace span (opened from — and echoed to — the W3C
// traceparent header), and the endpoint × outcome latency histogram. With
// tracing disabled the span is a no-op value and the wrapper adds only the
// counter, a clock read and one map lookup.
func (s *Server) instrument(endpoint string, h func(http.ResponseWriter, *http.Request, *reqScope)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rq := reqScope{start: time.Now(), outcome: outcomeOK}
		rq.span = s.tracer.StartRequest(endpoint, r.Header.Get("traceparent"))
		if rq.span.Enabled() {
			w.Header().Set("traceparent", rq.span.Traceparent())
			r = r.WithContext(obs.ContextWithSpan(r.Context(), rq.span))
		}
		s.mRequests.Inc()
		h(w, r, &rq)
		if rq.stale && rq.outcome == outcomeOK {
			rq.outcome = outcomeStale
		}
		rq.span.Finish(rq.outcome)
		if hist, ok := s.latency[latencyKey{endpoint, rq.outcome}]; ok {
			hist.Observe(time.Since(rq.start).Seconds())
		}
	}
}

func (s *Server) fail(w http.ResponseWriter, rq *reqScope, code int, format string, args ...any) {
	s.mErrors.Inc()
	if rq != nil {
		if code == http.StatusTooManyRequests {
			rq.outcome = outcomeShed
		} else {
			rq.outcome = outcomeError
		}
		rq.span.Notef("%d: "+format, append([]any{code}, args...)...)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// lookupTree resolves a relation's spatial index in a tree map (the live
// one under the read lock, or a stale snapshot's).
func lookupTree(trees map[string]*rtree.Tree, relation string) (*rtree.Tree, bool) {
	t, ok := trees[strings.ToLower(relation)]
	return t, ok
}

func queryFloat(r *http.Request, name string) (float64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	return strconv.ParseFloat(raw, 64)
}

// queryResponse is the envelope of every score query. Stale marks scores
// served from the degraded-read snapshot (the generation they belong to)
// while an upsert or re-ground is in flight.
type queryResponse struct {
	Relation   string       `json:"relation"`
	Generation uint64       `json:"generation"`
	Stale      bool         `json:"stale,omitempty"`
	// Budget is the lazy-path variable budget the atoms were answered
	// under; 0 means the full-graph path.
	Budget int          `json:"budget,omitempty"`
	Atoms  []ScoredAtom `json:"atoms"`
}

// beginReadTraced is beginRead with the lock acquisition recorded as an
// "acquire_read" stage and the stale outcome propagated to the scope.
func (s *Server) beginReadTraced(rq *reqScope) readState {
	sp := rq.span.Child("acquire_read")
	rs := s.beginRead()
	sp.End()
	rq.stale = rs.stale
	return rs
}

// probeAndScore runs the common tail of a score query: time the R-tree probe
// ("rtree_probe") and the cache/marginal reads ("score") as stages of the
// request trace.
func probeAndScore(rq *reqScope, rs readState, probe func() []rtree.Item) []ScoredAtom {
	sp := rq.span.Child("rtree_probe")
	items := probe()
	sp.Notef("hits=%d", len(items))
	sp.End()
	sp = rq.span.Child("score")
	atoms := make([]ScoredAtom, 0, len(items))
	for _, it := range items {
		atoms = append(atoms, rs.atom(factorgraph.VarID(it.Data)))
	}
	sp.End()
	return atoms
}

func (s *Server) handlePoint(w http.ResponseWriter, r *http.Request, rq *reqScope) {
	rel := r.URL.Query().Get("relation")
	x, errX := queryFloat(r, "x")
	y, errY := queryFloat(r, "y")
	budget, errB := s.localBudget(r)
	if rel == "" || errX != nil || errY != nil || errB != nil || budget < 0 {
		s.fail(w, rq, http.StatusBadRequest, "point query needs relation, x, y (and budget ≥ 0)")
		return
	}
	rs := s.beginReadTraced(rq)
	defer rs.release()
	tree, ok := lookupTree(rs.trees, rel)
	if !ok {
		s.fail(w, rq, http.StatusNotFound, "unknown variable relation %q", rel)
		return
	}
	if budget > 0 && !rs.stale {
		// Lazy path: answer from a bounded subgraph around each matched
		// atom. Degraded reads fall through to the snapshot marginals —
		// the system is mutating under the writer and cannot be sampled.
		sp := rq.span.Child("rtree_probe")
		items := tree.SearchAll(geom.Pt(x, y).Bounds())
		sp.Notef("hits=%d", len(items))
		sp.End()
		s.servePointLocal(w, r, rq, rs, items, rel, budget)
		return
	}
	resp := queryResponse{Relation: rel, Generation: rs.gen, Stale: rs.stale}
	resp.Atoms = probeAndScore(rq, rs, func() []rtree.Item {
		return tree.SearchAll(geom.Pt(x, y).Bounds())
	})
	writeJSON(w, resp)
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request, rq *reqScope) {
	rel := r.URL.Query().Get("relation")
	minx, e1 := queryFloat(r, "minx")
	miny, e2 := queryFloat(r, "miny")
	maxx, e3 := queryFloat(r, "maxx")
	maxy, e4 := queryFloat(r, "maxy")
	if rel == "" || e1 != nil || e2 != nil || e3 != nil || e4 != nil {
		s.fail(w, rq, http.StatusBadRequest, "range query needs relation, minx, miny, maxx, maxy")
		return
	}
	rs := s.beginReadTraced(rq)
	defer rs.release()
	tree, ok := lookupTree(rs.trees, rel)
	if !ok {
		s.fail(w, rq, http.StatusNotFound, "unknown variable relation %q", rel)
		return
	}
	window := geom.NewRect(geom.Pt(minx, miny), geom.Pt(maxx, maxy))
	resp := queryResponse{Relation: rel, Generation: rs.gen, Stale: rs.stale}
	resp.Atoms = probeAndScore(rq, rs, func() []rtree.Item {
		return tree.SearchAll(window)
	})
	// Window search order is tree order; sort for a stable API.
	sort.Slice(resp.Atoms, func(i, j int) bool { return resp.Atoms[i].Key < resp.Atoms[j].Key })
	writeJSON(w, resp)
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request, rq *reqScope) {
	rel := r.URL.Query().Get("relation")
	x, e1 := queryFloat(r, "x")
	y, e2 := queryFloat(r, "y")
	k, e3 := strconv.Atoi(r.URL.Query().Get("k"))
	if rel == "" || e1 != nil || e2 != nil || e3 != nil || k <= 0 {
		s.fail(w, rq, http.StatusBadRequest, "knn query needs relation, x, y, k>0")
		return
	}
	rs := s.beginReadTraced(rq)
	defer rs.release()
	tree, ok := lookupTree(rs.trees, rel)
	if !ok {
		s.fail(w, rq, http.StatusNotFound, "unknown variable relation %q", rel)
		return
	}
	resp := queryResponse{Relation: rel, Generation: rs.gen, Stale: rs.stale}
	resp.Atoms = probeAndScore(rq, rs, func() []rtree.Item {
		return tree.NearestK(geom.Pt(x, y), k)
	})
	writeJSON(w, resp)
}

// evidenceRequest is the upsert payload: rows as text cells, parsed against
// the relation's schema with the same rules as the CSV loader.
type evidenceRequest struct {
	Relation string     `json:"relation"`
	Rows     [][]string `json:"rows"`
}

// evidenceResponse reports what the upsert did.
type evidenceResponse struct {
	Generation  uint64 `json:"generation"`
	Rows        int    `json:"rows"`
	Pins        int    `json:"pins"`
	SkippedPins int    `json:"skipped_pins"`
	Structural  bool   `json:"structural"`
	Reason      string `json:"reason,omitempty"`
	Epochs      int    `json:"epochs"`
}

func (s *Server) handleEvidence(w http.ResponseWriter, r *http.Request, rq *reqScope) {
	if r.Method != http.MethodPost {
		s.fail(w, rq, http.StatusMethodNotAllowed, "evidence upserts are POST")
		return
	}
	sp := rq.span.Child("decode")
	var req evidenceRequest
	err := json.NewDecoder(r.Body).Decode(&req)
	sp.End()
	if err != nil {
		s.fail(w, rq, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	if req.Relation == "" || len(req.Rows) == 0 {
		s.fail(w, rq, http.StatusBadRequest, "upsert needs relation and rows")
		return
	}

	// Admission control: a bounded number of upserts may wait on the write
	// lock; beyond that the server sheds load instead of queueing.
	select {
	case s.upsertSlots <- struct{}{}:
		s.mInflight.Set(float64(s.inflight.Add(1)))
		defer func() {
			s.mInflight.Set(float64(s.inflight.Add(-1)))
			<-s.upsertSlots
		}()
	default:
		s.mShed.Inc()
		s.fail(w, rq, http.StatusTooManyRequests, "upsert queue full (%d in flight)", cap(s.upsertSlots))
		return
	}

	// queue_wait is the admission-to-lock gap: time spent behind other
	// upserts already holding or waiting on the write lock.
	sp = rq.span.Child("queue_wait")
	s.mu.Lock()
	sp.End()
	defer s.mu.Unlock()
	// From here reads are served degraded from the pre-upsert snapshot
	// instead of blocking on the lock. LIFO defers: the snapshot is cleared
	// before the lock is released.
	s.publishStale()
	defer s.degraded.Store(nil)

	sp = rq.span.Child("validate")
	if _, err := s.sys.DB().Table(req.Relation); err != nil {
		sp.End()
		s.fail(w, rq, http.StatusNotFound, "%v", err)
		return
	}
	rows, err := s.sys.ParseRows(req.Relation, req.Rows)
	sp.End()
	if err != nil {
		s.fail(w, rq, http.StatusBadRequest, "%v", err)
		return
	}

	// Once the batch is validated it is logged, then applied under a
	// context that survives client disconnects: an acked (or even
	// half-finished) upsert must never leave the WAL and the KB divergent.
	// Replay after a crash is at-least-once; first-pin-wins makes that
	// idempotent.
	applyCtx := context.WithoutCancel(r.Context())
	if s.wal != nil {
		wsp := rq.span.Child("wal_append")
		err := s.wal.AppendCtx(obs.ContextWithSpan(applyCtx, wsp),
			wal.Record{Relation: req.Relation, Rows: req.Rows})
		wsp.End()
		if err != nil {
			s.fail(w, rq, http.StatusInternalServerError, "wal append: %v", err)
			return
		}
	}
	// UpsertEvidence nests its own stages (delta_ground, pin_apply or
	// reground) under the request span it finds on the context.
	stats, err := s.sys.UpsertEvidence(applyCtx, req.Relation, rows)
	if err != nil {
		s.fail(w, rq, http.StatusInternalServerError, "upsert: %v", err)
		return
	}
	s.mUpserts.Inc()

	// Inference is the long tail of an upsert and tolerates interruption
	// (partial epochs still leave a consistent sampler), so it stays
	// client-cancellable, optionally bounded by the server's own deadline.
	inferCtx := r.Context()
	if s.opts.UpsertTimeout > 0 {
		var cancel context.CancelFunc
		inferCtx, cancel = context.WithTimeout(applyCtx, s.opts.UpsertTimeout)
		defer cancel()
	}
	epochs := 0
	if stats.Structural || stats.Pins > 0 {
		// The resample stage owns the context so the sampler's own stages
		// (the dirty-conclique sweep) nest under it rather than under the
		// request root.
		rsp := rq.span.Child("resample")
		rsp.Notef("structural=%v pins=%d", stats.Structural, stats.Pins)
		inferCtx = obs.ContextWithSpan(inferCtx, rsp)
		epochs = s.opts.Epochs
		if stats.Structural {
			// The grounding (and its VarIDs) changed wholesale: rebuild the
			// serving indexes and re-infer from scratch.
			s.mStructural.Inc()
			s.rebuildIndex()
			_, _, err = s.sys.InferContext(inferCtx, epochs)
		} else {
			_, _, err = s.sys.InferIncrementalContext(inferCtx, epochs)
		}
		rsp.End()
		if err != nil {
			s.fail(w, rq, http.StatusInternalServerError, "re-inference: %v", err)
			return
		}
		s.bumpGeneration()
		// Evidence staleness: how long the accepted batch took to become
		// visible to readers (accept timestamp → generation publish).
		s.mStaleness.Observe(time.Since(rq.start).Seconds())
	}
	writeJSON(w, evidenceResponse{
		Generation:  s.gen,
		Rows:        stats.Rows,
		Pins:        stats.Pins,
		SkippedPins: stats.SkippedPins,
		Structural:  stats.Structural,
		Reason:      stats.Reason,
		Epochs:      epochs,
	})
}

// healthResponse is the /healthz body. Degraded means an upsert or
// re-ground is in flight and reads are being served from the stale snapshot.
type healthResponse struct {
	Status     string `json:"status"`
	Engine     string `json:"engine"`
	Vars       int    `json:"vars"`
	Generation uint64 `json:"generation"`
	Degraded   bool   `json:"degraded,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	// Config is immutable, so the engine name needs no lock either way.
	engine := s.sys.Config().Engine.String()
	if sv := s.acquireRead(); sv != nil {
		writeJSON(w, healthResponse{
			Status:     "degraded",
			Engine:     engine,
			Vars:       sv.vars,
			Generation: sv.gen,
			Degraded:   true,
		})
		return
	}
	defer s.mu.RUnlock()
	writeJSON(w, healthResponse{
		Status:     "ok",
		Engine:     engine,
		Vars:       s.sys.Grounding().Stats.Vars,
		Generation: s.gen,
	})
}
