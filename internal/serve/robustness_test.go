package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/gibbs/testutil"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/wal"
)

// startSlowUpsert posts an upsert whose inference phase runs effectively
// forever (the server's epoch budget is huge), returns a cancel for it, and
// blocks until the server reports the writer in flight.
func startSlowUpsert(t *testing.T, base, relation string, rows [][]string) (cancel func(), done chan struct{}) {
	t.Helper()
	ctx, stop := context.WithCancel(context.Background())
	done = make(chan struct{})
	body, err := jsonMarshal(evidenceRequest{Relation: relation, Rows: rows})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/evidence", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	go func() {
		defer close(done)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var health healthResponse
		if code := getJSON(t, base+"/healthz", &health); code != http.StatusOK {
			t.Fatalf("healthz = %d", code)
		}
		if health.Degraded {
			return stop, done
		}
		if time.Now().After(deadline) {
			stop()
			t.Fatal("upsert never reached the degraded window")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// waitHealthy polls /healthz until the degraded window closes.
func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var health healthResponse
		if code := getJSON(t, base+"/healthz", &health); code == http.StatusOK && !health.Degraded {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("server still degraded after 10s")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestLoadShedAndDegradedReads pins the overload contract: while one upsert
// holds the write lock, further upserts beyond the admission cap are shed
// with 429, and reads return the previous generation marked stale instead of
// blocking behind the writer.
func TestLoadShedAndDegradedReads(t *testing.T) {
	check := testutil.GoroutineLeakCheck(t)
	sys, data := newGWDBSystem(t, 400)
	reg := obs.NewRegistry()
	// A huge per-upsert budget keeps the writer mid-inference while the
	// assertions below run; MaxQueuedUpserts 1 means the in-flight writer
	// is the whole admission budget.
	srv, err := New(sys, Options{Epochs: 50_000_000, MaxQueuedUpserts: 1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Warmup(context.Background(), 400); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	genBefore := srv.Generation()
	wells := unlabeledWells(data, 2)
	if len(wells) != 2 {
		t.Fatalf("only %d unlabeled wells", len(wells))
	}
	cancel, done := startSlowUpsert(t, ts.URL, "WellEvidence", [][]string{
		{fmt.Sprint(wells[0].ID), storage.Geom(wells[0].Loc).String(), "true"},
	})

	// A second upsert cannot queue: the admission cap sheds it immediately.
	if _, code := postUpsertQuiet(ts.URL, "WellEvidence", [][]string{
		{fmt.Sprint(wells[1].ID), storage.Geom(wells[1].Loc).String(), "true"},
	}); code != http.StatusTooManyRequests {
		cancel()
		t.Fatalf("second upsert status %d, want 429", code)
	}

	// Reads keep flowing from the stale snapshot: right generation, marked
	// stale, and never parked on the write lock.
	w := wells[0]
	url := fmt.Sprintf("%s/v1/score/point?relation=IsSafe&x=%g&y=%g", ts.URL, w.Loc.X, w.Loc.Y)
	lat := make([]time.Duration, 0, 50)
	for i := 0; i < 50; i++ {
		start := time.Now()
		var resp queryResponse
		if code := getJSON(t, url, &resp); code != http.StatusOK {
			cancel()
			t.Fatalf("read %d during upsert: status %d", i, code)
		}
		lat = append(lat, time.Since(start))
		if !resp.Stale {
			cancel()
			t.Fatalf("read %d during upsert not marked stale: %+v", i, resp)
		}
		if resp.Generation != genBefore {
			cancel()
			t.Fatalf("stale read generation %d, want pre-upsert %d", resp.Generation, genBefore)
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p50 := lat[len(lat)/2]
	t.Logf("degraded read p50 %v (50 reads while writer held the lock)", p50)
	if p50 > 250*time.Millisecond {
		t.Errorf("degraded read p50 %v — stale reads are blocking on the writer", p50)
	}

	cancel()
	<-done
	waitHealthy(t, ts.URL)

	// The cancelled writer still applied its evidence (partial inference is
	// fine); live reads are no longer stale.
	var resp queryResponse
	if code := getJSON(t, url, &resp); code != http.StatusOK {
		t.Fatalf("post-drain read: %d", code)
	}
	if resp.Stale || resp.Generation != genBefore+1 {
		t.Errorf("post-drain read: stale=%v gen=%d, want live gen %d", resp.Stale, resp.Generation, genBefore+1)
	}

	snap := reg.Snapshot()
	if snap["sya_serve_shed_total"] < 1 {
		t.Errorf("sya_serve_shed_total = %v, want ≥ 1", snap["sya_serve_shed_total"])
	}
	if snap["sya_serve_degraded_reads_total"] < 50 {
		t.Errorf("sya_serve_degraded_reads_total = %v, want ≥ 50", snap["sya_serve_degraded_reads_total"])
	}
	if snap["sya_serve_inflight"] != 0 {
		t.Errorf("sya_serve_inflight = %v after drain, want 0", snap["sya_serve_inflight"])
	}

	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	check()
}

// TestDegradedReadsDuringStructuralReground is the harder half of the
// degradation contract: a structural upsert (new atom key → full re-ground +
// re-infer under the write lock) must not block reads — they serve the
// previous generation's graph, trees and marginals, all of which the
// re-ground replaces rather than mutates.
func TestDegradedReadsDuringStructuralReground(t *testing.T) {
	check := testutil.GoroutineLeakCheck(t)
	sys, data := newGWDBSystem(t, 400)
	reg := obs.NewRegistry()
	srv, err := New(sys, Options{Epochs: 50_000_000, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Warmup(context.Background(), 400); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	genBefore := srv.Generation()
	// A well ID the KB has never seen: the delta grounder cannot patch it
	// and falls back to a full re-ground.
	cancel, done := startSlowUpsert(t, ts.URL, "WellEvidence", [][]string{
		{"9999", storage.Geom(data.Wells[0].Loc).String(), "true"},
	})

	old := unlabeledWells(data, 1)[0]
	url := fmt.Sprintf("%s/v1/score/point?relation=IsSafe&x=%g&y=%g", ts.URL, old.Loc.X, old.Loc.Y)
	for i := 0; i < 20; i++ {
		var resp queryResponse
		if code := getJSON(t, url, &resp); code != http.StatusOK {
			cancel()
			t.Fatalf("read %d during re-ground: status %d", i, code)
		}
		if !resp.Stale || resp.Generation != genBefore {
			cancel()
			t.Fatalf("read %d during re-ground: stale=%v gen=%d, want stale gen %d",
				i, resp.Stale, resp.Generation, genBefore)
		}
		if len(resp.Atoms) != 1 {
			cancel()
			t.Fatalf("read %d during re-ground: %d atoms", i, len(resp.Atoms))
		}
	}

	cancel()
	<-done
	waitHealthy(t, ts.URL)

	if v := reg.Snapshot()["sya_serve_structural_regrounds_total"]; v != 1 {
		t.Errorf("structural regrounds = %v, want 1", v)
	}
	// The new atom is live and pinned after the re-ground + index rebuild.
	var resp queryResponse
	nurl := fmt.Sprintf("%s/v1/score/point?relation=IsSafe&x=%g&y=%g", ts.URL, data.Wells[0].Loc.X, data.Wells[0].Loc.Y)
	if code := getJSON(t, nurl, &resp); code != http.StatusOK {
		t.Fatalf("post-reground read: %d", code)
	}
	found := false
	for _, a := range resp.Atoms {
		if strings.HasPrefix(a.Key, "issafe|9999|") && a.Score == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("upserted well 9999 not served pinned after structural re-ground: %+v", resp.Atoms)
	}

	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	check()
}

// walRecords counts complete frames in the log right now.
func walRecords(t *testing.T, path string) int {
	t.Helper()
	offs, err := wal.FrameOffsets(path)
	if err != nil {
		t.Fatal(err)
	}
	return len(offs) - 1
}

// TestUpsertErrorPathsLeaveStateConsistent drives every handleEvidence
// rejection path and asserts none of them moves the generation, poisons the
// cache, or lands a record in the WAL — rejected batches must be invisible.
func TestUpsertErrorPathsLeaveStateConsistent(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "ev.wal")
	sys, data := newGWDBSystem(t, 300)
	srv, ts := startServer(t, sys, Options{Epochs: 200, WALPath: walPath})

	wells := unlabeledWells(data, 2)
	good := [][]string{{fmt.Sprint(wells[0].ID), storage.Geom(wells[0].Loc).String(), "true"}}
	if up, code := postUpsert(t, ts.URL, "WellEvidence", good); code != http.StatusOK || up.Pins != 1 {
		t.Fatalf("baseline upsert: code %d, %+v", code, up)
	}
	gen := srv.Generation()
	if n := walRecords(t, walPath); n != 1 {
		t.Fatalf("wal records after baseline = %d, want 1", n)
	}
	w := wells[0]
	url := fmt.Sprintf("%s/v1/score/point?relation=IsSafe&x=%g&y=%g", ts.URL, w.Loc.X, w.Loc.Y)

	rejections := []struct {
		name     string
		relation string
		rows     [][]string
		code     int
	}{
		{"short row", "WellEvidence", [][]string{{"1", "true"}}, http.StatusBadRequest},
		{"bad cell", "WellEvidence", [][]string{{"1", "not a point", "true"}}, http.StatusBadRequest},
		{"bad bool", "WellEvidence", [][]string{{"1", storage.Geom(w.Loc).String(), "maybe"}}, http.StatusBadRequest},
		{"unknown relation", "NoSuchRelation", [][]string{{"1"}}, http.StatusNotFound},
		{"empty rows", "WellEvidence", nil, http.StatusBadRequest},
		// A batch with one bad row among good ones must be rejected whole:
		// no partial application.
		{"mixed batch", "WellEvidence", [][]string{
			{fmt.Sprint(wells[1].ID), storage.Geom(wells[1].Loc).String(), "true"},
			{"1", "broken"},
		}, http.StatusBadRequest},
	}
	for _, rej := range rejections {
		if _, code := postUpsertQuiet(ts.URL, rej.relation, rej.rows); code != rej.code {
			t.Errorf("%s: status %d, want %d", rej.name, code, rej.code)
		}
		if g := srv.Generation(); g != gen {
			t.Errorf("%s: generation moved %d → %d", rej.name, gen, g)
		}
		if n := walRecords(t, walPath); n != 1 {
			t.Errorf("%s: wal records = %d, want 1 — rejected batch was logged", rej.name, n)
		}
		var resp queryResponse
		if code := getJSON(t, url, &resp); code != http.StatusOK || len(resp.Atoms) != 1 || resp.Atoms[0].Score != 1 {
			t.Errorf("%s: read after rejection broken: code %d, %+v", rej.name, code, resp)
		}
	}

	// The mixed batch's good row was NOT applied: upserting it now still
	// pins a fresh variable.
	if up, code := postUpsert(t, ts.URL, "WellEvidence", [][]string{
		{fmt.Sprint(wells[1].ID), storage.Geom(wells[1].Loc).String(), "true"},
	}); code != http.StatusOK || up.Pins != 1 {
		t.Fatalf("upsert after rejections: code %d, %+v", code, up)
	}

	// Duplicate pin: accepted (and logged — replay is idempotent), but
	// first-pin-wins means no new pins and no resample.
	genDup := srv.Generation()
	up, code := postUpsert(t, ts.URL, "WellEvidence", good)
	if code != http.StatusOK || up.Pins != 0 || up.SkippedPins < 1 {
		t.Fatalf("duplicate upsert: code %d, %+v", code, up)
	}
	if g := srv.Generation(); g != genDup {
		t.Errorf("duplicate pin moved the generation %d → %d", genDup, g)
	}
	if n := walRecords(t, walPath); n != 3 {
		t.Errorf("wal records after duplicate = %d, want 3", n)
	}
}

// TestCancelledUpsertStaysDurable kills the client mid-upsert (after the WAL
// append, during inference) and proves the contract both ways: the live
// server has the evidence applied with the generation bumped, and a reboot
// from the same WAL recovers it.
func TestCancelledUpsertStaysDurable(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "ev.wal")
	sys, data := newGWDBSystem(t, 400)
	srv, err := New(sys, Options{Epochs: 50_000_000, WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Warmup(context.Background(), 400); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	genBefore := srv.Generation()

	w := unlabeledWells(data, 1)[0]
	row := []string{fmt.Sprint(w.ID), storage.Geom(w.Loc).String(), "true"}
	cancel, done := startSlowUpsert(t, ts.URL, "WellEvidence", [][]string{row})
	cancel()
	<-done
	waitHealthy(t, ts.URL)

	// Live side: the abandoned upsert was applied atomically — pinned
	// score, bumped generation, record in the log.
	var resp queryResponse
	url := fmt.Sprintf("%s/v1/score/point?relation=IsSafe&x=%g&y=%g", ts.URL, w.Loc.X, w.Loc.Y)
	if code := getJSON(t, url, &resp); code != http.StatusOK {
		t.Fatalf("read after cancel: %d", code)
	}
	if len(resp.Atoms) != 1 || resp.Atoms[0].Score != 1 {
		t.Fatalf("cancelled upsert not applied: %+v", resp.Atoms)
	}
	if resp.Generation != genBefore+1 {
		t.Errorf("generation %d, want %d", resp.Generation, genBefore+1)
	}
	if n := walRecords(t, walPath); n != 1 {
		t.Fatalf("wal records = %d, want 1", n)
	}
	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash side: a reboot replays the log and serves the pin again.
	sys2, _ := newGWDBSystem(t, 400)
	rec, rts := startServer(t, sys2, Options{WALPath: walPath})
	if got := rec.ReplayStats().LogRecords; got != 1 {
		t.Fatalf("replayed %d records, want 1", got)
	}
	var rresp queryResponse
	rurl := fmt.Sprintf("%s/v1/score/point?relation=IsSafe&x=%g&y=%g", rts.URL, w.Loc.X, w.Loc.Y)
	if code := getJSON(t, rurl, &rresp); code != http.StatusOK {
		t.Fatalf("read after reboot: %d", code)
	}
	if len(rresp.Atoms) != 1 || rresp.Atoms[0].Score != 1 {
		t.Errorf("reboot lost the cancelled-but-acked upsert: %+v", rresp.Atoms)
	}
}
