package serve

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/factorgraph"
	"repro/internal/geom"
	"repro/internal/gibbs/testutil"
	"repro/internal/storage"
)

// equivTol bounds the per-atom TV distance between the served (delta-ground
// + incremental resample) marginals and a batch re-ground + full re-infer
// over the same data. Both sides are independent Monte-Carlo estimates, so
// the tolerance is twice the sampler harness's single-sided tvTol.
const equivTol = 0.08

// equivWorkload is one datagen scenario for the serving-equivalence test.
type equivWorkload struct {
	name string
	// build loads program + rows into a fresh system (called once for the
	// serving side and once for the batch reference).
	build func(t *testing.T, seed int64) *core.System
	// upserts are the evidence rows arriving live, as API text cells.
	upsertRel string
	upserts   [][]string
	queryRel  string
}

func equivWorkloads(t *testing.T) []equivWorkload {
	// GWDB: pick unlabeled wells to upsert with their generated truth label.
	wells := datagen.Wells(datagen.WellsConfig{N: 48, Seed: 5, Extent: 170})
	var gwdbUpserts [][]string
	for _, w := range wells.Wells {
		if w.IsEvidence || len(gwdbUpserts) == 2 {
			continue
		}
		gwdbUpserts = append(gwdbUpserts, []string{
			fmt.Sprint(w.ID), storage.Geom(w.Loc).String(), fmt.Sprint(w.Safe),
		})
	}
	if len(gwdbUpserts) != 2 {
		t.Fatal("GWDB workload has too few unlabeled wells")
	}

	// NYCCAS: same, on the pollution raster.
	raster := datagen.Raster(datagen.RasterConfig{Side: 6, Seed: 9, Extent: 6 * 30.0 / 22.0})
	var nycUpserts [][]string
	for _, c := range raster.Cells {
		if c.IsEvidence || len(nycUpserts) == 2 {
			continue
		}
		nycUpserts = append(nycUpserts, []string{
			fmt.Sprint(c.ID), storage.Geom(c.Loc).String(), fmt.Sprint(c.Polluted),
		})
	}
	if len(nycUpserts) != 2 {
		t.Fatal("NYCCAS workload has too few unlabeled cells")
	}
	nycCell := raster.Config.Extent / float64(raster.Config.Side)

	bong := datagen.EbolaCounties()[2]
	return []equivWorkload{
		{
			name: "ebola",
			build: func(t *testing.T, seed int64) *core.System {
				return newEbolaSystem(t, core.Config{Engine: core.EngineSya, Seed: seed, Epochs: 12000})
			},
			upsertRel: "CountyEvidence",
			upserts:   [][]string{{"3", storage.Geom(bong.Loc).String(), "true"}},
			queryRel:  "HasEbola",
		},
		{
			name: "gwdb",
			build: func(t *testing.T, seed int64) *core.System {
				t.Helper()
				s := core.NewSystem(core.Config{
					Engine:           core.EngineSya,
					Metric:           geom.Euclidean,
					Bandwidth:        50,
					SupportRadius:    60,
					MaxNeighbors:     8,
					PyramidLevels:    5,
					Epochs:           8000,
					Seed:             seed,
					SkipFactorTables: true,
				})
				if err := s.LoadProgram(datagen.GWDBProgram); err != nil {
					t.Fatal(err)
				}
				rows, evidence := wells.Rows()
				if err := s.LoadRows("Well", rows); err != nil {
					t.Fatal(err)
				}
				if err := s.LoadRows("WellEvidence", evidence); err != nil {
					t.Fatal(err)
				}
				return s
			},
			upsertRel: "WellEvidence",
			upserts:   gwdbUpserts,
			queryRel:  "IsSafe",
		},
		{
			name: "nyccas",
			build: func(t *testing.T, seed int64) *core.System {
				t.Helper()
				s := core.NewSystem(core.Config{
					Engine:           core.EngineSya,
					Metric:           geom.Euclidean,
					Bandwidth:        2 * nycCell,
					SupportRadius:    4 * nycCell,
					PyramidLevels:    5,
					Epochs:           8000,
					Seed:             seed,
					SkipFactorTables: true,
				})
				if err := s.LoadProgram(datagen.NYCCASProgram); err != nil {
					t.Fatal(err)
				}
				cells, evidence := raster.Rows()
				if err := s.LoadRows("Cell", cells); err != nil {
					t.Fatal(err)
				}
				if err := s.LoadRows("CellEvidence", evidence); err != nil {
					t.Fatal(err)
				}
				return s
			},
			upsertRel: "CellEvidence",
			upserts:   nycUpserts,
			queryRel:  "Polluted",
		},
	}
}

// batchMarginals is the reference side of every equivalence test: an
// independent system built from the same data with the given upserts present
// from the start, fully ground + inferred, keyed by atom key.
func batchMarginals(t *testing.T, w equivWorkload, seed int64, upserts [][]string) map[string][]float64 {
	t.Helper()
	batch := w.build(t, seed)
	t.Cleanup(batch.Close)
	if len(upserts) > 0 {
		rows, err := batch.ParseRows(w.upsertRel, upserts)
		if err != nil {
			t.Fatal(err)
		}
		if err := batch.LoadRows(w.upsertRel, rows); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := batch.Ground(); err != nil {
		t.Fatal(err)
	}
	scores, err := batch.Infer()
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string][]float64)
	scores.Each(w.queryRel, func(key string, _ factorgraph.VarID, marginal []float64) bool {
		want[key] = marginal
		return true
	})
	return want
}

// servedMarginals reads every atom of a relation through the HTTP API with
// one whole-plane range query, keyed by atom key.
func servedMarginals(t *testing.T, base, relation string) map[string][]float64 {
	t.Helper()
	var resp queryResponse
	url := fmt.Sprintf("%s/v1/score/range?relation=%s&minx=-1e9&miny=-1e9&maxx=1e9&maxy=1e9", base, relation)
	if code := getJSON(t, url, &resp); code != 200 {
		t.Fatalf("range status %d", code)
	}
	out := make(map[string][]float64, len(resp.Atoms))
	for _, a := range resp.Atoms {
		out[a.Key] = a.Marginal
	}
	return out
}

// TestServingMatchesBatch is the serving-equivalence guarantee: upserting
// evidence into a live server (delta grounding + dirty-conclique resampling,
// queried through the HTTP handlers) lands within TV tolerance of tearing
// the world down and re-running the whole batch pipeline with the same
// evidence present from the start.
func TestServingMatchesBatch(t *testing.T) {
	for _, w := range equivWorkloads(t) {
		w := w
		t.Run(w.name, func(t *testing.T) {
			// Serving side: warm up without the new evidence, then upsert
			// it through the API.
			sys := w.build(t, 7)
			_, ts := startServer(t, sys, Options{})
			for _, row := range w.upserts {
				up, code := postUpsert(t, ts.URL, w.upsertRel, [][]string{row})
				if code != 200 {
					t.Fatalf("upsert status %d", code)
				}
				if up.Structural {
					t.Fatalf("upsert fell back to structural: %+v", up)
				}
			}
			served := servedMarginals(t, ts.URL, w.queryRel)

			// Batch side: same data with the upserts present from the
			// start, fully re-ground and re-inferred on an independent
			// chain.
			want := batchMarginals(t, w, 3, w.upserts)

			worst, key, err := testutil.KeyedMaxTV(served, want)
			if err != nil {
				t.Fatal(err)
			}
			if worst > equivTol {
				t.Errorf("served vs batch marginals: worst TV %.3f at %s (tol %.2f): served %v want %v",
					worst, key, equivTol, served[key], want[key])
			}
		})
	}
}
