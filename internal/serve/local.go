package serve

import (
	"container/list"
	"context"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/core"
	"repro/internal/factorgraph"
	"repro/internal/index/rtree"
	"repro/internal/obs"
)

// This file is the serving face of query-driven lazy grounding: point
// queries with an effective variable budget (the ?budget= knob, defaulting
// to Options.LocalBudget) are answered by core.QueryLocal over a bounded
// subgraph around the matched atom instead of the full-graph marginal read.
// Answers are memoized in a small LRU keyed by (atom, generation, budget) —
// every upsert bumps the generation, invalidating all cached subgraphs at
// once, the same stamp discipline the score cache uses.

// localKey identifies one cached lazy answer. The generation stamp makes
// invalidation free: entries from an older generation simply never match and
// age out of the LRU.
type localKey struct {
	vid    factorgraph.VarID
	gen    uint64
	budget int
}

// localCache is a mutex-guarded LRU of lazy query answers. Results are
// immutable once stored, so a hit hands out the shared pointer.
type localCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[localKey]*list.Element

	hits    *obs.Counter
	misses  *obs.Counter
	mVars   *obs.Gauge
	mFacts  *obs.Gauge
	mGround *obs.Histogram
}

type localEntry struct {
	key localKey
	res *core.LocalResult
}

// localGroundBuckets cover frontier expansion + subgraph build, which should
// sit orders of magnitude below a full ground.
var localGroundBuckets = []float64{1e-5, 5e-5, 1e-4, 5e-4, .001, .005, .01, .05, .1, .5}

func newLocalCache(capacity int, m *obs.Registry) *localCache {
	if capacity <= 0 {
		capacity = 128
	}
	return &localCache{
		cap:     capacity,
		ll:      list.New(),
		items:   make(map[localKey]*list.Element, capacity),
		hits:    m.Counter("sya_local_cache_hits_total"),
		misses:  m.Counter("sya_local_cache_misses_total"),
		mVars:   m.Gauge("sya_local_subgraph_vars"),
		mFacts:  m.Gauge("sya_local_subgraph_factors"),
		mGround: m.Histogram("sya_local_ground_seconds", localGroundBuckets),
	}
}

func (c *localCache) get(k localKey) (*core.LocalResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*localEntry).res, true
}

func (c *localCache) put(k localKey, res *core.LocalResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*localEntry).res = res
		return
	}
	c.items[k] = c.ll.PushFront(&localEntry{key: k, res: res})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*localEntry).key)
	}
}

// len reports the live entry count (tests).
func (c *localCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// localBudget resolves the effective point-query budget: the ?budget= knob
// when present (0 forces the full-graph path), else the server default.
func (s *Server) localBudget(r *http.Request) (int, error) {
	raw := r.URL.Query().Get("budget")
	if raw == "" {
		return s.opts.LocalBudget, nil
	}
	return strconv.Atoi(raw)
}

// localScore answers one matched atom through the lazy path: LRU first, then
// a fresh QueryLocal (which nests local_ground / local_sample stages under
// the request span on ctx). Caller holds the read lock.
func (s *Server) localScore(ctx context.Context, vid factorgraph.VarID, gen uint64, budget int) (*core.LocalResult, error) {
	k := localKey{vid: vid, gen: gen, budget: budget}
	if res, ok := s.locals.get(k); ok {
		return res, nil
	}
	res, err := s.sys.QueryLocal(ctx, s.keys[vid], core.LocalBudget{
		MaxVars: budget,
		Epochs:  s.opts.LocalEpochs,
	})
	if err != nil {
		return nil, err
	}
	s.locals.mVars.Set(float64(res.Vars))
	s.locals.mFacts.Set(float64(res.Factors + res.SpatialPairs))
	s.locals.mGround.Observe(res.GroundTime.Seconds())
	s.locals.put(k, res)
	return res, nil
}

// servePointLocal is the lazy tail of handlePoint: score each probed atom
// over its bounded subgraph. Runs only on the live path — a degraded read
// cannot touch the (mutating) system, so stale point queries fall back to
// snapshot marginals.
func (s *Server) servePointLocal(w http.ResponseWriter, r *http.Request, rq *reqScope, rs readState, items []rtree.Item, rel string, budget int) {
	resp := queryResponse{Relation: rel, Generation: rs.gen, Budget: budget}
	resp.Atoms = make([]ScoredAtom, 0, len(items))
	for _, it := range items {
		vid := factorgraph.VarID(it.Data)
		res, err := s.localScore(r.Context(), vid, rs.gen, budget)
		if err != nil {
			s.fail(w, rq, http.StatusInternalServerError, "local query: %v", err)
			return
		}
		v := s.sys.Grounding().Graph.Var(vid)
		resp.Atoms = append(resp.Atoms, ScoredAtom{
			Key:        s.keys[vid],
			Location:   [2]float64{v.Loc.X, v.Loc.Y},
			Score:      res.Score,
			Marginal:   res.Marginal,
			LocalVars:  res.Vars,
			ErrorBound: res.ErrorBound,
			Truncated:  res.Truncated,
		})
	}
	writeJSON(w, resp)
}
