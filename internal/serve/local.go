package serve

import (
	"container/list"
	"context"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/core"
	"repro/internal/factorgraph"
	"repro/internal/index/rtree"
	"repro/internal/obs"
)

// This file is the serving face of query-driven lazy grounding: point
// queries with an effective variable budget (the ?budget= knob, defaulting
// to Options.LocalBudget) are answered by core.QueryLocal over a bounded
// subgraph around the matched atom instead of the full-graph marginal read.
// Answers are memoized in a small LRU keyed by (atom, generation, budget) —
// every upsert bumps the generation, invalidating all cached subgraphs at
// once, the same stamp discipline the score cache uses.

// localKey identifies one cached lazy answer. The generation stamp makes
// invalidation free: entries from an older generation simply never match and
// age out of the LRU.
type localKey struct {
	vid    factorgraph.VarID
	gen    uint64
	budget int
}

// localCache is a mutex-guarded LRU of lazy query answers. Results are
// immutable once stored, so a hit hands out the shared pointer.
//
// Beyond the primary (root-atom) key, each cached subgraph registers a
// reverse index over its *interior* atoms: QueryLocal samples the whole
// bounded neighbourhood and reports every interior marginal, so a later
// query for an atom inside an already-cached subgraph (same generation and
// budget) is answered by slicing that marginal out of the cached result
// instead of regrounding an overlapping subgraph. The derived answer is the
// base subgraph's estimate of the atom — same error bound, zero grounding
// cost — and is memoized under its own primary key.
type localCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[localKey]*list.Element
	// rev maps interior-atom keys to the cached entry whose subgraph
	// sampled them (latest registration wins). Entries die with their base.
	rev map[localKey]*list.Element

	hits     *obs.Counter
	interior *obs.Counter
	misses   *obs.Counter
	mVars    *obs.Gauge
	mFacts   *obs.Gauge
	mGround  *obs.Histogram
}

type localEntry struct {
	key localKey
	res *core.LocalResult
	// revKeys are the reverse-index registrations this entry holds, removed
	// on eviction.
	revKeys []localKey
}

// localGroundBuckets cover frontier expansion + subgraph build, which should
// sit orders of magnitude below a full ground.
var localGroundBuckets = []float64{1e-5, 5e-5, 1e-4, 5e-4, .001, .005, .01, .05, .1, .5}

func newLocalCache(capacity int, m *obs.Registry) *localCache {
	if capacity <= 0 {
		capacity = 128
	}
	return &localCache{
		cap:      capacity,
		ll:       list.New(),
		items:    make(map[localKey]*list.Element, capacity),
		rev:      make(map[localKey]*list.Element, capacity),
		hits:     m.Counter("sya_local_cache_hits_total"),
		interior: m.Counter("sya_local_cache_interior_hits_total"),
		misses:   m.Counter("sya_local_cache_misses_total"),
		mVars:    m.Gauge("sya_local_subgraph_vars"),
		mFacts:   m.Gauge("sya_local_subgraph_factors"),
		mGround:  m.Histogram("sya_local_ground_seconds", localGroundBuckets),
	}
}

// get looks up k: primary entry first, then the interior reverse index.
// key is k's atom key, used to slice the marginal out of a base entry.
func (c *localCache) get(k localKey, key string) (*core.LocalResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		c.hits.Inc()
		return el.Value.(*localEntry).res, true
	}
	if el, ok := c.rev[k]; ok {
		base := el.Value.(*localEntry).res
		if m, ok := base.Interior[key]; ok {
			c.ll.MoveToFront(el)
			c.interior.Inc()
			derived := *base // shallow copy: shares the immutable marginals
			derived.Key = key
			derived.Marginal = m
			derived.Score = localScoreOf(m)
			derived.GroundTime, derived.SampleTime = 0, 0
			// Memoize under the primary key; the base entry's reverse index
			// stays authoritative, so no rev registrations here.
			c.putLocked(k, &derived, nil)
			return &derived, true
		}
	}
	c.misses.Inc()
	return nil, false
}

func (c *localCache) put(k localKey, res *core.LocalResult, revKeys []localKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(k, res, revKeys)
}

func (c *localCache) putLocked(k localKey, res *core.LocalResult, revKeys []localKey) {
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*localEntry).res = res
		return
	}
	el := c.ll.PushFront(&localEntry{key: k, res: res, revKeys: revKeys})
	c.items[k] = el
	for _, rk := range revKeys {
		c.rev[rk] = el
	}
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		ent := back.Value.(*localEntry)
		delete(c.items, ent.key)
		for _, rk := range ent.revKeys {
			if c.rev[rk] == back {
				delete(c.rev, rk)
			}
		}
	}
}

// localScoreOf reduces a marginal to the factual score — P(true) for binary
// atoms, the modal probability otherwise (core's scoreOf, replicated for
// derived cache answers).
func localScoreOf(m []float64) float64 {
	if len(m) == 2 {
		return m[1]
	}
	var best float64
	for _, p := range m {
		if p > best {
			best = p
		}
	}
	return best
}

// len reports the live entry count (tests).
func (c *localCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// localBudget resolves the effective point-query budget: the ?budget= knob
// when present (0 forces the full-graph path), else the server default.
func (s *Server) localBudget(r *http.Request) (int, error) {
	raw := r.URL.Query().Get("budget")
	if raw == "" {
		return s.opts.LocalBudget, nil
	}
	return strconv.Atoi(raw)
}

// localScore answers one matched atom through the lazy path: LRU first, then
// a fresh QueryLocal (which nests local_ground / local_sample stages under
// the request span on ctx). Caller holds the read lock.
func (s *Server) localScore(ctx context.Context, vid factorgraph.VarID, gen uint64, budget int) (*core.LocalResult, error) {
	k := localKey{vid: vid, gen: gen, budget: budget}
	if res, ok := s.locals.get(k, s.keys[vid]); ok {
		return res, nil
	}
	res, err := s.sys.QueryLocal(ctx, s.keys[vid], core.LocalBudget{
		MaxVars: budget,
		Epochs:  s.opts.LocalEpochs,
	})
	if err != nil {
		return nil, err
	}
	s.locals.mVars.Set(float64(res.Vars))
	s.locals.mFacts.Set(float64(res.Factors + res.SpatialPairs))
	s.locals.mGround.Observe(res.GroundTime.Seconds())
	// Register the subgraph's other interior atoms in the reverse index, so
	// overlapping point queries reuse this result instead of regrounding.
	revKeys := make([]localKey, 0, len(res.Interior))
	varID := s.sys.Grounding().VarID
	for key := range res.Interior {
		if vid2, ok := varID[key]; ok && vid2 != vid {
			revKeys = append(revKeys, localKey{vid: vid2, gen: gen, budget: budget})
		}
	}
	s.locals.put(k, res, revKeys)
	return res, nil
}

// servePointLocal is the lazy tail of handlePoint: score each probed atom
// over its bounded subgraph. Runs only on the live path — a degraded read
// cannot touch the (mutating) system, so stale point queries fall back to
// snapshot marginals.
func (s *Server) servePointLocal(w http.ResponseWriter, r *http.Request, rq *reqScope, rs readState, items []rtree.Item, rel string, budget int) {
	resp := queryResponse{Relation: rel, Generation: rs.gen, Budget: budget}
	resp.Atoms = make([]ScoredAtom, 0, len(items))
	for _, it := range items {
		vid := factorgraph.VarID(it.Data)
		res, err := s.localScore(r.Context(), vid, rs.gen, budget)
		if err != nil {
			s.fail(w, rq, http.StatusInternalServerError, "local query: %v", err)
			return
		}
		v := s.sys.Grounding().Graph.Var(vid)
		resp.Atoms = append(resp.Atoms, ScoredAtom{
			Key:        s.keys[vid],
			Location:   [2]float64{v.Loc.X, v.Loc.Y},
			Score:      res.Score,
			Marginal:   res.Marginal,
			LocalVars:  res.Vars,
			ErrorBound: res.ErrorBound,
			Truncated:  res.Truncated,
		})
	}
	writeJSON(w, resp)
}
