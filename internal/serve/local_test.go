package serve

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/factorgraph"
	"repro/internal/gibbs/testutil"
	"repro/internal/obs"
)

// TestLocalPointQuery checks the lazy path end to end: a budgeted point
// query answers from a bounded subgraph, reports its size, and lands within
// TV tolerance of the full-graph marginal for the same atom.
func TestLocalPointQuery(t *testing.T) {
	sys := newEbolaSystem(t, core.Config{Engine: core.EngineSya, Seed: 7})
	_, ts := startServer(t, sys, Options{})

	// Bong is unlabeled in the Fig. 1 scenario, so its HasEbola atom is
	// genuinely uncertain.
	const atomQ = "?relation=HasEbola&x=-9.45&y=7.05"
	var full queryResponse
	if code := getJSON(t, ts.URL+"/v1/score/point"+atomQ, &full); code != 200 {
		t.Fatalf("full point query status %d", code)
	}
	if len(full.Atoms) != 1 || full.Budget != 0 {
		t.Fatalf("full path: %d atoms, budget %d", len(full.Atoms), full.Budget)
	}

	var local queryResponse
	if code := getJSON(t, ts.URL+"/v1/score/point"+atomQ+"&budget=16", &local); code != 200 {
		t.Fatalf("budgeted point query status %d", code)
	}
	if local.Budget != 16 || len(local.Atoms) != 1 {
		t.Fatalf("lazy path: budget %d, %d atoms", local.Budget, len(local.Atoms))
	}
	a := local.Atoms[0]
	if a.LocalVars <= 0 || a.LocalVars > 16 {
		t.Fatalf("subgraph vars %d out of (0, 16]", a.LocalVars)
	}
	if a.Key != full.Atoms[0].Key {
		t.Fatalf("lazy path answered %q, full path %q", a.Key, full.Atoms[0].Key)
	}
	// 16 vars covers the whole 4-county graph: exact extraction, only
	// Monte-Carlo noise between the two estimates.
	if a.Truncated || a.ErrorBound != 0 {
		t.Fatalf("full-coverage budget must be exact: truncated=%v bound=%.4f", a.Truncated, a.ErrorBound)
	}
	if tv := testutil.TV(a.Marginal, full.Atoms[0].Marginal); tv > 0.08 {
		t.Fatalf("lazy vs full marginal TV %.4f > 0.08", tv)
	}

	// An explicit ?budget=0 forces the full path even with a server default.
	var forced queryResponse
	if code := getJSON(t, ts.URL+"/v1/score/point"+atomQ+"&budget=0", &forced); code != 200 {
		t.Fatalf("budget=0 status %d", code)
	}
	if forced.Budget != 0 || forced.Atoms[0].LocalVars != 0 {
		t.Fatalf("budget=0 must take the full path, got budget %d", forced.Budget)
	}
	if code := getJSON(t, ts.URL+"/v1/score/point"+atomQ+"&budget=-3", nil); code != 400 {
		t.Fatalf("negative budget status %d, want 400", code)
	}
}

// TestLocalDefaultBudget checks Options.LocalBudget turns the lazy path on
// without the query knob.
func TestLocalDefaultBudget(t *testing.T) {
	sys := newEbolaSystem(t, core.Config{Engine: core.EngineSya, Seed: 7})
	_, ts := startServer(t, sys, Options{LocalBudget: 8})
	var resp queryResponse
	if code := getJSON(t, ts.URL+"/v1/score/point?relation=HasEbola&x=-9.45&y=7.05", &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if resp.Budget != 8 || resp.Atoms[0].LocalVars == 0 {
		t.Fatalf("server default budget not applied: budget %d vars %d", resp.Budget, resp.Atoms[0].LocalVars)
	}
}

// TestLocalCacheGeneration checks the LRU's generation stamping: repeat
// queries hit the cache, an upsert bumps the generation and the next query
// recomputes.
func TestLocalCacheGeneration(t *testing.T) {
	sys := newEbolaSystem(t, core.Config{Engine: core.EngineSya, Seed: 7})
	reg := obs.NewRegistry()
	srv, ts := startServer(t, sys, Options{Metrics: reg, LocalBudget: 16})

	url := ts.URL + "/v1/score/point?relation=HasEbola&x=-9.45&y=7.05"
	for i := 0; i < 3; i++ {
		if code := getJSON(t, url, nil); code != 200 {
			t.Fatalf("query %d status %d", i, code)
		}
	}
	if hits := srv.locals.hits.Value(); hits != 2 {
		t.Fatalf("cache hits after 3 identical queries = %d, want 2", hits)
	}
	if n := srv.locals.len(); n != 1 {
		t.Fatalf("cache entries = %d, want 1", n)
	}

	// Pin new evidence: generation bumps, the cached subgraph is stale.
	body := `{"relation": "CountyEvidence", "rows": [["2", "POINT (-10.45 6.55)", "true"]]}`
	resp, err := http.Post(ts.URL+"/v1/evidence", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("upsert status %d", resp.StatusCode)
	}
	if code := getJSON(t, url, nil); code != 200 {
		t.Fatalf("post-upsert query status %d", code)
	}
	if hits := srv.locals.hits.Value(); hits != 2 {
		t.Fatalf("stale entry served after upsert (hits = %d)", hits)
	}
	if n := srv.locals.len(); n != 2 {
		t.Fatalf("cache entries after generation bump = %d, want 2", n)
	}
}

// TestLocalCacheLRU checks the capacity bound evicts oldest entries.
func TestLocalCacheLRU(t *testing.T) {
	c := newLocalCache(2, nil)
	for i := 0; i < 4; i++ {
		c.put(localKey{vid: factorgraph.VarID(i), gen: 1, budget: 8}, &core.LocalResult{Key: fmt.Sprint(i)}, nil)
	}
	if n := c.len(); n != 2 {
		t.Fatalf("capacity-2 cache holds %d entries", n)
	}
	if _, ok := c.get(localKey{vid: factorgraph.VarID(0), gen: 1, budget: 8}, "0"); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if res, ok := c.get(localKey{vid: factorgraph.VarID(3), gen: 1, budget: 8}, "3"); !ok || res.Key != "3" {
		t.Fatal("newest entry missing")
	}
}

// TestLocalCacheInteriorReuse checks the reverse-index reuse path: a point
// query for an atom inside an already-cached subgraph (same generation and
// budget) is answered from that subgraph's interior marginals — counted as
// an interior hit, no recompute — and the derived answer is memoized under
// its own primary key.
func TestLocalCacheInteriorReuse(t *testing.T) {
	sys := newEbolaSystem(t, core.Config{Engine: core.EngineSya, Seed: 7})
	reg := obs.NewRegistry()
	srv, ts := startServer(t, sys, Options{Metrics: reg})

	// Budget 16 covers the whole 4-county graph, so the first subgraph's
	// interior contains every other county's HasEbola atom.
	urlA := ts.URL + "/v1/score/point?relation=HasEbola&x=-9.45&y=7.05&budget=16"
	urlB := ts.URL + "/v1/score/point?relation=HasEbola&x=-8.90&y=7.60&budget=16"
	var respA, respB queryResponse
	if code := getJSON(t, urlA, &respA); code != 200 {
		t.Fatalf("query A status %d", code)
	}
	if h := srv.locals.interior.Value(); h != 0 {
		t.Fatalf("interior hits after first query = %d, want 0", h)
	}
	if code := getJSON(t, urlB, &respB); code != 200 {
		t.Fatalf("query B status %d", code)
	}
	if h := srv.locals.interior.Value(); h != 1 {
		t.Fatalf("interior hits after overlapping query = %d, want 1", h)
	}
	if m := srv.locals.misses.Value(); m != 1 {
		t.Fatalf("misses = %d, want 1 — overlapping query reground its subgraph", m)
	}
	a, b := respA.Atoms[0], respB.Atoms[0]
	if a.Key == b.Key {
		t.Fatal("test premise broken: both probes matched the same atom")
	}
	// The derived answer is the base subgraph's estimate of atom B.
	if b.LocalVars != a.LocalVars {
		t.Fatalf("derived answer reports %d vars, base subgraph %d", b.LocalVars, a.LocalVars)
	}
	if b.Score < 0 || b.Score > 1 {
		t.Fatalf("derived score %.4f out of range", b.Score)
	}

	// The derived entry now answers by primary key: hits, not interior hits.
	if code := getJSON(t, urlB, nil); code != 200 {
		t.Fatalf("repeat query B status %d", code)
	}
	if h := srv.locals.hits.Value(); h != 1 {
		t.Fatalf("primary hits after repeat = %d, want 1", h)
	}
	if h := srv.locals.interior.Value(); h != 1 {
		t.Fatalf("interior hits after repeat = %d, want 1 (derived entry must be memoized)", h)
	}
}

// TestLocalCacheRevEviction checks eviction drops an entry's reverse-index
// registrations with it.
func TestLocalCacheRevEviction(t *testing.T) {
	c := newLocalCache(2, nil)
	base := &core.LocalResult{Key: "a", Interior: map[string][]float64{
		"a": {0.5, 0.5}, "b": {0.2, 0.8},
	}}
	kA := localKey{vid: 1, gen: 1, budget: 8}
	kB := localKey{vid: 2, gen: 1, budget: 8}
	c.put(kA, base, []localKey{kB})
	if res, ok := c.get(kB, "b"); !ok || res.Marginal[1] != 0.8 || res.Key != "b" {
		t.Fatalf("interior reuse failed: %+v, %v", res, ok)
	}
	// kB is now a primary entry too; two more puts evict both originals.
	c.put(localKey{vid: 3, gen: 1, budget: 8}, &core.LocalResult{Key: "c"}, nil)
	c.put(localKey{vid: 4, gen: 1, budget: 8}, &core.LocalResult{Key: "d"}, nil)
	if _, ok := c.get(kB, "b"); ok {
		t.Fatal("reverse-index entry survived its base entry's eviction")
	}
	if len(c.rev) != 0 {
		t.Fatalf("%d reverse-index entries left after eviction", len(c.rev))
	}
}

// TestLocalConcurrentQueries hammers the lazy path from many goroutines
// while an upsert runs — the subgraph cache and QueryLocal must be safe
// under the server's read/write interleaving (this runs under -race in CI).
func TestLocalConcurrentQueries(t *testing.T) {
	sys := newEbolaSystem(t, core.Config{Engine: core.EngineSya, Seed: 7, Epochs: 1000})
	_, ts := startServer(t, sys, Options{LocalBudget: 8, LocalEpochs: 500})

	urls := []string{
		ts.URL + "/v1/score/point?relation=HasEbola&x=-9.45&y=7.05&budget=4",
		ts.URL + "/v1/score/point?relation=HasEbola&x=-9.45&y=7.05&budget=16",
		ts.URL + "/v1/score/point?relation=HasEbola&x=-8.90&y=7.60",
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 6; j++ {
				resp, err := http.Get(urls[(i+j)%len(urls)])
				if err != nil {
					errs <- err.Error()
					return
				}
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errs <- fmt.Sprintf("status %d", resp.StatusCode)
				}
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		body := `{"relation": "CountyEvidence", "rows": [["2", "POINT (-10.45 6.55)", "true"]]}`
		resp, err := http.Post(ts.URL+"/v1/evidence", "application/json", strings.NewReader(body))
		if err != nil {
			errs <- err.Error()
			return
		}
		resp.Body.Close()
		if resp.StatusCode != 200 && resp.StatusCode != 429 {
			errs <- fmt.Sprintf("upsert status %d", resp.StatusCode)
		}
	}()
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
