package serve

import (
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/gibbs/testutil"
	"repro/internal/wal"
)

// TestCrashRecoveryEquivalence is the serving chaos harness. For each
// datagen workload it runs a live server with a WAL, feeds it the workload's
// upserts through the HTTP API, and then simulates a crash at every point in
// the WAL byte stream that a kill can produce: a tear at each frame boundary
// (the process died after k appends — whether or not the k-th batch was
// applied in memory, the file is the same, which is exactly why replay must
// be idempotent) and a tear mid-frame (the process died inside an append).
// Each torn log is rebooted into a fresh server, and the recovered marginals
// must match an independent batch run over the same surviving evidence
// within the usual TV tolerance.
func TestCrashRecoveryEquivalence(t *testing.T) {
	for _, w := range equivWorkloads(t) {
		w := w
		t.Run(w.name, func(t *testing.T) {
			dir := t.TempDir()
			walPath := filepath.Join(dir, "ev.wal")

			// Live phase: a durable server accepts every upsert. SyncEvery
			// is 1 (the default), so each acked batch is on disk the moment
			// the handler answers — the file below is bit-identical to what
			// a SIGKILL right after the last ack would leave.
			sys := w.build(t, 7)
			srv, err := New(sys, Options{WALPath: walPath})
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(srv.Handler())
			for _, row := range w.upserts {
				if _, code := postUpsert(t, ts.URL, w.upsertRel, [][]string{row}); code != 200 {
					t.Fatalf("upsert status %d", code)
				}
			}
			ts.Close()
			if err := srv.Close(); err != nil {
				t.Fatal(err)
			}

			offs, err := wal.FrameOffsets(walPath)
			if err != nil {
				t.Fatal(err)
			}
			if len(offs) != len(w.upserts)+1 {
				t.Fatalf("wal holds %d records, want %d", len(offs)-1, len(w.upserts))
			}

			// Crash points: every frame boundary, plus one cut inside the
			// last frame (recovers all but the final batch). The full
			// byte-by-byte tear sweep lives in the wal package tests; here
			// each surviving prefix is carried through grounding, warmup and
			// the query API.
			type crash struct {
				name string
				cut  int64
				k    int // records that survive the tear
			}
			n := len(w.upserts)
			crashes := make([]crash, 0, n+2)
			for k := 0; k <= n; k++ {
				crashes = append(crashes, crash{fmt.Sprintf("boundary%d", k), offs[k], k})
			}
			if offs[n]-offs[n-1] > 4 {
				crashes = append(crashes, crash{"midframe", offs[n] - 3, n - 1})
			}

			// One batch reference per distinct surviving-evidence prefix.
			refs := make(map[int]map[string][]float64)
			ref := func(k int) map[string][]float64 {
				if m, ok := refs[k]; ok {
					return m
				}
				m := batchMarginals(t, w, 3, w.upserts[:k])
				refs[k] = m
				return m
			}

			for _, c := range crashes {
				c := c
				t.Run(c.name, func(t *testing.T) {
					torn := filepath.Join(dir, c.name+".wal")
					if err := testutil.CopyFile(torn, walPath); err != nil {
						t.Fatal(err)
					}
					if err := testutil.TearFileAt(torn, c.cut); err != nil {
						t.Fatal(err)
					}

					// Reboot: fresh system from the CSVs, replayed WAL,
					// one ground + warmup — the syad boot path.
					rec, rts := startServer(t, w.build(t, 11), Options{WALPath: torn})
					if got := rec.ReplayStats().LogRecords; got != c.k {
						t.Fatalf("replayed %d records, want %d", got, c.k)
					}
					served := servedMarginals(t, rts.URL, w.queryRel)

					worst, key, err := testutil.KeyedMaxTV(served, ref(c.k))
					if err != nil {
						t.Fatal(err)
					}
					if worst > equivTol {
						t.Errorf("recovered vs batch marginals after %s: worst TV %.3f at %s (tol %.2f)",
							c.name, worst, key, equivTol)
					}
				})
			}
		})
	}
}
