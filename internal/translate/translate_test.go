package translate

import (
	"strings"
	"testing"

	"repro/internal/ddlog"
	"repro/internal/geom"
	"repro/internal/sqlx"
	"repro/internal/storage"
)

const ebolaProgram = `
const liberia_geom = 'POLYGON((-12 4, -7 4, -7 9, -12 9))'.
S1: County (id bigint, location point, hasLowSanitation bool).
@spatial(exp)
S2: HasEbola? (id bigint, location point).
D1: HasEbola(C1, L1) = NULL :- County(C1, L1, _).
R1: @weight(0.35)
HasEbola(C1, L1) => HasEbola(C2, L2) :-
    County(C1, L1, _), County(C2, L2, S2)
    [distance(L1, L2) < 150, within(liberia_geom, L1), S2 = true].
`

func compile(t *testing.T, src string) *ddlog.Program {
	t.Helper()
	p, err := ddlog.ParseAndValidate(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDerivationSQL(t *testing.T) {
	p := compile(t, ebolaProgram)
	q, err := Derivation(p, p.Derivations[0], Options{Metric: geom.HaversineMiles})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(q.SQL, "SELECT b0.id, b0.location, NULL FROM County b0") {
		t.Errorf("SQL = %s", q.SQL)
	}
	if !q.HasLabel || len(q.HeadWidths) != 1 || q.HeadWidths[0] != 2 {
		t.Errorf("meta = %+v", q)
	}
	// Must parse in the SQL engine.
	if _, err := sqlx.Parse(q.SQL); err != nil {
		t.Errorf("generated SQL does not parse: %v", err)
	}
}

func TestInferenceSQLFig5Shape(t *testing.T) {
	// The translated R1 must contain a spatial join predicate (distance →
	// ST_DISTANCE comparison), a range predicate (within → ST_WITHIN with
	// swapped arguments), and the scalar filter.
	p := compile(t, ebolaProgram)
	q, err := Inference(p, p.Rules[0], Options{Metric: geom.HaversineMiles})
	if err != nil {
		t.Fatal(err)
	}
	sql := q.SQL
	for _, want := range []string{
		"FROM County b0, County b1",
		"ST_DISTANCE(b0.location, b1.location, 'miles') < 150",
		"ST_WITHIN(b0.location, :p0)",
		"b1.hasLowSanitation = true",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL missing %q:\n%s", want, sql)
		}
	}
	if len(q.HeadWidths) != 2 || q.HeadWidths[0] != 2 || q.HeadWidths[1] != 2 {
		t.Errorf("head widths = %v", q.HeadWidths)
	}
	if g, ok := q.Params["p0"]; !ok || g.Kind != storage.KindGeom {
		t.Errorf("region param = %+v", q.Params)
	}
	if _, err := sqlx.Parse(sql); err != nil {
		t.Errorf("generated SQL does not parse: %v", err)
	}
}

func TestInferenceSQLExecutesWithPlannerReordering(t *testing.T) {
	// End-to-end: translated SQL runs on the engine, and EXPLAIN shows the
	// range filter pushed into a scan before the spatial join (the paper's
	// Fig. 5 re-ordering).
	p := compile(t, ebolaProgram)
	q, err := Inference(p, p.Rules[0], Options{Metric: geom.HaversineMiles})
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDB()
	county, err := db.Create(SchemaFor(mustRel(t, p, "County")))
	if err != nil {
		t.Fatal(err)
	}
	rows := []storage.Row{
		{storage.Int(1), storage.Geom(geom.Pt(-10.80, 6.32)), storage.Bool(true)},
		{storage.Int(2), storage.Geom(geom.Pt(-10.45, 6.55)), storage.Bool(true)},
		{storage.Int(3), storage.Geom(geom.Pt(-9.45, 7.05)), storage.Bool(true)},
		{storage.Int(4), storage.Geom(geom.Pt(-8.90, 7.60)), storage.Bool(false)},
		{storage.Int(5), storage.Geom(geom.Pt(20, 50)), storage.Bool(true)}, // outside Liberia
	}
	if err := county.AppendAll(rows); err != nil {
		t.Fatal(err)
	}
	eng := sqlx.NewEngine(db)
	res, err := eng.Exec(q.SQL, q.Params)
	if err != nil {
		t.Fatal(err)
	}
	// Pairs (C1, C2): C1 within Liberia, C2 has sanitation=true, within
	// 150 miles. County 5 excluded (outside region and far); county 4 can
	// appear as C1 only against C3 (~64mi) — sanitation rules C2 to
	// {1,2,3}; county 4 never as C2.
	for _, r := range res.Rows {
		c2, _ := r[2].AsInt()
		if c2 == 4 || c2 == 5 {
			t.Errorf("row %v violates predicates", r)
		}
	}
	if len(res.Rows) == 0 {
		t.Fatal("no groundings produced")
	}
	expl, err := eng.Exec("EXPLAIN "+q.SQL, q.Params)
	if err != nil {
		t.Fatal(err)
	}
	first := expl.Rows[0][0].S
	if !strings.HasPrefix(first, "scan") || !strings.Contains(first, "ST_WITHIN") {
		t.Errorf("range predicate not pushed first: %q", first)
	}
}

func mustRel(t *testing.T, p *ddlog.Program, name string) *ddlog.RelationDecl {
	t.Helper()
	r, ok := p.Relation(name)
	if !ok {
		t.Fatalf("no relation %s", name)
	}
	return r
}

func TestRepeatedVariablesBecomeEquiJoin(t *testing.T) {
	p := compile(t, `
A (id bigint, k bigint).
B (k bigint, v double).
V? (id bigint).
D: V(I) = NULL :- A(I, K), B(K, _).
`)
	q, err := Derivation(p, p.Derivations[0], Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.SQL, "b0.k = b1.k") {
		t.Errorf("missing equi-join: %s", q.SQL)
	}
}

func TestConstantTermsBecomeFilters(t *testing.T) {
	p := compile(t, `
A (id bigint, tag text, on bool).
V? (id bigint).
D: V(I) = NULL :- A(I, 'x', true).
`)
	q, err := Derivation(p, p.Derivations[0], Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.SQL, "b0.tag = 'x'") || !strings.Contains(q.SQL, "b0.on = true") {
		t.Errorf("missing const filters: %s", q.SQL)
	}
}

func TestLabelVariableSelected(t *testing.T) {
	p := compile(t, `
Obs (id bigint, safe bool).
V? (id bigint).
D: V(I) = S :- Obs(I, S).
`)
	q, err := Derivation(p, p.Derivations[0], Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(q.SQL, "SELECT b0.id, b0.safe FROM Obs b0") && !strings.Contains(q.SQL, "b0.safe FROM") {
		t.Errorf("label column missing: %s", q.SQL)
	}
}

func TestExplicitMetricOverride(t *testing.T) {
	p := compile(t, `
A (id bigint, location point).
V? (id bigint, location point).
D: V(I, L) = NULL :- A(I, L).
R: @weight(1) V(I1, L1) => V(I2, L2) :- A(I1, L1), A(I2, L2) [distance(L1, L2, 'km') < 10].
`)
	q, err := Inference(p, p.Rules[0], Options{Metric: geom.HaversineMiles})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.SQL, "'km'") {
		t.Errorf("explicit metric lost: %s", q.SQL)
	}
}

func TestOtherSpatialPredicates(t *testing.T) {
	p := compile(t, `
const region = 'POLYGON((0 0, 10 0, 10 10, 0 10))'.
A (id bigint, shape polygon).
V? (id bigint).
D: V(I) = NULL :- A(I, S) [overlaps(S, region), intersects(S, region), contains(region, S)].
`)
	q, err := Derivation(p, p.Derivations[0], Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ST_OVERLAPS(b0.shape", "ST_INTERSECTS(b0.shape", "ST_CONTAINS("} {
		if !strings.Contains(q.SQL, want) {
			t.Errorf("missing %q in %s", want, q.SQL)
		}
	}
	if _, err := sqlx.Parse(q.SQL); err != nil {
		t.Errorf("generated SQL does not parse: %v", err)
	}
}

func TestAppTranslation(t *testing.T) {
	p := compile(t, `
Docs (id bigint, body text).
Places (name text, location point).
function extract over (body text) returns (name text, location point) implementation "geoner".
Places += extract(B) :- Docs(_, B).
`)
	q, err := App(p, p.Apps[0], Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(q.SQL, "SELECT b0.body FROM Docs b0") {
		t.Errorf("SQL = %s", q.SQL)
	}
}

func TestSchemaFor(t *testing.T) {
	p := compile(t, `
A (id bigint, location point, r double, s text, b bool).
V? (id bigint, location point).
`)
	a := SchemaFor(mustRel(t, p, "A"))
	if len(a.Cols) != 5 || a.Cols[1].Kind != storage.KindGeom {
		t.Errorf("schema A = %+v", a)
	}
	v := SchemaFor(mustRel(t, p, "V"))
	if len(v.Cols) != 3 || v.Cols[2].Name != "__vid" {
		t.Errorf("variable schema = %+v", v)
	}
}
