// Package translate implements Sya's spatial rules–queries translator
// (paper Section IV-B, Fig. 5): it compiles the body of a DDlog derivation
// or inference rule into a SQL query over the storage database, mapping
// spatial predicates to their PostGIS-style function forms (distance →
// ST_DISTANCE / ST_DWITHIN, within → ST_WITHIN, ...). The heuristic
// re-ordering the paper describes — run range predicates before spatial
// joins — happens downstream in the sqlx planner, which pushes single-table
// predicates into scans and orders joins by filtered cardinality.
//
// The translator assigns one alias per body atom (b0, b1, ...), turns
// repeated variables into equality predicates (implicit equi-joins),
// constant terms into filters, and the bracketed condition list into WHERE
// conjuncts. The SELECT list carries, for every head atom, its term values
// (the variable-key columns the grounding module uses to look up ground
// atoms), plus the derivation label when present.
package translate

import (
	"fmt"
	"strings"

	"repro/internal/ddlog"
	"repro/internal/geom"
	"repro/internal/storage"
)

// Options configures translation.
type Options struct {
	// Metric is the distance metric for the distance predicate when a rule
	// does not name one explicitly ('euclidean', 'miles', 'km').
	Metric geom.Metric
}

func metricName(m geom.Metric) string {
	switch m {
	case geom.HaversineMiles:
		return "miles"
	case geom.HaversineKm:
		return "km"
	default:
		return "euclidean"
	}
}

// Query is a translated rule body.
type Query struct {
	// SQL is the SELECT statement.
	SQL string
	// Params binds geometry and other non-literal constants.
	Params map[string]storage.Value
	// HeadWidths gives, per head atom, how many leading SELECT columns
	// belong to it (its term count). For derivations a final extra column
	// carries the label value.
	HeadWidths []int
	// HasLabel reports whether the last column is a derivation label.
	HasLabel bool
}

// translator tracks state while compiling one rule body.
type translator struct {
	prog    *ddlog.Program
	opts    Options
	selects []string
	from    []string
	where   []string
	params  map[string]storage.Value
	// binding maps (lower-cased) rule variables to their first source
	// column "bN.col".
	binding map[string]string
}

func newTranslator(prog *ddlog.Program, opts Options) *translator {
	return &translator{
		prog:    prog,
		opts:    opts,
		params:  map[string]storage.Value{},
		binding: map[string]string{},
	}
}

// bindBody sets up FROM aliases, variable bindings, implicit equality
// predicates and constant filters from the body atoms.
func (t *translator) bindBody(body []ddlog.Atom) error {
	for i, atom := range body {
		rel, ok := t.prog.Relation(atom.Rel)
		if !ok {
			return fmt.Errorf("translate: unknown relation %s", atom.Rel)
		}
		alias := fmt.Sprintf("b%d", i)
		t.from = append(t.from, fmt.Sprintf("%s %s", rel.Name, alias))
		for ci, term := range atom.Terms {
			col := fmt.Sprintf("%s.%s", alias, rel.Cols[ci].Name)
			switch term.Kind {
			case ddlog.TermWildcard:
				// no constraint
			case ddlog.TermConst:
				t.where = append(t.where, fmt.Sprintf("%s = %s", col, t.literal(term.Const)))
			case ddlog.TermVar:
				key := strings.ToLower(term.Var)
				if first, bound := t.binding[key]; bound {
					t.where = append(t.where, fmt.Sprintf("%s = %s", first, col))
				} else {
					t.binding[key] = col
				}
			}
		}
	}
	return nil
}

// literal renders a constant value as SQL, diverting geometries and strings
// with quotes into parameters.
func (t *translator) literal(v storage.Value) string {
	switch v.Kind {
	case storage.KindInt, storage.KindFloat:
		return v.String()
	case storage.KindBool:
		return v.String()
	case storage.KindNull:
		return "NULL"
	case storage.KindString:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	default:
		name := fmt.Sprintf("p%d", len(t.params))
		t.params[name] = v
		return ":" + name
	}
}

// condExprSQL renders a resolved condition expression.
func (t *translator) condExprSQL(e ddlog.CondExpr) (string, error) {
	if e.Kind == ddlog.CondTermExpr {
		switch e.Term.Kind {
		case ddlog.TermVar:
			col, ok := t.binding[strings.ToLower(e.Term.Var)]
			if !ok {
				return "", fmt.Errorf("translate: unbound variable %s in condition", e.Term.Var)
			}
			return col, nil
		case ddlog.TermConst:
			return t.literal(e.Term.Const), nil
		default:
			return "", fmt.Errorf("translate: wildcard in condition")
		}
	}
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		s, err := t.condExprSQL(a)
		if err != nil {
			return "", err
		}
		args[i] = s
	}
	switch e.Call {
	case "distance":
		if len(args) == 3 {
			// Explicit metric: distance(a, b, 'miles').
			return fmt.Sprintf("ST_DISTANCE(%s, %s, %s)", args[0], args[1], args[2]), nil
		}
		return fmt.Sprintf("ST_DISTANCE(%s, %s, '%s')", args[0], args[1], metricName(t.opts.Metric)), nil
	case "within":
		// DDlog follows the paper's argument order within(container, x)
		// (Fig. 3: within(liberia_geom, L1) checks L1 is in Liberia); SQL
		// ST_WITHIN(a, b) is "a within b", so arguments swap.
		return fmt.Sprintf("ST_WITHIN(%s, %s)", args[1], args[0]), nil
	case "contains":
		return fmt.Sprintf("ST_CONTAINS(%s, %s)", args[0], args[1]), nil
	case "overlaps":
		return fmt.Sprintf("ST_OVERLAPS(%s, %s)", args[0], args[1]), nil
	case "intersects":
		return fmt.Sprintf("ST_INTERSECTS(%s, %s)", args[0], args[1]), nil
	case "buffer":
		return fmt.Sprintf("ST_BUFFER(%s, %s)", args[0], args[1]), nil
	case "union":
		return fmt.Sprintf("ST_UNION(%s, %s)", args[0], args[1]), nil
	default:
		return "", fmt.Errorf("translate: unknown predicate %s", e.Call)
	}
}

var condOpSQL = map[ddlog.CondOp]string{
	ddlog.CondEq: "=", ddlog.CondNe: "<>", ddlog.CondLt: "<",
	ddlog.CondLe: "<=", ddlog.CondGt: ">", ddlog.CondGe: ">=",
}

// addConds appends WHERE conjuncts for the rule conditions. A compared
// distance call becomes ST_DISTANCE(...) op d, which the sqlx planner
// recognizes and executes as an R-tree spatial join (for < and <=).
func (t *translator) addConds(conds []ddlog.Cond) error {
	for _, c := range conds {
		l, err := t.condExprSQL(c.L)
		if err != nil {
			return err
		}
		if c.Op == ddlog.CondTrue {
			t.where = append(t.where, l)
			continue
		}
		r, err := t.condExprSQL(c.R)
		if err != nil {
			return err
		}
		t.where = append(t.where, fmt.Sprintf("%s %s %s", l, condOpSQL[c.Op], r))
	}
	return nil
}

// selectTerm renders one head term as a projection.
func (t *translator) selectTerm(term ddlog.Term, what string) (string, error) {
	switch term.Kind {
	case ddlog.TermVar:
		col, ok := t.binding[strings.ToLower(term.Var)]
		if !ok {
			return "", fmt.Errorf("translate: %s variable %s not bound in body", what, term.Var)
		}
		return col, nil
	case ddlog.TermConst:
		return t.literal(term.Const), nil
	default:
		return "", fmt.Errorf("translate: wildcard in %s", what)
	}
}

func (t *translator) build() Query {
	var b strings.Builder
	b.WriteString("SELECT ")
	b.WriteString(strings.Join(t.selects, ", "))
	b.WriteString(" FROM ")
	b.WriteString(strings.Join(t.from, ", "))
	if len(t.where) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(strings.Join(t.where, " AND "))
	}
	return Query{SQL: b.String(), Params: t.params}
}

// Derivation translates a derivation rule: the SELECT yields the head terms
// followed by the label column.
func Derivation(prog *ddlog.Program, d *ddlog.DerivationRule, opts Options) (Query, error) {
	t := newTranslator(prog, opts)
	if err := t.bindBody(d.Body); err != nil {
		return Query{}, err
	}
	if err := t.addConds(d.Conds); err != nil {
		return Query{}, err
	}
	for _, term := range d.Head.Terms {
		s, err := t.selectTerm(term, "derivation head")
		if err != nil {
			return Query{}, err
		}
		t.selects = append(t.selects, s)
	}
	label, err := t.selectTerm(d.LabelTerm, "derivation label")
	if err != nil {
		return Query{}, err
	}
	t.selects = append(t.selects, label)
	q := t.build()
	q.HeadWidths = []int{len(d.Head.Terms)}
	q.HasLabel = true
	return q, nil
}

// Inference translates an inference rule: the SELECT yields the terms of
// every head atom in order (HeadWidths gives the split).
func Inference(prog *ddlog.Program, r *ddlog.InferenceRule, opts Options) (Query, error) {
	t := newTranslator(prog, opts)
	if err := t.bindBody(r.Body); err != nil {
		return Query{}, err
	}
	if err := t.addConds(r.Conds); err != nil {
		return Query{}, err
	}
	var widths []int
	for _, h := range r.Head {
		for _, term := range h.Atom.Terms {
			s, err := t.selectTerm(term, "inference head")
			if err != nil {
				return Query{}, err
			}
			t.selects = append(t.selects, s)
		}
		widths = append(widths, len(h.Atom.Terms))
	}
	q := t.build()
	q.HeadWidths = widths
	return q, nil
}

// App translates a function application body: the SELECT yields the
// function argument terms in order.
func App(prog *ddlog.Program, a *ddlog.FunctionApp, opts Options) (Query, error) {
	t := newTranslator(prog, opts)
	if err := t.bindBody(a.Body); err != nil {
		return Query{}, err
	}
	if err := t.addConds(a.Conds); err != nil {
		return Query{}, err
	}
	for _, term := range a.Args {
		s, err := t.selectTerm(term, "function argument")
		if err != nil {
			return Query{}, err
		}
		t.selects = append(t.selects, s)
	}
	q := t.build()
	q.HeadWidths = []int{len(a.Args)}
	return q, nil
}

// SchemaFor maps a DDlog relation declaration to a storage schema. Variable
// relations get an extra trailing __vid column holding the ground-atom ID,
// so later rules can join against materialized variable relations.
func SchemaFor(rel *ddlog.RelationDecl) storage.Schema {
	s := storage.Schema{Name: rel.Name}
	for _, c := range rel.Cols {
		s.Cols = append(s.Cols, storage.Column{
			Name:     c.Name,
			Kind:     c.Type.Kind,
			GeomType: c.Type.GeomType,
		})
	}
	if rel.IsVariable {
		s.Cols = append(s.Cols, storage.Column{Name: "__vid", Kind: storage.KindInt})
	}
	return s
}
