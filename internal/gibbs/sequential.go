package gibbs

import (
	"context"

	"repro/internal/factorgraph"
)

// Sequential is the classic single-chain Gibbs sampler: each epoch sweeps
// every query variable once in ID order. It is fully deterministic for a
// given seed — the correctness harness uses it as the reference chain — and
// shares the sampleOne core (including the buffer-free binary fast path)
// with the pooled parallel samplers, so all variants draw from identical
// conditional distributions.
//
// It participates in the fault-tolerant runtime for interface symmetry:
// Run checks ctx at epoch boundaries (its "chunk" is one full sweep — it
// has no worker pool to interrupt mid-sweep), and Snapshot/Restore include
// the chain's PRNG state, making resume bit-identical trivially.
type Sequential struct {
	g      *factorgraph.Graph
	sc     scorer
	assign factorgraph.Assignment
	rng    *prng
	counts *counts
	query  []factorgraph.VarID
	buf    []float64
	epochs int
	burnIn int
	hooks  TestHooks
	ckpt   *Checkpointer

	obsState // metrics/trace/diagnostics plane (zero: disabled)
}

// SetBurnIn discards the first n chain epochs from the marginal counters.
// Call before the first RunEpochs.
func (s *Sequential) SetBurnIn(n int) { s.burnIn = n }

// SetTestHooks installs the fault-injection plane. BeforeChunk fires once
// per epoch on the calling goroutine (the whole sweep is one chunk).
func (s *Sequential) SetTestHooks(h TestHooks) { s.hooks = h }

// SetCheckpointer enables periodic snapshots: during context-aware runs a
// checkpoint is written at every epoch multiple of cp.Every. nil disables.
func (s *Sequential) SetCheckpointer(cp *Checkpointer) { s.ckpt = cp }

// SetMetrics attaches (or detaches, with nil) the obs metric handles. The
// sequential sampler has no pool; its whole sweep is one chunk, counted at
// the epoch boundary.
func (s *Sequential) SetMetrics(m *Metrics) {
	s.met = m
	publishKernelMetrics(m, s.sc.k)
}

// SetProgress enables convergence diagnostics every `every` epochs (see
// Sampler.SetProgress). A single chain, so Spread reads 0.
func (s *Sequential) SetProgress(every int, fn func(Progress)) {
	s.enableProgress(s.g, every, fn, []*counts{s.counts})
}

// NewSequential builds a sequential sampler with the given seed. Options
// default to the compiled-kernel scoring path (see NoKernels).
func NewSequential(g *factorgraph.Graph, seed int64, opts ...SamplerOption) *Sequential {
	cfg := applySamplerOptions(opts)
	return &Sequential{
		g:      g,
		sc:     newScorer(g, cfg.noKernels),
		assign: g.InitialAssignment(),
		rng:    taskRNG(seed, 0x5e90),
		counts: newCounts(g),
		query:  queryVars(g),
		buf:    make([]float64, maxDomain(g)),
	}
}

// Close implements Sampler; the sequential sampler holds no pool, so it is
// a no-op.
func (s *Sequential) Close() {}

// Name implements Sampler.
func (s *Sequential) Name() string { return "sequential" }

// TotalEpochs implements Sampler.
func (s *Sequential) TotalEpochs() int { return s.epochs }

// RunEpochs implements Sampler.
func (s *Sequential) RunEpochs(n int) {
	if _, err := s.Run(context.Background(), n); err != nil {
		panic(err)
	}
}

// Run advances the chain by up to n epochs under ctx. Cancellation is
// epoch-granular (one epoch is this sampler's chunk); an injected
// BeforeChunk panic propagates to the caller — there is no worker pool to
// isolate it, and the single-threaded chain state stays consistent up to
// the last completed epoch.
func (s *Sequential) Run(ctx context.Context, n int) (RunStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	st := RunStats{Reason: ReasonDone}
	active := s.obsActive()
	var hookChunks uint64
	for e := 0; e < n; e++ {
		if ctx.Err() != nil {
			st.Reason = reasonFromCtx(ctx)
			s.finalDiag("sequential", s.epochs, &st)
			return st, nil
		}
		eo := beginEpochObs(active)
		if s.hooks.BeforeChunk != nil {
			s.hooks.BeforeChunk(hookChunks)
			hookChunks++
		}
		count := s.epochs >= s.burnIn
		for _, v := range s.query {
			x := sampleOne(&s.sc, v, s.assign, s.rng, s.buf)
			if count {
				s.counts.add(v, x)
			}
		}
		s.epochs++
		st.Epochs++
		if active {
			if s.met != nil {
				s.met.Chunks.Inc() // the whole sweep is this sampler's chunk
			}
			finishEpochObs(s.met, s.trace, "sequential", s.epochs, &eo)
		}
		if s.diagDue(s.epochs) {
			s.takeDiag("sequential", s.epochs, &st)
		}
		if s.ckpt != nil && s.ckpt.due(s.epochs) {
			if err := saveCheckpointObs(s.met, s.trace, "sequential", s.epochs, func() error {
				return s.ckpt.Save(s.Snapshot())
			}); err != nil {
				return st, err
			}
		}
		if s.hooks.AfterEpoch != nil {
			s.hooks.AfterEpoch(s.epochs)
		}
	}
	s.finalDiag("sequential", s.epochs, &st)
	return st, nil
}

// Marginals implements Sampler.
func (s *Sequential) Marginals() [][]float64 {
	return marginalsFrom(s.g, func(v int) ([]float64, float64) {
		vals := make([]float64, len(s.counts.c[v]))
		for i, c := range s.counts.c[v] {
			vals[i] = float64(c)
		}
		return vals, float64(s.counts.totals[v])
	})
}

// Assignment exposes the current chain state (read-only use).
func (s *Sequential) Assignment() factorgraph.Assignment { return s.assign }
