package gibbs

import (
	"repro/internal/factorgraph"
)

// Sequential is the classic single-chain Gibbs sampler: each epoch sweeps
// every query variable once in ID order. It is fully deterministic for a
// given seed — the correctness harness uses it as the reference chain — and
// shares the sampleOne core (including the buffer-free binary fast path)
// with the pooled parallel samplers, so all variants draw from identical
// conditional distributions.
type Sequential struct {
	g      *factorgraph.Graph
	assign factorgraph.Assignment
	rng    *prng
	counts *counts
	query  []factorgraph.VarID
	buf    []float64
	epochs int
	burnIn int
}

// SetBurnIn discards the first n chain epochs from the marginal counters.
// Call before the first RunEpochs.
func (s *Sequential) SetBurnIn(n int) { s.burnIn = n }

// NewSequential builds a sequential sampler with the given seed.
func NewSequential(g *factorgraph.Graph, seed int64) *Sequential {
	return &Sequential{
		g:      g,
		assign: g.InitialAssignment(),
		rng:    taskRNG(seed, 0x5e90),
		counts: newCounts(g),
		query:  queryVars(g),
		buf:    make([]float64, maxDomain(g)),
	}
}

// Name implements Sampler.
func (s *Sequential) Name() string { return "sequential" }

// TotalEpochs implements Sampler.
func (s *Sequential) TotalEpochs() int { return s.epochs }

// RunEpochs implements Sampler.
func (s *Sequential) RunEpochs(n int) {
	for e := 0; e < n; e++ {
		count := s.epochs+e >= s.burnIn
		for _, v := range s.query {
			x := sampleOne(s.g, v, s.assign, s.rng, s.buf)
			if count {
				s.counts.add(v, x)
			}
		}
	}
	s.epochs += n
}

// Marginals implements Sampler.
func (s *Sequential) Marginals() [][]float64 {
	return marginalsFrom(s.g, func(v int) ([]float64, float64) {
		vals := make([]float64, len(s.counts.c[v]))
		for i, c := range s.counts.c[v] {
			vals[i] = float64(c)
		}
		return vals, float64(s.counts.totals[v])
	})
}

// Assignment exposes the current chain state (read-only use).
func (s *Sequential) Assignment() factorgraph.Assignment { return s.assign }
