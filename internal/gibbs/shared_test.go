package gibbs

import (
	"context"
	"testing"

	"repro/internal/gibbs/testutil"
)

// TestSharedPoolReuse checks the pool hand-off across sequential sampler
// lifetimes: same shape reuses the cached pool, a different shape rebuilds,
// and marginals from a reused pool stay within TV tolerance of exact.
func TestSharedPoolReuse(t *testing.T) {
	g, err := testutil.RandomGraph(testutil.Spec{Domain: 2, Spatial: true, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := testutil.Exact(g)
	if err != nil {
		t.Fatal(err)
	}
	sp := NewSharedPool()
	defer sp.Close()

	h1 := NewHogwild(g, 7, 2, WithSharedPool(sp))
	if _, err := h1.Run(context.Background(), 2000); err != nil {
		t.Fatal(err)
	}
	h1.Close()
	if got := sp.Builds(); got != 1 {
		t.Fatalf("builds after first sampler = %d, want 1", got)
	}

	h2 := NewHogwild(g, 8, 2, WithSharedPool(sp))
	if got := sp.Reuses(); got != 1 {
		t.Fatalf("reuses after same-shape sampler = %d, want 1", got)
	}
	if _, err := h2.Run(context.Background(), 4000); err != nil {
		t.Fatal(err)
	}
	if tv := testutil.MaxTV(h2.Marginals(), exact); tv > 0.08 {
		t.Fatalf("reused-pool marginals off: max TV %.4f > 0.08", tv)
	}
	h2.Close()
	h2.Close() // idempotent

	// A different graph (the re-ground scenario) is a different pool shape:
	// rebuild.
	g2, err := testutil.RandomGraph(testutil.Spec{Domain: 2, Spatial: true, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	h3 := NewHogwild(g2, 9, 2, WithSharedPool(sp))
	if got := sp.Builds(); got != 2 {
		t.Fatalf("builds after graph change = %d, want 2", got)
	}
	h3.Close()

	// Spatial and hogwild share the cache through the same shapes.
	s1, err := NewSpatial(g, SpatialOptions{Instances: 2, Workers: 2, Seed: 5, Shared: sp})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Run(context.Background(), 200); err != nil {
		t.Fatal(err)
	}
	s1.Close()
	s2, err := NewSpatial(g, SpatialOptions{Instances: 2, Workers: 2, Seed: 6, Shared: sp})
	if err != nil {
		t.Fatal(err)
	}
	if got := sp.Reuses(); got != 2 {
		t.Fatalf("reuses after same-shape spatial sampler = %d, want 2", got)
	}
	if _, err := s2.Run(context.Background(), 200); err != nil {
		t.Fatal(err)
	}
	s2.Close()
}

// TestSharedPoolPoisonNotCached checks a pool poisoned by a worker panic is
// closed on release instead of being handed to the next sampler.
func TestSharedPoolPoisonNotCached(t *testing.T) {
	g, err := testutil.RandomGraph(testutil.Spec{Domain: 2, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	sp := NewSharedPool()
	defer sp.Close()
	h := NewHogwild(g, 3, 2, WithSharedPool(sp))
	h.SetTestHooks(TestHooks{BeforeChunk: func(n uint64) {
		if n == 0 {
			panic("injected")
		}
	}})
	if _, err := h.Run(context.Background(), 10); err == nil {
		t.Fatal("expected worker panic error")
	}
	h.Close()
	h2 := NewHogwild(g, 4, 2, WithSharedPool(sp))
	if got := sp.Reuses(); got != 0 {
		t.Fatalf("poisoned pool was reused (reuses = %d)", got)
	}
	if _, err := h2.Run(context.Background(), 50); err != nil {
		t.Fatalf("fresh pool after poison: %v", err)
	}
	h2.Close()
}
