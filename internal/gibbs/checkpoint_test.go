package gibbs_test

// Checkpoint/resume tests: snapshots must round-trip through the versioned
// binary format, a run interrupted at a snapshot and resumed into a fresh
// sampler must be bit-identical to an uninterrupted run, and torn or
// corrupted checkpoint files must be rejected by the CRC trailer instead of
// resuming from garbage.

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/factorgraph"
	"repro/internal/gibbs"
	"repro/internal/gibbs/testutil"
)

// determGraph is a harness graph for the bit-identical tests.
func determGraph(t *testing.T) *factorgraph.Graph {
	t.Helper()
	g, err := testutil.RandomGraph(testutil.Spec{Vars: 20, Spatial: true, Seed: 1234})
	if err != nil {
		t.Fatalf("building graph: %v", err)
	}
	return g
}

// deterministicSamplers builds one sampler of each kind in its
// scheduling-deterministic configuration (spatial and hogwild with one
// worker — see the package comment on the determinism contract), so resumed
// and uninterrupted runs can be compared float-for-float.
func deterministicSamplers(t *testing.T, g *factorgraph.Graph) map[string]func() gibbs.Sampler {
	t.Helper()
	return map[string]func() gibbs.Sampler{
		"spatial": func() gibbs.Sampler {
			sp, err := gibbs.NewSpatial(g, gibbs.SpatialOptions{Instances: 2, Workers: 1, Seed: 7})
			if err != nil {
				t.Fatalf("NewSpatial: %v", err)
			}
			return sp
		},
		"hogwild":    func() gibbs.Sampler { return gibbs.NewHogwild(g, 7, 1) },
		"sequential": func() gibbs.Sampler { return gibbs.NewSequential(g, 7) },
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	g := determGraph(t)
	for name, mk := range deterministicSamplers(t, g) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			if _, err := s.Run(context.Background(), 6); err != nil {
				t.Fatalf("Run: %v", err)
			}
			cp := s.Snapshot()
			var buf bytes.Buffer
			if _, err := cp.WriteTo(&buf); err != nil {
				t.Fatalf("WriteTo: %v", err)
			}
			got, err := gibbs.ReadCheckpoint(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("ReadCheckpoint: %v", err)
			}
			if !reflect.DeepEqual(cp, got) {
				t.Errorf("checkpoint did not round-trip:\n  want %+v\n  got  %+v", cp, got)
			}
		})
	}
}

func TestResumeIsBitIdentical(t *testing.T) {
	g := determGraph(t)
	const total, cut = 12, 5
	for name, mk := range deterministicSamplers(t, g) {
		t.Run(name, func(t *testing.T) {
			// Reference: one uninterrupted run.
			ref := mk()
			if _, err := ref.Run(context.Background(), total); err != nil {
				t.Fatalf("reference run: %v", err)
			}
			want := ref.Marginals()
			ref.Close()

			// Interrupted run: cut epochs, snapshot, resume into a FRESH
			// sampler, finish the budget.
			first := mk()
			if _, err := first.Run(context.Background(), cut); err != nil {
				t.Fatalf("first leg: %v", err)
			}
			cp := first.Snapshot()
			first.Close()

			resumed := mk()
			defer resumed.Close()
			if err := resumed.Restore(cp); err != nil {
				t.Fatalf("Restore: %v", err)
			}
			if resumed.TotalEpochs() != cut {
				t.Fatalf("TotalEpochs after restore = %d, want %d", resumed.TotalEpochs(), cut)
			}
			if _, err := resumed.Run(context.Background(), total-cut); err != nil {
				t.Fatalf("second leg: %v", err)
			}
			got := resumed.Marginals()
			for v := range want {
				for x := range want[v] {
					if want[v][x] != got[v][x] {
						t.Fatalf("marginal[%d][%d]: uninterrupted %v, resumed %v — resume is not bit-identical",
							v, x, want[v][x], got[v][x])
					}
				}
			}
		})
	}
}

func TestCheckpointerPeriodicSaveAndResume(t *testing.T) {
	g := determGraph(t)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	const total, every = 10, 4

	// Reference run, no checkpointing.
	mk := deterministicSamplers(t, g)["spatial"]
	ref := mk()
	if _, err := ref.Run(context.Background(), total); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	want := ref.Marginals()
	ref.Close()

	// Checkpointed run "crashes" after 8 epochs (the last snapshot lands at
	// epoch 8 = 2×every).
	s := mk()
	s.SetCheckpointer(&gibbs.Checkpointer{Path: path, Every: every})
	if _, err := s.Run(context.Background(), 8); err != nil {
		t.Fatalf("checkpointed run: %v", err)
	}
	s.Close() // the crash: state lost, only the file survives

	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temp file left behind after atomic save: %v", err)
	}
	cp, err := gibbs.LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if cp.Epochs != 8 {
		t.Errorf("checkpoint at epoch %d, want 8", cp.Epochs)
	}

	// Resume from disk and finish the budget: bit-identical to the
	// uninterrupted reference.
	resumed := mk()
	defer resumed.Close()
	from, err := gibbs.ResumeFrom(resumed, path)
	if err != nil {
		t.Fatalf("ResumeFrom: %v", err)
	}
	if from != path {
		t.Errorf("resumed from %q, want the primary %q", from, path)
	}
	if _, err := resumed.Run(context.Background(), total-8); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	got := resumed.Marginals()
	for v := range want {
		if !reflect.DeepEqual(want[v], got[v]) {
			t.Fatalf("marginal[%d]: uninterrupted %v, resumed %v", v, want[v], got[v])
		}
	}
}

func TestTornAndCorruptedCheckpointsRejected(t *testing.T) {
	g := determGraph(t)
	s := gibbs.NewSequential(g, 7)
	defer s.Close()
	if _, err := s.Run(context.Background(), 3); err != nil {
		t.Fatalf("Run: %v", err)
	}
	dir := t.TempDir()
	write := func(name string) string {
		path := filepath.Join(dir, name)
		if err := (&gibbs.Checkpointer{Path: path}).Save(s.Snapshot()); err != nil {
			t.Fatalf("Save: %v", err)
		}
		return path
	}

	torn := write("torn.ckpt")
	if err := testutil.TearFile(torn); err != nil {
		t.Fatalf("TearFile: %v", err)
	}
	if _, err := gibbs.LoadCheckpoint(torn); err == nil {
		t.Error("torn checkpoint loaded without error")
	}

	corrupt := write("corrupt.ckpt")
	if err := testutil.CorruptFile(corrupt); err != nil {
		t.Fatalf("CorruptFile: %v", err)
	}
	if _, err := gibbs.LoadCheckpoint(corrupt); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("corrupted checkpoint: got %v, want checksum error", err)
	}

	empty := filepath.Join(dir, "empty.ckpt")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := gibbs.LoadCheckpoint(empty); err == nil {
		t.Error("empty checkpoint loaded without error")
	}

	notmagic := filepath.Join(dir, "notmagic.ckpt")
	if err := os.WriteFile(notmagic, make([]byte, 64), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := gibbs.LoadCheckpoint(notmagic); err == nil {
		t.Error("non-checkpoint file loaded without error")
	}
}

func TestRestoreValidatesIdentity(t *testing.T) {
	g := determGraph(t)
	mk := deterministicSamplers(t, g)

	seq := mk["sequential"]()
	defer seq.Close()
	if _, err := seq.Run(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	cp := seq.Snapshot()

	// Wrong sampler kind.
	sp := mk["spatial"]()
	defer sp.Close()
	if err := sp.Restore(cp); err == nil {
		t.Error("spatial sampler accepted a sequential checkpoint")
	}

	// Wrong seed.
	other, err := gibbs.NewSpatial(g, gibbs.SpatialOptions{Instances: 2, Workers: 1, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	spcp := func() *gibbs.Checkpoint {
		s := mk["spatial"]()
		defer s.Close()
		if _, err := s.Run(context.Background(), 2); err != nil {
			t.Fatal(err)
		}
		return s.Snapshot()
	}()
	if err := other.Restore(spcp); err == nil {
		t.Error("spatial sampler accepted a checkpoint with a different seed")
	}

	// Wrong worker width for hogwild (its bucket partition depends on it).
	h1 := gibbs.NewHogwild(g, 7, 1)
	defer h1.Close()
	if _, err := h1.Run(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	hcp := h1.Snapshot()
	h2 := gibbs.NewHogwild(g, 7, 2)
	defer h2.Close()
	if err := h2.Restore(hcp); err == nil {
		t.Error("hogwild accepted a checkpoint with a different worker width")
	}

	// Wrong graph shape.
	small, err := testutil.RandomGraph(testutil.Spec{Vars: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	seqSmall := gibbs.NewSequential(small, 7)
	defer seqSmall.Close()
	if err := seqSmall.Restore(cp); err == nil {
		t.Error("sampler over a different graph accepted the checkpoint")
	}
}

func TestCheckpointDuringCanceledRunKeepsLastSnapshot(t *testing.T) {
	g := determGraph(t)
	path := filepath.Join(t.TempDir(), "cancel.ckpt")
	s := deterministicSamplers(t, g)["spatial"]()
	defer s.Close()
	s.SetCheckpointer(&gibbs.Checkpointer{Path: path, Every: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.(hooked).SetTestHooks(gibbs.TestHooks{AfterEpoch: testutil.CancelAtEpoch(cancel, 5)})
	st, err := s.Run(ctx, 100)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.Reason != gibbs.ReasonCanceled {
		t.Fatalf("Reason = %v, want ReasonCanceled", st.Reason)
	}
	cp, err := gibbs.LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("LoadCheckpoint after cancel: %v", err)
	}
	if cp.Epochs != 4 {
		t.Errorf("last snapshot at epoch %d, want 4 (the last Every=2 boundary before the cancel at 5)", cp.Epochs)
	}
}
