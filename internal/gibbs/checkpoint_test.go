package gibbs_test

// Checkpoint/resume tests: snapshots must round-trip through the versioned
// binary format, a run interrupted at a snapshot and resumed into a fresh
// sampler must be bit-identical to an uninterrupted run, and torn or
// corrupted checkpoint files must be rejected by the CRC trailer instead of
// resuming from garbage.

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/factorgraph"
	"repro/internal/geom"
	"repro/internal/gibbs"
	"repro/internal/gibbs/testutil"
)

// determGraph is a harness graph for the bit-identical tests.
func determGraph(t *testing.T) *factorgraph.Graph {
	t.Helper()
	g, err := testutil.RandomGraph(testutil.Spec{Vars: 20, Spatial: true, Seed: 1234})
	if err != nil {
		t.Fatalf("building graph: %v", err)
	}
	return g
}

// deterministicSamplers builds one sampler of each kind in its
// scheduling-deterministic configuration (spatial and hogwild with one
// worker — see the package comment on the determinism contract), so resumed
// and uninterrupted runs can be compared float-for-float.
func deterministicSamplers(t *testing.T, g *factorgraph.Graph) map[string]func() gibbs.Sampler {
	t.Helper()
	return map[string]func() gibbs.Sampler{
		"spatial": func() gibbs.Sampler {
			sp, err := gibbs.NewSpatial(g, gibbs.SpatialOptions{Instances: 2, Workers: 1, Seed: 7})
			if err != nil {
				t.Fatalf("NewSpatial: %v", err)
			}
			return sp
		},
		"hogwild":    func() gibbs.Sampler { return gibbs.NewHogwild(g, 7, 1) },
		"sequential": func() gibbs.Sampler { return gibbs.NewSequential(g, 7) },
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	g := determGraph(t)
	for name, mk := range deterministicSamplers(t, g) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			if _, err := s.Run(context.Background(), 6); err != nil {
				t.Fatalf("Run: %v", err)
			}
			cp := s.Snapshot()
			var buf bytes.Buffer
			if _, err := cp.WriteTo(&buf); err != nil {
				t.Fatalf("WriteTo: %v", err)
			}
			got, err := gibbs.ReadCheckpoint(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("ReadCheckpoint: %v", err)
			}
			if !reflect.DeepEqual(cp, got) {
				t.Errorf("checkpoint did not round-trip:\n  want %+v\n  got  %+v", cp, got)
			}
		})
	}
}

func TestResumeIsBitIdentical(t *testing.T) {
	g := determGraph(t)
	const total, cut = 12, 5
	for name, mk := range deterministicSamplers(t, g) {
		t.Run(name, func(t *testing.T) {
			// Reference: one uninterrupted run.
			ref := mk()
			if _, err := ref.Run(context.Background(), total); err != nil {
				t.Fatalf("reference run: %v", err)
			}
			want := ref.Marginals()
			ref.Close()

			// Interrupted run: cut epochs, snapshot, resume into a FRESH
			// sampler, finish the budget.
			first := mk()
			if _, err := first.Run(context.Background(), cut); err != nil {
				t.Fatalf("first leg: %v", err)
			}
			cp := first.Snapshot()
			first.Close()

			resumed := mk()
			defer resumed.Close()
			if err := resumed.Restore(cp); err != nil {
				t.Fatalf("Restore: %v", err)
			}
			if resumed.TotalEpochs() != cut {
				t.Fatalf("TotalEpochs after restore = %d, want %d", resumed.TotalEpochs(), cut)
			}
			if _, err := resumed.Run(context.Background(), total-cut); err != nil {
				t.Fatalf("second leg: %v", err)
			}
			got := resumed.Marginals()
			for v := range want {
				for x := range want[v] {
					if want[v][x] != got[v][x] {
						t.Fatalf("marginal[%d][%d]: uninterrupted %v, resumed %v — resume is not bit-identical",
							v, x, want[v][x], got[v][x])
					}
				}
			}
		})
	}
}

func TestCheckpointerPeriodicSaveAndResume(t *testing.T) {
	g := determGraph(t)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	const total, every = 10, 4

	// Reference run, no checkpointing.
	mk := deterministicSamplers(t, g)["spatial"]
	ref := mk()
	if _, err := ref.Run(context.Background(), total); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	want := ref.Marginals()
	ref.Close()

	// Checkpointed run "crashes" after 8 epochs (the last snapshot lands at
	// epoch 8 = 2×every).
	s := mk()
	s.SetCheckpointer(&gibbs.Checkpointer{Path: path, Every: every})
	if _, err := s.Run(context.Background(), 8); err != nil {
		t.Fatalf("checkpointed run: %v", err)
	}
	s.Close() // the crash: state lost, only the file survives

	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temp file left behind after atomic save: %v", err)
	}
	cp, err := gibbs.LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if cp.Epochs != 8 {
		t.Errorf("checkpoint at epoch %d, want 8", cp.Epochs)
	}

	// Resume from disk and finish the budget: bit-identical to the
	// uninterrupted reference.
	resumed := mk()
	defer resumed.Close()
	from, err := gibbs.ResumeFrom(resumed, path)
	if err != nil {
		t.Fatalf("ResumeFrom: %v", err)
	}
	if from != path {
		t.Errorf("resumed from %q, want the primary %q", from, path)
	}
	if _, err := resumed.Run(context.Background(), total-8); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	got := resumed.Marginals()
	for v := range want {
		if !reflect.DeepEqual(want[v], got[v]) {
			t.Fatalf("marginal[%d]: uninterrupted %v, resumed %v", v, want[v], got[v])
		}
	}
}

func TestTornAndCorruptedCheckpointsRejected(t *testing.T) {
	g := determGraph(t)
	s := gibbs.NewSequential(g, 7)
	defer s.Close()
	if _, err := s.Run(context.Background(), 3); err != nil {
		t.Fatalf("Run: %v", err)
	}
	dir := t.TempDir()
	write := func(name string) string {
		path := filepath.Join(dir, name)
		if err := (&gibbs.Checkpointer{Path: path}).Save(s.Snapshot()); err != nil {
			t.Fatalf("Save: %v", err)
		}
		return path
	}

	torn := write("torn.ckpt")
	if err := testutil.TearFile(torn); err != nil {
		t.Fatalf("TearFile: %v", err)
	}
	if _, err := gibbs.LoadCheckpoint(torn); err == nil {
		t.Error("torn checkpoint loaded without error")
	}

	corrupt := write("corrupt.ckpt")
	if err := testutil.CorruptFile(corrupt); err != nil {
		t.Fatalf("CorruptFile: %v", err)
	}
	if _, err := gibbs.LoadCheckpoint(corrupt); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("corrupted checkpoint: got %v, want checksum error", err)
	}

	empty := filepath.Join(dir, "empty.ckpt")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := gibbs.LoadCheckpoint(empty); err == nil {
		t.Error("empty checkpoint loaded without error")
	}

	notmagic := filepath.Join(dir, "notmagic.ckpt")
	if err := os.WriteFile(notmagic, make([]byte, 64), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := gibbs.LoadCheckpoint(notmagic); err == nil {
		t.Error("non-checkpoint file loaded without error")
	}
}

func TestRestoreValidatesIdentity(t *testing.T) {
	g := determGraph(t)
	mk := deterministicSamplers(t, g)

	seq := mk["sequential"]()
	defer seq.Close()
	if _, err := seq.Run(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	cp := seq.Snapshot()

	// Wrong sampler kind.
	sp := mk["spatial"]()
	defer sp.Close()
	if err := sp.Restore(cp); err == nil {
		t.Error("spatial sampler accepted a sequential checkpoint")
	}

	// Wrong seed.
	other, err := gibbs.NewSpatial(g, gibbs.SpatialOptions{Instances: 2, Workers: 1, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	spcp := func() *gibbs.Checkpoint {
		s := mk["spatial"]()
		defer s.Close()
		if _, err := s.Run(context.Background(), 2); err != nil {
			t.Fatal(err)
		}
		return s.Snapshot()
	}()
	if err := other.Restore(spcp); err == nil {
		t.Error("spatial sampler accepted a checkpoint with a different seed")
	}

	// Worker width is NOT part of checkpoint identity: hogwild's bucket
	// partition and PRNG streams derive from (graph, seed) alone, so any
	// width resumes any snapshot.
	h1 := gibbs.NewHogwild(g, 7, 1)
	defer h1.Close()
	if _, err := h1.Run(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	hcp := h1.Snapshot()
	h2 := gibbs.NewHogwild(g, 7, 2)
	defer h2.Close()
	if err := h2.Restore(hcp); err != nil {
		t.Errorf("hogwild rejected a checkpoint from a different worker width: %v", err)
	}

	// Wrong graph shape.
	small, err := testutil.RandomGraph(testutil.Spec{Vars: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	seqSmall := gibbs.NewSequential(small, 7)
	defer seqSmall.Close()
	if err := seqSmall.Restore(cp); err == nil {
		t.Error("sampler over a different graph accepted the checkpoint")
	}
}

func TestCheckpointDuringCanceledRunKeepsLastSnapshot(t *testing.T) {
	g := determGraph(t)
	path := filepath.Join(t.TempDir(), "cancel.ckpt")
	s := deterministicSamplers(t, g)["spatial"]()
	defer s.Close()
	s.SetCheckpointer(&gibbs.Checkpointer{Path: path, Every: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.(hooked).SetTestHooks(gibbs.TestHooks{AfterEpoch: testutil.CancelAtEpoch(cancel, 5)})
	st, err := s.Run(ctx, 100)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.Reason != gibbs.ReasonCanceled {
		t.Fatalf("Reason = %v, want ReasonCanceled", st.Reason)
	}
	cp, err := gibbs.LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("LoadCheckpoint after cancel: %v", err)
	}
	if cp.Epochs != 4 {
		t.Errorf("last snapshot at epoch %d, want 4 (the last Every=2 boundary before the cancel at 5)", cp.Epochs)
	}
}

// independentGraph builds a graph whose query variables never interact:
// each has a unary prior and an implication from a fixed evidence atom,
// and there are no query–query factors or spatial pairs. On such a graph
// every sweep schedule produces the same chain, so the parallel samplers
// are bit-identical at ANY worker width — which isolates exactly the
// property the multi-worker resume test needs to see: PRNG streams pinned
// to chunk identity (hogwild bucket / pyramid cell), never to the worker
// that happens to execute the chunk. Query atoms carry locations so the
// spatial sampler schedules them through real conclique cell sweeps
// rather than the serial tail.
func independentGraph(t *testing.T) *factorgraph.Graph {
	t.Helper()
	b := factorgraph.NewBuilder()
	const n = 300 // several hogwild buckets' worth (hogwildGrain = 64)
	for i := 0; i < n; i++ {
		q, err := b.AddVariable(factorgraph.Variable{
			Domain:   2,
			Evidence: factorgraph.NoEvidence,
			Loc:      geom.Pt(float64(i%20)*5, float64(i/20)*7),
			HasLoc:   true,
		})
		if err != nil {
			t.Fatal(err)
		}
		ev, err := b.AddVariable(factorgraph.Variable{Domain: 2, Evidence: int32(i % 2)})
		if err != nil {
			t.Fatal(err)
		}
		if err := b.AddFactor(factorgraph.FactorIsTrue, 0.2+0.05*float64(i%7), []factorgraph.VarID{q}, nil); err != nil {
			t.Fatal(err)
		}
		if err := b.AddFactor(factorgraph.FactorImply, 0.6, []factorgraph.VarID{ev, q}, []bool{false, i%3 == 0}); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestMultiWorkerResumeIsBitIdentical is the satellite-2 contract: a chain
// snapshotted under one worker width and resumed under another matches an
// uninterrupted single-worker run float-for-float, because the bucket
// partition and every PRNG stream derive from (graph, seed) alone.
func TestMultiWorkerResumeIsBitIdentical(t *testing.T) {
	g := independentGraph(t)
	const total, cut = 12, 5

	check := func(t *testing.T, want, got [][]float64) {
		t.Helper()
		for v := range want {
			for x := range want[v] {
				if want[v][x] != got[v][x] {
					t.Fatalf("marginal[%d][%d]: uninterrupted %v, resumed %v — multi-worker resume is not bit-identical",
						v, x, want[v][x], got[v][x])
				}
			}
		}
	}

	t.Run("hogwild", func(t *testing.T) {
		ref := gibbs.NewHogwild(g, 11, 1)
		if _, err := ref.Run(context.Background(), total); err != nil {
			t.Fatal(err)
		}
		want := ref.Marginals()
		ref.Close()

		// Cut at four workers, resume at two: width is not chain identity.
		first := gibbs.NewHogwild(g, 11, 4)
		if _, err := first.Run(context.Background(), cut); err != nil {
			t.Fatal(err)
		}
		cp := first.Snapshot()
		first.Close()

		resumed := gibbs.NewHogwild(g, 11, 2)
		defer resumed.Close()
		if err := resumed.Restore(cp); err != nil {
			t.Fatalf("Restore across worker widths: %v", err)
		}
		if _, err := resumed.Run(context.Background(), total-cut); err != nil {
			t.Fatal(err)
		}
		check(t, want, resumed.Marginals())
	})

	t.Run("spatial", func(t *testing.T) {
		mk := func(workers int) *gibbs.Spatial {
			s, err := gibbs.NewSpatial(g, gibbs.SpatialOptions{Instances: 2, Workers: workers, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			return s
		}
		ref := mk(1)
		if _, err := ref.Run(context.Background(), total); err != nil {
			t.Fatal(err)
		}
		want := ref.Marginals()
		ref.Close()

		first := mk(4)
		if _, err := first.Run(context.Background(), cut); err != nil {
			t.Fatal(err)
		}
		cp := first.Snapshot()
		first.Close()

		resumed := mk(2)
		defer resumed.Close()
		if err := resumed.Restore(cp); err != nil {
			t.Fatalf("Restore across worker widths: %v", err)
		}
		if _, err := resumed.Run(context.Background(), total-cut); err != nil {
			t.Fatal(err)
		}
		check(t, want, resumed.Marginals())
	})
}
