package gibbs

import (
	"context"
	"math"

	"repro/internal/factorgraph"
)

// MAPOptions configures MAP (maximum a-posteriori) inference.
type MAPOptions struct {
	// Sweeps is the number of annealing sweeps. Default 500.
	Sweeps int
	// StartTemp is the initial sampling temperature. Default 2.
	StartTemp float64
	// EndTemp is the final temperature (→ greedy). Default 0.05.
	EndTemp float64
	// Restarts runs independent annealing chains and keeps the best.
	// Default 2.
	Restarts int
	// Seed drives the chains.
	Seed int64
}

func (o MAPOptions) withDefaults() MAPOptions {
	if o.Sweeps <= 0 {
		o.Sweeps = 500
	}
	if o.StartTemp <= 0 {
		o.StartTemp = 2
	}
	if o.EndTemp <= 0 {
		o.EndTemp = 0.05
	}
	if o.Restarts <= 0 {
		o.Restarts = 2
	}
	return o
}

// MAP estimates the most probable world of a (spatial) factor graph by
// simulated annealing: Gibbs sweeps whose conditional scores are divided by
// a temperature that decays geometrically from StartTemp to EndTemp, with
// independent restarts keeping the highest-energy assignment. Evidence
// variables stay clamped. It returns the best assignment found and its
// energy (the Eq. 3 exponent; higher is more probable).
//
// Marginal inference (the samplers) is what the paper's factual scores use;
// MAP is the companion query mode MLN systems such as DeepDive and Tuffy
// also offer, useful to extract the single most likely knowledge base.
func MAP(g *factorgraph.Graph, opts MAPOptions) (factorgraph.Assignment, float64) {
	assign, energy, _ := MAPContext(context.Background(), g, opts)
	return assign, energy
}

// MAPContext is MAP under a context, checked between annealing sweeps and
// greedy-polish passes. On cancellation it returns the best assignment found
// so far — the current chain is greedily polished and considered, so even a
// run cut off mid-anneal yields a locally-optimal world — together with the
// context error to mark the result as truncated.
func MAPContext(ctx context.Context, g *factorgraph.Graph, opts MAPOptions) (factorgraph.Assignment, float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.withDefaults()
	query := queryVars(g)
	// MAP always runs on the compiled kernels: they are bit-identical to the
	// interpreted walk, and MAP has no user-facing escape hatch to plumb.
	sc := newScorer(g, false)
	var best factorgraph.Assignment
	bestE := 0.0
	decay := 1.0
	if opts.Sweeps > 1 {
		decay = math.Pow(opts.EndTemp/opts.StartTemp, 1/float64(opts.Sweeps-1))
	}
	for r := 0; r < opts.Restarts; r++ {
		assign := g.InitialAssignment()
		rng := taskRNG(opts.Seed, 0x3a9, uint64(r)+1)
		// Random initialization of query variables for chain diversity.
		for _, v := range query {
			assign.Set(v, int32(rng.Intn(int(g.Var(v).Domain))))
		}
		buf := make([]float64, maxDomain(g))
		temp := opts.StartTemp
		interrupted := false
		for sweep := 0; sweep < opts.Sweeps; sweep++ {
			if ctx.Err() != nil {
				interrupted = true
				break
			}
			for _, v := range query {
				scores := sc.conditionalScores(v, assign, buf)
				sampleTempered(assign, v, scores, temp, rng)
			}
			temp *= decay
		}
		// Final greedy polish: local moves until no single flip improves
		// (checked for cancellation between passes — each pass is bounded,
		// the pass count is not).
		greedyCtx(ctx, &sc, assign, query, buf)
		e := g.Energy(assign)
		if best == nil || e > bestE {
			best, bestE = assign.Clone(), e
		}
		if interrupted {
			return best, bestE, ctx.Err()
		}
	}
	return best, bestE, ctx.Err()
}

// sampleTempered draws from softmax(scores / temp).
func sampleTempered(assign factorgraph.Assignment, v factorgraph.VarID,
	scores []float64, temp float64, rng *prng) {
	maxS := scores[0]
	for _, s := range scores[1:] {
		if s > maxS {
			maxS = s
		}
	}
	var z float64
	for i, s := range scores {
		scores[i] = math.Exp((s - maxS) / temp)
		z += scores[i]
	}
	u := rng.Float64() * z
	var x int32
	for i, p := range scores {
		u -= p
		if u <= 0 {
			x = int32(i)
			break
		}
		if i == len(scores)-1 {
			x = int32(i)
		}
	}
	assign.Set(v, x)
}

// greedyCtx applies best-single-flip moves until a local optimum, stopping
// early between full passes if ctx fires.
func greedyCtx(ctx context.Context, sc *scorer, assign factorgraph.Assignment,
	query []factorgraph.VarID, buf []float64) {
	for ctx.Err() == nil {
		improved := false
		for _, v := range query {
			cur := assign.Get(v)
			best := cur
			if sc.g.DomainOf(v) == 2 {
				// Ties keep the current value, matching the generic argmax.
				if s0, s1 := sc.binaryConditionalScores(v, assign); s1 > s0 {
					best = 1
				} else if s0 > s1 {
					best = 0
				}
			} else {
				scores := sc.conditionalScores(v, assign, buf)
				for x := range scores {
					if scores[x] > scores[best] {
						best = int32(x)
					}
				}
			}
			if best != cur {
				assign.Set(v, best)
				improved = true
			}
		}
		if !improved {
			return
		}
	}
}
