package gibbs

import (
	"time"

	"repro/internal/factorgraph"
	"repro/internal/obs"
)

// Metrics bundles the sampler-side observability handles, resolved once
// from a registry at wiring time. All handles are nil-safe, and a nil
// *Metrics disables epoch-level instrumentation entirely: the samplers
// guard every measurement behind one `s.met != nil || s.trace != nil`
// check per epoch (or per conclique group), so the uninstrumented path
// costs a predictable branch — BenchmarkObsOverhead holds it to noise.
//
// Chunk-level counting rides the pool's existing setHook seam (the same
// one the fault-injection harness uses) instead of touching the inner
// sampling loop; see composeChunkHook.
type Metrics struct {
	// Epochs counts completed full epochs; Chunks counts pool chunks
	// executed (bumped by workers via the pool hook).
	Epochs *obs.Counter
	Chunks *obs.Counter
	// EpochDur and MergeDur time the whole epoch barrier-to-barrier and the
	// worker-delta merge inside it (seconds).
	EpochDur *obs.Histogram
	MergeDur *obs.Histogram
	// QueueDepth is the deepest pool work-channel backlog observed in the
	// last epoch — the scheduling-pressure signal for chunk-size tuning.
	QueueDepth *obs.Gauge
	// Checkpoint persistence: successful saves, failed saves, save latency.
	CkptSaves      *obs.Counter
	CkptSaveErrors *obs.Counter
	CkptSaveDur    *obs.Histogram
	// Convergence diagnostics (set when diagnostics run; see SetProgress).
	DiagMaxDelta *obs.Gauge
	DiagSpread   *obs.Gauge
	// Compiled-kernel build stats, published once when a sampler running on
	// compiled kernels attaches metrics (see publishKernelMetrics): build
	// wall time, total/generic op counts and the slab footprint in bytes.
	KernelBuildSeconds *obs.Gauge
	KernelOps          *obs.Gauge
	KernelGenericOps   *obs.Gauge
	KernelSlabBytes    *obs.Gauge
}

// NewMetrics resolves the sampler metric handles from a registry, creating
// the metrics on first use. A nil registry returns nil — the disabled mode
// the samplers treat as "no instrumentation".
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		Epochs:         r.Counter("sya_epochs_total"),
		Chunks:         r.Counter("sya_chunks_total"),
		EpochDur:       r.Histogram("sya_epoch_seconds", nil),
		MergeDur:       r.Histogram("sya_merge_seconds", nil),
		QueueDepth:     r.Gauge("sya_chunk_queue_depth"),
		CkptSaves:      r.Counter("sya_checkpoint_saves_total"),
		CkptSaveErrors: r.Counter("sya_checkpoint_save_errors_total"),
		CkptSaveDur:    r.Histogram("sya_checkpoint_save_seconds", nil),
		DiagMaxDelta:   r.Gauge("sya_diag_max_delta"),
		DiagSpread:     r.Gauge("sya_diag_spread"),

		KernelBuildSeconds: r.Gauge("sya_kernel_build_seconds"),
		KernelOps:          r.Gauge("sya_kernel_ops"),
		KernelGenericOps:   r.Gauge("sya_kernel_generic_ops"),
		KernelSlabBytes:    r.Gauge("sya_kernel_slab_bytes"),
	}
}

// composeChunkHook merges the obs chunk counter with the fault-injection
// hook on the pool's single setHook seam: the counter (if any) ticks first,
// then the injected fault (if any) runs with the chunk ordinal. Returns nil
// when both are absent so the pool skips the call entirely.
func composeChunkHook(c *obs.Counter, fault func(uint64)) func(uint64) {
	switch {
	case c == nil && fault == nil:
		return nil
	case fault == nil:
		return func(uint64) { c.Inc() }
	case c == nil:
		return fault
	default:
		return func(n uint64) {
			c.Inc()
			fault(n)
		}
	}
}

// epochObs batches one epoch's measurements so the hot loop touches plain
// struct fields and the atomic/exposition work happens once at the barrier.
type epochObs struct {
	start time.Time
	queue int // deepest work-channel backlog seen this epoch
	merge time.Duration
}

// beginEpochObs starts an epoch measurement when instrumentation is active.
func beginEpochObs(active bool) epochObs {
	var eo epochObs
	if active {
		eo.start = time.Now()
	}
	return eo
}

// noteQueue tracks the deepest pool backlog seen this epoch.
func (eo *epochObs) noteQueue(depth int) {
	if depth > eo.queue {
		eo.queue = depth
	}
}

// finishEpochObs publishes one epoch's measurements to the metrics registry
// and the trace. Either sink may be nil.
func finishEpochObs(m *Metrics, tr *obs.Trace, sampler string, epoch int, eo *epochObs) {
	dur := time.Since(eo.start)
	if m != nil {
		m.Epochs.Inc()
		m.EpochDur.Observe(dur.Seconds())
		m.MergeDur.Observe(eo.merge.Seconds())
		m.QueueDepth.Set(float64(eo.queue))
	}
	tr.Emit("inference", "epoch",
		"sampler", sampler,
		"epoch", epoch,
		"dur_ms", durMs(dur),
		"merge_ms", durMs(eo.merge),
		"queue", eo.queue,
	)
}

// saveCheckpointObs wraps a checkpoint save with timing, counters and a
// trace span. Either sink may be nil.
func saveCheckpointObs(m *Metrics, tr *obs.Trace, sampler string, epoch int, save func() error) error {
	active := m != nil || tr != nil
	var t0 time.Time
	if active {
		t0 = time.Now()
	}
	err := save()
	if !active {
		return err
	}
	dur := time.Since(t0)
	if err != nil {
		if m != nil {
			m.CkptSaveErrors.Inc()
		}
		tr.Emit("inference", "checkpoint_error", "sampler", sampler, "epoch", epoch, "error", err.Error())
		return err
	}
	if m != nil {
		m.CkptSaves.Inc()
		m.CkptSaveDur.Observe(dur.Seconds())
	}
	tr.Emit("inference", "checkpoint", "sampler", sampler, "epoch", epoch, "dur_ms", durMs(dur))
	return nil
}

// durMs renders a duration as fractional milliseconds for trace fields.
func durMs(d time.Duration) float64 { return obs.Ms(d) }

// obsState is the instrumentation state embedded by the three sampler
// variants: the metric handles, the trace sink, and the convergence
// diagnostics enabled via SetProgress. The zero value is fully disabled.
type obsState struct {
	met           *Metrics
	trace         *obs.Trace
	progressEvery int
	progressFn    func(Progress)
	diag          *diagTracker
	chains        []*counts // the sampler's chain counters, set by SetProgress
}

// obsActive reports whether per-epoch measurement should run at all — the
// single branch the uninstrumented hot path pays.
func (o *obsState) obsActive() bool { return o.met != nil || o.trace != nil }

// SetTrace implements the Sampler method for every variant via embedding.
func (o *obsState) SetTrace(tr *obs.Trace) { o.trace = tr }

// enableProgress wires the diagnostics: the samplers call it from their
// SetProgress with their own graph and chain counters.
func (o *obsState) enableProgress(g *factorgraph.Graph, every int, fn func(Progress), chains []*counts) {
	o.progressEvery, o.progressFn = every, fn
	o.chains = chains
	if every > 0 && o.diag == nil {
		o.diag = newDiagTracker(g)
	}
}

// diagDue reports whether a reading is due at this completed epoch.
func (o *obsState) diagDue(epoch int) bool {
	return o.progressEvery > 0 && epoch%o.progressEvery == 0
}

// takeDiag takes a convergence reading at epoch, records it into st, and
// publishes it to the gauges, the trace and the progress callback.
func (o *obsState) takeDiag(sampler string, epoch int, st *RunStats) {
	d := o.diag.update(epoch, o.chains)
	st.Diag, st.DiagValid = d, true
	if o.met != nil {
		o.met.DiagMaxDelta.Set(d.MaxDelta)
		o.met.DiagSpread.Set(d.Spread)
	}
	o.trace.Emit("inference", "diag",
		"sampler", sampler, "epoch", epoch, "max_delta", d.MaxDelta, "spread", d.Spread)
	if o.progressFn != nil {
		o.progressFn(Progress{Sampler: sampler, Epoch: epoch, Diag: d})
	}
}

// finalDiag takes the run's closing reading unless the last diagnostic epoch
// already covered the current one (avoiding a duplicate zero-delta reading).
func (o *obsState) finalDiag(sampler string, epoch int, st *RunStats) {
	if o.progressEvery <= 0 || (st.DiagValid && st.Diag.Epoch == epoch) {
		return
	}
	o.takeDiag(sampler, epoch, st)
}
