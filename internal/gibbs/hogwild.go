package gibbs

import (
	"context"
	"runtime"
	"time"

	"repro/internal/factorgraph"
	"repro/internal/obs"
)

// Hogwild is the DeepDive-style parallel Gibbs sampler ([46], [47] in the
// paper): query variables are randomly partitioned into W buckets, and each
// epoch the buckets sweep concurrently over one shared assignment. The
// paper's Section V observes that this strategy is fast per epoch but
// converges slowly when variables are spatially correlated, because
// dependent variables are sampled simultaneously and ignore each other's
// fresh values — exactly the deficiency the spatial sampler removes.
//
// Execution shares the spatial sampler's pooled backend: the shuffled
// query variables live in one flat slice, buckets are contiguous ranges of
// it dispatched to persistent workers, and per-worker count deltas merge
// into the sampler's counters at each epoch barrier. It also shares the
// fault-tolerant runtime: Run accepts a context checked at chunk
// boundaries, worker panics surface as a *WorkerPanicError, and
// Snapshot/Restore round-trip the chain state.
//
// The bucket partition is fixed-grain (hogwildGrain variables per bucket)
// and each bucket's PRNG stream derives from (seed, epoch, bucket index) —
// both independent of the worker count and of worker interleaving. A
// checkpoint therefore resumes the identical sampling program at any
// worker width. Whether the resulting *chain* is bit-identical depends only
// on hogwild's inherent benign races: with Workers=1, or when concurrently
// swept variables do not interact, runs are bit-identical across widths and
// across cut+resume; with dependent variables swept concurrently, hogwild
// is scheduling-dependent by design, resumed or not.
type Hogwild struct {
	g         *factorgraph.Graph
	sc        scorer
	assign    factorgraph.Assignment
	seed      int64
	workers   int
	buckets   int
	flat      []factorgraph.VarID // shuffled query variables, bucket-major
	bucketOff []int32             // len = buckets+1, ranges into flat
	counts    *counts
	pool      *Pool
	shared    *SharedPool // nil → pool is privately owned
	ownPool   bool
	run       *hogwildRun
	epochs    int
	burnIn    int
	hooks     TestHooks
	ckpt      *Checkpointer

	obsState // metrics/trace/diagnostics plane (zero: disabled)
}

// hogwildGrain is the default bucket size of the hogwild partition
// (overridable with WithChunkGrain). Buckets — not workers — are the unit of
// PRNG stream identity and of dispatch, so the sampling program is a pure
// function of (graph, seed, grain): any worker count executes the same
// buckets under the same streams. The grain keeps bench-scale graphs
// (thousands of query variables) in tens of buckets — enough chunks to load
// any realistic worker width without making the per-chunk dispatch overhead
// visible.
const hogwildGrain = 64

// SetBurnIn discards the first n chain epochs from the marginal counters.
// Call before the first RunEpochs.
func (h *Hogwild) SetBurnIn(n int) { h.burnIn = n }

// SetTestHooks installs the fault-injection plane (see TestHooks). Call
// with no run in flight.
func (h *Hogwild) SetTestHooks(hk TestHooks) {
	h.hooks = hk
	h.installChunkHook()
}

// SetMetrics attaches (or detaches, with nil) the obs metric handles; the
// chunk counter rides the pool's hook seam. Call with no run in flight.
func (h *Hogwild) SetMetrics(m *Metrics) {
	h.met = m
	h.installChunkHook()
	publishKernelMetrics(m, h.sc.k)
}

// installChunkHook (re)installs the pool chunk hook composing the obs chunk
// counter with the fault-injection hook.
func (h *Hogwild) installChunkHook() {
	var c *obs.Counter
	if h.met != nil {
		c = h.met.Chunks
	}
	h.pool.setHook(composeChunkHook(c, h.hooks.BeforeChunk))
}

// SetProgress enables convergence diagnostics every `every` epochs (see
// Sampler.SetProgress). Hogwild runs a single chain, so Spread reads 0.
func (h *Hogwild) SetProgress(every int, fn func(Progress)) {
	h.enableProgress(h.g, every, fn, []*counts{h.counts})
}

// SetCheckpointer enables periodic snapshots: during context-aware runs a
// checkpoint is written at every epoch multiple of cp.Every. nil disables.
func (h *Hogwild) SetCheckpointer(cp *Checkpointer) { h.ckpt = cp }

// NewHogwild builds a hogwild sampler; workers ≤ 0 selects GOMAXPROCS.
// Options default to the compiled-kernel scoring path (see NoKernels).
func NewHogwild(g *factorgraph.Graph, seed int64, workers int, opts ...SamplerOption) *Hogwild {
	cfg := applySamplerOptions(opts)
	query := queryVars(g)
	grain := cfg.grain
	if grain <= 0 {
		grain = hogwildGrain
	}
	// The partition depends on the graph and grain alone: fixed-grain
	// buckets, so the chunk set (and each chunk's PRNG stream) is
	// worker-count independent.
	buckets := (len(query) + grain - 1) / grain
	if buckets < 1 {
		buckets = 1
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > buckets {
		workers = buckets
	}
	pool, own := poolFor(cfg.shared, workers, 1, g)
	h := &Hogwild{
		g:       g,
		sc:      newScorer(g, cfg.noKernels),
		assign:  g.InitialAssignment(),
		seed:    seed,
		workers: workers,
		buckets: buckets,
		counts:  newCounts(g),
		pool:    pool,
		shared:  cfg.shared,
		ownPool: own,
	}
	h.run = &hogwildRun{h: h}
	// Random partition (the paper's "randomly partition the variables into
	// a set of buckets").
	rng := taskRNG(seed, 0xb0c4e7)
	perm := make([]int, len(query))
	for i := range perm {
		perm[i] = i
	}
	// Fisher–Yates shuffle.
	for i := len(perm) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	// Deal round-robin into buckets, then flatten bucket-major.
	deal := make([][]factorgraph.VarID, buckets)
	for i, pi := range perm {
		b := i % buckets
		deal[b] = append(deal[b], query[pi])
	}
	h.bucketOff = append(h.bucketOff, 0)
	for _, b := range deal {
		h.flat = append(h.flat, b...)
		h.bucketOff = append(h.bucketOff, int32(len(h.flat)))
	}
	return h
}

// Close releases the sampler's worker pool: shared pools return to their
// SharedPool cache, private ones shut down (finalizer-backed). Idempotent.
func (h *Hogwild) Close() {
	if h.ownPool {
		h.pool.Close()
		return
	}
	if h.shared != nil {
		h.pool.setHook(nil)
		h.shared.Release(h.pool, h.workers, 1, h.g)
		h.shared = nil
	}
}

// Name implements Sampler.
func (h *Hogwild) Name() string { return "hogwild" }

// Buckets reports the partition's bucket count (diagnostics: the dispatch
// and PRNG-stream granularity selected by the chunk grain).
func (h *Hogwild) Buckets() int { return h.buckets }

// TotalEpochs implements Sampler.
func (h *Hogwild) TotalEpochs() int { return h.epochs }

// hogwildRun is the pool batch descriptor: chunk lo identifies the bucket.
type hogwildRun struct {
	h     *Hogwild
	epoch uint64
	count bool
}

func (r *hogwildRun) runChunk(w *workerState, bucket, _ int32) {
	h := r.h
	// Stream identity is (seed, epoch, bucket): pinned to the chunk, never
	// to the worker that happens to execute it.
	rng := prng{state: taskSeed(h.seed, r.epoch, uint64(bucket)<<32)}
	for _, v := range h.flat[h.bucketOff[bucket]:h.bucketOff[bucket+1]] {
		x := sampleOne(&h.sc, v, h.assign, &rng, w.buf)
		if r.count {
			w.record(0, v, x)
		}
	}
}

// RunEpochs implements Sampler; a worker panic is re-raised on the caller.
func (h *Hogwild) RunEpochs(n int) {
	if _, err := h.Run(context.Background(), n); err != nil {
		panic(err)
	}
}

// Run advances the chain by up to n epochs under ctx, with the same
// cancellation, panic and checkpoint semantics as (*Spatial).Run.
func (h *Hogwild) Run(ctx context.Context, n int) (RunStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	st := RunStats{Reason: ReasonDone}
	done := ctx.Done()
	active := h.obsActive()
	for e := 0; e < n; e++ {
		if ctx.Err() != nil {
			st.Reason = reasonFromCtx(ctx)
			h.finalDiag("hogwild", h.epochs, &st)
			return st, nil
		}
		eo := beginEpochObs(active)
		h.run.epoch = uint64(h.epochs) + 1
		h.run.count = h.epochs >= h.burnIn
		h.epochs++
		for b := 0; b < h.buckets; b++ {
			h.pool.dispatch(h.run, int32(b), 0, done)
		}
		if active {
			eo.noteQueue(h.pool.queued())
		}
		h.pool.wait()
		if err := h.pool.err(); err != nil {
			h.pool.discardDeltas(0)
			st.Reason = ReasonPanic
			return st, err
		}
		var mergeStart time.Time
		if active {
			mergeStart = time.Now()
		}
		h.pool.mergeDeltas(0, h.counts)
		if active {
			eo.merge = time.Since(mergeStart)
		}
		if ctx.Err() != nil {
			// Cancellation landed mid-epoch: buckets pulled after the fire
			// were skipped, so the epoch is partial — keep its samples but
			// do not count it.
			st.Reason = reasonFromCtx(ctx)
			h.finalDiag("hogwild", h.epochs, &st)
			return st, nil
		}
		st.Epochs++
		if active {
			finishEpochObs(h.met, h.trace, "hogwild", h.epochs, &eo)
		}
		if h.diagDue(h.epochs) {
			h.takeDiag("hogwild", h.epochs, &st)
		}
		if h.ckpt != nil && h.ckpt.due(h.epochs) {
			if err := saveCheckpointObs(h.met, h.trace, "hogwild", h.epochs, func() error {
				return h.ckpt.Save(h.Snapshot())
			}); err != nil {
				return st, err
			}
		}
		if h.hooks.AfterEpoch != nil {
			h.hooks.AfterEpoch(h.epochs)
		}
	}
	h.finalDiag("hogwild", h.epochs, &st)
	return st, nil
}

// Marginals implements Sampler.
func (h *Hogwild) Marginals() [][]float64 {
	return marginalsFrom(h.g, func(v int) ([]float64, float64) {
		vals := make([]float64, len(h.counts.c[v]))
		for i, c := range h.counts.c[v] {
			vals[i] = float64(c)
		}
		return vals, float64(h.counts.totals[v])
	})
}
