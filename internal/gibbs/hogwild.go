package gibbs

import (
	"runtime"
	"sync"

	"repro/internal/factorgraph"
)

// Hogwild is the DeepDive-style parallel Gibbs sampler ([46], [47] in the
// paper): query variables are randomly partitioned into W buckets, and each
// epoch the buckets sweep concurrently over one shared assignment. The
// paper's Section V observes that this strategy is fast per epoch but
// converges slowly when variables are spatially correlated, because
// dependent variables are sampled simultaneously and ignore each other's
// fresh values — exactly the deficiency the spatial sampler removes.
type Hogwild struct {
	g       *factorgraph.Graph
	assign  factorgraph.Assignment
	seed    int64
	workers int
	buckets [][]factorgraph.VarID
	counts  []*counts // per worker, merged on demand
	epochs  int
	burnIn  int
}

// SetBurnIn discards the first n chain epochs from the marginal counters.
// Call before the first RunEpochs.
func (h *Hogwild) SetBurnIn(n int) { h.burnIn = n }

// NewHogwild builds a hogwild sampler; workers ≤ 0 selects GOMAXPROCS.
func NewHogwild(g *factorgraph.Graph, seed int64, workers int) *Hogwild {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	query := queryVars(g)
	if workers > len(query) && len(query) > 0 {
		workers = len(query)
	}
	if workers == 0 {
		workers = 1
	}
	h := &Hogwild{
		g:       g,
		assign:  g.InitialAssignment(),
		seed:    seed,
		workers: workers,
		buckets: make([][]factorgraph.VarID, workers),
		counts:  make([]*counts, workers),
	}
	// Random partition (the paper's "randomly partition the variables into
	// a set of buckets").
	rng := taskRNG(seed, 0xb0c4e7)
	perm := make([]int, len(query))
	for i := range perm {
		perm[i] = i
	}
	// Fisher–Yates shuffle.
	for i := len(perm) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i, pi := range perm {
		w := i % workers
		h.buckets[w] = append(h.buckets[w], query[pi])
	}
	for w := range h.counts {
		h.counts[w] = newCounts(g)
	}
	return h
}

// Name implements Sampler.
func (h *Hogwild) Name() string { return "hogwild" }

// TotalEpochs implements Sampler.
func (h *Hogwild) TotalEpochs() int { return h.epochs }

// RunEpochs implements Sampler.
func (h *Hogwild) RunEpochs(n int) {
	for e := 0; e < n; e++ {
		count := h.epochs+e >= h.burnIn
		var wg sync.WaitGroup
		for w := 0; w < h.workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := taskRNG(h.seed, uint64(h.epochs+e)+1, uint64(w)<<32)
				buf := make([]float64, maxDomain(h.g))
				for _, v := range h.buckets[w] {
					x := sampleOne(h.g, v, h.assign, rng, buf)
					if count {
						h.counts[w].add(v, x)
					}
				}
			}(w)
		}
		wg.Wait()
	}
	h.epochs += n
}

// Marginals implements Sampler.
func (h *Hogwild) Marginals() [][]float64 {
	return marginalsFrom(h.g, func(v int) ([]float64, float64) {
		vals := make([]float64, h.g.Var(factorgraph.VarID(v)).Domain)
		var total int64
		for _, cs := range h.counts {
			for i, c := range cs.c[v] {
				vals[i] += float64(c)
			}
			total += cs.totals[v]
		}
		return vals, float64(total)
	})
}
