package gibbs_test

// Steady-state epoch benchmarks for the pooled sampler core. The
// ReportAllocs numbers are the acceptance gauge for the persistent worker
// pool: after warm-up, an epoch of the spatial and hogwild samplers must
// run at 0 allocs/op (also enforced by the AllocsPerRun tests in
// harness_test.go). Results are recorded in BENCH_sampler.json.

import (
	"context"
	"testing"

	"repro/internal/factorgraph"
	"repro/internal/gibbs"
	"repro/internal/gibbs/testutil"
)

// benchSamplerGraph is a mid-size spatial graph (~2000 vars) comparable to
// the reduced-scale GWDB workloads of internal/bench.
func benchSamplerGraph(tb testing.TB) *factorgraph.Graph {
	tb.Helper()
	g, err := testutil.RandomGraph(testutil.Spec{
		Vars: 2000, Domain: 2, Spatial: true,
		LogicalFactors: 1500, SpatialPairs: 3500,
		EvidencePer1000: 150, Seed: 424242,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

func BenchmarkSpatialEpoch(b *testing.B) {
	g := benchSamplerGraph(b)
	s, err := gibbs.NewSpatial(g, gibbs.SpatialOptions{Levels: 6, Instances: 2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	s.RunEpochs(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RunEpochs(1)
	}
}

func BenchmarkHogwildEpoch(b *testing.B) {
	g := benchSamplerGraph(b)
	h := gibbs.NewHogwild(g, 1, 0)
	defer h.Close()
	h.RunEpochs(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.RunEpochs(1)
	}
}

func BenchmarkSequentialEpoch(b *testing.B) {
	g := benchSamplerGraph(b)
	s := gibbs.NewSequential(g, 1)
	s.RunEpochs(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RunEpochs(1)
	}
}

// BenchmarkSpatialEpochCtx is BenchmarkSpatialEpoch through the
// context-aware path with a live (never-fired) context: the difference to
// BenchmarkSpatialEpoch is the whole cost of cancellation plumbing — one
// ctx.Err() per epoch plus a select per conclique group.
func BenchmarkSpatialEpochCtx(b *testing.B) {
	g := benchSamplerGraph(b)
	s, err := gibbs.NewSpatial(g, gibbs.SpatialOptions{Levels: 6, Instances: 2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	if _, err := s.Run(ctx, 3); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(ctx, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpatialCancelLatency measures how long a Run takes to return
// after its context fires mid-run: each iteration starts a long run with an
// already-expired context budget one epoch in. The reported ns/op bounds the
// sampler's worst-case responsiveness to ^C (one chunk of work plus barrier
// teardown), not throughput.
func BenchmarkSpatialCancelLatency(b *testing.B) {
	g := benchSamplerGraph(b)
	s, err := gibbs.NewSpatial(g, gibbs.SpatialOptions{Levels: 6, Instances: 2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	s.RunEpochs(3)
	hooks := gibbs.TestHooks{}
	var cancel context.CancelFunc
	hooks.AfterEpoch = func(int) { cancel() }
	s.SetTestHooks(hooks)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var ctx context.Context
		ctx, cancel = context.WithCancel(context.Background())
		st, err := s.Run(ctx, 1<<30)
		if err != nil {
			b.Fatal(err)
		}
		if st.Reason != gibbs.ReasonCanceled {
			b.Fatalf("reason = %v, want canceled", st.Reason)
		}
		cancel()
	}
}

// BenchmarkSpatialIncremental measures the restricted sweep after one
// evidence update (the Fig. 13a latency path).
func BenchmarkSpatialIncremental(b *testing.B) {
	g := benchSamplerGraph(b)
	s, err := gibbs.NewSpatial(g, gibbs.SpatialOptions{Levels: 6, Instances: 2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	s.RunEpochs(3)
	var pin factorgraph.VarID = -1
	g.Vars(func(id factorgraph.VarID, v factorgraph.Variable) bool {
		if v.Evidence == factorgraph.NoEvidence && v.HasLoc {
			pin = id
			return false
		}
		return true
	})
	if pin < 0 {
		b.Fatal("no query variable to pin")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.UpdateEvidence(pin, int32(i%2)); err != nil {
			b.Fatal(err)
		}
		s.RunIncremental(1)
	}
}
