package gibbs_test

// The statistical correctness harness (see internal/gibbs/testutil): every
// sampler variant is validated against exact marginals on the four
// canonical graph shapes under total-variation-distance tolerances, the
// determinism contract of the package comment is pinned down, and the
// incremental path is checked against the exact conditional distribution
// of the re-pinned graph. These tests are what make rewrites of the
// sampler execution core (such as the persistent worker pool) safe.

import (
	"testing"

	"repro/internal/factorgraph"
	"repro/internal/geom"
	"repro/internal/gibbs"
	"repro/internal/gibbs/testutil"
)

// tvTol is the harness tolerance: with the epoch budgets below, sampling
// noise keeps the worst per-variable TV distance well under it.
const tvTol = 0.04

func mustGraph(t testing.TB, spec testutil.Spec) *factorgraph.Graph {
	t.Helper()
	g, err := testutil.RandomGraph(spec)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestSamplersMatchExactOnShapes is the core of the harness: all three
// samplers against exact marginals on binary/categorical ×
// logical-only/spatial graphs.
func TestSamplersMatchExactOnShapes(t *testing.T) {
	for _, shape := range testutil.Shapes(900) {
		shape := shape
		t.Run(shape.Name, func(t *testing.T) {
			g := mustGraph(t, shape.Spec)
			exact, err := testutil.Exact(g)
			if err != nil {
				t.Fatal(err)
			}
			samplers := []struct {
				name string
				run  func() [][]float64
			}{
				{"sequential", func() [][]float64 {
					s := gibbs.NewSequential(g, 17)
					s.RunEpochs(20000)
					return s.Marginals()
				}},
				{"hogwild", func() [][]float64 {
					h := gibbs.NewHogwild(g, 17, 3)
					defer h.Close()
					h.RunEpochs(25000)
					return h.Marginals()
				}},
				{"spatial", func() [][]float64 {
					s, err := gibbs.NewSpatial(g, gibbs.SpatialOptions{
						Levels: 4, Instances: 2, Seed: 17, Workers: 2,
					})
					if err != nil {
						t.Fatal(err)
					}
					defer s.Close()
					s.RunTotalEpochs(25000)
					return s.Marginals()
				}},
			}
			for _, s := range samplers {
				if d := testutil.MaxTV(s.run(), exact); d > tvTol {
					t.Errorf("%s: max TV distance %.4f > %.2f", s.name, d, tvTol)
				}
			}
		})
	}
}

// TestSequentialDeterministicOnShapes pins the determinism contract: the
// sequential chain is a pure function of (graph, seed).
func TestSequentialDeterministicOnShapes(t *testing.T) {
	for _, shape := range testutil.Shapes(901) {
		g := mustGraph(t, shape.Spec)
		run := func() [][]float64 {
			s := gibbs.NewSequential(g, 23)
			s.RunEpochs(400)
			return s.Marginals()
		}
		if d := testutil.MaxTV(run(), run()); d != 0 {
			t.Errorf("%s: same-seed sequential runs diverged by %v", shape.Name, d)
		}
	}
}

// TestSpatialWorkerCountInvariance checks the pooled scheduler does not
// bias the chain: Workers=1 and Workers=4 agree within sampling tolerance
// (they are distinct but equally valid interleavings of the same
// seed-derived per-cell streams).
func TestSpatialWorkerCountInvariance(t *testing.T) {
	g := mustGraph(t, testutil.Spec{Domain: 2, Spatial: true, Seed: 77})
	exact, err := testutil.Exact(g)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) [][]float64 {
		s, err := gibbs.NewSpatial(g, gibbs.SpatialOptions{
			Levels: 4, Instances: 2, Seed: 19, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		s.RunEpochs(12000)
		return s.Marginals()
	}
	m1, m4 := run(1), run(4)
	if d := testutil.MaxTV(m1, m4); d > tvTol {
		t.Errorf("Workers=1 vs Workers=4 diverged by %.4f", d)
	}
	for name, m := range map[string][][]float64{"Workers=1": m1, "Workers=4": m4} {
		if d := testutil.MaxTV(m, exact); d > tvTol {
			t.Errorf("%s: max TV distance %.4f from exact", name, d)
		}
	}
}

// starGraph builds a tight spatial star: a center atom linked to leaves by
// spatial pairs, leaves carrying alternating unary priors. Given the
// center, the leaves are mutually independent, so pinning the center and
// resampling only its neighbourhood must reach the exact conditional.
func starGraph(t testing.TB, leaves int) (*factorgraph.Graph, factorgraph.VarID) {
	t.Helper()
	b := factorgraph.NewBuilder()
	center, err := b.AddVariable(factorgraph.Variable{
		Domain: 2, Evidence: factorgraph.NoEvidence,
		Loc: geom.Pt(50, 50), HasLoc: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < leaves; i++ {
		leaf, err := b.AddVariable(factorgraph.Variable{
			Domain: 2, Evidence: factorgraph.NoEvidence,
			Loc: geom.Pt(50+0.3*float64(i%3+1), 50+0.3*float64(i/3+1)), HasLoc: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := b.AddSpatialPair(center, leaf, 0.6); err != nil {
			t.Fatal(err)
		}
		w := 0.4
		if i%2 == 1 {
			w = -0.4
		}
		if err := b.AddFactor(factorgraph.FactorIsTrue, w, []factorgraph.VarID{leaf}, nil); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return g, center
}

// TestIncrementalConvergesToExactConditional: UpdateEvidence + RunIncremental
// must converge to the exact conditional marginals of the re-pinned graph.
func TestIncrementalConvergesToExactConditional(t *testing.T) {
	const leaves = 6
	g, center := starGraph(t, leaves)
	s, err := gibbs.NewSpatial(g, gibbs.SpatialOptions{Levels: 4, Instances: 2, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.UpdateEvidence(center, 1); err != nil {
		t.Fatal(err)
	}
	s.RunIncremental(15000)

	// Exact reference: the same graph built with the evidence baked in.
	b := factorgraph.NewBuilder()
	cid, _ := b.AddVariable(factorgraph.Variable{
		Domain: 2, Evidence: 1, Loc: geom.Pt(50, 50), HasLoc: true,
	})
	for i := 0; i < leaves; i++ {
		leaf, _ := b.AddVariable(factorgraph.Variable{
			Domain: 2, Evidence: factorgraph.NoEvidence,
			Loc: geom.Pt(50+0.3*float64(i%3+1), 50+0.3*float64(i/3+1)), HasLoc: true,
		})
		if err := b.AddSpatialPair(cid, leaf, 0.6); err != nil {
			t.Fatal(err)
		}
		w := 0.4
		if i%2 == 1 {
			w = -0.4
		}
		if err := b.AddFactor(factorgraph.FactorIsTrue, w, []factorgraph.VarID{leaf}, nil); err != nil {
			t.Fatal(err)
		}
	}
	pinned, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	exact, err := testutil.Exact(pinned)
	if err != nil {
		t.Fatal(err)
	}
	m := s.Marginals()
	if m[center][1] != 1 {
		t.Fatalf("pinned marginal = %v", m[center])
	}
	if d := testutil.MaxTV(m, exact); d > tvTol {
		t.Errorf("incremental conditional max TV %.4f > %.2f", d, tvTol)
	}
}

// TestIncrementalAfterFullRunMatchesConditional is the serving-layer shape:
// a full batch run first (the chain and counters converge to the prior
// posterior), then evidence arrives and RunIncremental must converge to the
// *new* conditional — which requires the restricted view's counters to be
// reset at the incremental boundary, or the pre-pin samples would keep the
// served marginals anchored to the stale posterior.
func TestIncrementalAfterFullRunMatchesConditional(t *testing.T) {
	const leaves = 6
	g, center := starGraph(t, leaves)
	s, err := gibbs.NewSpatial(g, gibbs.SpatialOptions{Levels: 4, Instances: 2, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.RunEpochs(8000)
	if err := s.UpdateEvidence(center, 1); err != nil {
		t.Fatal(err)
	}
	if got := s.PendingDirty(); got != 1 {
		t.Fatalf("PendingDirty = %d, want 1", got)
	}
	s.RunIncremental(15000)
	if got := s.PendingDirty(); got != 0 {
		t.Fatalf("PendingDirty after incremental = %d, want 0", got)
	}

	// Exact reference: the same graph with the evidence baked in.
	b := factorgraph.NewBuilder()
	cid, _ := b.AddVariable(factorgraph.Variable{
		Domain: 2, Evidence: 1, Loc: geom.Pt(50, 50), HasLoc: true,
	})
	for i := 0; i < leaves; i++ {
		leaf, _ := b.AddVariable(factorgraph.Variable{
			Domain: 2, Evidence: factorgraph.NoEvidence,
			Loc: geom.Pt(50+0.3*float64(i%3+1), 50+0.3*float64(i/3+1)), HasLoc: true,
		})
		if err := b.AddSpatialPair(cid, leaf, 0.6); err != nil {
			t.Fatal(err)
		}
		w := 0.4
		if i%2 == 1 {
			w = -0.4
		}
		if err := b.AddFactor(factorgraph.FactorIsTrue, w, []factorgraph.VarID{leaf}, nil); err != nil {
			t.Fatal(err)
		}
	}
	pinned, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	exact, err := testutil.Exact(pinned)
	if err != nil {
		t.Fatal(err)
	}
	m := s.Marginals()
	if d := testutil.MaxTV(m, exact); d > tvTol {
		t.Errorf("post-run incremental conditional max TV %.4f > %.2f", d, tvTol)
	}
	// MarginalVar must agree with the bulk Marginals slice entry for entry.
	for i := range m {
		one := s.MarginalVar(factorgraph.VarID(i))
		if len(one) != len(m[i]) {
			t.Fatalf("MarginalVar(%d) len %d != %d", i, len(one), len(m[i]))
		}
		for x := range one {
			if one[x] != m[i][x] {
				t.Errorf("MarginalVar(%d)[%d] = %v, Marginals = %v", i, x, one[x], m[i][x])
			}
		}
	}
}

// twoClusterGraph places two well-separated spatial clusters with
// intra-cluster pairs only, so incremental inference after pinning an atom
// of cluster A must never touch cluster B's cells.
func twoClusterGraph(t testing.TB, perCluster int) (*factorgraph.Graph, []factorgraph.VarID, []factorgraph.VarID) {
	t.Helper()
	b := factorgraph.NewBuilder()
	// Spacing is wide enough that each cluster spans several pyramid cells
	// at the swept levels (a single-cell cluster would be merged up above
	// the swept range by the partial pyramid's sparse-quadrant rule).
	addCluster := func(cx, cy float64) []factorgraph.VarID {
		var ids []factorgraph.VarID
		for i := 0; i < perCluster; i++ {
			id, err := b.AddVariable(factorgraph.Variable{
				Domain: 2, Evidence: factorgraph.NoEvidence,
				Loc:    geom.Pt(cx+12*float64(i%3), cy+12*float64(i/3)),
				HasLoc: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		for i := 1; i < len(ids); i++ {
			if err := b.AddSpatialPair(ids[i-1], ids[i], 0.5); err != nil {
				t.Fatal(err)
			}
		}
		return ids
	}
	a := addCluster(5, 5)
	c := addCluster(165, 165)
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return g, a, c
}

// TestIncrementalSweepsOnlyDirtyCells asserts via schedule instrumentation
// that RunIncremental resamples only the dirty concliques' cells while
// RunEpochs sweeps the whole schedule.
func TestIncrementalSweepsOnlyDirtyCells(t *testing.T) {
	g, clusterA, clusterB := twoClusterGraph(t, 6)
	s, err := gibbs.NewSpatial(g, gibbs.SpatialOptions{Levels: 5, Instances: 2, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.ScheduledCells() < 2 {
		t.Fatalf("test premise broken: %d scheduled cells", s.ScheduledCells())
	}

	// A full epoch sweeps every scheduled cell.
	s.InstrumentSweeps()
	s.RunEpochs(2)
	full := s.SweptCells()
	homes := 0
	for _, v := range append(append([]factorgraph.VarID{}, clusterA...), clusterB...) {
		if key, ok := s.HomeCell(v); ok {
			homes++
			if full[key] != 2 {
				t.Errorf("full sweep hit cell %+v %d times, want 2", key, full[key])
			}
		}
	}
	if homes == 0 {
		t.Fatal("test premise broken: no atom has a scheduled home cell")
	}

	// An incremental run after pinning a cluster-A atom touches cluster-A
	// cells only.
	if err := s.UpdateEvidence(clusterA[0], 1); err != nil {
		t.Fatal(err)
	}
	s.InstrumentSweeps()
	s.RunIncremental(3)
	inc := s.SweptCells()
	if len(inc) == 0 && s.SweptTailVars() == 0 {
		t.Fatal("incremental run swept nothing")
	}
	if len(inc) >= s.ScheduledCells() {
		t.Errorf("incremental run swept %d of %d cells — not restricted", len(inc), s.ScheduledCells())
	}
	for _, v := range clusterB {
		if key, ok := s.HomeCell(v); ok {
			if n := inc[key]; n != 0 {
				t.Errorf("incremental run swept cluster-B cell %+v %d times", key, n)
			}
		}
	}
}

// TestSpatialSteadyStateEpochAllocFree pins the pooled epoch loop's
// zero-allocation property (the benchmark counterpart records numbers; this
// enforces the invariant in every test run).
func TestSpatialSteadyStateEpochAllocFree(t *testing.T) {
	g := mustGraph(t, testutil.Spec{
		Vars: 400, Domain: 2, Spatial: true,
		LogicalFactors: 300, SpatialPairs: 600, Seed: 5,
	})
	s, err := gibbs.NewSpatial(g, gibbs.SpatialOptions{Levels: 5, Instances: 2, Seed: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.RunEpochs(3) // warm the pool, touched-list capacities and sudog caches
	if allocs := testing.AllocsPerRun(5, func() { s.RunEpochs(1) }); allocs > 0 {
		t.Errorf("steady-state spatial epoch allocated %.1f times", allocs)
	}
}

// TestHogwildSteadyStateEpochAllocFree is the hogwild counterpart.
func TestHogwildSteadyStateEpochAllocFree(t *testing.T) {
	g := mustGraph(t, testutil.Spec{
		Vars: 400, Domain: 2, Spatial: true,
		LogicalFactors: 300, SpatialPairs: 600, Seed: 6,
	})
	h := gibbs.NewHogwild(g, 3, 2)
	defer h.Close()
	h.RunEpochs(3)
	if allocs := testing.AllocsPerRun(5, func() { h.RunEpochs(1) }); allocs > 0 {
		t.Errorf("steady-state hogwild epoch allocated %.1f times", allocs)
	}
}

// TestCompiledMatchesInterpretedChains is the sampler-level face of the
// kernel equivalence contract (the per-score contract lives in
// factorgraph's kernel tests): in every scheduling-deterministic
// configuration, a chain run on compiled kernels is bit-identical to the
// same chain run with NoKernels — not statistically close, float-for-float
// equal. With that established, the statistical harness transfers to the
// compiled path wholesale.
func TestCompiledMatchesInterpretedChains(t *testing.T) {
	for _, shape := range testutil.Shapes(902) {
		shape := shape
		t.Run(shape.Name, func(t *testing.T) {
			g := mustGraph(t, shape.Spec)
			samplers := []struct {
				name string
				run  func(noKernels bool) [][]float64
			}{
				{"sequential", func(nk bool) [][]float64 {
					var opts []gibbs.SamplerOption
					if nk {
						opts = append(opts, gibbs.NoKernels())
					}
					s := gibbs.NewSequential(g, 29, opts...)
					s.RunEpochs(300)
					return s.Marginals()
				}},
				{"hogwild", func(nk bool) [][]float64 {
					var opts []gibbs.SamplerOption
					if nk {
						opts = append(opts, gibbs.NoKernels())
					}
					h := gibbs.NewHogwild(g, 29, 1, opts...)
					defer h.Close()
					h.RunEpochs(300)
					return h.Marginals()
				}},
				{"spatial", func(nk bool) [][]float64 {
					s, err := gibbs.NewSpatial(g, gibbs.SpatialOptions{
						Levels: 4, Instances: 2, Seed: 29, Workers: 1, NoKernels: nk,
					})
					if err != nil {
						t.Fatal(err)
					}
					defer s.Close()
					s.RunTotalEpochs(300)
					return s.Marginals()
				}},
			}
			for _, s := range samplers {
				compiled, interpreted := s.run(false), s.run(true)
				for v := range compiled {
					for x := range compiled[v] {
						if compiled[v][x] != interpreted[v][x] {
							t.Fatalf("%s: marginal[%d][%d] compiled %v, interpreted %v — kernels are not bit-identical",
								s.name, v, x, compiled[v][x], interpreted[v][x])
						}
					}
				}
			}
		})
	}
}

// TestSamplersMatchExactWithoutKernels keeps the interpreted escape hatch
// under direct statistical coverage: all three samplers against exact
// marginals with NoKernels set, on one binary-spatial shape (the compiled
// default gets the full shape sweep above; bit-identity transfers the rest).
func TestSamplersMatchExactWithoutKernels(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running convergence property")
	}
	g := mustGraph(t, testutil.Spec{Domain: 2, Spatial: true, Seed: 903})
	exact, err := testutil.Exact(g)
	if err != nil {
		t.Fatal(err)
	}
	samplers := []struct {
		name string
		run  func() [][]float64
	}{
		{"sequential", func() [][]float64 {
			s := gibbs.NewSequential(g, 17, gibbs.NoKernels())
			s.RunEpochs(20000)
			return s.Marginals()
		}},
		{"hogwild", func() [][]float64 {
			h := gibbs.NewHogwild(g, 17, 3, gibbs.NoKernels())
			defer h.Close()
			h.RunEpochs(25000)
			return h.Marginals()
		}},
		{"spatial", func() [][]float64 {
			s, err := gibbs.NewSpatial(g, gibbs.SpatialOptions{
				Levels: 4, Instances: 2, Seed: 17, Workers: 2, NoKernels: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			s.RunTotalEpochs(25000)
			return s.Marginals()
		}},
	}
	for _, s := range samplers {
		if d := testutil.MaxTV(s.run(), exact); d > tvTol {
			t.Errorf("%s (NoKernels): max TV distance %.4f > %.2f", s.name, d, tvTol)
		}
	}
}
