package gibbs

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/factorgraph"
)

// Checkpoint is a versioned snapshot of a sampler's full chain state:
// sampler kind, PRNG lineage (the seed all per-task streams derive from,
// plus per-instance epoch indices — the (seed, instance, epoch) triple
// determines every cell stream exactly), per-instance assignments and
// sample counters, and post-construction evidence pins. Restoring a
// checkpoint into a fresh sampler of the same kind over the same graph
// resumes the chain exactly: a run interrupted at a snapshot and completed
// after resume is bit-identical to an uninterrupted run whenever the
// sampler's epochs are scheduling-deterministic. PRNG streams are pinned to
// chunk identity (cell / bucket), never to worker interleaving, so this
// holds at any worker width — the sequential sampler unconditionally, the
// spatial sampler up to its conclique independence heuristic, hogwild up to
// its benign races on concurrently swept dependent variables.
//
// The serialized form is little-endian binary: a magic/version header, the
// payload, and a CRC-32 trailer that detects torn or corrupted files.
type Checkpoint struct {
	// Sampler is the variant name ("spatial", "hogwild", "sequential").
	Sampler string
	// Seed is the sampler seed every per-task PRNG stream derives from.
	Seed int64
	// Epochs is the sampler's TotalEpochs at snapshot time.
	Epochs int64
	// Workers is the snapshotting sampler's worker width. Informational for
	// every variant: the spatial sampler's streams are per-cell and hogwild's
	// per-bucket, both independent of the width that executes them, so any
	// width resumes the same sampling program.
	Workers int64
	// RNG is the sequential chain's PRNG state (zero for the derived-stream
	// samplers, which carry no mutable PRNG state between epochs).
	RNG uint64
	// Pinned marks variables pinned by UpdateEvidence after construction
	// (nil when none; their values sit in the instance assignments).
	Pinned []bool
	// Instances holds per-chain state; one entry for hogwild/sequential, K
	// for the spatial sampler.
	Instances []InstanceState
}

// InstanceState is one chain's snapshot.
type InstanceState struct {
	// Epochs is the chain's epoch index (PRNG lineage component).
	Epochs int64
	// Assign is the chain's current assignment of every variable.
	Assign []int32
	// Counts are the accumulated per-variable per-value sample counts.
	Counts [][]int64
	// Totals are the per-variable count sums (recomputed on load).
	Totals []int64
}

// Checkpoint file format constants.
const (
	checkpointMagic = 0x53594143 // "SYAC"
	// CheckpointVersion is the current serialization version. Readers
	// reject other versions.
	CheckpointVersion = 1
)

// WriteTo serializes the checkpoint (magic, version, payload, CRC-32
// trailer) to w. It implements io.WriterTo.
func (cp *Checkpoint) WriteTo(w io.Writer) (int64, error) {
	var buf bytes.Buffer
	le := binary.LittleEndian
	put32 := func(v uint32) {
		var b [4]byte
		le.PutUint32(b[:], v)
		buf.Write(b[:])
	}
	put64 := func(v uint64) {
		var b [8]byte
		le.PutUint64(b[:], v)
		buf.Write(b[:])
	}
	put32(checkpointMagic)
	put32(CheckpointVersion)
	put32(uint32(len(cp.Sampler)))
	buf.WriteString(cp.Sampler)
	put64(uint64(cp.Seed))
	put64(uint64(cp.Epochs))
	put64(uint64(cp.Workers))
	put64(cp.RNG)
	put32(uint32(len(cp.Pinned)))
	for _, p := range cp.Pinned {
		if p {
			buf.WriteByte(1)
		} else {
			buf.WriteByte(0)
		}
	}
	put32(uint32(len(cp.Instances)))
	for _, inst := range cp.Instances {
		put64(uint64(inst.Epochs))
		put32(uint32(len(inst.Assign)))
		for _, x := range inst.Assign {
			put32(uint32(x))
		}
		put32(uint32(len(inst.Counts)))
		for _, row := range inst.Counts {
			put32(uint32(len(row)))
			for _, c := range row {
				put64(uint64(c))
			}
		}
	}
	crc := crc32.ChecksumIEEE(buf.Bytes())
	put32(crc)
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// ReadCheckpoint deserializes a checkpoint, verifying the magic, version
// and CRC-32 trailer — a torn or corrupted file fails loudly rather than
// resuming from garbage.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("gibbs: reading checkpoint: %w", err)
	}
	if len(raw) < 12 {
		return nil, fmt.Errorf("gibbs: checkpoint truncated (%d bytes)", len(raw))
	}
	le := binary.LittleEndian
	body, trailer := raw[:len(raw)-4], raw[len(raw)-4:]
	if got, want := crc32.ChecksumIEEE(body), le.Uint32(trailer); got != want {
		return nil, fmt.Errorf("gibbs: checkpoint checksum mismatch (got %08x, want %08x): torn or corrupted file", got, want)
	}
	d := &decoder{buf: body}
	if m := d.u32(); m != checkpointMagic {
		return nil, fmt.Errorf("gibbs: not a checkpoint file (magic %08x)", m)
	}
	if v := d.u32(); v != CheckpointVersion {
		return nil, fmt.Errorf("gibbs: unsupported checkpoint version %d (want %d)", v, CheckpointVersion)
	}
	cp := &Checkpoint{}
	cp.Sampler = d.str()
	cp.Seed = int64(d.u64())
	cp.Epochs = int64(d.u64())
	cp.Workers = int64(d.u64())
	cp.RNG = d.u64()
	if n := d.u32(); n > 0 {
		cp.Pinned = make([]bool, n)
		for i := range cp.Pinned {
			cp.Pinned[i] = d.byte() != 0
		}
	}
	ninst := d.u32()
	for i := uint32(0); i < ninst && d.err == nil; i++ {
		var inst InstanceState
		inst.Epochs = int64(d.u64())
		na := d.u32()
		inst.Assign = make([]int32, 0, na)
		for j := uint32(0); j < na && d.err == nil; j++ {
			inst.Assign = append(inst.Assign, int32(d.u32()))
		}
		nv := d.u32()
		inst.Counts = make([][]int64, 0, nv)
		inst.Totals = make([]int64, 0, nv)
		for j := uint32(0); j < nv && d.err == nil; j++ {
			dom := d.u32()
			row := make([]int64, 0, dom)
			var total int64
			for x := uint32(0); x < dom && d.err == nil; x++ {
				c := int64(d.u64())
				row = append(row, c)
				total += c
			}
			inst.Counts = append(inst.Counts, row)
			inst.Totals = append(inst.Totals, total)
		}
		cp.Instances = append(cp.Instances, inst)
	}
	if d.err != nil {
		return nil, fmt.Errorf("gibbs: decoding checkpoint: %w", d.err)
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("gibbs: checkpoint has %d trailing bytes", len(d.buf))
	}
	return cp, nil
}

// decoder is a cursor over the checkpoint payload; the first short read
// latches err and zero-values every later read.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.buf) < n {
		d.err = io.ErrUnexpectedEOF
		return nil
	}
	out := d.buf[:n]
	d.buf = d.buf[n:]
	return out
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) byte() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) str() string {
	n := d.u32()
	if n > 1<<16 {
		d.err = fmt.Errorf("implausible string length %d", n)
		return ""
	}
	return string(d.take(int(n)))
}

// Checkpointer periodically persists sampler snapshots with atomic
// temp-file+rename writes: a crash mid-write leaves the previous checkpoint
// intact, and a torn rename target is caught by the CRC trailer on load.
// Saves rotate a checkpoint pair: before the new snapshot lands on Path the
// previous one is moved to Path+".prev", so even a save whose rename target
// is later found corrupted (e.g. a disk hiccup after the rename) leaves a
// verified older generation for ResumeFrom to fall back to.
type Checkpointer struct {
	// Path is the checkpoint file. Writes go to Path+".tmp" first; the
	// previous generation is kept at Path+".prev".
	Path string
	// Every is the epoch interval between snapshots (≤0 → 100).
	Every int
}

// PrevPath returns the rotation target holding the previous checkpoint
// generation for a given checkpoint path.
func PrevPath(path string) string { return path + ".prev" }

// interval resolves the snapshot cadence.
func (c *Checkpointer) interval() int {
	if c.Every <= 0 {
		return 100
	}
	return c.Every
}

// due reports whether a snapshot should be written after the given epoch.
func (c *Checkpointer) due(epoch int) bool { return epoch%c.interval() == 0 }

// Save writes the snapshot atomically: serialize to Path+".tmp", fsync,
// rotate the current checkpoint to Path+".prev", then rename the temp file
// over Path. A crash between the two renames leaves only the .prev file,
// which ResumeFrom loads via its fallback.
func (c *Checkpointer) Save(cp *Checkpoint) error {
	tmp := c.Path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("gibbs: checkpoint: %w", err)
	}
	if _, err := cp.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("gibbs: checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("gibbs: checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("gibbs: checkpoint: %w", err)
	}
	if err := os.Rename(c.Path, PrevPath(c.Path)); err != nil && !os.IsNotExist(err) {
		os.Remove(tmp)
		return fmt.Errorf("gibbs: checkpoint: rotating previous: %w", err)
	}
	if err := os.Rename(tmp, c.Path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("gibbs: checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads and verifies a checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCheckpoint(f)
}

// ResumeFrom loads the checkpoint at path and restores it into s, falling
// back to the rotated previous generation (PrevPath(path)) when the primary
// is missing, torn or corrupted. It returns the path actually restored from,
// so callers can tell a fallback resume apart from a primary one. The
// sampler must be freshly constructed over the same graph with the same kind
// and seed as the snapshotting run.
//
// The fallback covers load failures only (missing file, bad magic, CRC
// mismatch, truncation): a checkpoint that reads cleanly but fails Restore
// validation — wrong sampler kind, seed or graph shape — is a configuration
// error, not corruption, and is returned as-is. When both generations are
// unreadable the primary's error is returned (os.IsNotExist when neither
// file exists).
func ResumeFrom(s Sampler, path string) (string, error) {
	cp, err := LoadCheckpoint(path)
	if err != nil {
		prev := PrevPath(path)
		pcp, perr := LoadCheckpoint(prev)
		if perr != nil {
			return "", err
		}
		if rerr := s.Restore(pcp); rerr != nil {
			return "", rerr
		}
		return prev, nil
	}
	if err := s.Restore(cp); err != nil {
		return "", err
	}
	return path, nil
}

// validateCheckpoint checks a checkpoint against the receiving sampler's
// identity and graph shape.
func validateCheckpoint(cp *Checkpoint, name string, seed int64, g *factorgraph.Graph, instances int) error {
	if cp.Sampler != name {
		return fmt.Errorf("gibbs: checkpoint is for sampler %q, not %q", cp.Sampler, name)
	}
	if cp.Seed != seed {
		return fmt.Errorf("gibbs: checkpoint seed %d does not match sampler seed %d (PRNG lineage would diverge)", cp.Seed, seed)
	}
	if len(cp.Instances) != instances {
		return fmt.Errorf("gibbs: checkpoint has %d instances, sampler has %d", len(cp.Instances), instances)
	}
	n := g.NumVars()
	if cp.Pinned != nil && len(cp.Pinned) != n {
		return fmt.Errorf("gibbs: checkpoint pins %d variables, graph has %d", len(cp.Pinned), n)
	}
	for k, inst := range cp.Instances {
		if len(inst.Assign) != n || len(inst.Counts) != n {
			return fmt.Errorf("gibbs: checkpoint instance %d covers %d/%d variables, graph has %d",
				k, len(inst.Assign), len(inst.Counts), n)
		}
		for v, row := range inst.Counts {
			if dom := int(g.Var(factorgraph.VarID(v)).Domain); len(row) != dom {
				return fmt.Errorf("gibbs: checkpoint variable %d has domain %d, graph has %d", v, len(row), dom)
			}
		}
	}
	return nil
}

// snapshotInstance clones one chain's state.
func snapshotInstance(epochs int, assign factorgraph.Assignment, cs *counts) InstanceState {
	inst := InstanceState{
		Epochs: int64(epochs),
		Assign: append([]int32(nil), assign...),
		Counts: make([][]int64, len(cs.c)),
		Totals: append([]int64(nil), cs.totals...),
	}
	for v, row := range cs.c {
		inst.Counts[v] = append([]int64(nil), row...)
	}
	return inst
}

// restoreInstance loads one chain's state (the checkpoint keeps ownership
// of nothing: all state is copied in).
func restoreInstance(inst InstanceState, assign factorgraph.Assignment, cs *counts) {
	copy(assign, inst.Assign)
	for v, row := range inst.Counts {
		copy(cs.c[v], row)
		cs.totals[v] = inst.Totals[v]
	}
}

// Snapshot implements Sampler. Call with no run in flight.
func (s *Spatial) Snapshot() *Checkpoint {
	cp := &Checkpoint{
		Sampler: s.Name(),
		Seed:    s.opts.Seed,
		Epochs:  int64(s.epochs),
		Workers: int64(s.opts.Workers),
	}
	for _, p := range s.pinned {
		if p {
			cp.Pinned = append([]bool(nil), s.pinned...)
			break
		}
	}
	for _, inst := range s.instances {
		cp.Instances = append(cp.Instances, snapshotInstance(inst.epochs, inst.assign, inst.counts))
	}
	return cp
}

// Restore implements Sampler: loads a snapshot taken by a spatial sampler
// with the same seed over the same graph. The dirty set and cached
// restricted schedules are reset (pins travel with the checkpoint; pending
// incremental work does not).
func (s *Spatial) Restore(cp *Checkpoint) error {
	if err := validateCheckpoint(cp, s.Name(), s.opts.Seed, s.g, len(s.instances)); err != nil {
		return err
	}
	s.epochs = int(cp.Epochs)
	if cp.Pinned != nil {
		copy(s.pinned, cp.Pinned)
	} else {
		for i := range s.pinned {
			s.pinned[i] = false
		}
	}
	for k, inst := range s.instances {
		inst.epochs = int(cp.Instances[k].Epochs)
		restoreInstance(cp.Instances[k], inst.assign, inst.counts)
	}
	s.dirty = map[factorgraph.VarID]bool{}
	s.incCache = map[uint64]*restrictedView{}
	return nil
}

// Snapshot implements Sampler. Call with no run in flight.
func (h *Hogwild) Snapshot() *Checkpoint {
	return &Checkpoint{
		Sampler:   h.Name(),
		Seed:      h.seed,
		Epochs:    int64(h.epochs),
		Workers:   int64(h.workers),
		Instances: []InstanceState{snapshotInstance(h.epochs, h.assign, h.counts)},
	}
}

// Restore implements Sampler. Any worker width can restore any hogwild
// snapshot: the bucket partition and per-bucket PRNG streams derive from
// the graph and seed alone (fixed-grain buckets, chunk-pinned streams), so
// the resumed run executes the identical sampling program regardless of how
// many workers carry it. cp.Workers is informational.
func (h *Hogwild) Restore(cp *Checkpoint) error {
	if err := validateCheckpoint(cp, h.Name(), h.seed, h.g, 1); err != nil {
		return err
	}
	h.epochs = int(cp.Epochs)
	restoreInstance(cp.Instances[0], h.assign, h.counts)
	return nil
}

// Snapshot implements Sampler.
func (s *Sequential) Snapshot() *Checkpoint {
	return &Checkpoint{
		Sampler:   s.Name(),
		Seed:      0, // the chain PRNG state below carries the full lineage
		Epochs:    int64(s.epochs),
		RNG:       s.rng.state,
		Instances: []InstanceState{snapshotInstance(s.epochs, s.assign, s.counts)},
	}
}

// Restore implements Sampler. The sequential chain's PRNG state is restored
// directly, so any seed's snapshot resumes exactly.
func (s *Sequential) Restore(cp *Checkpoint) error {
	if err := validateCheckpoint(cp, s.Name(), 0, s.g, 1); err != nil {
		return err
	}
	s.epochs = int(cp.Epochs)
	s.rng.state = cp.RNG
	restoreInstance(cp.Instances[0], s.assign, s.counts)
	return nil
}
