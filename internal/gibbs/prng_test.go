package gibbs

import (
	"math"
	"testing"
)

// TestIntnUniform checks the Lemire bounded-random implementation: every
// residue of several moduli (including non-powers-of-two, where the old
// next()%n had modulo bias) appears with frequency within 4σ of uniform.
func TestIntnUniform(t *testing.T) {
	const draws = 240000
	for _, n := range []int{2, 3, 5, 6, 7, 10, 100} {
		rng := taskRNG(99, uint64(n))
		hist := make([]int, n)
		for i := 0; i < draws; i++ {
			x := rng.Intn(n)
			if x < 0 || x >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, x)
			}
			hist[x]++
		}
		p := 1 / float64(n)
		sigma := math.Sqrt(float64(draws) * p * (1 - p))
		want := float64(draws) * p
		for x, c := range hist {
			if math.Abs(float64(c)-want) > 4*sigma {
				t.Errorf("Intn(%d): residue %d count %d, want %.0f ± %.0f",
					n, x, c, want, 4*sigma)
			}
		}
	}
}

// TestIntnSmallAndEdgeBounds covers degenerate bounds.
func TestIntnSmallAndEdgeBounds(t *testing.T) {
	rng := taskRNG(7)
	for i := 0; i < 1000; i++ {
		if x := rng.Intn(1); x != 0 {
			t.Fatalf("Intn(1) = %d", x)
		}
	}
	// A power-of-two bound exercises the no-rejection path exactly.
	for i := 0; i < 1000; i++ {
		if x := rng.Intn(8); x < 0 || x > 7 {
			t.Fatalf("Intn(8) = %d", x)
		}
	}
}

// TestIntnMatchesScaledFloat sanity-checks the mapping direction: with a
// large bound, Intn(n)/n must track Float64 uniformity (mean ≈ 1/2).
func TestIntnMatchesScaledFloat(t *testing.T) {
	rng := taskRNG(11)
	const n, draws = 1 << 30, 200000
	var sum float64
	for i := 0; i < draws; i++ {
		sum += float64(rng.Intn(n)) / n
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.005 {
		t.Errorf("Intn(2^30) mean %.4f, want ≈ 0.5", mean)
	}
}
