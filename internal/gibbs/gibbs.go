// Package gibbs implements the inference module of the paper (Section V):
// marginal-probability estimation over a (spatial) factor graph via Gibbs
// sampling. Three sampler variants are provided:
//
//   - Sequential: single-site sweeps in variable order — the textbook
//     baseline [46].
//   - Hogwild: DeepDive/DimmWitted-style parallel Gibbs [46], [47] that
//     randomly partitions variables across workers which sweep
//     asynchronously over a shared assignment.
//   - Spatial: the paper's Spatial Gibbs Sampling (Algorithm 1), which
//     partitions spatial atoms with an in-memory partial pyramid index,
//     sweeps conclique-by-conclique (cells within one conclique in
//     parallel), runs K sampler instances concurrently, and averages their
//     sample counts every epoch. It also supports the paper's incremental
//     inference: after evidence updates only the concliques of affected
//     cells are resampled (Fig. 13a).
//
// Randomness is seeded: parallel sections derive per-task PRNGs from
// (seed, epoch, task) with splitmix64, so the sampling schedule does not
// depend on goroutine scheduling. The sequential sampler is fully
// deterministic. The parallel samplers are deterministic up to the
// interleaving of dependent variables sampled concurrently: hogwild by
// design, and the spatial sampler when the spatial interaction radius
// exceeds the cell width at a swept level, in which case two cells of one
// conclique may hold dependent atoms — the same heuristic-independence
// trade-off the paper accepts for conclique partitioning.
package gibbs

import (
	"context"
	"math"
	"math/bits"

	"repro/internal/factorgraph"
	"repro/internal/obs"
)

// prng is a splitmix64 pseudo-random generator. Samplers create one PRNG
// per parallel task (cell, worker, epoch); unlike math/rand sources, its
// construction is a single mix rather than an O(600) seeding pass, which
// matters when the spatial sweep derives thousands of deterministic streams
// per second.
type prng struct{ state uint64 }

func (p *prng) next() uint64 {
	p.state += 0x9e3779b97f4a7c15
	z := p.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (p *prng) Float64() float64 {
	return float64(p.next()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n) using Lemire's nearly-divisionless
// bounded-random method: the 64×n product maps the generator output onto
// [0, n) without the modulo bias of next()%n, and the rare low-fraction
// rejection loop removes the residual bias exactly.
func (p *prng) Intn(n int) int {
	un := uint64(n)
	hi, lo := bits.Mul64(p.next(), un)
	if lo < un {
		thresh := -un % un // (2^64 - n) mod n
		for lo < thresh {
			hi, lo = bits.Mul64(p.next(), un)
		}
	}
	return int(hi)
}

// Sampler is the common interface of the three variants.
type Sampler interface {
	// Name identifies the variant.
	Name() string
	// RunEpochs advances the chain by n epochs, accumulating sample counts.
	// It is the uninterruptible legacy entry point; a worker panic is
	// re-raised on the caller.
	RunEpochs(n int)
	// Run advances the chain by up to n epochs under ctx: cancellation
	// returns partial marginals within one chunk boundary with a RunStats
	// describing why and how far the run got, and a worker panic returns a
	// *WorkerPanicError. nil ctx means context.Background().
	Run(ctx context.Context, n int) (RunStats, error)
	// Marginals returns the estimated marginal distribution of every
	// variable: marginals[v][x] ≈ P(v = x). Evidence variables get a point
	// mass. Before any sampling it returns uniform distributions for query
	// variables.
	Marginals() [][]float64
	// TotalEpochs reports epochs run so far.
	TotalEpochs() int
	// Snapshot captures the full chain state as a versioned checkpoint;
	// Restore loads one produced by the same sampler kind over the same
	// graph and seed, making a resumed run continue exactly where the
	// snapshot was taken.
	Snapshot() *Checkpoint
	Restore(cp *Checkpoint) error
	// SetCheckpointer enables periodic snapshots during context-aware runs
	// (nil disables).
	SetCheckpointer(cp *Checkpointer)
	// SetMetrics attaches metric handles from an obs registry (nil disables;
	// the disabled path costs one nil check per epoch). Call with no run in
	// flight.
	SetMetrics(m *Metrics)
	// SetTrace attaches a structured-trace sink for per-epoch and checkpoint
	// spans (nil disables). Call with no run in flight.
	SetTrace(tr *obs.Trace)
	// SetProgress enables convergence diagnostics every `every` epochs
	// (every ≤ 0 disables). fn, when non-nil, is called with each reading on
	// the run's goroutine; with a nil fn the readings still feed RunStats
	// and the diag gauges. Call with no run in flight.
	SetProgress(every int, fn func(Progress))
	// Close releases the sampler's worker pool, if any. Idempotent.
	Close()
}

// counts accumulates per-variable value counts.
type counts struct {
	c      [][]int64 // [var][value]
	totals []int64   // [var]
}

func newCounts(g *factorgraph.Graph) *counts {
	n := g.NumVars()
	cs := &counts{c: make([][]int64, n), totals: make([]int64, n)}
	for i := 0; i < n; i++ {
		cs.c[i] = make([]int64, g.Var(factorgraph.VarID(i)).Domain)
	}
	return cs
}

func (cs *counts) add(v factorgraph.VarID, x int32) {
	cs.c[v][x]++
	cs.totals[v]++
}

func (cs *counts) reset() {
	for i := range cs.c {
		for j := range cs.c[i] {
			cs.c[i][j] = 0
		}
		cs.totals[i] = 0
	}
}

// marginalsFrom converts counts to probabilities; evidence variables get a
// point mass and unsampled query variables a uniform distribution.
func marginalsFrom(g *factorgraph.Graph, get func(v int) ([]float64, float64)) [][]float64 {
	n := g.NumVars()
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		v := g.Var(factorgraph.VarID(i))
		m := make([]float64, v.Domain)
		if v.Evidence != factorgraph.NoEvidence {
			m[v.Evidence] = 1
			out[i] = m
			continue
		}
		vals, total := get(i)
		if total == 0 {
			for j := range m {
				m[j] = 1 / float64(v.Domain)
			}
		} else {
			for j := range m {
				m[j] = vals[j] / total
			}
		}
		out[i] = m
	}
	return out
}

// sampleOne draws a new value for v from its conditional distribution and
// stores it in the assignment. buf must have capacity ≥ the max domain; it
// is untouched on the buffer-free binary fast path. Scores come from the
// sampler's scorer — compiled kernels by default, interpreted with
// NoKernels — which are bit-identical, so every variant's chain is the same
// on either path.
func sampleOne(sc *scorer, v factorgraph.VarID, assign factorgraph.Assignment,
	rng *prng, buf []float64) int32 {
	if sc.g.DomainOf(v) == 2 {
		s0, s1 := sc.binaryConditionalScores(v, assign)
		// Max-subtracted softmax with the winner's exp folded away: the
		// larger score exponentiates to exactly 1, so only one math.Exp is
		// needed. Bit-identical to the two-exp form because IEEE negation is
		// exact: exp(s1-s0) == exp(-(s0-s1)).
		var x int32
		if d := s0 - s1; d < 0 {
			e0 := math.Exp(d)
			if rng.Float64()*(e0+1) > e0 {
				x = 1
			}
		} else if rng.Float64()*(1+math.Exp(-d)) > 1 {
			x = 1
		}
		assign.Set(v, x)
		return x
	}
	scores := sc.conditionalScores(v, assign, buf)
	// Softmax sampling with max subtraction for stability.
	maxS := scores[0]
	for _, s := range scores[1:] {
		if s > maxS {
			maxS = s
		}
	}
	var z float64
	for i, s := range scores {
		scores[i] = math.Exp(s - maxS)
		z += scores[i]
	}
	u := rng.Float64() * z
	var x int32
	for i, p := range scores {
		u -= p
		if u <= 0 {
			x = int32(i)
			break
		}
		if i == len(scores)-1 {
			x = int32(i)
		}
	}
	assign.Set(v, x)
	return x
}

// queryVars lists the variables that need sampling.
func queryVars(g *factorgraph.Graph) []factorgraph.VarID {
	var out []factorgraph.VarID
	g.Vars(func(id factorgraph.VarID, v factorgraph.Variable) bool {
		if v.Evidence == factorgraph.NoEvidence {
			out = append(out, id)
		}
		return true
	})
	return out
}

// maxDomain returns the largest variable domain (for score buffers).
func maxDomain(g *factorgraph.Graph) int {
	d := 2
	g.Vars(func(_ factorgraph.VarID, v factorgraph.Variable) bool {
		if int(v.Domain) > d {
			d = int(v.Domain)
		}
		return true
	})
	return d
}

// splitmix64 advances a seed and returns a decorrelated value; used to give
// every parallel task an independent deterministic PRNG.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// taskSeed folds a (seed, parts...) task identity into a PRNG state. Hot
// paths place a prng{state: taskSeed(...)} value on the stack instead of
// calling taskRNG, so deriving a per-cell stream costs no allocation.
func taskSeed(seed int64, parts ...uint64) uint64 {
	x := uint64(seed)
	for _, p := range parts {
		x = splitmix64(x ^ p)
	}
	return splitmix64(x)
}

// taskRNG builds a deterministic PRNG for a (seed, parts...) task identity.
func taskRNG(seed int64, parts ...uint64) *prng {
	return &prng{state: taskSeed(seed, parts...)}
}
