package gibbs

import (
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/factorgraph"
)

// Pool is the persistent worker pool behind the parallel samplers
// (DimmWitted-style long-lived execution engine). A pool is created once
// per sampler; its goroutines start lazily on the first dispatch, block on
// a work channel between batches, and own all reusable per-worker state:
//
//   - a score buffer sized to the graph's maximum domain (unused on the
//     binary fast path),
//   - per-instance count deltas plus a touched-variable list, merged into
//     the owning instance's counters at epoch barriers,
//
// so a steady-state epoch performs no allocations: issuers send chunk
// values over the channel, workers run them against pre-flattened
// schedules, and a shared WaitGroup forms the batch barrier.
//
// Fault tolerance: every chunk runs under a recover. A panicking chunk
// poisons the pool — the first panic's value and stack are captured, and
// from then on workers acknowledge chunks without executing them — so the
// batch barrier always completes and the issuer surfaces one
// *WorkerPanicError instead of deadlocking. Cancellation rides on the
// chunks themselves: a chunk dispatched with a done channel is skipped when
// the channel has fired by the time a worker pulls it, bounding a canceled
// run's latency to at most one in-flight chunk.
//
// Concurrency contract: one batch is in flight at a time (dispatch* then
// wait, all from a single issuer goroutine). The samplers uphold this —
// their RunEpochs/RunIncremental calls must not race with each other,
// which was already the seed implementation's contract.
//
// Lifetime: Close releases the worker goroutines; a finalizer backstops
// samplers that are dropped without Close (the workers hold only the
// channel and the shared fault state, never the Pool itself, so an
// abandoned pool becomes collectable and its finalizer shuts the workers
// down).
type Pool struct {
	work    chan chunk
	wg      *sync.WaitGroup // in-flight chunks of the current batch
	sh      *poolShared
	ws      []*workerState
	start   sync.Once
	stop    sync.Once
	workers int
}

// poolShared is the fault state shared by the issuer and the workers. It is
// a separate allocation so workers can hold it without keeping the Pool
// itself alive (finalizer contract).
type poolShared struct {
	// poisoned flips on the first worker panic; workers check it before
	// executing a chunk and the issuer checks it after each barrier.
	poisoned atomic.Bool
	mu       sync.Mutex
	panicErr *WorkerPanicError // first captured panic

	// Fault-injection hook state (nil in production; see TestHooks).
	hook       func(n uint64)
	hookChunks atomic.Uint64
}

// poison records the first panic and poisons the pool.
func (sh *poolShared) poison(v any, stack []byte) {
	sh.mu.Lock()
	if sh.panicErr == nil {
		sh.panicErr = &WorkerPanicError{Value: v, Stack: string(stack)}
	}
	sh.mu.Unlock()
	sh.poisoned.Store(true)
}

// err returns the captured WorkerPanicError, or nil. The error is sticky:
// a poisoned pool reports it on every subsequent batch.
func (sh *poolShared) err() error {
	if !sh.poisoned.Load() {
		return nil
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.panicErr == nil {
		return nil
	}
	return sh.panicErr
}

// chunk is one unit of dispatched work. The meaning of [lo, hi) belongs to
// the runner: a cell-index range for spatial sweeps, a bucket index for
// hogwild, ignored for serial tails. done, when non-nil, is the issuing
// run's cancellation channel: a worker that pulls a chunk whose done has
// fired acknowledges it without executing.
type chunk struct {
	cr     chunkRunner
	lo, hi int32
	done   <-chan struct{}
}

// chunkRunner is implemented by the per-sampler batch descriptors
// (spatialRun, tailRun, hogwildRun). Implementations must only touch the
// worker's own state and data owned by their chunk.
type chunkRunner interface {
	runChunk(w *workerState, lo, hi int32)
}

// workerState is one worker's private, reusable scratch. Each state is a
// separate allocation so adjacent workers do not false-share slice headers.
type workerState struct {
	buf []float64 // score buffer (categorical path), len = maxDomain
	// Per-instance count deltas: dc[k] accumulates this worker's samples
	// for instance k since the last epoch barrier, touched[k] lists the
	// variables with non-zero deltas (so merging is O(samples), not
	// O(vars×domain)). Capacity is fixed at pool construction; appends
	// never reallocate in steady state.
	dc      []*counts
	touched [][]factorgraph.VarID
}

// record accumulates one sample into the worker-local delta for instance k.
func (w *workerState) record(k int, v factorgraph.VarID, x int32) {
	d := w.dc[k]
	if d.totals[v] == 0 {
		w.touched[k] = append(w.touched[k], v)
	}
	d.c[v][x]++
	d.totals[v]++
}

// newPool sizes a pool for a sampler over g with the given worker count and
// number of sampler instances (hogwild uses one instance).
func newPool(workers, instances int, g *factorgraph.Graph) *Pool {
	if workers < 1 {
		workers = 1
	}
	nq := len(queryVars(g))
	p := &Pool{
		work:    make(chan chunk, workers*4),
		wg:      new(sync.WaitGroup),
		sh:      new(poolShared),
		workers: workers,
	}
	for i := 0; i < workers; i++ {
		w := &workerState{
			buf:     make([]float64, maxDomain(g)),
			dc:      make([]*counts, instances),
			touched: make([][]factorgraph.VarID, instances),
		}
		for k := 0; k < instances; k++ {
			w.dc[k] = newCounts(g)
			w.touched[k] = make([]factorgraph.VarID, 0, nq)
		}
		p.ws = append(p.ws, w)
	}
	runtime.SetFinalizer(p, (*Pool).Close)
	return p
}

// dispatch queues one chunk of the current batch, starting the workers on
// first use. done, when non-nil, lets parked chunks be skipped once the
// issuing run is canceled. The issuer must follow a sequence of dispatches
// with wait.
func (p *Pool) dispatch(cr chunkRunner, lo, hi int32, done <-chan struct{}) {
	p.start.Do(func() {
		for _, w := range p.ws {
			// Workers capture only the channel, the batch WaitGroup, the
			// shared fault state and their own scratch — not p — so an
			// abandoned pool can be finalized while its workers are parked.
			go poolWorker(p.work, p.wg, p.sh, w)
		}
	})
	p.wg.Add(1)
	p.work <- chunk{cr: cr, lo: lo, hi: hi, done: done}
}

// wait blocks until every dispatched chunk of the current batch completed
// (executed, skipped by cancellation, or dropped by poisoning).
func (p *Pool) wait() { p.wg.Wait() }

// queued reports the number of chunks parked in the work channel right now —
// the backlog the samplers sample into the queue-depth gauge after each
// group's dispatches.
func (p *Pool) queued() int { return len(p.work) }

// err reports the pool's sticky WorkerPanicError, if any. Call with no
// batch in flight (after wait).
func (p *Pool) err() error { return p.sh.err() }

// setHook installs (or clears) the fault-injection chunk hook. Must be
// called with no batch in flight.
func (p *Pool) setHook(h func(n uint64)) {
	p.sh.hook = h
	p.sh.hookChunks.Store(0)
}

// mergeDeltas folds every worker's count deltas for instance k into dst and
// resets them; called at epoch barriers with no batch in flight (the
// wg.Done→Wait edge orders the workers' writes before this read).
func (p *Pool) mergeDeltas(k int, dst *counts) {
	for _, w := range p.ws {
		d := w.dc[k]
		for _, v := range w.touched[k] {
			row, drow := d.c[v], dst.c[v]
			for x, c := range row {
				if c != 0 {
					drow[x] += c
					row[x] = 0
				}
			}
			dst.totals[v] += d.totals[v]
			d.totals[v] = 0
		}
		w.touched[k] = w.touched[k][:0]
	}
}

// discardDeltas drops every worker's unmerged deltas for instance k;
// used after a worker panic so a partially-executed chunk's samples never
// reach the instance counters.
func (p *Pool) discardDeltas(k int) {
	for _, w := range p.ws {
		d := w.dc[k]
		for _, v := range w.touched[k] {
			row := d.c[v]
			for x := range row {
				row[x] = 0
			}
			d.totals[v] = 0
		}
		w.touched[k] = w.touched[k][:0]
	}
}

// Close releases the worker goroutines. Safe to call multiple times; the
// pool must be idle (no batch in flight).
func (p *Pool) Close() {
	p.stop.Do(func() {
		runtime.SetFinalizer(p, nil)
		p.start.Do(func() {}) // never started ⇒ nothing to release
		close(p.work)
	})
}

func poolWorker(work chan chunk, wg *sync.WaitGroup, sh *poolShared, w *workerState) {
	for c := range work {
		runPoolChunk(sh, w, c)
		wg.Done()
	}
}

// runPoolChunk executes one chunk under the pool's fault envelope: poisoned
// pools and fired done channels skip execution (still acknowledging the
// chunk via the caller's wg.Done), and a panic — from the sampler code or
// an injected hook — is captured into the shared fault state instead of
// unwinding the worker.
func runPoolChunk(sh *poolShared, w *workerState, c chunk) {
	defer func() {
		if r := recover(); r != nil {
			sh.poison(r, debug.Stack())
		}
	}()
	if sh.poisoned.Load() {
		return
	}
	if c.done != nil {
		select {
		case <-c.done:
			return
		default:
		}
	}
	if h := sh.hook; h != nil {
		h(sh.hookChunks.Add(1) - 1)
	}
	c.cr.runChunk(w, c.lo, c.hi)
}
