package gibbs

import (
	"runtime"
	"sync"

	"repro/internal/factorgraph"
)

// Pool is the persistent worker pool behind the parallel samplers
// (DimmWitted-style long-lived execution engine). A pool is created once
// per sampler; its goroutines start lazily on the first dispatch, block on
// a work channel between batches, and own all reusable per-worker state:
//
//   - a score buffer sized to the graph's maximum domain (unused on the
//     binary fast path),
//   - per-instance count deltas plus a touched-variable list, merged into
//     the owning instance's counters at epoch barriers,
//
// so a steady-state epoch performs no allocations: issuers send chunk
// values over the channel, workers run them against pre-flattened
// schedules, and a shared WaitGroup forms the batch barrier.
//
// Concurrency contract: one batch is in flight at a time (dispatch* then
// wait, all from a single issuer goroutine). The samplers uphold this —
// their RunEpochs/RunIncremental calls must not race with each other,
// which was already the seed implementation's contract.
//
// Lifetime: Close releases the worker goroutines; a finalizer backstops
// samplers that are dropped without Close (the workers hold only the
// channel and their own state, never the Pool itself, so an abandoned pool
// becomes collectable and its finalizer shuts the workers down).
type Pool struct {
	work    chan chunk
	wg      *sync.WaitGroup // in-flight chunks of the current batch
	ws      []*workerState
	start   sync.Once
	stop    sync.Once
	workers int
}

// chunk is one unit of dispatched work. The meaning of [lo, hi) belongs to
// the runner: a cell-index range for spatial sweeps, a bucket index for
// hogwild, ignored for serial tails.
type chunk struct {
	cr     chunkRunner
	lo, hi int32
}

// chunkRunner is implemented by the per-sampler batch descriptors
// (spatialRun, tailRun, hogwildRun). Implementations must only touch the
// worker's own state and data owned by their chunk.
type chunkRunner interface {
	runChunk(w *workerState, lo, hi int32)
}

// workerState is one worker's private, reusable scratch. Each state is a
// separate allocation so adjacent workers do not false-share slice headers.
type workerState struct {
	buf []float64 // score buffer (categorical path), len = maxDomain
	// Per-instance count deltas: dc[k] accumulates this worker's samples
	// for instance k since the last epoch barrier, touched[k] lists the
	// variables with non-zero deltas (so merging is O(samples), not
	// O(vars×domain)). Capacity is fixed at pool construction; appends
	// never reallocate in steady state.
	dc      []*counts
	touched [][]factorgraph.VarID
}

// record accumulates one sample into the worker-local delta for instance k.
func (w *workerState) record(k int, v factorgraph.VarID, x int32) {
	d := w.dc[k]
	if d.totals[v] == 0 {
		w.touched[k] = append(w.touched[k], v)
	}
	d.c[v][x]++
	d.totals[v]++
}

// newPool sizes a pool for a sampler over g with the given worker count and
// number of sampler instances (hogwild uses one instance).
func newPool(workers, instances int, g *factorgraph.Graph) *Pool {
	if workers < 1 {
		workers = 1
	}
	nq := len(queryVars(g))
	p := &Pool{
		work:    make(chan chunk, workers*4),
		wg:      new(sync.WaitGroup),
		workers: workers,
	}
	for i := 0; i < workers; i++ {
		w := &workerState{
			buf:     make([]float64, maxDomain(g)),
			dc:      make([]*counts, instances),
			touched: make([][]factorgraph.VarID, instances),
		}
		for k := 0; k < instances; k++ {
			w.dc[k] = newCounts(g)
			w.touched[k] = make([]factorgraph.VarID, 0, nq)
		}
		p.ws = append(p.ws, w)
	}
	runtime.SetFinalizer(p, (*Pool).Close)
	return p
}

// dispatch queues one chunk of the current batch, starting the workers on
// first use. The issuer must follow a sequence of dispatches with wait.
func (p *Pool) dispatch(cr chunkRunner, lo, hi int32) {
	p.start.Do(func() {
		for _, w := range p.ws {
			// Workers capture only the channel, the batch WaitGroup and
			// their own state — not p — so an abandoned pool can be
			// finalized while its workers are parked.
			go poolWorker(p.work, p.wg, w)
		}
	})
	p.wg.Add(1)
	p.work <- chunk{cr: cr, lo: lo, hi: hi}
}

// wait blocks until every dispatched chunk of the current batch completed.
func (p *Pool) wait() { p.wg.Wait() }

// mergeDeltas folds every worker's count deltas for instance k into dst and
// resets them; called at epoch barriers with no batch in flight (the
// wg.Done→Wait edge orders the workers' writes before this read).
func (p *Pool) mergeDeltas(k int, dst *counts) {
	for _, w := range p.ws {
		d := w.dc[k]
		for _, v := range w.touched[k] {
			row, drow := d.c[v], dst.c[v]
			for x, c := range row {
				if c != 0 {
					drow[x] += c
					row[x] = 0
				}
			}
			dst.totals[v] += d.totals[v]
			d.totals[v] = 0
		}
		w.touched[k] = w.touched[k][:0]
	}
}

// Close releases the worker goroutines. Safe to call multiple times; the
// pool must be idle (no batch in flight).
func (p *Pool) Close() {
	p.stop.Do(func() {
		runtime.SetFinalizer(p, nil)
		p.start.Do(func() {}) // never started ⇒ nothing to release
		close(p.work)
	})
}

func poolWorker(work chan chunk, wg *sync.WaitGroup, w *workerState) {
	for c := range work {
		c.cr.runChunk(w, c.lo, c.hi)
		wg.Done()
	}
}
