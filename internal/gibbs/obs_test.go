package gibbs_test

// Observability wiring tests: metric counters, trace events, convergence
// diagnostics and checkpoint rotation must behave identically across all
// three sampler variants, and the whole layer must disappear when disabled
// (nil registry, nil trace — see BenchmarkObsOverhead).

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/factorgraph"
	"repro/internal/gibbs"
	"repro/internal/gibbs/testutil"
	"repro/internal/obs"
)

// obsGraph is a small spatial graph for the wiring tests.
func obsGraph(t *testing.T) *factorgraph.Graph {
	t.Helper()
	g, err := testutil.RandomGraph(testutil.Spec{Vars: 30, Spatial: true, Seed: 99})
	if err != nil {
		t.Fatalf("building graph: %v", err)
	}
	return g
}

// obsSamplers builds one sampler of each kind.
func obsSamplers(t *testing.T, g *factorgraph.Graph) map[string]gibbs.Sampler {
	t.Helper()
	sp, err := gibbs.NewSpatial(g, gibbs.SpatialOptions{Instances: 2, Workers: 2, Seed: 5})
	if err != nil {
		t.Fatalf("NewSpatial: %v", err)
	}
	return map[string]gibbs.Sampler{
		"spatial":    sp,
		"hogwild":    gibbs.NewHogwild(g, 5, 2),
		"sequential": gibbs.NewSequential(g, 5),
	}
}

// traceEvents parses a trace buffer back into event maps.
func traceEvents(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var ev map[string]any
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("trace line %q: %v", line, err)
		}
		out = append(out, ev)
	}
	return out
}

func TestSamplerObsWiring(t *testing.T) {
	g := obsGraph(t)
	for name, s := range obsSamplers(t, g) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			reg := obs.NewRegistry()
			var buf bytes.Buffer
			tr := obs.NewTrace(&buf)
			s.SetMetrics(gibbs.NewMetrics(reg))
			s.SetTrace(tr)
			var progress []gibbs.Progress
			s.SetProgress(2, func(p gibbs.Progress) { progress = append(progress, p) })
			ckpt := filepath.Join(t.TempDir(), "run.ckpt")
			s.SetCheckpointer(&gibbs.Checkpointer{Path: ckpt, Every: 3})

			st, err := s.Run(context.Background(), 6)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if err := tr.Close(); err != nil {
				t.Fatalf("trace: %v", err)
			}

			snap := reg.Snapshot()
			if got := snap["sya_epochs_total"]; got != 6 {
				t.Errorf("sya_epochs_total = %v, want 6", got)
			}
			if snap["sya_chunks_total"] < 6 {
				t.Errorf("sya_chunks_total = %v, want >= 6", snap["sya_chunks_total"])
			}
			// Epochs 3 and 6 are checkpoint epochs.
			if got := snap["sya_checkpoint_saves_total"]; got != 2 {
				t.Errorf("sya_checkpoint_saves_total = %v, want 2", got)
			}
			if got := snap["sya_checkpoint_save_errors_total"]; got != 0 {
				t.Errorf("sya_checkpoint_save_errors_total = %v, want 0", got)
			}

			// Diagnostics ran at epochs 2, 4 and 6; the run ends on a
			// diagnostic epoch, so no extra closing reading is taken.
			if len(progress) != 3 {
				t.Fatalf("progress callbacks = %d, want 3 (%v)", len(progress), progress)
			}
			for i, want := range []int{2, 4, 6} {
				if progress[i].Epoch != want || progress[i].Sampler != name {
					t.Errorf("progress[%d] = %+v, want epoch %d sampler %s", i, progress[i], want, name)
				}
			}
			if !st.DiagValid || st.Diag != progress[2].Diag {
				t.Errorf("RunStats diag = %+v (valid %v), want the epoch-6 reading %+v",
					st.Diag, st.DiagValid, progress[2].Diag)
			}
			if name == "spatial" {
				if st.Diag.Spread <= 0 {
					t.Errorf("spatial spread = %v, want > 0 across 2 instances", st.Diag.Spread)
				}
			} else if st.Diag.Spread != 0 {
				t.Errorf("%s spread = %v, want 0 for a single chain", name, st.Diag.Spread)
			}
			if snap["sya_diag_max_delta"] != st.Diag.MaxDelta || snap["sya_diag_spread"] != st.Diag.Spread {
				t.Errorf("diag gauges = (%v, %v), want (%v, %v)",
					snap["sya_diag_max_delta"], snap["sya_diag_spread"], st.Diag.MaxDelta, st.Diag.Spread)
			}

			events := map[string]int{}
			for _, ev := range traceEvents(t, &buf) {
				if ev["phase"] != "inference" {
					t.Errorf("unexpected phase %v in sampler trace", ev["phase"])
				}
				evName, _ := ev["event"].(string)
				events[evName]++
			}
			if events["epoch"] != 6 || events["checkpoint"] != 2 || events["diag"] != 3 {
				t.Errorf("trace events = %v, want 6 epoch / 2 checkpoint / 3 diag", events)
			}
		})
	}
}

func TestPreCanceledRunStillReportsDiag(t *testing.T) {
	g := obsGraph(t)
	for name, s := range obsSamplers(t, g) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			s.SetProgress(1, nil)
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			st, err := s.Run(ctx, 10)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if st.Reason != gibbs.ReasonCanceled {
				t.Fatalf("reason = %v, want canceled", st.Reason)
			}
			// The closing reading is still taken so callers see where the
			// chains stood — at epoch 0 with nothing sampled, all zeros.
			if !st.DiagValid || st.Diag.Epoch != 0 || st.Diag.MaxDelta != 0 {
				t.Errorf("diag = %+v (valid %v), want a zero epoch-0 reading", st.Diag, st.DiagValid)
			}
		})
	}
}

func TestCheckpointSaveRotatesPreviousGeneration(t *testing.T) {
	g := obsGraph(t)
	s := gibbs.NewSequential(g, 5)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	ck := &gibbs.Checkpointer{Path: path}

	s.RunEpochs(2)
	if err := ck.Save(s.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(gibbs.PrevPath(path)); !os.IsNotExist(err) {
		t.Fatalf("first save should not create a .prev file (err %v)", err)
	}
	s.RunEpochs(3)
	if err := ck.Save(s.Snapshot()); err != nil {
		t.Fatal(err)
	}

	cur, err := gibbs.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	prev, err := gibbs.LoadCheckpoint(gibbs.PrevPath(path))
	if err != nil {
		t.Fatal(err)
	}
	if cur.Epochs != 5 || prev.Epochs != 2 {
		t.Errorf("generations = (cur %d, prev %d) epochs, want (5, 2)", cur.Epochs, prev.Epochs)
	}
}

func TestResumeFromFallsBackToPrev(t *testing.T) {
	g := obsGraph(t)
	s := gibbs.NewSequential(g, 5)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	ck := &gibbs.Checkpointer{Path: path}
	s.RunEpochs(2)
	if err := ck.Save(s.Snapshot()); err != nil {
		t.Fatal(err)
	}
	s.RunEpochs(3)
	if err := ck.Save(s.Snapshot()); err != nil {
		t.Fatal(err)
	}

	// Healthy primary: resume uses it.
	r := gibbs.NewSequential(g, 5)
	from, err := gibbs.ResumeFrom(r, path)
	if err != nil || from != path {
		t.Fatalf("healthy resume = (%q, %v), want the primary", from, err)
	}
	if r.TotalEpochs() != 5 {
		t.Errorf("resumed epochs = %d, want 5", r.TotalEpochs())
	}

	// Corrupted primary: resume falls back to the rotated generation.
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	r = gibbs.NewSequential(g, 5)
	from, err = gibbs.ResumeFrom(r, path)
	if err != nil {
		t.Fatalf("fallback resume: %v", err)
	}
	if from != gibbs.PrevPath(path) {
		t.Errorf("fallback resumed from %q, want %q", from, gibbs.PrevPath(path))
	}
	if r.TotalEpochs() != 2 {
		t.Errorf("fallback epochs = %d, want 2", r.TotalEpochs())
	}

	// Both generations unreadable: the primary's error surfaces.
	if err := os.WriteFile(gibbs.PrevPath(path), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := gibbs.ResumeFrom(gibbs.NewSequential(g, 5), path); err == nil {
		t.Error("resume with both generations corrupt should fail")
	}

	// Neither file exists: os.IsNotExist, the "fresh run" signal.
	missing := filepath.Join(t.TempDir(), "none.ckpt")
	if _, err := gibbs.ResumeFrom(gibbs.NewSequential(g, 5), missing); !os.IsNotExist(err) {
		t.Errorf("missing resume error = %v, want os.IsNotExist", err)
	}
}

// TestResumeFallbackSkipsRestoreErrors pins the fallback boundary: a
// checkpoint that loads fine but fails Restore validation is a caller bug
// (wrong graph/seed), not corruption, so the error returns as-is instead of
// silently resuming an older generation.
func TestResumeFallbackSkipsRestoreErrors(t *testing.T) {
	g := obsGraph(t)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	ck := &gibbs.Checkpointer{Path: path}

	// .prev from the matching sampler, primary from a different variant.
	match := gibbs.NewSequential(g, 5)
	match.RunEpochs(2)
	if err := ck.Save(match.Snapshot()); err != nil {
		t.Fatal(err)
	}
	other := gibbs.NewHogwild(g, 5, 1)
	defer other.Close()
	other.RunEpochs(4)
	if err := ck.Save(other.Snapshot()); err != nil {
		t.Fatal(err)
	}

	if _, err := gibbs.ResumeFrom(gibbs.NewSequential(g, 5), path); err == nil {
		t.Error("mismatched primary should surface its Restore error, not fall back")
	}
}

// BenchmarkObsOverhead compares the fully-instrumented epoch path against
// the disabled one on the mid-size harness graph. The two sub-benchmarks
// must stay within noise of each other: with a nil registry and nil trace
// the instrumentation is one branch per epoch.
func BenchmarkObsOverhead(b *testing.B) {
	run := func(b *testing.B, instrument bool) {
		g := benchSamplerGraph(b)
		s, err := gibbs.NewSpatial(g, gibbs.SpatialOptions{Levels: 6, Instances: 2, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		if instrument {
			s.SetMetrics(gibbs.NewMetrics(obs.NewRegistry()))
		}
		ctx := context.Background()
		if _, err := s.Run(ctx, 3); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Run(ctx, 1); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, false) })
	b.Run("metrics", func(b *testing.B) { run(b, true) })
}
