package gibbs_test

// Fault-injection tests for the fault-tolerant runtime: injected worker
// panics must surface as a single *WorkerPanicError from the epoch barrier
// (no deadlocked wait, no leaked goroutines, no partial chunk reaching the
// counters), and context cancellation must stop a run at a chunk boundary
// while keeping the partial marginals. The faults are driven through the
// TestHooks plane (see internal/gibbs/testutil/faults.go) across all three
// sampler variants; the CI race job runs this file under -race.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/factorgraph"
	"repro/internal/gibbs"
	"repro/internal/gibbs/testutil"
)

// faultGraph builds the spatial harness graph used by the fault tests.
func faultGraph(t *testing.T) *factorgraph.Graph {
	t.Helper()
	g, err := testutil.RandomGraph(testutil.Spec{Vars: 24, Spatial: true, Seed: 77})
	if err != nil {
		t.Fatalf("building graph: %v", err)
	}
	return g
}

// pooledSamplers builds the two pool-backed samplers for a subtest run.
func pooledSamplers(t *testing.T, g *factorgraph.Graph) map[string]gibbs.Sampler {
	t.Helper()
	sp, err := gibbs.NewSpatial(g, gibbs.SpatialOptions{Instances: 2, Workers: 2, Seed: 11})
	if err != nil {
		t.Fatalf("NewSpatial: %v", err)
	}
	return map[string]gibbs.Sampler{
		"spatial": sp,
		"hogwild": gibbs.NewHogwild(g, 11, 2),
	}
}

type hooked interface {
	SetTestHooks(gibbs.TestHooks)
}

func TestWorkerPanicSurfacesWithoutLeakOrDeadlock(t *testing.T) {
	defer testutil.GoroutineLeakCheck(t)()
	g := faultGraph(t)
	for name, s := range pooledSamplers(t, g) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			s.(hooked).SetTestHooks(gibbs.TestHooks{BeforeChunk: testutil.PanicAtChunk(1)})

			// The epoch barrier must return (not deadlock) and surface the
			// panic as an error.
			done := make(chan struct{})
			var st gibbs.RunStats
			var err error
			go func() {
				defer close(done)
				st, err = s.Run(context.Background(), 50)
			}()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("Run deadlocked on worker panic")
			}

			var wp *gibbs.WorkerPanicError
			if !errors.As(err, &wp) {
				t.Fatalf("Run error = %v, want *WorkerPanicError", err)
			}
			if !strings.Contains(wp.Error(), "injected fault at chunk 1") {
				t.Errorf("panic value not preserved: %v", wp)
			}
			if wp.Stack == "" {
				t.Error("worker stack not captured")
			}
			if st.Reason != gibbs.ReasonPanic {
				t.Errorf("Reason = %v, want ReasonPanic", st.Reason)
			}

			// The poison is sticky: the sampler refuses to keep sampling on
			// a possibly-inconsistent chain.
			if _, err2 := s.Run(context.Background(), 1); !errors.As(err2, &wp) {
				t.Errorf("second Run error = %v, want the sticky *WorkerPanicError", err2)
			}

			// Marginals still come from the last consistent barrier: every
			// query distribution must be normalized, not torn.
			for v, m := range s.Marginals() {
				var sum float64
				for _, p := range m {
					sum += p
				}
				if sum < 0.999 || sum > 1.001 {
					t.Fatalf("marginal %d not normalized after panic: %v", v, m)
				}
			}
		})
	}
}

func TestSequentialHookPanicPropagates(t *testing.T) {
	// The sequential sampler has no worker pool to isolate: an injected
	// panic propagates on the calling goroutine, by design.
	g := faultGraph(t)
	s := gibbs.NewSequential(g, 11)
	s.SetTestHooks(gibbs.TestHooks{BeforeChunk: testutil.PanicAtChunk(3)})
	defer func() {
		if recover() == nil {
			t.Fatal("expected the injected panic to propagate")
		}
	}()
	_, _ = s.Run(context.Background(), 50)
}

func TestCancelStopsRunWithPartialMarginals(t *testing.T) {
	defer testutil.GoroutineLeakCheck(t)()
	g := faultGraph(t)
	samplers := pooledSamplers(t, g)
	samplers["sequential"] = gibbs.NewSequential(g, 11)
	for name, s := range samplers {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			const stopAt = 3
			s.(hooked).SetTestHooks(gibbs.TestHooks{AfterEpoch: testutil.CancelAtEpoch(cancel, stopAt)})

			st, err := s.Run(ctx, 1000)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if st.Reason != gibbs.ReasonCanceled {
				t.Errorf("Reason = %v, want ReasonCanceled", st.Reason)
			}
			// The cancel fires at the stopAt-th epoch's barrier; the next
			// epoch's entry check must catch it, so exactly stopAt full
			// epochs complete — far short of the 1000 requested.
			if st.Epochs != stopAt {
				t.Errorf("Epochs = %d, want %d", st.Epochs, stopAt)
			}
			for v, m := range s.Marginals() {
				var sum float64
				for _, p := range m {
					sum += p
				}
				if sum < 0.999 || sum > 1.001 {
					t.Fatalf("partial marginal %d not normalized: %v", v, m)
				}
			}

			// The sampler is not poisoned by cancellation: a fresh context
			// continues the chain.
			s.(hooked).SetTestHooks(gibbs.TestHooks{})
			st2, err := s.Run(context.Background(), 2)
			if err != nil || st2.Epochs != 2 || st2.Reason != gibbs.ReasonDone {
				t.Errorf("post-cancel Run = %+v, %v; want 2 epochs, ReasonDone", st2, err)
			}
		})
	}
}

func TestPreCanceledContextRunsNothing(t *testing.T) {
	g := faultGraph(t)
	samplers := pooledSamplers(t, g)
	samplers["sequential"] = gibbs.NewSequential(g, 11)
	for name, s := range samplers {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			st, err := s.Run(ctx, 10)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if st.Epochs != 0 || st.Reason != gibbs.ReasonCanceled {
				t.Errorf("got %+v, want 0 epochs, ReasonCanceled", st)
			}
			if s.TotalEpochs() != 0 {
				t.Errorf("TotalEpochs = %d, want 0", s.TotalEpochs())
			}
		})
	}
}

func TestDeadlineReportsReasonDeadline(t *testing.T) {
	g := faultGraph(t)
	sp, err := gibbs.NewSpatial(g, gibbs.SpatialOptions{Instances: 2, Workers: 2, Seed: 11})
	if err != nil {
		t.Fatalf("NewSpatial: %v", err)
	}
	defer sp.Close()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	st, err := sp.Run(ctx, 10)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.Reason != gibbs.ReasonDeadline {
		t.Errorf("Reason = %v, want ReasonDeadline", st.Reason)
	}
}

func TestStopReasonStrings(t *testing.T) {
	want := map[gibbs.StopReason]string{
		gibbs.ReasonDone:     "done",
		gibbs.ReasonCanceled: "canceled",
		gibbs.ReasonDeadline: "deadline",
		gibbs.ReasonPanic:    "panic",
		gibbs.StopReason(99): "unknown",
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("StopReason(%d).String() = %q, want %q", r, r.String(), s)
		}
	}
}

func TestRunIncrementalContextCancel(t *testing.T) {
	g := faultGraph(t)
	sp, err := gibbs.NewSpatial(g, gibbs.SpatialOptions{Instances: 2, Workers: 2, Seed: 11})
	if err != nil {
		t.Fatalf("NewSpatial: %v", err)
	}
	defer sp.Close()
	if _, err := sp.Run(context.Background(), 5); err != nil {
		t.Fatalf("warm-up run: %v", err)
	}
	// Pin the first query variable, then cancel the incremental resample
	// after two of its epochs.
	var pinTarget factorgraph.VarID = -1
	g.Vars(func(id factorgraph.VarID, v factorgraph.Variable) bool {
		if v.Evidence == factorgraph.NoEvidence {
			pinTarget = id
			return false
		}
		return true
	})
	if pinTarget < 0 {
		t.Fatal("no query variable to pin")
	}
	if err := sp.UpdateEvidence(pinTarget, 1); err != nil {
		t.Fatalf("UpdateEvidence: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sp.SetTestHooks(gibbs.TestHooks{AfterEpoch: testutil.CancelAtEpoch(cancel, sp.TotalEpochs()+2)})
	st, err := sp.RunIncrementalContext(ctx, 1000)
	if err != nil {
		t.Fatalf("RunIncrementalContext: %v", err)
	}
	if st.Reason != gibbs.ReasonCanceled || st.Epochs != 2 {
		t.Errorf("got %+v, want 2 epochs, ReasonCanceled", st)
	}
}
