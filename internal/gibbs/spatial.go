package gibbs

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/conclique"
	"repro/internal/factorgraph"
	"repro/internal/geom"
	"repro/internal/index/pyramid"
)

// SpatialOptions configures the spatial Gibbs sampler (paper Algorithm 1).
type SpatialOptions struct {
	// Levels is the pyramid height L. Default 8 (the paper's setting).
	Levels int
	// LocalityLevel is the deepest pyramid level swept; the paper's
	// Fig. 13b knob. Default Levels-1 (the lowest level).
	LocalityLevel int
	// Instances is K, the number of parallel sampler instances whose counts
	// are averaged each epoch. Default 2.
	Instances int
	// Capacity is the pyramid split threshold. Default 32.
	Capacity int
	// Seed drives all randomness deterministically.
	Seed int64
	// BurnIn discards the first BurnIn epochs of each instance's chain from
	// the marginal counters (they are still sampled, moving the chain).
	BurnIn int
	// Workers caps the goroutines used per conclique sweep. Default
	// GOMAXPROCS.
	Workers int
	// Space overrides the pyramid bounding space (derived from atom
	// locations when zero).
	Space geom.Rect
}

func (o SpatialOptions) withDefaults() SpatialOptions {
	if o.Levels <= 0 {
		o.Levels = 8
	}
	if o.LocalityLevel <= 0 || o.LocalityLevel > o.Levels-1 {
		o.LocalityLevel = o.Levels - 1
	}
	if o.Instances <= 0 {
		o.Instances = 2
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// instance is one of the K parallel sampler instances of Algorithm 1: its
// own Markov chain (assignment) and sample counters C_k.
type instance struct {
	assign factorgraph.Assignment
	counts *counts
	epochs int // chain epochs run (for burn-in accounting)
}

// cellTask is one cell's sampling work: the query atoms homed at this cell.
type cellTask struct {
	key  pyramid.CellKey
	vars []factorgraph.VarID
}

// levelSweep is the precomputed per-level schedule: cell tasks grouped by
// conclique (Algorithm 1 lines 10–15). Cells within one group are mutually
// non-adjacent and sampled in parallel; groups run serially.
type levelSweep struct {
	level  int
	groups [conclique.Count][]cellTask
}

// Spatial implements the paper's Spatial Gibbs Sampling (Algorithm 1). It
// spatially partitions the query atoms with a partial pyramid index, then
// every epoch sweeps the pyramid levels; within a level it processes the
// minimum conclique cover of the non-empty cells — concliques serially, the
// cells of one conclique in parallel, the variables inside a cell
// sequentially with standard Gibbs steps. K instances run concurrently and
// their counters are averaged (line 16); marginals come from the averaged
// counters.
//
// Each atom is sampled exactly once per epoch, at its *home* cell (its
// lowest maintained pyramid cell, clamped to LocalityLevel) — the Figure 6
// reading where a parent cell's partial graph is divided among its
// maintained children. Atoms whose home lies above the swept range
// (sparse, merged-away quadrants) and atoms without a location are swept
// sequentially at the end of the epoch.
type Spatial struct {
	g    *factorgraph.Graph
	opts SpatialOptions
	pyr  *pyramid.Index // nil when the graph has no located query atoms

	instances  []*instance
	sweep      []levelSweep
	nonSpatial []factorgraph.VarID // query vars without location
	residual   []factorgraph.VarID // home level above the swept range
	homeCell   map[factorgraph.VarID]pyramid.CellKey
	pinned     []bool // evidence added after construction
	dirty      map[factorgraph.VarID]bool
	epochs     int
}

// NewSpatial builds the sampler, including the pyramid index over the
// spatial query atoms and the per-level conclique schedule (Algorithm 1
// lines 5–6).
func NewSpatial(g *factorgraph.Graph, opts SpatialOptions) (*Spatial, error) {
	opts = opts.withDefaults()
	s := &Spatial{
		g:        g,
		opts:     opts,
		pinned:   make([]bool, g.NumVars()),
		dirty:    map[factorgraph.VarID]bool{},
		homeCell: map[factorgraph.VarID]pyramid.CellKey{},
	}
	var entries []pyramid.Entry
	var space geom.Rect
	first := true
	for _, v := range queryVars(g) {
		meta := g.Var(v)
		if !meta.HasLoc {
			s.nonSpatial = append(s.nonSpatial, v)
			continue
		}
		entries = append(entries, pyramid.Entry{ID: int64(v), Loc: meta.Loc})
		b := meta.Loc.Bounds()
		if first {
			space, first = b, false
		} else {
			space = space.Union(b)
		}
	}
	if opts.Space.Valid() && opts.Space.Area() > 0 {
		space = opts.Space
	} else if !first {
		// Grow slightly so boundary atoms do not land outside due to
		// floating-point division in cell addressing.
		pad := 1e-9 + 0.001*(space.Width()+space.Height())
		space = space.Expand(pad)
	}
	if len(entries) > 0 {
		pyr, err := pyramid.Build(space, entries, pyramid.Options{
			Levels:   opts.Levels,
			Capacity: opts.Capacity,
		})
		if err != nil {
			return nil, fmt.Errorf("gibbs: building pyramid: %w", err)
		}
		s.pyr = pyr
		s.buildSchedule(entries)
	}
	for k := 0; k < opts.Instances; k++ {
		s.instances = append(s.instances, &instance{
			assign: g.InitialAssignment(),
			counts: newCounts(g),
		})
	}
	return s, nil
}

// buildSchedule computes each atom's home cell and the per-level conclique
// cell tasks.
func (s *Spatial) buildSchedule(entries []pyramid.Entry) {
	levels := s.sweepLevels()
	minSwept, maxSwept := levels[0], levels[len(levels)-1]
	byCell := map[pyramid.CellKey][]factorgraph.VarID{}
	for _, e := range entries {
		v := factorgraph.VarID(e.ID)
		home := s.pyr.LowestCell(e.Loc)
		if home == nil {
			s.residual = append(s.residual, v)
			continue
		}
		hl := home.Key.Level
		if hl > maxSwept {
			hl = maxSwept
		}
		if hl < minSwept {
			s.residual = append(s.residual, v)
			continue
		}
		key := pyramid.CellKey{Level: hl, X: home.Key.X >> (home.Key.Level - hl), Y: home.Key.Y >> (home.Key.Level - hl)}
		s.homeCell[v] = key
		byCell[key] = append(byCell[key], v)
	}
	sort.Slice(s.residual, func(i, j int) bool { return s.residual[i] < s.residual[j] })
	s.sweep = nil
	for _, l := range levels {
		sw := levelSweep{level: l}
		var keys []pyramid.CellKey
		for k := range byCell {
			if k.Level == l {
				keys = append(keys, k)
			}
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].Y != keys[j].Y {
				return keys[i].Y < keys[j].Y
			}
			return keys[i].X < keys[j].X
		})
		for _, k := range keys {
			vars := byCell[k]
			sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
			q := conclique.Of(k)
			sw.groups[q] = append(sw.groups[q], cellTask{key: k, vars: vars})
		}
		s.sweep = append(s.sweep, sw)
	}
}

// Name implements Sampler.
func (s *Spatial) Name() string { return "spatial" }

// TotalEpochs implements Sampler.
func (s *Spatial) TotalEpochs() int { return s.epochs }

// Pyramid exposes the index (for tests and diagnostics).
func (s *Spatial) Pyramid() *pyramid.Index { return s.pyr }

// sweepLevels returns the pyramid levels visited per epoch: 2..LocalityLevel
// as in Algorithm 1 line 10, or the single deepest available level when the
// pyramid is too shallow for that range.
func (s *Spatial) sweepLevels() []int {
	top := s.opts.LocalityLevel
	if top > s.opts.Levels-1 {
		top = s.opts.Levels - 1
	}
	if top < 2 {
		return []int{top}
	}
	var out []int
	for l := 2; l <= top; l++ {
		out = append(out, l)
	}
	return out
}

// RunEpochs implements Sampler: each call runs n epochs on every instance,
// instances in parallel (so one call does the work of n·K raw epochs in n
// rounds, matching Algorithm 1's e = E/K).
func (s *Spatial) RunEpochs(n int) {
	for e := 0; e < n; e++ {
		var wg sync.WaitGroup
		for k, inst := range s.instances {
			wg.Add(1)
			go func(k int, inst *instance) {
				defer wg.Done()
				s.runInstanceEpoch(k, inst, nil, nil)
			}(k, inst)
		}
		wg.Wait()
	}
	s.epochs += n
}

// RunTotalEpochs runs approximately total raw epochs of work split across
// the K instances (Algorithm 1 line 4: e = E/K).
func (s *Spatial) RunTotalEpochs(total int) {
	per := (total + len(s.instances) - 1) / len(s.instances)
	if per < 1 {
		per = 1
	}
	s.RunEpochs(per)
}

// runInstanceEpoch performs one epoch for one instance. When restrict is
// non-nil, only cells whose key is in restrict are swept and extra (instead
// of the residual/non-spatial lists) is swept sequentially — the
// incremental path.
func (s *Spatial) runInstanceEpoch(k int, inst *instance, restrict map[pyramid.CellKey]bool, extra []factorgraph.VarID) {
	count := inst.epochs >= s.opts.BurnIn
	inst.epochs++
	epoch := uint64(inst.epochs)
	for _, sw := range s.sweep {
		for q := 0; q < conclique.Count; q++ {
			group := sw.groups[q]
			if restrict != nil {
				var kept []cellTask
				for _, task := range group {
					if restrict[task.key] {
						kept = append(kept, task)
					}
				}
				group = kept
			}
			if len(group) == 0 {
				continue
			}
			s.sampleGroup(k, epoch, inst, group, count)
		}
	}
	if restrict == nil {
		extra = nil
		if len(s.residual) > 0 || len(s.nonSpatial) > 0 {
			extra = append(append([]factorgraph.VarID{}, s.residual...), s.nonSpatial...)
		}
	}
	if len(extra) > 0 {
		rng := taskRNG(s.opts.Seed, uint64(k)+1, epoch<<8, 0xfeed)
		buf := make([]float64, maxDomain(s.g))
		for _, v := range extra {
			if s.pinned[v] {
				continue
			}
			x := sampleOne(s.g, v, inst.assign, rng, buf)
			if count {
				inst.counts.add(v, x)
			}
		}
	}
}

// sampleGroup samples one conclique's cells, chunked across at most
// opts.Workers goroutines; within a chunk, cells and their variables are
// swept sequentially with a deterministic per-cell PRNG.
func (s *Spatial) sampleGroup(k int, epoch uint64, inst *instance, group []cellTask, count bool) {
	workers := s.opts.Workers
	if workers > len(group) {
		workers = len(group)
	}
	sampleCells := func(tasks []cellTask, buf []float64) {
		for _, task := range tasks {
			rng := taskRNG(s.opts.Seed, uint64(k)+1, epoch<<8, uint64(task.key.Level)<<40,
				uint64(uint32(task.key.X))<<16|uint64(uint32(task.key.Y)))
			for _, v := range task.vars {
				if s.pinned[v] {
					continue
				}
				x := sampleOne(s.g, v, inst.assign, rng, buf)
				if count {
					inst.counts.add(v, x)
				}
			}
		}
	}
	if workers <= 1 {
		buf := make([]float64, maxDomain(s.g))
		sampleCells(group, buf)
		return
	}
	var wg sync.WaitGroup
	chunk := (len(group) + workers - 1) / workers
	for off := 0; off < len(group); off += chunk {
		end := off + chunk
		if end > len(group) {
			end = len(group)
		}
		wg.Add(1)
		go func(tasks []cellTask) {
			defer wg.Done()
			buf := make([]float64, maxDomain(s.g))
			sampleCells(tasks, buf)
		}(group[off:end])
	}
	wg.Wait()
}

// UpdateEvidence pins a variable to an observed value after construction
// and marks it dirty for incremental inference. Its cells' concliques are
// resampled by the next RunIncremental call.
func (s *Spatial) UpdateEvidence(v factorgraph.VarID, val int32) error {
	if int(v) >= s.g.NumVars() || v < 0 {
		return fmt.Errorf("gibbs: unknown variable %d", v)
	}
	if val < 0 || val >= s.g.Var(v).Domain {
		return fmt.Errorf("gibbs: value %d outside domain of variable %d", val, v)
	}
	s.pinned[v] = true
	s.dirty[v] = true
	for _, inst := range s.instances {
		inst.assign.Set(v, val)
		// Pinning invalidates the variable's accumulated counts.
		for x := range inst.counts.c[v] {
			inst.counts.c[v][x] = 0
		}
		inst.counts.totals[v] = 0
	}
	return nil
}

// RunIncremental resamples, for n epochs, only the cells containing dirty
// variables and their factor neighbourhoods — the paper's incremental
// inference ("the sampler is invoked on the concliques of the updated
// variables only"). The dirty set is cleared afterwards.
func (s *Spatial) RunIncremental(n int) {
	if len(s.dirty) == 0 {
		return
	}
	restrict := map[pyramid.CellKey]bool{}
	extraSet := map[factorgraph.VarID]bool{}
	touch := func(v factorgraph.VarID) {
		if home, ok := s.homeCell[v]; ok {
			restrict[home] = true
			return
		}
		if s.g.Var(v).Evidence == factorgraph.NoEvidence && !s.pinned[v] {
			extraSet[v] = true
		}
	}
	for v := range s.dirty {
		touch(v)
		// Neighbouring atoms are affected too: the updated atom's spatial
		// and logical factors cross cell borders.
		for _, u := range s.g.VarSpatialPairs(v) {
			a, b, _ := s.g.SpatialPair(u)
			other := a
			if other == v {
				other = b
			}
			touch(other)
		}
		for _, f := range s.g.VarLogicalFactors(v) {
			vars, _ := s.g.FactorVars(f)
			for _, other := range vars {
				if other != v {
					touch(other)
				}
			}
		}
	}
	var extra []factorgraph.VarID
	for v := range extraSet {
		extra = append(extra, v)
	}
	sort.Slice(extra, func(i, j int) bool { return extra[i] < extra[j] })
	for e := 0; e < n; e++ {
		var wg sync.WaitGroup
		for k, inst := range s.instances {
			wg.Add(1)
			go func(k int, inst *instance) {
				defer wg.Done()
				s.runInstanceEpoch(k, inst, restrict, extra)
			}(k, inst)
		}
		wg.Wait()
	}
	s.epochs += n
	s.dirty = map[factorgraph.VarID]bool{}
}

// Marginals implements Sampler: the average of the K instances' counters
// (Algorithm 1 lines 16 and 18–19). Variables pinned by UpdateEvidence get
// a point mass like original evidence.
func (s *Spatial) Marginals() [][]float64 {
	n := s.g.NumVars()
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		vid := factorgraph.VarID(i)
		meta := s.g.Var(vid)
		m := make([]float64, meta.Domain)
		if meta.Evidence != factorgraph.NoEvidence {
			m[meta.Evidence] = 1
			out[i] = m
			continue
		}
		if s.pinned[vid] {
			m[s.instances[0].assign.Get(vid)] = 1
			out[i] = m
			continue
		}
		var total float64
		for _, inst := range s.instances {
			for x, c := range inst.counts.c[i] {
				m[x] += float64(c)
			}
			total += float64(inst.counts.totals[i])
		}
		if total == 0 {
			for x := range m {
				m[x] = 1 / float64(meta.Domain)
			}
		} else {
			for x := range m {
				m[x] /= total
			}
		}
		out[i] = m
	}
	return out
}

// CellStats summarizes the sweep schedule for diagnostics: per swept level,
// the number of home cells and conclique cover size.
func (s *Spatial) CellStats() []string {
	if s.pyr == nil {
		return []string{"no spatial atoms"}
	}
	var out []string
	for _, sw := range s.sweep {
		cells, cover := 0, 0
		for _, g := range sw.groups {
			cells += len(g)
			if len(g) > 0 {
				cover++
			}
		}
		out = append(out, fmt.Sprintf("level %d: %d cells, %d concliques", sw.level, cells, cover))
	}
	return out
}
