package gibbs

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/conclique"
	"repro/internal/factorgraph"
	"repro/internal/geom"
	"repro/internal/index/pyramid"
	"repro/internal/obs"
)

// SpatialOptions configures the spatial Gibbs sampler (paper Algorithm 1).
type SpatialOptions struct {
	// Levels is the pyramid height L. Default 8 (the paper's setting).
	Levels int
	// LocalityLevel is the deepest pyramid level swept; the paper's
	// Fig. 13b knob. Default Levels-1 (the lowest level).
	LocalityLevel int
	// Instances is K, the number of parallel sampler instances whose counts
	// are averaged each epoch. Default 2.
	Instances int
	// Capacity is the pyramid split threshold. Default 32.
	Capacity int
	// Seed drives all randomness deterministically.
	Seed int64
	// BurnIn discards the first BurnIn epochs of each instance's chain from
	// the marginal counters (they are still sampled, moving the chain).
	BurnIn int
	// Workers caps the parallelism used per instance per conclique sweep;
	// the pool holds Workers × Instances persistent goroutines. Default
	// GOMAXPROCS.
	Workers int
	// Space overrides the pyramid bounding space (derived from atom
	// locations when zero).
	Space geom.Rect
	// NoKernels evaluates conditional scores on the interpreted graph walk
	// instead of the compiled sampling kernels (the `-no-kernels` escape
	// hatch). Results are bit-identical either way; only throughput differs.
	NoKernels bool
	// ChunkGrain caps the number of cells per dispatched chunk (0 =
	// uncapped: one chunk per worker per conclique group). Smaller chunks
	// load-balance unevenly sized cells at the cost of more dispatch
	// overhead. PRNG streams are pinned to cells, not chunks, so the chain
	// is bit-identical for any grain.
	ChunkGrain int
	// Shared, when non-nil, supplies the worker pool from a SharedPool
	// cache instead of building a private one; Close releases the pool back
	// for the next sampler of the same shape.
	Shared *SharedPool
}

func (o SpatialOptions) withDefaults() SpatialOptions {
	if o.Levels <= 0 {
		o.Levels = 8
	}
	if o.LocalityLevel <= 0 || o.LocalityLevel > o.Levels-1 {
		o.LocalityLevel = o.Levels - 1
	}
	if o.Instances <= 0 {
		o.Instances = 2
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// instance is one of the K parallel sampler instances of Algorithm 1: its
// own Markov chain (assignment) and sample counters C_k.
type instance struct {
	assign factorgraph.Assignment
	counts *counts
	epochs int // chain epochs run (for burn-in accounting)
}

// schedule is the flattened per-epoch sweep plan (Algorithm 1 lines 10–15),
// precomputed once so an epoch issues no per-group allocations: every
// scheduled variable sits in one contiguous vars slice, cells are contiguous
// ranges of it, and groups — one per (level, conclique) with at least one
// cell — are contiguous ranges of the cell array. Cells within one group
// are mutually non-adjacent and sampled in parallel; groups run serially.
type schedule struct {
	vars   []factorgraph.VarID // all scheduled home-cell atoms
	varOff []int32             // per cell: range into vars; len = numCells+1
	keys   []pyramid.CellKey   // per cell: its pyramid cell

	allCells   []int32 // identity cell-index list (full-sweep batch)
	groupOff   []int32 // per group: range into allCells; len = numGroups+1
	groupLevel []int   // per group: pyramid level (diagnostics)
}

func (sc *schedule) cellVars(ci int32) []factorgraph.VarID {
	return sc.vars[sc.varOff[ci]:sc.varOff[ci+1]]
}

// restrictedView is one cached restricted schedule of RunIncremental, keyed
// by the dirty-variable set that produced it: the dirty cells (with group
// boundaries preserved) plus the affected tail variables. Views stay valid
// across later evidence pins because pinned variables are filtered at
// execution time, never from the view (a view can only over-include).
type restrictedView struct {
	dirty    []factorgraph.VarID // sorted member list, for exact key checks
	cells    []int32
	groupOff []int32
	extra    []factorgraph.VarID
}

// matches reports whether the view was built for exactly this dirty set.
func (rv *restrictedView) matches(dirty map[factorgraph.VarID]bool) bool {
	if len(rv.dirty) != len(dirty) {
		return false
	}
	for _, v := range rv.dirty {
		if !dirty[v] {
			return false
		}
	}
	return true
}

// Spatial implements the paper's Spatial Gibbs Sampling (Algorithm 1). It
// spatially partitions the query atoms with a partial pyramid index, then
// every epoch sweeps the pyramid levels; within a level it processes the
// minimum conclique cover of the non-empty cells — concliques serially, the
// cells of one conclique in parallel, the variables inside a cell
// sequentially with standard Gibbs steps. K instances run concurrently and
// their counters are averaged (line 16); marginals come from the averaged
// counters.
//
// Execution goes through a persistent Pool: the instances' cell tasks for
// one conclique are chunked across long-lived workers, an epoch barrier
// merges the workers' count deltas into each instance's counters, and the
// flattened schedule plus per-worker scratch make a steady-state epoch
// allocation-free.
//
// Each atom is sampled exactly once per epoch, at its *home* cell (its
// lowest maintained pyramid cell, clamped to LocalityLevel) — the Figure 6
// reading where a parent cell's partial graph is divided among its
// maintained children. Atoms whose home lies above the swept range
// (sparse, merged-away quadrants) and atoms without a location are swept
// sequentially at the end of the epoch.
//
// Fault tolerance (see Run): runs accept a context checked at chunk
// boundaries, worker panics surface as a *WorkerPanicError instead of
// deadlocking the epoch barrier, and Snapshot/Restore round-trip the full
// chain state for checkpoint/resume.
type Spatial struct {
	g    *factorgraph.Graph
	sc   scorer
	opts SpatialOptions
	pyr  *pyramid.Index // nil when the graph has no located query atoms

	instances []*instance
	sched     schedule
	tail      []factorgraph.VarID // residual + non-spatial vars, serial sweep
	homeCell  map[factorgraph.VarID]pyramid.CellKey
	cellIndex map[pyramid.CellKey]int32 // cell key → schedule cell index
	pinned    []bool                    // evidence added after construction
	dirty     map[factorgraph.VarID]bool
	epochs    int

	pool     *Pool
	shared   *SharedPool // nil → pool is privately owned
	ownPool  bool
	runs     []*spatialRun // per instance, reused every batch
	tailRuns []*tailRun    // per instance, reused every epoch

	// incCache caches restricted schedule views keyed by an
	// order-independent hash of the dirty set, so repeated incremental
	// updates of the same cells sweep allocation-free.
	incCache map[uint64]*restrictedView

	hooks TestHooks     // fault-injection plane (zero in production)
	ckpt  *Checkpointer // periodic snapshot writer (nil: disabled)

	obsState // metrics/trace/diagnostics plane (zero: disabled)

	// Instrumentation (nil unless InstrumentSweeps was called): cells and
	// tail variables swept per epoch, counted once per group dispatch.
	sweptCells map[pyramid.CellKey]int
	sweptTail  int
}

// NewSpatial builds the sampler, including the pyramid index over the
// spatial query atoms, the flattened per-level conclique schedule
// (Algorithm 1 lines 5–6), and the persistent worker pool.
func NewSpatial(g *factorgraph.Graph, opts SpatialOptions) (*Spatial, error) {
	opts = opts.withDefaults()
	s := &Spatial{
		g:         g,
		sc:        newScorer(g, opts.NoKernels),
		opts:      opts,
		pinned:    make([]bool, g.NumVars()),
		dirty:     map[factorgraph.VarID]bool{},
		homeCell:  map[factorgraph.VarID]pyramid.CellKey{},
		cellIndex: map[pyramid.CellKey]int32{},
		incCache:  map[uint64]*restrictedView{},
	}
	var entries []pyramid.Entry
	var space geom.Rect
	var nonSpatial, residual []factorgraph.VarID
	first := true
	for _, v := range queryVars(g) {
		meta := g.Var(v)
		if !meta.HasLoc {
			nonSpatial = append(nonSpatial, v)
			continue
		}
		entries = append(entries, pyramid.Entry{ID: int64(v), Loc: meta.Loc})
		b := meta.Loc.Bounds()
		if first {
			space, first = b, false
		} else {
			space = space.Union(b)
		}
	}
	if opts.Space.Valid() && opts.Space.Area() > 0 {
		space = opts.Space
	} else if !first {
		// Grow slightly so boundary atoms do not land outside due to
		// floating-point division in cell addressing.
		pad := 1e-9 + 0.001*(space.Width()+space.Height())
		space = space.Expand(pad)
	}
	if len(entries) > 0 {
		pyr, err := pyramid.Build(space, entries, pyramid.Options{
			Levels:   opts.Levels,
			Capacity: opts.Capacity,
		})
		if err != nil {
			return nil, fmt.Errorf("gibbs: building pyramid: %w", err)
		}
		s.pyr = pyr
		residual = s.buildSchedule(entries)
	}
	sort.Slice(residual, func(i, j int) bool { return residual[i] < residual[j] })
	s.tail = append(residual, nonSpatial...)
	s.pool, s.ownPool = poolFor(opts.Shared, opts.Workers*opts.Instances, opts.Instances, g)
	s.shared = opts.Shared
	for k := 0; k < opts.Instances; k++ {
		inst := &instance{
			assign: g.InitialAssignment(),
			counts: newCounts(g),
		}
		s.instances = append(s.instances, inst)
		s.runs = append(s.runs, &spatialRun{s: s, inst: inst, k: k})
		s.tailRuns = append(s.tailRuns, &tailRun{s: s, inst: inst, k: k})
	}
	return s, nil
}

// Close releases the sampler's worker pool: shared pools return to their
// SharedPool cache, private ones shut down. Optional — abandoned private
// pools are cleaned up by a finalizer — but deterministic for callers that
// create many samplers. Idempotent.
func (s *Spatial) Close() {
	if s.ownPool {
		s.pool.Close()
		return
	}
	if s.shared != nil {
		s.pool.setHook(nil)
		s.shared.Release(s.pool, s.opts.Workers*s.opts.Instances, s.opts.Instances, s.g)
		s.shared = nil
	}
}

// SetTestHooks installs the fault-injection plane (see TestHooks). Call
// with no run in flight.
func (s *Spatial) SetTestHooks(h TestHooks) {
	s.hooks = h
	s.installChunkHook()
}

// SetMetrics attaches (or detaches, with nil) the obs metric handles. The
// chunk counter rides the pool's hook seam, composed with any installed
// fault-injection hook. Call with no run in flight.
func (s *Spatial) SetMetrics(m *Metrics) {
	s.met = m
	s.installChunkHook()
	publishKernelMetrics(m, s.sc.k)
}

// installChunkHook (re)installs the pool chunk hook composing the obs chunk
// counter with the fault-injection hook.
func (s *Spatial) installChunkHook() {
	var c *obs.Counter
	if s.met != nil {
		c = s.met.Chunks
	}
	s.pool.setHook(composeChunkHook(c, s.hooks.BeforeChunk))
}

// SetProgress enables convergence diagnostics every `every` epochs over the
// K instances' counters (see Sampler.SetProgress).
func (s *Spatial) SetProgress(every int, fn func(Progress)) {
	chains := make([]*counts, 0, len(s.instances))
	for _, inst := range s.instances {
		chains = append(chains, inst.counts)
	}
	s.enableProgress(s.g, every, fn, chains)
}

// SetCheckpointer enables periodic snapshots: during context-aware runs a
// checkpoint is written at every epoch multiple of cp.Every. nil disables.
func (s *Spatial) SetCheckpointer(cp *Checkpointer) { s.ckpt = cp }

// buildSchedule computes each atom's home cell and flattens the per-level
// conclique cell tasks into the contiguous schedule arrays. It returns the
// atoms whose home lies above the swept range.
func (s *Spatial) buildSchedule(entries []pyramid.Entry) (residual []factorgraph.VarID) {
	levels := s.sweepLevels()
	minSwept, maxSwept := levels[0], levels[len(levels)-1]
	byCell := map[pyramid.CellKey][]factorgraph.VarID{}
	for _, e := range entries {
		v := factorgraph.VarID(e.ID)
		home := s.pyr.LowestCell(e.Loc)
		if home == nil {
			residual = append(residual, v)
			continue
		}
		hl := home.Key.Level
		if hl > maxSwept {
			hl = maxSwept
		}
		if hl < minSwept {
			residual = append(residual, v)
			continue
		}
		key := pyramid.CellKey{Level: hl, X: home.Key.X >> (home.Key.Level - hl), Y: home.Key.Y >> (home.Key.Level - hl)}
		s.homeCell[v] = key
		byCell[key] = append(byCell[key], v)
	}
	sc := &s.sched
	sc.varOff = append(sc.varOff, 0)
	for _, l := range levels {
		var keys []pyramid.CellKey
		for k := range byCell {
			if k.Level == l {
				keys = append(keys, k)
			}
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].Y != keys[j].Y {
				return keys[i].Y < keys[j].Y
			}
			return keys[i].X < keys[j].X
		})
		for q := conclique.ID(0); q < conclique.Count; q++ {
			start := int32(len(sc.keys))
			for _, k := range keys {
				if conclique.Of(k) != q {
					continue
				}
				vars := byCell[k]
				sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
				s.cellIndex[k] = int32(len(sc.keys))
				sc.keys = append(sc.keys, k)
				sc.vars = append(sc.vars, vars...)
				sc.varOff = append(sc.varOff, int32(len(sc.vars)))
			}
			if int32(len(sc.keys)) == start {
				continue // empty (level, conclique) groups are dropped
			}
			sc.groupOff = append(sc.groupOff, start)
			sc.groupLevel = append(sc.groupLevel, l)
		}
	}
	sc.groupOff = append(sc.groupOff, int32(len(sc.keys)))
	sc.allCells = make([]int32, len(sc.keys))
	for i := range sc.allCells {
		sc.allCells[i] = int32(i)
	}
	return residual
}

// Name implements Sampler.
func (s *Spatial) Name() string { return "spatial" }

// TotalEpochs implements Sampler.
func (s *Spatial) TotalEpochs() int { return s.epochs }

// Pyramid exposes the index (for tests and diagnostics).
func (s *Spatial) Pyramid() *pyramid.Index { return s.pyr }

// sweepLevels returns the pyramid levels visited per epoch: 2..LocalityLevel
// as in Algorithm 1 line 10, or the single deepest available level when the
// pyramid is too shallow for that range.
func (s *Spatial) sweepLevels() []int {
	top := s.opts.LocalityLevel
	if top > s.opts.Levels-1 {
		top = s.opts.Levels - 1
	}
	if top < 2 {
		return []int{top}
	}
	var out []int
	for l := 2; l <= top; l++ {
		out = append(out, l)
	}
	return out
}

// spatialRun describes one instance's share of the batch currently in
// flight: which cells to sweep, under which epoch identity. One descriptor
// per instance is allocated at construction and mutated only between
// batches, so dispatching is allocation-free.
type spatialRun struct {
	s     *Spatial
	inst  *instance
	k     int
	epoch uint64
	count bool
	cells []int32 // cell-index list the chunk [lo, hi) ranges refer to
}

func (r *spatialRun) runChunk(w *workerState, lo, hi int32) {
	s := r.s
	for _, ci := range r.cells[lo:hi] {
		key := s.sched.keys[ci]
		rng := prng{state: taskSeed(s.opts.Seed, uint64(r.k)+1, r.epoch<<8,
			uint64(key.Level)<<40, uint64(uint32(key.X))<<16|uint64(uint32(key.Y)))}
		for _, v := range s.sched.cellVars(ci) {
			if s.pinned[v] {
				continue
			}
			x := sampleOne(&s.sc, v, r.inst.assign, &rng, w.buf)
			if r.count {
				w.record(r.k, v, x)
			}
		}
	}
}

// tailRun sweeps one instance's residual + non-spatial variables (or the
// incremental extra list) sequentially, as one chunk.
type tailRun struct {
	s     *Spatial
	inst  *instance
	k     int
	epoch uint64
	count bool
	vars  []factorgraph.VarID
}

func (r *tailRun) runChunk(w *workerState, _, _ int32) {
	s := r.s
	rng := prng{state: taskSeed(s.opts.Seed, uint64(r.k)+1, r.epoch<<8, 0xfeed)}
	for _, v := range r.vars {
		if s.pinned[v] {
			continue
		}
		x := sampleOne(&s.sc, v, r.inst.assign, &rng, w.buf)
		if r.count {
			w.record(r.k, v, x)
		}
	}
}

// RunEpochs implements Sampler: each call runs n epochs on every instance,
// instances in parallel (so one call does the work of n·K raw epochs in n
// rounds, matching Algorithm 1's e = E/K). It is the uninterruptible legacy
// entry point: a worker panic (impossible unless sampler internals or an
// injected fault panic) is re-raised on the caller.
func (s *Spatial) RunEpochs(n int) {
	if _, err := s.Run(context.Background(), n); err != nil {
		panic(err)
	}
}

// Run advances every instance by up to n epochs under ctx. Cancellation is
// chunk-granular: parked chunks are skipped once ctx fires and the call
// returns after at most one in-flight chunk per worker, keeping the partial
// samples accumulated so far. A worker panic returns a *WorkerPanicError
// (the sampler is then poisoned; see WorkerPanicError). A checkpoint write
// failure returns the write error. nil ctx means context.Background().
func (s *Spatial) Run(ctx context.Context, n int) (RunStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return s.sweepEpochs(ctx, n, s.sched.allCells, s.sched.groupOff, s.tail)
}

// RunTotalEpochs runs approximately total raw epochs of work split across
// the K instances (Algorithm 1 line 4: e = E/K).
func (s *Spatial) RunTotalEpochs(total int) {
	if _, err := s.RunTotal(context.Background(), total); err != nil {
		panic(err)
	}
}

// RunTotal is the context-aware RunTotalEpochs: total raw epochs split
// across the K instances.
func (s *Spatial) RunTotal(ctx context.Context, total int) (RunStats, error) {
	per := (total + len(s.instances) - 1) / len(s.instances)
	if per < 1 {
		per = 1
	}
	return s.Run(ctx, per)
}

// sweepEpochs runs up to n epochs over the given cell batch: groups
// serially, each group's cells chunked across the pool for all K instances
// at once, then the serial tail, then the epoch barrier where worker count
// deltas merge into the instances' counters. The full sweep passes the
// precomputed schedule; RunIncremental passes its restricted view. Nothing
// in the per-epoch loop allocates.
//
// Interruption points: ctx is checked before each epoch and between
// conclique groups, and workers skip parked chunks once ctx fires. An
// epoch cut short by cancellation keeps its merged partial samples but is
// not counted in RunStats.Epochs (its PRNG epoch identity is consumed). On
// a worker panic the pending worker deltas are discarded so no partial
// chunk reaches the counters, and the pool's sticky *WorkerPanicError is
// returned.
func (s *Spatial) sweepEpochs(ctx context.Context, n int, cells, groupOff []int32, tail []factorgraph.VarID) (RunStats, error) {
	st := RunStats{Reason: ReasonDone}
	done := ctx.Done()
	active := s.obsActive()
	for e := 0; e < n; e++ {
		if ctx.Err() != nil {
			st.Reason = reasonFromCtx(ctx)
			s.finalDiag("spatial", s.epochs, &st)
			return st, nil
		}
		eo := beginEpochObs(active)
		for k, inst := range s.instances {
			count := inst.epochs >= s.opts.BurnIn
			inst.epochs++
			r := s.runs[k]
			r.epoch, r.count, r.cells = uint64(inst.epochs), count, cells
			tr := s.tailRuns[k]
			tr.epoch, tr.count, tr.vars = uint64(inst.epochs), count, tail
		}
		s.epochs++
		interrupted := false
		for gi := 0; gi+1 < len(groupOff); gi++ {
			lo, hi := groupOff[gi], groupOff[gi+1]
			if lo == hi {
				continue
			}
			if done != nil {
				select {
				case <-done:
					interrupted = true
				default:
				}
				if interrupted {
					break
				}
			}
			if s.sweptCells != nil {
				for _, ci := range cells[lo:hi] {
					s.sweptCells[s.sched.keys[ci]]++
				}
			}
			per := (hi - lo + int32(s.opts.Workers) - 1) / int32(s.opts.Workers)
			if g := int32(s.opts.ChunkGrain); g > 0 && per > g {
				per = g
			}
			for k := range s.instances {
				r := s.runs[k]
				for off := lo; off < hi; off += per {
					end := off + per
					if end > hi {
						end = hi
					}
					s.pool.dispatch(r, off, end, done)
				}
			}
			if active {
				eo.noteQueue(s.pool.queued())
			}
			s.pool.wait()
			if err := s.pool.err(); err != nil {
				s.discardAllDeltas()
				st.Reason = ReasonPanic
				return st, err
			}
		}
		if !interrupted && len(tail) > 0 {
			if s.sweptCells != nil {
				s.sweptTail += len(tail)
			}
			for k := range s.instances {
				s.pool.dispatch(s.tailRuns[k], 0, 0, done)
			}
			s.pool.wait()
			if err := s.pool.err(); err != nil {
				s.discardAllDeltas()
				st.Reason = ReasonPanic
				return st, err
			}
		}
		var mergeStart time.Time
		if active {
			mergeStart = time.Now()
		}
		for k, inst := range s.instances {
			s.pool.mergeDeltas(k, inst.counts)
		}
		if active {
			eo.merge = time.Since(mergeStart)
		}
		if interrupted {
			st.Reason = reasonFromCtx(ctx)
			s.finalDiag("spatial", s.epochs, &st)
			return st, nil
		}
		st.Epochs++
		if active {
			finishEpochObs(s.met, s.trace, "spatial", s.epochs, &eo)
		}
		if s.diagDue(s.epochs) {
			s.takeDiag("spatial", s.epochs, &st)
		}
		if s.ckpt != nil && s.ckpt.due(s.epochs) {
			epoch := s.epochs
			if err := saveCheckpointObs(s.met, s.trace, "spatial", epoch, func() error {
				return s.ckpt.Save(s.Snapshot())
			}); err != nil {
				return st, err
			}
		}
		if s.hooks.AfterEpoch != nil {
			s.hooks.AfterEpoch(s.epochs)
		}
	}
	s.finalDiag("spatial", s.epochs, &st)
	return st, nil
}

// discardAllDeltas drops every instance's unmerged worker deltas (panic
// path: a partially-executed chunk must not reach the counters).
func (s *Spatial) discardAllDeltas() {
	for k := range s.instances {
		s.pool.discardDeltas(k)
	}
}

// UpdateEvidence pins a variable to an observed value after construction
// and marks it dirty for incremental inference. Its cells' concliques are
// resampled by the next RunIncremental call.
func (s *Spatial) UpdateEvidence(v factorgraph.VarID, val int32) error {
	if int(v) >= s.g.NumVars() || v < 0 {
		return fmt.Errorf("gibbs: unknown variable %d", v)
	}
	if val < 0 || val >= s.g.Var(v).Domain {
		return fmt.Errorf("gibbs: value %d outside domain of variable %d", val, v)
	}
	s.pinned[v] = true
	s.dirty[v] = true
	for _, inst := range s.instances {
		inst.assign.Set(v, val)
		// Pinning invalidates the variable's accumulated counts. Worker
		// deltas need no reset: they are empty outside sweepEpochs.
		for x := range inst.counts.c[v] {
			inst.counts.c[v][x] = 0
		}
		inst.counts.totals[v] = 0
	}
	return nil
}

// RunIncremental resamples, for n epochs, only the cells containing dirty
// variables and their factor neighbourhoods — the paper's incremental
// inference ("the sampler is invoked on the concliques of the updated
// variables only"). The dirty set is cleared afterwards. The restricted
// schedule is cached keyed by the dirty set, so repeated updates of the
// same cells (the dominant incremental pattern: fresh evidence arriving at
// one location) run allocation-free end to end.
func (s *Spatial) RunIncremental(n int) {
	if _, err := s.RunIncrementalContext(context.Background(), n); err != nil {
		panic(err)
	}
}

// RunIncrementalContext is the context-aware RunIncremental, with the same
// cancellation and panic semantics as Run.
//
// Before sweeping, the counters of every variable in the restricted view
// are reset: their conditional distribution changed with the new pins, so
// samples drawn before the update would otherwise keep pulling the served
// marginals toward the stale posterior. After the call their marginals
// reflect only post-update samples (UpdateEvidence already resets the
// pinned variables themselves).
func (s *Spatial) RunIncrementalContext(ctx context.Context, n int) (RunStats, error) {
	if len(s.dirty) == 0 {
		return RunStats{Reason: ReasonDone}, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// A request span on the context (serving upsert path) gets the dirty
	// sweep recorded as a stage of its trace.
	span := obs.SpanFromContext(ctx).Child("conclique_sweep")
	view := s.restrictedFor(s.dirty)
	span.Notef("dirty=%d cells=%d tail=%d epochs=%d", len(s.dirty), len(view.cells), len(view.extra), n)
	defer span.End()
	for _, ci := range view.cells {
		for _, v := range s.sched.cellVars(ci) {
			if !s.pinned[v] {
				s.resetVarCounts(v)
			}
		}
	}
	for _, v := range view.extra {
		if !s.pinned[v] {
			s.resetVarCounts(v)
		}
	}
	st, err := s.sweepEpochs(ctx, n, view.cells, view.groupOff, view.extra)
	for v := range s.dirty {
		delete(s.dirty, v)
	}
	return st, err
}

// resetVarCounts zeroes one variable's accumulated samples on every
// instance. Worker deltas need no reset: they are empty outside
// sweepEpochs.
func (s *Spatial) resetVarCounts(v factorgraph.VarID) {
	for _, inst := range s.instances {
		for x := range inst.counts.c[v] {
			inst.counts.c[v][x] = 0
		}
		inst.counts.totals[v] = 0
	}
}

// PendingDirty reports how many variables are marked dirty and waiting for
// the next RunIncremental call.
func (s *Spatial) PendingDirty() int { return len(s.dirty) }

// dirtyKey folds the dirty set into an order-independent cache key.
func dirtyKey(dirty map[factorgraph.VarID]bool) uint64 {
	var key uint64
	for v := range dirty {
		key ^= splitmix64(uint64(v) + 0x9e3779b97f4a7c15)
	}
	return key
}

// restrictedFor returns the restricted schedule view for the dirty set,
// reusing the cached view when the exact same set was restricted before.
func (s *Spatial) restrictedFor(dirty map[factorgraph.VarID]bool) *restrictedView {
	key := dirtyKey(dirty)
	if view, ok := s.incCache[key]; ok && view.matches(dirty) {
		return view
	}
	restrict := map[int32]bool{}
	extraSet := map[factorgraph.VarID]bool{}
	touch := func(v factorgraph.VarID) {
		if home, ok := s.homeCell[v]; ok {
			restrict[s.cellIndex[home]] = true
			return
		}
		if s.g.Var(v).Evidence == factorgraph.NoEvidence && !s.pinned[v] {
			extraSet[v] = true
		}
	}
	for v := range dirty {
		touch(v)
		// Neighbouring atoms are affected too: the updated atom's spatial
		// and logical factors cross cell borders.
		for _, u := range s.g.VarSpatialPairs(v) {
			a, b, _ := s.g.SpatialPair(u)
			other := a
			if other == v {
				other = b
			}
			touch(other)
		}
		for _, f := range s.g.VarLogicalFactors(v) {
			vars, _ := s.g.FactorVars(f)
			for _, other := range vars {
				if other != v {
					touch(other)
				}
			}
		}
	}
	// Restrict the flat schedule: keep dirty cells, preserving group
	// boundaries (and hence the serial-conclique sweep order).
	view := &restrictedView{
		dirty:    make([]factorgraph.VarID, 0, len(dirty)),
		cells:    make([]int32, 0, len(restrict)),
		groupOff: make([]int32, 1, len(s.sched.groupOff)),
		extra:    make([]factorgraph.VarID, 0, len(extraSet)),
	}
	for v := range dirty {
		view.dirty = append(view.dirty, v)
	}
	sort.Slice(view.dirty, func(i, j int) bool { return view.dirty[i] < view.dirty[j] })
	for gi := 0; gi+1 < len(s.sched.groupOff); gi++ {
		for ci := s.sched.groupOff[gi]; ci < s.sched.groupOff[gi+1]; ci++ {
			if restrict[ci] {
				view.cells = append(view.cells, ci)
			}
		}
		view.groupOff = append(view.groupOff, int32(len(view.cells)))
	}
	for v := range extraSet {
		view.extra = append(view.extra, v)
	}
	sort.Slice(view.extra, func(i, j int) bool { return view.extra[i] < view.extra[j] })
	if len(s.incCache) >= 64 {
		// Crude bound: drop the whole cache rather than track recency.
		s.incCache = map[uint64]*restrictedView{}
	}
	s.incCache[key] = view
	return view
}

// Marginals implements Sampler: the average of the K instances' counters
// (Algorithm 1 lines 16 and 18–19). Variables pinned by UpdateEvidence get
// a point mass like original evidence.
func (s *Spatial) Marginals() [][]float64 {
	n := s.g.NumVars()
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		out[i] = s.MarginalVar(factorgraph.VarID(i))
	}
	return out
}

// MarginalVar returns one variable's marginal without materializing the
// whole-graph slice — the serving layer's point-query read path. Same
// semantics as Marginals: evidence and pinned variables get a point mass,
// unsampled variables a uniform. Not safe concurrently with a running
// sweep; callers serialize reads against sampling (the server holds its
// read lock for queries and its write lock around resamples).
func (s *Spatial) MarginalVar(v factorgraph.VarID) []float64 {
	meta := s.g.Var(v)
	m := make([]float64, meta.Domain)
	if meta.Evidence != factorgraph.NoEvidence {
		m[meta.Evidence] = 1
		return m
	}
	if s.pinned[v] {
		m[s.instances[0].assign.Get(v)] = 1
		return m
	}
	var total float64
	for _, inst := range s.instances {
		for x, c := range inst.counts.c[v] {
			m[x] += float64(c)
		}
		total += float64(inst.counts.totals[v])
	}
	if total == 0 {
		for x := range m {
			m[x] = 1 / float64(meta.Domain)
		}
	} else {
		for x := range m {
			m[x] /= total
		}
	}
	return m
}

// InstrumentSweeps enables schedule instrumentation: subsequent epochs
// record how often each pyramid cell was swept and how many tail variables
// were visited. Test/diagnostic use only (recording is not allocation-free).
func (s *Spatial) InstrumentSweeps() {
	s.sweptCells = map[pyramid.CellKey]int{}
	s.sweptTail = 0
}

// SweptCells returns the per-cell sweep counts recorded since
// InstrumentSweeps, keyed by pyramid cell. Counts are per epoch, not per
// instance (all K instances sweep the same cells).
func (s *Spatial) SweptCells() map[pyramid.CellKey]int { return s.sweptCells }

// SweptTailVars returns the number of tail-variable visits recorded since
// InstrumentSweeps.
func (s *Spatial) SweptTailVars() int { return s.sweptTail }

// HomeCell reports the pyramid cell where v is sampled, or ok=false when v
// is swept in the serial tail (no location, or home above the swept range).
func (s *Spatial) HomeCell(v factorgraph.VarID) (pyramid.CellKey, bool) {
	key, ok := s.homeCell[v]
	return key, ok
}

// NumInstances reports K, the parallel chain count.
func (s *Spatial) NumInstances() int { return len(s.instances) }

// ChainValue reads instance k's current assignment of v. Used by the
// sharded runtime (internal/shard) to read boundary-variable states at an
// epoch barrier; not safe concurrently with a running sweep.
func (s *Spatial) ChainValue(k int, v factorgraph.VarID) int32 {
	return s.instances[k].assign.Get(v)
}

// SetChainValue overwrites instance k's assignment of v without touching
// counts or pins. Scoring reads neighbour values from the assignment, so
// this is how the sharded runtime refreshes halo copies of remote
// boundary variables (frozen as evidence in the shard's subgraph — never
// swept, never counted) between epochs. Not safe concurrently with a
// running sweep.
func (s *Spatial) SetChainValue(k int, v factorgraph.VarID, x int32) {
	s.instances[k].assign.Set(v, x)
}

// ScheduledCells returns the number of cells in the full sweep schedule.
func (s *Spatial) ScheduledCells() int { return len(s.sched.keys) }

// CellStats summarizes the sweep schedule for diagnostics: per swept level,
// the number of home cells and conclique cover size.
func (s *Spatial) CellStats() []string {
	if s.pyr == nil {
		return []string{"no spatial atoms"}
	}
	cellsAt := map[int]int{}
	coverAt := map[int]int{}
	for gi := 0; gi+1 < len(s.sched.groupOff); gi++ {
		l := s.sched.groupLevel[gi]
		cellsAt[l] += int(s.sched.groupOff[gi+1] - s.sched.groupOff[gi])
		coverAt[l]++
	}
	var out []string
	for _, l := range s.sweepLevels() {
		out = append(out, fmt.Sprintf("level %d: %d cells, %d concliques", l, cellsAt[l], coverAt[l]))
	}
	return out
}
