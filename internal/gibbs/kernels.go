package gibbs

import (
	"repro/internal/factorgraph"
)

// scorer routes conditional-score evaluation either through the graph's
// compiled sampling kernels (the default) or the interpreted CSR walk. The
// two paths are bit-identical (factorgraph's golden equivalence test), so
// the choice affects throughput only: seeds, checkpoints and marginals are
// the same either way. The samplers hold one scorer each and pass it to
// sampleOne; the single nil check per call is the entire dispatch cost.
type scorer struct {
	g *factorgraph.Graph
	k *factorgraph.Kernels // nil → interpreted path
}

// newScorer builds a scorer over g, compiling (or reusing) the graph's
// kernels unless noKernels asks for the interpreted path.
func newScorer(g *factorgraph.Graph, noKernels bool) scorer {
	sc := scorer{g: g}
	if !noKernels {
		sc.k = g.Kernels()
	}
	return sc
}

// conditionalScores evaluates all candidate values of v (general path).
func (sc *scorer) conditionalScores(v factorgraph.VarID, assign factorgraph.Assignment, buf []float64) []float64 {
	if sc.k != nil {
		return sc.k.ConditionalScores(v, assign, buf)
	}
	return sc.g.ConditionalScores(v, assign, buf)
}

// binaryConditionalScores evaluates both candidates of a binary v.
func (sc *scorer) binaryConditionalScores(v factorgraph.VarID, assign factorgraph.Assignment) (float64, float64) {
	if sc.k != nil {
		return sc.k.BinaryConditionalScores(v, assign)
	}
	return sc.g.BinaryConditionalScores(v, assign)
}

// SamplerOption configures optional behavior of the sequential and hogwild
// constructors (the spatial sampler takes SpatialOptions instead).
type SamplerOption func(*samplerConfig)

type samplerConfig struct {
	noKernels bool
	shared    *SharedPool
	grain     int
}

// NoKernels makes a sampler evaluate conditional scores on the interpreted
// graph walk instead of the compiled kernels — the `-no-kernels` escape
// hatch. Results are bit-identical either way; only throughput differs.
func NoKernels() SamplerOption {
	return func(c *samplerConfig) { c.noKernels = true }
}

// WithSharedPool makes the sampler draw its worker pool from sp instead of
// building a private one; Close releases the pool back to sp for the next
// sampler of the same shape (see SharedPool).
func WithSharedPool(sp *SharedPool) SamplerOption {
	return func(c *samplerConfig) { c.shared = sp }
}

// WithChunkGrain overrides the hogwild bucket size (default hogwildGrain).
// Buckets are the unit of PRNG stream identity, so a different grain runs a
// different — but statistically equivalent — sampling program; a checkpoint
// resumed under a different grain continues under the new partition.
// n ≤ 0 keeps the default.
func WithChunkGrain(n int) SamplerOption {
	return func(c *samplerConfig) { c.grain = n }
}

func applySamplerOptions(opts []SamplerOption) samplerConfig {
	var c samplerConfig
	for _, o := range opts {
		o(&c)
	}
	return c
}

// publishKernelMetrics exposes the compiled-kernel build stats on the
// sampler metric gauges. Called when a sampler running on compiled kernels
// attaches metrics; a nil kernel set (interpreted path) publishes nothing.
func publishKernelMetrics(m *Metrics, k *factorgraph.Kernels) {
	if m == nil || k == nil {
		return
	}
	st := k.Stats()
	m.KernelBuildSeconds.Set(st.BuildTime.Seconds())
	m.KernelOps.Set(float64(st.Ops))
	m.KernelGenericOps.Set(float64(st.GenericOps))
	m.KernelSlabBytes.Set(float64(st.SlabBytes))
}
