package gibbs

import (
	"math"
	"testing"

	"repro/internal/factorgraph"
	"repro/internal/geom"
)

// smallSpatialGraph builds a compact spatial graph with known exact
// marginals: a 3×3 grid of binary spatial atoms, the center observed true,
// neighbours linked by spatial pairs and a few imply factors.
func smallSpatialGraph(t testing.TB) *factorgraph.Graph {
	t.Helper()
	b := factorgraph.NewBuilder()
	ids := map[[2]int]factorgraph.VarID{}
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			ev := factorgraph.NoEvidence
			if x == 1 && y == 1 {
				ev = 1
			}
			id, err := b.AddVariable(factorgraph.Variable{
				Name: "v", Domain: 2, Evidence: ev,
				Loc: geom.Pt(float64(x)*10, float64(y)*10), HasLoc: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			ids[[2]int{x, y}] = id
		}
	}
	// Spatial pairs between 4-neighbours, weight decaying with distance
	// (all distances equal here, so constant weight).
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			if x+1 < 3 {
				if err := b.AddSpatialPair(ids[[2]int{x, y}], ids[[2]int{x + 1, y}], 0.4); err != nil {
					t.Fatal(err)
				}
			}
			if y+1 < 3 {
				if err := b.AddSpatialPair(ids[[2]int{x, y}], ids[[2]int{x, y + 1}], 0.4); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	// A couple of imply factors.
	if err := b.AddFactor(factorgraph.FactorImply, 0.5,
		[]factorgraph.VarID{ids[[2]int{1, 1}], ids[[2]int{0, 0}]}, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.AddFactor(factorgraph.FactorImply, 0.5,
		[]factorgraph.VarID{ids[[2]int{1, 1}], ids[[2]int{2, 2}]}, nil); err != nil {
		t.Fatal(err)
	}
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func maxAbsDiff(t testing.TB, got, want [][]float64) float64 {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("marginal count %d vs %d", len(got), len(want))
	}
	worst := 0.0
	for i := range got {
		for j := range got[i] {
			if d := math.Abs(got[i][j] - want[i][j]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

func TestSequentialConvergesToExact(t *testing.T) {
	g := smallSpatialGraph(t)
	exact, err := factorgraph.ExactMarginals(g, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSequential(g, 7)
	s.RunEpochs(20000)
	if d := maxAbsDiff(t, s.Marginals(), exact); d > 0.02 {
		t.Errorf("sequential max marginal error %v > 0.02", d)
	}
	if s.TotalEpochs() != 20000 || s.Name() != "sequential" {
		t.Error("metadata mismatch")
	}
}

func TestHogwildConvergesToExact(t *testing.T) {
	g := smallSpatialGraph(t)
	exact, err := factorgraph.ExactMarginals(g, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHogwild(g, 7, 4)
	h.RunEpochs(30000)
	if d := maxAbsDiff(t, h.Marginals(), exact); d > 0.03 {
		t.Errorf("hogwild max marginal error %v > 0.03", d)
	}
}

func TestSpatialConvergesToExact(t *testing.T) {
	g := smallSpatialGraph(t)
	exact, err := factorgraph.ExactMarginals(g, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSpatial(g, SpatialOptions{Levels: 4, Instances: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	s.RunTotalEpochs(20000)
	if d := maxAbsDiff(t, s.Marginals(), exact); d > 0.02 {
		t.Errorf("spatial max marginal error %v > 0.02", d)
	}
}

func TestSpatialSeedStability(t *testing.T) {
	// The sampling schedule is seed-derived, but when dependent atoms land
	// in different cells of one conclique their concurrent sampling order
	// depends on goroutine timing, so repeated runs agree only
	// statistically (see the package comment). With enough epochs the same
	// seed must land within sampling noise.
	g := smallSpatialGraph(t)
	run := func() [][]float64 {
		s, err := NewSpatial(g, SpatialOptions{Levels: 4, Instances: 3, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		s.RunEpochs(4000)
		return s.Marginals()
	}
	a, b := run(), run()
	if d := maxAbsDiff(t, a, b); d > 0.05 {
		t.Errorf("same seed diverged by %v", d)
	}
}

func TestSpatialDeterministicWhenIndependent(t *testing.T) {
	// With far-apart atom clusters (interaction radius well under the cell
	// width) the conclique guarantee is exact and runs are bit-identical.
	b := factorgraph.NewBuilder()
	var prev factorgraph.VarID
	for i := 0; i < 8; i++ {
		id, err := b.AddVariable(factorgraph.Variable{
			Domain: 2, Evidence: factorgraph.NoEvidence,
			Loc: geom.Pt(float64(i)*1000, 0), HasLoc: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && i%2 == 1 {
			// Pair only within a tight cluster (distance 1000 ≥ cell width
			// is avoided by pairing identical-cell atoms only — here we
			// just add a unary prior instead to keep cells independent).
			_ = prev
		}
		_ = b.AddFactor(factorgraph.FactorIsTrue, 0.3+0.1*float64(i), []factorgraph.VarID{id}, nil)
		prev = id
	}
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	run := func() [][]float64 {
		s, err := NewSpatial(g, SpatialOptions{Levels: 4, Instances: 2, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		s.RunEpochs(300)
		return s.Marginals()
	}
	a, c := run(), run()
	if d := maxAbsDiff(t, a, c); d != 0 {
		t.Errorf("independent-cell runs diverged by %v", d)
	}
}

func TestSequentialDeterministic(t *testing.T) {
	g := smallSpatialGraph(t)
	s1 := NewSequential(g, 99)
	s2 := NewSequential(g, 99)
	s1.RunEpochs(500)
	s2.RunEpochs(500)
	if d := maxAbsDiff(t, s1.Marginals(), s2.Marginals()); d != 0 {
		t.Errorf("same seed diverged by %v", d)
	}
}

func TestMarginalsBeforeSampling(t *testing.T) {
	g := smallSpatialGraph(t)
	s := NewSequential(g, 1)
	m := s.Marginals()
	// Query variables uniform, evidence a point mass.
	if m[0][0] != 0.5 || m[0][1] != 0.5 {
		t.Errorf("query prior = %v", m[0])
	}
	if m[4][1] != 1 { // center atom is index 4 (row-major 3×3)
		t.Errorf("evidence marginal = %v", m[4])
	}
}

func TestSpatialEvidencePointMass(t *testing.T) {
	g := smallSpatialGraph(t)
	s, err := NewSpatial(g, SpatialOptions{Levels: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s.RunEpochs(50)
	m := s.Marginals()
	if m[4][1] != 1 || m[4][0] != 0 {
		t.Errorf("evidence marginal = %v", m[4])
	}
}

func TestSpatialUpdateEvidenceAndIncremental(t *testing.T) {
	g := smallSpatialGraph(t)
	s, err := NewSpatial(g, SpatialOptions{Levels: 4, Instances: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	s.RunEpochs(2000)
	before := s.Marginals()
	// Corner (0,0) is variable 0; pin it false and resample incrementally.
	if err := s.UpdateEvidence(0, 0); err != nil {
		t.Fatal(err)
	}
	s.RunIncremental(2000)
	after := s.Marginals()
	if after[0][0] != 1 {
		t.Fatalf("pinned marginal = %v", after[0])
	}
	// Its direct neighbour (1,0)=var 1 should shift toward false relative
	// to before (spatial clustering pulls it down).
	if !(after[1][1] < before[1][1]+0.02) {
		t.Errorf("neighbour did not respond: before=%v after=%v", before[1][1], after[1][1])
	}
	// Errors for bad updates.
	if err := s.UpdateEvidence(-1, 0); err == nil {
		t.Error("negative id should fail")
	}
	if err := s.UpdateEvidence(0, 5); err == nil {
		t.Error("out-of-domain value should fail")
	}
}

func TestIncrementalMovesTowardFullRecompute(t *testing.T) {
	// Incremental inference resamples only the updated variables'
	// concliques (one-hop neighbourhood), so boundary values stay stale and
	// exact equality with a full recompute is not expected — the paper's
	// Fig. 13a claim is about latency. We verify that the dirty
	// neighbourhood moves in the same direction as a full recompute and
	// that the pinned variable is exact.
	g := smallSpatialGraph(t)
	full, err := NewSpatial(g, SpatialOptions{Levels: 4, Instances: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := full.UpdateEvidence(0, 0); err != nil {
		t.Fatal(err)
	}
	full.RunEpochs(8000)

	base, err := NewSpatial(g, SpatialOptions{Levels: 4, Instances: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	base.RunEpochs(4000)
	baseM := base.Marginals()
	if err := base.UpdateEvidence(0, 0); err != nil {
		t.Fatal(err)
	}
	base.RunIncremental(8000)
	fm, im := full.Marginals(), base.Marginals()
	if im[0][0] != 1 {
		t.Fatalf("pinned marginal = %v", im[0])
	}
	// Neighbour vars 1 and 3: the full recompute pulls them down relative
	// to the unpinned baseline; incremental must move the same way.
	for _, v := range []int{1, 3} {
		if !(fm[v][1] < baseM[v][1]) {
			t.Fatalf("test premise broken: full %v not below baseline %v", fm[v][1], baseM[v][1])
		}
		if !(im[v][1] < baseM[v][1]+0.02) {
			t.Errorf("var %d: incremental %v did not move toward full %v (baseline %v)",
				v, im[v][1], fm[v][1], baseM[v][1])
		}
	}
}

func TestSpatialNonSpatialVarsAreSampled(t *testing.T) {
	// Graph with a located and a non-located query variable connected by a
	// factor: both must be sampled by the spatial sampler.
	b := factorgraph.NewBuilder()
	a, _ := b.AddVariable(factorgraph.Variable{Domain: 2, Evidence: 1, HasLoc: true})
	c, _ := b.AddVariable(factorgraph.Variable{Domain: 2, Evidence: factorgraph.NoEvidence, HasLoc: true, Loc: geom.Pt(1, 1)})
	d, _ := b.AddVariable(factorgraph.Variable{Domain: 2, Evidence: factorgraph.NoEvidence})
	if err := b.AddFactor(factorgraph.FactorImply, 1.2, []factorgraph.VarID{a, d}, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.AddSpatialPair(a, c, 0.7); err != nil {
		t.Fatal(err)
	}
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSpatial(g, SpatialOptions{Levels: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	s.RunEpochs(5000)
	exact, err := factorgraph.ExactMarginals(g, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if diff := maxAbsDiff(t, s.Marginals(), exact); diff > 0.03 {
		t.Errorf("mixed graph error %v", diff)
	}
}

func TestSpatialNoSpatialAtomsAtAll(t *testing.T) {
	b := factorgraph.NewBuilder()
	a, _ := b.AddVariable(factorgraph.Variable{Domain: 2, Evidence: 1})
	c, _ := b.AddVariable(factorgraph.Variable{Domain: 2, Evidence: factorgraph.NoEvidence})
	_ = b.AddFactor(factorgraph.FactorImply, 0.8, []factorgraph.VarID{a, c}, nil)
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSpatial(g, SpatialOptions{Levels: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Pyramid() != nil {
		t.Error("pyramid should be nil without located atoms")
	}
	s.RunEpochs(5000)
	want := math.Exp(0.8) / (math.Exp(0.8) + 1)
	if got := s.Marginals()[c][1]; math.Abs(got-want) > 0.03 {
		t.Errorf("P = %v, want %v", got, want)
	}
}

func TestCategoricalSampling(t *testing.T) {
	// Categorical pair with one endpoint observed: the sampler must respect
	// the pruning mask (pruned pairs contribute nothing).
	b := factorgraph.NewBuilder()
	h := int32(4)
	a, _ := b.AddVariable(factorgraph.Variable{Domain: h, Evidence: 2, HasLoc: true})
	c, _ := b.AddVariable(factorgraph.Variable{Domain: h, Evidence: factorgraph.NoEvidence, HasLoc: true, Loc: geom.Pt(1, 0)})
	if err := b.AddSpatialPair(a, c, 1.0); err != nil {
		t.Fatal(err)
	}
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	s := NewSequential(g, 21)
	s.RunEpochs(30000)
	exact, err := factorgraph.ExactMarginals(g, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(t, s.Marginals(), exact); d > 0.02 {
		t.Errorf("categorical error %v", d)
	}
	// Value 2 (agreement) must dominate.
	m := s.Marginals()[c]
	for x := 0; x < int(h); x++ {
		if x != 2 && m[x] >= m[2] {
			t.Errorf("marginal %v does not favour agreement", m)
		}
	}
}

func TestHogwildWorkerClamping(t *testing.T) {
	g := smallSpatialGraph(t) // 8 query vars
	h := NewHogwild(g, 1, 100)
	if h.workers > 8 {
		t.Errorf("workers = %d not clamped", h.workers)
	}
	h2 := NewHogwild(g, 1, 0)
	if h2.workers < 1 {
		t.Error("auto workers < 1")
	}
}

func TestSpatialCellStats(t *testing.T) {
	g := smallSpatialGraph(t)
	s, err := NewSpatial(g, SpatialOptions{Levels: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats := s.CellStats(); len(stats) == 0 {
		t.Error("no cell stats")
	}
}

func TestSampleOneDistribution(t *testing.T) {
	// Sampling a single unary factor must follow the softmax of its scores.
	b := factorgraph.NewBuilder()
	v, _ := b.AddVariable(factorgraph.Variable{Domain: 2, Evidence: factorgraph.NoEvidence})
	w := 1.0
	_ = b.AddFactor(factorgraph.FactorIsTrue, w, []factorgraph.VarID{v}, nil)
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	assign := g.InitialAssignment()
	rng := taskRNG(5, 0xabc)
	buf := make([]float64, 2)
	sc := newScorer(g, false)
	ones := 0
	n := 200000
	for i := 0; i < n; i++ {
		if sampleOne(&sc, v, assign, rng, buf) == 1 {
			ones++
		}
	}
	want := math.Exp(w) / (math.Exp(w) + 1)
	got := float64(ones) / float64(n)
	if math.Abs(got-want) > 0.01 {
		t.Errorf("P(1) = %v, want %v", got, want)
	}
}

func TestSplitmixDecorrelation(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		v := splitmix64(i)
		if seen[v] {
			t.Fatalf("collision at %d", i)
		}
		seen[v] = true
	}
}

// Property: on random small graphs, all three samplers converge to the
// exact marginals. Catches systematic bias in any sweep schedule.
func TestSamplersMatchExactOnRandomGraphs(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running convergence property")
	}
	rng := newTestRand(31)
	for trial := 0; trial < 5; trial++ {
		b := factorgraph.NewBuilder()
		n := 6 + int(rng.next()%4)
		for i := 0; i < n; i++ {
			ev := factorgraph.NoEvidence
			if rng.next()%4 == 0 {
				ev = int32(rng.next() % 2)
			}
			if _, err := b.AddVariable(factorgraph.Variable{
				Domain: 2, Evidence: ev,
				Loc:    geom.Pt(float64(rng.next()%100), float64(rng.next()%100)),
				HasLoc: true,
			}); err != nil {
				t.Fatal(err)
			}
		}
		kinds := []factorgraph.FactorKind{
			factorgraph.FactorImply, factorgraph.FactorAnd,
			factorgraph.FactorOr, factorgraph.FactorEqual,
		}
		for f := 0; f < n; f++ {
			a := factorgraph.VarID(rng.next() % uint64(n))
			c := factorgraph.VarID(rng.next() % uint64(n))
			if a == c {
				continue
			}
			w := float64(rng.next()%200)/100 - 1 // [-1, 1)
			if err := b.AddFactor(kinds[rng.next()%4], w, []factorgraph.VarID{a, c}, nil); err != nil {
				t.Fatal(err)
			}
		}
		for s := 0; s < n/2; s++ {
			a := factorgraph.VarID(rng.next() % uint64(n))
			c := factorgraph.VarID(rng.next() % uint64(n))
			if a == c {
				continue
			}
			_ = b.AddSpatialPair(a, c, float64(rng.next()%100)/150) // dup ok to fail
		}
		g, err := b.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		exact, err := factorgraph.ExactMarginals(g, 1<<22)
		if err != nil {
			t.Fatal(err)
		}
		for _, mk := range []func() Sampler{
			func() Sampler { return NewSequential(g, 5) },
			func() Sampler { return NewHogwild(g, 5, 2) },
			func() Sampler {
				sp, err := NewSpatial(g, SpatialOptions{Levels: 4, Instances: 2, Seed: 5})
				if err != nil {
					t.Fatal(err)
				}
				return sp
			},
		} {
			s := mk()
			if sp, ok := s.(*Spatial); ok {
				sp.RunTotalEpochs(30000)
			} else {
				s.RunEpochs(30000)
			}
			if d := maxAbsDiff(t, s.Marginals(), exact); d > 0.04 {
				t.Errorf("trial %d: %s max marginal error %v", trial, s.Name(), d)
			}
		}
	}
}

// newTestRand returns a tiny deterministic generator for graph synthesis.
func newTestRand(seed uint64) *testRand { return &testRand{state: seed} }

type testRand struct{ state uint64 }

func (r *testRand) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
