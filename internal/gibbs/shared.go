package gibbs

import (
	"sync"

	"repro/internal/factorgraph"
)

// SharedPool caches one worker Pool across sampler lifetimes. Pool scratch
// is graph-shaped (score buffers sized to the graph's maximum domain,
// per-instance count deltas, touched lists capped at the query-variable
// count), so a cached pool is handed back only to a sampler asking for the
// exact same (workers, instances, graph) shape; any mismatch closes the
// cached pool and builds a fresh one.
//
// The cache is a hand-off, not a multiplexer: Acquire removes the pool from
// the cache and Release returns it, so two live samplers can never share
// worker goroutines (the pool's one-batch-at-a-time contract stays with a
// single sampler). Poisoned pools — a sticky worker panic — are never
// cached; Release closes them instead.
//
// core.System owns one SharedPool and threads it through every sampler it
// builds, so the learn→infer and re-infer paths stop rebuilding the worker
// pool per run. Closing the SharedPool closes whatever pool it holds;
// samplers still holding an acquired pool close it themselves on Close.
type SharedPool struct {
	mu        sync.Mutex
	pool      *Pool
	g         *factorgraph.Graph
	workers   int
	instances int
	closed    bool
	reuses    int
	builds    int
}

// NewSharedPool returns an empty cache.
func NewSharedPool() *SharedPool { return &SharedPool{} }

// Acquire hands out a pool for the requested shape: the cached pool when it
// matches exactly (and is healthy), a freshly built one otherwise. The
// returned pool is owned by the caller until Release.
func (sp *SharedPool) Acquire(workers, instances int, g *factorgraph.Graph) *Pool {
	if workers < 1 {
		workers = 1
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.pool != nil && sp.g == g && sp.workers == workers && sp.instances == instances && sp.pool.err() == nil {
		p := sp.pool
		sp.pool = nil
		sp.reuses++
		return p
	}
	if sp.pool != nil {
		sp.pool.Close()
		sp.pool = nil
	}
	sp.builds++
	return newPool(workers, instances, g)
}

// Release returns an acquired pool to the cache for the next sampler of the
// same shape. Poisoned pools are closed, not cached; a release after Close
// closes the pool too.
func (sp *SharedPool) Release(p *Pool, workers, instances int, g *factorgraph.Graph) {
	if p == nil {
		return
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.closed || p.err() != nil {
		p.Close()
		return
	}
	if sp.pool != nil {
		sp.pool.Close()
	}
	sp.pool, sp.g, sp.workers, sp.instances = p, g, workers, instances
}

// Reuses reports how many Acquire calls were served from the cache.
func (sp *SharedPool) Reuses() int {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.reuses
}

// Builds reports how many Acquire calls built a fresh pool.
func (sp *SharedPool) Builds() int {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.builds
}

// Close shuts down the cached pool, if any. Pools currently acquired by a
// sampler are closed by that sampler's Close (Release after Close closes
// instead of caching). Idempotent.
func (sp *SharedPool) Close() {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	sp.closed = true
	if sp.pool != nil {
		sp.pool.Close()
		sp.pool = nil
	}
}

// poolFor resolves a sampler's pool: through the shared cache when one is
// configured, freshly built otherwise. The second return reports ownership —
// true means the sampler must Close the pool itself.
func poolFor(sp *SharedPool, workers, instances int, g *factorgraph.Graph) (*Pool, bool) {
	if sp == nil {
		return newPool(workers, instances, g), true
	}
	return sp.Acquire(workers, instances, g), false
}
