package gibbs

import (
	"math"
	"testing"

	"repro/internal/factorgraph"
	"repro/internal/geom"
)

// bruteForceMAP enumerates all assignments of the query variables.
func bruteForceMAP(t *testing.T, g *factorgraph.Graph) (factorgraph.Assignment, float64) {
	t.Helper()
	query := queryVars(g)
	if len(query) > 20 {
		t.Fatal("graph too large for brute force")
	}
	assign := g.InitialAssignment()
	best := assign.Clone()
	bestE := math.Inf(-1)
	var walk func(i int)
	walk = func(i int) {
		if i == len(query) {
			if e := g.Energy(assign); e > bestE {
				bestE = e
				best = assign.Clone()
			}
			return
		}
		v := query[i]
		for x := int32(0); x < g.Var(v).Domain; x++ {
			assign.Set(v, x)
			walk(i + 1)
		}
		assign.Set(v, 0)
	}
	walk(0)
	return best, bestE
}

func TestMAPMatchesBruteForce(t *testing.T) {
	g := smallSpatialGraph(t) // 8 query vars
	want, wantE := bruteForceMAP(t, g)
	got, gotE := MAP(g, MAPOptions{Sweeps: 300, Restarts: 3, Seed: 5})
	if math.Abs(gotE-wantE) > 1e-9 {
		t.Fatalf("MAP energy %v, brute force %v (got %v want %v)", gotE, wantE, got, want)
	}
	// Evidence stays clamped.
	if got[4] != 1 {
		t.Errorf("evidence flipped: %v", got)
	}
}

func TestMAPCategorical(t *testing.T) {
	b := factorgraph.NewBuilder()
	h := int32(5)
	a, _ := b.AddVariable(factorgraph.Variable{Domain: h, Evidence: 3, HasLoc: true})
	c, _ := b.AddVariable(factorgraph.Variable{Domain: h, Evidence: factorgraph.NoEvidence, HasLoc: true, Loc: geom.Pt(1, 0)})
	if err := b.AddSpatialPair(a, c, 1.5); err != nil {
		t.Fatal(err)
	}
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	got, _ := MAP(g, MAPOptions{Seed: 2})
	if got[c] != 3 {
		t.Errorf("MAP value = %d, want agreement with evidence (3)", got[c])
	}
}

func TestMAPDefaultsAndDeterminism(t *testing.T) {
	g := smallSpatialGraph(t)
	a1, e1 := MAP(g, MAPOptions{Seed: 9})
	a2, e2 := MAP(g, MAPOptions{Seed: 9})
	if e1 != e2 {
		t.Errorf("same seed energies differ: %v vs %v", e1, e2)
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Errorf("same seed assignments differ at %d", i)
		}
	}
}

func TestMAPBeatsRandomAssignment(t *testing.T) {
	g := smallSpatialGraph(t)
	_, e := MAP(g, MAPOptions{Seed: 3})
	rng := taskRNG(77, 1)
	assign := g.InitialAssignment()
	for _, v := range queryVars(g) {
		assign.Set(v, int32(rng.Intn(2)))
	}
	if g.Energy(assign) > e {
		t.Errorf("random assignment beat MAP: %v > %v", g.Energy(assign), e)
	}
}
