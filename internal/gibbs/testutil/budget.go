package testutil

import "testing"

// BudgetPoint is one budget level of a local-vs-full comparison sweep: the
// budget knob (typically the interior-variable cap), the observed max TV
// distance between local and full-graph marginals over the probed atoms, and
// the largest truncation-error bound the local extraction reported.
type BudgetPoint struct {
	Budget int
	MaxTV  float64
	Bound  float64
}

// CheckBudgetSweep asserts the lazy-grounding convergence contract over a
// budget sweep:
//
//   - at least three strictly increasing budgets were probed;
//   - observed error decreases monotonically with budget, up to slack
//     (Monte-Carlo noise means exact monotonicity is too strict);
//   - the reported truncation bound dominates the observed error at every
//     budget (again up to slack — the bound covers freezing distortion, not
//     sampling noise).
func CheckBudgetSweep(t testing.TB, points []BudgetPoint, slack float64) {
	t.Helper()
	if len(points) < 3 {
		t.Fatalf("budget sweep needs ≥ 3 points, got %d", len(points))
	}
	for i, p := range points {
		t.Logf("budget %4d: max TV %.4f, bound %.4f", p.Budget, p.MaxTV, p.Bound)
		if i == 0 {
			continue
		}
		prev := points[i-1]
		if p.Budget <= prev.Budget {
			t.Fatalf("budgets must increase: point %d budget %d after %d", i, p.Budget, prev.Budget)
		}
		if p.MaxTV > prev.MaxTV+slack {
			t.Fatalf("error grew with budget: TV %.4f at budget %d vs %.4f at budget %d (slack %.2f)",
				p.MaxTV, p.Budget, prev.MaxTV, prev.Budget, slack)
		}
	}
	for _, p := range points {
		if p.MaxTV > p.Bound+slack {
			t.Fatalf("truncation bound does not dominate: budget %d observed TV %.4f > bound %.4f + slack %.2f",
				p.Budget, p.MaxTV, p.Bound, slack)
		}
	}
}
