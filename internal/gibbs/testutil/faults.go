package testutil

import (
	"fmt"
	"os"
	"runtime"
	"time"
)

// This file is the fault-injection plane of the harness: helpers that turn
// the samplers' TestHooks into reproducible failures (a worker panic at the
// k-th dispatched chunk, a context cancel at the e-th epoch), corrupt
// checkpoint files the way a crash would, and assert that the runtime
// neither leaks goroutines nor deadlocks when those failures strike.

// PanicAtChunk returns a BeforeChunk hook that panics with a recognizable
// value when the n-th chunk (0-based, in dispatch order) starts executing.
func PanicAtChunk(n uint64) func(uint64) {
	return func(chunk uint64) {
		if chunk == n {
			panic(fmt.Sprintf("testutil: injected fault at chunk %d", n))
		}
	}
}

// CancelAtEpoch returns an AfterEpoch hook that calls cancel as soon as the
// sampler finishes its e-th total epoch — the tightest deterministic way to
// land a cancellation inside a run.
func CancelAtEpoch(cancel func(), e int) func(int) {
	return func(epoch int) {
		if epoch >= e {
			cancel()
		}
	}
}

// TearFile truncates the file to half its size, simulating a crash mid-write
// on a filesystem that exposed the partial content (the torn-checkpoint
// case the CRC trailer exists to catch).
func TearFile(path string) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	return os.Truncate(path, fi.Size()/2)
}

// TearFileAt truncates the file to exactly off bytes — the surgical variant
// of TearFile, used by the WAL chaos sweep to place the tear at (and between)
// every frame boundary.
func TearFileAt(path string, off int64) error {
	return os.Truncate(path, off)
}

// CopyFile copies src to dst (overwriting dst), so a chaos test can tear a
// copy of a log at many different offsets without rebuilding it each time.
func CopyFile(dst, src string) error {
	raw, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	return os.WriteFile(dst, raw, 0o644)
}

// CorruptFile flips one bit in the middle of the file — content corruption
// that keeps the length intact, so only a checksum can notice.
func CorruptFile(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(raw) == 0 {
		return fmt.Errorf("testutil: %s is empty", path)
	}
	raw[len(raw)/2] ^= 0x40
	return os.WriteFile(path, raw, 0o644)
}

// GoroutineLeakCheck snapshots the goroutine count; calling the returned
// function asserts the count returned to (at most) the baseline, retrying
// for a grace period so exiting goroutines can be reaped. Use as
//
//	defer testutil.GoroutineLeakCheck(t)()
//
// before constructing pooled samplers.
func GoroutineLeakCheck(t interface {
	Helper()
	Errorf(format string, args ...any)
}) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		var n int
		for {
			runtime.GC() // run pool finalizers for samplers left to the GC
			n = runtime.NumGoroutine()
			if n <= base || time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if n > base {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Errorf("goroutine leak: %d before, %d after\n%s", base, n, buf)
		}
	}
}
