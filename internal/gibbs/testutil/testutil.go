// Package testutil is the statistical correctness harness for the samplers
// in internal/gibbs: deterministic random-graph generators covering the
// four canonical shapes (binary and categorical variables, with and without
// spatial factors), total-variation-distance metrics, and exact ground
// truth via factorgraph.ExactMarginals. Sampler tests iterate Shapes and
// assert that every sampler's marginals land within a TV tolerance of the
// exact distribution — the guard that makes performance rewrites of the
// sampler core safe.
package testutil

import (
	"fmt"

	"repro/internal/factorgraph"
	"repro/internal/geom"
)

// Rand is a splitmix64 generator for deterministic graph synthesis.
type Rand struct{ state uint64 }

// NewRand seeds a generator.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Next returns the next raw 64-bit value.
func (r *Rand) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 { return float64(r.Next()>>11) / (1 << 53) }

// Intn returns a uniform value in [0, n) (test-grade; modulo bias is
// irrelevant at these magnitudes).
func (r *Rand) Intn(n int) int { return int(r.Next() % uint64(n)) }

// Spec configures RandomGraph. The defaults (applied by RandomGraph for
// zero fields) keep the state space well inside exact-enumeration range.
type Spec struct {
	// Vars is the number of variables. Default 8 (binary) or 6 (categorical).
	Vars int
	// Domain is the per-variable domain size. Default 2.
	Domain int32
	// Spatial attaches locations to every variable and generates
	// SpatialPairs spatial factors. Without it the graph is logical-only.
	Spatial bool
	// EvidencePer1000 is the expected evidence fraction in ‰. Default 200.
	EvidencePer1000 int
	// LogicalFactors is the number of random logical factors. Default Vars+2.
	LogicalFactors int
	// SpatialPairs is the number of spatial factors attempted (duplicates
	// are skipped). Default Vars.
	SpatialPairs int
	// PruneMask installs a co-occurrence pruning mask for categorical
	// spatial pairs (Section IV-C): value pairs with (i+j) ≡ 2 (mod Domain)
	// are pruned.
	PruneMask bool
	// Seed drives the synthesis.
	Seed uint64
}

func (s Spec) withDefaults() Spec {
	if s.Domain == 0 {
		s.Domain = 2
	}
	if s.Vars == 0 {
		if s.Domain > 2 {
			s.Vars = 6
		} else {
			s.Vars = 8
		}
	}
	if s.EvidencePer1000 == 0 {
		s.EvidencePer1000 = 200
	}
	if s.LogicalFactors == 0 {
		s.LogicalFactors = s.Vars + 2
	}
	if s.SpatialPairs == 0 {
		s.SpatialPairs = s.Vars
	}
	return s
}

// RandomGraph synthesizes a graph from the spec: variables (a random subset
// observed), mixed-kind logical factors with weights in [-1, 1), and — for
// spatial specs — locations in [0, 100)² with spatial pairs weighted in
// [0, 0.8). At least one variable is always left as a query variable.
func RandomGraph(spec Spec) (*factorgraph.Graph, error) {
	spec = spec.withDefaults()
	rng := NewRand(spec.Seed)
	b := factorgraph.NewBuilder()
	if spec.PruneMask {
		h := spec.Domain
		mask := make([]bool, h*h)
		for i := int32(0); i < h; i++ {
			for j := int32(0); j < h; j++ {
				mask[i*h+j] = (i+j)%h != 2%h
			}
		}
		if err := b.SetAllowedPairs(0, h, mask); err != nil {
			return nil, err
		}
	}
	queries := 0
	for i := 0; i < spec.Vars; i++ {
		ev := factorgraph.NoEvidence
		if rng.Intn(1000) < spec.EvidencePer1000 && !(queries == 0 && i == spec.Vars-1) {
			ev = int32(rng.Intn(int(spec.Domain)))
		} else {
			queries++
		}
		v := factorgraph.Variable{
			Name:     fmt.Sprintf("v%d", i),
			Domain:   spec.Domain,
			Evidence: ev,
		}
		if spec.Spatial {
			v.HasLoc = true
			v.Loc = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		}
		if _, err := b.AddVariable(v); err != nil {
			return nil, err
		}
	}
	kinds := []factorgraph.FactorKind{
		factorgraph.FactorImply, factorgraph.FactorAnd,
		factorgraph.FactorOr, factorgraph.FactorEqual,
	}
	for f := 0; f < spec.LogicalFactors; f++ {
		a := factorgraph.VarID(rng.Intn(spec.Vars))
		c := factorgraph.VarID(rng.Intn(spec.Vars))
		if a == c {
			if err := b.AddFactor(factorgraph.FactorIsTrue,
				rng.Float64()*2-1, []factorgraph.VarID{a}, nil); err != nil {
				return nil, err
			}
			continue
		}
		neg := []bool{rng.Intn(4) == 0, rng.Intn(4) == 0}
		if err := b.AddFactor(kinds[rng.Intn(len(kinds))],
			rng.Float64()*2-1, []factorgraph.VarID{a, c}, neg); err != nil {
			return nil, err
		}
	}
	if spec.Spatial {
		for s := 0; s < spec.SpatialPairs; s++ {
			a := factorgraph.VarID(rng.Intn(spec.Vars))
			c := factorgraph.VarID(rng.Intn(spec.Vars))
			if a == c {
				continue
			}
			// Duplicate pairs are a legal collision of the generator.
			_ = b.AddSpatialPair(a, c, rng.Float64()*0.8)
		}
	}
	return b.Finalize()
}

// Shape names one canonical harness configuration.
type Shape struct {
	Name string
	Spec Spec
}

// Shapes returns the four canonical graph shapes of the harness — the
// binary/categorical × logical-only/spatial grid — seeded from base.
func Shapes(base uint64) []Shape {
	return []Shape{
		{Name: "binary-logical", Spec: Spec{Domain: 2, Seed: base + 1}},
		{Name: "binary-spatial", Spec: Spec{Domain: 2, Spatial: true, Seed: base + 2}},
		{Name: "categorical-logical", Spec: Spec{Domain: 3, Seed: base + 3}},
		{Name: "categorical-spatial", Spec: Spec{Domain: 3, Spatial: true, PruneMask: true, Seed: base + 4}},
	}
}

// TV returns the total-variation distance between two distributions over
// the same domain: ½·Σ|p−q| ∈ [0, 1].
func TV(p, q []float64) float64 {
	var d float64
	for i := range p {
		if p[i] > q[i] {
			d += p[i] - q[i]
		} else {
			d += q[i] - p[i]
		}
	}
	return d / 2
}

// MaxTV returns the worst per-variable total-variation distance between two
// marginal sets.
func MaxTV(got, want [][]float64) float64 {
	var worst float64
	for v := range got {
		if d := TV(got[v], want[v]); d > worst {
			worst = d
		}
	}
	return worst
}

// Exact computes ground-truth marginals with a generous enumeration cap
// suited to harness-sized graphs.
func Exact(g *factorgraph.Graph) ([][]float64, error) {
	return factorgraph.ExactMarginals(g, 1<<22)
}

// KeyedMaxTV compares two marginal sets keyed by ground-atom key — the shape
// two independently grounded systems produce, where VarIDs are not
// comparable but atom keys are. It returns the worst per-atom
// total-variation distance and the atom it occurs at; keys present in only
// one map are an error.
func KeyedMaxTV(got, want map[string][]float64) (float64, string, error) {
	if len(got) != len(want) {
		return 0, "", fmt.Errorf("testutil: %d atoms vs %d", len(got), len(want))
	}
	var worst float64
	var worstKey string
	for key, g := range got {
		w, ok := want[key]
		if !ok {
			return 0, "", fmt.Errorf("testutil: atom %q missing from reference", key)
		}
		if d := TV(g, w); d > worst {
			worst, worstKey = d, key
		}
	}
	return worst, worstKey, nil
}
