package gibbs

import (
	"context"
	"fmt"
)

// StopReason explains why a context-aware sampler run returned.
type StopReason int

// Stop reasons.
const (
	// ReasonDone: the requested epoch budget completed.
	ReasonDone StopReason = iota
	// ReasonCanceled: the run's context was canceled; the marginals hold
	// every sample accumulated up to the last chunk boundary.
	ReasonCanceled
	// ReasonDeadline: the run's context deadline expired (same partial
	// semantics as ReasonCanceled).
	ReasonDeadline
	// ReasonPanic: a worker panicked; Run also returns a *WorkerPanicError
	// and the sampler is poisoned (see WorkerPanicError).
	ReasonPanic
)

// String names the reason.
func (r StopReason) String() string {
	switch r {
	case ReasonDone:
		return "done"
	case ReasonCanceled:
		return "canceled"
	case ReasonDeadline:
		return "deadline"
	case ReasonPanic:
		return "panic"
	default:
		return "unknown"
	}
}

// RunStats summarizes one context-aware sampler run. Cancellation is not an
// error: an interrupted Run returns (RunStats{Reason: ...}, nil) and the
// sampler's marginals reflect everything sampled before the interruption.
type RunStats struct {
	// Epochs is the number of full epochs completed by this call. An epoch
	// cut short by cancellation is not counted here even though its partial
	// samples are kept (and its PRNG epoch identity is consumed).
	Epochs int
	// Reason tells why the call returned.
	Reason StopReason
	// Diag is the final convergence reading of the run and DiagValid reports
	// whether one was taken. Diagnostics run only when SetProgress enabled
	// them; a reading is taken at every diagnostic epoch and once more at
	// return (done and canceled paths — not after a worker panic, whose
	// unmerged deltas were discarded).
	Diag      DiagStats
	DiagValid bool
}

// reasonFromCtx maps a fired context to its stop reason.
func reasonFromCtx(ctx context.Context) StopReason {
	if ctx.Err() == context.DeadlineExceeded {
		return ReasonDeadline
	}
	return ReasonCanceled
}

// WorkerPanicError is the single error surfaced when a pool worker panics
// during a sampler run: the first panic's value and stack. The pool is
// poisoned from the moment of the panic — workers drain and acknowledge all
// queued chunks without executing them, so the epoch barrier still completes
// (no deadlock, no goroutine leak) — and every subsequent run on the same
// sampler returns the same error. The sampler's counters hold the state of
// the last completed epoch barrier; the panicked epoch's partial deltas are
// never merged.
type WorkerPanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking worker's stack trace.
	Stack string
}

// Error implements error.
func (e *WorkerPanicError) Error() string {
	return fmt.Sprintf("gibbs: worker panic: %v", e.Value)
}

// TestHooks is the fault-injection plane used by the robustness harness
// (internal/gibbs/testutil): hooks are invoked at the runtime's two
// interruption boundaries. Zero-value hooks are never called and cost one
// nil check. Install them before the first Run; they must not be changed
// while a run is in flight.
type TestHooks struct {
	// BeforeChunk runs in a pool worker immediately before chunk execution,
	// with the 0-based ordinal of that chunk since the hooks were installed.
	// A panic inside the hook is captured exactly like a sampler panic.
	// The sequential sampler calls it once per epoch (its "chunk" is the
	// whole sweep), on the calling goroutine.
	BeforeChunk func(n uint64)
	// AfterEpoch runs on the issuer goroutine after each completed epoch
	// barrier, with the sampler's lifetime epoch index.
	AfterEpoch func(epoch int)
}
