package gibbs

import (
	"repro/internal/factorgraph"
)

// DiagStats is one convergence-diagnostic reading, taken at an epoch
// barrier. Two complementary signals:
//
//   - MaxDelta: the largest absolute change of any merged marginal entry
//     P(v=x) since the previous reading. A chain that has mixed moves its
//     running marginals very little between barriers, so MaxDelta → 0.
//   - Spread: the largest disagreement between the K sampler instances on
//     any marginal entry (max over (v,x) of max_k m_k − min_k m_k). This is
//     the cross-chain analogue of a Gelman–Rubin check: independent chains
//     that have converged to the stationary distribution agree; a large
//     spread means at least one chain is still in a different region.
//     Samplers with a single chain (hogwild, sequential) report 0.
type DiagStats struct {
	// Epoch is the sampler lifetime epoch the reading was taken at.
	Epoch int
	// MaxDelta is the running-marginal max change since the last reading.
	MaxDelta float64
	// Spread is the cross-instance marginal disagreement at this reading.
	Spread float64
}

// Progress is delivered to the callback installed with SetProgress after
// every diagnostic epoch.
type Progress struct {
	// Sampler is the variant name ("spatial", "hogwild", "sequential").
	Sampler string
	// Epoch is the sampler lifetime epoch of this reading.
	Epoch int
	// Diag is the convergence reading at that epoch.
	Diag DiagStats
}

// diagTracker computes DiagStats readings from the chains' raw counters.
// The previous merged marginals live in one flat slice seeded from the
// pre-sampling state (point mass for evidence, uniform for query
// variables) so the first reading measures movement away from the prior;
// update overwrites it in place, keeping readings allocation-free.
type diagTracker struct {
	g    *factorgraph.Graph
	prev []float64 // flattened prev merged marginals
	off  []int32   // per variable: offset into prev; len = NumVars()+1
}

func newDiagTracker(g *factorgraph.Graph) *diagTracker {
	n := g.NumVars()
	t := &diagTracker{g: g, off: make([]int32, n+1)}
	for i := 0; i < n; i++ {
		t.off[i+1] = t.off[i] + g.Var(factorgraph.VarID(i)).Domain
	}
	t.prev = make([]float64, t.off[n])
	for i := 0; i < n; i++ {
		v := g.Var(factorgraph.VarID(i))
		row := t.prev[t.off[i]:t.off[i+1]]
		if v.Evidence != factorgraph.NoEvidence {
			row[v.Evidence] = 1
			continue
		}
		for x := range row {
			row[x] = 1 / float64(v.Domain)
		}
	}
	return t
}

// update takes a reading at the given epoch from the chains' counters
// (spatial passes its K instance counters; single-chain samplers pass one).
// Evidence variables are skipped — their marginals are pinned. A variable a
// chain has not counted yet (burn-in, or pinned mid-run) reads as uniform,
// matching Marginals. The merged marginals overwrite prev in place.
func (t *diagTracker) update(epoch int, chains []*counts) DiagStats {
	d := DiagStats{Epoch: epoch}
	n := t.g.NumVars()
	for i := 0; i < n; i++ {
		v := t.g.Var(factorgraph.VarID(i))
		if v.Evidence != factorgraph.NoEvidence {
			continue
		}
		dom := int(v.Domain)
		inv := 1 / float64(dom)
		var mergedTotal int64
		for _, ch := range chains {
			mergedTotal += ch.totals[i]
		}
		base := int(t.off[i])
		for x := 0; x < dom; x++ {
			// Merged marginal across all chains (uniform before any counts).
			cur := inv
			if mergedTotal != 0 {
				var c int64
				for _, ch := range chains {
					c += ch.c[i][x]
				}
				cur = float64(c) / float64(mergedTotal)
			}
			if delta := cur - t.prev[base+x]; delta > d.MaxDelta {
				d.MaxDelta = delta
			} else if -delta > d.MaxDelta {
				d.MaxDelta = -delta
			}
			t.prev[base+x] = cur
			// Cross-instance spread on this entry.
			if len(chains) > 1 {
				lo, hi := 1.0, 0.0
				for _, ch := range chains {
					m := inv
					if ch.totals[i] != 0 {
						m = float64(ch.c[i][x]) / float64(ch.totals[i])
					}
					if m < lo {
						lo = m
					}
					if m > hi {
						hi = m
					}
				}
				if s := hi - lo; s > d.Spread {
					d.Spread = s
				}
			}
		}
	}
	return d
}
