package gibbs

import (
	"math"
	"testing"

	"repro/internal/factorgraph"
	"repro/internal/obs"
)

// diagGraph builds the fixture the hand-computed readings below refer to:
// var0 is evidence pinned at value 1 (domain 2), var1 is a binary query
// variable, var2 a ternary one. No factors — the tracker only reads the
// graph's variable table.
func diagGraph(t testing.TB) *factorgraph.Graph {
	t.Helper()
	b := factorgraph.NewBuilder()
	for _, v := range []factorgraph.Variable{
		{Name: "ev", Domain: 2, Evidence: 1},
		{Name: "q2", Domain: 2, Evidence: factorgraph.NoEvidence},
		{Name: "q3", Domain: 3, Evidence: factorgraph.NoEvidence},
	} {
		if _, err := b.AddVariable(v); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestDiagTrackerSeedsPriorMarginals(t *testing.T) {
	g := diagGraph(t)
	tr := newDiagTracker(g)
	want := []float64{
		0, 1, // evidence: point mass at value 1
		0.5, 0.5, // binary query: uniform
		1.0 / 3, 1.0 / 3, 1.0 / 3, // ternary query: uniform
	}
	if len(tr.prev) != len(want) {
		t.Fatalf("prev has %d entries, want %d", len(tr.prev), len(want))
	}
	for i, w := range want {
		if !approx(tr.prev[i], w) {
			t.Errorf("prev[%d] = %v, want %v", i, tr.prev[i], w)
		}
	}
}

func TestDiagTrackerHandComputedSingleChain(t *testing.T) {
	g := diagGraph(t)
	tr := newDiagTracker(g)
	ch := newCounts(g)
	// Evidence counts must be ignored even when present.
	ch.c[0] = []int64{4, 0}
	ch.totals[0] = 4
	// var1: [3,1]/4 = [0.75, 0.25]; delta vs uniform = 0.25.
	ch.c[1] = []int64{3, 1}
	ch.totals[1] = 4
	// var2: [2,1,1]/4 = [0.5, 0.25, 0.25]; worst delta vs 1/3 = 1/6.
	ch.c[2] = []int64{2, 1, 1}
	ch.totals[2] = 4

	d := tr.update(7, []*counts{ch})
	if d.Epoch != 7 {
		t.Errorf("Epoch = %d, want 7", d.Epoch)
	}
	if !approx(d.MaxDelta, 0.25) {
		t.Errorf("MaxDelta = %v, want 0.25", d.MaxDelta)
	}
	if d.Spread != 0 {
		t.Errorf("Spread = %v, want 0 for a single chain", d.Spread)
	}
	// prev overwritten in place with the merged marginals.
	if !approx(tr.prev[2], 0.75) || !approx(tr.prev[4], 0.5) {
		t.Errorf("prev not updated: %v", tr.prev)
	}
	// An identical second reading moves nothing.
	d = tr.update(8, []*counts{ch})
	if d.MaxDelta != 0 || d.Spread != 0 {
		t.Errorf("repeat reading = %+v, want zero deltas", d)
	}
}

func TestDiagTrackerHandComputedCrossChainSpread(t *testing.T) {
	g := diagGraph(t)
	tr := newDiagTracker(g)
	a, b := newCounts(g), newCounts(g)
	// var1: chain a [3,1]/4, chain b [1,3]/4. Merged = [4,4]/8 = uniform,
	// so MaxDelta vs the uniform seed is 0 — but the chains disagree by
	// 0.75-0.25 = 0.5 on each entry.
	a.c[1] = []int64{3, 1}
	a.totals[1] = 4
	b.c[1] = []int64{1, 3}
	b.totals[1] = 4
	// var2: only chain a has counts; chain b reads as uniform. Merged =
	// [2,1,1]/4; spread on entry 0 is 0.5 - 1/3 = 1/6 < 0.5.
	a.c[2] = []int64{2, 1, 1}
	a.totals[2] = 4

	d := tr.update(1, []*counts{a, b})
	if !approx(d.Spread, 0.5) {
		t.Errorf("Spread = %v, want 0.5", d.Spread)
	}
	// Merged var2 delta: 0.5 - 1/3 = 1/6 is the largest movement.
	if !approx(d.MaxDelta, 1.0/6) {
		t.Errorf("MaxDelta = %v, want 1/6", d.MaxDelta)
	}
}

func TestDiagTrackerUncountedChainsReadUniform(t *testing.T) {
	g := diagGraph(t)
	tr := newDiagTracker(g)
	// No chain has sampled anything: merged marginals stay uniform, so the
	// first reading measures no movement away from the seed.
	d := tr.update(1, []*counts{newCounts(g), newCounts(g)})
	if d.MaxDelta != 0 || d.Spread != 0 {
		t.Errorf("empty-chain reading = %+v, want zeros", d)
	}
}

func TestDiagTrackerUpdateAllocFree(t *testing.T) {
	g := diagGraph(t)
	tr := newDiagTracker(g)
	ch := newCounts(g)
	ch.c[1] = []int64{3, 1}
	ch.totals[1] = 4
	chains := []*counts{ch}
	if n := testing.AllocsPerRun(100, func() {
		ch.c[1][0]++
		ch.totals[1]++
		tr.update(1, chains)
	}); n != 0 {
		t.Errorf("update allocates %v objects per reading, want 0", n)
	}
}

func TestComposeChunkHook(t *testing.T) {
	if composeChunkHook(nil, nil) != nil {
		t.Error("both nil should compose to nil (pool skips the call)")
	}
	c := obs.NewRegistry().Counter("chunks")
	composeChunkHook(c, nil)(3)
	if c.Value() != 1 {
		t.Errorf("counter-only hook: count = %d, want 1", c.Value())
	}
	var faulted []uint64
	fault := func(n uint64) { faulted = append(faulted, n) }
	composeChunkHook(nil, fault)(5)
	composeChunkHook(c, fault)(9)
	if c.Value() != 2 {
		t.Errorf("composed hook: count = %d, want 2", c.Value())
	}
	if len(faulted) != 2 || faulted[0] != 5 || faulted[1] != 9 {
		t.Errorf("fault hook saw %v, want [5 9]", faulted)
	}
}
