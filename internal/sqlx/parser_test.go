package sqlx

import (
	"strings"
	"testing"

	"repro/internal/storage"
)

func mustParse(t *testing.T, sql string) *Stmt {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return stmt
}

func TestLexer(t *testing.T) {
	toks, err := lexAll("SELECT a.b, 'it''s', 1.5e-3, :p FROM t WHERE x <= 3 AND y <> 4")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	if toks[len(toks)-1].kind != tokEOF {
		t.Error("missing EOF")
	}
	// Spot checks: SELECT(0) a(1) .(2) b(3).
	if toks[2].kind != tokDot {
		t.Errorf("token 2 = %v", toks[2])
	}
	var str, num, param string
	for _, tk := range toks {
		switch tk.kind {
		case tokString:
			str = tk.text
		case tokParam:
			param = tk.text
		case tokNumber:
			if strings.Contains(tk.text, "e") {
				num = tk.text
			}
		}
	}
	if str != "it's" {
		t.Errorf("string = %q", str)
	}
	if num != "1.5e-3" {
		t.Errorf("number = %q", num)
	}
	if param != "p" {
		t.Errorf("param = %q", param)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", ":", "!x", "#"} {
		if _, err := lexAll(src); err == nil {
			t.Errorf("lexAll(%q) should fail", src)
		}
	}
}

func TestParseSimpleSelect(t *testing.T) {
	stmt := mustParse(t, "SELECT id, name FROM users WHERE id = 3")
	sel := stmt.Select
	if sel == nil {
		t.Fatal("no select")
	}
	if len(sel.Items) != 2 || len(sel.From) != 1 {
		t.Fatalf("items=%d from=%d", len(sel.Items), len(sel.From))
	}
	if sel.From[0].Table != "users" || sel.From[0].EffectiveAlias() != "users" {
		t.Errorf("from = %+v", sel.From[0])
	}
	if sel.Where == nil {
		t.Error("where missing")
	}
	if sel.Limit != -1 {
		t.Errorf("limit = %d", sel.Limit)
	}
}

func TestParseAliasesJoinOn(t *testing.T) {
	stmt := mustParse(t, `SELECT w1.id, w2.id FROM Well w1 JOIN Well AS w2 ON w1.id = w2.id WHERE w1.x < 5`)
	sel := stmt.Select
	if len(sel.From) != 2 {
		t.Fatalf("from = %d", len(sel.From))
	}
	if sel.From[0].Alias != "w1" || sel.From[1].Alias != "w2" {
		t.Errorf("aliases = %q %q", sel.From[0].Alias, sel.From[1].Alias)
	}
	// ON condition folded into WHERE as a conjunct.
	conjs := splitConjuncts(sel.Where, nil)
	if len(conjs) != 2 {
		t.Errorf("conjuncts = %d, want 2 (ON + WHERE)", len(conjs))
	}
}

func TestParseInnerJoin(t *testing.T) {
	stmt := mustParse(t, `SELECT * FROM a INNER JOIN b ON a.x = b.x`)
	if len(stmt.Select.From) != 2 {
		t.Fatalf("from = %d", len(stmt.Select.From))
	}
	if !stmt.Select.Items[0].Star {
		t.Error("star projection expected")
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	stmt := mustParse(t, "SELECT 1 FROM t WHERE a = 1 OR b = 2 AND c = 3")
	or, ok := stmt.Select.Where.(Binary)
	if !ok || or.Op != OpOr {
		t.Fatalf("top op should be OR, got %v", stmt.Select.Where.SQL())
	}
	and, ok := or.R.(Binary)
	if !ok || and.Op != OpAnd {
		t.Fatalf("right of OR should be AND, got %v", or.R.SQL())
	}
	// Arithmetic binds tighter than comparison.
	stmt2 := mustParse(t, "SELECT 1 FROM t WHERE a + b * 2 < 10")
	cmp := stmt2.Select.Where.(Binary)
	if cmp.Op != OpLt {
		t.Fatalf("top should be <, got %v", cmp.Op)
	}
	add := cmp.L.(Binary)
	if add.Op != OpAdd {
		t.Fatalf("left should be +, got %v", add.Op)
	}
}

func TestParseNotAndNeg(t *testing.T) {
	stmt := mustParse(t, "SELECT 1 FROM t WHERE NOT a = -b")
	n, ok := stmt.Select.Where.(Not)
	if !ok {
		t.Fatalf("want Not, got %T", stmt.Select.Where)
	}
	cmp := n.E.(Binary)
	if _, ok := cmp.R.(Neg); !ok {
		t.Fatalf("want Neg, got %T", cmp.R)
	}
}

func TestParseFunctionCalls(t *testing.T) {
	stmt := mustParse(t, "SELECT ST_DISTANCE(a.loc, b.loc, 'miles') d FROM t a, t b WHERE ST_DWITHIN(a.loc, b.loc, 150)")
	item := stmt.Select.Items[0]
	call, ok := item.Expr.(Call)
	if !ok || call.Name != "ST_DISTANCE" || len(call.Args) != 3 {
		t.Fatalf("bad call: %+v", item.Expr)
	}
	if item.Alias != "d" {
		t.Errorf("alias = %q", item.Alias)
	}
	w := stmt.Select.Where.(Call)
	if w.Name != "ST_DWITHIN" {
		t.Errorf("where = %v", w.Name)
	}
}

func TestParseLiterals(t *testing.T) {
	stmt := mustParse(t, "SELECT true, false, null, 'str', 42, 2.5 FROM t")
	vals := []storage.Value{
		storage.Bool(true), storage.Bool(false), storage.Null,
		storage.Str("str"), storage.Int(42), storage.Float(2.5),
	}
	for i, want := range vals {
		lit, ok := stmt.Select.Items[i].Expr.(Lit)
		if !ok {
			t.Fatalf("item %d not literal: %T", i, stmt.Select.Items[i].Expr)
		}
		if !lit.Val.Equal(want) && !(lit.Val.IsNull() && want.IsNull()) {
			t.Errorf("item %d = %v, want %v", i, lit.Val, want)
		}
	}
}

func TestParseOrderByLimitDistinct(t *testing.T) {
	stmt := mustParse(t, "SELECT DISTINCT a FROM t ORDER BY a DESC, b ASC LIMIT 10")
	sel := stmt.Select
	if !sel.Distinct {
		t.Error("distinct missing")
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("orderby = %+v", sel.OrderBy)
	}
	if sel.Limit != 10 {
		t.Errorf("limit = %d", sel.Limit)
	}
}

func TestParseInsertSelect(t *testing.T) {
	stmt := mustParse(t, "INSERT INTO facts (v1, v2, w) SELECT a.id, b.id, 0.5 FROM t a, t b")
	ins := stmt.Insert
	if ins == nil || ins.Table != "facts" || len(ins.Cols) != 3 {
		t.Fatalf("insert = %+v", ins)
	}
	if ins.Select == nil || len(ins.Select.From) != 2 {
		t.Error("insert select missing")
	}
}

func TestParseExplain(t *testing.T) {
	stmt := mustParse(t, "EXPLAIN SELECT 1 FROM t")
	if !stmt.Explain {
		t.Error("explain flag missing")
	}
}

func TestParseParams(t *testing.T) {
	stmt := mustParse(t, "SELECT 1 FROM t WHERE ST_WITHIN(loc, :region)")
	call := stmt.Select.Where.(Call)
	if p, ok := call.Args[1].(Param); !ok || p.Name != "region" {
		t.Errorf("param = %+v", call.Args[1])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"DELETE FROM t",
		"SELECT",
		"SELECT 1",      // missing FROM
		"SELECT 1 FROM", // missing table
		"SELECT 1 FROM t t2 t3",
		"SELECT 1 FROM t WHERE",
		"SELECT 1 FROM t LIMIT x",
		"SELECT 1 FROM t LIMIT -1",
		"INSERT INTO t VALUES (1)",
		"INSERT INTO t (a SELECT 1 FROM u",
		"SELECT f(1, FROM t",
		"SELECT (1 FROM t",
		"SELECT a. FROM t",
		"SELECT 1 FROM t extra garbage here",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestExprSQLRoundTrip(t *testing.T) {
	// SQL() output of a parsed expression re-parses to the same SQL.
	srcs := []string{
		"SELECT 1 FROM t WHERE (a = 1 AND b < 2) OR NOT c >= 3",
		"SELECT 1 FROM t WHERE ST_DWITHIN(a.loc, b.loc, 150, 'miles')",
		"SELECT 1 FROM t WHERE x + 1 * 2 - 3 / 4 <> 0",
	}
	for _, src := range srcs {
		s1 := mustParse(t, src).Select.Where.SQL()
		re := mustParse(t, "SELECT 1 FROM t WHERE "+s1).Select.Where.SQL()
		if s1 != re {
			t.Errorf("round trip:\n%s\n%s", s1, re)
		}
	}
}
