package sqlx

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/storage"
)

// Parse parses one SQL statement from src.
func Parse(src string) (*Stmt, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF) {
		return nil, fmt.Errorf("sqlx: trailing input at %s", p.peek())
	}
	return stmt, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) at(k tokenKind) bool { return p.peek().kind == k }

// atKeyword reports whether the current token is the given keyword
// (case-insensitive).
func (p *parser) atKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) advance() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return fmt.Errorf("sqlx: expected %s, got %s", strings.ToUpper(kw), p.peek())
	}
	p.advance()
	return nil
}

func (p *parser) expect(k tokenKind, what string) (token, error) {
	if !p.at(k) {
		return token{}, fmt.Errorf("sqlx: expected %s, got %s", what, p.peek())
	}
	return p.advance(), nil
}

// reserved keywords cannot be used as implicit aliases.
var reserved = map[string]bool{
	"select": true, "from": true, "where": true, "and": true, "or": true,
	"not": true, "join": true, "inner": true, "on": true, "insert": true,
	"into": true, "as": true, "order": true, "by": true, "asc": true, "group": true, "having": true,
	"desc": true, "limit": true, "true": true, "false": true, "null": true,
	"explain": true, "distinct": true, "values": true,
}

func (p *parser) parseStmt() (*Stmt, error) {
	explain := false
	if p.atKeyword("explain") {
		p.advance()
		explain = true
	}
	switch {
	case p.atKeyword("select"):
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &Stmt{Select: sel, Explain: explain}, nil
	case p.atKeyword("insert"):
		ins, err := p.parseInsert()
		if err != nil {
			return nil, err
		}
		return &Stmt{Insert: ins, Explain: explain}, nil
	default:
		return nil, fmt.Errorf("sqlx: expected SELECT or INSERT, got %s", p.peek())
	}
}

func (p *parser) parseInsert() (*InsertStmt, error) {
	p.advance() // INSERT
	if err := p.expectKeyword("into"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "table name")
	if err != nil {
		return nil, err
	}
	ins := &InsertStmt{Table: name.text}
	if p.at(tokLParen) {
		p.advance()
		for {
			col, err := p.expect(tokIdent, "column name")
			if err != nil {
				return nil, err
			}
			ins.Cols = append(ins.Cols, col.text)
			if p.at(tokComma) {
				p.advance()
				continue
			}
			break
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
	}
	if !p.atKeyword("select") {
		return nil, fmt.Errorf("sqlx: INSERT supports only INSERT ... SELECT, got %s", p.peek())
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	ins.Select = sel
	return ins, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	p.advance() // SELECT
	sel := &SelectStmt{Limit: -1}
	if p.atKeyword("distinct") {
		p.advance()
		sel.Distinct = true
	}
	// Projections.
	for {
		if p.at(tokStar) {
			p.advance()
			sel.Items = append(sel.Items, SelectItem{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.atKeyword("as") {
				p.advance()
				alias, err := p.expect(tokIdent, "alias")
				if err != nil {
					return nil, err
				}
				item.Alias = alias.text
			} else if p.at(tokIdent) && !p.reservedNext() {
				item.Alias = p.advance().text
			}
			sel.Items = append(sel.Items, item)
		}
		if p.at(tokComma) {
			p.advance()
			continue
		}
		break
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	// FROM list with optional JOIN ... ON sugar.
	var onConds []Expr
	ref, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	sel.From = append(sel.From, ref)
	for {
		isJoin := false
		switch {
		case p.at(tokComma):
			p.advance()
		case p.atKeyword("inner"):
			p.advance()
			if err := p.expectKeyword("join"); err != nil {
				return nil, err
			}
			isJoin = true
		case p.atKeyword("join"):
			p.advance()
			isJoin = true
		default:
			goto fromDone
		}
		ref, err = p.parseTableRef()
		if err != nil {
			return nil, err
		}
		sel.From = append(sel.From, ref)
		if isJoin && p.atKeyword("on") {
			p.advance()
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			onConds = append(onConds, cond)
		}
	}
fromDone:
	if p.atKeyword("where") {
		p.advance()
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		onConds = append(onConds, w)
	}
	sel.Where = conjoin(onConds)
	if p.atKeyword("group") {
		p.advance()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if p.at(tokComma) {
				p.advance()
				continue
			}
			break
		}
		if p.atKeyword("having") {
			p.advance()
			h, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.Having = h
		}
	}
	if p.atKeyword("order") {
		p.advance()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.atKeyword("asc") {
				p.advance()
			} else if p.atKeyword("desc") {
				p.advance()
				item.Desc = true
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if p.at(tokComma) {
				p.advance()
				continue
			}
			break
		}
	}
	if p.atKeyword("limit") {
		p.advance()
		n, err := p.expect(tokNumber, "limit count")
		if err != nil {
			return nil, err
		}
		lim, err := strconv.Atoi(n.text)
		if err != nil || lim < 0 {
			return nil, fmt.Errorf("sqlx: bad LIMIT %q", n.text)
		}
		sel.Limit = lim
	}
	return sel, nil
}

func (p *parser) reservedNext() bool {
	return reserved[strings.ToLower(p.peek().text)]
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.expect(tokIdent, "table name")
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name.text}
	if p.atKeyword("as") {
		p.advance()
		alias, err := p.expect(tokIdent, "alias")
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias.text
	} else if p.at(tokIdent) && !p.reservedNext() {
		ref.Alias = p.advance().text
	}
	return ref, nil
}

// Expression parsing, by descending precedence:
// OR < AND < NOT < comparison < additive < multiplicative < unary < primary.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("or") {
		p.advance()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("and") {
		p.advance()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.atKeyword("not") {
		p.advance()
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return Not{E: e}, nil
	}
	return p.parseComparison()
}

var compOps = map[string]BinOp{
	"=": OpEq, "<>": OpNe, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.at(tokOp) {
		if op, ok := compOps[p.peek().text]; ok {
			p.advance()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return Binary{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.at(tokOp) && (p.peek().text == "+" || p.peek().text == "-") {
		op := OpAdd
		if p.advance().text == "-" {
			op = OpSub
		}
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for (p.at(tokOp) && p.peek().text == "/") || p.at(tokStar) {
		op := OpMul
		if p.advance().text == "/" {
			op = OpDiv
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.at(tokOp) && p.peek().text == "-" {
		p.advance()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Neg{E: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.advance()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("sqlx: bad number %q: %w", t.text, err)
			}
			return Lit{Val: storage.Float(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(t.text, 64)
			if ferr != nil {
				return nil, fmt.Errorf("sqlx: bad number %q: %w", t.text, err)
			}
			return Lit{Val: storage.Float(f)}, nil
		}
		return Lit{Val: storage.Int(i)}, nil
	case tokString:
		p.advance()
		return Lit{Val: storage.Str(t.text)}, nil
	case tokParam:
		p.advance()
		return Param{Name: t.text}, nil
	case tokLParen:
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case tokIdent:
		switch strings.ToLower(t.text) {
		case "true":
			p.advance()
			return Lit{Val: storage.Bool(true)}, nil
		case "false":
			p.advance()
			return Lit{Val: storage.Bool(false)}, nil
		case "null":
			p.advance()
			return Lit{Val: storage.Null}, nil
		}
		p.advance()
		// Function call?
		if p.at(tokLParen) {
			p.advance()
			call := Call{Name: strings.ToUpper(t.text)}
			// COUNT(*) — a bare star argument.
			if p.at(tokStar) && call.Name == "COUNT" {
				p.advance()
				call.Star = true
			}
			if !p.at(tokRParen) && !call.Star {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if p.at(tokComma) {
						p.advance()
						continue
					}
					break
				}
			}
			if _, err := p.expect(tokRParen, ")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		// Qualified column?
		if p.at(tokDot) {
			p.advance()
			col, err := p.expect(tokIdent, "column name")
			if err != nil {
				return nil, err
			}
			return ColRef{Table: t.text, Col: col.text}, nil
		}
		return ColRef{Col: t.text}, nil
	default:
		return nil, fmt.Errorf("sqlx: unexpected %s in expression", t)
	}
}
