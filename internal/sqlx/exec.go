package sqlx

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/index/rtree"
	"repro/internal/parallel"
	"repro/internal/storage"
)

// Result is the output of a query: column names plus rows.
type Result struct {
	Cols []string
	Rows []storage.Row
}

// Engine executes SQL statements against a storage database.
type Engine struct {
	db *storage.DB
	// workers > 1 enables sharded batch evaluation inside joins, residual
	// filters and projection (see shardAll); ctx is polled between batches.
	// Both are set by SetParallelism — the zero value runs fully
	// sequentially.
	workers int
	ctx     context.Context
}

// NewEngine wraps a database.
func NewEngine(db *storage.DB) *Engine { return &Engine{db: db} }

// DB exposes the underlying database.
func (e *Engine) DB() *storage.DB { return e.db }

// SetParallelism configures batched tuple evaluation inside SELECT
// execution: the probe side of hash, spatial and nested-loop joins, the
// residual filter pass after each join step, and the projection pass are
// each split into row batches evaluated by up to `workers` goroutines, with
// batch outputs concatenated in input order — result rows are identical for
// any worker count. ctx (nil → Background) is polled between batches so a
// cancelled grounding stops mid-query. workers <= 1 keeps the engine
// sequential.
//
// Not safe to call concurrently with Exec; configure once before issuing
// queries (concurrent Execs after that are fine — execution only reads
// these fields).
func (e *Engine) SetParallelism(workers int, ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	e.workers = workers
	e.ctx = ctx
}

// probeParallelMin is the input row count below which a batch stage stays
// sequential — batching overhead would dominate smaller inputs.
const probeParallelMin = 128

// probeGrain is the batch size for sharded stage evaluation.
const probeGrain = 64

// shardAll evaluates rangeFn over all n input tuples: one inline call when
// the engine is sequential or the input is small, else sharded into fixed
// batches across workers with outputs merged in batch order — chunk
// boundaries depend only on n, so the merged output is identical for any
// worker count. rangeFn must be safe for concurrent batches: build a
// batch-local env inside it and only read shared state.
func shardAll[T any](e *Engine, n int, rangeFn func(lo, hi int) ([]T, error)) ([]T, error) {
	if e.workers <= 1 || n < probeParallelMin {
		return rangeFn(0, n)
	}
	parts := make([][]T, parallel.NumChunks(n, probeGrain))
	err := parallel.For(e.ctx, e.workers, n, probeGrain, func(c, lo, hi int) error {
		rows, err := rangeFn(lo, hi)
		if err != nil {
			return err
		}
		parts[c] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]T, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// Exec parses and runs one statement. params binds :name placeholders.
// For EXPLAIN, the result is one text row per plan step. INSERT returns a
// single row holding the inserted-row count.
func (e *Engine) Exec(sql string, params map[string]storage.Value) (*Result, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return e.ExecStmt(stmt, params)
}

// ExecStmt runs a parsed statement.
func (e *Engine) ExecStmt(stmt *Stmt, params map[string]storage.Value) (*Result, error) {
	switch {
	case stmt.Select != nil:
		p, err := buildPlan(e.db, stmt.Select, params)
		if err != nil {
			return nil, err
		}
		if stmt.Explain {
			res := &Result{Cols: []string{"plan"}}
			for _, line := range p.Explain() {
				res.Rows = append(res.Rows, storage.Row{storage.Str(line)})
			}
			return res, nil
		}
		return e.runSelect(p, params)
	case stmt.Insert != nil:
		if stmt.Explain {
			p, err := buildPlan(e.db, stmt.Insert.Select, params)
			if err != nil {
				return nil, err
			}
			res := &Result{Cols: []string{"plan"}}
			for _, line := range p.Explain() {
				res.Rows = append(res.Rows, storage.Row{storage.Str(line)})
			}
			return res, nil
		}
		return e.runInsert(stmt.Insert, params)
	default:
		return nil, fmt.Errorf("sqlx: empty statement")
	}
}

// tupleSet is the intermediate join state: for each result tuple, one row id
// per bound scan node (aligned with nodes).
type tupleSet struct {
	nodes  []*scanNode
	tuples [][]int
}

func (ts *tupleSet) envFor(params map[string]storage.Value) *env {
	ev := &env{
		aliases: make([]string, len(ts.nodes)),
		schemas: make([]storage.Schema, len(ts.nodes)),
		rows:    make([]storage.Row, len(ts.nodes)),
		params:  params,
	}
	for i, n := range ts.nodes {
		ev.aliases[i] = n.alias
		ev.schemas[i] = n.tbl.Schema()
	}
	return ev
}

func (ts *tupleSet) bind(ev *env, tuple []int) {
	for i, n := range ts.nodes {
		ev.rows[i] = n.tbl.Row(tuple[i])
	}
}

func (e *Engine) runSelect(p *plan, params map[string]storage.Value) (*Result, error) {
	ts := &tupleSet{}
	for stepIdx, step := range p.steps {
		if stepIdx == 0 {
			ts.nodes = append(ts.nodes, step.node)
			for _, id := range step.node.ids {
				ts.tuples = append(ts.tuples, []int{id})
			}
		} else {
			if err := e.joinStep(ts, step, params); err != nil {
				return nil, err
			}
		}
		// Residual predicates that became evaluable at this step: a pure
		// per-tuple filter, sharded like a join's probe side — each batch
		// evaluates with its own env and kept tuples concatenate in input
		// order.
		if len(step.extra) > 0 {
			extra := step.extra
			kept, err := shardAll(e, len(ts.tuples), func(lo, hi int) ([][]int, error) {
				ev := ts.envFor(params)
				var out [][]int
				for _, tuple := range ts.tuples[lo:hi] {
					ts.bind(ev, tuple)
					ok := true
					for _, f := range extra {
						pass, err := ev.evalBool(f)
						if err != nil {
							return nil, err
						}
						if !pass {
							ok = false
							break
						}
					}
					if ok {
						out = append(out, tuple)
					}
				}
				return out, nil
			})
			if err != nil {
				return nil, err
			}
			ts.tuples = kept
		}
	}
	return e.project(ts, p.sel, params)
}

// joinStep extends every tuple with matching rows of the step's node. Each
// join flavour is expressed as a probeRange closure evaluating one
// contiguous probe-tuple batch with batch-local envs and scratch; shared
// state (the hash table, the R-tree, the right side's rows) is built once
// and only read during probing. shardAll shards the batches across the
// engine's workers — batch outputs concatenate in input order, so the
// joined tuple order is identical for any worker count.
func (e *Engine) joinStep(ts *tupleSet, step planStep, params map[string]storage.Value) error {
	right := step.node
	via := step.joinVia

	extend := func(tuple []int, rid int) []int {
		nt := make([]int, len(tuple)+1)
		copy(nt, tuple)
		nt[len(tuple)] = rid
		return nt
	}

	var probeRange func(lo, hi int) ([][]int, error)
	switch {
	case via != nil && via.kind == conjEqui:
		// Hash join: build on the right side's filtered rows.
		probe, build := via.leftCol, via.rightCol
		if strings.EqualFold(build.Table, right.alias) {
			// already right
		} else {
			probe, build = via.rightCol, via.leftCol
		}
		bi := right.tbl.Schema().ColIndex(build.Col)
		if bi < 0 {
			return fmt.Errorf("sqlx: %s has no column %q", right.ref.Table, build.Col)
		}
		ht := map[string][]int{}
		for _, id := range right.ids {
			v := right.tbl.Row(id)[bi]
			if v.IsNull() {
				continue // NULL never equi-joins
			}
			k := hashKeyOf(v)
			ht[k] = append(ht[k], id)
		}
		probeRange = func(lo, hi int) ([][]int, error) {
			ev := ts.envFor(params)
			var out [][]int
			for _, tuple := range ts.tuples[lo:hi] {
				ts.bind(ev, tuple)
				v, err := ev.eval(probe)
				if err != nil {
					return nil, err
				}
				if v.IsNull() {
					continue
				}
				for _, rid := range ht[hashKeyOf(v)] {
					if right.tbl.Row(rid)[bi].Equal(v) {
						out = append(out, extend(tuple, rid))
					}
				}
			}
			return out, nil
		}
	case via != nil && via.kind == conjSpatial:
		// R-tree spatial join: filter candidates by expanded bounding box,
		// then refine with the exact predicate expression.
		probe, build := via.leftGeom, via.rightGeom
		if !strings.EqualFold(build.Table, right.alias) {
			probe, build = via.rightGeom, via.leftGeom
		}
		tree, err := spatialJoinIndex(right, build.Col)
		if err != nil {
			return err
		}
		probeRange = func(lo, hi int) ([][]int, error) {
			ev := ts.envFor(params)
			refine := ts.envFor(params)
			refine.aliases = append(refine.aliases, right.alias)
			refine.schemas = append(refine.schemas, right.tbl.Schema())
			refine.rows = append(refine.rows, nil)
			var cands []int // batch-reused scratch
			var out [][]int
			for _, tuple := range ts.tuples[lo:hi] {
				ts.bind(ev, tuple)
				gv, err := ev.eval(probe)
				if err != nil {
					return nil, err
				}
				if gv.IsNull() {
					continue
				}
				g, err := gv.AsGeom()
				if err != nil {
					return nil, err
				}
				window := expandWindow(g.Bounds(), via.radius, via.metric)
				cands = cands[:0]
				tree.Search(window, func(it rtree.Item) bool {
					cands = append(cands, int(it.Data))
					return true
				})
				sort.Ints(cands)
				for i := range ts.nodes {
					refine.rows[i] = ev.rows[i]
				}
				for _, rid := range cands {
					refine.rows[len(ts.nodes)] = right.tbl.Row(rid)
					ok, err := refine.evalBool(via.expr)
					if err != nil {
						return nil, err
					}
					if ok {
						out = append(out, extend(tuple, rid))
					}
				}
			}
			return out, nil
		}
	default:
		// Nested-loop (theta or cross) join.
		probeRange = func(lo, hi int) ([][]int, error) {
			thetaEv := ts.envFor(params)
			thetaEv.aliases = append(thetaEv.aliases, right.alias)
			thetaEv.schemas = append(thetaEv.schemas, right.tbl.Schema())
			thetaEv.rows = append(thetaEv.rows, nil)
			var out [][]int
			for _, tuple := range ts.tuples[lo:hi] {
				ts.bind(thetaEv, tuple)
				for _, rid := range right.ids {
					thetaEv.rows[len(ts.nodes)] = right.tbl.Row(rid)
					if via != nil {
						ok, err := thetaEv.evalBool(via.expr)
						if err != nil {
							return nil, err
						}
						if !ok {
							continue
						}
					}
					out = append(out, extend(tuple, rid))
				}
			}
			return out, nil
		}
	}
	out, err := shardAll(e, len(ts.tuples), probeRange)
	if err != nil {
		return err
	}
	ts.nodes = append(ts.nodes, right)
	ts.tuples = out
	return nil
}

func hashKeyOf(v storage.Value) string {
	// Reuse Value.String for scalar bucketing; normalize numerics so that
	// Int(3) and Float(3) collide (Equal re-checks afterwards).
	if f, err := v.AsFloat(); err == nil {
		return fmt.Sprintf("n%v", f)
	}
	return v.Kind.String() + ":" + v.String()
}

// anyAggregateItem reports whether any SELECT item contains an aggregate.
func anyAggregateItem(sel *SelectStmt) bool {
	for _, item := range sel.Items {
		if !item.Star && hasAggregate(item.Expr) {
			return true
		}
	}
	return false
}

// aggregateFns lists the aggregate function names.
var aggregateFns = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// hasAggregate reports whether e contains an aggregate call.
func hasAggregate(e Expr) bool {
	switch v := e.(type) {
	case Call:
		if aggregateFns[v.Name] {
			return true
		}
		for _, a := range v.Args {
			if hasAggregate(a) {
				return true
			}
		}
	case Binary:
		return hasAggregate(v.L) || hasAggregate(v.R)
	case Not:
		return hasAggregate(v.E)
	case Neg:
		return hasAggregate(v.E)
	}
	return false
}

// rewriteAggregates replaces aggregate sub-calls in e with literal values
// computed over the group's tuples, so the remaining expression evaluates
// on any single tuple of the group.
func rewriteAggregates(e Expr, ts *tupleSet, tuples [][]int, ev *env) (Expr, error) {
	switch v := e.(type) {
	case Call:
		if aggregateFns[v.Name] {
			val, err := computeAggregate(v, ts, tuples, ev)
			if err != nil {
				return nil, err
			}
			return Lit{Val: val}, nil
		}
		out := Call{Name: v.Name, Star: v.Star, Args: make([]Expr, len(v.Args))}
		for i, a := range v.Args {
			ra, err := rewriteAggregates(a, ts, tuples, ev)
			if err != nil {
				return nil, err
			}
			out.Args[i] = ra
		}
		return out, nil
	case Binary:
		l, err := rewriteAggregates(v.L, ts, tuples, ev)
		if err != nil {
			return nil, err
		}
		r, err := rewriteAggregates(v.R, ts, tuples, ev)
		if err != nil {
			return nil, err
		}
		return Binary{Op: v.Op, L: l, R: r}, nil
	case Not:
		inner, err := rewriteAggregates(v.E, ts, tuples, ev)
		if err != nil {
			return nil, err
		}
		return Not{E: inner}, nil
	case Neg:
		inner, err := rewriteAggregates(v.E, ts, tuples, ev)
		if err != nil {
			return nil, err
		}
		return Neg{E: inner}, nil
	default:
		return e, nil
	}
}

// computeAggregate evaluates one aggregate call over a group.
func computeAggregate(c Call, ts *tupleSet, tuples [][]int, ev *env) (storage.Value, error) {
	if c.Name == "COUNT" && (c.Star || len(c.Args) == 0) {
		return storage.Int(int64(len(tuples))), nil
	}
	if len(c.Args) != 1 {
		return storage.Null, fmt.Errorf("sqlx: %s takes one argument", c.Name)
	}
	var count int64
	var sum float64
	var best storage.Value
	haveBest := false
	for _, tuple := range tuples {
		ts.bind(ev, tuple)
		v, err := ev.eval(c.Args[0])
		if err != nil {
			return storage.Null, err
		}
		if v.IsNull() {
			continue
		}
		count++
		switch c.Name {
		case "SUM", "AVG":
			f, err := v.AsFloat()
			if err != nil {
				return storage.Null, err
			}
			sum += f
		case "MIN", "MAX":
			if !haveBest {
				best, haveBest = v, true
				continue
			}
			cmp, err := v.Compare(best)
			if err != nil {
				return storage.Null, err
			}
			if (c.Name == "MIN" && cmp < 0) || (c.Name == "MAX" && cmp > 0) {
				best = v
			}
		}
	}
	switch c.Name {
	case "COUNT":
		return storage.Int(count), nil
	case "SUM":
		if count == 0 {
			return storage.Null, nil
		}
		return storage.Float(sum), nil
	case "AVG":
		if count == 0 {
			return storage.Null, nil
		}
		return storage.Float(sum / float64(count)), nil
	default: // MIN, MAX
		if !haveBest {
			return storage.Null, nil
		}
		return best, nil
	}
}

// projectAggregated handles SELECT lists containing aggregates and/or a
// GROUP BY clause: tuples are grouped by the GROUP BY keys (one global
// group when absent), each output row evaluating aggregates over its group
// and plain expressions on the group's first tuple.
func projectAggregated(ts *tupleSet, sel *SelectStmt, params map[string]storage.Value) (*Result, error) {
	for _, item := range sel.Items {
		if item.Star {
			return nil, fmt.Errorf("sqlx: SELECT * cannot be combined with aggregation")
		}
	}
	ev := ts.envFor(params)
	type group struct {
		first  []int
		tuples [][]int
	}
	var order []string
	groups := map[string]*group{}
	for _, tuple := range ts.tuples {
		ts.bind(ev, tuple)
		var key strings.Builder
		for _, ge := range sel.GroupBy {
			v, err := ev.eval(ge)
			if err != nil {
				return nil, err
			}
			key.WriteString(v.Kind.String())
			key.WriteByte(':')
			key.WriteString(v.String())
			key.WriteByte('\x00')
		}
		k := key.String()
		g, ok := groups[k]
		if !ok {
			g = &group{first: tuple}
			groups[k] = g
			order = append(order, k)
		}
		g.tuples = append(g.tuples, tuple)
	}
	// A global aggregate over zero tuples still yields one row.
	if len(groups) == 0 && len(sel.GroupBy) == 0 {
		groups[""] = &group{}
		order = append(order, "")
	}
	res := &Result{}
	for _, item := range sel.Items {
		name := item.Alias
		if name == "" {
			if cr, ok := item.Expr.(ColRef); ok {
				name = cr.Col
			} else {
				name = item.Expr.SQL()
			}
		}
		res.Cols = append(res.Cols, name)
	}
	type ordered struct {
		row  storage.Row
		keys []storage.Value
	}
	var rows []ordered
	for _, k := range order {
		g := groups[k]
		evalOn := func(e Expr) (storage.Value, error) {
			re, err := rewriteAggregates(e, ts, g.tuples, ev)
			if err != nil {
				return storage.Null, err
			}
			if g.first == nil {
				// Zero-tuple global group: only aggregate-derived literals
				// are meaningful; evaluate with no bindings.
				bare := &env{params: params}
				return bare.eval(re)
			}
			ts.bind(ev, g.first)
			return ev.eval(re)
		}
		if sel.Having != nil {
			hv, err := evalOn(sel.Having)
			if err != nil {
				return nil, err
			}
			if hv.IsNull() {
				continue
			}
			keep, err := hv.AsBool()
			if err != nil {
				return nil, err
			}
			if !keep {
				continue
			}
		}
		row := make(storage.Row, len(sel.Items))
		for i, item := range sel.Items {
			v, err := evalOn(item.Expr)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		var keys []storage.Value
		for _, ob := range sel.OrderBy {
			v, err := evalOn(ob.Expr)
			if err != nil {
				return nil, err
			}
			keys = append(keys, v)
		}
		rows = append(rows, ordered{row: row, keys: keys})
	}
	if len(sel.OrderBy) > 0 {
		var sortErr error
		sort.SliceStable(rows, func(i, j int) bool {
			for k2, ob := range sel.OrderBy {
				c, err := compareForSort(rows[i].keys[k2], rows[j].keys[k2])
				if err != nil {
					sortErr = err
					return false
				}
				if c != 0 {
					if ob.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
		if sortErr != nil {
			return nil, sortErr
		}
	}
	if sel.Limit >= 0 && len(rows) > sel.Limit {
		rows = rows[:sel.Limit]
	}
	for _, r := range rows {
		res.Rows = append(res.Rows, r.row)
	}
	return res, nil
}

// project applies the SELECT list, DISTINCT, ORDER BY and LIMIT. The
// per-tuple expression evaluation is sharded across the engine's workers
// (each batch with its own env, outputs merged in input order); DISTINCT,
// the sort and LIMIT run sequentially on the merged rows. Aggregated
// projection groups tuples globally and stays sequential.
func (e *Engine) project(ts *tupleSet, sel *SelectStmt, params map[string]storage.Value) (*Result, error) {
	if len(sel.GroupBy) > 0 || anyAggregateItem(sel) {
		return projectAggregated(ts, sel, params)
	}
	// Expand projection columns.
	type proj struct {
		name string
		expr Expr
	}
	var projs []proj
	for _, item := range sel.Items {
		if item.Star {
			for _, n := range ts.nodes {
				for _, c := range n.tbl.Schema().Cols {
					projs = append(projs, proj{
						name: n.ref.EffectiveAlias() + "." + c.Name,
						expr: ColRef{Table: n.alias, Col: c.Name},
					})
				}
			}
			continue
		}
		name := item.Alias
		if name == "" {
			if cr, ok := item.Expr.(ColRef); ok {
				name = cr.Col
			} else {
				name = item.Expr.SQL()
			}
		}
		projs = append(projs, proj{name: name, expr: item.Expr})
	}
	res := &Result{}
	for _, pj := range projs {
		res.Cols = append(res.Cols, pj.name)
	}
	type ordered struct {
		row  storage.Row
		keys []storage.Value
	}
	rows, err := shardAll(e, len(ts.tuples), func(lo, hi int) ([]ordered, error) {
		ev := ts.envFor(params)
		out := make([]ordered, 0, hi-lo)
		for _, tuple := range ts.tuples[lo:hi] {
			ts.bind(ev, tuple)
			row := make(storage.Row, len(projs))
			for i, pj := range projs {
				v, err := ev.eval(pj.expr)
				if err != nil {
					return nil, err
				}
				row[i] = v
			}
			var keys []storage.Value
			for _, ob := range sel.OrderBy {
				v, err := ev.eval(ob.Expr)
				if err != nil {
					return nil, err
				}
				keys = append(keys, v)
			}
			out = append(out, ordered{row: row, keys: keys})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	if sel.Distinct {
		seen := map[string]bool{}
		var dedup []ordered
		for _, r := range rows {
			parts := make([]string, len(r.row))
			for i, v := range r.row {
				parts[i] = v.Kind.String() + ":" + v.String()
			}
			k := strings.Join(parts, "\x00")
			if !seen[k] {
				seen[k] = true
				dedup = append(dedup, r)
			}
		}
		rows = dedup
	}
	if len(sel.OrderBy) > 0 {
		var sortErr error
		sort.SliceStable(rows, func(i, j int) bool {
			for k, ob := range sel.OrderBy {
				c, err := compareForSort(rows[i].keys[k], rows[j].keys[k])
				if err != nil {
					sortErr = err
					return false
				}
				if c != 0 {
					if ob.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
		if sortErr != nil {
			return nil, sortErr
		}
	}
	if sel.Limit >= 0 && len(rows) > sel.Limit {
		rows = rows[:sel.Limit]
	}
	for _, r := range rows {
		res.Rows = append(res.Rows, r.row)
	}
	return res, nil
}

// compareForSort orders values with NULLs first and booleans false<true,
// falling back to Value.Compare.
func compareForSort(a, b storage.Value) (int, error) {
	if a.IsNull() || b.IsNull() {
		switch {
		case a.IsNull() && b.IsNull():
			return 0, nil
		case a.IsNull():
			return -1, nil
		default:
			return 1, nil
		}
	}
	if a.Kind == storage.KindBool && b.Kind == storage.KindBool {
		av, _ := a.AsBool()
		bv, _ := b.AsBool()
		switch {
		case av == bv:
			return 0, nil
		case !av:
			return -1, nil
		default:
			return 1, nil
		}
	}
	return a.Compare(b)
}

func (e *Engine) runInsert(ins *InsertStmt, params map[string]storage.Value) (*Result, error) {
	tbl, err := e.db.Table(ins.Table)
	if err != nil {
		return nil, err
	}
	p, err := buildPlan(e.db, ins.Select, params)
	if err != nil {
		return nil, err
	}
	sel, err := e.runSelect(p, params)
	if err != nil {
		return nil, err
	}
	schema := tbl.Schema()
	// Column mapping: named columns or positional.
	var colIdx []int
	if len(ins.Cols) > 0 {
		if len(ins.Cols) != len(sel.Cols) {
			return nil, fmt.Errorf("sqlx: INSERT names %d columns but SELECT yields %d", len(ins.Cols), len(sel.Cols))
		}
		for _, c := range ins.Cols {
			ci := schema.ColIndex(c)
			if ci < 0 {
				return nil, fmt.Errorf("sqlx: %s has no column %q", ins.Table, c)
			}
			colIdx = append(colIdx, ci)
		}
	} else {
		if len(sel.Cols) != len(schema.Cols) {
			return nil, fmt.Errorf("sqlx: INSERT into %s needs %d columns, SELECT yields %d",
				ins.Table, len(schema.Cols), len(sel.Cols))
		}
		for i := range schema.Cols {
			colIdx = append(colIdx, i)
		}
	}
	count := 0
	for _, r := range sel.Rows {
		row := make(storage.Row, len(schema.Cols))
		for i := range row {
			row[i] = storage.Null
		}
		for si, ci := range colIdx {
			row[ci] = r[si]
		}
		if err := tbl.Append(row); err != nil {
			return nil, err
		}
		count++
	}
	return &Result{Cols: []string{"inserted"}, Rows: []storage.Row{{storage.Int(int64(count))}}}, nil
}
