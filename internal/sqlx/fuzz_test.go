package sqlx

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/storage"
)

// This file cross-checks the planner/executor against a naive reference
// evaluator (cross product + full-WHERE filter + projection) on hundreds of
// randomly generated queries. Any divergence between the heuristic join
// ordering, index-assisted spatial joins, or predicate pushdown and the
// obvious semantics fails the test.

// fuzzDB builds small random tables with ints, floats, and points.
func fuzzDB(t *testing.T, rng *rand.Rand) *storage.DB {
	t.Helper()
	db := storage.NewDB()
	for _, name := range []string{"A", "B", "C"} {
		tbl, err := db.Create(storage.Schema{
			Name: name,
			Cols: []storage.Column{
				{Name: "id", Kind: storage.KindInt},
				{Name: "k", Kind: storage.KindInt},
				{Name: "v", Kind: storage.KindFloat},
				{Name: "loc", Kind: storage.KindGeom, GeomType: geom.TypePoint},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		n := 5 + rng.Intn(20)
		for i := 0; i < n; i++ {
			row := storage.Row{
				storage.Int(int64(i)),
				storage.Int(int64(rng.Intn(4))),
				storage.Float(float64(rng.Intn(100)) / 10),
				storage.Geom(geom.Pt(rng.Float64()*50, rng.Float64()*50)),
			}
			if rng.Intn(12) == 0 {
				row[2] = storage.Null // occasional NULL
			}
			if err := tbl.Append(row); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db
}

// randomQuery builds a random 1–3 table SELECT with mixed predicates.
func randomQuery(rng *rand.Rand) string {
	tables := []string{"A", "B", "C"}
	nt := 1 + rng.Intn(3)
	var from, aliases []string
	for i := 0; i < nt; i++ {
		alias := fmt.Sprintf("t%d", i)
		from = append(from, tables[rng.Intn(len(tables))]+" "+alias)
		aliases = append(aliases, alias)
	}
	var conds []string
	pick := func() string { return aliases[rng.Intn(len(aliases))] }
	// 0–4 random conjuncts.
	for i := 0; i < rng.Intn(5); i++ {
		switch rng.Intn(6) {
		case 0:
			conds = append(conds, fmt.Sprintf("%s.k = %d", pick(), rng.Intn(4)))
		case 1:
			conds = append(conds, fmt.Sprintf("%s.v < %d.5", pick(), rng.Intn(10)))
		case 2:
			if nt > 1 {
				a, b := pick(), pick()
				if a != b {
					conds = append(conds, fmt.Sprintf("%s.k = %s.k", a, b))
				}
			}
		case 3:
			if nt > 1 {
				a, b := pick(), pick()
				if a != b {
					conds = append(conds, fmt.Sprintf("ST_DWITHIN(%s.loc, %s.loc, %d)", a, b, 5+rng.Intn(30)))
				}
			}
		case 4:
			conds = append(conds, fmt.Sprintf("ST_WITHIN(%s.loc, ST_GEOMFROMTEXT('POLYGON((0 0, %d 0, %d %d, 0 %d))'))",
				pick(), 10+rng.Intn(40), 10+rng.Intn(40), 10+rng.Intn(40), 10+rng.Intn(40)))
		case 5:
			if nt > 1 {
				a, b := pick(), pick()
				if a != b {
					conds = append(conds, fmt.Sprintf("ST_DISTANCE(%s.loc, %s.loc) < %d", a, b, 5+rng.Intn(30)))
				}
			}
		}
	}
	var sel []string
	for _, a := range aliases {
		sel = append(sel, a+".id", a+".k")
	}
	q := "SELECT " + strings.Join(sel, ", ") + " FROM " + strings.Join(from, ", ")
	if len(conds) > 0 {
		q += " WHERE " + strings.Join(conds, " AND ")
	}
	return q
}

// naiveEval evaluates a parsed SELECT by brute force.
func naiveEval(t *testing.T, db *storage.DB, sel *SelectStmt) []string {
	t.Helper()
	// Build bindings for the cross product.
	var tbls []*storage.Table
	var aliases []string
	for _, ref := range sel.From {
		tbl, err := db.Table(ref.Table)
		if err != nil {
			t.Fatal(err)
		}
		tbls = append(tbls, tbl)
		aliases = append(aliases, strings.ToLower(ref.EffectiveAlias()))
	}
	ev := &env{aliases: aliases, rows: make([]storage.Row, len(tbls))}
	for _, tbl := range tbls {
		ev.schemas = append(ev.schemas, tbl.Schema())
	}
	var out []string
	var walk func(i int)
	walk = func(i int) {
		if i == len(tbls) {
			if sel.Where != nil {
				ok, err := ev.evalBool(sel.Where)
				if err != nil {
					t.Fatalf("naive where: %v", err)
				}
				if !ok {
					return
				}
			}
			var cells []string
			for _, item := range sel.Items {
				v, err := ev.eval(item.Expr)
				if err != nil {
					t.Fatalf("naive projection: %v", err)
				}
				cells = append(cells, v.Kind.String()+":"+v.String())
			}
			out = append(out, strings.Join(cells, "|"))
			return
		}
		tbls[i].Scan(func(_ int, r storage.Row) bool {
			ev.rows[i] = r
			walk(i + 1)
			return true
		})
	}
	walk(0)
	sort.Strings(out)
	return out
}

func engineEval(t *testing.T, db *storage.DB, q string) []string {
	t.Helper()
	res, err := NewEngine(db).Exec(q, nil)
	if err != nil {
		t.Fatalf("engine %q: %v", q, err)
	}
	var out []string
	for _, r := range res.Rows {
		var cells []string
		for _, v := range r {
			cells = append(cells, v.Kind.String()+":"+v.String())
		}
		out = append(out, strings.Join(cells, "|"))
	}
	sort.Strings(out)
	return out
}

func TestPlannerMatchesNaiveEvaluator(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 250; trial++ {
		db := fuzzDB(t, rng)
		q := randomQuery(rng)
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("trial %d: Parse(%q): %v", trial, q, err)
		}
		want := naiveEval(t, db, stmt.Select)
		got := engineEval(t, db, q)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %q\nengine %d rows, naive %d rows", trial, q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: %q\nrow %d: engine %q vs naive %q", trial, q, i, got[i], want[i])
			}
		}
	}
}

func TestAggregateMatchesNaiveEvaluator(t *testing.T) {
	// Aggregation cross-check: grouped counts computed by the engine equal
	// counts over the naive row multiset.
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 50; trial++ {
		db := fuzzDB(t, rng)
		base := randomQuery(rng)
		stmt, err := Parse(base)
		if err != nil {
			t.Fatal(err)
		}
		naiveRows := naiveEval(t, db, stmt.Select)
		// Engine-side: COUNT(*) with the same FROM/WHERE.
		fromIdx := strings.Index(base, " FROM ")
		countQ := "SELECT COUNT(*) FROM " + base[fromIdx+len(" FROM "):]
		res, err := NewEngine(db).Exec(countQ, nil)
		if err != nil {
			t.Fatalf("trial %d: %q: %v", trial, countQ, err)
		}
		n, _ := res.Rows[0][0].AsInt()
		if int(n) != len(naiveRows) {
			t.Fatalf("trial %d: COUNT(*) = %d, naive = %d (%q)", trial, n, len(naiveRows), base)
		}
	}
}
