package sqlx

import (
	"strings"

	"repro/internal/storage"
)

// Expr is a SQL expression node.
type Expr interface {
	// SQL renders the expression back to SQL text (for EXPLAIN and tests).
	SQL() string
}

// ColRef references a column, optionally qualified by a table alias.
type ColRef struct {
	Table string // alias; empty means unqualified
	Col   string
}

// SQL implements Expr.
func (c ColRef) SQL() string {
	if c.Table == "" {
		return c.Col
	}
	return c.Table + "." + c.Col
}

// Lit is a literal value.
type Lit struct {
	Val storage.Value
}

// SQL implements Expr.
func (l Lit) SQL() string {
	switch l.Val.Kind {
	case storage.KindString:
		return "'" + strings.ReplaceAll(l.Val.S, "'", "''") + "'"
	case storage.KindGeom:
		return "ST_GEOMFROMTEXT('" + l.Val.String() + "')"
	default:
		return l.Val.String()
	}
}

// Param is a named query parameter (:name), bound at execution time.
type Param struct {
	Name string
}

// SQL implements Expr.
func (p Param) SQL() string { return ":" + p.Name }

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators, in no particular precedence order (precedence is a
// parsing concern).
const (
	OpEq BinOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpAdd
	OpSub
	OpMul
	OpDiv
)

var binOpNames = map[BinOp]string{
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR", OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
}

// Binary is a binary operation.
type Binary struct {
	Op   BinOp
	L, R Expr
}

// SQL implements Expr.
func (b Binary) SQL() string {
	return "(" + b.L.SQL() + " " + binOpNames[b.Op] + " " + b.R.SQL() + ")"
}

// Not negates a boolean expression.
type Not struct {
	E Expr
}

// SQL implements Expr.
func (n Not) SQL() string { return "(NOT " + n.E.SQL() + ")" }

// Neg is unary minus.
type Neg struct {
	E Expr
}

// SQL implements Expr.
func (n Neg) SQL() string { return "(-" + n.E.SQL() + ")" }

// Call is a function invocation, e.g. ST_DWITHIN(a.loc, b.loc, 150).
type Call struct {
	Name string // upper-cased at parse time
	Args []Expr
	// Star marks COUNT(*).
	Star bool
}

// SQL implements Expr.
func (c Call) SQL() string {
	if c.Star {
		return c.Name + "(*)"
	}
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.SQL()
	}
	return c.Name + "(" + strings.Join(parts, ", ") + ")"
}

// SelectItem is one projection: an expression and an optional output alias.
type SelectItem struct {
	Expr  Expr
	Alias string // empty: derived from the expression
	Star  bool   // SELECT * (Expr nil)
}

// TableRef names a FROM table with an optional alias.
type TableRef struct {
	Table string
	Alias string // defaults to Table
}

// EffectiveAlias returns the alias used to qualify the table's columns.
func (t TableRef) EffectiveAlias() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStmt is a parsed SELECT.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr // nil when absent; JOIN ... ON conditions are folded in
	GroupBy  []Expr
	Having   Expr // nil when absent; evaluated per group after aggregation
	OrderBy  []OrderItem
	Limit    int // -1 when absent
}

// InsertStmt is INSERT INTO table [(cols)] SELECT ... .
type InsertStmt struct {
	Table  string
	Cols   []string // empty: positional
	Select *SelectStmt
}

// Stmt is a parsed statement: exactly one of the fields is set.
type Stmt struct {
	Select  *SelectStmt
	Insert  *InsertStmt
	Explain bool // EXPLAIN prefix: plan only, do not execute
}

// splitConjuncts flattens nested ANDs into a conjunct list.
func splitConjuncts(e Expr, acc []Expr) []Expr {
	if b, ok := e.(Binary); ok && b.Op == OpAnd {
		acc = splitConjuncts(b.L, acc)
		return splitConjuncts(b.R, acc)
	}
	return append(acc, e)
}

// conjoin rebuilds an AND chain from conjuncts; nil for an empty list.
func conjoin(es []Expr) Expr {
	if len(es) == 0 {
		return nil
	}
	out := es[0]
	for _, e := range es[1:] {
		out = Binary{Op: OpAnd, L: out, R: e}
	}
	return out
}

// exprColumns collects the table aliases referenced by an expression.
func exprAliases(e Expr, acc map[string]bool) {
	switch v := e.(type) {
	case ColRef:
		acc[strings.ToLower(v.Table)] = true
	case Binary:
		exprAliases(v.L, acc)
		exprAliases(v.R, acc)
	case Not:
		exprAliases(v.E, acc)
	case Neg:
		exprAliases(v.E, acc)
	case Call:
		for _, a := range v.Args {
			exprAliases(a, acc)
		}
	}
}

// aliasesOf returns the distinct aliases referenced by e. Unqualified column
// references contribute the empty string, which planners treat as "unknown".
func aliasesOf(e Expr) []string {
	acc := map[string]bool{}
	exprAliases(e, acc)
	out := make([]string, 0, len(acc))
	for a := range acc {
		out = append(out, a)
	}
	return out
}
