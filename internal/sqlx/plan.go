package sqlx

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/geom"
	"repro/internal/index/rtree"
	"repro/internal/storage"
)

// The planner turns a SELECT into an ordered pipeline:
//
//  1. per-table scans with pushed-down single-table predicates — the
//     paper's "range query" step (Fig. 5 runs the within-range filter
//     before the distance join);
//  2. a greedy join order over the filtered tables, preferring hash
//     equi-joins, then R-tree–assisted spatial joins, then theta/cross
//     joins — smaller inputs first, which is exactly the heuristic
//     re-ordering optimization of Section IV-B;
//  3. residual filters, projection, DISTINCT, ORDER BY, LIMIT.
//
// Because tables are in memory, the planner materializes filtered row-id
// lists eagerly and uses their true sizes as cardinalities.

// conjunct classification.
type conjunctKind uint8

const (
	conjFilter  conjunctKind = iota // references ≤ 1 alias
	conjEqui                        // a.x = b.y
	conjSpatial                     // ST_DWITHIN(a.g, b.g, d) or ST_DISTANCE(a.g,b.g) < d
	conjTheta                       // anything else across aliases
)

type conjunct struct {
	expr    Expr
	kind    conjunctKind
	aliases []string // lower-cased, sorted
	applied bool

	// equi-join detail
	leftCol, rightCol ColRef
	// spatial-join detail
	leftGeom, rightGeom ColRef
	radius              float64
	metric              geom.Metric
}

type scanNode struct {
	ref     TableRef
	alias   string // lower-cased
	tbl     *storage.Table
	filters []Expr
	ids     []int // filtered row ids
}

type planStep struct {
	node    *scanNode
	joinVia *conjunct // nil for the first (scan) step
	extra   []Expr    // residual predicates applied after this step
}

type plan struct {
	steps []planStep
	sel   *SelectStmt
}

// Explain renders the plan as human-readable lines, one per pipeline step.
func (p *plan) Explain() []string {
	var out []string
	for i, s := range p.steps {
		var b strings.Builder
		switch {
		case i == 0:
			fmt.Fprintf(&b, "scan %s", s.node.ref.Table)
		case s.joinVia == nil:
			fmt.Fprintf(&b, "cross-join %s", s.node.ref.Table)
		case s.joinVia.kind == conjEqui:
			fmt.Fprintf(&b, "hash-join %s ON %s", s.node.ref.Table, s.joinVia.expr.SQL())
		case s.joinVia.kind == conjSpatial:
			fmt.Fprintf(&b, "spatial-join %s ON %s", s.node.ref.Table, s.joinVia.expr.SQL())
		default:
			fmt.Fprintf(&b, "theta-join %s ON %s", s.node.ref.Table, s.joinVia.expr.SQL())
		}
		if s.node.ref.Alias != "" {
			fmt.Fprintf(&b, " AS %s", s.node.ref.Alias)
		}
		if len(s.node.filters) > 0 {
			parts := make([]string, len(s.node.filters))
			for j, f := range s.node.filters {
				parts[j] = f.SQL()
			}
			fmt.Fprintf(&b, " filter [%s]", strings.Join(parts, " AND "))
		}
		fmt.Fprintf(&b, " (%d rows)", len(s.node.ids))
		for _, e := range s.extra {
			b.WriteString(" then-filter " + e.SQL())
		}
		out = append(out, b.String())
	}
	return out
}

// buildPlan analyses a SELECT against the database.
func buildPlan(db *storage.DB, sel *SelectStmt, params map[string]storage.Value) (*plan, error) {
	if len(sel.From) == 0 {
		return nil, fmt.Errorf("sqlx: SELECT requires FROM")
	}
	// Resolve tables and aliases.
	nodes := make([]*scanNode, len(sel.From))
	byAlias := map[string]*scanNode{}
	for i, ref := range sel.From {
		tbl, err := db.Table(ref.Table)
		if err != nil {
			return nil, err
		}
		alias := strings.ToLower(ref.EffectiveAlias())
		if byAlias[alias] != nil {
			return nil, fmt.Errorf("sqlx: duplicate table alias %q", ref.EffectiveAlias())
		}
		n := &scanNode{ref: ref, alias: alias, tbl: tbl}
		nodes[i] = n
		byAlias[alias] = n
	}
	// Qualify unqualified column references so alias analysis is exact.
	qualify := func(e Expr) (Expr, error) { return qualifyExpr(e, nodes) }
	if sel.Where != nil {
		w, err := qualify(sel.Where)
		if err != nil {
			return nil, err
		}
		sel = cloneSelectWithWhere(sel, w)
	}
	for i, item := range sel.Items {
		if item.Star {
			continue
		}
		q, err := qualify(item.Expr)
		if err != nil {
			return nil, err
		}
		sel.Items[i].Expr = q
	}
	for i := range sel.OrderBy {
		// ORDER BY may name a SELECT-item alias; substitute its expression
		// (already qualified above).
		if cr, ok := sel.OrderBy[i].Expr.(ColRef); ok && cr.Table == "" {
			substituted := false
			for _, item := range sel.Items {
				if !item.Star && strings.EqualFold(item.Alias, cr.Col) {
					sel.OrderBy[i].Expr = item.Expr
					substituted = true
					break
				}
			}
			if substituted {
				continue
			}
		}
		q, err := qualify(sel.OrderBy[i].Expr)
		if err != nil {
			return nil, err
		}
		sel.OrderBy[i].Expr = q
	}
	for i := range sel.GroupBy {
		q, err := qualify(sel.GroupBy[i])
		if err != nil {
			return nil, err
		}
		sel.GroupBy[i] = q
	}
	if sel.Having != nil {
		q, err := qualify(sel.Having)
		if err != nil {
			return nil, err
		}
		sel.Having = q
	}

	// Classify conjuncts.
	var conjuncts []*conjunct
	if sel.Where != nil {
		for _, e := range splitConjuncts(sel.Where, nil) {
			conjuncts = append(conjuncts, classify(e, params))
		}
	}
	// Push single-alias filters into scans.
	for _, c := range conjuncts {
		if c.kind == conjFilter {
			if len(c.aliases) == 1 {
				n := byAlias[c.aliases[0]]
				if n == nil {
					return nil, fmt.Errorf("sqlx: unknown alias %q in predicate %s", c.aliases[0], c.expr.SQL())
				}
				n.filters = append(n.filters, c.expr)
			}
			// Zero-alias (constant) predicates are handled below.
			c.applied = true
		}
	}
	// Constant predicates: evaluate once; false → empty plan via filters.
	constFalse := false
	for _, c := range conjuncts {
		if c.kind == conjFilter && len(c.aliases) == 0 {
			ev := &env{params: params}
			ok, err := ev.evalBool(c.expr)
			if err != nil {
				return nil, err
			}
			if !ok {
				constFalse = true
			}
		}
	}

	// Materialize filtered scans — the "range query first" stage.
	for _, n := range nodes {
		if constFalse {
			n.ids = nil
			continue
		}
		ids, err := filterScan(n, params)
		if err != nil {
			return nil, err
		}
		n.ids = ids
	}

	// Greedy join order.
	remaining := map[string]*scanNode{}
	for _, n := range nodes {
		remaining[n.alias] = n
	}
	var steps []planStep
	bound := map[string]bool{}
	// Seed with the smallest filtered table.
	first := smallestNode(remaining)
	steps = append(steps, planStep{node: first})
	bound[first.alias] = true
	delete(remaining, first.alias)
	for len(remaining) > 0 {
		next, via := pickNext(remaining, bound, conjuncts)
		steps = append(steps, planStep{node: next, joinVia: via})
		if via != nil {
			via.applied = true
		}
		bound[next.alias] = true
		delete(remaining, next.alias)
		// Attach any now-evaluable residual predicates to this step.
		for _, c := range conjuncts {
			if c.applied {
				continue
			}
			if aliasesBound(c.aliases, bound) {
				steps[len(steps)-1].extra = append(steps[len(steps)-1].extra, c.expr)
				c.applied = true
			}
		}
	}
	// Anything left (e.g. single-table query with a theta conjunct that
	// references that table twice — impossible — or zero-alias handled
	// above) is attached to the last step.
	for _, c := range conjuncts {
		if !c.applied && c.kind != conjFilter {
			steps[len(steps)-1].extra = append(steps[len(steps)-1].extra, c.expr)
			c.applied = true
		}
	}
	return &plan{steps: steps, sel: sel}, nil
}

func cloneSelectWithWhere(sel *SelectStmt, w Expr) *SelectStmt {
	out := *sel
	out.Where = w
	out.Items = append([]SelectItem(nil), sel.Items...)
	out.OrderBy = append([]OrderItem(nil), sel.OrderBy...)
	out.GroupBy = append([]Expr(nil), sel.GroupBy...)
	out.Having = sel.Having
	return &out
}

// qualifyExpr rewrites unqualified ColRefs to qualified ones; errors on
// ambiguity.
func qualifyExpr(e Expr, nodes []*scanNode) (Expr, error) {
	switch v := e.(type) {
	case ColRef:
		if v.Table != "" {
			return v, nil
		}
		var found *scanNode
		for _, n := range nodes {
			if n.tbl.Schema().ColIndex(v.Col) >= 0 {
				if found != nil {
					return nil, fmt.Errorf("sqlx: ambiguous column %q", v.Col)
				}
				found = n
			}
		}
		if found == nil {
			return nil, fmt.Errorf("sqlx: unknown column %q", v.Col)
		}
		return ColRef{Table: found.alias, Col: v.Col}, nil
	case Binary:
		l, err := qualifyExpr(v.L, nodes)
		if err != nil {
			return nil, err
		}
		r, err := qualifyExpr(v.R, nodes)
		if err != nil {
			return nil, err
		}
		return Binary{Op: v.Op, L: l, R: r}, nil
	case Not:
		inner, err := qualifyExpr(v.E, nodes)
		if err != nil {
			return nil, err
		}
		return Not{E: inner}, nil
	case Neg:
		inner, err := qualifyExpr(v.E, nodes)
		if err != nil {
			return nil, err
		}
		return Neg{E: inner}, nil
	case Call:
		out := Call{Name: v.Name, Args: make([]Expr, len(v.Args))}
		for i, a := range v.Args {
			q, err := qualifyExpr(a, nodes)
			if err != nil {
				return nil, err
			}
			out.Args[i] = q
		}
		return out, nil
	default:
		return e, nil
	}
}

// classify analyses one conjunct.
func classify(e Expr, params map[string]storage.Value) *conjunct {
	aliases := aliasesOf(e)
	sort.Strings(aliases)
	c := &conjunct{expr: e, aliases: aliases}
	if len(aliases) <= 1 {
		c.kind = conjFilter
		return c
	}
	if len(aliases) != 2 {
		c.kind = conjTheta
		return c
	}
	// a.x = b.y ?
	if b, ok := e.(Binary); ok && b.Op == OpEq {
		lc, lok := b.L.(ColRef)
		rc, rok := b.R.(ColRef)
		if lok && rok && !strings.EqualFold(lc.Table, rc.Table) {
			c.kind = conjEqui
			c.leftCol, c.rightCol = lc, rc
			return c
		}
	}
	// ST_DWITHIN(a.g, b.g, d [, metric]) ?
	if call, ok := e.(Call); ok && call.Name == "ST_DWITHIN" && len(call.Args) >= 3 {
		if sc := spatialPair(call.Args[0], call.Args[1]); sc != nil {
			if d, m, ok := constRadius(call.Args[2], call.Args[3:], params); ok {
				c.kind = conjSpatial
				c.leftGeom, c.rightGeom = sc[0], sc[1]
				c.radius, c.metric = d, m
				return c
			}
		}
	}
	// ST_DISTANCE(a.g, b.g [, metric]) < d (or <=) ?
	if b, ok := e.(Binary); ok && (b.Op == OpLt || b.Op == OpLe) {
		if call, ok := b.L.(Call); ok && call.Name == "ST_DISTANCE" && len(call.Args) >= 2 {
			if sc := spatialPair(call.Args[0], call.Args[1]); sc != nil {
				if d, m, ok := constRadius(b.R, call.Args[2:], params); ok {
					c.kind = conjSpatial
					c.leftGeom, c.rightGeom = sc[0], sc[1]
					c.radius, c.metric = d, m
					return c
				}
			}
		}
	}
	c.kind = conjTheta
	return c
}

// spatialPair extracts two geometry column refs on distinct aliases.
func spatialPair(a, b Expr) []ColRef {
	ca, aok := a.(ColRef)
	cb, bok := b.(ColRef)
	if aok && bok && !strings.EqualFold(ca.Table, cb.Table) {
		return []ColRef{ca, cb}
	}
	return nil
}

// constRadius evaluates the radius expression (which must reference no
// columns) and the optional metric argument.
func constRadius(radiusExpr Expr, metricArgs []Expr, params map[string]storage.Value) (float64, geom.Metric, bool) {
	if as := aliasesOf(radiusExpr); len(as) != 0 {
		return 0, 0, false
	}
	ev := &env{params: params}
	v, err := ev.eval(radiusExpr)
	if err != nil {
		return 0, 0, false
	}
	d, err := v.AsFloat()
	if err != nil {
		return 0, 0, false
	}
	m := geom.Euclidean
	if len(metricArgs) > 0 {
		mv, err := ev.eval(metricArgs[0])
		if err != nil || mv.Kind != storage.KindString {
			return 0, 0, false
		}
		m, err = ParseMetric(mv.S)
		if err != nil {
			return 0, 0, false
		}
	}
	return d, m, true
}

// filterScan materializes the row ids of a node passing its filters.
// Single spatial window predicates (ST_WITHIN / ST_DWITHIN against a
// constant geometry) use the table's R-tree when present.
func filterScan(n *scanNode, params map[string]storage.Value) ([]int, error) {
	candidates, prefiltered, err := spatialCandidates(n, params)
	if err != nil {
		return nil, err
	}
	ev := &env{
		aliases: []string{n.alias},
		schemas: []storage.Schema{n.tbl.Schema()},
		rows:    make([]storage.Row, 1),
		params:  params,
	}
	var ids []int
	check := func(id int) error {
		ev.rows[0] = n.tbl.Row(id)
		for _, f := range n.filters {
			ok, err := ev.evalBool(f)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		ids = append(ids, id)
		return nil
	}
	if prefiltered {
		for _, id := range candidates {
			if err := check(id); err != nil {
				return nil, err
			}
		}
		return ids, nil
	}
	var scanErr error
	n.tbl.Scan(func(id int, _ storage.Row) bool {
		if err := check(id); err != nil {
			scanErr = err
			return false
		}
		return true
	})
	return ids, scanErr
}

// spatialCandidates looks for a window-shaped filter (ST_WITHIN(col, const)
// or ST_DWITHIN(col, const, d)) and uses the R-tree to pre-filter; the exact
// predicate is still applied afterwards by filterScan.
func spatialCandidates(n *scanNode, params map[string]storage.Value) ([]int, bool, error) {
	for _, f := range n.filters {
		call, ok := f.(Call)
		if !ok {
			continue
		}
		var colArg ColRef
		var window geom.Rect
		ev := &env{params: params}
		switch call.Name {
		case "ST_WITHIN":
			if len(call.Args) != 2 {
				continue
			}
			c, cok := call.Args[0].(ColRef)
			if !cok || len(aliasesOf(call.Args[1])) != 0 {
				continue
			}
			v, err := ev.eval(call.Args[1])
			if err != nil {
				continue
			}
			g, err := v.AsGeom()
			if err != nil {
				continue
			}
			colArg, window = c, g.Bounds()
		case "ST_DWITHIN":
			if len(call.Args) < 3 {
				continue
			}
			c, cok := call.Args[0].(ColRef)
			if !cok || len(aliasesOf(call.Args[1])) != 0 {
				continue
			}
			v, err := ev.eval(call.Args[1])
			if err != nil {
				continue
			}
			g, err := v.AsGeom()
			if err != nil {
				continue
			}
			d, m, ok := constRadius(call.Args[2], call.Args[3:], params)
			if !ok {
				continue
			}
			window = expandWindow(g.Bounds(), d, m)
			colArg = c
		default:
			continue
		}
		if !n.tbl.HasSpatialIndex(colArg.Col) {
			// Build the on-the-fly index the paper describes; worthwhile
			// for repeated rule evaluation over the same relation.
			if err := n.tbl.BuildSpatialIndex(colArg.Col); err != nil {
				continue
			}
		}
		ids, err := n.tbl.SearchSpatial(colArg.Col, window)
		if err != nil {
			return nil, false, err
		}
		return ids, true, nil
	}
	return nil, false, nil
}

// expandWindow delegates to geom.ExpandWindow (metric-aware bounding-box
// growth for filter windows).
func expandWindow(r geom.Rect, d float64, m geom.Metric) geom.Rect {
	return geom.ExpandWindow(r, d, m)
}

func smallestNode(m map[string]*scanNode) *scanNode {
	var best *scanNode
	for _, n := range m {
		if best == nil || len(n.ids) < len(best.ids) ||
			(len(n.ids) == len(best.ids) && n.alias < best.alias) {
			best = n
		}
	}
	return best
}

// pickNext chooses the next table to join: equi-join edges first, then
// spatial, then theta, then cross; ties break on smaller filtered input
// and then alias for determinism.
func pickNext(remaining map[string]*scanNode, bound map[string]bool, conjuncts []*conjunct) (*scanNode, *conjunct) {
	type option struct {
		n    *scanNode
		c    *conjunct
		rank int
	}
	var best *option
	consider := func(o option) {
		if best == nil || o.rank < best.rank ||
			(o.rank == best.rank && len(o.n.ids) < len(best.n.ids)) ||
			(o.rank == best.rank && len(o.n.ids) == len(best.n.ids) && o.n.alias < best.n.alias) {
			b := o
			best = &b
		}
	}
	for _, n := range remaining {
		joined := false
		for _, c := range conjuncts {
			if c.applied || len(c.aliases) != 2 {
				continue
			}
			other := ""
			switch {
			case c.aliases[0] == n.alias:
				other = c.aliases[1]
			case c.aliases[1] == n.alias:
				other = c.aliases[0]
			default:
				continue
			}
			if !bound[other] {
				continue
			}
			joined = true
			switch c.kind {
			case conjEqui:
				consider(option{n: n, c: c, rank: 0})
			case conjSpatial:
				consider(option{n: n, c: c, rank: 1})
			default:
				consider(option{n: n, c: c, rank: 2})
			}
		}
		if !joined {
			consider(option{n: n, rank: 3})
		}
	}
	return best.n, best.c
}

func aliasesBound(aliases []string, bound map[string]bool) bool {
	for _, a := range aliases {
		if a != "" && !bound[a] {
			return false
		}
	}
	return true
}

// spatialJoinIndex builds an R-tree over the filtered rows of a node's
// geometry column for the probe side of a spatial join.
func spatialJoinIndex(n *scanNode, col string) (*rtree.Tree, error) {
	ci := n.tbl.Schema().ColIndex(col)
	if ci < 0 {
		return nil, fmt.Errorf("sqlx: %s has no column %q", n.ref.Table, col)
	}
	items := make([]rtree.Item, 0, len(n.ids))
	for _, id := range n.ids {
		g, err := n.tbl.Row(id)[ci].AsGeom()
		if err != nil {
			continue // NULL geometry never matches
		}
		items = append(items, rtree.Item{Rect: g.Bounds(), Data: int64(id)})
	}
	return rtree.Bulk(items), nil
}
