// Package sqlx implements the SQL subset that Sya's spatial rules–queries
// translator emits (paper Section IV-B, Fig. 5): SELECT with joins, filters,
// spatial functions, DISTINCT, ORDER BY and LIMIT, plus INSERT INTO ...
// SELECT. Queries execute against an internal/storage database; a heuristic
// planner pushes single-table predicates below joins and re-orders spatial
// range queries before spatial joins, reproducing the paper's grounding
// optimizer.
package sqlx

import "fmt"

// tokenKind enumerates lexical token classes.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokParam // :name
	tokOp    // = < <= > >= <> != + - * /
	tokComma
	tokLParen
	tokRParen
	tokDot
	tokStar
)

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset, for error messages
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lexer scans a SQL string into tokens.
type lexer struct {
	src string
	pos int
}

func isSpace(c byte) bool  { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isLetter(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isLetter(c):
		for l.pos < len(l.src) && (isLetter(l.src[l.pos]) || isDigit(l.src[l.pos])) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
	case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
		l.pos++
		for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.') {
			l.pos++
		}
		// Exponent part.
		if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
			mark := l.pos
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
			if l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
					l.pos++
				}
			} else {
				l.pos = mark
			}
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
	case c == '\'':
		l.pos++
		var buf []byte
		for l.pos < len(l.src) {
			if l.src[l.pos] == '\'' {
				// '' escapes a quote.
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					buf = append(buf, '\'')
					l.pos += 2
					continue
				}
				l.pos++
				return token{kind: tokString, text: string(buf), pos: start}, nil
			}
			buf = append(buf, l.src[l.pos])
			l.pos++
		}
		return token{}, fmt.Errorf("sqlx: unterminated string at offset %d", start)
	case c == ':':
		l.pos++
		if l.pos >= len(l.src) || !isLetter(l.src[l.pos]) {
			return token{}, fmt.Errorf("sqlx: bad parameter at offset %d", start)
		}
		for l.pos < len(l.src) && (isLetter(l.src[l.pos]) || isDigit(l.src[l.pos])) {
			l.pos++
		}
		return token{kind: tokParam, text: l.src[start+1 : l.pos], pos: start}, nil
	case c == ',':
		l.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case c == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case c == '.':
		l.pos++
		return token{kind: tokDot, text: ".", pos: start}, nil
	case c == '*':
		l.pos++
		return token{kind: tokStar, text: "*", pos: start}, nil
	case c == '=' || c == '+' || c == '-' || c == '/':
		l.pos++
		return token{kind: tokOp, text: string(c), pos: start}, nil
	case c == '<':
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '=' || l.src[l.pos] == '>') {
			l.pos++
		}
		return token{kind: tokOp, text: l.src[start:l.pos], pos: start}, nil
	case c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
		}
		return token{kind: tokOp, text: l.src[start:l.pos], pos: start}, nil
	case c == '!':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokOp, text: "!=", pos: start}, nil
		}
		return token{}, fmt.Errorf("sqlx: unexpected '!' at offset %d", start)
	default:
		return token{}, fmt.Errorf("sqlx: unexpected character %q at offset %d", string(c), start)
	}
}

// lexAll scans the whole input.
func lexAll(src string) ([]token, error) {
	l := &lexer{src: src}
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
