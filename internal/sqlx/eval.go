package sqlx

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/geom"
	"repro/internal/storage"
)

// env resolves column references during evaluation: one binding per table
// alias in the current joined tuple.
type env struct {
	aliases []string         // lower-cased
	schemas []storage.Schema // aligned with aliases
	rows    []storage.Row    // aligned with aliases
	params  map[string]storage.Value
}

// resolve finds the binding and column index for a reference.
func (e *env) resolve(c ColRef) (int, int, error) {
	if c.Table != "" {
		want := strings.ToLower(c.Table)
		for bi, a := range e.aliases {
			if a == want {
				ci := e.schemas[bi].ColIndex(c.Col)
				if ci < 0 {
					return 0, 0, fmt.Errorf("sqlx: %s has no column %q", c.Table, c.Col)
				}
				return bi, ci, nil
			}
		}
		return 0, 0, fmt.Errorf("sqlx: unknown table alias %q", c.Table)
	}
	foundB, foundC := -1, -1
	for bi := range e.aliases {
		if ci := e.schemas[bi].ColIndex(c.Col); ci >= 0 {
			if foundB >= 0 {
				return 0, 0, fmt.Errorf("sqlx: ambiguous column %q", c.Col)
			}
			foundB, foundC = bi, ci
		}
	}
	if foundB < 0 {
		return 0, 0, fmt.Errorf("sqlx: unknown column %q", c.Col)
	}
	return foundB, foundC, nil
}

// eval evaluates an expression in the environment.
func (e *env) eval(x Expr) (storage.Value, error) {
	switch v := x.(type) {
	case Lit:
		return v.Val, nil
	case Param:
		val, ok := e.params[v.Name]
		if !ok {
			return storage.Null, fmt.Errorf("sqlx: unbound parameter :%s", v.Name)
		}
		return val, nil
	case ColRef:
		bi, ci, err := e.resolve(v)
		if err != nil {
			return storage.Null, err
		}
		return e.rows[bi][ci], nil
	case Neg:
		val, err := e.eval(v.E)
		if err != nil {
			return storage.Null, err
		}
		f, err := val.AsFloat()
		if err != nil {
			return storage.Null, err
		}
		if val.Kind == storage.KindInt {
			return storage.Int(-val.I), nil
		}
		return storage.Float(-f), nil
	case Not:
		val, err := e.eval(v.E)
		if err != nil {
			return storage.Null, err
		}
		if val.IsNull() {
			return storage.Null, nil
		}
		b, err := val.AsBool()
		if err != nil {
			return storage.Null, err
		}
		return storage.Bool(!b), nil
	case Binary:
		return e.evalBinary(v)
	case Call:
		return e.evalCall(v)
	default:
		return storage.Null, fmt.Errorf("sqlx: cannot evaluate %T", x)
	}
}

func (e *env) evalBinary(b Binary) (storage.Value, error) {
	switch b.Op {
	case OpAnd, OpOr:
		l, err := e.eval(b.L)
		if err != nil {
			return storage.Null, err
		}
		// SQL three-valued logic with short circuit on the decisive value.
		if !l.IsNull() {
			lb, err := l.AsBool()
			if err != nil {
				return storage.Null, err
			}
			if b.Op == OpAnd && !lb {
				return storage.Bool(false), nil
			}
			if b.Op == OpOr && lb {
				return storage.Bool(true), nil
			}
		}
		r, err := e.eval(b.R)
		if err != nil {
			return storage.Null, err
		}
		if l.IsNull() || r.IsNull() {
			if !r.IsNull() {
				rb, err := r.AsBool()
				if err != nil {
					return storage.Null, err
				}
				if b.Op == OpAnd && !rb {
					return storage.Bool(false), nil
				}
				if b.Op == OpOr && rb {
					return storage.Bool(true), nil
				}
			}
			return storage.Null, nil
		}
		rb, err := r.AsBool()
		if err != nil {
			return storage.Null, err
		}
		if b.Op == OpAnd {
			return storage.Bool(rb), nil // l already known true
		}
		return storage.Bool(rb), nil // l already known false
	}
	l, err := e.eval(b.L)
	if err != nil {
		return storage.Null, err
	}
	r, err := e.eval(b.R)
	if err != nil {
		return storage.Null, err
	}
	if l.IsNull() || r.IsNull() {
		return storage.Null, nil
	}
	switch b.Op {
	case OpEq:
		return storage.Bool(l.Equal(r)), nil
	case OpNe:
		return storage.Bool(!l.Equal(r)), nil
	case OpLt, OpLe, OpGt, OpGe:
		c, err := l.Compare(r)
		if err != nil {
			return storage.Null, err
		}
		switch b.Op {
		case OpLt:
			return storage.Bool(c < 0), nil
		case OpLe:
			return storage.Bool(c <= 0), nil
		case OpGt:
			return storage.Bool(c > 0), nil
		default:
			return storage.Bool(c >= 0), nil
		}
	case OpAdd, OpSub, OpMul, OpDiv:
		lf, err := l.AsFloat()
		if err != nil {
			return storage.Null, err
		}
		rf, err := r.AsFloat()
		if err != nil {
			return storage.Null, err
		}
		var out float64
		switch b.Op {
		case OpAdd:
			out = lf + rf
		case OpSub:
			out = lf - rf
		case OpMul:
			out = lf * rf
		default:
			if rf == 0 {
				return storage.Null, fmt.Errorf("sqlx: division by zero")
			}
			out = lf / rf
		}
		if l.Kind == storage.KindInt && r.Kind == storage.KindInt && b.Op != OpDiv {
			return storage.Int(int64(out)), nil
		}
		return storage.Float(out), nil
	}
	return storage.Null, fmt.Errorf("sqlx: unsupported operator %v", b.Op)
}

// evalBool evaluates a predicate; NULL counts as false (SQL WHERE
// semantics).
func (e *env) evalBool(x Expr) (bool, error) {
	v, err := e.eval(x)
	if err != nil {
		return false, err
	}
	if v.IsNull() {
		return false, nil
	}
	return v.AsBool()
}

// Spatial and scalar builtins. The spatial set mirrors the predicates and
// functions Sya adds to DDlog rule bodies (paper Section III): distance,
// within, overlaps, plus union and buffer helpers, named in their PostGIS
// forms since the translator emits PostGIS-style SQL (Fig. 5).
func (e *env) evalCall(c Call) (storage.Value, error) {
	args := make([]storage.Value, len(c.Args))
	for i, a := range c.Args {
		v, err := e.eval(a)
		if err != nil {
			return storage.Null, err
		}
		args[i] = v
	}
	// NULL in, NULL out for all builtins.
	for _, a := range args {
		if a.IsNull() {
			return storage.Null, nil
		}
	}
	switch c.Name {
	case "ST_DISTANCE":
		if err := arity(c, 2, 3); err != nil {
			return storage.Null, err
		}
		ga, gb, err := twoGeoms(c.Name, args)
		if err != nil {
			return storage.Null, err
		}
		m, err := metricArg(c.Name, args, 2)
		if err != nil {
			return storage.Null, err
		}
		pa, aPt := ga.(geom.Point)
		pb, bPt := gb.(geom.Point)
		if aPt && bPt {
			return storage.Float(m.Dist(pa, pb)), nil
		}
		return storage.Float(geom.DistanceGeometries(ga, gb)), nil
	case "ST_DWITHIN":
		if err := arity(c, 3, 4); err != nil {
			return storage.Null, err
		}
		ga, gb, err := twoGeoms(c.Name, args)
		if err != nil {
			return storage.Null, err
		}
		d, err := args[2].AsFloat()
		if err != nil {
			return storage.Null, err
		}
		m, err := metricArg(c.Name, args, 3)
		if err != nil {
			return storage.Null, err
		}
		return storage.Bool(geom.DWithin(ga, gb, d, m)), nil
	case "ST_WITHIN":
		if err := arity(c, 2, 2); err != nil {
			return storage.Null, err
		}
		ga, gb, err := twoGeoms(c.Name, args)
		if err != nil {
			return storage.Null, err
		}
		return storage.Bool(geom.Within(ga, gb)), nil
	case "ST_CONTAINS":
		if err := arity(c, 2, 2); err != nil {
			return storage.Null, err
		}
		ga, gb, err := twoGeoms(c.Name, args)
		if err != nil {
			return storage.Null, err
		}
		return storage.Bool(geom.Contains(ga, gb)), nil
	case "ST_OVERLAPS":
		if err := arity(c, 2, 2); err != nil {
			return storage.Null, err
		}
		ga, gb, err := twoGeoms(c.Name, args)
		if err != nil {
			return storage.Null, err
		}
		return storage.Bool(geom.Overlaps(ga, gb)), nil
	case "ST_INTERSECTS":
		if err := arity(c, 2, 2); err != nil {
			return storage.Null, err
		}
		ga, gb, err := twoGeoms(c.Name, args)
		if err != nil {
			return storage.Null, err
		}
		return storage.Bool(geom.Intersects(ga, gb)), nil
	case "ST_GEOMFROMTEXT":
		if err := arity(c, 1, 1); err != nil {
			return storage.Null, err
		}
		if args[0].Kind != storage.KindString {
			return storage.Null, fmt.Errorf("sqlx: ST_GEOMFROMTEXT wants a WKT string")
		}
		g, err := geom.ParseWKT(args[0].S)
		if err != nil {
			return storage.Null, err
		}
		return storage.Geom(g), nil
	case "ST_POINT", "ST_MAKEPOINT":
		if err := arity(c, 2, 2); err != nil {
			return storage.Null, err
		}
		x, err := args[0].AsFloat()
		if err != nil {
			return storage.Null, err
		}
		y, err := args[1].AsFloat()
		if err != nil {
			return storage.Null, err
		}
		return storage.Geom(geom.Pt(x, y)), nil
	case "ST_BUFFER":
		// Rectangular buffer approximation: the grounding queries only use
		// buffers as windows for subsequent containment checks.
		if err := arity(c, 2, 2); err != nil {
			return storage.Null, err
		}
		g, err := args[0].AsGeom()
		if err != nil {
			return storage.Null, err
		}
		d, err := args[1].AsFloat()
		if err != nil {
			return storage.Null, err
		}
		return storage.Geom(g.Bounds().Expand(d)), nil
	case "ST_UNION":
		// Bounding-box union, sufficient for window construction.
		if err := arity(c, 2, 2); err != nil {
			return storage.Null, err
		}
		ga, gb, err := twoGeoms(c.Name, args)
		if err != nil {
			return storage.Null, err
		}
		return storage.Geom(ga.Bounds().Union(gb.Bounds())), nil
	case "ST_X", "ST_Y":
		if err := arity(c, 1, 1); err != nil {
			return storage.Null, err
		}
		g, err := args[0].AsGeom()
		if err != nil {
			return storage.Null, err
		}
		p, ok := g.(geom.Point)
		if !ok {
			return storage.Null, fmt.Errorf("sqlx: %s wants a point", c.Name)
		}
		if c.Name == "ST_X" {
			return storage.Float(p.X), nil
		}
		return storage.Float(p.Y), nil
	case "ABS":
		if err := arity(c, 1, 1); err != nil {
			return storage.Null, err
		}
		f, err := args[0].AsFloat()
		if err != nil {
			return storage.Null, err
		}
		if args[0].Kind == storage.KindInt {
			if args[0].I < 0 {
				return storage.Int(-args[0].I), nil
			}
			return args[0], nil
		}
		return storage.Float(math.Abs(f)), nil
	case "LEAST", "GREATEST":
		if len(args) == 0 {
			return storage.Null, fmt.Errorf("sqlx: %s wants at least one argument", c.Name)
		}
		best := args[0]
		for _, a := range args[1:] {
			cmp, err := a.Compare(best)
			if err != nil {
				return storage.Null, err
			}
			if (c.Name == "LEAST" && cmp < 0) || (c.Name == "GREATEST" && cmp > 0) {
				best = a
			}
		}
		return best, nil
	default:
		return storage.Null, fmt.Errorf("sqlx: unknown function %s", c.Name)
	}
}

func arity(c Call, min, max int) error {
	if len(c.Args) < min || len(c.Args) > max {
		return fmt.Errorf("sqlx: %s takes %d..%d arguments, got %d", c.Name, min, max, len(c.Args))
	}
	return nil
}

func twoGeoms(name string, args []storage.Value) (geom.Geometry, geom.Geometry, error) {
	ga, err := args[0].AsGeom()
	if err != nil {
		return nil, nil, fmt.Errorf("sqlx: %s argument 1: %w", name, err)
	}
	gb, err := args[1].AsGeom()
	if err != nil {
		return nil, nil, fmt.Errorf("sqlx: %s argument 2: %w", name, err)
	}
	return ga, gb, nil
}

// metricArg parses an optional trailing metric name argument
// ('euclidean' | 'miles' | 'km'); Euclidean when absent.
func metricArg(name string, args []storage.Value, idx int) (geom.Metric, error) {
	if len(args) <= idx {
		return geom.Euclidean, nil
	}
	if args[idx].Kind != storage.KindString {
		return 0, fmt.Errorf("sqlx: %s metric argument must be a string", name)
	}
	return ParseMetric(args[idx].S)
}

// ParseMetric maps a metric name to a geom.Metric.
func ParseMetric(s string) (geom.Metric, error) {
	switch strings.ToLower(s) {
	case "", "euclidean":
		return geom.Euclidean, nil
	case "miles", "haversine_miles":
		return geom.HaversineMiles, nil
	case "km", "haversine_km":
		return geom.HaversineKm, nil
	default:
		return 0, fmt.Errorf("sqlx: unknown metric %q", s)
	}
}
