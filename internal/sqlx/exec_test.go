package sqlx

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/storage"
)

// testDB builds a small database with a wells table resembling the paper's
// GWDB relation (Fig. 7) and a counties table resembling EbolaKB.
func testDB(t *testing.T) *storage.DB {
	t.Helper()
	db := storage.NewDB()
	wells, err := db.Create(storage.Schema{
		Name: "Well",
		Cols: []storage.Column{
			{Name: "id", Kind: storage.KindInt},
			{Name: "location", Kind: storage.KindGeom, GeomType: geom.TypePoint},
			{Name: "arsenic_ratio", Kind: storage.KindFloat},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := []storage.Row{
		{storage.Int(1), storage.Geom(geom.Pt(0, 0)), storage.Float(0.1)},
		{storage.Int(2), storage.Geom(geom.Pt(10, 0)), storage.Float(0.15)},
		{storage.Int(3), storage.Geom(geom.Pt(100, 100)), storage.Float(0.4)},
		{storage.Int(4), storage.Geom(geom.Pt(12, 5)), storage.Float(0.05)},
		{storage.Int(5), storage.Geom(geom.Pt(200, 0)), storage.Float(0.1)},
	}
	if err := wells.AppendAll(rows); err != nil {
		t.Fatal(err)
	}
	counties, err := db.Create(storage.Schema{
		Name: "County",
		Cols: []storage.Column{
			{Name: "id", Kind: storage.KindInt},
			{Name: "name", Kind: storage.KindString},
			{Name: "location", Kind: storage.KindGeom, GeomType: geom.TypePoint},
			{Name: "sanitation", Kind: storage.KindBool},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	crows := []storage.Row{
		{storage.Int(1), storage.Str("Montserrado"), storage.Geom(geom.Pt(-10.80, 6.32)), storage.Bool(true)},
		{storage.Int(2), storage.Str("Margibi"), storage.Geom(geom.Pt(-10.30, 6.52)), storage.Bool(true)},
		{storage.Int(3), storage.Str("Bong"), storage.Geom(geom.Pt(-9.47, 7.00)), storage.Bool(true)},
		// Synthetic coordinate placed ~158 miles from Montserrado to match
		// the paper's narrative (Gbarpolu "only 160 miles" away).
		{storage.Int(4), storage.Str("Gbarpolu"), storage.Geom(geom.Pt(-8.90, 7.60)), storage.Bool(false)},
	}
	if err := counties.AppendAll(crows); err != nil {
		t.Fatal(err)
	}
	return db
}

func exec(t *testing.T, e *Engine, sql string) *Result {
	t.Helper()
	res, err := e.Exec(sql, nil)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func TestSelectFilterProjection(t *testing.T) {
	e := NewEngine(testDB(t))
	res := exec(t, e, "SELECT id, arsenic_ratio FROM Well WHERE arsenic_ratio < 0.2 ORDER BY id")
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	if res.Cols[0] != "id" || res.Cols[1] != "arsenic_ratio" {
		t.Errorf("cols = %v", res.Cols)
	}
	if v, _ := res.Rows[0][0].AsInt(); v != 1 {
		t.Errorf("first id = %v", res.Rows[0][0])
	}
}

func TestSelectStar(t *testing.T) {
	e := NewEngine(testDB(t))
	res := exec(t, e, "SELECT * FROM County ORDER BY id")
	if len(res.Cols) != 4 || len(res.Rows) != 4 {
		t.Fatalf("cols=%v rows=%d", res.Cols, len(res.Rows))
	}
	if res.Cols[0] != "County.id" {
		t.Errorf("col 0 = %q", res.Cols[0])
	}
	if res.Rows[0][1].S != "Montserrado" {
		t.Errorf("row 0 name = %v", res.Rows[0][1])
	}
}

func TestExpressionsInProjection(t *testing.T) {
	e := NewEngine(testDB(t))
	res := exec(t, e, "SELECT id * 2 + 1 AS x FROM Well WHERE id = 3")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if v, _ := res.Rows[0][0].AsInt(); v != 7 {
		t.Errorf("x = %v", res.Rows[0][0])
	}
	if res.Cols[0] != "x" {
		t.Errorf("col = %q", res.Cols[0])
	}
}

func TestEquiJoin(t *testing.T) {
	e := NewEngine(testDB(t))
	res := exec(t, e, `SELECT w1.id, w2.id FROM Well w1, Well w2
		WHERE w1.arsenic_ratio = w2.arsenic_ratio AND w1.id < w2.id ORDER BY w1.id`)
	// arsenic 0.1 shared by wells 1 and 5.
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	a, _ := res.Rows[0][0].AsInt()
	b, _ := res.Rows[0][1].AsInt()
	if a != 1 || b != 5 {
		t.Errorf("join = (%d, %d)", a, b)
	}
}

func TestSpatialJoinDWithin(t *testing.T) {
	e := NewEngine(testDB(t))
	res := exec(t, e, `SELECT w1.id, w2.id FROM Well w1, Well w2
		WHERE ST_DWITHIN(w1.location, w2.location, 15) AND w1.id < w2.id
		ORDER BY w1.id, w2.id`)
	// Pairs within distance 15: (1,2) d=10, (2,4) d=sqrt(4+25)=5.39, (1,4) d=13.
	want := [][2]int64{{1, 2}, {1, 4}, {2, 4}}
	if len(res.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(want))
	}
	for i, w := range want {
		a, _ := res.Rows[i][0].AsInt()
		b, _ := res.Rows[i][1].AsInt()
		if a != w[0] || b != w[1] {
			t.Errorf("row %d = (%d,%d), want %v", i, a, b, w)
		}
	}
}

func TestSpatialJoinDistanceComparison(t *testing.T) {
	// ST_DISTANCE(a,b) < d must plan as a spatial join and agree with the
	// ST_DWITHIN formulation.
	e := NewEngine(testDB(t))
	r1 := exec(t, e, `SELECT w1.id, w2.id FROM Well w1, Well w2
		WHERE ST_DISTANCE(w1.location, w2.location) < 15 AND w1.id < w2.id
		ORDER BY w1.id, w2.id`)
	r2 := exec(t, e, `SELECT w1.id, w2.id FROM Well w1, Well w2
		WHERE ST_DWITHIN(w1.location, w2.location, 15) AND w1.id < w2.id
		ORDER BY w1.id, w2.id`)
	// DWithin is inclusive, < is strict; no pair sits exactly at 15 here.
	if len(r1.Rows) != len(r2.Rows) {
		t.Fatalf("distance %d vs dwithin %d", len(r1.Rows), len(r2.Rows))
	}
}

func TestSpatialJoinHaversineMetric(t *testing.T) {
	e := NewEngine(testDB(t))
	// Counties within 150 miles of Montserrado: Margibi (~36 mi), Bong
	// (~110 mi); Gbarpolu ~155 mi is out.
	res := exec(t, e, `SELECT c2.name FROM County c1, County c2
		WHERE c1.name = 'Montserrado' AND c2.id <> c1.id
		AND ST_DWITHIN(c1.location, c2.location, 150, 'miles')
		ORDER BY c2.id`)
	var names []string
	for _, r := range res.Rows {
		names = append(names, r[0].S)
	}
	if len(names) != 2 || names[0] != "Margibi" || names[1] != "Bong" {
		t.Errorf("names = %v", names)
	}
}

func TestWithinPolygonParam(t *testing.T) {
	e := NewEngine(testDB(t))
	region := geom.Polygon{Ring: []geom.Point{
		geom.Pt(-5, -5), geom.Pt(15, -5), geom.Pt(15, 10), geom.Pt(-5, 10),
	}}
	res, err := e.Exec(`SELECT id FROM Well WHERE ST_WITHIN(location, :region) ORDER BY id`,
		map[string]storage.Value{"region": storage.Geom(region)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 { // wells 1, 2, 4
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
}

func TestUnboundParam(t *testing.T) {
	e := NewEngine(testDB(t))
	if _, err := e.Exec("SELECT id FROM Well WHERE ST_WITHIN(location, :nope)", nil); err == nil {
		t.Error("unbound parameter should fail")
	}
}

func TestExplainReordersRangeBeforeSpatialJoin(t *testing.T) {
	// The paper's Fig. 5 optimization: a single-table range predicate
	// (ST_WITHIN against a constant region) must be pushed into the scan so
	// it runs before the spatial join, even though the rule listed the
	// distance predicate first.
	e := NewEngine(testDB(t))
	region := geom.NewRect(geom.Pt(-20, -20), geom.Pt(50, 50))
	res, err := e.Exec(`EXPLAIN SELECT w1.id, w2.id FROM Well w1, Well w2
		WHERE ST_DWITHIN(w1.location, w2.location, 15)
		AND ST_WITHIN(w1.location, :region)`,
		map[string]storage.Value{"region": storage.Geom(region)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("plan lines = %d: %v", len(res.Rows), res.Rows)
	}
	first := res.Rows[0][0].S
	second := res.Rows[1][0].S
	if !strings.HasPrefix(first, "scan") || !strings.Contains(first, "ST_WITHIN") {
		t.Errorf("first step should be the filtered range scan, got %q", first)
	}
	if !strings.HasPrefix(second, "spatial-join") {
		t.Errorf("second step should be the spatial join, got %q", second)
	}
}

func TestJoinOrderSmallestFirst(t *testing.T) {
	// The filtered smaller table seeds the join order.
	e := NewEngine(testDB(t))
	res := exec(t, e, `EXPLAIN SELECT * FROM Well w, County c WHERE w.id = c.id AND c.sanitation = true`)
	first := res.Rows[0][0].S
	if !strings.Contains(first, "County") {
		t.Errorf("expected County (3 filtered rows) first, got %q", first)
	}
	if !strings.Contains(res.Rows[1][0].S, "hash-join") {
		t.Errorf("expected hash join second, got %q", res.Rows[1][0].S)
	}
}

func TestDistinctAndLimit(t *testing.T) {
	e := NewEngine(testDB(t))
	res := exec(t, e, "SELECT DISTINCT arsenic_ratio FROM Well ORDER BY arsenic_ratio")
	if len(res.Rows) != 4 { // 0.05 0.1 0.15 0.4
		t.Fatalf("distinct rows = %d", len(res.Rows))
	}
	res2 := exec(t, e, "SELECT id FROM Well ORDER BY id DESC LIMIT 2")
	if len(res2.Rows) != 2 {
		t.Fatalf("limit rows = %d", len(res2.Rows))
	}
	if v, _ := res2.Rows[0][0].AsInt(); v != 5 {
		t.Errorf("desc first = %v", v)
	}
}

func TestInsertSelect(t *testing.T) {
	db := testDB(t)
	if _, err := db.Create(storage.Schema{
		Name: "Pairs",
		Cols: []storage.Column{
			{Name: "a", Kind: storage.KindInt},
			{Name: "b", Kind: storage.KindInt},
			{Name: "w", Kind: storage.KindFloat},
		},
	}); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(db)
	res := exec(t, e, `INSERT INTO Pairs (a, b, w) SELECT w1.id, w2.id, 0.7 FROM Well w1, Well w2
		WHERE ST_DWITHIN(w1.location, w2.location, 15) AND w1.id < w2.id`)
	if n, _ := res.Rows[0][0].AsInt(); n != 3 {
		t.Fatalf("inserted = %d, want 3", n)
	}
	check := exec(t, e, "SELECT a, b, w FROM Pairs ORDER BY a, b")
	if len(check.Rows) != 3 {
		t.Fatalf("pairs rows = %d", len(check.Rows))
	}
	if w, _ := check.Rows[0][2].AsFloat(); w != 0.7 {
		t.Errorf("weight = %v", w)
	}
	// Positional insert with mismatched arity fails.
	if _, err := e.Exec("INSERT INTO Pairs SELECT id FROM Well", nil); err == nil {
		t.Error("arity mismatch should fail")
	}
	// Unknown column fails.
	if _, err := e.Exec("INSERT INTO Pairs (nope) SELECT id FROM Well", nil); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestThreeWayJoin(t *testing.T) {
	e := NewEngine(testDB(t))
	res := exec(t, e, `SELECT w1.id, w2.id, w3.id FROM Well w1, Well w2, Well w3
		WHERE ST_DWITHIN(w1.location, w2.location, 15)
		AND ST_DWITHIN(w2.location, w3.location, 15)
		AND w1.id < w2.id AND w2.id < w3.id ORDER BY w1.id, w2.id, w3.id`)
	// Chains: 1-2-4 (1~2 d10, 2~4 d5.4); 1-4-? none beyond; so expect (1,2,4).
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d: %v", len(res.Rows), res.Rows)
	}
	a, _ := res.Rows[0][0].AsInt()
	b, _ := res.Rows[0][1].AsInt()
	c, _ := res.Rows[0][2].AsInt()
	if a != 1 || b != 2 || c != 4 {
		t.Errorf("triple = (%d,%d,%d)", a, b, c)
	}
}

func TestCrossJoinWithConstFalse(t *testing.T) {
	e := NewEngine(testDB(t))
	res := exec(t, e, "SELECT w.id, c.id FROM Well w, County c WHERE 1 = 2")
	if len(res.Rows) != 0 {
		t.Errorf("const-false rows = %d", len(res.Rows))
	}
	res2 := exec(t, e, "SELECT w.id, c.id FROM Well w, County c")
	if len(res2.Rows) != 20 {
		t.Errorf("cross join rows = %d, want 20", len(res2.Rows))
	}
}

func TestNullSemantics(t *testing.T) {
	db := storage.NewDB()
	tb, _ := db.Create(storage.Schema{Name: "T", Cols: []storage.Column{
		{Name: "id", Kind: storage.KindInt},
		{Name: "v", Kind: storage.KindFloat},
	}})
	_ = tb.AppendAll([]storage.Row{
		{storage.Int(1), storage.Float(1)},
		{storage.Int(2), storage.Null},
	})
	e := NewEngine(db)
	// NULL comparisons are not true: only row 1 passes either way.
	if res := exec(t, e, "SELECT id FROM T WHERE v < 10"); len(res.Rows) != 1 {
		t.Errorf("v < 10 rows = %d", len(res.Rows))
	}
	if res := exec(t, e, "SELECT id FROM T WHERE NOT v < 10"); len(res.Rows) != 0 {
		t.Errorf("NOT v < 10 rows = %d", len(res.Rows))
	}
	// NULLs never equi-join.
	if res := exec(t, e, "SELECT a.id FROM T a, T b WHERE a.v = b.v AND a.id <> b.id"); len(res.Rows) != 0 {
		t.Errorf("null equi-join rows = %d", len(res.Rows))
	}
}

func TestAmbiguousAndUnknownColumns(t *testing.T) {
	e := NewEngine(testDB(t))
	if _, err := e.Exec("SELECT id FROM Well w1, Well w2", nil); err == nil {
		t.Error("ambiguous column should fail")
	}
	if _, err := e.Exec("SELECT nope FROM Well", nil); err == nil {
		t.Error("unknown column should fail")
	}
	if _, err := e.Exec("SELECT w1.id FROM Well w1, Well w1", nil); err == nil {
		t.Error("duplicate alias should fail")
	}
	if _, err := e.Exec("SELECT id FROM Missing", nil); err == nil {
		t.Error("missing table should fail")
	}
}

func TestScalarFunctions(t *testing.T) {
	e := NewEngine(testDB(t))
	res := exec(t, e, "SELECT ABS(-3), LEAST(2, 1, 3), GREATEST(2.5, 1.0) FROM Well WHERE id = 1")
	if v, _ := res.Rows[0][0].AsInt(); v != 3 {
		t.Errorf("ABS = %v", v)
	}
	if v, _ := res.Rows[0][1].AsInt(); v != 1 {
		t.Errorf("LEAST = %v", v)
	}
	if v, _ := res.Rows[0][2].AsFloat(); v != 2.5 {
		t.Errorf("GREATEST = %v", v)
	}
}

func TestGeomFunctions(t *testing.T) {
	e := NewEngine(testDB(t))
	res := exec(t, e, `SELECT ST_X(location), ST_Y(location),
		ST_DISTANCE(location, ST_POINT(3, 4)) FROM Well WHERE id = 1`)
	if x, _ := res.Rows[0][0].AsFloat(); x != 0 {
		t.Errorf("ST_X = %v", x)
	}
	if d, _ := res.Rows[0][2].AsFloat(); d != 5 {
		t.Errorf("distance = %v", d)
	}
	res2 := exec(t, e, `SELECT id FROM Well WHERE ST_WITHIN(location, ST_GEOMFROMTEXT('POLYGON((-1 -1, 11 -1, 11 1, -1 1))')) ORDER BY id`)
	if len(res2.Rows) != 2 { // wells 1 and 2
		t.Errorf("WKT region rows = %d", len(res2.Rows))
	}
}

// Spatial join must agree with nested-loop evaluation on random data.
func TestSpatialJoinMatchesNestedLoopProperty(t *testing.T) {
	db := storage.NewDB()
	tb, _ := db.Create(storage.Schema{Name: "P", Cols: []storage.Column{
		{Name: "id", Kind: storage.KindInt},
		{Name: "loc", Kind: storage.KindGeom, GeomType: geom.TypePoint},
	}})
	rng := rand.New(rand.NewSource(13))
	n := 200
	pts := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		if err := tb.Append(storage.Row{storage.Int(int64(i)), storage.Geom(pts[i])}); err != nil {
			t.Fatal(err)
		}
	}
	e := NewEngine(db)
	res := exec(t, e, `SELECT a.id, b.id FROM P a, P b
		WHERE ST_DWITHIN(a.loc, b.loc, 7) AND a.id < b.id ORDER BY a.id, b.id`)
	// Brute force.
	var want [][2]int64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if geom.Distance(pts[i], pts[j]) <= 7 {
				want = append(want, [2]int64{int64(i), int64(j)})
			}
		}
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(want))
	}
	for i, w := range want {
		a, _ := res.Rows[i][0].AsInt()
		b, _ := res.Rows[i][1].AsInt()
		if a != w[0] || b != w[1] {
			t.Fatalf("row %d = (%d,%d), want %v", i, a, b, w)
		}
	}
}

func TestAggregatesGlobal(t *testing.T) {
	e := NewEngine(testDB(t))
	res := exec(t, e, "SELECT COUNT(*), SUM(arsenic_ratio), AVG(arsenic_ratio), MIN(id), MAX(id) FROM Well")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	r := res.Rows[0]
	if n, _ := r[0].AsInt(); n != 5 {
		t.Errorf("COUNT = %v", r[0])
	}
	if s, _ := r[1].AsFloat(); math.Abs(s-0.8) > 1e-12 {
		t.Errorf("SUM = %v", r[1])
	}
	if a, _ := r[2].AsFloat(); math.Abs(a-0.16) > 1e-12 {
		t.Errorf("AVG = %v", r[2])
	}
	if mn, _ := r[3].AsInt(); mn != 1 {
		t.Errorf("MIN = %v", r[3])
	}
	if mx, _ := r[4].AsInt(); mx != 5 {
		t.Errorf("MAX = %v", r[4])
	}
}

func TestAggregatesGroupBy(t *testing.T) {
	e := NewEngine(testDB(t))
	res := exec(t, e, `SELECT sanitation, COUNT(*) AS n FROM County GROUP BY sanitation ORDER BY n DESC`)
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	if n, _ := res.Rows[0][1].AsInt(); n != 3 {
		t.Errorf("majority group = %v", res.Rows[0][1])
	}
	if n, _ := res.Rows[1][1].AsInt(); n != 1 {
		t.Errorf("minority group = %v", res.Rows[1][1])
	}
}

func TestAggregatesEmptyAndNulls(t *testing.T) {
	db := storage.NewDB()
	tb, _ := db.Create(storage.Schema{Name: "T", Cols: []storage.Column{
		{Name: "k", Kind: storage.KindInt},
		{Name: "v", Kind: storage.KindFloat},
	}})
	_ = tb.AppendAll([]storage.Row{
		{storage.Int(1), storage.Float(2)},
		{storage.Int(1), storage.Null},
		{storage.Int(2), storage.Float(4)},
	})
	e := NewEngine(db)
	// NULLs are skipped by COUNT(expr)/SUM/AVG.
	res := exec(t, e, "SELECT COUNT(v), SUM(v), AVG(v) FROM T WHERE k = 1")
	if n, _ := res.Rows[0][0].AsInt(); n != 1 {
		t.Errorf("COUNT(v) = %v", res.Rows[0][0])
	}
	if s, _ := res.Rows[0][1].AsFloat(); s != 2 {
		t.Errorf("SUM(v) = %v", res.Rows[0][1])
	}
	// Zero matching tuples: COUNT(*) = 0, SUM NULL.
	res2 := exec(t, e, "SELECT COUNT(*), SUM(v) FROM T WHERE k = 9")
	if n, _ := res2.Rows[0][0].AsInt(); n != 0 {
		t.Errorf("empty COUNT = %v", res2.Rows[0][0])
	}
	if !res2.Rows[0][1].IsNull() {
		t.Errorf("empty SUM = %v", res2.Rows[0][1])
	}
}

func TestAggregateInExpression(t *testing.T) {
	e := NewEngine(testDB(t))
	res := exec(t, e, "SELECT SUM(arsenic_ratio) / COUNT(*) AS mean FROM Well")
	if v, _ := res.Rows[0][0].AsFloat(); math.Abs(v-0.16) > 1e-12 {
		t.Errorf("mean = %v", res.Rows[0][0])
	}
	if res.Cols[0] != "mean" {
		t.Errorf("col = %q", res.Cols[0])
	}
}

func TestAggregateWithJoin(t *testing.T) {
	e := NewEngine(testDB(t))
	res := exec(t, e, `SELECT w1.id, COUNT(*) AS neighbors FROM Well w1, Well w2
		WHERE ST_DWITHIN(w1.location, w2.location, 15) AND w1.id <> w2.id
		GROUP BY w1.id ORDER BY w1.id`)
	// Wells 1, 2, 4 form a near-cluster: 1-(2,4), 2-(1,4), 4-(1,2).
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %d: %v", len(res.Rows), res.Rows)
	}
	for _, r := range res.Rows {
		if n, _ := r[1].AsInt(); n != 2 {
			t.Errorf("row %v", r)
		}
	}
}

func TestAggregateStarError(t *testing.T) {
	e := NewEngine(testDB(t))
	if _, err := e.Exec("SELECT *, COUNT(*) FROM Well", nil); err == nil {
		t.Error("star + aggregate should fail")
	}
	if _, err := e.Exec("SELECT SUM(id, id) FROM Well", nil); err == nil {
		t.Error("two-arg SUM should fail")
	}
}

func TestHaving(t *testing.T) {
	e := NewEngine(testDB(t))
	res := exec(t, e, `SELECT sanitation, COUNT(*) AS n FROM County
		GROUP BY sanitation HAVING COUNT(*) > 1`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d: %v", len(res.Rows), res.Rows)
	}
	if n, _ := res.Rows[0][1].AsInt(); n != 3 {
		t.Errorf("n = %v", res.Rows[0][1])
	}
	// HAVING with non-boolean expression fails.
	if _, err := e.Exec("SELECT k FROM Well w GROUP BY k HAVING COUNT(*)", nil); err == nil {
		t.Error("non-boolean HAVING should fail")
	}
}

// TestWorkerInvariance pins the determinism contract of every sharded stage
// — join probing, the residual filter after a join step, and projection: the
// same query returns identical columns and identically-ordered rows for any
// worker count, on inputs large enough to cross the parallel threshold. The
// first query deliberately has no ORDER BY, so its row order comes purely
// from the chunk-ordered batch merge.
func TestWorkerInvariance(t *testing.T) {
	db := storage.NewDB()
	tbl, err := db.Create(storage.Schema{
		Name: "P",
		Cols: []storage.Column{
			{Name: "id", Kind: storage.KindInt},
			{Name: "v", Kind: storage.KindFloat},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 48; i++ {
		row := storage.Row{storage.Int(int64(i)), storage.Float(float64(i%17) / 16.0)}
		if err := tbl.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	queries := []string{
		// Theta join + residual predicate + expression projection, no ORDER BY.
		`SELECT a.id * 100 + b.id AS x, a.v + b.v AS s FROM P a, P b
			WHERE a.id < b.id AND a.v + b.v < 1.2`,
		// DISTINCT + ORDER BY + LIMIT on top of the sharded projection.
		`SELECT DISTINCT a.v + b.v AS s FROM P a, P b
			WHERE a.id < b.id AND a.v * b.v > 0.1 ORDER BY s DESC LIMIT 50`,
	}
	render := func(res *Result) string {
		var b strings.Builder
		b.WriteString(strings.Join(res.Cols, ","))
		for _, r := range res.Rows {
			b.WriteByte('\n')
			for i, v := range r {
				if i > 0 {
					b.WriteByte(',')
				}
				b.WriteString(v.Kind.String() + ":" + v.String())
			}
		}
		return b.String()
	}
	for qi, q := range queries {
		// The test only guards the residual stage if the plan has one.
		seq := NewEngine(db)
		plan := exec(t, seq, "EXPLAIN "+q)
		hasResidual := false
		for _, r := range plan.Rows {
			if strings.Contains(r[0].S, "then-filter") {
				hasResidual = true
			}
		}
		if !hasResidual {
			t.Fatalf("query %d plans no residual filter:\n%v", qi, plan.Rows)
		}
		ref := exec(t, seq, q)
		// DISTINCT/LIMIT collapse the output; the sharded stages still see
		// the full join result, so only the plain query checks its own size.
		if qi == 0 && len(ref.Rows) < probeParallelMin {
			t.Fatalf("query %d yields %d rows — below the parallel threshold %d",
				qi, len(ref.Rows), probeParallelMin)
		}
		want := render(ref)
		for _, workers := range []int{2, 3, 8} {
			par := NewEngine(db)
			par.SetParallelism(workers, nil)
			if got := render(exec(t, par, q)); got != want {
				t.Errorf("query %d: workers=%d result differs from sequential\nseq:\n%s\npar:\n%s",
					qi, workers, want, got)
			}
		}
	}
}

// BenchmarkSelectResidualProjection measures the sharded residual-filter +
// projection pipeline on a giant-rule-shaped query: a theta self-join whose
// output passes through a residual predicate and an expression projection —
// the sqlx hot path of a single large grounding rule.
func BenchmarkSelectResidualProjection(b *testing.B) {
	db := storage.NewDB()
	tbl, err := db.Create(storage.Schema{
		Name: "P",
		Cols: []storage.Column{
			{Name: "id", Kind: storage.KindInt},
			{Name: "v", Kind: storage.KindFloat},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 128; i++ {
		row := storage.Row{storage.Int(int64(i)), storage.Float(float64(i%17) / 16.0)}
		if err := tbl.Append(row); err != nil {
			b.Fatal(err)
		}
	}
	const q = `SELECT a.id * 100 + b.id AS x, a.v + b.v AS s FROM P a, P b
		WHERE a.id < b.id AND a.v + b.v < 1.2`
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := NewEngine(db)
			e.SetParallelism(workers, nil)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := e.Exec(q, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
