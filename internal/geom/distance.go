package geom

import "math"

// Metric selects how distances between points are measured.
type Metric uint8

const (
	// Euclidean is planar straight-line distance in coordinate units.
	Euclidean Metric = iota
	// HaversineMiles is great-circle distance in statute miles for points
	// whose X is longitude and Y is latitude, both in degrees. The EbolaKB
	// example in the paper (distance(L1, L2) < 150 miles) uses this metric.
	HaversineMiles
	// HaversineKm is great-circle distance in kilometres.
	HaversineKm
)

// Earth radii used by the haversine metrics.
const (
	earthRadiusMiles = 3958.7613
	earthRadiusKm    = 6371.0088
)

// Dist returns the distance between a and b under the metric.
func (m Metric) Dist(a, b Point) float64 {
	switch m {
	case HaversineMiles:
		return haversine(a, b, earthRadiusMiles)
	case HaversineKm:
		return haversine(a, b, earthRadiusKm)
	default:
		return Distance(a, b)
	}
}

// Distance returns the planar Euclidean distance between two points.
func Distance(a, b Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return math.Hypot(dx, dy)
}

// DistanceSq returns the squared planar Euclidean distance between two
// points. It avoids the square root for comparison-only uses such as index
// pruning.
func DistanceSq(a, b Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return dx*dx + dy*dy
}

func haversine(a, b Point, radius float64) float64 {
	lat1 := a.Y * math.Pi / 180
	lat2 := b.Y * math.Pi / 180
	dLat := (b.Y - a.Y) * math.Pi / 180
	dLon := (b.X - a.X) * math.Pi / 180
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * radius * math.Asin(math.Min(1, math.Sqrt(s)))
}

// ExpandWindow grows a bounding box by radius d under the metric, for use
// as a filter window in index-assisted spatial joins and range queries. For
// geographic metrics the expansion converts the distance to conservative
// degree deltas (one degree of latitude ≈ 69 miles ≈ 111.19 km; longitude
// degrees shrink by cos(latitude), so the window expands by the widest
// delta needed within its latitude span).
func ExpandWindow(r Rect, d float64, m Metric) Rect {
	switch m {
	case HaversineMiles:
		return expandGeo(r, d/69.0)
	case HaversineKm:
		return expandGeo(r, d/111.19)
	default:
		return r.Expand(d)
	}
}

func expandGeo(r Rect, latDelta float64) Rect {
	maxAbsLat := math.Max(math.Abs(r.Min.Y-latDelta), math.Abs(r.Max.Y+latDelta))
	if maxAbsLat > 89 {
		maxAbsLat = 89
	}
	lonDelta := latDelta / math.Cos(maxAbsLat*math.Pi/180)
	return Rect{
		Min: Pt(r.Min.X-lonDelta, r.Min.Y-latDelta),
		Max: Pt(r.Max.X+lonDelta, r.Max.Y+latDelta),
	}
}

// DistancePointRect returns the smallest planar distance from p to any point
// of r; zero when p is inside r.
func DistancePointRect(p Point, r Rect) float64 {
	dx := math.Max(0, math.Max(r.Min.X-p.X, p.X-r.Max.X))
	dy := math.Max(0, math.Max(r.Min.Y-p.Y, p.Y-r.Max.Y))
	return math.Hypot(dx, dy)
}

// DistanceRects returns the smallest planar distance between any two points
// of a and b; zero when they intersect.
func DistanceRects(a, b Rect) float64 {
	dx := math.Max(0, math.Max(b.Min.X-a.Max.X, a.Min.X-b.Max.X))
	dy := math.Max(0, math.Max(b.Min.Y-a.Max.Y, a.Min.Y-b.Max.Y))
	return math.Hypot(dx, dy)
}

// DistancePointSegment returns the planar distance from p to the segment ab.
func DistancePointSegment(p, a, b Point) float64 {
	abx, aby := b.X-a.X, b.Y-a.Y
	apx, apy := p.X-a.X, p.Y-a.Y
	denom := abx*abx + aby*aby
	if denom == 0 {
		return Distance(p, a)
	}
	t := (apx*abx + apy*aby) / denom
	t = math.Max(0, math.Min(1, t))
	return Distance(p, Point{X: a.X + t*abx, Y: a.Y + t*aby})
}

// DistanceGeometries returns the planar distance between two geometries:
// zero when they intersect, otherwise the minimum separation. Only the
// combinations that arise from Sya's spatial predicates are supported;
// polygon–polygon and linestring combinations fall back to vertex/edge
// distance, which is exact for disjoint simple geometries.
func DistanceGeometries(a, b Geometry) float64 {
	if Intersects(a, b) {
		return 0
	}
	switch ga := a.(type) {
	case Point:
		switch gb := b.(type) {
		case Point:
			return Distance(ga, gb)
		case Rect:
			return DistancePointRect(ga, gb)
		case Polygon:
			return distPointRing(ga, gb.Ring)
		case LineString:
			return distPointPath(ga, gb.Points, false)
		}
	case Rect:
		switch gb := b.(type) {
		case Point:
			return DistancePointRect(gb, ga)
		case Rect:
			return DistanceRects(ga, gb)
		case Polygon:
			return distPathPath(rectRing(ga), gb.Ring, true, true)
		case LineString:
			return distPathPath(rectRing(ga), gb.Points, true, false)
		}
	case Polygon:
		switch gb := b.(type) {
		case Point:
			return distPointRing(gb, ga.Ring)
		case Rect:
			return distPathPath(ga.Ring, rectRing(gb), true, true)
		case Polygon:
			return distPathPath(ga.Ring, gb.Ring, true, true)
		case LineString:
			return distPathPath(ga.Ring, gb.Points, true, false)
		}
	case LineString:
		switch gb := b.(type) {
		case Point:
			return distPointPath(gb, ga.Points, false)
		case Rect:
			return distPathPath(ga.Points, rectRing(gb), false, true)
		case Polygon:
			return distPathPath(ga.Points, gb.Ring, false, true)
		case LineString:
			return distPathPath(ga.Points, gb.Points, false, false)
		}
	}
	return math.Inf(1)
}

func rectRing(r Rect) []Point {
	return []Point{
		r.Min,
		{X: r.Max.X, Y: r.Min.Y},
		r.Max,
		{X: r.Min.X, Y: r.Max.Y},
	}
}

// distPointRing returns the distance from p to the closed ring boundary.
func distPointRing(p Point, ring []Point) float64 {
	return distPointPath(p, ring, true)
}

func distPointPath(p Point, pts []Point, closed bool) float64 {
	if len(pts) == 0 {
		return math.Inf(1)
	}
	if len(pts) == 1 {
		return Distance(p, pts[0])
	}
	best := math.Inf(1)
	n := len(pts)
	last := n - 1
	if closed {
		last = n
	}
	for i := 0; i < last; i++ {
		d := DistancePointSegment(p, pts[i], pts[(i+1)%n])
		if d < best {
			best = d
		}
	}
	return best
}

func distPathPath(a, b []Point, aClosed, bClosed bool) float64 {
	best := math.Inf(1)
	for _, p := range a {
		if d := distPointPath(p, b, bClosed); d < best {
			best = d
		}
	}
	for _, p := range b {
		if d := distPointPath(p, a, aClosed); d < best {
			best = d
		}
	}
	return best
}
