package geom

import (
	"math/rand"
	"testing"
)

func TestWKTPointRoundTrip(t *testing.T) {
	p := Pt(-10.8047, 6.3156)
	s := MarshalWKT(p)
	if s != "POINT (-10.8047 6.3156)" {
		t.Errorf("MarshalWKT = %q", s)
	}
	g, err := ParseWKT(s)
	if err != nil {
		t.Fatal(err)
	}
	if g != p {
		t.Errorf("round trip = %v, want %v", g, p)
	}
}

func TestWKTPolygonRoundTrip(t *testing.T) {
	pg := Polygon{Ring: []Point{Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4)}}
	s := MarshalWKT(pg)
	g, err := ParseWKT(s)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := g.(Polygon)
	if !ok {
		t.Fatalf("parsed %T, want Polygon", g)
	}
	if len(got.Ring) != len(pg.Ring) {
		t.Fatalf("ring size = %d, want %d", len(got.Ring), len(pg.Ring))
	}
	for i := range pg.Ring {
		if got.Ring[i] != pg.Ring[i] {
			t.Errorf("vertex %d = %v, want %v", i, got.Ring[i], pg.Ring[i])
		}
	}
}

func TestWKTLineStringRoundTrip(t *testing.T) {
	ls := LineString{Points: []Point{Pt(0, 0), Pt(1, 2), Pt(3, -1)}}
	g, err := ParseWKT(MarshalWKT(ls))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := g.(LineString)
	if !ok || len(got.Points) != 3 {
		t.Fatalf("parsed %v", g)
	}
}

func TestWKTRectMarshalsAsPolygon(t *testing.T) {
	r := NewRect(Pt(0, 0), Pt(2, 3))
	g, err := ParseWKT(MarshalWKT(r))
	if err != nil {
		t.Fatal(err)
	}
	pg, ok := g.(Polygon)
	if !ok {
		t.Fatalf("rect should round-trip as polygon, got %T", g)
	}
	if b := pg.Bounds(); b != r {
		t.Errorf("bounds = %+v, want %+v", b, r)
	}
}

func TestWKTCaseInsensitiveAndErrors(t *testing.T) {
	if _, err := ParseWKT("point (1 2)"); err != nil {
		t.Errorf("lowercase point: %v", err)
	}
	bad := []string{
		"",
		"CIRCLE (1 2 3)",
		"POINT (1)",
		"POINT (1 2, 3 4)",
		"POINT (a b)",
		"LINESTRING (1 1)",
		"POLYGON ((0 0, 1 1))",
	}
	for _, s := range bad {
		if _, err := ParseWKT(s); err == nil {
			t.Errorf("ParseWKT(%q) should fail", s)
		}
	}
}

func TestWKTFuzzRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		p := Pt(rng.NormFloat64()*100, rng.NormFloat64()*100)
		g, err := ParseWKT(MarshalWKT(p))
		if err != nil {
			t.Fatalf("point %v: %v", p, err)
		}
		if g != p {
			t.Fatalf("round trip %v != %v", g, p)
		}
	}
}
