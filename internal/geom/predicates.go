package geom

import "math"

// This file implements the spatial predicates Sya adds to DDlog rule bodies
// (paper Section III, "Spatial Predicates"): within, overlaps, intersects,
// contains, and distance checks. The grounding module evaluates these during
// rule translation and execution (Section IV-B).

// segIntersects reports whether segments p1p2 and p3p4 share a point,
// including collinear overlap and endpoint touching.
func segIntersects(p1, p2, p3, p4 Point) bool {
	d1 := cross(p3, p4, p1)
	d2 := cross(p3, p4, p2)
	d3 := cross(p1, p2, p3)
	d4 := cross(p1, p2, p4)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	switch {
	case d1 == 0 && onSegment(p3, p4, p1):
		return true
	case d2 == 0 && onSegment(p3, p4, p2):
		return true
	case d3 == 0 && onSegment(p1, p2, p3):
		return true
	case d4 == 0 && onSegment(p1, p2, p4):
		return true
	}
	return false
}

// cross returns the z-component of (b-a) × (c-a).
func cross(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// onSegment reports whether c, known collinear with ab, lies on segment ab.
func onSegment(a, b, c Point) bool {
	return math.Min(a.X, b.X) <= c.X && c.X <= math.Max(a.X, b.X) &&
		math.Min(a.Y, b.Y) <= c.Y && c.Y <= math.Max(a.Y, b.Y)
}

// PointInPolygon reports whether p is inside the polygon (boundary
// inclusive), by ray casting with an explicit boundary check.
func PointInPolygon(p Point, pg Polygon) bool {
	n := len(pg.Ring)
	if n < 3 {
		return false
	}
	// Boundary counts as inside, matching the OGC "within" convention used
	// by the grounding queries.
	for i := 0; i < n; i++ {
		a, b := pg.Ring[i], pg.Ring[(i+1)%n]
		if cross(a, b, p) == 0 && onSegment(a, b, p) {
			return true
		}
	}
	inside := false
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		a, b := pg.Ring[i], pg.Ring[j]
		if (a.Y > p.Y) != (b.Y > p.Y) {
			xAtY := a.X + (p.Y-a.Y)*(b.X-a.X)/(b.Y-a.Y)
			if p.X < xAtY {
				inside = !inside
			}
		}
	}
	return inside
}

func ringEdgesIntersect(a, b []Point, aClosed, bClosed bool) bool {
	na, nb := len(a), len(b)
	lastA, lastB := na-1, nb-1
	if aClosed {
		lastA = na
	}
	if bClosed {
		lastB = nb
	}
	for i := 0; i < lastA; i++ {
		for j := 0; j < lastB; j++ {
			if segIntersects(a[i], a[(i+1)%na], b[j], b[(j+1)%nb]) {
				return true
			}
		}
	}
	return false
}

// Intersects reports whether two geometries share at least one point
// (the OGC "intersects" / the paper's overlaps-style predicate for any
// geometry pair).
func Intersects(a, b Geometry) bool {
	if !a.Bounds().Intersects(b.Bounds()) {
		return false
	}
	switch ga := a.(type) {
	case Point:
		return geomCoversPoint(b, ga)
	case Rect:
		switch gb := b.(type) {
		case Point:
			return ga.ContainsPoint(gb)
		case Rect:
			return ga.Intersects(gb)
		case Polygon:
			return polygonIntersectsRect(gb, ga)
		case LineString:
			return lineIntersectsRect(gb, ga)
		}
	case Polygon:
		switch gb := b.(type) {
		case Point:
			return PointInPolygon(gb, ga)
		case Rect:
			return polygonIntersectsRect(ga, gb)
		case Polygon:
			return polygonsIntersect(ga, gb)
		case LineString:
			return lineIntersectsPolygon(gb, ga)
		}
	case LineString:
		switch gb := b.(type) {
		case Point:
			return pointOnLine(gb, ga)
		case Rect:
			return lineIntersectsRect(ga, gb)
		case Polygon:
			return lineIntersectsPolygon(ga, gb)
		case LineString:
			return ringEdgesIntersect(ga.Points, gb.Points, false, false)
		}
	}
	return false
}

func geomCoversPoint(g Geometry, p Point) bool {
	switch gg := g.(type) {
	case Point:
		return gg == p
	case Rect:
		return gg.ContainsPoint(p)
	case Polygon:
		return PointInPolygon(p, gg)
	case LineString:
		return pointOnLine(p, gg)
	}
	return false
}

func pointOnLine(p Point, ls LineString) bool {
	for i := 0; i+1 < len(ls.Points); i++ {
		a, b := ls.Points[i], ls.Points[i+1]
		if cross(a, b, p) == 0 && onSegment(a, b, p) {
			return true
		}
	}
	return len(ls.Points) == 1 && ls.Points[0] == p
}

func polygonIntersectsRect(pg Polygon, r Rect) bool {
	rr := Polygon{Ring: rectRing(r)}
	return polygonsIntersect(pg, rr)
}

func polygonsIntersect(a, b Polygon) bool {
	if len(a.Ring) < 3 || len(b.Ring) < 3 {
		return false
	}
	if ringEdgesIntersect(a.Ring, b.Ring, true, true) {
		return true
	}
	// One polygon fully inside the other.
	return PointInPolygon(b.Ring[0], a) || PointInPolygon(a.Ring[0], b)
}

func lineIntersectsPolygon(ls LineString, pg Polygon) bool {
	if len(ls.Points) == 0 {
		return false
	}
	if ringEdgesIntersect(ls.Points, pg.Ring, false, true) {
		return true
	}
	return PointInPolygon(ls.Points[0], pg)
}

func lineIntersectsRect(ls LineString, r Rect) bool {
	for _, p := range ls.Points {
		if r.ContainsPoint(p) {
			return true
		}
	}
	return ringEdgesIntersect(ls.Points, rectRing(r), false, true)
}

// Within reports whether geometry a lies entirely inside geometry b
// (the paper's "within(liberia_geom, L1)"-style predicate, boundary
// inclusive). Supported containers are Rect and Polygon; a Point container
// contains only an equal Point.
func Within(a, b Geometry) bool {
	switch gb := b.(type) {
	case Point:
		ga, ok := a.(Point)
		return ok && ga == gb
	case Rect:
		switch ga := a.(type) {
		case Point:
			return gb.ContainsPoint(ga)
		case Rect:
			return gb.ContainsRect(ga)
		case Polygon:
			return gb.ContainsRect(ga.Bounds())
		case LineString:
			return gb.ContainsRect(ga.Bounds())
		}
	case Polygon:
		switch ga := a.(type) {
		case Point:
			return PointInPolygon(ga, gb)
		case Rect:
			return polygonContainsPath(gb, rectRing(ga), true)
		case Polygon:
			return polygonContainsPath(gb, ga.Ring, true)
		case LineString:
			return polygonContainsPath(gb, ga.Points, false)
		}
	case LineString:
		ga, ok := a.(Point)
		return ok && pointOnLine(ga, gb)
	}
	return false
}

// polygonContainsPath reports whether every vertex of the path is inside pg
// and no path edge crosses out of pg. For convex pg this is exact; for
// concave pg it is exact except for edges that pass through pg's boundary
// tangentially, which do not arise from the rule workloads in this repo.
func polygonContainsPath(pg Polygon, pts []Point, closed bool) bool {
	if len(pts) == 0 {
		return false
	}
	for _, p := range pts {
		if !PointInPolygon(p, pg) {
			return false
		}
	}
	n := len(pts)
	last := n - 1
	if closed {
		last = n
	}
	for i := 0; i < last; i++ {
		a, b := pts[i], pts[(i+1)%n]
		mid := Point{X: (a.X + b.X) / 2, Y: (a.Y + b.Y) / 2}
		if !PointInPolygon(mid, pg) {
			return false
		}
	}
	return true
}

// Contains reports whether geometry a entirely contains geometry b.
func Contains(a, b Geometry) bool { return Within(b, a) }

// Overlaps reports whether two geometries overlap: they intersect and
// neither contains the other. For point/point it degenerates to equality,
// matching the loose use of "overlaps" in the paper's predicate list.
func Overlaps(a, b Geometry) bool {
	if !Intersects(a, b) {
		return false
	}
	if _, ok := a.(Point); ok {
		return true
	}
	if _, ok := b.(Point); ok {
		return true
	}
	return !Within(a, b) && !Within(b, a)
}

// DWithin reports whether two geometries are within distance d of each other
// under the metric (the translated form of "distance(L1, L2) < d").
func DWithin(a, b Geometry, d float64, m Metric) bool {
	pa, aIsPt := a.(Point)
	pb, bIsPt := b.(Point)
	if aIsPt && bIsPt {
		return m.Dist(pa, pb) <= d
	}
	// Non-point geometries use the planar separation distance.
	return DistanceGeometries(a, b) <= d
}
