package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

var unitSquare = Polygon{Ring: []Point{Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4)}}

func TestPointInPolygon(t *testing.T) {
	cases := []struct {
		p    Point
		want bool
	}{
		{Pt(2, 2), true},
		{Pt(0, 0), true},  // vertex
		{Pt(2, 0), true},  // edge
		{Pt(4, 4), true},  // vertex
		{Pt(5, 2), false}, // outside right
		{Pt(-0.001, 2), false},
		{Pt(2, 4.001), false},
	}
	for _, c := range cases {
		if got := PointInPolygon(c.p, unitSquare); got != c.want {
			t.Errorf("PointInPolygon(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPointInConcavePolygon(t *testing.T) {
	// A "U" shape: notch from above.
	u := Polygon{Ring: []Point{
		Pt(0, 0), Pt(6, 0), Pt(6, 4), Pt(4, 4), Pt(4, 2), Pt(2, 2), Pt(2, 4), Pt(0, 4),
	}}
	if !PointInPolygon(Pt(1, 3), u) {
		t.Error("left arm should be inside")
	}
	if !PointInPolygon(Pt(5, 3), u) {
		t.Error("right arm should be inside")
	}
	if PointInPolygon(Pt(3, 3), u) {
		t.Error("notch should be outside")
	}
	if !PointInPolygon(Pt(3, 1), u) {
		t.Error("base should be inside")
	}
}

func TestPointInPolygonDegenerate(t *testing.T) {
	if PointInPolygon(Pt(0, 0), Polygon{Ring: []Point{Pt(0, 0), Pt(1, 1)}}) {
		t.Error("2-vertex polygon should contain nothing")
	}
}

func TestIntersects(t *testing.T) {
	cases := []struct {
		name string
		a, b Geometry
		want bool
	}{
		{"point-point equal", Pt(1, 1), Pt(1, 1), true},
		{"point-point diff", Pt(1, 1), Pt(1, 2), false},
		{"point-in-rect", Pt(1, 1), NewRect(Pt(0, 0), Pt(2, 2)), true},
		{"point-out-rect", Pt(3, 3), NewRect(Pt(0, 0), Pt(2, 2)), false},
		{"rect-rect overlap", NewRect(Pt(0, 0), Pt(2, 2)), NewRect(Pt(1, 1), Pt(3, 3)), true},
		{"rect-rect disjoint", NewRect(Pt(0, 0), Pt(1, 1)), NewRect(Pt(2, 2), Pt(3, 3)), false},
		{"point-in-poly", Pt(2, 2), unitSquare, true},
		{"poly-poly cross", unitSquare, Polygon{Ring: []Point{Pt(3, 3), Pt(6, 3), Pt(6, 6), Pt(3, 6)}}, true},
		{"poly-poly nested", unitSquare, Polygon{Ring: []Point{Pt(1, 1), Pt(2, 1), Pt(2, 2), Pt(1, 2)}}, true},
		{"poly-poly disjoint", unitSquare, Polygon{Ring: []Point{Pt(10, 10), Pt(12, 10), Pt(11, 12)}}, false},
		{"line-poly cross", LineString{Points: []Point{Pt(-1, 2), Pt(5, 2)}}, unitSquare, true},
		{"line-poly inside", LineString{Points: []Point{Pt(1, 1), Pt(2, 2)}}, unitSquare, true},
		{"line-poly out", LineString{Points: []Point{Pt(5, 5), Pt(6, 6)}}, unitSquare, false},
		{"line-line cross", LineString{Points: []Point{Pt(0, 0), Pt(2, 2)}}, LineString{Points: []Point{Pt(0, 2), Pt(2, 0)}}, true},
		{"line-line parallel", LineString{Points: []Point{Pt(0, 0), Pt(2, 0)}}, LineString{Points: []Point{Pt(0, 1), Pt(2, 1)}}, false},
		{"point-on-line", Pt(1, 1), LineString{Points: []Point{Pt(0, 0), Pt(2, 2)}}, true},
		{"point-off-line", Pt(1, 0), LineString{Points: []Point{Pt(0, 0), Pt(2, 2)}}, false},
		{"rect-poly overlap", NewRect(Pt(3, 3), Pt(5, 5)), unitSquare, true},
		{"line-rect cross", LineString{Points: []Point{Pt(-1, 1), Pt(5, 1)}}, NewRect(Pt(0, 0), Pt(2, 2)), true},
		{"line-rect inside", LineString{Points: []Point{Pt(0.5, 0.5), Pt(1, 1)}}, NewRect(Pt(0, 0), Pt(2, 2)), true},
	}
	for _, c := range cases {
		if got := Intersects(c.a, c.b); got != c.want {
			t.Errorf("%s: Intersects = %v, want %v", c.name, got, c.want)
		}
		if got := Intersects(c.b, c.a); got != c.want {
			t.Errorf("%s (swapped): Intersects = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestWithin(t *testing.T) {
	cases := []struct {
		name string
		a, b Geometry
		want bool
	}{
		{"point-in-poly", Pt(2, 2), unitSquare, true},
		{"point-out-poly", Pt(5, 5), unitSquare, false},
		{"point-in-rect", Pt(1, 1), NewRect(Pt(0, 0), Pt(2, 2)), true},
		{"rect-in-rect", NewRect(Pt(1, 1), Pt(2, 2)), NewRect(Pt(0, 0), Pt(3, 3)), true},
		{"rect-not-in-rect", NewRect(Pt(1, 1), Pt(4, 4)), NewRect(Pt(0, 0), Pt(3, 3)), false},
		{"poly-in-rect", Polygon{Ring: []Point{Pt(1, 1), Pt(2, 1), Pt(2, 2)}}, NewRect(Pt(0, 0), Pt(3, 3)), true},
		{"poly-in-poly", Polygon{Ring: []Point{Pt(1, 1), Pt(2, 1), Pt(2, 2)}}, unitSquare, true},
		{"poly-partial", Polygon{Ring: []Point{Pt(3, 3), Pt(5, 3), Pt(5, 5)}}, unitSquare, false},
		{"line-in-poly", LineString{Points: []Point{Pt(1, 1), Pt(3, 3)}}, unitSquare, true},
		{"line-exits-poly", LineString{Points: []Point{Pt(1, 1), Pt(5, 5)}}, unitSquare, false},
		{"point-eq-point", Pt(1, 1), Pt(1, 1), true},
		{"point-ne-point", Pt(1, 1), Pt(1, 2), false},
		{"point-on-linestring", Pt(1, 1), LineString{Points: []Point{Pt(0, 0), Pt(2, 2)}}, true},
	}
	for _, c := range cases {
		if got := Within(c.a, c.b); got != c.want {
			t.Errorf("%s: Within = %v, want %v", c.name, got, c.want)
		}
	}
	// Contains is the inverse.
	if !Contains(unitSquare, Pt(2, 2)) || Contains(Pt(2, 2), unitSquare) {
		t.Error("Contains/Within inversion broken")
	}
}

func TestOverlaps(t *testing.T) {
	a := NewRect(Pt(0, 0), Pt(2, 2))
	b := NewRect(Pt(1, 1), Pt(3, 3))
	inner := NewRect(Pt(0.5, 0.5), Pt(1, 1))
	far := NewRect(Pt(5, 5), Pt(6, 6))
	if !Overlaps(a, b) {
		t.Error("partially overlapping rects should overlap")
	}
	if Overlaps(a, inner) {
		t.Error("contained rect should not 'overlap'")
	}
	if Overlaps(a, far) {
		t.Error("disjoint rects should not overlap")
	}
	if !Overlaps(Pt(1, 1), a) {
		t.Error("point intersecting counts as overlap per Sya predicate semantics")
	}
}

func TestDWithin(t *testing.T) {
	if !DWithin(Pt(0, 0), Pt(3, 4), 5, Euclidean) {
		t.Error("distance 5 within 5 should hold (inclusive)")
	}
	if DWithin(Pt(0, 0), Pt(3, 4), 4.99, Euclidean) {
		t.Error("distance 5 within 4.99 should fail")
	}
	// Geographic: Monrovia to Gbarnga ~110 miles, within 150 but not 100.
	monrovia, gbarnga := Pt(-10.8047, 6.3156), Pt(-9.4722, 6.9956)
	if !DWithin(monrovia, gbarnga, 150, HaversineMiles) {
		t.Error("within 150 miles should hold")
	}
	if DWithin(monrovia, gbarnga, 100, HaversineMiles) {
		t.Error("within 100 miles should fail")
	}
	// Non-point pair falls back to separation distance.
	if !DWithin(unitSquare, NewRect(Pt(5, 0), Pt(6, 1)), 1.5, Euclidean) {
		t.Error("polygon-rect DWithin should hold")
	}
}

// Property: a random point strictly inside the convex hull triangle is
// reported inside, and a far translation of it is reported outside.
func TestPointInPolygonProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		tri := Polygon{Ring: []Point{
			Pt(rng.Float64()*10, rng.Float64()*10),
			Pt(10+rng.Float64()*10, rng.Float64()*10),
			Pt(rng.Float64()*20, 10+rng.Float64()*10),
		}}
		// Barycentric interior point.
		w1, w2 := 0.2+0.3*rng.Float64(), 0.2+0.3*rng.Float64()
		w3 := 1 - w1 - w2
		p := Pt(
			w1*tri.Ring[0].X+w2*tri.Ring[1].X+w3*tri.Ring[2].X,
			w1*tri.Ring[0].Y+w2*tri.Ring[1].Y+w3*tri.Ring[2].Y,
		)
		if !PointInPolygon(p, tri) {
			t.Fatalf("interior point %v not inside %v", p, tri)
		}
		if PointInPolygon(Pt(p.X+1000, p.Y+1000), tri) {
			t.Fatalf("far point inside %v", tri)
		}
	}
}

// Property: Within implies Intersects for point/rect/polygon combinations.
func TestWithinImpliesIntersectsProperty(t *testing.T) {
	f := func(x, y, w, h float64) bool {
		x, y = clampCoord(x), clampCoord(y)
		w, h = 1+mod1(w)*5, 1+mod1(h)*5
		inner := Pt(x+w/2, y+h/2)
		outer := NewRect(Pt(x, y), Pt(x+w, y+h))
		if Within(inner, outer) && !Intersects(inner, outer) {
			return false
		}
		pg := Polygon{Ring: []Point{Pt(x, y), Pt(x+w, y), Pt(x+w, y+h), Pt(x, y+h)}}
		return !Within(inner, pg) || Intersects(inner, pg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func mod1(v float64) float64 {
	v = clampCoord(v)
	if v < 0 {
		v = -v
	}
	for v > 1 {
		v /= 10
	}
	return v
}
