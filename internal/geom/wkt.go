package geom

import (
	"fmt"
	"strconv"
	"strings"
)

// This file implements a small Well-Known Text (WKT) codec conforming to the
// OGC simple-features syntax for the four types Sya supports. The cmd/sya
// CLI uses it to load spatial attributes from CSV files, and the storage
// layer uses it to print spatial values.

// MarshalWKT renders g in OGC WKT.
func MarshalWKT(g Geometry) string {
	var b strings.Builder
	switch gg := g.(type) {
	case Point:
		fmt.Fprintf(&b, "POINT (%s %s)", fmtCoord(gg.X), fmtCoord(gg.Y))
	case Rect:
		// WKT has no rectangle type; encode as its ring polygon.
		writeRing(&b, "POLYGON ((", rectRing(gg), true)
	case Polygon:
		writeRing(&b, "POLYGON ((", gg.Ring, true)
	case LineString:
		writeRing(&b, "LINESTRING (", gg.Points, false)
	default:
		return "GEOMETRY EMPTY"
	}
	return b.String()
}

func fmtCoord(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func writeRing(b *strings.Builder, prefix string, pts []Point, closeRing bool) {
	b.WriteString(prefix)
	for i, p := range pts {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(fmtCoord(p.X))
		b.WriteByte(' ')
		b.WriteString(fmtCoord(p.Y))
	}
	if closeRing && len(pts) > 0 && pts[0] != pts[len(pts)-1] {
		b.WriteString(", ")
		b.WriteString(fmtCoord(pts[0].X))
		b.WriteByte(' ')
		b.WriteString(fmtCoord(pts[0].Y))
	}
	if closeRing {
		b.WriteString("))")
	} else {
		b.WriteString(")")
	}
}

// ParseWKT parses a WKT string into a Geometry. POINT, LINESTRING and
// POLYGON (single exterior ring) are supported; a closed 4-corner
// axis-aligned polygon still parses as Polygon (Rect is an internal
// optimization type, produced by NewRect, not by parsing).
func ParseWKT(s string) (Geometry, error) {
	s = strings.TrimSpace(s)
	upper := strings.ToUpper(s)
	switch {
	case strings.HasPrefix(upper, "POINT"):
		coords, err := parseCoordList(s[len("POINT"):])
		if err != nil {
			return nil, fmt.Errorf("geom: bad POINT: %w", err)
		}
		if len(coords) != 1 {
			return nil, fmt.Errorf("geom: POINT needs exactly one coordinate, got %d", len(coords))
		}
		return coords[0], nil
	case strings.HasPrefix(upper, "LINESTRING"):
		coords, err := parseCoordList(s[len("LINESTRING"):])
		if err != nil {
			return nil, fmt.Errorf("geom: bad LINESTRING: %w", err)
		}
		if len(coords) < 2 {
			return nil, fmt.Errorf("geom: LINESTRING needs at least two coordinates, got %d", len(coords))
		}
		return LineString{Points: coords}, nil
	case strings.HasPrefix(upper, "POLYGON"):
		body := strings.TrimSpace(s[len("POLYGON"):])
		body = strings.TrimPrefix(body, "(")
		body = strings.TrimSuffix(body, ")")
		coords, err := parseCoordList(body)
		if err != nil {
			return nil, fmt.Errorf("geom: bad POLYGON: %w", err)
		}
		// Drop the repeated closing vertex, if present.
		if len(coords) > 1 && coords[0] == coords[len(coords)-1] {
			coords = coords[:len(coords)-1]
		}
		if len(coords) < 3 {
			return nil, fmt.Errorf("geom: POLYGON ring needs at least three distinct vertices, got %d", len(coords))
		}
		return Polygon{Ring: coords}, nil
	}
	return nil, fmt.Errorf("geom: unsupported WKT %q", s)
}

func parseCoordList(s string) ([]Point, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "(")
	s = strings.TrimSuffix(s, ")")
	parts := strings.Split(s, ",")
	pts := make([]Point, 0, len(parts))
	for _, part := range parts {
		fields := strings.Fields(strings.TrimSpace(part))
		if len(fields) != 2 {
			return nil, fmt.Errorf("coordinate %q is not two numbers", part)
		}
		x, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("bad x %q: %w", fields[0], err)
		}
		y, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("bad y %q: %w", fields[1], err)
		}
		pts = append(pts, Point{X: x, Y: y})
	}
	return pts, nil
}
