// Package geom provides the spatial data types and predicates that Sya adds
// to the DDlog schema language (paper Section III): point, rectangle,
// polygon, and linestring, together with OGC-style spatial predicates
// (distance, within, overlaps, intersects, contains) used by the grounding
// module when evaluating spatial rule bodies.
//
// Coordinates are planar by default. For geographic data (longitude,
// latitude in degrees) the Haversine metric is available; the EbolaKB
// example in the paper measures county distances in miles, which Haversine
// reproduces.
package geom

import (
	"fmt"
	"math"
)

// Type identifies one of the four spatial data types Sya adds to DDlog.
type Type uint8

// The spatial data types of paper Section III ("Spatial Data Types").
const (
	TypePoint Type = iota
	TypeRect
	TypePolygon
	TypeLineString
)

// String returns the DDlog keyword for the type.
func (t Type) String() string {
	switch t {
	case TypePoint:
		return "point"
	case TypeRect:
		return "rectangle"
	case TypePolygon:
		return "polygon"
	case TypeLineString:
		return "linestring"
	default:
		return fmt.Sprintf("geom.Type(%d)", uint8(t))
	}
}

// ParseType maps a DDlog spatial type keyword to its Type.
func ParseType(s string) (Type, bool) {
	switch s {
	case "point":
		return TypePoint, true
	case "rectangle", "rect":
		return TypeRect, true
	case "polygon":
		return TypePolygon, true
	case "linestring":
		return TypeLineString, true
	}
	return 0, false
}

// Point is a 2-D point. For geographic use, X is longitude and Y is latitude
// in degrees.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Rect is an axis-aligned rectangle with Min ≤ Max on both axes.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanning the two corner points, normalizing
// the corner order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{X: math.Min(a.X, b.X), Y: math.Min(a.Y, b.Y)},
		Max: Point{X: math.Max(a.X, b.X), Y: math.Max(a.Y, b.Y)},
	}
}

// Polygon is a simple polygon given by its exterior ring. The ring may be
// open (first vertex not repeated at the end); all predicates treat it as
// implicitly closed. Vertex order may be either orientation.
type Polygon struct {
	Ring []Point
}

// LineString is a polyline of two or more vertices.
type LineString struct {
	Points []Point
}

// Geometry is the interface implemented by all four spatial types.
type Geometry interface {
	// GeomType reports which of the four DDlog spatial types this is.
	GeomType() Type
	// Bounds returns the minimal axis-aligned bounding rectangle.
	Bounds() Rect
}

// GeomType implements Geometry.
func (Point) GeomType() Type { return TypePoint }

// GeomType implements Geometry.
func (Rect) GeomType() Type { return TypeRect }

// GeomType implements Geometry.
func (Polygon) GeomType() Type { return TypePolygon }

// GeomType implements Geometry.
func (LineString) GeomType() Type { return TypeLineString }

// Bounds implements Geometry.
func (p Point) Bounds() Rect { return Rect{Min: p, Max: p} }

// Bounds implements Geometry.
func (r Rect) Bounds() Rect { return r }

// Bounds implements Geometry.
func (pg Polygon) Bounds() Rect { return boundsOf(pg.Ring) }

// Bounds implements Geometry.
func (ls LineString) Bounds() Rect { return boundsOf(ls.Points) }

func boundsOf(pts []Point) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	r := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		r.Min.X = math.Min(r.Min.X, p.X)
		r.Min.Y = math.Min(r.Min.Y, p.Y)
		r.Max.X = math.Max(r.Max.X, p.X)
		r.Max.Y = math.Max(r.Max.Y, p.Y)
	}
	return r
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	return Point{X: (r.Min.X + r.Max.X) / 2, Y: (r.Min.Y + r.Max.Y) / 2}
}

// ContainsPoint reports whether p lies inside r (boundary inclusive).
func (r Rect) ContainsPoint(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ContainsRect reports whether o lies entirely inside r (boundary inclusive).
func (r Rect) ContainsRect(o Rect) bool {
	return o.Min.X >= r.Min.X && o.Max.X <= r.Max.X &&
		o.Min.Y >= r.Min.Y && o.Max.Y <= r.Max.Y
}

// Intersects reports whether r and o share any point (boundary inclusive).
func (r Rect) Intersects(o Rect) bool {
	return r.Min.X <= o.Max.X && o.Min.X <= r.Max.X &&
		r.Min.Y <= o.Max.Y && o.Min.Y <= r.Max.Y
}

// Union returns the smallest rectangle containing both r and o.
func (r Rect) Union(o Rect) Rect {
	return Rect{
		Min: Point{X: math.Min(r.Min.X, o.Min.X), Y: math.Min(r.Min.Y, o.Min.Y)},
		Max: Point{X: math.Max(r.Max.X, o.Max.X), Y: math.Max(r.Max.Y, o.Max.Y)},
	}
}

// Expand returns r grown by d on every side.
func (r Rect) Expand(d float64) Rect {
	return Rect{
		Min: Point{X: r.Min.X - d, Y: r.Min.Y - d},
		Max: Point{X: r.Max.X + d, Y: r.Max.Y + d},
	}
}

// Valid reports whether r has Min ≤ Max on both axes.
func (r Rect) Valid() bool {
	return r.Min.X <= r.Max.X && r.Min.Y <= r.Max.Y
}
