package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		TypePoint:      "point",
		TypeRect:       "rectangle",
		TypePolygon:    "polygon",
		TypeLineString: "linestring",
	}
	for ty, want := range cases {
		if got := ty.String(); got != want {
			t.Errorf("Type(%d).String() = %q, want %q", ty, got, want)
		}
	}
	if got := Type(99).String(); got != "geom.Type(99)" {
		t.Errorf("unknown type string = %q", got)
	}
}

func TestParseType(t *testing.T) {
	for _, name := range []string{"point", "rectangle", "rect", "polygon", "linestring"} {
		if _, ok := ParseType(name); !ok {
			t.Errorf("ParseType(%q) failed", name)
		}
	}
	if _, ok := ParseType("circle"); ok {
		t.Error("ParseType(circle) unexpectedly succeeded")
	}
	if ty, _ := ParseType("rect"); ty != TypeRect {
		t.Errorf("ParseType(rect) = %v, want rectangle", ty)
	}
}

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(Pt(3, 4), Pt(1, 2))
	if r.Min != Pt(1, 2) || r.Max != Pt(3, 4) {
		t.Errorf("NewRect did not normalize: %+v", r)
	}
	if !r.Valid() {
		t.Error("normalized rect should be valid")
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(Pt(0, 0), Pt(4, 2))
	if r.Width() != 4 || r.Height() != 2 || r.Area() != 8 {
		t.Errorf("width/height/area = %v/%v/%v", r.Width(), r.Height(), r.Area())
	}
	if c := r.Center(); c != Pt(2, 1) {
		t.Errorf("center = %v", c)
	}
	if !r.ContainsPoint(Pt(4, 2)) {
		t.Error("boundary point should be contained")
	}
	if r.ContainsPoint(Pt(4.001, 2)) {
		t.Error("outside point contained")
	}
}

func TestRectIntersectsAndUnion(t *testing.T) {
	a := NewRect(Pt(0, 0), Pt(2, 2))
	b := NewRect(Pt(2, 2), Pt(3, 3)) // touching corner
	c := NewRect(Pt(2.1, 2.1), Pt(3, 3))
	if !a.Intersects(b) {
		t.Error("touching rects should intersect")
	}
	if a.Intersects(c) {
		t.Error("disjoint rects should not intersect")
	}
	u := a.Union(c)
	if !u.ContainsRect(a) || !u.ContainsRect(c) {
		t.Error("union must contain both inputs")
	}
}

func TestRectExpand(t *testing.T) {
	r := NewRect(Pt(1, 1), Pt(2, 2)).Expand(0.5)
	want := NewRect(Pt(0.5, 0.5), Pt(2.5, 2.5))
	if r != want {
		t.Errorf("Expand = %+v, want %+v", r, want)
	}
}

func TestBounds(t *testing.T) {
	pg := Polygon{Ring: []Point{Pt(0, 0), Pt(4, 1), Pt(2, 5)}}
	if b := pg.Bounds(); b != NewRect(Pt(0, 0), Pt(4, 5)) {
		t.Errorf("polygon bounds = %+v", b)
	}
	ls := LineString{Points: []Point{Pt(-1, 2), Pt(3, -2)}}
	if b := ls.Bounds(); b != NewRect(Pt(-1, -2), Pt(3, 2)) {
		t.Errorf("linestring bounds = %+v", b)
	}
	if b := (Polygon{}).Bounds(); b != (Rect{}) {
		t.Errorf("empty polygon bounds = %+v", b)
	}
	p := Pt(3, 7)
	if b := p.Bounds(); b.Min != p || b.Max != p {
		t.Errorf("point bounds = %+v", b)
	}
}

func TestGeomTypes(t *testing.T) {
	if Pt(0, 0).GeomType() != TypePoint ||
		(Rect{}).GeomType() != TypeRect ||
		(Polygon{}).GeomType() != TypePolygon ||
		(LineString{}).GeomType() != TypeLineString {
		t.Error("GeomType mismatch")
	}
}

func TestDistance(t *testing.T) {
	if d := Distance(Pt(0, 0), Pt(3, 4)); d != 5 {
		t.Errorf("Distance = %v, want 5", d)
	}
	if d := DistanceSq(Pt(0, 0), Pt(3, 4)); d != 25 {
		t.Errorf("DistanceSq = %v, want 25", d)
	}
}

func TestHaversineKnownDistance(t *testing.T) {
	// Monrovia (Montserrado) to Gbarnga (Bong), Liberia: ~110 miles.
	monrovia := Pt(-10.8047, 6.3156)
	gbarnga := Pt(-9.4722, 6.9956)
	d := HaversineMiles.Dist(monrovia, gbarnga)
	if d < 95 || d < 0 || d > 125 {
		t.Errorf("Monrovia-Gbarnga = %.1f mi, want ~110", d)
	}
	dk := HaversineKm.Dist(monrovia, gbarnga)
	if ratio := dk / d; math.Abs(ratio-1.609344) > 0.001 {
		t.Errorf("km/mi ratio = %v", ratio)
	}
	if HaversineMiles.Dist(monrovia, monrovia) != 0 {
		t.Error("self-distance should be 0")
	}
}

func TestMetricEuclideanDefault(t *testing.T) {
	if d := Euclidean.Dist(Pt(0, 0), Pt(3, 4)); d != 5 {
		t.Errorf("Euclidean.Dist = %v", d)
	}
}

func TestDistancePointRect(t *testing.T) {
	r := NewRect(Pt(0, 0), Pt(2, 2))
	if d := DistancePointRect(Pt(1, 1), r); d != 0 {
		t.Errorf("inside point distance = %v", d)
	}
	if d := DistancePointRect(Pt(5, 1), r); d != 3 {
		t.Errorf("side distance = %v", d)
	}
	if d := DistancePointRect(Pt(5, 6), r); d != 5 {
		t.Errorf("corner distance = %v", d)
	}
}

func TestDistanceRects(t *testing.T) {
	a := NewRect(Pt(0, 0), Pt(1, 1))
	b := NewRect(Pt(4, 5), Pt(6, 7))
	if d := DistanceRects(a, b); d != 5 {
		t.Errorf("rect-rect corner distance = %v, want 5", d)
	}
	if d := DistanceRects(a, NewRect(Pt(0.5, 0.5), Pt(2, 2))); d != 0 {
		t.Errorf("overlapping rects distance = %v", d)
	}
}

func TestDistancePointSegment(t *testing.T) {
	if d := DistancePointSegment(Pt(1, 1), Pt(0, 0), Pt(2, 0)); d != 1 {
		t.Errorf("perpendicular distance = %v", d)
	}
	if d := DistancePointSegment(Pt(-3, 4), Pt(0, 0), Pt(2, 0)); d != 5 {
		t.Errorf("endpoint distance = %v", d)
	}
	if d := DistancePointSegment(Pt(1, 1), Pt(2, 2), Pt(2, 2)); math.Abs(d-math.Sqrt2) > 1e-12 {
		t.Errorf("degenerate segment distance = %v", d)
	}
}

func TestDistanceGeometries(t *testing.T) {
	pg := Polygon{Ring: []Point{Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4)}}
	if d := DistanceGeometries(Pt(2, 2), pg); d != 0 {
		t.Errorf("point inside polygon distance = %v", d)
	}
	if d := DistanceGeometries(Pt(6, 2), pg); d != 2 {
		t.Errorf("point-polygon distance = %v", d)
	}
	ls := LineString{Points: []Point{Pt(0, 6), Pt(4, 6)}}
	if d := DistanceGeometries(ls, pg); d != 2 {
		t.Errorf("line-polygon distance = %v", d)
	}
	if d := DistanceGeometries(Pt(0, 0), Pt(3, 4)); d != 5 {
		t.Errorf("point-point = %v", d)
	}
	r := NewRect(Pt(10, 0), Pt(11, 1))
	if d := DistanceGeometries(pg, r); d != 6 {
		t.Errorf("polygon-rect distance = %v, want 6", d)
	}
}

// Property: distance is symmetric and non-negative for all geometry pairs.
func TestDistanceGeometriesSymmetricProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		ax, ay = clampCoord(ax), clampCoord(ay)
		bx, by = clampCoord(bx), clampCoord(by)
		cx, cy = clampCoord(cx), clampCoord(cy)
		geoms := []Geometry{
			Pt(ax, ay),
			NewRect(Pt(bx, by), Pt(bx+1, by+1)),
			Polygon{Ring: []Point{Pt(cx, cy), Pt(cx+2, cy), Pt(cx+1, cy+2)}},
			LineString{Points: []Point{Pt(ax, by), Pt(cx, ay)}},
		}
		for _, g1 := range geoms {
			for _, g2 := range geoms {
				d12 := DistanceGeometries(g1, g2)
				d21 := DistanceGeometries(g2, g1)
				if d12 < 0 || math.Abs(d12-d21) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func clampCoord(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 100)
}

// Property: haversine satisfies the triangle inequality on the sphere.
func TestHaversineTriangleProperty(t *testing.T) {
	f := func(lon1, lat1, lon2, lat2, lon3, lat3 float64) bool {
		p1 := Pt(math.Mod(clampCoord(lon1), 180), math.Mod(clampCoord(lat1), 85))
		p2 := Pt(math.Mod(clampCoord(lon2), 180), math.Mod(clampCoord(lat2), 85))
		p3 := Pt(math.Mod(clampCoord(lon3), 180), math.Mod(clampCoord(lat3), 85))
		d12 := HaversineKm.Dist(p1, p2)
		d23 := HaversineKm.Dist(p2, p3)
		d13 := HaversineKm.Dist(p1, p3)
		return d13 <= d12+d23+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
